/**
 * Scheme conformance: every registered ProtectionScheme runs the full
 * attack-scenario matrix and its measured verdicts must match its
 * declared DetectionProfile — REST's paper-documented spatial and
 * temporal gaps witnessed, MTE's tag-reuse escape witnessed across a
 * seed sweep, pauth's complete temporal protection measured.
 */

#include <gtest/gtest.h>

#include "sim/scheme_matrix.hh"

namespace rest::sim
{

using runtime::Expect;

namespace
{

SchemeVerdicts
verdictsFor(const char *id)
{
    const runtime::ProtectionScheme *ps = runtime::findScheme(id);
    EXPECT_NE(ps, nullptr) << id;
    return measureScheme(ps->baseConfig());
}

} // namespace

TEST(SchemeConformance, EveryBackendMatchesItsDeclaredProfile)
{
    for (const runtime::ProtectionScheme *ps : runtime::allSchemes()) {
        SchemeVerdicts v = measureScheme(ps->baseConfig());
        const runtime::DetectionProfile p = ps->declaredProfile();
        for (const ScenarioInfo &s : attackScenarios()) {
            EXPECT_TRUE(verdictMatches(p.*(s.declared),
                                       v.*(s.measured)))
                << ps->id() << "/" << s.key << ": declared "
                << runtime::expectName(p.*(s.declared))
                << ", measured "
                << (v.*(s.measured) ? "caught" : "missed");
        }
        EXPECT_TRUE(matchesProfile(v, p)) << ps->id();
    }
}

TEST(SchemeConformance, PlainCatchesNothing)
{
    SchemeVerdicts v = verdictsFor("plain");
    for (const ScenarioInfo &s : attackScenarios())
        EXPECT_FALSE(v.*(s.measured)) << s.key;
    EXPECT_EQ(spatialClassOf(v), "None");
    EXPECT_EQ(temporalClassOf(v), "None");
}

TEST(SchemeConformance, RestGapsAreWitnessed)
{
    SchemeVerdicts v = verdictsFor("rest");
    // The paper's claims: linear overflows and quarantined UAF caught,
    // composably, including in uninstrumented library code.
    EXPECT_TRUE(v.linearOverflow);
    EXPECT_TRUE(v.uafQuarantined);
    EXPECT_TRUE(v.doubleFree);
    EXPECT_TRUE(v.stackOverflow);
    EXPECT_TRUE(v.uninstrumentedLibrary);
    // The paper's documented gaps, each witnessed by a live attack:
    // jumping the redzone, re-deriving a pointer, and dangling
    // accesses after the chunk leaves quarantine.
    EXPECT_FALSE(v.jumpOverRedzone);
    EXPECT_FALSE(v.pointerDiffJump);
    EXPECT_FALSE(v.pointerCorruption);
    EXPECT_FALSE(v.uafRecycled);
    EXPECT_EQ(spatialClassOf(v), "Linear");
    EXPECT_EQ(temporalClassOf(v), "Until realloc");
}

TEST(SchemeConformance, MteCatchesJumpsButNotDerivedPointers)
{
    SchemeVerdicts v = verdictsFor("mte");
    EXPECT_TRUE(v.linearOverflow);
    EXPECT_TRUE(v.jumpOverRedzone);    // whole-object colouring
    EXPECT_TRUE(v.pointerCorruption);  // stripped tag mismatches
    EXPECT_FALSE(v.pointerDiffJump);   // a + (b - a) keeps b's tag
    EXPECT_FALSE(v.stackOverflow);     // stack untagged
    EXPECT_TRUE(v.uafQuarantined);
    EXPECT_TRUE(v.doubleFree);
    EXPECT_TRUE(v.uninstrumentedLibrary);
    EXPECT_EQ(spatialClassOf(v), "Granular");
}

TEST(SchemeConformance, MteTagReuseEscapeWitnessedAcrossSeeds)
{
    // The 4-bit birthday: the recycled chunk's fresh tag collides
    // with the stale pointer's ~1 time in 14 — a seed sweep must see
    // both the catch and the escape.
    SeedSweepResult sweep = sweepUafRecycled(
        runtime::findScheme("mte")->baseConfig(), 1, 64);
    EXPECT_TRUE(sweep.bothWitnessed())
        << "caught=" << sweep.caught << " missed=" << sweep.missed;
    // Detection dominates: a collision is the rare case.
    EXPECT_GT(sweep.caught, sweep.missed);
}

TEST(SchemeConformance, PauthTemporalIsCompleteSpatialIsTargeted)
{
    SchemeVerdicts v = verdictsFor("pauth");
    EXPECT_TRUE(v.uafQuarantined);
    EXPECT_TRUE(v.uafRecycled); // revocation outlives recycling
    EXPECT_TRUE(v.doubleFree);
    EXPECT_TRUE(v.pointerCorruption);
    EXPECT_FALSE(v.linearOverflow); // offsets keep the signature
    EXPECT_FALSE(v.jumpOverRedzone);
    EXPECT_EQ(spatialClassOf(v), "Targeted");
    EXPECT_EQ(temporalClassOf(v), "Complete");
}

TEST(SchemeConformance, PauthRevocationIsSeedIndependent)
{
    SeedSweepResult sweep = sweepUafRecycled(
        runtime::findScheme("pauth")->baseConfig(), 1, 8);
    EXPECT_EQ(sweep.missed, 0u);
    EXPECT_EQ(sweep.caught, 8u);
}

TEST(SchemeConformance, EveryBackendMatchesItsConcurrencyProfile)
{
    for (const runtime::ProtectionScheme *ps : runtime::allSchemes()) {
        ConcurrencyVerdicts v =
            measureSchemeMulticore(ps->baseConfig());
        const runtime::DetectionProfile p = ps->declaredProfile();
        for (const ConcurrencyScenarioInfo &s :
             concurrencyScenarios()) {
            EXPECT_TRUE(verdictMatches(p.*(s.declared),
                                       v.*(s.measured)))
                << ps->id() << "/" << s.key << ": declared "
                << runtime::expectName(p.*(s.declared))
                << ", measured "
                << (v.*(s.measured) ? "caught" : "missed");
        }
        EXPECT_TRUE(matchesConcurrencyProfile(v, p)) << ps->id();
    }
}

TEST(SchemeConformance, ConcurrencyVerdictsHoldUnderContention)
{
    // Same verdicts on a 4-core machine with busy benign neighbours,
    // through the detailed timing models and the coherent hierarchy.
    ConcurrencyVerdicts v = measureSchemeMulticore(
        runtime::findScheme("rest")->baseConfig(), 4,
        /*detailed=*/true);
    EXPECT_TRUE(v.crossThreadUaf);
    EXPECT_TRUE(v.racyDoubleFree);
    EXPECT_TRUE(v.handoffOverflow);

    ConcurrencyVerdicts pauth = measureSchemeMulticore(
        runtime::findScheme("pauth")->baseConfig(), 4,
        /*detailed=*/true);
    EXPECT_TRUE(pauth.crossThreadUaf);
    EXPECT_FALSE(pauth.handoffOverflow); // no spatial check to hand off
}

TEST(FormatRestRow, MeasuredFactsRenderAsTableCells)
{
    RestRowFacts facts;
    facts.spatialLinear = true;
    facts.temporalUntilRealloc = true;
    facts.usesShadowSpace = false;
    facts.composable = true;
    RestRowText row = formatRestRow(facts, "");
    EXPECT_EQ(row.spatial, "Linear");
    EXPECT_EQ(row.temporal, "Until realloc");
    EXPECT_EQ(row.shadow, "no");
    EXPECT_EQ(row.composable, "yes");
}

TEST(FormatRestRow, ProbeFaultBreaksTheWholeRow)
{
    // Regression: when the probe threw, spatial/temporal printed
    // BROKEN but shadow/composable printed default-constructed values
    // as if measured. A probe error must break every column.
    RestRowFacts defaults; // what a throw used to leave behind
    RestRowText row =
        formatRestRow(defaults, "probe fault: injected failure");
    EXPECT_EQ(row.spatial, "BROKEN");
    EXPECT_EQ(row.temporal, "BROKEN");
    EXPECT_EQ(row.shadow, "BROKEN");
    EXPECT_EQ(row.composable, "BROKEN");
}

TEST(FormatRestRow, UnexpectedFactsAreNotMaskedByEmptyError)
{
    RestRowFacts facts; // all-false defaults, shadow=true
    RestRowText row = formatRestRow(facts, "");
    EXPECT_EQ(row.spatial, "UNEXPECTED");
    EXPECT_EQ(row.temporal, "UNEXPECTED");
    EXPECT_EQ(row.shadow, "yes");
}

} // namespace rest::sim
