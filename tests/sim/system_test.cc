#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "workload/spec_profiles.hh"

namespace rest::sim
{

namespace
{

isa::Program
tinyBench(const char *name = "hmmer")
{
    auto p = workload::profileByName(name);
    p.targetKiloInsts = 20;
    return workload::generate(p);
}

} // namespace

TEST(System, RunsPlainProgramToCompletion)
{
    SystemConfig cfg;
    System system(tinyBench(), cfg);
    SystemResult result = system.run();
    EXPECT_FALSE(result.faulted());
    EXPECT_GT(result.run.committedOps, 10000u);
    EXPECT_GT(result.cycles(), 0u);
    EXPECT_GT(result.mallocCalls, 0u);
}

TEST(System, SelectsAllocatorByScheme)
{
    {
        System s(tinyBench(), makeSystemConfig(ExpConfig::Plain));
        EXPECT_STREQ(s.allocator().name(), "libc");
    }
    {
        System s(tinyBench(), makeSystemConfig(ExpConfig::Asan));
        EXPECT_STREQ(s.allocator().name(), "asan");
    }
    {
        System s(tinyBench(),
                 makeSystemConfig(ExpConfig::RestSecureFull));
        EXPECT_STREQ(s.allocator().name(), "rest");
    }
}

TEST(System, RestRunsExecuteArms)
{
    System s(tinyBench(), makeSystemConfig(ExpConfig::RestSecureFull));
    SystemResult r = s.run();
    EXPECT_FALSE(r.faulted());
    EXPECT_GT(r.armsExecuted, 0u);
    EXPECT_GT(r.disarmsExecuted, 0u);
}

TEST(System, PerfectHwExecutesNoArms)
{
    System s(tinyBench(), makeSystemConfig(ExpConfig::PerfectHwFull));
    SystemResult r = s.run();
    EXPECT_FALSE(r.faulted());
    EXPECT_EQ(r.armsExecuted, 0u);
}

TEST(System, TokenWidthConfigurable)
{
    for (auto w : {core::TokenWidth::Bytes16,
                   core::TokenWidth::Bytes32,
                   core::TokenWidth::Bytes64}) {
        System s(tinyBench(),
                 makeSystemConfig(ExpConfig::RestSecureFull, w));
        EXPECT_EQ(s.tokenRegister().granule(),
                  core::tokenBytes(w));
        EXPECT_FALSE(s.run().faulted());
    }
}

TEST(System, InOrderCpuOption)
{
    SystemConfig cfg = makeSystemConfig(ExpConfig::Plain,
                                        core::TokenWidth::Bytes64,
                                        /*inorder=*/true);
    System s(tinyBench(), cfg);
    SystemResult r = s.run();
    EXPECT_FALSE(r.faulted());
    // Scalar core: cycles at least ops.
    EXPECT_GE(r.cycles(), r.run.committedOps);
}

TEST(System, InstrumentationSummaryExposed)
{
    System s(tinyBench(), makeSystemConfig(ExpConfig::Asan));
    SystemResult r = s.run();
    EXPECT_GT(r.instrumentation.accessChecksInserted, 0u);
    EXPECT_GT(r.instrumentation.stackPoisonStores, 0u);
}

TEST(System, StatsDumpIsNonEmpty)
{
    System s(tinyBench(), makeSystemConfig(ExpConfig::Plain));
    s.run();
    std::ostringstream os;
    s.dumpStats(os);
    EXPECT_NE(os.str().find("o3cpu.committed_ops"),
              std::string::npos);
    EXPECT_NE(os.str().find("l1d.hits"), std::string::npos);
    EXPECT_NE(os.str().find("dram.reads"), std::string::npos);
}

TEST(System, MaxOpsCap)
{
    SystemConfig cfg;
    cfg.maxOps = 5000;
    System s(tinyBench(), cfg);
    SystemResult r = s.run();
    EXPECT_EQ(r.run.committedOps, 5000u);
}

} // namespace rest::sim
