/**
 * @file
 * The perf-trajectory regression library (sim/perf_report.hh): baseline
 * loading from results-file JSON, delta computation against thresholds,
 * the fast-functional speedup floor, and the printed verdict.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/perf_report.hh"

namespace rest::sim
{

namespace
{

std::string
tmpFile(const std::string &name, const std::string &content)
{
    std::string path =
        ::testing::TempDir() + "rest_perf_" + name + ".json";
    std::ofstream(path) << content;
    return path;
}

/** A minimal results file with a healthy perf block. */
std::string
baselineJson()
{
    return R"({
  "figure": "fig7",
  "kiloinsts": 1000,
  "perf": {
    "bench": "xalancbmk",
    "kiloinsts": 1000,
    "kips_detailed": 6410.6,
    "kips_fast_functional": 95582.1,
    "kips_sampled": 30040.3,
    "speedup_fast_functional": 14.91,
    "speedup_sampled": 4.69
  }
})";
}

PerfRecord
record(double detailed, double fast, double sampled)
{
    PerfRecord p;
    p.bench = "xalancbmk";
    p.kiloInsts = 1000;
    p.kipsDetailed = detailed;
    p.kipsFastFunctional = fast;
    p.kipsSampled = sampled;
    if (detailed > 0) {
        p.speedupFastFunctional = fast / detailed;
        p.speedupSampled = sampled / detailed;
    }
    return p;
}

} // namespace

TEST(PerfReport, LoadsBaselineFromResultsFile)
{
    auto base = loadPerfBaseline(tmpFile("ok", baselineJson()));
    ASSERT_TRUE(base.has_value());
    EXPECT_EQ(base->figure, "fig7");
    EXPECT_EQ(base->kiloInsts, 1000u);
    EXPECT_EQ(base->perf.bench, "xalancbmk");
    EXPECT_DOUBLE_EQ(base->perf.kipsDetailed, 6410.6);
    EXPECT_DOUBLE_EQ(base->perf.speedupFastFunctional, 14.91);
}

TEST(PerfReport, MissingFileIsNullopt)
{
    EXPECT_FALSE(
        loadPerfBaseline("/nonexistent/nope.json").has_value());
}

TEST(PerfReport, FileWithoutPerfBlockIsNullopt)
{
    auto path = tmpFile("noperf",
                        "{\"figure\": \"fig7\", \"kiloinsts\": 10}");
    EXPECT_FALSE(loadPerfBaseline(path).has_value());
}

TEST(PerfReport, PerfBlockWithoutDetailedKipsIsNullopt)
{
    auto path = tmpFile("zerokips", R"({
  "figure": "fig7", "kiloinsts": 10,
  "perf": {"bench": "gcc", "kiloinsts": 10, "kips_detailed": 0,
           "kips_fast_functional": 0, "kips_sampled": 0,
           "speedup_fast_functional": 0, "speedup_sampled": 0}
})");
    EXPECT_FALSE(loadPerfBaseline(path).has_value());
}

TEST(PerfReport, MalformedJsonIsNullopt)
{
    auto path = tmpFile("broken", "{\"figure\": ");
    EXPECT_FALSE(loadPerfBaseline(path).has_value());
}

TEST(PerfReport, NoRegressionWithinThreshold)
{
    auto base = record(1000, 15000, 5000);
    auto cur = record(950, 14000, 5100); // -5%, -6.7%, +2%
    PerfReport r = comparePerf(base, cur, 20.0, 10.0);
    ASSERT_EQ(r.rows.size(), 3u);
    for (const auto &row : r.rows)
        EXPECT_FALSE(row.regressed) << row.mode;
    EXPECT_TRUE(r.baselineFloorMet);
    EXPECT_TRUE(r.currentFloorMet);
    EXPECT_FALSE(r.anyRegression());
}

TEST(PerfReport, FlagsModeBeyondThreshold)
{
    auto base = record(1000, 15000, 5000);
    auto cur = record(700, 14900, 5000); // detailed -30%
    PerfReport r = comparePerf(base, cur, 20.0, 0.0);
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0].mode, "detailed");
    EXPECT_TRUE(r.rows[0].regressed);
    EXPECT_NEAR(r.rows[0].deltaPct, -30.0, 1e-9);
    EXPECT_FALSE(r.rows[1].regressed);
    EXPECT_TRUE(r.anyRegression());
}

TEST(PerfReport, ImprovementIsNeverARegression)
{
    auto base = record(1000, 15000, 5000);
    auto cur = record(5000, 75000, 25000); // 5x faster everywhere
    PerfReport r = comparePerf(base, cur, 5.0, 10.0);
    EXPECT_FALSE(r.anyRegression());
}

TEST(PerfReport, ModesMissingOnEitherSideAreSkipped)
{
    auto base = record(1000, 15000, 0); // no sampled baseline
    auto cur = record(1000, 0, 5000);   // no fast-functional current
    PerfReport r = comparePerf(base, cur, 20.0, 0.0);
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0].mode, "detailed");
}

TEST(PerfReport, SpeedupFloorCatchesBothSides)
{
    // Baseline meets the 10x fast-functional floor, current does not.
    auto base = record(1000, 15000, 5000);
    auto cur = record(1000, 8000, 5000);
    PerfReport r = comparePerf(base, cur, 50.0, 10.0);
    EXPECT_TRUE(r.baselineFloorMet);
    EXPECT_FALSE(r.currentFloorMet);
    EXPECT_TRUE(r.anyRegression());

    // A stale baseline below the floor is caught too.
    PerfReport r2 = comparePerf(cur, base, 50.0, 10.0);
    EXPECT_FALSE(r2.baselineFloorMet);
    EXPECT_TRUE(r2.currentFloorMet);
    EXPECT_TRUE(r2.anyRegression());

    // Floor 0 disables the check.
    PerfReport r3 = comparePerf(base, cur, 50.0, 0.0);
    EXPECT_FALSE(r3.anyRegression());
}

TEST(PerfReport, CheckBaselineStandalone)
{
    auto base = record(1000, 15000, 5000);
    PerfReport ok = checkBaseline(base, 10.0);
    EXPECT_TRUE(ok.rows.empty());
    EXPECT_FALSE(ok.anyRegression());

    PerfReport bad = checkBaseline(record(1000, 5000, 5000), 10.0);
    EXPECT_TRUE(bad.anyRegression());
}

TEST(PerfReport, PrintedVerdictTable)
{
    auto base = record(1000, 15000, 5000);
    auto cur = record(700, 14000, 5000);
    PerfReport r = comparePerf(base, cur, 20.0, 10.0);
    std::ostringstream os;
    printPerfReport(r, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("detailed"), std::string::npos);
    EXPECT_NE(out.find("fast-functional"), std::string::npos);
    EXPECT_NE(out.find("REGRESSED"), std::string::npos);
    EXPECT_NE(out.find("verdict: REGRESSION"), std::string::npos);

    PerfReport ok = comparePerf(base, record(1000, 15000, 5000),
                                20.0, 10.0);
    std::ostringstream os2;
    printPerfReport(ok, os2);
    EXPECT_NE(os2.str().find("verdict: ok"), std::string::npos);
}

TEST(PerfReport, CommittedTrajectoryRoundTrips)
{
    // The same shape the harness writes: loading the synthetic file
    // and comparing it against itself is a zero-delta ok verdict.
    auto base = loadPerfBaseline(tmpFile("self", baselineJson()));
    ASSERT_TRUE(base.has_value());
    PerfReport r = comparePerf(base->perf, base->perf, 1.0, 10.0);
    ASSERT_EQ(r.rows.size(), 3u);
    for (const auto &row : r.rows)
        EXPECT_DOUBLE_EQ(row.deltaPct, 0.0);
    EXPECT_FALSE(r.anyRegression());
    // The committed BENCH_fig7.json claim: >= 10x fast-functional.
    EXPECT_GE(base->perf.speedupFastFunctional, 10.0);
}

} // namespace rest::sim
