/**
 * @file
 * Simulation-fidelity layer, part 2: the sampled execution mode.
 *
 * Proves (a) the estimator math on hand-built window sets, (b) that
 * an inactive sampling config (--sample-interval 0) takes exactly the
 * historical all-detailed path — cycle counts and the full stats dump
 * are byte-identical, (c) that sampled CPI extrapolation lands within
 * a stated error bound of the full-detailed run, (d) that faults
 * inside both detailed windows and fast-forward gaps surface with the
 * same verdict and global sequence number as a detailed run, and
 * (e) that invalid configurations are rejected with rest_fatal.
 *
 * Registered under the `fidelity` ctest label; CI runs it under both
 * ASan and TSan.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/test_util.hh"
#include "util/logging.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using core::ViolationKind;
using sim::ExpConfig;

namespace
{

sim::SystemConfig
sampledConfig(ExpConfig config, std::uint64_t warmup,
              std::uint64_t window, std::uint64_t interval)
{
    sim::SystemConfig cfg = sim::makeSystemConfig(config);
    cfg.exec.sampling.warmupOps = warmup;
    cfg.exec.sampling.windowOps = window;
    cfg.exec.sampling.intervalOps = interval;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// The estimator
// ---------------------------------------------------------------------

TEST(SamplingEstimate, NoWindowsExtrapolatesNothing)
{
    sim::SamplingEstimate est = sim::estimateCycles({}, 100, 450, 0);
    EXPECT_EQ(est.windows, 0u);
    EXPECT_EQ(est.detailedCycles, Cycles(450));
    EXPECT_EQ(est.extrapolatedCycles, Cycles(450));
    EXPECT_EQ(est.cpiStdErrPct, 0.0);
}

TEST(SamplingEstimate, SingleWindowHasNoErrorEstimate)
{
    // One 1000-op window at CPI 2; 5000 skipped ops extrapolate at
    // that CPI on top of the 3000 detailed cycles.
    sim::SamplingEstimate est =
        sim::estimateCycles({{1000, 2000}}, 1500, 3000, 5000);
    EXPECT_EQ(est.windows, 1u);
    EXPECT_DOUBLE_EQ(est.windowCpi, 2.0);
    EXPECT_EQ(est.cpiStdErrPct, 0.0);
    EXPECT_EQ(est.extrapolatedCycles, Cycles(3000 + 10000));
}

TEST(SamplingEstimate, MeanIsOpsWeightedAndErrorIsStdErr)
{
    // Two windows, CPI 1 and CPI 3, equal op counts: ops-weighted
    // mean CPI 2; per-window sample stddev = sqrt(2), stderr =
    // sqrt(2)/sqrt(2) = 1, i.e. 50% of the mean.
    sim::SamplingEstimate est = sim::estimateCycles(
        {{1000, 1000}, {1000, 3000}}, 2000, 4000, 10000);
    EXPECT_EQ(est.windows, 2u);
    EXPECT_DOUBLE_EQ(est.windowCpi, 2.0);
    EXPECT_NEAR(est.cpiStdErrPct, 50.0, 1e-9);
    EXPECT_EQ(est.extrapolatedCycles, Cycles(4000 + 20000));
    EXPECT_EQ(est.detailedOps, 2000u);
    EXPECT_EQ(est.fastForwardedOps, 10000u);
}

TEST(SamplingEstimate, IdenticalWindowsHaveZeroError)
{
    sim::SamplingEstimate est = sim::estimateCycles(
        {{500, 750}, {500, 750}, {500, 750}}, 1500, 2250, 3000);
    EXPECT_DOUBLE_EQ(est.windowCpi, 1.5);
    EXPECT_EQ(est.cpiStdErrPct, 0.0);
}

// ---------------------------------------------------------------------
// Inactive sampling == the historical detailed path, byte for byte
// ---------------------------------------------------------------------

TEST(Sampling, IntervalZeroIsByteIdenticalToDetailed)
{
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 20;

    sim::SystemConfig plain_cfg =
        sim::makeSystemConfig(ExpConfig::RestSecureFull);
    sim::System detailed(workload::generate(p), plain_cfg);
    sim::SystemResult dr = detailed.run();

    // Explicit interval 0 (what --sample-interval 0 produces) must be
    // indistinguishable from never mentioning sampling at all.
    sim::SystemConfig zero_cfg =
        sampledConfig(ExpConfig::RestSecureFull, 2000, 10000, 0);
    sim::System zeroed(workload::generate(p), zero_cfg);
    sim::SystemResult zr = zeroed.run();

    EXPECT_FALSE(zr.sampled);
    EXPECT_EQ(dr.cycles(), zr.cycles());
    EXPECT_EQ(dr.run.committedOps, zr.run.committedOps);

    std::ostringstream ds, zs;
    detailed.dumpStats(ds);
    zeroed.dumpStats(zs);
    EXPECT_EQ(ds.str(), zs.str());
}

// ---------------------------------------------------------------------
// Accuracy: extrapolated cycles near the full-detailed truth
// ---------------------------------------------------------------------

TEST(Sampling, ExtrapolatedCpiWithinErrorBound)
{
    for (ExpConfig config :
         {ExpConfig::Plain, ExpConfig::RestSecureFull}) {
        auto p = workload::profileByName("gobmk");
        p.targetKiloInsts = 60;
        isa::Program prog = workload::generate(p);

        sim::System detailed(prog, sim::makeSystemConfig(config));
        sim::SystemResult dr = detailed.run();
        ASSERT_FALSE(dr.faulted());

        sim::System sampled(prog,
                            sampledConfig(config, 500, 2000, 5000));
        sim::SystemResult sr = sampled.run();
        ASSERT_FALSE(sr.faulted());
        EXPECT_TRUE(sr.sampled);
        EXPECT_EQ(sr.run.committedOps, dr.run.committedOps);
        EXPECT_GE(sr.sampling.windows, 2u);
        EXPECT_GT(sr.sampling.fastForwardedOps, 0u);

        // The contract the docs state: sampled numbers are quotable
        // only with the error estimate attached, and on these
        // periodic-phase workloads the estimate bounds the truth.
        const double detailed_cpi = double(dr.cycles()) /
                                    double(dr.run.committedOps);
        const double sampled_cpi = double(sr.cycles()) /
                                   double(sr.run.committedOps);
        const double err_pct =
            100.0 * std::abs(sampled_cpi - detailed_cpi) /
            detailed_cpi;
        EXPECT_LT(err_pct, 10.0)
            << sim::expConfigName(config) << ": detailed CPI "
            << detailed_cpi << " vs sampled " << sampled_cpi
            << " (reported stderr " << sr.sampling.cpiStdErrPct
            << "%)";
    }
}

// ---------------------------------------------------------------------
// Detection equivalence through windows and gaps
// ---------------------------------------------------------------------

TEST(Sampling, FaultInFastForwardGapDetectedIdentically)
{
    // Default sampling geometry puts the (early) attack fault inside
    // the first detailed window; a tiny window forces it into the
    // functional gap instead. Both must match the detailed verdict.
    for (auto [warmup, window, interval] :
         {std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>
              {200, 1000, 4000},
          std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>
              {2, 2, 50}}) {
        auto build = [] {
            return workload::attacks::heapOverflowWrite(64, 64);
        };
        sim::SystemResult dr = test::runUnder(
            build(), ExpConfig::RestSecureFull);
        ASSERT_TRUE(dr.faulted());

        sim::System sampled(
            build(), sampledConfig(ExpConfig::RestSecureFull, warmup,
                                   window, interval));
        sim::SystemResult sr = sampled.run();
        ASSERT_TRUE(sr.faulted());
        auto norm = [](ViolationKind k) {
            return k == ViolationKind::TokenForward
                       ? ViolationKind::TokenAccess
                       : k;
        };
        EXPECT_EQ(norm(sr.run.violation.kind),
                  norm(dr.run.violation.kind));
        EXPECT_EQ(sr.run.violation.pc, dr.run.violation.pc);
        EXPECT_EQ(sr.run.violation.seq, dr.run.violation.seq);
        EXPECT_EQ(sr.run.committedOps, dr.run.committedOps);
    }
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

TEST(Sampling, InvalidConfigsAreFatal)
{
    util::ScopedFatalThrow guard;
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 5;

    // warmup + window > interval.
    EXPECT_THROW(
        {
            sim::System s(workload::generate(p),
                          sampledConfig(ExpConfig::Plain, 5000, 10000,
                                        12000));
        },
        util::FatalError);

    // Sampling needs the O3 core.
    sim::SystemConfig inorder_cfg =
        sampledConfig(ExpConfig::Plain, 100, 100, 1000);
    inorder_cfg.useInOrderCpu = true;
    EXPECT_THROW(
        { sim::System s(workload::generate(p), inorder_cfg); },
        util::FatalError);

    // Fast-functional and sampling are mutually exclusive.
    sim::SystemConfig both_cfg =
        sampledConfig(ExpConfig::Plain, 100, 100, 1000);
    both_cfg.exec.fastFunctional = true;
    EXPECT_THROW({ sim::System s(workload::generate(p), both_cfg); },
                 util::FatalError);
}

} // namespace rest
