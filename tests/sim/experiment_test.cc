#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace rest::sim
{

TEST(Experiment, ConfigNames)
{
    EXPECT_STREQ(expConfigName(ExpConfig::Plain), "Plain");
    EXPECT_STREQ(expConfigName(ExpConfig::Asan), "ASan");
    EXPECT_STREQ(expConfigName(ExpConfig::RestSecureFull),
                 "Secure Full");
    EXPECT_STREQ(expConfigName(ExpConfig::PerfectHwHeap),
                 "PerfectHW Heap");
}

TEST(Experiment, PresetsMatchPaperConfigurations)
{
    auto plain = makeSystemConfig(ExpConfig::Plain);
    EXPECT_EQ(plain.scheme.allocator, runtime::AllocatorKind::Libc);
    EXPECT_FALSE(plain.scheme.asanAccessChecks);

    auto asan = makeSystemConfig(ExpConfig::Asan);
    EXPECT_EQ(asan.scheme.allocator, runtime::AllocatorKind::Asan);
    EXPECT_TRUE(asan.scheme.asanAccessChecks);
    EXPECT_TRUE(asan.scheme.asanStackSetup);
    EXPECT_TRUE(asan.scheme.asanIntercept);

    auto debug_full = makeSystemConfig(ExpConfig::RestDebugFull);
    EXPECT_EQ(debug_full.mode, core::RestMode::Debug);
    EXPECT_TRUE(debug_full.scheme.restStackArming);

    auto secure_heap = makeSystemConfig(ExpConfig::RestSecureHeap);
    EXPECT_EQ(secure_heap.mode, core::RestMode::Secure);
    EXPECT_FALSE(secure_heap.scheme.restStackArming);
    EXPECT_EQ(secure_heap.scheme.allocator,
              runtime::AllocatorKind::Rest);

    auto perfect = makeSystemConfig(ExpConfig::PerfectHwFull);
    EXPECT_TRUE(perfect.scheme.perfectHw);
}

TEST(Experiment, OverheadPct)
{
    EXPECT_DOUBLE_EQ(overheadPct(100, 100), 0.0);
    EXPECT_DOUBLE_EQ(overheadPct(100, 140), 40.0);
    EXPECT_DOUBLE_EQ(overheadPct(200, 150), -25.0);
}

TEST(Experiment, WeightedArithmeticMeanPerPaperFootnote5)
{
    // Weighted by plain runtime: a 2x slowdown on a 900-cycle
    // benchmark dominates a 1x on a 100-cycle one.
    std::vector<Cycles> plain = {900, 100};
    std::vector<Cycles> scheme = {1800, 100};
    EXPECT_NEAR(wtdAriMeanOverheadPct(plain, scheme), 90.0, 1e-9);
}

TEST(Experiment, GeometricMeanPerPaperFootnote6)
{
    std::vector<Cycles> plain = {100, 100};
    std::vector<Cycles> scheme = {200, 50};
    // geomean(2.0, 0.5) = 1.0 -> 0% overhead.
    EXPECT_NEAR(geoMeanOverheadPct(plain, scheme), 0.0, 1e-9);
}

TEST(Experiment, MeansRejectMismatchedInputs)
{
    std::vector<Cycles> a = {1, 2};
    std::vector<Cycles> b = {1};
    EXPECT_DEATH((void)wtdAriMeanOverheadPct(a, b), "mismatched");
    EXPECT_DEATH((void)geoMeanOverheadPct(a, b), "mismatched");
}

TEST(Experiment, MeansOnEmptyVectorsAreZero)
{
    // An empty sweep has no overhead — defined, not UB.
    std::vector<Cycles> none;
    EXPECT_DOUBLE_EQ(wtdAriMeanOverheadPct(none, none), 0.0);
    EXPECT_DOUBLE_EQ(geoMeanOverheadPct(none, none), 0.0);
}

TEST(Experiment, MeansIdentityWhenSchemeEqualsPlain)
{
    // Property: scheme == plain ⇒ both means are exactly 0%.
    std::vector<Cycles> cycles = {123, 456789, 1, 99999999};
    EXPECT_NEAR(wtdAriMeanOverheadPct(cycles, cycles), 0.0, 1e-12);
    EXPECT_NEAR(geoMeanOverheadPct(cycles, cycles), 0.0, 1e-12);
}

TEST(Experiment, MeansSingleElementEqualsOverheadPct)
{
    // Property: with one benchmark, every mean collapses to the
    // per-benchmark overhead.
    for (auto [p, s] : {std::pair<Cycles, Cycles>{100, 140},
                        {1000, 1000},
                        {200, 150},
                        {7, 70000}}) {
        std::vector<Cycles> plain = {p}, scheme = {s};
        double expect = overheadPct(p, s);
        EXPECT_NEAR(wtdAriMeanOverheadPct(plain, scheme), expect,
                    1e-9);
        EXPECT_NEAR(geoMeanOverheadPct(plain, scheme), expect, 1e-9);
    }
}

TEST(Experiment, MeansScaleInvariance)
{
    // Property: scaling every runtime by the same factor changes
    // neither mean (overheads are ratios).
    std::vector<Cycles> plain = {900, 100, 5000};
    std::vector<Cycles> scheme = {1800, 140, 5100};
    std::vector<Cycles> plain10, scheme10;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        plain10.push_back(plain[i] * 10);
        scheme10.push_back(scheme[i] * 10);
    }
    EXPECT_NEAR(wtdAriMeanOverheadPct(plain, scheme),
                wtdAriMeanOverheadPct(plain10, scheme10), 1e-9);
    EXPECT_NEAR(geoMeanOverheadPct(plain, scheme),
                geoMeanOverheadPct(plain10, scheme10), 1e-9);
}

TEST(Experiment, GeoMeanIsPermutationInvariant)
{
    // Property: benchmark order must not matter (log-sum commutes).
    std::vector<Cycles> plain = {100, 200, 400};
    std::vector<Cycles> scheme = {150, 180, 500};
    std::vector<Cycles> plain_r = {400, 100, 200};
    std::vector<Cycles> scheme_r = {500, 150, 180};
    EXPECT_NEAR(geoMeanOverheadPct(plain, scheme),
                geoMeanOverheadPct(plain_r, scheme_r), 1e-9);
    EXPECT_NEAR(wtdAriMeanOverheadPct(plain, scheme),
                wtdAriMeanOverheadPct(plain_r, scheme_r), 1e-9);
}

TEST(Experiment, RunBenchProducesMeasurement)
{
    auto p = workload::profileByName("sjeng");
    p.targetKiloInsts = 20;
    Measurement m = runBench(p, ExpConfig::Plain);
    EXPECT_EQ(m.bench, "sjeng");
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.ops, 10000u);
}

TEST(Experiment, RestSecureCheaperThanAsan)
{
    // The headline claim, on a small run: REST secure costs far less
    // than ASan on the same workload.
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 50;
    auto plain = runBench(p, ExpConfig::Plain);
    auto secure = runBench(p, ExpConfig::RestSecureFull);
    auto asan = runBench(p, ExpConfig::Asan);
    double sec_ovh = overheadPct(plain.cycles, secure.cycles);
    double asan_ovh = overheadPct(plain.cycles, asan.cycles);
    EXPECT_LT(sec_ovh, asan_ovh / 3);
}

TEST(Experiment, DebugCostsMoreThanSecure)
{
    auto p = workload::profileByName("soplex");
    p.targetKiloInsts = 50;
    auto secure = runBench(p, ExpConfig::RestSecureFull);
    auto debug = runBench(p, ExpConfig::RestDebugFull);
    EXPECT_GT(debug.cycles, secure.cycles);
}

TEST(Experiment, PerfectHwTracksSecure)
{
    // §VI-B "Software vs. Hardware": the REST primitive itself is
    // nearly free; PerfectHW and secure differ by well under 5%.
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 50;
    auto secure = runBench(p, ExpConfig::RestSecureFull);
    auto perfect = runBench(p, ExpConfig::PerfectHwFull);
    double delta = std::abs(double(secure.cycles) -
                            double(perfect.cycles)) /
        double(perfect.cycles);
    EXPECT_LT(delta, 0.05);
}

} // namespace rest::sim
