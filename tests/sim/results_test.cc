/**
 * @file
 * Round-trip regression tests for the sweep results layer: a
 * serialised ResultsFile parses back (with the shared test JSON
 * reader) with every cell, mean and configuration name present, and
 * serialisation is byte-stable across runs with fixed seeds.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_reader.hh"
#include "sim/results.hh"
#include "sim/sweep.hh"

namespace rest::sim
{

namespace
{

using test::JsonParser;
using test::JsonValue;

// ---- Fixtures ----

/** A small but fully populated results file. */
ResultsFile
sampleResults()
{
    ResultsFile f;
    f.figure = "fig7";
    f.kiloInsts = 10;
    f.seedsPerCell = 2;
    f.jobs = 4;

    SweepResults sweep;
    sweep.name = "overheads";
    sweep.columns = {"Plain", "ASan"};
    sweep.rows = {"sjeng", "hmmer"};
    for (const char *bench : {"sjeng", "hmmer"}) {
        for (const char *col : {"Plain", "ASan"}) {
            SweepCell cell;
            cell.bench = bench;
            cell.column = col;
            cell.cycles = 1000 + 7 * cell.bench.size();
            cell.ops = 500;
            cell.seedCycles = {990, 1010};
            cell.scalars = {{"o3cpu.iq_full_stall_cycles", 3},
                            {"l1d.token_evictions", 1}};
            sweep.cells.push_back(cell);
        }
    }
    sweep.baselineCycles = {{"sjeng", 1035}, {"hmmer", 1035}};
    sweep.wtdAriMeanPct = {{"ASan", 41.5}};
    sweep.geoMeanPct = {{"ASan", 39.25}};
    f.sweeps.push_back(sweep);
    return f;
}

std::string
serialise(const ResultsFile &f)
{
    std::ostringstream os;
    writeJson(f, os);
    return os.str();
}

} // namespace

TEST(Results, RoundTripPreservesEverything)
{
    ResultsFile f = sampleResults();
    std::string text = serialise(f);

    JsonParser parser(text);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << text;

    EXPECT_EQ(root.at("schema_version").number, 1);
    EXPECT_EQ(root.at("figure").str, "fig7");
    EXPECT_EQ(root.at("kiloinsts").number, 10);
    EXPECT_EQ(root.at("seeds_per_cell").number, 2);
    EXPECT_EQ(root.at("jobs").number, 4);

    const auto &sweeps = root.at("sweeps");
    ASSERT_EQ(sweeps.kind, JsonValue::Array);
    ASSERT_EQ(sweeps.items.size(), 1u);
    const auto &sweep = sweeps.items[0];
    EXPECT_EQ(sweep.at("name").str, "overheads");

    // Config (column) and row names all present.
    const auto &cols = sweep.at("columns");
    ASSERT_EQ(cols.items.size(), 2u);
    EXPECT_EQ(cols.items[0].str, "Plain");
    EXPECT_EQ(cols.items[1].str, "ASan");
    ASSERT_EQ(sweep.at("rows").items.size(), 2u);

    // Every cell with cycles, ops, per-seed cycles and scalars.
    const auto &cells = sweep.at("cells");
    ASSERT_EQ(cells.items.size(), 4u);
    for (const auto &cell : cells.items) {
        EXPECT_FALSE(cell.at("bench").str.empty());
        EXPECT_FALSE(cell.at("column").str.empty());
        EXPECT_GT(cell.at("cycles").number, 0);
        EXPECT_EQ(cell.at("ops").number, 500);
        ASSERT_EQ(cell.at("seed_cycles").items.size(), 2u);
        EXPECT_EQ(cell.at("seed_cycles").items[0].number, 990);
        const auto &scalars = cell.at("scalars");
        EXPECT_EQ(scalars.at("o3cpu.iq_full_stall_cycles").number, 3);
        EXPECT_EQ(scalars.at("l1d.token_evictions").number, 1);
    }

    // Baseline and the aggregate means.
    EXPECT_EQ(sweep.at("baseline_cycles").at("sjeng").number, 1035);
    EXPECT_EQ(sweep.at("wtd_ari_mean_pct").at("ASan").number, 41.5);
    EXPECT_EQ(sweep.at("geo_mean_pct").at("ASan").number, 39.25);
}

TEST(Results, ErrorCellsSerialiseAsErrorRecords)
{
    ResultsFile f = sampleResults();
    // Fail one cell the way runMatrix() does after retries run out.
    SweepCell &failed = f.sweeps[0].cells[1];
    failed.ok = false;
    failed.error = "injected fault (fail-always) at job 3";
    failed.attempts = 3;
    failed.cycles = 0;
    failed.ops = 0;
    failed.seedCycles.clear();
    failed.scalars.clear();
    // And mark one surviving cell as having needed a retry.
    f.sweeps[0].cells[2].attempts = 3; // 2 seeds + 1 retry

    std::string text = serialise(f);
    JsonParser parser(text);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << text;

    const auto &cells = root.at("sweeps").items[0].at("cells");
    ASSERT_EQ(cells.items.size(), 4u);

    // The failed cell is an {error, attempts} record with no
    // measurement fields a consumer could mistake for data.
    const auto &bad = cells.items[1];
    EXPECT_EQ(bad.at("error").str,
              "injected fault (fail-always) at job 3");
    EXPECT_EQ(bad.at("attempts").number, 3);
    EXPECT_FALSE(bad.has("cycles"));
    EXPECT_FALSE(bad.has("ops"));
    EXPECT_FALSE(bad.has("seed_cycles"));

    // The retried-but-ok cell keeps its measurement and reports the
    // attempt count; untouched cells stay byte-identical (no
    // "attempts" key at all).
    const auto &retried = cells.items[2];
    EXPECT_EQ(retried.at("attempts").number, 3);
    EXPECT_TRUE(retried.has("cycles"));
    EXPECT_FALSE(cells.items[0].has("attempts"));
    EXPECT_FALSE(cells.items[0].has("error"));
}

TEST(Results, SerialisationIsByteStable)
{
    ResultsFile f = sampleResults();
    EXPECT_EQ(serialise(f), serialise(f));
}

TEST(Results, RealSweepSerialisesAndParses)
{
    // End to end with a genuine (tiny) sweep through the runner, run
    // twice: fixed seeds must give byte-identical JSON.
    auto buildFile = [] {
        auto p = workload::profileByName("sjeng");
        p.targetKiloInsts = 10;
        auto rs = SweepRunner(2).run(
            {makePresetJob(p, ExpConfig::Plain),
             makePresetJob(p, ExpConfig::RestSecureFull)});

        ResultsFile f;
        f.figure = "unit";
        f.kiloInsts = 10;
        f.seedsPerCell = 1;
        f.jobs = 2;
        SweepResults sweep;
        sweep.name = "tiny";
        sweep.columns = {"Plain", "Secure Full"};
        sweep.rows = {"sjeng"};
        for (const auto &r : rs) {
            const Measurement &m = r.measurement;
            SweepCell cell;
            cell.bench = m.bench;
            cell.column = m.label;
            cell.cycles = m.cycles;
            cell.ops = m.ops;
            cell.seedCycles = {m.cycles};
            cell.scalars = m.scalars;
            sweep.cells.push_back(cell);
        }
        Cycles base = rs[0].measurement.cycles;
        Cycles secure = rs[1].measurement.cycles;
        sweep.baselineCycles["sjeng"] = base;
        sweep.wtdAriMeanPct["Secure Full"] =
            wtdAriMeanOverheadPct({base}, {secure});
        sweep.geoMeanPct["Secure Full"] =
            geoMeanOverheadPct({base}, {secure});
        f.sweeps.push_back(sweep);
        return f;
    };

    std::string first = serialise(buildFile());
    std::string second = serialise(buildFile());
    EXPECT_EQ(first, second);

    JsonParser parser(first);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok());
    const auto &sweep = root.at("sweeps").items.at(0);
    ASSERT_EQ(sweep.at("cells").items.size(), 2u);
    EXPECT_EQ(sweep.at("cells").items[0].at("column").str, "Plain");
    EXPECT_EQ(sweep.at("cells").items[1].at("column").str,
              "Secure Full");
    EXPECT_TRUE(sweep.at("wtd_ari_mean_pct").has("Secure Full"));
    EXPECT_TRUE(sweep.at("geo_mean_pct").has("Secure Full"));
    EXPECT_FALSE(
        sweep.at("cells").items[1].at("scalars").members.empty());
}

TEST(Results, WriteJsonFileRejectsBadPath)
{
    EXPECT_FALSE(writeJsonFile(sampleResults(),
                               "/nonexistent-dir/out.json"));
}

TEST(Results, WriteJsonFileRoundTripsThroughDisk)
{
    ResultsFile f = sampleResults();
    std::string path = testing::TempDir() + "/rest_results_test.json";
    ASSERT_TRUE(writeJsonFile(f, path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), serialise(f));
}

} // namespace rest::sim
