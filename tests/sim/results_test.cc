/**
 * @file
 * Round-trip regression tests for the sweep results layer: a
 * serialised ResultsFile parses back (with the minimal JSON reader
 * below) with every cell, mean and configuration name present, and
 * serialisation is byte-stable across runs with fixed seeds.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/results.hh"
#include "sim/sweep.hh"

namespace rest::sim
{

namespace
{

// ---- A minimal JSON reader, just enough to validate round trips ----

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = members.find(key);
        EXPECT_NE(it, members.end()) << "missing key " << key;
        static const JsonValue nil;
        return it == members.end() ? nil : it->second;
    }
    bool has(const std::string &key) const
    { return members.count(key) != 0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing garbage";
        return v;
    }

    bool ok() const { return ok_; }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ok_ = false;
            return '\0';
        }
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            ok_ = false;
        else
            ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            v.members.emplace(key.str, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        expect('}');
        return v;
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        expect(']');
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::String;
        expect('"');
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                char e = s_[pos_++];
                switch (e) {
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'r': v.str += '\r'; break;
                  case 'b': v.str += '\b'; break;
                  case 'f': v.str += '\f'; break;
                  case 'u':
                    // Only \u00XX is emitted by the writer.
                    if (pos_ + 4 <= s_.size()) {
                        v.str += char(std::stoi(s_.substr(pos_ + 2, 2),
                                                nullptr, 16));
                        pos_ += 4;
                    }
                    break;
                  default: v.str += e;
                }
            } else {
                v.str += c;
            }
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            ok_ = false;
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        JsonValue v;
        if (s_.compare(pos_, 4, "null") == 0)
            pos_ += 4;
        else
            ok_ = false;
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Number;
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// ---- Fixtures ----

/** A small but fully populated results file. */
ResultsFile
sampleResults()
{
    ResultsFile f;
    f.figure = "fig7";
    f.kiloInsts = 10;
    f.seedsPerCell = 2;
    f.jobs = 4;

    SweepResults sweep;
    sweep.name = "overheads";
    sweep.columns = {"Plain", "ASan"};
    sweep.rows = {"sjeng", "hmmer"};
    for (const char *bench : {"sjeng", "hmmer"}) {
        for (const char *col : {"Plain", "ASan"}) {
            SweepCell cell;
            cell.bench = bench;
            cell.column = col;
            cell.cycles = 1000 + 7 * cell.bench.size();
            cell.ops = 500;
            cell.seedCycles = {990, 1010};
            cell.scalars = {{"o3cpu.iq_full_stall_cycles", 3},
                            {"l1d.token_evictions", 1}};
            sweep.cells.push_back(cell);
        }
    }
    sweep.baselineCycles = {{"sjeng", 1035}, {"hmmer", 1035}};
    sweep.wtdAriMeanPct = {{"ASan", 41.5}};
    sweep.geoMeanPct = {{"ASan", 39.25}};
    f.sweeps.push_back(sweep);
    return f;
}

std::string
serialise(const ResultsFile &f)
{
    std::ostringstream os;
    writeJson(f, os);
    return os.str();
}

} // namespace

TEST(Results, RoundTripPreservesEverything)
{
    ResultsFile f = sampleResults();
    std::string text = serialise(f);

    JsonParser parser(text);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << text;

    EXPECT_EQ(root.at("schema_version").number, 1);
    EXPECT_EQ(root.at("figure").str, "fig7");
    EXPECT_EQ(root.at("kiloinsts").number, 10);
    EXPECT_EQ(root.at("seeds_per_cell").number, 2);
    EXPECT_EQ(root.at("jobs").number, 4);

    const auto &sweeps = root.at("sweeps");
    ASSERT_EQ(sweeps.kind, JsonValue::Array);
    ASSERT_EQ(sweeps.items.size(), 1u);
    const auto &sweep = sweeps.items[0];
    EXPECT_EQ(sweep.at("name").str, "overheads");

    // Config (column) and row names all present.
    const auto &cols = sweep.at("columns");
    ASSERT_EQ(cols.items.size(), 2u);
    EXPECT_EQ(cols.items[0].str, "Plain");
    EXPECT_EQ(cols.items[1].str, "ASan");
    ASSERT_EQ(sweep.at("rows").items.size(), 2u);

    // Every cell with cycles, ops, per-seed cycles and scalars.
    const auto &cells = sweep.at("cells");
    ASSERT_EQ(cells.items.size(), 4u);
    for (const auto &cell : cells.items) {
        EXPECT_FALSE(cell.at("bench").str.empty());
        EXPECT_FALSE(cell.at("column").str.empty());
        EXPECT_GT(cell.at("cycles").number, 0);
        EXPECT_EQ(cell.at("ops").number, 500);
        ASSERT_EQ(cell.at("seed_cycles").items.size(), 2u);
        EXPECT_EQ(cell.at("seed_cycles").items[0].number, 990);
        const auto &scalars = cell.at("scalars");
        EXPECT_EQ(scalars.at("o3cpu.iq_full_stall_cycles").number, 3);
        EXPECT_EQ(scalars.at("l1d.token_evictions").number, 1);
    }

    // Baseline and the aggregate means.
    EXPECT_EQ(sweep.at("baseline_cycles").at("sjeng").number, 1035);
    EXPECT_EQ(sweep.at("wtd_ari_mean_pct").at("ASan").number, 41.5);
    EXPECT_EQ(sweep.at("geo_mean_pct").at("ASan").number, 39.25);
}

TEST(Results, SerialisationIsByteStable)
{
    ResultsFile f = sampleResults();
    EXPECT_EQ(serialise(f), serialise(f));
}

TEST(Results, RealSweepSerialisesAndParses)
{
    // End to end with a genuine (tiny) sweep through the runner, run
    // twice: fixed seeds must give byte-identical JSON.
    auto buildFile = [] {
        auto p = workload::profileByName("sjeng");
        p.targetKiloInsts = 10;
        auto ms = SweepRunner(2).run(
            {makePresetJob(p, ExpConfig::Plain),
             makePresetJob(p, ExpConfig::RestSecureFull)});

        ResultsFile f;
        f.figure = "unit";
        f.kiloInsts = 10;
        f.seedsPerCell = 1;
        f.jobs = 2;
        SweepResults sweep;
        sweep.name = "tiny";
        sweep.columns = {"Plain", "Secure Full"};
        sweep.rows = {"sjeng"};
        for (const auto &m : ms) {
            SweepCell cell;
            cell.bench = m.bench;
            cell.column = m.label;
            cell.cycles = m.cycles;
            cell.ops = m.ops;
            cell.seedCycles = {m.cycles};
            cell.scalars = m.scalars;
            sweep.cells.push_back(cell);
        }
        sweep.baselineCycles["sjeng"] = ms[0].cycles;
        sweep.wtdAriMeanPct["Secure Full"] =
            wtdAriMeanOverheadPct({ms[0].cycles}, {ms[1].cycles});
        sweep.geoMeanPct["Secure Full"] =
            geoMeanOverheadPct({ms[0].cycles}, {ms[1].cycles});
        f.sweeps.push_back(sweep);
        return f;
    };

    std::string first = serialise(buildFile());
    std::string second = serialise(buildFile());
    EXPECT_EQ(first, second);

    JsonParser parser(first);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok());
    const auto &sweep = root.at("sweeps").items.at(0);
    ASSERT_EQ(sweep.at("cells").items.size(), 2u);
    EXPECT_EQ(sweep.at("cells").items[0].at("column").str, "Plain");
    EXPECT_EQ(sweep.at("cells").items[1].at("column").str,
              "Secure Full");
    EXPECT_TRUE(sweep.at("wtd_ari_mean_pct").has("Secure Full"));
    EXPECT_TRUE(sweep.at("geo_mean_pct").has("Secure Full"));
    EXPECT_FALSE(
        sweep.at("cells").items[1].at("scalars").members.empty());
}

TEST(Results, WriteJsonFileRejectsBadPath)
{
    EXPECT_FALSE(writeJsonFile(sampleResults(),
                               "/nonexistent-dir/out.json"));
}

TEST(Results, WriteJsonFileRoundTripsThroughDisk)
{
    ResultsFile f = sampleResults();
    std::string path = testing::TempDir() + "/rest_results_test.json";
    ASSERT_TRUE(writeJsonFile(f, path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), serialise(f));
}

} // namespace rest::sim
