/**
 * @file
 * Simulation-fidelity layer, part 1: the fast-functional driver must
 * be *detection-equivalent* to the detailed O3 pipeline. Fault
 * detection is architectural (the emulator marks the faulting DynOp);
 * the timing model only decides when the fault is reported. So for
 * every attack scenario and every protection scheme, fast-functional
 * and detailed runs must agree on: whether a violation was raised,
 * the (normalised) violation kind, the faulting PC, the faulting data
 * address, the dynamic sequence number, and the retired-op count.
 *
 * Normalisation: the detailed LSQ may refine an architectural
 * TokenAccess into TokenForward when the tripping token's arm is
 * still in flight — same op, same pc/seq/address, a strictly more
 * specific kind. The functional driver has no LSQ, so kinds compare
 * modulo TokenForward == TokenAccess.
 *
 * Registered under the `fidelity` ctest label; CI runs it under both
 * ASan and TSan.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/test_util.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using core::ViolationKind;
using sim::ExpConfig;

namespace
{

/** Everything two execution modes must agree on. */
struct Outcome
{
    bool faulted = false;
    ViolationKind kind = ViolationKind::None;
    Addr pc = 0;
    Addr faultAddr = invalidAddr;
    std::uint64_t seq = 0;
    std::uint64_t ops = 0;
    std::array<std::uint64_t, 5> opsBySource{};
    std::array<std::uint64_t, isa::numRegs> regs{};
};

ViolationKind
normalizeKind(ViolationKind kind)
{
    return kind == ViolationKind::TokenForward
               ? ViolationKind::TokenAccess
               : kind;
}

Outcome
runMode(isa::Program program, ExpConfig config, bool fast_functional)
{
    sim::SystemConfig cfg = sim::makeSystemConfig(config);
    cfg.exec.fastFunctional = fast_functional;
    sim::System system(std::move(program), cfg);
    sim::SystemResult r = system.run();

    Outcome o;
    o.faulted = r.faulted();
    o.kind = normalizeKind(r.run.violation.kind);
    o.pc = r.run.violation.pc;
    o.faultAddr = r.run.violation.faultAddr;
    o.seq = r.run.violation.seq;
    o.ops = r.run.committedOps;
    o.opsBySource = r.run.opsBySource;
    for (unsigned i = 0; i < isa::numRegs; ++i)
        o.regs[i] = system.emulator().reg(isa::RegId(i));
    return o;
}

void
expectEquivalent(const Outcome &detailed, const Outcome &fast,
                 const std::string &what)
{
    EXPECT_EQ(detailed.faulted, fast.faulted) << what;
    EXPECT_EQ(detailed.kind, fast.kind) << what;
    EXPECT_EQ(detailed.ops, fast.ops) << what;
    EXPECT_EQ(detailed.opsBySource, fast.opsBySource) << what;
    if (detailed.faulted && fast.faulted) {
        EXPECT_EQ(detailed.pc, fast.pc) << what;
        EXPECT_EQ(detailed.faultAddr, fast.faultAddr) << what;
        EXPECT_EQ(detailed.seq, fast.seq) << what;
    }
    // Architectural end state is the emulator's either way; identical
    // registers prove the functional path drained the same op stream.
    EXPECT_EQ(detailed.regs, fast.regs) << what;
}

struct Scenario
{
    const char *name;
    std::function<isa::Program()> build;
};

const std::vector<Scenario> &
scenarios()
{
    using namespace workload::attacks;
    static const std::vector<Scenario> cases = {
        {"heartbleed", [] { return heartbleed(64, 256); }},
        {"heap-overflow", [] { return heapOverflowWrite(64, 64); }},
        {"heap-underflow", [] { return heapUnderflowRead(64, 8); }},
        {"use-after-free", [] { return useAfterFree(128); }},
        {"double-free", [] { return doubleFree(64); }},
        {"stack-overflow", [] { return stackOverflowWrite(16, 32); }},
        {"brute-force-disarm", [] { return bruteForceDisarm(); }},
        {"strcpy-overflow", [] { return strcpyOverflow(32, 150); }},
        {"pad-overflow", [] { return stackPadOverflow(64, 4); }},
    };
    return cases;
}

const std::vector<ExpConfig> &
allConfigs()
{
    static const std::vector<ExpConfig> configs = {
        ExpConfig::Plain,          ExpConfig::Asan,
        ExpConfig::RestDebugFull,  ExpConfig::RestSecureFull,
        ExpConfig::PerfectHwFull,  ExpConfig::RestDebugHeap,
        ExpConfig::RestSecureHeap, ExpConfig::PerfectHwHeap,
    };
    return configs;
}

} // namespace

TEST(FastFunctionalFidelity, EveryAttackEveryScheme)
{
    for (const auto &sc : scenarios()) {
        for (ExpConfig config : allConfigs()) {
            const std::string what = std::string(sc.name) + " under " +
                                     sim::expConfigName(config);
            Outcome detailed = runMode(sc.build(), config, false);
            Outcome fast = runMode(sc.build(), config, true);
            expectEquivalent(detailed, fast, what);
        }
    }
}

TEST(FastFunctionalFidelity, BenignWorkloadsIdenticalArchState)
{
    for (const char *name : {"gobmk", "bzip2"}) {
        for (ExpConfig config :
             {ExpConfig::Plain, ExpConfig::Asan,
              ExpConfig::RestSecureFull, ExpConfig::RestDebugHeap}) {
            auto p = workload::profileByName(name);
            p.targetKiloInsts = 20;
            const std::string what = std::string(name) + " under " +
                                     sim::expConfigName(config);
            Outcome detailed =
                runMode(workload::generate(p), config, false);
            Outcome fast = runMode(workload::generate(p), config, true);
            EXPECT_FALSE(detailed.faulted) << what;
            expectEquivalent(detailed, fast, what);
        }
    }
}

TEST(FastFunctionalFidelity, MaxOpsCapRespected)
{
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 20;
    sim::SystemConfig cfg =
        sim::makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.exec.fastFunctional = true;
    cfg.maxOps = 1234;
    sim::System system(workload::generate(p), cfg);
    sim::SystemResult r = system.run();
    EXPECT_EQ(r.run.committedOps, 1234u);
    EXPECT_TRUE(r.fastFunctional);
    // Nominal-CPI contract: cycles == retired ops, never quotable.
    EXPECT_EQ(r.run.cycles, Cycles(1234));
}

TEST(FastFunctionalFidelity, StatsTrackRetirement)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 10;
    sim::SystemConfig cfg = sim::makeSystemConfig(ExpConfig::Plain);
    cfg.exec.fastFunctional = true;
    sim::System system(workload::generate(p), cfg);
    sim::SystemResult r = system.run();

    std::uint64_t retired = 0, batches = 0;
    system.cpuStats().forEachScalar(
        [&](const std::string &name, std::uint64_t v) {
            if (name == "fastfunc.retired_ops")
                retired = v;
            else if (name == "fastfunc.batches")
                batches = v;
        });
    EXPECT_EQ(retired, r.run.committedOps);
    EXPECT_GT(batches, 0u);
}

} // namespace rest
