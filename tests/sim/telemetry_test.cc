/**
 * @file
 * The live-telemetry layer end to end (DESIGN.md §12): sweep lifecycle
 * events on the bus and in the --event-log JSONL file (byte-exact
 * round-trip), the /status and /metrics documents over a deterministic
 * two-job sweep, and a genuine mid-sweep HTTP poll against a running
 * SweepRunner via the slow fault injector.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/http_client.hh"
#include "sim/sweep.hh"
#include "sim/sweep_events.hh"
#include "sim/sweep_status.hh"
#include "util/http_server.hh"
#include "util/json_reader.hh"
#include "util/metrics.hh"

namespace rest::sim
{

namespace
{

/** Two cheap, distinguishable jobs. */
std::vector<SweepJob>
twoJobSweep()
{
    std::vector<SweepJob> jobs;
    for (const char *bench : {"sjeng", "hmmer"}) {
        auto p = workload::profileByName(bench);
        p.targetKiloInsts = 10;
        jobs.push_back(makePresetJob(p, ExpConfig::Plain));
    }
    return jobs;
}

std::string
tmpPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + "rest_telemetry_" +
                       name + ".jsonl";
    std::remove(path.c_str());
    return path;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

util::JsonValue
parseJson(const std::string &text)
{
    util::JsonReader reader(text);
    util::JsonValue v = reader.parse();
    EXPECT_TRUE(reader.ok()) << text;
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Event bus and JSONL log
// ---------------------------------------------------------------------

TEST(SweepEvents, NamesRoundTrip)
{
    for (auto kind : {SweepEventKind::SweepBegin,
                      SweepEventKind::Queued, SweepEventKind::Running,
                      SweepEventKind::Retrying, SweepEventKind::Done,
                      SweepEventKind::Failed}) {
        auto back = sweepEventFromName(sweepEventName(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(sweepEventFromName("exploded").has_value());
}

TEST(SweepEvents, BusAssignsMonotonicSeqAcrossListeners)
{
    SweepEventBus bus;
    std::vector<std::uint64_t> a, b;
    bus.subscribe([&](const SweepEvent &e) { a.push_back(e.seq); });
    bus.subscribe([&](const SweepEvent &e) { b.push_back(e.seq); });
    for (int i = 0; i < 5; ++i)
        bus.publish(SweepEvent{});
    EXPECT_EQ(bus.eventCount(), 5u);
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a, b); // every listener sees the same total order
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(a[i], i);
}

TEST(SweepTelemetry, EventLogIsReplayableByteExactly)
{
    const std::string path = tmpPath("event_log");
    SweepEventBus bus;
    SweepEventLog log(path);
    ASSERT_TRUE(log.ok());
    bus.subscribe([&](const SweepEvent &e) { log.append(e); });

    SweepOptions opts;
    opts.sweepName = "unit";
    opts.events = &bus;
    const auto jobs = twoJobSweep();
    const auto results = SweepRunner(1, opts).run(jobs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[1].ok);

    const auto lines = readLines(path);
    // sweep-begin + 2 queued + 2 running + 2 done.
    ASSERT_EQ(lines.size(), 7u);
    ASSERT_EQ(bus.eventCount(), lines.size());

    for (std::size_t i = 0; i < lines.size(); ++i) {
        util::JsonValue v = parseJson(lines[i]);
        auto event = SweepEvent::fromJson(v);
        ASSERT_TRUE(event.has_value()) << lines[i];
        // Sequence numbers are monotonic in file order.
        EXPECT_EQ(event->seq, i);
        EXPECT_EQ(event->sweep, "unit");
        // Byte-exact replay: parse -> re-serialise reproduces the
        // logged line exactly.
        std::ostringstream os;
        event->writeJsonLine(os);
        EXPECT_EQ(os.str(), lines[i] + "\n");
    }

    // The lifecycle shape: begin first (with the totals), then both
    // queued events, then running/done per job in submission order.
    std::vector<SweepEvent> events;
    for (const auto &l : lines)
        events.push_back(*SweepEvent::fromJson(parseJson(l)));
    EXPECT_EQ(events[0].kind, SweepEventKind::SweepBegin);
    EXPECT_EQ(events[0].totalJobs, 2u);
    EXPECT_EQ(events[0].threads, 1u);
    EXPECT_EQ(events[1].kind, SweepEventKind::Queued);
    EXPECT_EQ(events[2].kind, SweepEventKind::Queued);
    std::size_t done_seen = 0;
    for (const auto &e : events) {
        if (e.kind != SweepEventKind::Done)
            continue;
        ++done_seen;
        EXPECT_EQ(e.attempt, 1u);
        EXPECT_GT(e.ops, 0u);
        EXPECT_FALSE(e.fromCheckpoint);
    }
    EXPECT_EQ(done_seen, 2u);
}

TEST(SweepTelemetry, RetryLifecycleShowsInEvents)
{
    SweepEventBus bus;
    std::vector<SweepEvent> events;
    bus.subscribe([&](const SweepEvent &e) { events.push_back(e); });

    SweepOptions opts;
    opts.sweepName = "retry";
    opts.events = &bus;
    opts.retries = 1;
    opts.fault = SweepFaultInjector::parse("fail-once:0").value();
    const auto results = SweepRunner(1, opts).run(twoJobSweep());
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2u);

    std::vector<SweepEventKind> job0;
    for (const auto &e : events)
        if (e.kind != SweepEventKind::SweepBegin && e.job == 0)
            job0.push_back(e.kind);
    EXPECT_EQ(job0, (std::vector<SweepEventKind>{
                        SweepEventKind::Queued, SweepEventKind::Running,
                        SweepEventKind::Retrying,
                        SweepEventKind::Running, SweepEventKind::Done}));
}

TEST(SweepTelemetry, FromJsonRejectsSchemaViolations)
{
    // A well-formed line...
    SweepEvent e;
    e.kind = SweepEventKind::Done;
    std::ostringstream os;
    e.writeJsonLine(os);
    ASSERT_TRUE(
        SweepEvent::fromJson(parseJson(os.str())).has_value());
    // ...but unknown event names and missing fields are rejected.
    EXPECT_FALSE(SweepEvent::fromJson(
                     parseJson("{\"seq\": 0, \"event\": \"nope\"}"))
                     .has_value());
    EXPECT_FALSE(
        SweepEvent::fromJson(parseJson("{\"seq\": 0}")).has_value());
    EXPECT_FALSE(
        SweepEvent::fromJson(parseJson("[1, 2]")).has_value());
}

// ---------------------------------------------------------------------
// /status document
// ---------------------------------------------------------------------

TEST(SweepTelemetry, StatusSchemaAfterDeterministicSweep)
{
    SweepEventBus bus;
    SweepStatusTracker tracker;
    bus.subscribe(
        [&](const SweepEvent &e) { tracker.onEvent(e); });

    SweepOptions opts;
    opts.sweepName = "overheads";
    opts.events = &bus;
    const auto results = SweepRunner(1, opts).run(twoJobSweep());
    ASSERT_TRUE(results[0].ok && results[1].ok);
    EXPECT_EQ(tracker.completedJobs(), 2u);

    util::JsonValue v = parseJson(tracker.statusJson());
    EXPECT_EQ(v.at("schema_version").u64(), 1u);
    EXPECT_EQ(v.at("sweep").str, "overheads");
    EXPECT_EQ(v.at("sweeps_started").u64(), 1u);
    EXPECT_EQ(v.at("total_jobs").u64(), 2u);
    EXPECT_EQ(v.at("threads").u64(), 1u);
    EXPECT_GE(v.at("elapsed_ms").number, 0.0);
    EXPECT_DOUBLE_EQ(v.at("progress").number, 1.0);
    // Complete sweep: nothing remains, so the ETA extrapolates to 0.
    ASSERT_EQ(v.at("eta_ms").kind, util::JsonValue::Number);
    EXPECT_DOUBLE_EQ(v.at("eta_ms").number, 0.0);
    // Live KIPS is derivable once jobs completed with wall time.
    EXPECT_EQ(v.at("kips_live").kind, util::JsonValue::Number);
    EXPECT_GT(v.at("kips_live").number, 0.0);
    EXPECT_EQ(v.at("checkpoint").at("restored").u64(), 0u);

    const util::JsonValue &counts = v.at("state_counts");
    EXPECT_EQ(counts.at("queued").u64(), 0u);
    EXPECT_EQ(counts.at("running").u64(), 0u);
    EXPECT_EQ(counts.at("retrying").u64(), 0u);
    EXPECT_EQ(counts.at("done").u64(), 2u);
    EXPECT_EQ(counts.at("failed").u64(), 0u);

    ASSERT_EQ(v.at("jobs").kind, util::JsonValue::Array);
    ASSERT_EQ(v.at("jobs").items.size(), 2u);
    const char *benches[] = {"sjeng", "hmmer"};
    for (std::size_t i = 0; i < 2; ++i) {
        const util::JsonValue &job = v.at("jobs").items[i];
        EXPECT_EQ(job.at("index").u64(), i);
        EXPECT_EQ(job.at("bench").str, benches[i]);
        EXPECT_EQ(job.at("label").str, "Plain");
        EXPECT_EQ(job.at("state").str, "done");
        EXPECT_EQ(job.at("attempts").u64(), 1u);
        EXPECT_GT(job.at("ops").u64(), 0u);
        EXPECT_FALSE(job.at("from_checkpoint").boolean);
        EXPECT_FALSE(job.at("timed_out").boolean);
        EXPECT_EQ(job.at("error").str, "");
        if (job.at("wall_ms").number > 0)
            EXPECT_EQ(job.at("kips").kind, util::JsonValue::Number);
    }
}

TEST(SweepTelemetry, StatusBeforeAnySweepIsEmptyButValid)
{
    SweepStatusTracker tracker;
    util::JsonValue v = parseJson(tracker.statusJson());
    EXPECT_EQ(v.at("schema_version").u64(), 1u);
    EXPECT_EQ(v.at("sweep").str, "");
    EXPECT_EQ(v.at("total_jobs").u64(), 0u);
    EXPECT_DOUBLE_EQ(v.at("progress").number, 0.0);
    EXPECT_EQ(v.at("eta_ms").kind, util::JsonValue::Null);
    EXPECT_EQ(v.at("kips_live").kind, util::JsonValue::Null);
    EXPECT_TRUE(v.at("jobs").items.empty());
}

// ---------------------------------------------------------------------
// /metrics document
// ---------------------------------------------------------------------

TEST(SweepTelemetry, MetricsGoldenAfterDeterministicSweep)
{
    telemetry::MetricRegistry registry;
    SweepEventBus bus;
    SweepStatusTracker tracker(&registry);
    bus.subscribe(
        [&](const SweepEvent &e) { tracker.onEvent(e); });

    SweepOptions opts;
    opts.sweepName = "overheads";
    opts.events = &bus;
    opts.registry = &registry;
    const auto results = SweepRunner(1, opts).run(twoJobSweep());
    ASSERT_TRUE(results[0].ok && results[1].ok);

    // The job-wall-time histogram instances are timing-dependent;
    // everything else is a pure function of the lifecycle and must
    // reproduce byte-for-byte.
    std::istringstream in(registry.prometheusText());
    std::string line, stable;
    std::size_t wall_ms_samples = 0;
    while (std::getline(in, line)) {
        if (line.rfind("rest_sweep_job_wall_ms", 0) == 0) {
            if (line.rfind("rest_sweep_job_wall_ms_count", 0) == 0)
                wall_ms_samples =
                    std::stoul(line.substr(line.rfind(' ') + 1));
            continue;
        }
        stable += line + "\n";
    }
    EXPECT_EQ(wall_ms_samples, 2u);
    EXPECT_EQ(
        stable,
        "# HELP rest_instr_checks_coalesced Shadow-check groups "
        "folded into a widened neighbour\n"
        "# TYPE rest_instr_checks_coalesced counter\n"
        "rest_instr_checks_coalesced{sweep=\"overheads\"} 0\n"
        "# HELP rest_instr_checks_elided Shadow-check groups deleted "
        "as redundant\n"
        "# TYPE rest_instr_checks_elided counter\n"
        "rest_instr_checks_elided{sweep=\"overheads\"} 0\n"
        "# HELP rest_instr_checks_emitted Shadow-check groups "
        "emitted by instrumentation\n"
        "# TYPE rest_instr_checks_emitted counter\n"
        "rest_instr_checks_emitted{sweep=\"overheads\"} 0\n"
        "# HELP rest_instr_checks_hoisted Shadow-check groups "
        "hoisted into loop preheaders\n"
        "# TYPE rest_instr_checks_hoisted counter\n"
        "rest_instr_checks_hoisted{sweep=\"overheads\"} 0\n"
        "# HELP rest_sweep_events_total Sweep lifecycle events by "
        "kind\n"
        "# TYPE rest_sweep_events_total counter\n"
        "rest_sweep_events_total{event=\"done\"} 2\n"
        "rest_sweep_events_total{event=\"failed\"} 0\n"
        "rest_sweep_events_total{event=\"queued\"} 2\n"
        "rest_sweep_events_total{event=\"retrying\"} 0\n"
        "rest_sweep_events_total{event=\"running\"} 2\n"
        "rest_sweep_events_total{event=\"sweep-begin\"} 1\n"
        "# HELP rest_sweep_job_retries_total Transient job failures "
        "that were retried\n"
        "# TYPE rest_sweep_job_retries_total counter\n"
        "rest_sweep_job_retries_total 0\n"
        "# HELP rest_sweep_job_wall_ms Wall-clock time of terminal "
        "job attempts (ms)\n"
        "# TYPE rest_sweep_job_wall_ms histogram\n"
        "# HELP rest_sweep_jobs_completed_total Terminal job "
        "outcomes\n"
        "# TYPE rest_sweep_jobs_completed_total counter\n"
        "rest_sweep_jobs_completed_total{result=\"done\"} 2\n"
        "rest_sweep_jobs_completed_total{result=\"failed\"} 0\n"
        "# HELP rest_sweep_jobs_restored_total Jobs restored from a "
        "checkpoint\n"
        "# TYPE rest_sweep_jobs_restored_total counter\n"
        "rest_sweep_jobs_restored_total 0\n"
        "# HELP rest_sweep_jobs_running Jobs currently executing\n"
        "# TYPE rest_sweep_jobs_running gauge\n"
        "rest_sweep_jobs_running 0\n"
        "# HELP rest_sweep_progress_ratio Completed fraction of the "
        "current sweep\n"
        "# TYPE rest_sweep_progress_ratio gauge\n"
        "rest_sweep_progress_ratio 1\n"
        "# HELP rest_sweep_sweeps_total Sweeps started\n"
        "# TYPE rest_sweep_sweeps_total counter\n"
        "rest_sweep_sweeps_total 1\n"
        "# HELP rest_sweep_total_jobs Jobs in the current sweep\n"
        "# TYPE rest_sweep_total_jobs gauge\n"
        "rest_sweep_total_jobs 2\n");
}

// ---------------------------------------------------------------------
// Mid-sweep HTTP polling
// ---------------------------------------------------------------------

TEST(SweepTelemetry, MidSweepHttpPollSeesRunningJobs)
{
    telemetry::MetricRegistry registry;
    SweepEventBus bus;
    SweepStatusTracker tracker(&registry);
    bus.subscribe(
        [&](const SweepEvent &e) { tracker.onEvent(e); });

    telemetry::HttpServer server;
    server.route("/metrics", [&](const telemetry::HttpRequest &) {
        telemetry::HttpResponse r;
        r.contentType = "text/plain; version=0.0.4; charset=utf-8";
        r.body = registry.prometheusText();
        return r;
    });
    server.route("/status", [&](const telemetry::HttpRequest &) {
        telemetry::HttpResponse r;
        r.contentType = "application/json";
        r.body = tracker.statusJson();
        return r;
    });
    server.route("/healthz", [](const telemetry::HttpRequest &) {
        telemetry::HttpResponse r;
        r.body = "ok\n";
        return r;
    });
    ASSERT_TRUE(server.start(0));

    EXPECT_EQ(test::httpGet(server.port(), "/healthz").body, "ok\n");

    // Job 0 sleeps 1.5 s on its first attempt, so with two workers the
    // sweep is guaranteed to be mid-flight while we poll.
    SweepOptions opts;
    opts.sweepName = "poll";
    opts.events = &bus;
    opts.registry = &registry;
    opts.fault = SweepFaultInjector::parse("slow:0:1500").value();
    std::vector<JobResult> results;
    std::thread sweep([&] {
        results = SweepRunner(2, opts).run(twoJobSweep());
    });

    bool saw_midflight = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
        auto resp = test::httpGet(server.port(), "/status");
        ASSERT_TRUE(resp.ok);
        util::JsonValue v = parseJson(resp.body);
        const util::JsonValue &counts = v.at("state_counts");
        if (counts.at("running").u64() >= 1 &&
            v.at("progress").number < 1.0) {
            saw_midflight = true;
            // The pool gauges are live while the sweep runs.
            auto metrics = test::httpGet(server.port(), "/metrics");
            EXPECT_NE(metrics.body.find(
                          "rest_pool_threads{pool=\"sweep\"} 2\n"),
                      std::string::npos);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    sweep.join();
    EXPECT_TRUE(saw_midflight);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok && results[1].ok);
    auto final_status = test::httpGet(server.port(), "/status");
    util::JsonValue v = parseJson(final_status.body);
    EXPECT_DOUBLE_EQ(v.at("progress").number, 1.0);
    EXPECT_EQ(v.at("state_counts").at("done").u64(), 2u);
}

// ---------------------------------------------------------------------
// Byte-identity with telemetry off
// ---------------------------------------------------------------------

TEST(SweepTelemetry, ResultsIdenticalWithAndWithoutTelemetry)
{
    const auto jobs = twoJobSweep();

    SweepOptions plain_opts;
    const auto plain = SweepRunner(1, plain_opts).run(jobs);

    telemetry::MetricRegistry registry;
    SweepEventBus bus;
    SweepStatusTracker tracker(&registry);
    bus.subscribe(
        [&](const SweepEvent &e) { tracker.onEvent(e); });
    const std::string path = tmpPath("identity");
    SweepEventLog log(path);
    bus.subscribe([&](const SweepEvent &e) { log.append(e); });
    SweepOptions tele_opts;
    tele_opts.sweepName = "identity";
    tele_opts.events = &bus;
    tele_opts.registry = &registry;
    const auto observed = SweepRunner(2, tele_opts).run(jobs);

    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].ok, observed[i].ok);
        EXPECT_EQ(plain[i].attempts, observed[i].attempts);
        EXPECT_EQ(plain[i].measurement.cycles,
                  observed[i].measurement.cycles);
        EXPECT_EQ(plain[i].measurement.ops,
                  observed[i].measurement.ops);
    }
}

} // namespace rest::sim
