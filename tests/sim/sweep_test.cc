/**
 * @file
 * The parallel ≡ serial contract of sim::SweepRunner: for any thread
 * count, the Measurement vector is cycle-for-cycle identical to
 * running the same jobs serially through runBench()/runCustom(), and
 * repeated runs with the same seeds reproduce byte-identical results.
 */

#include <gtest/gtest.h>

#include "sim/sweep.hh"

namespace rest::sim
{

namespace
{

/** 3 benchmarks × 3 configs × 2 seeds, small enough for a unit test. */
std::vector<SweepJob>
testMatrix()
{
    const char *benches[] = {"sjeng", "hmmer", "xalancbmk"};
    const ExpConfig configs[] = {ExpConfig::Plain, ExpConfig::Asan,
                                 ExpConfig::RestSecureFull};
    std::vector<SweepJob> jobs;
    for (const char *bench : benches) {
        for (ExpConfig config : configs) {
            for (unsigned s = 0; s < 2; ++s) {
                auto p = workload::profileByName(bench);
                p.targetKiloInsts = 20;
                p.seed = p.seed + 0x1000 * s;
                jobs.push_back(makePresetJob(p, config));
            }
        }
    }
    return jobs;
}

void
expectIdentical(const Measurement &a, const Measurement &b)
{
    EXPECT_EQ(a.bench, b.bench);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.scalars, b.scalars);
    EXPECT_EQ(a.detail.run.committedOps, b.detail.run.committedOps);
    EXPECT_EQ(a.detail.armsExecuted, b.detail.armsExecuted);
    EXPECT_EQ(a.detail.mallocCalls, b.detail.mallocCalls);
}

} // namespace

TEST(SweepRunner, MatchesSerialRunBenchAtEveryThreadCount)
{
    const auto jobs = testMatrix();

    // The serial reference: direct runBench calls, in order.
    std::vector<Measurement> reference;
    for (const auto &job : jobs)
        reference.push_back(runBench(job.profile, job.config,
                                     job.width, job.inorder));

    for (unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        auto parallel = SweepRunner(threads).run(jobs);
        ASSERT_EQ(parallel.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            SCOPED_TRACE("job=" + std::to_string(i));
            EXPECT_TRUE(parallel[i].ok);
            EXPECT_EQ(parallel[i].attempts, 1u);
            expectIdentical(parallel[i].measurement, reference[i]);
        }
    }
}

TEST(SweepRunner, RepeatedRunsWithSameSeedsAreIdentical)
{
    const auto jobs = testMatrix();
    SweepRunner runner(8);
    auto first = runner.run(jobs);
    auto second = runner.run(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE("job=" + std::to_string(i));
        expectIdentical(first[i].measurement, second[i].measurement);
    }
}

TEST(SweepRunner, CustomConfigJobsMatchRunCustom)
{
    auto p = workload::profileByName("gcc");
    p.targetKiloInsts = 20;
    auto cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.cpuConfig.serializeRestOps = true;

    std::vector<SweepJob> jobs = {
        makeCustomJob(p, cfg, "serialized"),
        makePresetJob(p, ExpConfig::Plain),
    };
    auto parallel = SweepRunner(2).run(jobs);
    ASSERT_EQ(parallel.size(), 2u);

    Measurement ref = runCustom(p, cfg, "serialized");
    expectIdentical(parallel[0].measurement, ref);
    EXPECT_EQ(parallel[0].measurement.label, "serialized");
    EXPECT_EQ(parallel[1].measurement.label, "Plain");
}

TEST(SweepRunner, SeedChangesResults)
{
    // Guard against the sweep accidentally ignoring per-job seeds.
    auto p = workload::profileByName("sjeng");
    p.targetKiloInsts = 20;
    auto p2 = p;
    p2.seed = p.seed + 0x1000;
    auto out = SweepRunner(2).run({makePresetJob(p, ExpConfig::Plain),
                                   makePresetJob(p2,
                                                 ExpConfig::Plain)});
    EXPECT_EQ(out[0].measurement.seed, p.seed);
    EXPECT_EQ(out[1].measurement.seed, p2.seed);
    EXPECT_NE(out[0].measurement.cycles, out[1].measurement.cycles);
}

TEST(SweepRunner, EmptyJobListIsFine)
{
    EXPECT_TRUE(SweepRunner(4).run({}).empty());
}

TEST(SweepRunner, MeasurementCarriesScalars)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;
    auto out = SweepRunner(1).run(
        {makePresetJob(p, ExpConfig::RestSecureFull)});
    ASSERT_EQ(out.size(), 1u);
    const auto &scalars = out[0].measurement.scalars;
    EXPECT_FALSE(scalars.empty());
    // Representative counters from both the CPU and L1-D groups.
    EXPECT_TRUE(scalars.count("o3cpu.iq_full_stall_cycles"));
    EXPECT_TRUE(scalars.count("l1d.token_evictions"));
}

} // namespace rest::sim
