/**
 * @file
 * MultiCoreSystem invariants (DESIGN.md §16):
 *
 *   - a 1-core multicore machine IS the single-core System: same
 *     program, same config, equal cycles/ops/stats, byte-identical
 *     stat dump (the bus-less 1-core path must not perturb the
 *     paper's single-core evaluation machine);
 *   - an N-core run is deterministic: two fresh machines over the
 *     same config produce byte-identical results, including the full
 *     stats dump and — for the attack pairs — the same faulting core
 *     and violation record;
 *   - the round-robin quantum changes timing interleaving but never
 *     the architectural outcome of independent benign programs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/multicore.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"
#include "workload/server_mix.hh"
#include "workload/spec_profiles.hh"

namespace rest::sim
{

namespace
{

/** A small single-core benchmark program. */
isa::Program
benchProgram()
{
    workload::BenchProfile p = workload::specSuite().front();
    p.targetKiloInsts = 30;
    return workload::generate(p);
}

/** The 4-core server mix at test size. */
std::vector<isa::Program>
mix4()
{
    workload::ServerMixConfig wl;
    wl.cores = 4;
    wl.requestsPerCore = 12;
    return workload::serverMix(wl);
}

MultiCoreConfig
machineConfig(unsigned cores, const runtime::SchemeConfig &scheme,
              bool fast = false)
{
    MultiCoreConfig mc;
    mc.base.scheme = scheme;
    mc.base.exec.fastFunctional = fast;
    mc.cores = cores;
    return mc;
}

/** Full machine state fingerprint: every component's stat dump. */
std::string
statsDump(MultiCoreSystem &sys)
{
    std::ostringstream os;
    sys.dumpStats(os);
    return os.str();
}

} // namespace

TEST(MultiCore, OneCoreMachineMatchesSystemDetailed)
{
    for (const runtime::SchemeConfig &scheme :
         {runtime::SchemeConfig::plain(),
          runtime::SchemeConfig::restFull(),
          runtime::SchemeConfig::asanFull()}) {
        isa::Program prog = benchProgram();

        SystemConfig sc;
        sc.scheme = scheme;
        System single(prog, sc);
        SystemResult sr = single.run();

        MultiCoreSystem multi({prog}, machineConfig(1, scheme));
        MultiCoreResult mr = multi.run();

        ASSERT_FALSE(sr.run.faulted()) << scheme.name();
        ASSERT_FALSE(mr.faulted()) << scheme.name();
        EXPECT_EQ(mr.cycles, sr.run.cycles) << scheme.name();
        EXPECT_EQ(mr.committedOps, sr.run.committedOps)
            << scheme.name();
        EXPECT_EQ(mr.cores[0].cycles, sr.run.cycles);
        EXPECT_EQ(nullptr, multi.bus());

        // The private hierarchy behaves identically: same L1-D and
        // L2 counters op for op.
        std::ostringstream a, b;
        single.dcache().statGroup().dump(a);
        multi.dcache(0).statGroup().dump(b);
        EXPECT_EQ(a.str(), b.str()) << scheme.name();
        std::ostringstream c, d;
        single.l2cache().statGroup().dump(c);
        multi.l2cache().statGroup().dump(d);
        EXPECT_EQ(c.str(), d.str()) << scheme.name();
    }
}

TEST(MultiCore, OneCoreMachineMatchesSystemFastFunctional)
{
    isa::Program prog = benchProgram();

    SystemConfig sc;
    sc.scheme = runtime::SchemeConfig::restFull();
    sc.exec.fastFunctional = true;
    System single(prog, sc);
    SystemResult sr = single.run();

    MultiCoreSystem multi(
        {prog},
        machineConfig(1, runtime::SchemeConfig::restFull(), true));
    MultiCoreResult mr = multi.run();

    ASSERT_FALSE(mr.faulted());
    EXPECT_TRUE(mr.fastFunctional);
    EXPECT_EQ(mr.cycles, sr.run.cycles);
    EXPECT_EQ(mr.committedOps, sr.run.committedOps);
}

TEST(MultiCore, FourCoreServerMixIsByteIdenticallyDeterministic)
{
    const MultiCoreConfig mc =
        machineConfig(4, runtime::SchemeConfig::restFull());

    MultiCoreSystem a(mix4(), mc);
    MultiCoreResult ra = a.run();
    MultiCoreSystem b(mix4(), mc);
    MultiCoreResult rb = b.run();

    ASSERT_FALSE(ra.faulted());
    ASSERT_FALSE(rb.faulted());
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.committedOps, rb.committedOps);
    EXPECT_EQ(ra.armsExecuted, rb.armsExecuted);
    EXPECT_EQ(ra.mallocCalls, rb.mallocCalls);
    EXPECT_EQ(ra.freeCalls, rb.freeCalls);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ(ra.cores[c].cycles, rb.cores[c].cycles) << c;
        EXPECT_EQ(ra.cores[c].committedOps, rb.cores[c].committedOps)
            << c;
    }
    // The whole machine, counter for counter.
    EXPECT_EQ(statsDump(a), statsDump(b));
    // And real sharing happened: the run is a coherence workload,
    // not four isolated cores.
    EXPECT_GT(ra.committedOps, 0u);
    ASSERT_NE(nullptr, a.bus());
}

TEST(MultiCore, FaultingRunIsDeterministic)
{
    const MultiCoreConfig mc =
        machineConfig(2, runtime::SchemeConfig::restFull());

    auto run_once = [&mc] {
        MultiCoreSystem sys(
            workload::attacks::crossThreadUseAfterFree(96), mc);
        return sys.run();
    };
    MultiCoreResult ra = run_once();
    MultiCoreResult rb = run_once();

    ASSERT_TRUE(ra.faulted());
    ASSERT_TRUE(rb.faulted());
    EXPECT_EQ(ra.faultCore, rb.faultCore);
    EXPECT_EQ(ra.violation().kind, rb.violation().kind);
    EXPECT_EQ(ra.violation().faultAddr, rb.violation().faultAddr);
    EXPECT_EQ(ra.violation().pc, rb.violation().pc);
    EXPECT_EQ(ra.violation().seq, rb.violation().seq);
    EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST(MultiCore, QuantumDoesNotChangeArchitecturalOutcome)
{
    // Benign independent handlers: any round-robin quantum must
    // retire the same ops and heap traffic (timing may differ — the
    // interleaving over the shared hierarchy changes — but the
    // architectural outcome may not).
    workload::ServerMixConfig wl;
    wl.cores = 2;
    wl.requestsPerCore = 8;
    wl.handoffEvery = 0; // no cross-core blocking: quanta independent

    MultiCoreResult base;
    bool first = true;
    for (std::uint64_t quantum : {std::uint64_t(512),
                                  std::uint64_t(8192)}) {
        MultiCoreConfig mc =
            machineConfig(2, runtime::SchemeConfig::restFull());
        mc.quantumOps = quantum;
        MultiCoreSystem sys(workload::serverMix(wl), mc);
        MultiCoreResult r = sys.run();
        ASSERT_FALSE(r.faulted()) << quantum;
        if (first) {
            base = r;
            first = false;
            continue;
        }
        EXPECT_EQ(base.committedOps, r.committedOps) << quantum;
        EXPECT_EQ(base.mallocCalls, r.mallocCalls) << quantum;
        EXPECT_EQ(base.freeCalls, r.freeCalls) << quantum;
        EXPECT_EQ(base.armsExecuted, r.armsExecuted) << quantum;
        for (unsigned c = 0; c < 2; ++c)
            EXPECT_EQ(base.cores[c].committedOps,
                      r.cores[c].committedOps)
                << quantum << " core " << c;
    }
}

} // namespace rest::sim
