#include <gtest/gtest.h>

#include "core/rest_engine.hh"
#include "runtime/instrumentation.hh"
#include "runtime/libc_allocator.hh"
#include "sim/emulator.hh"
#include "util/random.hh"

namespace rest::sim
{

using isa::FuncBuilder;
using isa::Opcode;

class EmulatorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(1);
        tcr.writePrivileged(
            core::TokenValue::generate(rng,
                                       core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        engine = std::make_unique<core::RestEngine>(tcr);
        allocator = std::make_unique<runtime::LibcAllocator>(memory);
    }

    /** Finalise and wrap a program in an emulator. */
    std::unique_ptr<Emulator>
    make(isa::Program prog,
         runtime::SchemeConfig scheme = runtime::SchemeConfig::plain())
    {
        runtime::applyScheme(prog, scheme, tcr.granule());
        program = std::move(prog);
        return std::make_unique<Emulator>(program, memory, *engine,
                                          *allocator, scheme);
    }

    /** Drain the op stream; return the number of ops. */
    std::uint64_t
    drain(Emulator &emu)
    {
        isa::DynOp op;
        std::uint64_t n = 0;
        while (emu.next(op))
            ++n;
        return n;
    }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<core::RestEngine> engine;
    std::unique_ptr<runtime::LibcAllocator> allocator;
    isa::Program program;
};

TEST_F(EmulatorTest, AluAndImmediates)
{
    FuncBuilder b("main");
    b.movImm(1, 40);
    b.addI(2, 1, 2);
    b.alu(Opcode::Add, 3, 1, 2);
    b.alu(Opcode::Sub, 4, 3, 1);
    b.alu(Opcode::Mul, 5, 2, 2);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->reg(1), 40u);
    EXPECT_EQ(emu->reg(2), 42u);
    EXPECT_EQ(emu->reg(3), 82u);
    EXPECT_EQ(emu->reg(4), 42u);
    EXPECT_EQ(emu->reg(5), 42u * 42u);
}

TEST_F(EmulatorTest, RegisterZeroIsHardwired)
{
    FuncBuilder b("main");
    b.movImm(0, 99);
    b.alu(Opcode::Add, 1, 0, 0);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->reg(0), 0u);
    EXPECT_EQ(emu->reg(1), 0u);
}

TEST_F(EmulatorTest, LoadsAndStores)
{
    FuncBuilder b("main");
    b.movImm(1, 0x10000000);
    b.movImm(2, 0xdead);
    b.store(2, 1, 8, 8);
    b.load(3, 1, 8, 8);
    b.load(4, 1, 8, 2);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->reg(3), 0xdeadu);
    EXPECT_EQ(emu->reg(4), 0xdeadu);
    EXPECT_EQ(memory.read(0x10000008, 8), 0xdeadu);
}

TEST_F(EmulatorTest, LoopExecutesCorrectTripCount)
{
    FuncBuilder b("main");
    b.movImm(1, 10);
    b.movImm(2, 0);
    int loop = b.here();
    b.addI(2, 2, 3);
    b.addI(1, 1, -1);
    b.branch(Opcode::Bne, 1, isa::regZero, loop);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->reg(2), 30u);
}

TEST_F(EmulatorTest, CallAndReturnPreserveFrame)
{
    isa::Program prog;
    {
        FuncBuilder b("main");
        b.movImm(1, 7);
        b.call(1);
        b.alu(Opcode::Add, 3, 1, isa::regRet);
        b.halt();
        prog.funcs.push_back(std::move(b).take());
    }
    {
        FuncBuilder b("callee");
        b.movImm(isa::regRet, 5);
        b.ret();
        prog.funcs.push_back(std::move(b).take());
    }
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->reg(3), 12u);
}

TEST_F(EmulatorTest, MallocExpandsToInjectedOps)
{
    FuncBuilder b("main");
    b.movImm(1, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, 1, isa::noReg, 8, 0, -1,
            -1});
    b.mov(2, isa::regRet);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));

    isa::DynOp op;
    bool saw_allocator_op = false;
    while (emu->next(op))
        saw_allocator_op |=
            (op.source == isa::OpSource::Allocator);
    EXPECT_TRUE(saw_allocator_op);
    EXPECT_NE(emu->reg(2), 0u);
    EXPECT_EQ(allocator->liveAllocations(), 1u);
}

TEST_F(EmulatorTest, ProgramArmDisarmUpdateEngine)
{
    FuncBuilder b("main");
    b.movImm(1, 0x10000040);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.movImm(2, 1); // marker: reached past the arm
    b.emit({Opcode::Disarm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.movImm(3, 1);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->faultKind(), isa::FaultKind::None);
    EXPECT_EQ(engine->armsExecuted(), 1u);
    EXPECT_EQ(engine->disarmsExecuted(), 1u);
    EXPECT_EQ(emu->reg(3), 1u);
    // Disarm zeroed the granule.
    EXPECT_EQ(memory.read(0x10000040, 8), 0u);
}

TEST_F(EmulatorTest, MisalignedArmFaults)
{
    FuncBuilder b("main");
    b.movImm(1, 0x10000004);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));
    drain(*emu);
    EXPECT_EQ(emu->faultKind(), isa::FaultKind::RestMisaligned);
}

TEST_F(EmulatorTest, TokenAccessFaultStopsStream)
{
    FuncBuilder b("main");
    b.movImm(1, 0x10000040);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.load(2, 1, 0, 8); // touches the token
    b.movImm(3, 1);     // must never execute
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));

    isa::DynOp op;
    isa::FaultKind last = isa::FaultKind::None;
    while (emu->next(op))
        last = op.fault;
    EXPECT_EQ(last, isa::FaultKind::RestTokenAccess);
    EXPECT_EQ(emu->reg(3), 0u);
}

TEST_F(EmulatorTest, PcsAreStablePerInstruction)
{
    FuncBuilder b("main");
    b.movImm(1, 3);
    int loop = b.here();
    b.addI(1, 1, -1);
    b.branch(Opcode::Bne, 1, isa::regZero, loop);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));

    isa::DynOp op;
    std::map<Addr, unsigned> pc_counts;
    while (emu->next(op))
        ++pc_counts[op.pc];
    // The loop body PC appears exactly 3 times.
    bool found_tripled = false;
    for (auto &[pc, count] : pc_counts)
        found_tripled |= (count == 3);
    EXPECT_TRUE(found_tripled);
}

TEST_F(EmulatorTest, BranchOpsCarryResolvedOutcome)
{
    FuncBuilder b("main");
    b.movImm(1, 2);
    int loop = b.here();
    b.addI(1, 1, -1);
    b.branch(Opcode::Bne, 1, isa::regZero, loop);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto emu = make(std::move(prog));

    isa::DynOp op;
    std::vector<bool> outcomes;
    while (emu->next(op)) {
        if (op.isBranch)
            outcomes.push_back(op.taken);
    }
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0]);  // loop back once
    EXPECT_FALSE(outcomes[1]); // then fall through
}

} // namespace rest::sim
