/**
 * @file
 * The fault-tolerance layer of sim::SweepRunner: deterministic fault
 * injection, retry with attempt accounting, soft timeouts, checkpoint
 * persistence and resume, and the ScopedFatalThrow guard that turns
 * rest_fatal into a catchable error inside sweep jobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/sweep.hh"
#include "util/json_reader.hh"
#include "util/logging.hh"

namespace rest::sim
{

namespace
{

/** Four cheap jobs (2 benches × 2 seeds), enough to tell jobs apart. */
std::vector<SweepJob>
smallSweep()
{
    std::vector<SweepJob> jobs;
    for (const char *bench : {"sjeng", "hmmer"}) {
        for (unsigned s = 0; s < 2; ++s) {
            auto p = workload::profileByName(bench);
            p.targetKiloInsts = 10;
            p.seed = p.seed + 0x1000 * s;
            jobs.push_back(makePresetJob(p, ExpConfig::Plain));
        }
    }
    return jobs;
}

SweepFaultInjector
fault(const std::string &spec)
{
    auto inj = SweepFaultInjector::parse(spec);
    EXPECT_TRUE(inj.has_value()) << spec;
    return inj.value_or(SweepFaultInjector{});
}

/** Unique-ish checkpoint path under the gtest temp dir. */
std::string
ckPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + "rest_ck_" + name +
                       ".json";
    std::remove(path.c_str());
    return path;
}

} // namespace

// ---------------------------------------------------------------------
// Fault-injection spec parsing
// ---------------------------------------------------------------------

TEST(SweepFaultInjector, ParsesEverySpecForm)
{
    auto once = fault("fail-once:3");
    EXPECT_EQ(once.mode, SweepFaultInjector::Mode::FailOnce);
    EXPECT_EQ(once.jobIndex, 3u);

    auto always = fault("fail-always:0");
    EXPECT_EQ(always.mode, SweepFaultInjector::Mode::FailAlways);

    auto hard = fault("fail-hard:12");
    EXPECT_EQ(hard.mode, SweepFaultInjector::Mode::FailHard);
    EXPECT_EQ(hard.jobIndex, 12u);

    auto slow = fault("slow:2:250");
    EXPECT_EQ(slow.mode, SweepFaultInjector::Mode::Slow);
    EXPECT_EQ(slow.jobIndex, 2u);
    EXPECT_EQ(slow.slowMs, 250u);
}

TEST(SweepFaultInjector, RejectsMalformedSpecs)
{
    for (const char *bad : {"", "fail-once", "fail-once:", "nope:1",
                            "fail-once:x", "slow:1", "slow:1:",
                            "slow:1:abc", "fail-always:-2"})
        EXPECT_FALSE(SweepFaultInjector::parse(bad).has_value()) << bad;
}

// ---------------------------------------------------------------------
// Retry and failure classification
// ---------------------------------------------------------------------

TEST(SweepFault, FailOnceRecoversWithTwoAttempts)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 1;
    opts.fault = fault("fail-once:1");
    auto results = SweepRunner(2, opts).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].ok) << "job " << i;
        EXPECT_EQ(results[i].attempts, i == 1 ? 2u : 1u) << "job " << i;
    }
    // The recovered measurement matches an uninjected run exactly.
    Measurement ref = runBench(jobs[1].profile, jobs[1].config,
                               jobs[1].width, jobs[1].inorder);
    EXPECT_EQ(results[1].measurement.cycles, ref.cycles);
    EXPECT_EQ(results[1].measurement.ops, ref.ops);
}

TEST(SweepFault, FailAlwaysExhaustsRetriesAndFailsOnlyThatJob)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 2;
    opts.fault = fault("fail-always:2");
    auto results = SweepRunner(4, opts).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_FALSE(results[i].ok);
            EXPECT_EQ(results[i].attempts, 3u); // 1 + 2 retries
            EXPECT_NE(results[i].error.find("fail-always"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(results[i].ok) << "job " << i;
            EXPECT_GT(results[i].measurement.cycles, 0u);
        }
    }
}

TEST(SweepFault, FailHardIsPermanentDespiteRetryBudget)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 3;
    opts.fault = fault("fail-hard:0");
    auto results = SweepRunner(1, opts).run(jobs);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 1u); // permanent: no retry
    EXPECT_NE(results[0].error.find("fail-hard"), std::string::npos);
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_TRUE(results[i].ok) << "job " << i;
}

TEST(SweepFault, ZeroRetriesFailsTransientOnFirstAttempt)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 0;
    opts.fault = fault("fail-once:0");
    auto results = SweepRunner(1, opts).run(jobs);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(SweepFault, SoftTimeoutDiscardsSlowAttemptAndRetries)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 1;
    opts.jobTimeoutMs = 400;
    // Attempt 1 of job 0 sleeps 800 ms — over budget, discarded;
    // attempt 2 runs clean (a 10-kiloinst job is far under 400 ms).
    opts.fault = fault("slow:0:800");
    auto results = SweepRunner(1, opts).run(jobs);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_FALSE(results[0].timedOut);
}

TEST(SweepFault, SoftTimeoutWithoutRetryFailsTheJob)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 0;
    opts.jobTimeoutMs = 200;
    opts.fault = fault("slow:1:600");
    auto results = SweepRunner(2, opts).run(jobs);
    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[1].timedOut);
    EXPECT_NE(results[1].error.find("soft timeout"),
              std::string::npos);
    // The other jobs are untouched by job 1's deadline.
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_TRUE(results[3].ok);
}

TEST(SweepFault, ResultsStayInSubmissionOrderUnderFaults)
{
    const auto jobs = smallSweep();
    SweepOptions opts;
    opts.retries = 1;
    opts.fault = fault("fail-once:3");
    auto faulty = SweepRunner(4, opts).run(jobs);
    auto clean = SweepRunner(4).run(jobs);
    ASSERT_EQ(faulty.size(), clean.size());
    for (std::size_t i = 0; i < clean.size(); ++i) {
        EXPECT_EQ(faulty[i].measurement.bench,
                  clean[i].measurement.bench);
        EXPECT_EQ(faulty[i].measurement.seed,
                  clean[i].measurement.seed);
        EXPECT_EQ(faulty[i].measurement.cycles,
                  clean[i].measurement.cycles);
    }
}

// ---------------------------------------------------------------------
// ScopedFatalThrow: rest_fatal inside a sweep job is catchable
// ---------------------------------------------------------------------

TEST(ScopedFatalThrow, MakesRestFatalThrowWhileActive)
{
    util::ScopedFatalThrow guard;
    EXPECT_THROW(rest_fatal("converted to an exception"),
                 util::FatalError);
}

TEST(ScopedFatalThrow, NestsPerThread)
{
    util::ScopedFatalThrow outer;
    {
        util::ScopedFatalThrow inner;
        EXPECT_THROW(rest_fatal("inner"), util::FatalError);
    }
    // Still inside the outer region.
    EXPECT_THROW(rest_fatal("outer"), util::FatalError);
}

// ---------------------------------------------------------------------
// Checkpoint persistence and resume
// ---------------------------------------------------------------------

TEST(SweepCheckpoint, SaveLoadRoundTrip)
{
    const auto jobs = smallSweep();
    SweepCheckpoint ck;
    ck.totalJobs = jobs.size();

    CheckpointEntry ok_entry;
    ok_entry.index = 0;
    ok_entry.key = checkpointJobKey(jobs[0]);
    ok_entry.ok = true;
    ok_entry.attempts = 2;
    ok_entry.starts = 2;
    ok_entry.wallMs = 12.5;
    ok_entry.measurement.bench = "sjeng";
    ok_entry.measurement.label = "Plain";
    ok_entry.measurement.seed = jobs[0].profile.seed;
    ok_entry.measurement.cycles = 4242;
    ok_entry.measurement.ops = 999;
    ok_entry.measurement.scalars["l1d.misses"] = 7;
    ck.entries[0] = ok_entry;

    CheckpointEntry bad_entry;
    bad_entry.index = 3;
    bad_entry.key = checkpointJobKey(jobs[3]);
    bad_entry.ok = false;
    bad_entry.timedOut = true;
    bad_entry.attempts = 2;
    bad_entry.starts = 2;
    bad_entry.error = "soft timeout: too slow";
    ck.entries[3] = bad_entry;

    const std::string path = ckPath("roundtrip");
    ASSERT_TRUE(ck.save(path));

    auto loaded = SweepCheckpoint::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->totalJobs, jobs.size());
    EXPECT_EQ(loaded->jobStartsTotal(), 4u);
    ASSERT_EQ(loaded->entries.size(), 2u);

    const auto &e0 = loaded->entries.at(0);
    EXPECT_TRUE(e0.ok);
    EXPECT_EQ(e0.key, checkpointJobKey(jobs[0]));
    EXPECT_EQ(e0.attempts, 2u);
    EXPECT_EQ(e0.measurement.cycles, 4242u);
    EXPECT_EQ(e0.measurement.scalars.at("l1d.misses"), 7u);

    const auto &e3 = loaded->entries.at(3);
    EXPECT_FALSE(e3.ok);
    EXPECT_TRUE(e3.timedOut);
    EXPECT_EQ(e3.error, "soft timeout: too slow");
    std::remove(path.c_str());
}

TEST(SweepCheckpoint, LoadRejectsMissingAndCorruptFiles)
{
    EXPECT_FALSE(
        SweepCheckpoint::load("/nonexistent/rest.ck").has_value());

    const std::string path = ckPath("corrupt");
    std::ofstream(path) << "{ not json";
    EXPECT_FALSE(SweepCheckpoint::load(path).has_value());
    std::remove(path.c_str());
}

TEST(SweepFault, CheckpointFileIsWrittenDuringARun)
{
    const auto jobs = smallSweep();
    const std::string path = ckPath("written");
    SweepOptions opts;
    opts.checkpointPath = path;
    auto results = SweepRunner(2, opts).run(jobs);
    for (const auto &r : results)
        EXPECT_TRUE(r.ok);

    auto ck = SweepCheckpoint::load(path);
    ASSERT_TRUE(ck.has_value());
    EXPECT_EQ(ck->totalJobs, jobs.size());
    EXPECT_EQ(ck->entries.size(), jobs.size());
    EXPECT_EQ(ck->jobStartsTotal(), jobs.size()); // one start each

    // And the raw file is valid JSON by the reader's standards.
    bool ok = false;
    auto root = util::readJsonFile(path, &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(root.at("schema_version").u64(), 1u);
    std::remove(path.c_str());
}

TEST(SweepFault, ResumeSkipsCompletedJobsAndRerunsFailures)
{
    const auto jobs = smallSweep();
    const std::string path = ckPath("resume");

    // Run 1: job 2 fails permanently, everything else completes.
    SweepOptions first;
    first.checkpointPath = path;
    first.fault = fault("fail-hard:2");
    auto r1 = SweepRunner(2, first).run(jobs);
    EXPECT_FALSE(r1[2].ok);

    // Run 2: resume. Only job 2 may execute again — asserted via the
    // job-start counts in the final checkpoint.
    SweepOptions second;
    second.checkpointPath = path;
    second.resumePath = path;
    auto r2 = SweepRunner(2, second).run(jobs);
    ASSERT_EQ(r2.size(), jobs.size());
    for (std::size_t i = 0; i < r2.size(); ++i) {
        EXPECT_TRUE(r2[i].ok) << "job " << i;
        EXPECT_EQ(r2[i].fromCheckpoint, i != 2) << "job " << i;
    }

    auto ck = SweepCheckpoint::load(path);
    ASSERT_TRUE(ck.has_value());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        // Completed jobs started exactly once (in run 1); the failed
        // job started once per run.
        EXPECT_EQ(ck->entries.at(i).starts, i == 2 ? 2u : 1u);
    }
    EXPECT_EQ(ck->jobStartsTotal(), jobs.size() + 1);

    // Restored measurements equal the originals.
    EXPECT_EQ(r2[0].measurement.cycles, r1[0].measurement.cycles);
    EXPECT_EQ(r2[0].measurement.scalars, r1[0].measurement.scalars);
    std::remove(path.c_str());
}

TEST(SweepFault, ResumeIgnoresEntriesWithMismatchedKeys)
{
    const auto jobs = smallSweep();
    const std::string path = ckPath("mismatch");

    SweepOptions first;
    first.checkpointPath = path;
    SweepRunner(1, first).run(jobs);

    // A different sweep shape (other seeds) must not restore from it.
    auto other = smallSweep();
    for (auto &job : other)
        job.profile.seed += 7;
    SweepOptions second;
    second.resumePath = path;
    auto results = SweepRunner(1, second).run(other);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok);
        EXPECT_FALSE(r.fromCheckpoint);
    }
    std::remove(path.c_str());
}

TEST(SweepFault, ResumeFromCorruptFileRunsEverything)
{
    const auto jobs = smallSweep();
    const std::string path = ckPath("resume_corrupt");
    std::ofstream(path) << "]]]] definitely not a checkpoint";
    SweepOptions opts;
    opts.resumePath = path;
    auto results = SweepRunner(2, opts).run(jobs);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok);
        EXPECT_FALSE(r.fromCheckpoint);
    }
    std::remove(path.c_str());
}

} // namespace rest::sim
