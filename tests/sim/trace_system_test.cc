/**
 * @file
 * System-level contracts of the tracing layer:
 *
 *   - tracing is observer-only: enabling every flag changes no
 *     simulated outcome (cycles, stats) relative to an untraced run;
 *   - a Chrome trace written from a real run is valid JSON in the
 *     trace-event schema;
 *   - O3PipeView records respect pipeline stage ordering;
 *   - periodic stat-snapshot deltas sum to the run's final totals;
 *   - with tracing off, the results JSON is byte-identical across
 *     sweep thread counts (the PR's no-perturbation guarantee).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "common/json_reader.hh"
#include "common/test_util.hh"
#include "sim/results.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"

namespace rest::sim
{

using test::JsonParser;
using test::JsonValue;

namespace
{

isa::Program
tinyBench(const char *name = "hmmer")
{
    auto p = workload::profileByName(name);
    p.targetKiloInsts = 20;
    return workload::generate(p);
}

} // namespace

TEST(TraceSystem, InactiveConfigCreatesNoSink)
{
    SystemConfig cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    System system(tinyBench(), cfg);
    EXPECT_EQ(system.traceSink(), nullptr);
    EXPECT_FALSE(system.run().faulted());
    EXPECT_TRUE(system.statSnapshots().empty());
}

TEST(TraceSystem, TracingIsObserverOnly)
{
    // Same program, same config — one run silent, one with every flag
    // live plus periodic snapshots. Every simulated outcome must be
    // identical; the trace may only observe.
    SystemConfig off = makeSystemConfig(ExpConfig::RestSecureFull);
    System silent(tinyBench(), off);
    SystemResult ref = silent.run();

    std::ostringstream messages;
    SystemConfig on = off;
    on.trace.flags = trace::allFlags;
    on.trace.statsEvery = 1000;
    on.trace.messageStream = &messages;
    System traced(tinyBench(), on);
    SystemResult got = traced.run();

    EXPECT_EQ(got.cycles(), ref.cycles());
    EXPECT_EQ(got.run.committedOps, ref.run.committedOps);
    EXPECT_EQ(got.armsExecuted, ref.armsExecuted);
    EXPECT_EQ(got.mallocCalls, ref.mallocCalls);
    EXPECT_EQ(got.freeCalls, ref.freeCalls);

    std::ostringstream stats_ref, stats_got;
    silent.dumpStats(stats_ref);
    traced.dumpStats(stats_got);
    EXPECT_EQ(stats_got.str(), stats_ref.str());

    // And the trace did actually observe something.
    ASSERT_NE(traced.traceSink(), nullptr);
    EXPECT_GT(traced.traceSink()->eventsRecorded(), 0u);
    EXPECT_FALSE(messages.str().empty());
}

TEST(TraceSystem, ChromeTraceFromRealRunParses)
{
    SystemConfig cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.trace.flags = trace::flagBit(trace::Flag::Cache) |
                      trace::flagBit(trace::Flag::TokenDetect) |
                      trace::flagBit(trace::Flag::Alloc);
    std::ostringstream devnull;
    cfg.trace.messageStream = &devnull;

    System system(tinyBench(), cfg);
    ASSERT_FALSE(system.run().faulted());
    ASSERT_NE(system.traceSink(), nullptr);

    std::ostringstream os;
    system.traceSink()->writeChromeTrace(os);

    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok());
    EXPECT_EQ(root.at("displayTimeUnit").str, "ns");

    const auto &evs = root.at("traceEvents");
    ASSERT_EQ(evs.kind, JsonValue::Array);
    EXPECT_GT(evs.items.size(), 1u);
    for (const auto &ev : evs.items) {
        ASSERT_EQ(ev.kind, JsonValue::Object);
        EXPECT_TRUE(ev.has("ph"));
        EXPECT_TRUE(ev.has("pid"));
        EXPECT_TRUE(ev.has("tid"));
        const std::string &ph = ev.at("ph").str;
        EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i" || ph == "C")
            << ph;
        if (ph != "M")
            EXPECT_TRUE(ev.has("ts"));
        if (ph == "X")
            EXPECT_TRUE(ev.has("dur"));
    }
}

TEST(TraceSystem, PipeViewStagesAreMonotone)
{
    SystemConfig cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.trace.flags = trace::flagBit(trace::Flag::O3Pipe);
    std::ostringstream devnull;
    cfg.trace.messageStream = &devnull;

    System system(tinyBench(), cfg);
    SystemResult result = system.run();
    ASSERT_FALSE(result.faulted());

    auto records = system.traceSink()->pipeRecords();
    ASSERT_FALSE(records.empty());

    std::uint64_t prev_seq = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        SCOPED_TRACE("record " + std::to_string(i) + " seq " +
                     std::to_string(r.seq));
        EXPECT_LE(r.fetch, r.decode);
        EXPECT_LE(r.decode, r.rename);
        EXPECT_LE(r.rename, r.dispatch);
        EXPECT_LE(r.dispatch, r.issue);
        EXPECT_LE(r.issue, r.complete);
        EXPECT_LE(r.complete, r.retire);
        if (r.storeComplete != 0)
            EXPECT_GE(r.storeComplete, r.issue);
        if (i > 0)
            EXPECT_GT(r.seq, prev_seq); // program order
        prev_seq = r.seq;
    }

    // The serialised form round-trips the same record count: seven
    // lines per record, first line carries the fetch stage.
    std::ostringstream os;
    system.traceSink()->writePipeView(os);
    std::istringstream in(os.str());
    std::string line;
    std::size_t fetch_lines = 0, lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        ASSERT_EQ(line.rfind("O3PipeView:", 0), 0u) << line;
        if (line.rfind("O3PipeView:fetch:", 0) == 0)
            ++fetch_lines;
    }
    EXPECT_EQ(fetch_lines, records.size());
    EXPECT_EQ(lines, records.size() * 7);
}

TEST(TraceSystem, StatSeriesDeltasSumToFinalTotals)
{
    SystemConfig cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.trace.statsEvery = 1000;

    System system(tinyBench(), cfg);
    SystemResult result = system.run();
    ASSERT_FALSE(result.faulted());

    auto series = system.statSnapshots();
    ASSERT_GT(series.size(), 1u);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_LT(series[i - 1].cycle, series[i].cycle);
    // Final snapshot is the flush at end-of-run.
    EXPECT_EQ(series.back().cycle, result.cycles());

    auto sum_of = [&series](const std::string &key) {
        std::uint64_t total = 0;
        for (const auto &snap : series) {
            auto it = snap.deltas.find(key);
            if (it != snap.deltas.end())
                total += it->second;
        }
        return total;
    };
    EXPECT_EQ(sum_of("o3cpu.committed_ops"), result.run.committedOps);
    EXPECT_EQ(sum_of("l1d.hits"),
              system.dcache().statGroup().scalarValue("hits"));
    EXPECT_EQ(sum_of("l2.misses"),
              system.l2cache().statGroup().scalarValue("misses"));
}

TEST(TraceSystem, StatSeriesFlowsIntoMeasurement)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;

    SystemConfig cfg = makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.trace.statsEvery = 2000;
    Measurement m = runCustom(p, cfg, "traced");
    EXPECT_FALSE(m.statSeries.empty());

    // Untraced runs carry no series, so default JSON stays unchanged.
    Measurement plain = runBench(p, ExpConfig::RestSecureFull);
    EXPECT_TRUE(plain.statSeries.empty());
    EXPECT_EQ(plain.cycles, m.cycles); // tracing still observer-only
}

namespace
{

/** Serialise a measurement set the way the harnesses do. */
std::string
resultsJson(const std::vector<Measurement> &ms, unsigned jobs)
{
    ResultsFile rf;
    rf.figure = "trace_invariance";
    rf.kiloInsts = 20;
    rf.seedsPerCell = 1;
    rf.jobs = jobs;
    SweepResults sweep;
    sweep.name = "matrix";
    for (const auto &m : ms) {
        SweepCell cell;
        cell.bench = m.bench;
        cell.column = m.label;
        cell.cycles = m.cycles;
        cell.ops = m.ops;
        cell.seedCycles = {m.cycles};
        cell.scalars = m.scalars;
        cell.statSeries = m.statSeries;
        sweep.cells.push_back(std::move(cell));
    }
    rf.sweeps.push_back(std::move(sweep));
    std::ostringstream os;
    writeJson(rf, os);
    return os.str();
}

} // namespace

TEST(TraceSystem, ResultsJsonByteIdenticalAcrossJobCounts)
{
    // With tracing off (the default for every SweepJob), the results
    // JSON must not depend on how many worker threads ran the sweep.
    std::vector<SweepJob> jobs;
    for (const char *bench : {"sjeng", "hmmer"}) {
        for (ExpConfig config : {ExpConfig::Plain,
                                 ExpConfig::RestSecureFull}) {
            auto p = workload::profileByName(bench);
            p.targetKiloInsts = 20;
            jobs.push_back(makePresetJob(p, config));
        }
    }

    auto toMeasurements = [](const std::vector<JobResult> &rs) {
        std::vector<Measurement> ms;
        for (const auto &r : rs)
            ms.push_back(r.measurement);
        return ms;
    };
    auto serial = toMeasurements(SweepRunner(1).run(jobs));
    auto parallel = toMeasurements(SweepRunner(4).run(jobs));
    EXPECT_EQ(resultsJson(serial, 1), resultsJson(parallel, 1));
}

TEST(TraceSystem, StatSeriesSerialisedOnlyWhenPresent)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;

    Measurement plain = runBench(p, ExpConfig::Plain);
    std::string without = resultsJson({plain}, 1);
    EXPECT_EQ(without.find("stat_series"), std::string::npos);

    SystemConfig cfg = makeSystemConfig(ExpConfig::Plain);
    cfg.trace.statsEvery = 2000;
    Measurement traced = runCustom(p, cfg, "Plain");
    std::string with = resultsJson({traced}, 1);
    ASSERT_NE(with.find("stat_series"), std::string::npos);

    // And the augmented file still parses.
    JsonParser parser(with);
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok());
    const auto &cell = root.at("sweeps").items[0].at("cells").items[0];
    const auto &series = cell.at("stat_series");
    ASSERT_EQ(series.kind, JsonValue::Array);
    ASSERT_FALSE(series.items.empty());
    EXPECT_TRUE(series.items[0].has("cycle"));
    EXPECT_TRUE(series.items[0].has("deltas"));
}

} // namespace rest::sim
