/**
 * @file
 * A tiny blocking loopback HTTP client for the telemetry tests: just
 * enough to GET an endpoint off util/http_server.hh and split the
 * response into status / headers / body. Raw POSIX sockets so the
 * tests exercise the server over a real TCP connection, the same way
 * curl and Prometheus will.
 */

#ifndef REST_TESTS_COMMON_HTTP_CLIENT_HH
#define REST_TESTS_COMMON_HTTP_CLIENT_HH

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

namespace rest::test
{

struct HttpClientResponse
{
    bool ok = false;     ///< transport-level success
    int status = 0;      ///< parsed status code
    std::string headers; ///< raw header block (incl. status line)
    std::string body;
};

/** Send `request` verbatim to 127.0.0.1:port and read to EOF. */
inline HttpClientResponse
httpRaw(std::uint16_t port, const std::string &request)
{
    HttpClientResponse out;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return out;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return out;
    }
    std::size_t off = 0;
    while (off < request.size()) {
        ssize_t n = ::send(fd, request.data() + off,
                           request.size() - off, 0);
        if (n <= 0) {
            ::close(fd);
            return out;
        }
        off += std::size_t(n);
    }
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);

    std::size_t split = resp.find("\r\n\r\n");
    if (split == std::string::npos)
        return out;
    out.headers = resp.substr(0, split);
    out.body = resp.substr(split + 4);
    // "HTTP/1.1 200 OK"
    if (out.headers.size() >= 12 &&
        out.headers.compare(0, 5, "HTTP/") == 0)
        out.status = std::atoi(out.headers.c_str() + 9);
    out.ok = out.status != 0;
    return out;
}

/** GET a path; the usual entry point. */
inline HttpClientResponse
httpGet(std::uint16_t port, const std::string &path)
{
    return httpRaw(port, "GET " + path + " HTTP/1.1\r\n"
                         "Host: 127.0.0.1\r\n"
                         "Connection: close\r\n\r\n");
}

} // namespace rest::test

#endif // REST_TESTS_COMMON_HTTP_CLIENT_HH
