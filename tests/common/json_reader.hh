/**
 * @file
 * A minimal JSON reader for the test suite: just enough to validate
 * round trips of util::JsonWriter output (results files, Chrome
 * traces). Extracted from results_test.cc so every test that needs to
 * parse JSON shares one implementation.
 *
 * Not a general parser: it accepts the subset JsonWriter emits (plus
 * standard whitespace) and reports malformed input through ok() and
 * gtest expectation failures rather than exceptions.
 */

#ifndef REST_TESTS_COMMON_JSON_READER_HH
#define REST_TESTS_COMMON_JSON_READER_HH

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace rest::test
{

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = members.find(key);
        EXPECT_NE(it, members.end()) << "missing key " << key;
        static const JsonValue nil;
        return it == members.end() ? nil : it->second;
    }
    bool has(const std::string &key) const
    { return members.count(key) != 0; }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, s_.size()) << "trailing garbage";
        return v;
    }

    bool ok() const { return ok_; }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            ok_ = false;
            return '\0';
        }
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            ok_ = false;
        else
            ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't': case 'f': return parseBool();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonValue key = parseString();
            expect(':');
            v.members.emplace(key.str, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        expect('}');
        return v;
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        expect(']');
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::String;
        expect('"');
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\' && pos_ < s_.size()) {
                char e = s_[pos_++];
                switch (e) {
                  case 'n': v.str += '\n'; break;
                  case 't': v.str += '\t'; break;
                  case 'r': v.str += '\r'; break;
                  case 'b': v.str += '\b'; break;
                  case 'f': v.str += '\f'; break;
                  case 'u':
                    // Only \u00XX is emitted by the writer.
                    if (pos_ + 4 <= s_.size()) {
                        v.str += char(std::stoi(s_.substr(pos_ + 2, 2),
                                                nullptr, 16));
                        pos_ += 4;
                    }
                    break;
                  default: v.str += e;
                }
            } else {
                v.str += c;
            }
        }
        expect('"');
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            ok_ = false;
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        JsonValue v;
        if (s_.compare(pos_, 4, "null") == 0)
            pos_ += 4;
        else
            ok_ = false;
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Number;
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start) {
            ok_ = false;
            return v;
        }
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    std::string s_; ///< owned: callers may pass temporaries
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace rest::test

#endif // REST_TESTS_COMMON_JSON_READER_HH
