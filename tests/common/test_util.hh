/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef REST_TESTS_COMMON_TEST_UTIL_HH
#define REST_TESTS_COMMON_TEST_UTIL_HH

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"

namespace rest::test
{

/** Run a program to completion under a config; return the result. */
inline sim::SystemResult
runProgram(isa::Program program, const sim::SystemConfig &cfg)
{
    sim::System system(std::move(program), cfg);
    return system.run();
}

/** Run a program under a named experiment preset. */
inline sim::SystemResult
runUnder(isa::Program program, sim::ExpConfig config,
         core::TokenWidth width = core::TokenWidth::Bytes64)
{
    return runProgram(std::move(program),
                      sim::makeSystemConfig(config, width));
}

/** Shorthand: the violation kind a run raised (None if clean). */
inline core::ViolationKind
violationOf(const sim::SystemResult &result)
{
    return result.run.violation.kind;
}

} // namespace rest::test

#endif // REST_TESTS_COMMON_TEST_UTIL_HH
