#include <gtest/gtest.h>

#include "core/rest_engine.hh"

namespace rest::core
{

class RestEngineTest : public ::testing::TestWithParam<TokenWidth>
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(11);
        tcr_.writePrivileged(TokenValue::generate(rng, GetParam()),
                             RestMode::Secure);
        engine_ = std::make_unique<RestEngine>(tcr_);
    }

    unsigned g() const { return tcr_.granule(); }

    TokenConfigRegister tcr_;
    std::unique_ptr<RestEngine> engine_;
};

TEST_P(RestEngineTest, ArmThenAccessFaults)
{
    Addr a = 0x1000;
    EXPECT_TRUE(engine_->arm(a).ok());
    EXPECT_TRUE(engine_->isArmed(a));
    EXPECT_EQ(engine_->checkAccess(a, 8).violation,
              ViolationKind::TokenAccess);
    EXPECT_EQ(engine_->checkAccess(a + g() - 1, 1).violation,
              ViolationKind::TokenAccess);
}

TEST_P(RestEngineTest, UnarmedAccessOk)
{
    EXPECT_TRUE(engine_->checkAccess(0x1000, 8).ok());
    engine_->arm(0x1000);
    // The granule after the armed one is clean.
    EXPECT_TRUE(engine_->checkAccess(0x1000 + g(), 8).ok());
}

TEST_P(RestEngineTest, StraddlingAccessFaults)
{
    engine_->arm(0x1000 + g()); // arm the second granule
    // 8-byte access straddling the granule boundary touches it.
    EXPECT_EQ(engine_->checkAccess(0x1000 + g() - 4, 8).violation,
              ViolationKind::TokenAccess);
}

TEST_P(RestEngineTest, MisalignedArmFaults)
{
    EXPECT_EQ(engine_->arm(0x1001).violation,
              ViolationKind::MisalignedRestInst);
    EXPECT_EQ(engine_->arm(0x1000 + g() / 2).violation,
              ViolationKind::MisalignedRestInst);
    EXPECT_EQ(engine_->armedCount(), 0u);
}

TEST_P(RestEngineTest, MisalignedDisarmFaults)
{
    EXPECT_EQ(engine_->disarm(0x1001).violation,
              ViolationKind::MisalignedRestInst);
}

TEST_P(RestEngineTest, DisarmUnarmedFaults)
{
    // §V-B brute-force disarm: precise location required.
    EXPECT_EQ(engine_->disarm(0x1000).violation,
              ViolationKind::DisarmUnarmed);
}

TEST_P(RestEngineTest, ArmDisarmRoundTrip)
{
    engine_->arm(0x2000);
    EXPECT_TRUE(engine_->disarm(0x2000).ok());
    EXPECT_FALSE(engine_->isArmed(0x2000));
    EXPECT_TRUE(engine_->checkAccess(0x2000, 8).ok());
    // Second disarm faults: token already removed.
    EXPECT_EQ(engine_->disarm(0x2000).violation,
              ViolationKind::DisarmUnarmed);
}

TEST_P(RestEngineTest, ArmIsIdempotent)
{
    engine_->arm(0x3000);
    engine_->arm(0x3000);
    EXPECT_EQ(engine_->armedCount(), 1u);
    EXPECT_TRUE(engine_->disarm(0x3000).ok());
    EXPECT_EQ(engine_->armedCount(), 0u);
}

TEST_P(RestEngineTest, CountsAndReset)
{
    engine_->arm(0x1000);
    engine_->arm(0x1000 + g());
    engine_->disarm(0x1000);
    EXPECT_EQ(engine_->armsExecuted(), 2u);
    EXPECT_EQ(engine_->disarmsExecuted(), 1u);
    EXPECT_EQ(engine_->armedCount(), 1u);
    engine_->reset();
    EXPECT_EQ(engine_->armedCount(), 0u);
    EXPECT_EQ(engine_->armsExecuted(), 0u);
}

TEST_P(RestEngineTest, OverlapsArmedMatchesCheckAccess)
{
    engine_->arm(0x4000);
    EXPECT_TRUE(engine_->overlapsArmed(0x4000 + g() / 2, 4));
    EXPECT_FALSE(engine_->overlapsArmed(0x4000 + g(), 4));
}

INSTANTIATE_TEST_SUITE_P(Widths, RestEngineTest,
                         ::testing::Values(TokenWidth::Bytes16,
                                           TokenWidth::Bytes32,
                                           TokenWidth::Bytes64));

} // namespace rest::core
