#include <gtest/gtest.h>

#include <vector>

#include "core/token.hh"

namespace rest::core
{

TEST(TokenValue, GenerateRespectsWidth)
{
    Xoshiro256ss rng(1);
    for (auto w : {TokenWidth::Bytes16, TokenWidth::Bytes32,
                   TokenWidth::Bytes64}) {
        TokenValue t = TokenValue::generate(rng, w);
        EXPECT_EQ(t.sizeBytes(), tokenBytes(w));
        EXPECT_EQ(t.bytes().size(), tokenBytes(w));
    }
}

TEST(TokenValue, MatchesOwnBytes)
{
    Xoshiro256ss rng(2);
    TokenValue t = TokenValue::generate(rng, TokenWidth::Bytes64);
    EXPECT_TRUE(t.matches(t.bytes()));
}

TEST(TokenValue, DoesNotMatchPerturbedBytes)
{
    Xoshiro256ss rng(3);
    TokenValue t = TokenValue::generate(rng, TokenWidth::Bytes32);
    std::vector<std::uint8_t> buf(t.bytes().begin(), t.bytes().end());
    buf[7] ^= 1;
    EXPECT_FALSE(t.matches(buf));
}

TEST(TokenValue, DoesNotMatchWrongLength)
{
    Xoshiro256ss rng(4);
    TokenValue t = TokenValue::generate(rng, TokenWidth::Bytes64);
    std::vector<std::uint8_t> buf(t.bytes().begin(),
                                  t.bytes().begin() + 32);
    EXPECT_FALSE(t.matches(buf));
}

TEST(TokenValue, ZeroChunkNeverMatchesGeneratedToken)
{
    // A zeroed granule must never look like a token, or zeroed free
    // pools would fault (§V-B false positives).
    Xoshiro256ss rng(5);
    for (int i = 0; i < 100; ++i) {
        TokenValue t = TokenValue::generate(rng, TokenWidth::Bytes16);
        std::vector<std::uint8_t> zeros(t.sizeBytes(), 0);
        EXPECT_FALSE(t.matches(zeros));
    }
}

TEST(TokenValue, GeneratedTokensAreDistinct)
{
    Xoshiro256ss rng(6);
    TokenValue a = TokenValue::generate(rng, TokenWidth::Bytes64);
    TokenValue b = TokenValue::generate(rng, TokenWidth::Bytes64);
    EXPECT_FALSE(a == b);
}

TEST(TokenConfigRegister, PrivilegedWriteInstalls)
{
    Xoshiro256ss rng(7);
    TokenConfigRegister tcr;
    TokenValue t = TokenValue::generate(rng, TokenWidth::Bytes32);
    tcr.writePrivileged(t, RestMode::Debug);
    EXPECT_TRUE(tcr.token() == t);
    EXPECT_EQ(tcr.mode(), RestMode::Debug);
    EXPECT_EQ(tcr.granule(), 32u);
}

TEST(TokenConfigRegister, UserWriteRefused)
{
    TokenConfigRegister tcr;
    EXPECT_FALSE(tcr.writeUser());
}

TEST(TokenConfigRegister, RotationChangesValueKeepsWidth)
{
    Xoshiro256ss rng(8);
    TokenConfigRegister tcr;
    tcr.writePrivileged(TokenValue::generate(rng, TokenWidth::Bytes16),
                        RestMode::Secure);
    TokenValue before = tcr.token();
    auto gen = tcr.generation();
    tcr.rotate(rng);
    EXPECT_FALSE(tcr.token() == before);
    EXPECT_EQ(tcr.granule(), 16u);
    EXPECT_GT(tcr.generation(), gen);
}

TEST(TokenConfigRegister, FalsePositiveProbabilityIsNegligible)
{
    // §V-B: the chance of program data matching a 128-bit-plus token
    // is ~2^-128. Empirically: random chunks never match.
    Xoshiro256ss rng(9);
    TokenConfigRegister tcr;
    tcr.writePrivileged(TokenValue::generate(rng, TokenWidth::Bytes16),
                        RestMode::Secure);
    std::vector<std::uint8_t> chunk(16);
    for (int i = 0; i < 100000; ++i) {
        for (auto &byte : chunk)
            byte = static_cast<std::uint8_t>(rng());
        ASSERT_FALSE(tcr.token().matches(chunk));
    }
}

} // namespace rest::core
