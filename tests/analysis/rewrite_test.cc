/**
 * @file
 * Tests of the shared instruction-vector rewriting helpers: deletion
 * with branch-target remapping (including the trailing-run rescue
 * that keeps a branch target from dangling past the function end)
 * and insertion with per-branch splice-point retargeting.
 */

#include <gtest/gtest.h>

#include "analysis/rewrite.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3;

} // namespace

TEST(DeleteInstructions, RemapsBackwardBranchOverDeletion)
{
    // 0: movi; 1: addi; 2: addi (deleted); 3: bne ->1; 4: ret
    FuncBuilder b("f");
    b.movImm(r2, 10);
    b.addI(r2, r2, -1);
    b.addI(r3, r3, 1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    isa::Function fn = std::move(b).take();

    std::vector<bool> marked(fn.insts.size(), false);
    marked[2] = true;
    RewriteMap map = deleteInstructions(fn, marked);

    EXPECT_EQ(map.removed, 1u);
    ASSERT_EQ(fn.insts.size(), 4u);
    EXPECT_EQ(fn.insts[2].op, Opcode::Bne);
    EXPECT_EQ(fn.insts[2].target, 1);
    // Deleted indices map forward to the first survivor.
    EXPECT_EQ(map.translate(1), 1);
    EXPECT_EQ(map.translate(2), 2);
    EXPECT_EQ(map.translate(3), 2);
    EXPECT_EQ(map.translate(4), 3);
}

TEST(DeleteInstructions, DeletedBranchTargetMovesToNextSurvivor)
{
    // 0: beq ->2; 1: addi; 2: addi (deleted target); 3: ret
    FuncBuilder b("f");
    b.branch(Opcode::Beq, r1, isa::regZero, 2);
    b.addI(r2, r2, 1);
    b.addI(r3, r3, 1);
    b.ret();
    isa::Function fn = std::move(b).take();

    std::vector<bool> marked(fn.insts.size(), false);
    marked[2] = true;
    RewriteMap map = deleteInstructions(fn, marked);

    EXPECT_EQ(map.removed, 1u);
    ASSERT_EQ(fn.insts.size(), 3u);
    // The branch lands on what followed the deleted instruction.
    EXPECT_EQ(fn.insts[0].target, 2);
    EXPECT_EQ(fn.insts[2].op, Opcode::Ret);
}

TEST(DeleteInstructions, TrailingRunWithBranchTargetIsRescued)
{
    // 0: beq ->2; 1: addi; 2: addi (marked); 3: halt (marked).
    // Deleting [2..3] would leave the branch with no survivor at or
    // after its target — the run must be unmarked and kept instead.
    FuncBuilder b("f");
    b.branch(Opcode::Beq, r1, isa::regZero, 2);
    b.addI(r2, r2, 1);
    b.addI(r3, r3, 1);
    b.halt();
    isa::Function fn = std::move(b).take();

    std::vector<bool> marked(fn.insts.size(), false);
    marked[2] = true;
    marked[3] = true;
    RewriteMap map = deleteInstructions(fn, marked);

    EXPECT_EQ(map.removed, 0u);
    EXPECT_EQ(fn.insts.size(), 4u);
    EXPECT_EQ(fn.insts[0].target, 2);
    // The in-place mark vector reflects that nothing was deleted.
    EXPECT_EQ(marked, std::vector<bool>(4, false));
}

TEST(DeleteInstructions, TrailingRunWithoutTargetStillDeletes)
{
    // Same trailing run, but no branch targets it: deletion proceeds.
    FuncBuilder b("f");
    b.branch(Opcode::Beq, r1, isa::regZero, 1);
    b.addI(r2, r2, 1);
    b.addI(r3, r3, 1);
    b.halt();
    isa::Function fn = std::move(b).take();

    std::vector<bool> marked(fn.insts.size(), false);
    marked[2] = true;
    marked[3] = true;
    RewriteMap map = deleteInstructions(fn, marked);

    EXPECT_EQ(map.removed, 2u);
    EXPECT_EQ(fn.insts.size(), 2u);
}

TEST(InsertInstructions, SplicePointChoosesPerBranch)
{
    /*
     * 0: beq ->2   (loop-entry edge: must fall into the splice)
     * 1: addi
     * 2: addi      <- splice point (header)
     * 3: bne ->2   (back edge: must skip the splice)
     * 4: ret
     */
    FuncBuilder b("f");
    b.branch(Opcode::Beq, r1, isa::regZero, 2);
    b.addI(r3, r3, 1);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 2);
    b.ret();
    isa::Function fn = std::move(b).take();

    std::vector<isa::Inst> pre;
    pre.push_back({Opcode::MovImm, r3, isa::noReg, isa::noReg, 8, 7,
                   -1, -1});
    RewriteMap map = insertInstructions(
        fn, 2, pre, [](int branch_idx) { return branch_idx == 3; });

    ASSERT_EQ(fn.insts.size(), 6u);
    EXPECT_EQ(fn.insts[2].op, Opcode::MovImm);
    // Entry edge enters the inserted code; back edge skips it.
    EXPECT_EQ(fn.insts[0].target, 2);
    EXPECT_EQ(fn.insts[4].op, Opcode::Bne);
    EXPECT_EQ(fn.insts[4].target, 3);
    // Pre-edit indices at or beyond the splice shift by its length.
    EXPECT_EQ(map.translate(1), 1);
    EXPECT_EQ(map.translate(2), 3);
    EXPECT_EQ(map.translate(4), 5);
}

TEST(InsertInstructions, TargetsBeyondSpliceAlwaysShift)
{
    // 0: beq ->3; 1: addi; 2: addi; 3: ret — insert at 1.
    FuncBuilder b("f");
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.addI(r2, r2, 1);
    b.addI(r3, r3, 1);
    b.ret();
    isa::Function fn = std::move(b).take();

    std::vector<isa::Inst> pre;
    pre.push_back({Opcode::MovImm, r3, isa::noReg, isa::noReg, 8, 7,
                   -1, -1});
    insertInstructions(fn, 1, pre, [](int) { return false; });

    ASSERT_EQ(fn.insts.size(), 5u);
    EXPECT_EQ(fn.insts[0].target, 4);
}

} // namespace rest::analysis
