/**
 * @file
 * Tests of the natural-loop forest on well-behaved and adversarial
 * CFGs: multiple back edges into one header, nested and sibling
 * loops, unreachable cycles, and irreducible regions (which must be
 * flagged and skipped, never miscompiled).
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/loops.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3;

LoopForest
forestOf(const isa::Function &fn)
{
    Cfg cfg(fn);
    DomTree dom(cfg);
    return LoopForest(cfg, dom);
}

} // namespace

TEST(LoopForest, StraightLineHasNoLoops)
{
    FuncBuilder b("straight");
    b.movImm(r2, 1);
    b.addI(r2, r2, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    EXPECT_TRUE(forest.loops().empty());
    EXPECT_FALSE(forest.irreducible());
    EXPECT_EQ(forest.innermostLoopOf(0), -1);
}

TEST(LoopForest, SelfLoopGolden)
{
    // 0: movi; 1: addi; 2: bne ->1; 3: ret — header == latch.
    FuncBuilder b("loop");
    b.movImm(r2, 10);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    EXPECT_EQ(forest.toString(),
              "loop0: header=b1 depth=1 latches={b1} body={b1}\n");
    EXPECT_FALSE(forest.irreducible());
    EXPECT_EQ(forest.innermostLoopOf(1), 0);
    EXPECT_EQ(forest.innermostLoopOf(0), -1);
    EXPECT_EQ(forest.innermostLoopOf(2), -1);
}

TEST(LoopForest, TwoBackEdgesOneHeaderMerge)
{
    /*
     * 0: movi r2, 10
     * 1: addi r2, r2, -1     <- header (b1 [1..2])
     * 2: beq  r2, r3, ->5
     * 3: addi r3, r3, 1      <- b2, latch 1
     * 4: bne  r3, r0, ->1
     * 5: addi r2, r2, -1     <- b3, latch 2
     * 6: bne  r2, r0, ->1
     * 7: ret
     */
    FuncBuilder b("twolatch");
    b.movImm(r2, 10);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Beq, r2, r3, 5);
    b.addI(r3, r3, 1);
    b.branch(Opcode::Bne, r3, isa::regZero, 1);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    // One loop, not two: back edges sharing a header merge.
    EXPECT_EQ(forest.toString(),
              "loop0: header=b1 depth=1 latches={b2,b3} "
              "body={b1,b2,b3}\n");
}

TEST(LoopForest, NestedLoopsGolden)
{
    /*
     * 0: movi r2, 3
     * 1: movi r3, 3          <- outer header (b1)
     * 2: addi r3, r3, -1     <- inner header == latch (b2 [2..3])
     * 3: bne  r3, r0, ->2
     * 4: addi r2, r2, -1     <- outer latch (b3 [4..5])
     * 5: bne  r2, r0, ->1
     * 6: ret
     */
    FuncBuilder b("nested");
    b.movImm(r2, 3);
    b.movImm(r3, 3);
    b.addI(r3, r3, -1);
    b.branch(Opcode::Bne, r3, isa::regZero, 2);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    EXPECT_EQ(forest.toString(),
              "loop0: header=b1 depth=1 latches={b3} "
              "body={b1,b2,b3}\n"
              "loop1: header=b2 depth=2 parent=loop0 latches={b2} "
              "body={b2}\n");
    // The inner block belongs to both loops; innermost wins.
    EXPECT_EQ(forest.innermostLoopOf(2), 1);
    EXPECT_EQ(forest.innermostLoopOf(1), 0);
    EXPECT_EQ(forest.innermostLoopOf(3), 0);
}

TEST(LoopForest, SiblingLoopsAreIndependent)
{
    /*
     * 0: movi r2, 3
     * 1: addi r2, r2, -1     <- loop A (b1 [1..2])
     * 2: bne  r2, r0, ->1
     * 3: movi r3, 3          <- b2
     * 4: addi r3, r3, -1     <- loop B (b3 [4..5])
     * 5: bne  r3, r0, ->4
     * 6: ret
     */
    FuncBuilder b("siblings");
    b.movImm(r2, 3);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.movImm(r3, 3);
    b.addI(r3, r3, -1);
    b.branch(Opcode::Bne, r3, isa::regZero, 4);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    ASSERT_EQ(forest.loops().size(), 2u);
    EXPECT_EQ(forest.loops()[0].parent, -1);
    EXPECT_EQ(forest.loops()[1].parent, -1);
    EXPECT_EQ(forest.loops()[0].depth, 1);
    EXPECT_EQ(forest.loops()[1].depth, 1);
}

TEST(LoopForest, UnreachableCycleIsIgnored)
{
    /*
     * 0: jmp ->3
     * 1: addi r2, r2, -1     <- unreachable self-cycle (b1 [1..2])
     * 2: bne  r2, r0, ->1
     * 3: ret
     */
    FuncBuilder b("deadloop");
    b.jmp(3);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    // Dead cycles are neither loops nor evidence of irreducibility.
    EXPECT_TRUE(forest.loops().empty());
    EXPECT_FALSE(forest.irreducible());
}

TEST(LoopForest, IrreducibleRegionIsFlagged)
{
    /*
     * Two blocks jumping to each other, both entered from the entry
     * branch — a cycle with two entries, so no natural-loop header:
     *
     * 0: beq r1, r0, ->3
     * 1: addi r2, r2, 1      <- X (b1 [1..2])
     * 2: jmp ->3
     * 3: addi r3, r3, 1      <- Y (b2 [3..4])
     * 4: bne r3, r0, ->1
     * 5: ret
     */
    FuncBuilder b("irreducible");
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.addI(r2, r2, 1);
    b.jmp(3);
    b.addI(r3, r3, 1);
    b.branch(Opcode::Bne, r3, isa::regZero, 1);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    EXPECT_TRUE(forest.irreducible());
    // Whatever retreating edge the DFS happened to see is not a back
    // edge, so no natural loop may be reported for the cycle.
    EXPECT_TRUE(forest.loops().empty());
}

TEST(LoopForest, ReducibleLoopBesideIrreducibleRegion)
{
    /*
     * A clean self-loop followed by the two-entry cycle: the forest
     * still finds the natural loop but keeps the irreducible flag, so
     * the hoister refuses the whole function.
     *
     * 0: movi r2, 3
     * 1: addi r2, r2, -1     <- natural loop (b1 [1..2])
     * 2: bne  r2, r0, ->1
     * 3: beq  r1, r0, ->6
     * 4: addi r2, r2, 1      <- X
     * 5: jmp ->6
     * 6: addi r3, r3, 1      <- Y
     * 7: bne  r3, r0, ->4
     * 8: ret
     */
    FuncBuilder b("mixed");
    b.movImm(r2, 3);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.branch(Opcode::Beq, r1, isa::regZero, 6);
    b.addI(r2, r2, 1);
    b.jmp(6);
    b.addI(r3, r3, 1);
    b.branch(Opcode::Bne, r3, isa::regZero, 4);
    b.ret();
    LoopForest forest = forestOf(std::move(b).take());
    EXPECT_TRUE(forest.irreducible());
    ASSERT_EQ(forest.loops().size(), 1u);
    EXPECT_EQ(forest.loops()[0].header, 1);
}

} // namespace rest::analysis
