/**
 * @file
 * Tests of the redundant shadow-check elision pass: which checks it
 * may and may not delete, that elided programs still execute cleanly
 * with fewer dynamic instructions, and that every attack scenario is
 * still detected with elision enabled.
 */

#include <gtest/gtest.h>

#include "analysis/check_facts.hh"
#include "analysis/elide_checks.hh"
#include "analysis/verifier.hh"
#include "common/test_util.hh"
#include "runtime/instrumentation.hh"
#include "workload/spec_profiles.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r13 = 13;

/** Instrument a single-function program with full ASan (no elision). */
isa::Program
instrumented(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto scheme = runtime::SchemeConfig::asanFull();
    runtime::applyScheme(prog, scheme);
    return prog;
}

/** Instrument, elide, and return (elided count, function). */
std::size_t
elideCount(FuncBuilder &&b)
{
    isa::Program prog = instrumented(std::move(b));
    return elideRedundantChecks(prog.funcs[0]);
}

} // namespace

TEST(ElideChecks, AdjacentDuplicateLoadElided)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 0, 8);
    b.halt();
    isa::Program prog = instrumented(std::move(b));
    isa::Function &fn = prog.funcs[0];
    ASSERT_EQ(findCheckGroups(fn).size(), 2u);
    const std::size_t before = fn.insts.size();

    EXPECT_EQ(elideRedundantChecks(fn), 1u);
    EXPECT_EQ(fn.insts.size(), before - CheckGroup::length);
    EXPECT_EQ(findCheckGroups(fn).size(), 1u);

    // Both guarded accesses survive; only the duplicate check is gone.
    int loads = 0;
    for (const isa::Inst &inst : fn.insts) {
        if (inst.op == Opcode::Load &&
            inst.tag == isa::OpSource::Program) {
            ++loads;
        }
    }
    EXPECT_EQ(loads, 2);

    // The result still satisfies the coverage invariant.
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

TEST(ElideChecks, SubWindowElided)
{
    // An 8-byte check covers a later 4-byte access at the same base.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 0, 4);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 1u);
}

TEST(ElideChecks, WiderWindowNotElided)
{
    // A 4-byte check proves nothing about a later 8-byte access.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 4);
    b.load(r3, r2, 0, 8);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 0u);
}

TEST(ElideChecks, DisjointOffsetNotElided)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 64, 8);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 0u);
}

TEST(ElideChecks, BaseRedefinitionKillsFact)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.addI(r2, r2, 8);
    b.load(r3, r2, 0, 8);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 0u);
}

TEST(ElideChecks, OtherRegisterWriteKeepsFact)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.addI(r4, r4, 1);
    b.load(r3, r2, 0, 8);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 1u);
}

TEST(ElideChecks, CallKillsFact)
{
    // A callee can repoison shadow state, so checks never survive one.
    isa::Program prog;
    {
        FuncBuilder b("main");
        b.load(r1, r2, 0, 8);
        b.call(1);
        b.load(r3, r2, 0, 8);
        b.halt();
        prog.funcs.push_back(std::move(b).take());
    }
    {
        FuncBuilder b("leaf");
        b.ret();
        prog.funcs.push_back(std::move(b).take());
    }
    auto scheme = runtime::SchemeConfig::asanFull();
    runtime::applyScheme(prog, scheme);
    EXPECT_EQ(elideRedundantChecks(prog.funcs[0]), 0u);
}

TEST(ElideChecks, RuntimeOpKillsFact)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.movImm(r13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.load(r3, r2, 0, 8);
    b.halt();
    EXPECT_EQ(elideCount(std::move(b)), 0u);
}

TEST(ElideChecks, LoopStoreLoadPairElided)
{
    // The spec generators' inner-block idiom: store then reload of the
    // same [base+off] window inside a loop body. The load's check is
    // redundant every iteration.
    FuncBuilder b("main");
    b.movImm(r4, 4);
    int top = b.here();
    b.store(r1, r2, 0, 8);
    b.load(r3, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, top);
    b.halt();
    isa::Program prog = instrumented(std::move(b));
    EXPECT_EQ(elideRedundantChecks(prog.funcs[0]), 1u);

    // Branch targets were remapped: the program must still verify.
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

TEST(ElideChecks, TrailingTargetedGroupIsKeptNotDangled)
{
    // Regression: a redundant check group that ends the function AND
    // is a branch target. Deleting it would leave the branch with no
    // instruction to land on; the rewrite layer must rescue (keep)
    // the group instead.
    auto group = [](isa::RegId base, std::int64_t off,
                    std::uint8_t width) {
        using isa::noReg;
        using isa::OpSource;
        constexpr isa::RegId rA = rCheckScratchA, rB = rCheckScratchB;
        return std::vector<isa::Inst>{
            {Opcode::AddI, rB, base, noReg, 8, off, -1, -1,
             OpSource::AccessCheck},
            {Opcode::ShrI, rA, rB, noReg, 8, 3, -1, -1,
             OpSource::AccessCheck},
            {Opcode::AddI, rA, rA, noReg, 8, 1l << 44, -1, -1,
             OpSource::AccessCheck},
            {Opcode::Load, rA, rA, noReg, 1, 0, -1, -1,
             OpSource::AccessCheck},
            {Opcode::AsanCheck, noReg, rA, rB, width, 0, -1, -1,
             OpSource::AccessCheck},
        };
    };

    isa::Function fn;
    fn.name = "trailing";
    for (const isa::Inst &inst : group(r2, 0, 8)) // 0..4: group A
        fn.insts.push_back(inst);
    fn.insts.push_back({Opcode::Load, r1, r2, isa::noReg, 8, 0, -1,
                        -1}); // 5: the guarded access
    fn.insts.push_back({Opcode::Beq, isa::noReg, r3, isa::regZero, 8,
                        0, 7, -1}); // 6: targets group B's leader
    for (const isa::Inst &inst : group(r2, 0, 8)) // 7..11: group B
        fn.insts.push_back(inst);
    ASSERT_EQ(findCheckGroups(fn).size(), 2u);

    // Group B is provably redundant, but it is the branch target and
    // nothing follows it: elision must keep it rather than dangle.
    EXPECT_EQ(elideRedundantChecks(fn), 0u);
    EXPECT_EQ(fn.insts.size(), 12u);
    EXPECT_EQ(fn.insts[6].target, 7);
    EXPECT_EQ(findCheckGroups(fn).size(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end: elided programs execute correctly and cost less
// ---------------------------------------------------------------------

namespace
{

/** A heap loop program whose loads re-check a constant base. */
isa::Program
heapLoopProgram()
{
    FuncBuilder b("main");
    b.movImm(r13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(r2, isa::regRet);
    b.movImm(r4, 50);
    int top = b.here();
    b.store(r1, r2, 0, 8);
    b.load(r3, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, top);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

sim::SystemConfig
asanConfig(bool elide)
{
    sim::SystemConfig cfg = sim::makeSystemConfig(sim::ExpConfig::Asan);
    cfg.scheme.elideRedundantChecks = elide;
    return cfg;
}

} // namespace

TEST(ElideChecksEndToEnd, ElidedLoopRunsCleanWithFewerOps)
{
    auto plain_run = test::runProgram(heapLoopProgram(),
                                      asanConfig(false));
    auto elided_run = test::runProgram(heapLoopProgram(),
                                       asanConfig(true));
    EXPECT_EQ(test::violationOf(plain_run), core::ViolationKind::None);
    EXPECT_EQ(test::violationOf(elided_run), core::ViolationKind::None);

    EXPECT_EQ(plain_run.instrumentation.accessChecksElided, 0u);
    EXPECT_GT(elided_run.instrumentation.accessChecksElided, 0u);
    // 50 iterations x one 5-op check group saved.
    EXPECT_LT(elided_run.run.committedOps, plain_run.run.committedOps);
}

TEST(ElideChecksEndToEnd, GeneratedBenchmarkSavesDynamicInstructions)
{
    workload::BenchProfile profile = workload::profileByName("hmmer");
    profile.targetKiloInsts = 50;

    auto plain_run = test::runProgram(workload::generate(profile),
                                      asanConfig(false));
    auto elided_run = test::runProgram(workload::generate(profile),
                                       asanConfig(true));
    EXPECT_EQ(test::violationOf(plain_run), core::ViolationKind::None);
    EXPECT_EQ(test::violationOf(elided_run), core::ViolationKind::None);
    EXPECT_GT(elided_run.instrumentation.accessChecksElided, 0u);
    EXPECT_LT(elided_run.run.committedOps, plain_run.run.committedOps);
}

TEST(ElideChecksEndToEnd, AttackDetectionPreservedWithElision)
{
    struct Case
    {
        const char *name;
        isa::Program prog;
    };
    std::vector<Case> cases;
    cases.push_back({"heartbleed",
                     workload::attacks::heartbleed(64, 256)});
    cases.push_back({"heap-overflow",
                     workload::attacks::heapOverflowWrite(64, 64)});
    cases.push_back({"heap-underflow",
                     workload::attacks::heapUnderflowRead(64, 8)});
    cases.push_back({"uaf", workload::attacks::useAfterFree(128)});
    cases.push_back({"double-free",
                     workload::attacks::doubleFree(64)});
    cases.push_back({"stack-overflow",
                     workload::attacks::stackOverflowWrite(16, 32)});
    cases.push_back({"strcpy-overflow",
                     workload::attacks::strcpyOverflow(32, 150)});

    for (Case &c : cases) {
        auto result = test::runProgram(std::move(c.prog),
                                       asanConfig(true));
        EXPECT_NE(test::violationOf(result), core::ViolationKind::None)
            << c.name << " went undetected with check elision on";
    }
}

} // namespace rest::analysis
