/**
 * @file
 * Golden tests of the CFG builder and the dominator tree over the
 * canonical shapes: a diamond, a natural loop, and a function with an
 * unreachable block.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2;

/**
 * The diamond:
 *   0: beq r1, r0, ->3
 *   1: addi r2, r2, 1
 *   2: jmp ->4
 *   3: addi r2, r2, 2
 *   4: ret
 */
isa::Function
diamond()
{
    FuncBuilder b("diamond");
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.addI(r2, r2, 1);
    b.jmp(4);
    b.addI(r2, r2, 2);
    b.ret();
    return std::move(b).take();
}

/**
 * A natural loop with the backedge into the body:
 *   0: movi r2, 10
 *   1: addi r2, r2, -1
 *   2: bne r2, r0, ->1
 *   3: ret
 */
isa::Function
loop()
{
    FuncBuilder b("loop");
    b.movImm(r2, 10);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, 1);
    b.ret();
    return std::move(b).take();
}

/**
 * A jumped-over (unreachable) block:
 *   0: jmp ->2
 *   1: addi r2, r2, 1
 *   2: ret
 */
isa::Function
skip()
{
    FuncBuilder b("skip");
    b.jmp(2);
    b.addI(r2, r2, 1);
    b.ret();
    return std::move(b).take();
}

} // namespace

TEST(CfgOpcodes, Classification)
{
    EXPECT_TRUE(isBlockTerminator(Opcode::Ret));
    EXPECT_TRUE(isBlockTerminator(Opcode::Halt));
    EXPECT_TRUE(isBlockTerminator(Opcode::Jmp));
    EXPECT_TRUE(isBlockTerminator(Opcode::Beq));
    EXPECT_FALSE(isBlockTerminator(Opcode::Call));
    EXPECT_FALSE(isBlockTerminator(Opcode::Load));

    EXPECT_TRUE(hasBranchTarget(Opcode::Jmp));
    EXPECT_TRUE(hasBranchTarget(Opcode::Bne));
    EXPECT_FALSE(hasBranchTarget(Opcode::Call)); // targets a function
    EXPECT_FALSE(hasBranchTarget(Opcode::Ret));

    EXPECT_TRUE(fallsThrough(Opcode::Beq));
    EXPECT_TRUE(fallsThrough(Opcode::Call));
    EXPECT_FALSE(fallsThrough(Opcode::Jmp));
    EXPECT_FALSE(fallsThrough(Opcode::Ret));
    EXPECT_FALSE(fallsThrough(Opcode::Halt));
}

TEST(Cfg, DiamondGolden)
{
    isa::Function fn = diamond();
    Cfg cfg(fn);
    EXPECT_EQ(cfg.toString(),
              "cfg diamond: 4 blocks\n"
              "  b0 [0..0] -> b2 b1\n"
              "  b1 [1..2] -> b3\n"
              "  b2 [3..3] -> b3\n"
              "  b3 [4..4] ->\n");

    // The instruction -> block map and the edge lists.
    EXPECT_EQ(cfg.blockOf(0), 0);
    EXPECT_EQ(cfg.blockOf(2), 1);
    EXPECT_EQ(cfg.blockOf(4), 3);
    ASSERT_EQ(cfg.blocks().size(), 4u);
    EXPECT_EQ(cfg.blocks()[3].preds, (std::vector<int>{1, 2}));

    // All blocks reachable; entry-first reverse postorder.
    for (bool r : cfg.reachable())
        EXPECT_TRUE(r);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), 0);
    EXPECT_EQ(cfg.rpo().size(), 4u);
    EXPECT_EQ(cfg.rpo().back(), 3); // the join is visited last
}

TEST(DomTree, DiamondGolden)
{
    isa::Function fn = diamond();
    Cfg cfg(fn);
    DomTree dom(cfg);
    EXPECT_EQ(dom.toString(),
              "domtree diamond:\n"
              "  idom(b0) = b0  ; entry\n"
              "  idom(b1) = b0\n"
              "  idom(b2) = b0\n"
              "  idom(b3) = b0\n");

    // Neither arm dominates the join; the entry dominates everything.
    EXPECT_TRUE(dom.dominates(0, 3));
    EXPECT_FALSE(dom.dominates(1, 3));
    EXPECT_FALSE(dom.dominates(2, 3));
    EXPECT_TRUE(dom.dominates(1, 1));
}

TEST(Cfg, LoopGolden)
{
    isa::Function fn = loop();
    Cfg cfg(fn);
    EXPECT_EQ(cfg.toString(),
              "cfg loop: 3 blocks\n"
              "  b0 [0..0] -> b1\n"
              "  b1 [1..2] -> b1 b2\n"
              "  b2 [3..3] ->\n");
    // The body is its own predecessor via the backedge.
    EXPECT_EQ(cfg.blocks()[1].preds, (std::vector<int>{0, 1}));
}

TEST(DomTree, LoopBodyDominatesExit)
{
    isa::Function fn = loop();
    Cfg cfg(fn);
    DomTree dom(cfg);
    EXPECT_EQ(dom.idom(1), 0);
    EXPECT_EQ(dom.idom(2), 1);
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 1));
}

TEST(Cfg, UnreachableBlockGolden)
{
    isa::Function fn = skip();
    Cfg cfg(fn);
    EXPECT_EQ(cfg.toString(),
              "cfg skip: 3 blocks\n"
              "  b0 [0..0] -> b2\n"
              "  b1 [1..1] -> b2  ; unreachable\n"
              "  b2 [2..2] ->\n");
    EXPECT_TRUE(cfg.reachable()[0]);
    EXPECT_FALSE(cfg.reachable()[1]);
    EXPECT_TRUE(cfg.reachable()[2]);
    // The rpo covers the reachable subgraph only.
    EXPECT_EQ(cfg.rpo(), (std::vector<int>{0, 2}));
}

TEST(DomTree, UnreachableBlockIsolated)
{
    isa::Function fn = skip();
    Cfg cfg(fn);
    DomTree dom(cfg);
    EXPECT_EQ(dom.toString(),
              "domtree skip:\n"
              "  idom(b0) = b0  ; entry\n"
              "  idom(b1) = -  ; unreachable\n"
              "  idom(b2) = b0\n");
    EXPECT_EQ(dom.idom(1), -1);
    EXPECT_FALSE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(0, 1));
    EXPECT_TRUE(dom.dominates(1, 1)); // reflexive even when unreachable
}

} // namespace rest::analysis
