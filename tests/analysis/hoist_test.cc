/**
 * @file
 * Tests of loop-invariant check hoisting: the anticipated-checks
 * backward dataflow it rests on, which groups it may and may not move,
 * the audit trail the verifier re-proves, and end-to-end runs showing
 * hoisted programs execute strictly fewer dynamic check operations
 * with a byte-identical attack-detection verdict.
 */

#include <gtest/gtest.h>

#include "analysis/check_facts.hh"
#include "analysis/dataflow.hh"
#include "analysis/elide_checks.hh"
#include "analysis/hoist_checks.hh"
#include "analysis/verifier.hh"
#include "common/test_util.hh"
#include "runtime/instrumentation.hh"
#include "workload/spec_profiles.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r13 = 13;

/** Instrument a single-function program with full ASan (no elision). */
isa::Program
instrumented(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto scheme = runtime::SchemeConfig::asanFull();
    runtime::applyScheme(prog, scheme);
    return prog;
}

/** Instrument and hoist; returns the group count moved. */
std::size_t
hoistCount(FuncBuilder &&b)
{
    isa::Program prog = instrumented(std::move(b));
    return hoistLoopChecks(prog.funcs[0]).hoisted;
}

/** A counted loop re-checking a loop-invariant base every iteration. */
FuncBuilder
invariantLoop()
{
    FuncBuilder b("main");
    b.movImm(r4, 10);
    int top = b.here();
    b.load(r1, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, top);
    b.halt();
    return b;
}

} // namespace

// ---------------------------------------------------------------------
// The anticipated-checks backward dataflow
// ---------------------------------------------------------------------

namespace
{

/**
 * Anticipation state immediately after the first Program-tagged
 * conditional branch of the instrumented function: the meet over
 * everything that follows on all paths.
 */
AnticipatedChecksDomain::State
stateAfterFirstBranch(const isa::Function &fn)
{
    int branch_at = -1;
    for (std::size_t i = 0; i < fn.insts.size(); ++i) {
        if (fn.insts[i].op == Opcode::Beq &&
            fn.insts[i].tag == isa::OpSource::Program) {
            branch_at = static_cast<int>(i);
            break;
        }
    }
    EXPECT_GE(branch_at, 0) << "no program branch found";

    Cfg cfg(fn);
    BackwardSolver<AnticipatedChecksDomain> solver(
        cfg, AnticipatedChecksDomain(fn));
    AnticipatedChecksDomain::State at_branch;
    solver.scan(cfg.blockOf(branch_at),
                [&](const AnticipatedChecksDomain::State &st,
                    const isa::Inst &, int idx) {
                    if (idx == branch_at)
                        at_branch = st;
                });
    return at_branch;
}

} // namespace

TEST(AnticipatedChecks, CheckOnBothArmsIsAnticipated)
{
    // 0: beq ->3; 1: load [r2+0]8; 2: jmp ->4; 3: load [r2+0]8;
    // 4: join; 5: halt — the same window is checked on every path.
    FuncBuilder b("main");
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.load(r3, r2, 0, 8);
    b.jmp(4);
    b.load(r4, r2, 0, 8);
    b.addI(r13, r13, 1);
    b.halt();
    isa::Program prog = instrumented(std::move(b));

    auto st = stateAfterFirstBranch(prog.funcs[0]);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(anyCovers(*st, CheckFact{r2, 0, 8}));
}

TEST(AnticipatedChecks, CheckOnOneArmIsNotAnticipated)
{
    // The else arm never checks r2: the meet drops the fact.
    FuncBuilder b("main");
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.load(r3, r2, 0, 8);
    b.jmp(4);
    b.addI(r4, r4, 1);
    b.addI(r13, r13, 1);
    b.halt();
    isa::Program prog = instrumented(std::move(b));

    auto st = stateAfterFirstBranch(prog.funcs[0]);
    ASSERT_TRUE(st.has_value());
    EXPECT_FALSE(anyCovers(*st, CheckFact{r2, 0, 8}));
}

TEST(AnticipatedChecks, BaseRedefinitionBeforeCheckKillsFact)
{
    // Both arms redefine the base before checking it: the check that
    // follows proves nothing about the branch point's r2.
    FuncBuilder b("main");
    b.branch(Opcode::Beq, r1, isa::regZero, 4);
    b.addI(r2, r2, 8);
    b.load(r3, r2, 0, 8);
    b.jmp(6);
    b.addI(r2, r2, 8);
    b.load(r4, r2, 0, 8);
    b.addI(r13, r13, 1);
    b.halt();
    isa::Program prog = instrumented(std::move(b));

    auto st = stateAfterFirstBranch(prog.funcs[0]);
    ASSERT_TRUE(st.has_value());
    EXPECT_FALSE(anyCovers(*st, CheckFact{r2, 0, 8}));
}

// ---------------------------------------------------------------------
// What hoists and what must not
// ---------------------------------------------------------------------

TEST(HoistChecks, InvariantLoopCheckHoists)
{
    isa::Program prog = instrumented(invariantLoop());
    isa::Function &fn = prog.funcs[0];
    const std::size_t groups_before = findCheckGroups(fn).size();

    HoistResult res = hoistLoopChecks(fn);
    EXPECT_EQ(res.hoisted, 1u);
    ASSERT_EQ(res.records.size(), 1u);
    EXPECT_EQ(res.records[0].fact, (CheckFact{r2, 0, 8}));
    EXPECT_EQ(res.records[0].guardedSites.size(), 1u);
    // The group moved, it did not vanish.
    EXPECT_EQ(findCheckGroups(fn).size(), groups_before);

    // The audit trail re-proves on the transformed function...
    auto hdiags = verifyHoistedChecks(fn, 0, res.records);
    EXPECT_TRUE(hdiags.empty()) << formatDiagnostics(hdiags);
    // ...and the program still satisfies the coverage invariant.
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

TEST(HoistChecks, BaseRedefinedInLoopDoesNotHoist)
{
    FuncBuilder b("main");
    b.movImm(r4, 10);
    int top = b.here();
    b.load(r1, r2, 0, 8);
    b.addI(r2, r2, 8); // walking pointer: not invariant
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, top);
    b.halt();
    EXPECT_EQ(hoistCount(std::move(b)), 0u);
}

TEST(HoistChecks, CallInLoopDoesNotHoist)
{
    // A callee may repoison shadow state mid-loop: the per-iteration
    // verdict is not invariant and the group must stay.
    isa::Program prog;
    {
        FuncBuilder b("main");
        b.movImm(r4, 10);
        int top = b.here();
        b.load(r1, r2, 0, 8);
        b.call(1);
        b.addI(r4, r4, -1);
        b.branch(Opcode::Bne, r4, isa::regZero, top);
        b.halt();
        prog.funcs.push_back(std::move(b).take());
    }
    {
        FuncBuilder b("leaf");
        b.ret();
        prog.funcs.push_back(std::move(b).take());
    }
    auto scheme = runtime::SchemeConfig::asanFull();
    runtime::applyScheme(prog, scheme);
    EXPECT_EQ(hoistLoopChecks(prog.funcs[0]).hoisted, 0u);
}

TEST(HoistChecks, EarlyExitCheckIsNotAnticipatedAndStays)
{
    // 0: movi r4, 10
    // 1: beq r4, r0, ->5   <- loop header: may exit before checking
    // 2: load [r2+0]8
    // 3: addi r4, r4, -1
    // 4: bne r4, r0, ->1
    // 5: addi; 6: halt
    // Hoisting would check r2 on the iteration that immediately
    // exits — a detection the original program never raises.
    FuncBuilder b("main");
    b.movImm(r4, 10);
    b.branch(Opcode::Beq, r4, isa::regZero, 5);
    b.load(r1, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, 1);
    b.addI(r13, r13, 1);
    b.halt();
    EXPECT_EQ(hoistCount(std::move(b)), 0u);
}

TEST(HoistChecks, IrreducibleFunctionIsLeftAlone)
{
    // The two-entry cycle from loops_test, now with a memory access
    // inside: the hoister must refuse the whole function.
    FuncBuilder b("main");
    b.branch(Opcode::Beq, r1, isa::regZero, 4);
    b.load(r3, r2, 0, 8);
    b.jmp(4);
    b.addI(r4, r4, 1);
    b.branch(Opcode::Bne, r4, isa::regZero, 1);
    b.halt();
    isa::Program prog = instrumented(std::move(b));
    isa::Function &fn = prog.funcs[0];
    const std::size_t size_before = fn.insts.size();

    EXPECT_EQ(hoistLoopChecks(fn).hoisted, 0u);
    EXPECT_EQ(fn.insts.size(), size_before);
}

TEST(HoistChecks, FallThroughHeaderEntryHasNoPreheaderSlot)
{
    // 0: jmp ->2; 1: load [r2+0]8 (body); 2: addi (header);
    // 3: bne ->1; 4: halt — the body block falls through into the
    // header, so no preheader can be spliced before it.
    FuncBuilder b("main");
    b.jmp(2);
    b.load(r1, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, 1);
    b.halt();
    EXPECT_EQ(hoistCount(std::move(b)), 0u);
}

TEST(HoistChecks, NestedLoopCheckHoistsPastBothLoops)
{
    // The invariant check sits in the inner loop; outermost-first
    // rounds move it all the way out of the nest.
    FuncBuilder b("main");
    b.movImm(r3, 3);
    int outer = b.here();
    b.movImm(r4, 3);
    int inner = b.here();
    b.load(r1, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, inner);
    b.addI(r3, r3, -1);
    b.branch(Opcode::Bne, r3, isa::regZero, outer);
    b.halt();

    isa::Program prog = instrumented(std::move(b));
    isa::Function &fn = prog.funcs[0];
    HoistResult res = hoistLoopChecks(fn);
    EXPECT_GE(res.hoisted, 1u);

    auto hdiags = verifyHoistedChecks(fn, 0, res.records);
    EXPECT_TRUE(hdiags.empty()) << formatDiagnostics(hdiags);
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

TEST(HoistChecks, ComposesWithElision)
{
    // The pipeline order used by applyScheme: elide, then hoist.
    isa::Program prog = instrumented(invariantLoop());
    isa::Function &fn = prog.funcs[0];
    elideRedundantChecks(fn);
    HoistResult res = hoistLoopChecks(fn);
    EXPECT_EQ(res.hoisted, 1u);
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

// ---------------------------------------------------------------------
// The post-hoist verifier mode catches tampered audit trails
// ---------------------------------------------------------------------

TEST(VerifyHoistedChecks, RejectsRecordPointingAtNonGroup)
{
    isa::Program prog = instrumented(invariantLoop());
    isa::Function &fn = prog.funcs[0];
    HoistResult res = hoistLoopChecks(fn);
    ASSERT_EQ(res.records.size(), 1u);

    HoistRecord bogus = res.records[0];
    bogus.preheaderAt = 0; // the frame setup, not a check group
    auto diags = verifyHoistedChecks(fn, 0, {bogus});
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].kind, DiagKind::HoistedGroupMalformed);
}

TEST(VerifyHoistedChecks, RejectsWrongFact)
{
    isa::Program prog = instrumented(invariantLoop());
    isa::Function &fn = prog.funcs[0];
    HoistResult res = hoistLoopChecks(fn);
    ASSERT_EQ(res.records.size(), 1u);

    HoistRecord bogus = res.records[0];
    bogus.fact.width = 16; // claims a wider window than was proven
    auto diags = verifyHoistedChecks(fn, 0, {bogus});
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].kind, DiagKind::HoistedGroupMalformed);
}

// ---------------------------------------------------------------------
// End-to-end: fewer dynamic checks, identical verdicts
// ---------------------------------------------------------------------

namespace
{

sim::SystemConfig
asanConfig(bool elide, bool hoist, bool coalesce = false)
{
    sim::SystemConfig cfg = sim::makeSystemConfig(sim::ExpConfig::Asan);
    cfg.scheme.elideRedundantChecks = elide;
    cfg.scheme.hoistLoopChecks = hoist;
    cfg.scheme.coalesceChecks = coalesce;
    return cfg;
}

std::uint64_t
dynamicCheckOps(const sim::SystemResult &result)
{
    return result.run.opsBySource[
        static_cast<unsigned>(isa::OpSource::AccessCheck)];
}

/** A heap loop whose loads re-check a constant malloc'd base. */
isa::Program
heapLoopProgram()
{
    FuncBuilder b("main");
    b.movImm(r13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(r2, isa::regRet);
    b.movImm(r4, 50);
    int top = b.here();
    b.load(r3, r2, 0, 8);
    b.addI(r4, r4, -1);
    b.branch(Opcode::Bne, r4, isa::regZero, top);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

} // namespace

TEST(HoistEndToEnd, LoopCheckExecutesOncePerEntryNotPerIteration)
{
    auto elided = test::runProgram(heapLoopProgram(),
                                   asanConfig(true, false));
    auto hoisted = test::runProgram(heapLoopProgram(),
                                    asanConfig(true, true));
    EXPECT_EQ(test::violationOf(elided), core::ViolationKind::None);
    EXPECT_EQ(test::violationOf(hoisted), core::ViolationKind::None);

    EXPECT_GT(hoisted.instrumentation.accessChecksHoisted, 0u);
    // 50 iterations collapse to one preheader execution: the hoisted
    // run performs strictly fewer dynamic check ops.
    EXPECT_LT(dynamicCheckOps(hoisted), dynamicCheckOps(elided));
}

TEST(HoistEndToEnd, GeneratedBenchmarksExecuteStrictlyFewerChecks)
{
    // The headline acceptance criterion: on loop-heavy generated
    // benchmarks, asan+elide+hoist executes strictly fewer dynamic
    // access-check operations than asan+elide.
    for (const char *bench : {"hmmer", "libquantum", "lbm"}) {
        workload::BenchProfile profile =
            workload::profileByName(bench);
        profile.targetKiloInsts = 50;

        auto elided = test::runProgram(workload::generate(profile),
                                       asanConfig(true, false));
        auto hoisted = test::runProgram(workload::generate(profile),
                                        asanConfig(true, true));
        EXPECT_EQ(test::violationOf(elided),
                  core::ViolationKind::None) << bench;
        EXPECT_EQ(test::violationOf(hoisted),
                  core::ViolationKind::None) << bench;
        EXPECT_GT(hoisted.instrumentation.accessChecksHoisted, 0u)
            << bench;
        EXPECT_LT(dynamicCheckOps(hoisted), dynamicCheckOps(elided))
            << bench << ": hoisting must strictly reduce dynamic "
            << "check operations";
    }
}

TEST(HoistEndToEnd, DetectionMatrixIdenticalAcrossOptimizationLevels)
{
    // The tab1 guarantee: every attack scenario yields the same
    // violation verdict at every optimization level.
    struct Scenario
    {
        const char *name;
        isa::Program (*make)();
    };
    const Scenario scenarios[] = {
        {"heartbleed",
         [] { return workload::attacks::heartbleed(64, 256); }},
        {"heap-overflow",
         [] { return workload::attacks::heapOverflowWrite(64, 64); }},
        {"heap-underflow",
         [] { return workload::attacks::heapUnderflowRead(64, 8); }},
        {"uaf", [] { return workload::attacks::useAfterFree(128); }},
        {"double-free",
         [] { return workload::attacks::doubleFree(64); }},
        {"stack-overflow",
         [] { return workload::attacks::stackOverflowWrite(16, 32); }},
        {"strcpy-overflow",
         [] { return workload::attacks::strcpyOverflow(32, 150); }},
    };

    for (const Scenario &s : scenarios) {
        const auto baseline = test::violationOf(test::runProgram(
            s.make(), asanConfig(false, false)));
        EXPECT_NE(baseline, core::ViolationKind::None) << s.name;
        const auto hoist = test::violationOf(test::runProgram(
            s.make(), asanConfig(true, true)));
        const auto full = test::violationOf(test::runProgram(
            s.make(), asanConfig(true, true, true)));
        EXPECT_EQ(baseline, hoist)
            << s.name << ": hoisting changed the verdict";
        EXPECT_EQ(baseline, full)
            << s.name << ": coalescing changed the verdict";
    }
}

TEST(HoistEndToEnd, VerifierAcceptsEveryOptimizedBenchmark)
{
    for (const workload::BenchProfile &base : workload::specSuite()) {
        workload::BenchProfile profile = base;
        profile.targetKiloInsts = 20;
        isa::Program prog = workload::generate(profile);

        auto scheme = runtime::SchemeConfig::asanFull();
        scheme.elideRedundantChecks = true;
        scheme.hoistLoopChecks = true;
        scheme.coalesceChecks = true;
        runtime::applyScheme(prog, scheme);

        VerifyOptions opts;
        opts.expectAsanChecks = true;
        auto diags = verify(prog, opts);
        EXPECT_TRUE(diags.empty())
            << profile.name << ":\n" << formatDiagnostics(diags);
    }
}

} // namespace rest::analysis
