/**
 * @file
 * Tests of shadow-check coalescing: which same-base windows merge
 * into one widened check, the boundaries that must flush a pending
 * merge, the acrossAccesses exactness gate, and end-to-end runs
 * showing fewer dynamic operations with detection preserved.
 */

#include <gtest/gtest.h>

#include "analysis/check_facts.hh"
#include "analysis/coalesce_checks.hh"
#include "analysis/verifier.hh"
#include "common/test_util.hh"
#include "runtime/instrumentation.hh"
#include "workload/spec_profiles.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r13 = 13;

/** Instrument a single-function program with full ASan. */
isa::Program
instrumented(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    auto scheme = runtime::SchemeConfig::asanFull();
    runtime::applyScheme(prog, scheme);
    return prog;
}

std::size_t
coalesceCount(FuncBuilder &&b, const CoalesceOptions &opts = {})
{
    isa::Program prog = instrumented(std::move(b));
    return coalesceChecks(prog.funcs[0], opts);
}

/** The check facts present in 'fn', in instruction order. */
std::vector<CheckFact>
factsOf(const isa::Function &fn)
{
    std::vector<CheckFact> out;
    for (const CheckGroup &g : findCheckGroups(fn))
        out.push_back(g.fact);
    return out;
}

} // namespace

TEST(CoalesceChecks, AdjacentWindowsMergeIntoUnion)
{
    // [r2+0, +8) and [r2+8, +16) touch: one 16-byte check suffices.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 8, 8);
    b.halt();
    isa::Program prog = instrumented(std::move(b));
    isa::Function &fn = prog.funcs[0];

    EXPECT_EQ(coalesceChecks(fn), 1u);
    auto facts = factsOf(fn);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_EQ(facts[0], (CheckFact{r2, 0, 16}));

    // Both guarded accesses survive and the program still verifies.
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty()) << formatDiagnostics(diags);
}

TEST(CoalesceChecks, OverlappingWindowsMerge)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 4, 8);
    b.halt();
    isa::Program prog = instrumented(std::move(b));
    isa::Function &fn = prog.funcs[0];
    EXPECT_EQ(coalesceChecks(fn), 1u);
    auto facts = factsOf(fn);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_EQ(facts[0], (CheckFact{r2, 0, 12}));
}

TEST(CoalesceChecks, DisjointWindowsDoNotMerge)
{
    // A widened check would cover bytes neither access touches and
    // could report an overflow the original program never detects.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 64, 8);
    b.halt();
    EXPECT_EQ(coalesceCount(std::move(b)), 0u);
}

TEST(CoalesceChecks, DifferentBasesDoNotMerge)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r4, 8, 8);
    b.halt();
    EXPECT_EQ(coalesceCount(std::move(b)), 0u);
}

TEST(CoalesceChecks, BaseRedefinitionFlushesPendingMerge)
{
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.addI(r2, r2, 8);
    b.load(r3, r2, 0, 8);
    b.halt();
    EXPECT_EQ(coalesceCount(std::move(b)), 0u);
}

TEST(CoalesceChecks, RuntimeOpFlushesPendingMerge)
{
    // The allocator can repoison shadow between the two checks; a
    // pre-merged wide check would see the older state.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.movImm(r13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.load(r3, r2, 8, 8);
    b.halt();
    EXPECT_EQ(coalesceCount(std::move(b)), 0u);
}

TEST(CoalesceChecks, BlockBoundaryFlushesPendingMerge)
{
    // Same windows, but the second check is conditionally executed:
    // merging would check it on the path that skips it.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.branch(Opcode::Beq, r1, isa::regZero, 3);
    b.load(r3, r2, 8, 8);
    b.addI(r13, r13, 1);
    b.halt();
    EXPECT_EQ(coalesceCount(std::move(b)), 0u);
}

TEST(CoalesceChecks, AcrossAccessesGateBlocksMerging)
{
    // Between two instrumented checks there is always the first
    // group's guarded access; with the gate off (token-arming
    // schemes) that access could itself fault, so no merge may
    // reorder a check across it.
    FuncBuilder b("main");
    b.load(r1, r2, 0, 8);
    b.load(r3, r2, 8, 8);
    b.halt();
    CoalesceOptions opts;
    opts.acrossAccesses = false;
    EXPECT_EQ(coalesceCount(std::move(b), opts), 0u);
}

TEST(CoalesceEndToEnd, CoalescedRunIsCleanAndCheaper)
{
    auto makeProgram = [] {
        FuncBuilder b("main");
        b.movImm(r13, 64);
        b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0,
                -1, -1});
        b.mov(r2, isa::regRet);
        b.movImm(r4, 50);
        int top = b.here();
        b.load(r1, r2, 0, 8);
        b.load(r3, r2, 8, 8);
        b.addI(r4, r4, -1);
        b.branch(Opcode::Bne, r4, isa::regZero, top);
        b.halt();
        isa::Program prog;
        prog.funcs.push_back(std::move(b).take());
        return prog;
    };
    auto config = [](bool coalesce) {
        sim::SystemConfig cfg =
            sim::makeSystemConfig(sim::ExpConfig::Asan);
        cfg.scheme.coalesceChecks = coalesce;
        return cfg;
    };

    auto plain = test::runProgram(makeProgram(), config(false));
    auto merged = test::runProgram(makeProgram(), config(true));
    EXPECT_EQ(test::violationOf(plain), core::ViolationKind::None);
    EXPECT_EQ(test::violationOf(merged), core::ViolationKind::None);
    EXPECT_GT(merged.instrumentation.accessChecksCoalesced, 0u);
    EXPECT_LT(merged.run.committedOps, plain.run.committedOps);
}

TEST(CoalesceEndToEnd, GeneratedBenchmarkCoalescesAndStaysClean)
{
    workload::BenchProfile profile = workload::profileByName("hmmer");
    profile.targetKiloInsts = 50;

    sim::SystemConfig cfg = sim::makeSystemConfig(sim::ExpConfig::Asan);
    cfg.scheme.elideRedundantChecks = true;
    cfg.scheme.coalesceChecks = true;
    auto run = test::runProgram(workload::generate(profile), cfg);
    EXPECT_EQ(test::violationOf(run), core::ViolationKind::None);
    EXPECT_GT(run.instrumentation.accessChecksCoalesced, 0u);
}

} // namespace rest::analysis
