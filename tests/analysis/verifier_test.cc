/**
 * @file
 * Tests of the instrumentation verifier: every checked invariant is
 * seeded with one violating program and must produce exactly the
 * expected diagnostic; instrumented generator output must verify
 * cleanly under every scheme; and applyScheme() must reject
 * contract-violating programs with a fatal error.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/check_facts.hh"
#include "analysis/verifier.hh"
#include "runtime/instrumentation.hh"
#include "runtime/runtime_config.hh"
#include "workload/attack_scenarios.hh"
#include "workload/spec_profiles.hh"

namespace rest::analysis
{

namespace
{

using isa::FuncBuilder;
using isa::Opcode;

constexpr isa::RegId r1 = 1, r2 = 2, r3 = 3, r10 = 10;

isa::Program
solo(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

std::vector<DiagKind>
kindsOf(const std::vector<Diagnostic> &diags)
{
    std::vector<DiagKind> kinds;
    for (const Diagnostic &d : diags)
        kinds.push_back(d.kind);
    return kinds;
}

/** Emit the exact emitAccessCheck() 5-op sequence by hand. */
void
emitCheck(FuncBuilder &b, isa::RegId base, std::int64_t imm,
          std::uint8_t width)
{
    auto tag = [&b](isa::Inst inst) {
        inst.tag = isa::OpSource::AccessCheck;
        b.emit(inst);
    };
    auto shadow_base = static_cast<std::int64_t>(
        runtime::AddressMap::shadowBase);
    tag({Opcode::AddI, rCheckScratchB, base, isa::noReg, 8, imm, -1,
         -1});
    tag({Opcode::ShrI, rCheckScratchA, rCheckScratchB, isa::noReg, 8, 3,
         -1, -1});
    tag({Opcode::AddI, rCheckScratchA, rCheckScratchA, isa::noReg, 8,
         shadow_base, -1, -1});
    tag({Opcode::Load, rCheckScratchA, rCheckScratchA, isa::noReg, 1, 0,
         -1, -1});
    tag({Opcode::AsanCheck, isa::noReg, rCheckScratchA, rCheckScratchB,
         width, 0, -1, -1});
}

/** Emit "addi r10, fp, off" + Arm/Disarm, both StackSetup-tagged. */
void
emitArmOp(FuncBuilder &b, Opcode op, std::int64_t off)
{
    isa::Inst addr{Opcode::AddI, r10, isa::regFp, isa::noReg, 8, off,
                   -1, -1};
    addr.tag = isa::OpSource::StackSetup;
    b.emit(addr);
    isa::Inst arm{op, isa::noReg, r10, isa::noReg, 8, 0, -1, -1};
    arm.tag = isa::OpSource::StackSetup;
    b.emit(arm);
}

} // namespace

// ---------------------------------------------------------------------
// Structural contract, one seeded violation per invariant
// ---------------------------------------------------------------------

TEST(VerifierStructure, EmptyFunction)
{
    isa::Program prog;
    prog.funcs.push_back({"empty", {}, {}, 0});
    auto diags = verifyGeneratorContract(prog);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::EmptyFunction}));
    EXPECT_EQ(diags[0].toString(),
              "[EmptyFunction] empty: function has no instructions");
}

TEST(VerifierStructure, MissingExit)
{
    FuncBuilder b("noexit");
    b.addI(r1, r1, 1);
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::MissingExit}));
    EXPECT_EQ(diags[0].toString(),
              "[MissingExit] noexit inst 0: function must end in "
              "ret/halt, ends in addi");
}

TEST(VerifierStructure, MultipleExits)
{
    FuncBuilder b("twice");
    b.ret();
    b.ret();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::MultipleExits}));
    EXPECT_EQ(diags[0].inst, 0);
}

TEST(VerifierStructure, BranchTargetOutOfRange)
{
    FuncBuilder b("wild");
    b.jmp(7);
    b.ret();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::BranchTargetOutOfRange}));
    EXPECT_EQ(diags[0].toString(),
              "[BranchTargetOutOfRange] wild inst 0: branch target 7 "
              "outside [0, 2)");
}

TEST(VerifierStructure, BranchIntoExit)
{
    FuncBuilder b("intoexit");
    b.branch(Opcode::Beq, r1, isa::regZero, 1);
    b.ret();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::BranchIntoExit}));
}

TEST(VerifierStructure, CallTargetOutOfRange)
{
    FuncBuilder b("badcall");
    b.call(3);
    b.halt();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::CallTargetOutOfRange}));
}

TEST(VerifierStructure, BadBufId)
{
    FuncBuilder b("badbuf");
    b.leaBuf(r1, 0); // no stackBuf() declared
    b.ret();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::BadBufId}));
}

TEST(VerifierStructure, UnreachableExit)
{
    FuncBuilder b("spin");
    b.jmp(0);
    b.ret();
    auto diags = verifyGeneratorContract(solo(std::move(b)));
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::UnreachableExit}));
}

TEST(VerifierStructure, CleanProgramHasNoDiagnostics)
{
    FuncBuilder b("main");
    b.movImm(r1, 3);
    int top = b.here();
    b.addI(r1, r1, -1);
    b.branch(Opcode::Bne, r1, isa::regZero, top);
    b.halt();
    EXPECT_TRUE(verifyGeneratorContract(solo(std::move(b))).empty());
}

// ---------------------------------------------------------------------
// Post-instrumentation invariants
// ---------------------------------------------------------------------

TEST(VerifierPost, UnresolvedBufId)
{
    FuncBuilder b("leftover");
    b.stackBuf(16);
    b.leaBuf(r1, 0);
    b.ret();
    VerifyOptions opts;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::UnresolvedBufId}));
}

TEST(VerifierPost, UncheckedAccess)
{
    FuncBuilder b("naked");
    b.load(r1, r2, 0, 8);
    b.halt();
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::UncheckedAccess}));
    EXPECT_EQ(diags[0].toString(),
              "[UncheckedAccess] naked inst 0: ld of [r2+0, +8) is not "
              "covered by a shadow check on every path");
}

TEST(VerifierPost, CheckedAccessIsCovered)
{
    FuncBuilder b("guarded");
    emitCheck(b, r2, 0, 8);
    b.load(r1, r2, 0, 8);
    b.halt();
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    opts.checkLayout = false;
    EXPECT_TRUE(verify(solo(std::move(b)), opts).empty());
}

TEST(VerifierPost, CheckOnOnePathOnlyIsNotCoverage)
{
    // The branch skips the check, so the access is unchecked on that
    // path and the must-analysis rejects it.
    FuncBuilder b("onepath");
    int br = b.branch(Opcode::Beq, r3, isa::regZero);
    emitCheck(b, r2, 0, 8);
    b.patchTarget(br, b.here());
    b.load(r1, r2, 0, 8);
    b.halt();
    VerifyOptions opts;
    opts.expectAsanChecks = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::UncheckedAccess}));
}

TEST(VerifierPost, DoubleArm)
{
    FuncBuilder b("dblarm");
    emitArmOp(b, Opcode::Arm, 0);
    emitArmOp(b, Opcode::Arm, 0);
    emitArmOp(b, Opcode::Disarm, 0);
    b.ret();
    VerifyOptions opts;
    opts.expectArming = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::DoubleArm}));
    EXPECT_EQ(diags[0].toString(),
              "[DoubleArm] dblarm inst 3: granule fp+0 may already be "
              "armed here");
}

TEST(VerifierPost, DisarmWithoutArm)
{
    FuncBuilder b("colddis");
    emitArmOp(b, Opcode::Disarm, 8);
    b.ret();
    VerifyOptions opts;
    opts.expectArming = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::DisarmWithoutArm}));
}

TEST(VerifierPost, ArmedAtExit)
{
    FuncBuilder b("leak");
    emitArmOp(b, Opcode::Arm, 0);
    b.ret();
    VerifyOptions opts;
    opts.expectArming = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::ArmedAtExit}));
    EXPECT_EQ(diags[0].toString(),
              "[ArmedAtExit] leak inst 2: granules still armed at "
              "function exit: fp+0");
}

TEST(VerifierPost, UnknownArmAddress)
{
    FuncBuilder b("mystery");
    isa::Inst arm{Opcode::Arm, isa::noReg, r3, isa::noReg, 8, 0, -1,
                  -1};
    arm.tag = isa::OpSource::StackSetup;
    b.emit(arm);
    b.ret();
    VerifyOptions opts;
    opts.expectArming = true;
    opts.checkLayout = false;
    auto diags = verify(solo(std::move(b)), opts);
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::UnknownArmAddress}));
}

TEST(VerifierPost, ProgramTaggedArmIsIgnored)
{
    // The bruteForceDisarm attack scenario disarms from guest code;
    // pairing only constrains instrumentation-inserted ops.
    FuncBuilder b("guest");
    b.emit({Opcode::Disarm, isa::noReg, r3, isa::noReg, 8, 0, -1, -1});
    b.halt();
    VerifyOptions opts;
    opts.expectArming = true;
    opts.checkLayout = false;
    EXPECT_TRUE(verify(solo(std::move(b)), opts).empty());
}

TEST(VerifierLayout, BufferOutsideFrame)
{
    isa::Function fn;
    fn.name = "oob";
    fn.frameSize = 64;
    fn.bufs.push_back({16, true, 100});
    isa::Inst halt;
    halt.op = Opcode::Halt;
    fn.insts.push_back(halt);
    isa::Program prog;
    prog.funcs.push_back(std::move(fn));
    auto diags = verify(prog, {});
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::BufferOutsideFrame}));
    EXPECT_EQ(diags[0].toString(),
              "[BufferOutsideFrame] oob: buffer #0 [100, 116) exceeds "
              "the frame [0, 64)");
}

TEST(VerifierLayout, BufferOverlap)
{
    isa::Function fn;
    fn.name = "clash";
    fn.frameSize = 64;
    fn.bufs.push_back({16, true, 0});
    fn.bufs.push_back({16, true, 8});
    isa::Inst halt;
    halt.op = Opcode::Halt;
    fn.insts.push_back(halt);
    isa::Program prog;
    prog.funcs.push_back(std::move(fn));
    auto diags = verify(prog, {});
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::BufferOverlap}));
}

TEST(VerifierLayout, RedzoneOverlapsBuffer)
{
    // Armed granule [8, 72) against a live buffer at [0, 16).
    FuncBuilder b("rzclash");
    b.halt();
    isa::Function fn = std::move(b).take();
    fn.frameSize = 128;
    fn.bufs.push_back({16, true, 0});
    {
        FuncBuilder arm_builder("tmp");
        emitArmOp(arm_builder, Opcode::Arm, 8);
        isa::Function tmp = std::move(arm_builder).take();
        fn.insts.insert(fn.insts.begin(), tmp.insts.begin(),
                        tmp.insts.end());
    }
    isa::Program prog;
    prog.funcs.push_back(std::move(fn));
    auto diags = verify(prog, {}); // layout only, no pairing check
    ASSERT_EQ(kindsOf(diags),
              (std::vector<DiagKind>{DiagKind::RedzoneOverlapsBuffer}));
    EXPECT_EQ(diags[0].toString(),
              "[RedzoneOverlapsBuffer] rzclash inst 1: redzone [8, 72) "
              "overlaps buffer #0 [0, 16)");
}

// ---------------------------------------------------------------------
// applyScheme() rejects contract-violating programs
// ---------------------------------------------------------------------

using ApplySchemeContractDeath = ::testing::Test;

TEST(ApplySchemeContractDeath, RejectsBranchIntoExit)
{
    FuncBuilder b("main");
    b.branch(Opcode::Beq, r1, isa::regZero, 1);
    b.halt();
    isa::Program prog = solo(std::move(b));
    auto scheme = runtime::SchemeConfig::asanFull();
    EXPECT_EXIT(runtime::applyScheme(prog, scheme),
                ::testing::ExitedWithCode(1), "BranchIntoExit");
}

TEST(ApplySchemeContractDeath, RejectsMultipleExits)
{
    FuncBuilder b("main");
    b.ret();
    b.halt();
    isa::Program prog = solo(std::move(b));
    auto scheme = runtime::SchemeConfig::plain();
    EXPECT_EXIT(runtime::applyScheme(prog, scheme),
                ::testing::ExitedWithCode(1), "MultipleExits");
}

TEST(ApplySchemeContractDeath, RejectsWildBranch)
{
    FuncBuilder b("main");
    b.jmp(42);
    b.halt();
    isa::Program prog = solo(std::move(b));
    auto scheme = runtime::SchemeConfig::restFull();
    EXPECT_EXIT(runtime::applyScheme(prog, scheme),
                ::testing::ExitedWithCode(1),
                "BranchTargetOutOfRange");
}

// ---------------------------------------------------------------------
// Instrumented generator output verifies cleanly under every scheme
// ---------------------------------------------------------------------

namespace
{

struct SchemeCase
{
    const char *label;
    runtime::SchemeConfig scheme;
};

std::vector<SchemeCase>
allSchemes()
{
    auto elide = runtime::SchemeConfig::asanFull();
    elide.elideRedundantChecks = true;
    return {{"plain", runtime::SchemeConfig::plain()},
            {"asan", runtime::SchemeConfig::asanFull()},
            {"asan+elide", elide},
            {"rest", runtime::SchemeConfig::restFull()},
            {"rest-heap", runtime::SchemeConfig::restHeap()}};
}

void
expectVerifies(isa::Program prog, const SchemeCase &sc,
               const std::string &what)
{
    auto scheme = sc.scheme;
    runtime::applyScheme(prog, scheme);
    VerifyOptions opts;
    opts.expectAsanChecks = scheme.asanAccessChecks;
    opts.expectArming = scheme.restStackArming;
    auto diags = verify(prog, opts);
    EXPECT_TRUE(diags.empty())
        << sc.label << " on " << what << ":\n"
        << formatDiagnostics(diags);
}

} // namespace

TEST(VerifyInstrumented, GeneratedProgramsPassAllSchemes)
{
    for (const char *name : {"bzip2", "hmmer", "gobmk", "gcc",
                             "xalancbmk"}) {
        workload::BenchProfile profile = workload::profileByName(name);
        profile.targetKiloInsts = 50;
        for (const SchemeCase &sc : allSchemes())
            expectVerifies(workload::generate(profile), sc, name);
    }
}

TEST(VerifyInstrumented, AttackProgramsPassAllSchemes)
{
    for (const SchemeCase &sc : allSchemes()) {
        expectVerifies(workload::attacks::heartbleed(64, 256), sc,
                       "heartbleed");
        expectVerifies(workload::attacks::useAfterFree(128), sc, "uaf");
        expectVerifies(workload::attacks::stackOverflowWrite(16, 32),
                       sc, "stack-overflow");
        expectVerifies(workload::attacks::bruteForceDisarm(), sc,
                       "brute-force-disarm");
    }
}

} // namespace rest::analysis
