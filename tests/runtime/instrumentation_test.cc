#include <gtest/gtest.h>

#include "isa/program.hh"
#include "runtime/instrumentation.hh"

namespace rest::runtime
{

namespace
{

/** A function with one vulnerable buffer, a loop, and buffer refs. */
isa::Program
sampleProgram()
{
    isa::Program prog;
    isa::FuncBuilder b("main");
    int buf = b.stackBuf(16, true);
    b.movImm(1, 10);
    b.leaBuf(2, buf);
    int loop = b.here();
    b.store(1, 2, 0, 8);
    b.load(3, 2, 8, 8);
    b.addI(1, 1, -1);
    b.branch(isa::Opcode::Bne, 1, isa::regZero, loop);
    b.halt();
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

unsigned
countOp(const isa::Function &fn, isa::Opcode op)
{
    unsigned n = 0;
    for (auto &inst : fn.insts)
        n += (inst.op == op);
    return n;
}

} // namespace

TEST(Instrumentation, PlainLayoutPacksBuffers)
{
    isa::Program prog = sampleProgram();
    auto sum = applyScheme(prog, SchemeConfig::plain());
    EXPECT_EQ(sum.armsInserted, 0u);
    EXPECT_EQ(sum.accessChecksInserted, 0u);
    EXPECT_EQ(sum.stackPoisonStores, 0u);
    EXPECT_EQ(prog.funcs[0].bufs[0].offset, 0);
    EXPECT_GT(prog.funcs[0].frameSize, 0);
    EXPECT_EQ(prog.funcs[0].frameSize % 64, 0);
}

TEST(Instrumentation, RestLayoutBracketsBuffer)
{
    isa::Program prog = sampleProgram();
    auto sum = applyScheme(prog, SchemeConfig::restFull(), 64);
    // One buffer: two redzones, one granule each.
    EXPECT_EQ(sum.armsInserted, 2u);
    EXPECT_EQ(sum.disarmsInserted, 2u);
    // Buffer sits one granule in (Fig. 6 layout).
    EXPECT_EQ(prog.funcs[0].bufs[0].offset, 64);
    EXPECT_EQ(countOp(prog.funcs[0], isa::Opcode::Arm), 2u);
    EXPECT_EQ(countOp(prog.funcs[0], isa::Opcode::Disarm), 2u);
}

TEST(Instrumentation, RestLayoutScalesWithWidth)
{
    for (unsigned g : {16u, 32u, 64u}) {
        isa::Program prog = sampleProgram();
        applyScheme(prog, SchemeConfig::restFull(), g);
        EXPECT_EQ(prog.funcs[0].bufs[0].offset,
                  static_cast<std::int64_t>(g));
        EXPECT_EQ(prog.funcs[0].frameSize % 64, 0) << g;
    }
}

TEST(Instrumentation, AsanLayoutPoisonsRedzones)
{
    isa::Program prog = sampleProgram();
    auto sum = applyScheme(prog, SchemeConfig::asanFull());
    EXPECT_GT(sum.stackPoisonStores, 0u);
    EXPECT_GT(sum.accessChecksInserted, 0u);
    EXPECT_EQ(prog.funcs[0].bufs[0].offset, 32); // after left rz
}

TEST(Instrumentation, AsanChecksEveryProgramAccess)
{
    isa::Program prog = sampleProgram();
    auto sum = applyScheme(prog, SchemeConfig::asanFull());
    // The sample has one load and one store.
    EXPECT_EQ(sum.accessChecksInserted, 2u);
    EXPECT_EQ(countOp(prog.funcs[0], isa::Opcode::AsanCheck), 2u);
}

TEST(Instrumentation, BranchTargetsRemappedCorrectly)
{
    isa::Program prog = sampleProgram();
    applyScheme(prog, SchemeConfig::asanFull());
    const auto &fn = prog.funcs[0];
    // Find the backward branch; its target must point at the start of
    // the (instrumented) loop body: the check sequence before the
    // store.
    int branch_idx = -1;
    for (std::size_t i = 0; i < fn.insts.size(); ++i) {
        if (fn.insts[i].op == isa::Opcode::Bne)
            branch_idx = static_cast<int>(i);
    }
    ASSERT_GE(branch_idx, 0);
    int tgt = fn.insts[branch_idx].target;
    ASSERT_GE(tgt, 0);
    ASSERT_LT(tgt, branch_idx);
    // The loop body (at the remapped target) starts with the inserted
    // shadow-address computation, not the original store.
    EXPECT_EQ(fn.insts[tgt].op, isa::Opcode::AddI);
    EXPECT_EQ(fn.insts[tgt].tag, isa::OpSource::AccessCheck);
}

TEST(Instrumentation, SymbolicBufferRefsResolved)
{
    isa::Program prog = sampleProgram();
    applyScheme(prog, SchemeConfig::restFull(), 64);
    for (auto &inst : prog.funcs[0].insts)
        EXPECT_EQ(inst.bufId, -1);
}

TEST(Instrumentation, PrologueSetsUpFrame)
{
    isa::Program prog = sampleProgram();
    applyScheme(prog, SchemeConfig::plain());
    const auto &fn = prog.funcs[0];
    EXPECT_EQ(fn.insts[0].op, isa::Opcode::AddI);
    EXPECT_EQ(fn.insts[0].rd, isa::regSp);
    EXPECT_EQ(fn.insts[0].imm, -fn.frameSize);
    EXPECT_EQ(fn.insts[1].op, isa::Opcode::Mov);
    EXPECT_EQ(fn.insts[1].rd, isa::regFp);
}

TEST(Instrumentation, EpilogueRestoresStackBeforeExit)
{
    isa::Program prog = sampleProgram();
    applyScheme(prog, SchemeConfig::restFull(), 64);
    const auto &fn = prog.funcs[0];
    ASSERT_GE(fn.insts.size(), 2u);
    const auto &last = fn.insts.back();
    const auto &sp_restore = fn.insts[fn.insts.size() - 2];
    EXPECT_EQ(last.op, isa::Opcode::Halt);
    EXPECT_EQ(sp_restore.op, isa::Opcode::AddI);
    EXPECT_EQ(sp_restore.rd, isa::regSp);
    EXPECT_EQ(sp_restore.imm, fn.frameSize);
}

TEST(Instrumentation, HeapOnlySchemeLeavesCodeUntouched)
{
    isa::Program prog = sampleProgram();
    std::size_t before = prog.funcs[0].insts.size();
    auto sum = applyScheme(prog, SchemeConfig::restHeap(), 64);
    EXPECT_EQ(sum.armsInserted, 0u);
    EXPECT_EQ(sum.accessChecksInserted, 0u);
    // Only the frame prologue/epilogue wrapper is added.
    EXPECT_EQ(prog.funcs[0].insts.size(), before + 3);
}

TEST(Instrumentation, NonVulnerableBuffersGetNoRedzones)
{
    isa::Program prog;
    isa::FuncBuilder b("f");
    b.stackBuf(32, /*vulnerable=*/false);
    b.halt();
    prog.funcs.push_back(std::move(b).take());
    auto sum = applyScheme(prog, SchemeConfig::restFull(), 64);
    EXPECT_EQ(sum.armsInserted, 0u);
    EXPECT_EQ(prog.funcs[0].bufs[0].offset, 0);
}

TEST(Instrumentation, RestRedzoneOffsetsHelper)
{
    isa::Program prog = sampleProgram();
    auto offsets = restRedzoneOffsets(prog.funcs[0], 64);
    ASSERT_EQ(offsets.size(), 2u);
    EXPECT_EQ(offsets[0], 0);
    EXPECT_EQ(offsets[1], 128); // rz + alignUp(16, 64)
}

} // namespace rest::runtime
