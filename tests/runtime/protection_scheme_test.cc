/**
 * The ProtectionScheme registry: lookup, per-backend contracts, and
 * the scheme-spec parser the bench harnesses compose over.
 */

#include <gtest/gtest.h>

#include "core/rest_engine.hh"
#include "runtime/protection_scheme.hh"
#include "util/random.hh"

namespace rest::runtime
{

TEST(ProtectionSchemeRegistry, AllSchemesRegisteredInOrder)
{
    const auto &all = allSchemes();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_STREQ(all[0]->id(), "plain");
    EXPECT_STREQ(all[1]->id(), "asan");
    EXPECT_STREQ(all[2]->id(), "rest");
    EXPECT_STREQ(all[3]->id(), "mte");
    EXPECT_STREQ(all[4]->id(), "pauth");
}

TEST(ProtectionSchemeRegistry, FindByName)
{
    for (const ProtectionScheme *ps : allSchemes())
        EXPECT_EQ(findScheme(ps->id()), ps);
    EXPECT_EQ(findScheme("hardbound"), nullptr);
    EXPECT_EQ(findScheme(""), nullptr);
}

TEST(ProtectionSchemeRegistry, SchemeForConfigRoundTrips)
{
    for (const ProtectionScheme *ps : allSchemes())
        EXPECT_EQ(&schemeForConfig(ps->baseConfig()), ps)
            << ps->id();
}

TEST(ProtectionSchemeRegistry, DescriptionsAreNonEmpty)
{
    for (const ProtectionScheme *ps : allSchemes())
        EXPECT_NE(std::string(ps->description()), "") << ps->id();
}

TEST(ProtectionSchemeRegistry, InstantiateProvidesAllocator)
{
    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    Xoshiro256ss rng(7);
    tcr.writePrivileged(
        core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
        core::RestMode::Secure);
    core::RestEngine engine(tcr);

    for (const ProtectionScheme *ps : allSchemes()) {
        SchemeConfig cfg = ps->baseConfig();
        SchemeParts parts =
            ps->instantiate({memory, engine, cfg, 0xc0ffee});
        ASSERT_NE(parts.allocator, nullptr) << ps->id();
        EXPECT_NE(std::string(parts.allocator->name()), "");
        // Only the pointer-tagging backends install a policy, and it
        // must alias the allocator object (shared tag state).
        const bool tagging = std::string(ps->id()) == "mte" ||
                             std::string(ps->id()) == "pauth";
        EXPECT_EQ(parts.policy != nullptr, tagging) << ps->id();
        if (parts.policy) {
            EXPECT_EQ(dynamic_cast<const Allocator *>(parts.policy),
                      parts.allocator.get());
        }
    }
}

TEST(ProtectionSchemeRegistry, HardwareCostsAreDeclared)
{
    for (const ProtectionScheme *ps : allSchemes()) {
        HardwareCost cost = ps->hardwareCost();
        EXPECT_FALSE(cost.summary.empty()) << ps->id();
        EXPECT_GE(cost.metadataBitsPerDataByte, 0.0) << ps->id();
    }
    // MTE's 4 bits per 16 bytes dwarf REST's 1 bit per 64 bytes.
    EXPECT_GT(findScheme("mte")->hardwareCost().metadataBitsPerDataByte,
              findScheme("rest")->hardwareCost()
                  .metadataBitsPerDataByte);
    // Only ASan keeps metadata in the program's own address space;
    // REST/MTE metadata is cache tags / out-of-band tag storage.
    for (const ProtectionScheme *ps : allSchemes())
        EXPECT_EQ(ps->hardwareCost().usesShadowSpace,
                  std::string(ps->id()) == "asan")
            << ps->id();
}

TEST(ParseSchemeSpec, BareIds)
{
    SchemeConfig cfg;
    std::string err;
    ASSERT_TRUE(parseSchemeSpec("rest", cfg, err)) << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Rest);
    ASSERT_TRUE(parseSchemeSpec("mte", cfg, err)) << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Mte);
    ASSERT_TRUE(parseSchemeSpec("pauth", cfg, err)) << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Pauth);
    ASSERT_TRUE(parseSchemeSpec("plain", cfg, err)) << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Libc);
}

TEST(ParseSchemeSpec, AsanSuffixesCompose)
{
    SchemeConfig cfg;
    std::string err;
    ASSERT_TRUE(parseSchemeSpec("asan+elide+hoist+coalesce", cfg, err))
        << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Asan);
    EXPECT_TRUE(cfg.elideRedundantChecks);
    EXPECT_TRUE(cfg.hoistLoopChecks);
    EXPECT_TRUE(cfg.coalesceChecks);

    ASSERT_TRUE(parseSchemeSpec("asan+hoist", cfg, err)) << err;
    EXPECT_TRUE(cfg.hoistLoopChecks);
    EXPECT_FALSE(cfg.elideRedundantChecks);
    EXPECT_FALSE(cfg.coalesceChecks);
}

TEST(ParseSchemeSpec, LegacyAsanElideAlias)
{
    SchemeConfig cfg;
    std::string err;
    ASSERT_TRUE(parseSchemeSpec("asan-elide", cfg, err)) << err;
    EXPECT_EQ(cfg.allocator, AllocatorKind::Asan);
    EXPECT_TRUE(cfg.elideRedundantChecks);
}

TEST(ParseSchemeSpec, Errors)
{
    SchemeConfig cfg;
    std::string err;
    EXPECT_FALSE(parseSchemeSpec("softbound", cfg, err));
    EXPECT_NE(err.find("unknown scheme"), std::string::npos);

    err.clear();
    EXPECT_FALSE(parseSchemeSpec("asan+vectorize", cfg, err));
    EXPECT_NE(err.find("unknown scheme suffix"), std::string::npos);

    // Suffixes require compiled-in access checks.
    err.clear();
    EXPECT_FALSE(parseSchemeSpec("rest+elide", cfg, err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(parseSchemeSpec("mte+hoist", cfg, err));
    EXPECT_FALSE(err.empty());
}

} // namespace rest::runtime
