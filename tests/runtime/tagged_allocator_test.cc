/**
 * Unit tests for the pointer-tagging allocator models: MTE granule
 * tags and pauth signatures, at the allocator/policy level (no
 * system, no timing).
 */

#include <gtest/gtest.h>

#include "runtime/mte_allocator.hh"
#include "runtime/pauth_allocator.hh"

namespace rest::runtime
{

namespace
{

class TaggedAllocTest : public ::testing::Test
{
  protected:
    OpEmitter
    emitter()
    {
        q.clear();
        return OpEmitter(q, AddressMap::runtimeTextBase, false);
    }

    /** Fault marked on any op emitted by the last call? */
    isa::FaultKind
    emittedFault() const
    {
        for (const auto &op : q)
            if (op.fault != isa::FaultKind::None)
                return op.fault;
        return isa::FaultKind::None;
    }

    mem::GuestMemory memory;
    isa::OpQueue q;
};

} // namespace

TEST_F(TaggedAllocTest, MtePointersCarryNonZeroTags)
{
    MteAllocator alloc(memory, 42);
    auto em = emitter();
    Addr p = alloc.malloc(64, em);
    EXPECT_NE(MteAllocator::pointerTag(p), 0u);
    // The canonical payload is tagged to match the pointer.
    EXPECT_EQ(alloc.checkAccess(p, 8), isa::FaultKind::None);
    EXPECT_EQ(alloc.canonical(p), p & MteAllocator::addrMask);
    EXPECT_EQ(alloc.allocationSize(p), 64u);
}

TEST_F(TaggedAllocTest, MteAdjacentAllocationsDifferInTag)
{
    MteAllocator alloc(memory, 42);
    auto em = emitter();
    Addr a = alloc.malloc(64, em);
    Addr b = alloc.malloc(64, em);
    // Left-neighbour exclusion: a's tag never equals b's, so the
    // first out-of-bounds granule always mismatches.
    EXPECT_NE(MteAllocator::pointerTag(a), MteAllocator::pointerTag(b));
    EXPECT_NE(alloc.checkAccess(a + 64, 8), isa::FaultKind::None);
}

TEST_F(TaggedAllocTest, MteFreeRetagsAndCatchesDoubleFree)
{
    MteAllocator alloc(memory, 7);
    auto em = emitter();
    Addr p = alloc.malloc(32, em);
    alloc.free(p, em);
    // Dangling access: the granule was re-randomised away from p's
    // tag.
    EXPECT_EQ(alloc.checkAccess(p, 8),
              isa::FaultKind::MteTagMismatch);
    // Double free faults through the emitted op stream.
    auto em2 = emitter();
    alloc.free(p, em2);
    EXPECT_EQ(emittedFault(), isa::FaultKind::MteTagMismatch);
}

TEST_F(TaggedAllocTest, MteUntaggedRegionsPassUntaggedPointers)
{
    MteAllocator alloc(memory, 7);
    // Stack/global addresses carry tag 0 and were never coloured.
    EXPECT_EQ(alloc.checkAccess(AddressMap::stackTop - 64, 8),
              isa::FaultKind::None);
    EXPECT_EQ(alloc.checkAccess(AddressMap::globalsBase, 8),
              isa::FaultKind::None);
}

TEST_F(TaggedAllocTest, PauthPointersCarryUniqueSignatures)
{
    PauthAllocator alloc(memory, 99);
    auto em = emitter();
    Addr a = alloc.malloc(64, em);
    Addr b = alloc.malloc(64, em);
    EXPECT_NE(PauthAllocator::pointerPac(a), 0u);
    EXPECT_NE(PauthAllocator::pointerPac(b), 0u);
    EXPECT_NE(PauthAllocator::pointerPac(a),
              PauthAllocator::pointerPac(b));
    EXPECT_EQ(alloc.liveSignatures(), 2u);
    EXPECT_EQ(alloc.checkAccess(a, 8), isa::FaultKind::None);
    EXPECT_EQ(alloc.allocationSize(a), 64u);
}

TEST_F(TaggedAllocTest, PauthStrippedPointerIntoHeapFails)
{
    PauthAllocator alloc(memory, 99);
    auto em = emitter();
    Addr a = alloc.malloc(64, em);
    const Addr raw = a & ((Addr(1) << 48) - 1);
    EXPECT_EQ(alloc.checkAccess(raw, 8),
              isa::FaultKind::PauthCheckFailed);
    // Unsigned pointers outside heap data (stack) stay valid.
    EXPECT_EQ(alloc.checkAccess(AddressMap::stackTop - 64, 8),
              isa::FaultKind::None);
}

TEST_F(TaggedAllocTest, PauthFreeRevokesForever)
{
    PauthAllocator alloc(memory, 5);
    auto em = emitter();
    Addr a = alloc.malloc(48, em);
    alloc.free(a, em);
    EXPECT_EQ(alloc.liveSignatures(), 0u);
    EXPECT_EQ(alloc.checkAccess(a, 8),
              isa::FaultKind::PauthCheckFailed);

    // Recycle the chunk: the new pointer has a fresh signature, the
    // stale one still fails.
    auto em2 = emitter();
    Addr b = alloc.malloc(48, em2);
    EXPECT_EQ(b & ((Addr(1) << 48) - 1), a & ((Addr(1) << 48) - 1));
    EXPECT_NE(PauthAllocator::pointerPac(b),
              PauthAllocator::pointerPac(a));
    EXPECT_EQ(alloc.checkAccess(b, 8), isa::FaultKind::None);
    EXPECT_EQ(alloc.checkAccess(a, 8),
              isa::FaultKind::PauthCheckFailed);
}

TEST_F(TaggedAllocTest, PauthDoubleFreeFaults)
{
    PauthAllocator alloc(memory, 5);
    auto em = emitter();
    Addr a = alloc.malloc(48, em);
    alloc.free(a, em);
    auto em2 = emitter();
    alloc.free(a, em2);
    EXPECT_EQ(emittedFault(), isa::FaultKind::PauthCheckFailed);
}

} // namespace rest::runtime
