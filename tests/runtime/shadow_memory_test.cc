#include <gtest/gtest.h>


#include "runtime/shadow_memory.hh"

namespace rest::runtime
{

class ShadowMemoryTest : public ::testing::Test
{
  protected:
    mem::GuestMemory memory;
    ShadowMemory shadow{memory};
};

TEST_F(ShadowMemoryTest, MappingFunction)
{
    EXPECT_EQ(ShadowMemory::shadowOf(0), AddressMap::shadowBase);
    EXPECT_EQ(ShadowMemory::shadowOf(8), AddressMap::shadowBase + 1);
    EXPECT_EQ(ShadowMemory::shadowOf(0x20000000),
              AddressMap::shadowBase + 0x4000000);
}

TEST_F(ShadowMemoryTest, FreshMemoryIsAddressable)
{
    EXPECT_TRUE(shadow.accessOk(0x1000, 8));
    EXPECT_TRUE(shadow.accessOk(0x1000, 1));
}

TEST_F(ShadowMemoryTest, PoisonBlocksAccess)
{
    shadow.poison(0x1000, 64, shadow_poison::heapLeftRz);
    EXPECT_FALSE(shadow.accessOk(0x1000, 8));
    EXPECT_FALSE(shadow.accessOk(0x1020, 1));
    EXPECT_TRUE(shadow.accessOk(0x1040, 8)); // past the redzone
    EXPECT_EQ(shadow.shadowByte(0x1000), shadow_poison::heapLeftRz);
}

TEST_F(ShadowMemoryTest, UnpoisonRestoresAccess)
{
    shadow.poison(0x2000, 64, shadow_poison::heapFreed);
    shadow.unpoison(0x2000, 64);
    EXPECT_TRUE(shadow.accessOk(0x2000, 8));
    EXPECT_TRUE(shadow.accessOk(0x203f, 1));
}

TEST_F(ShadowMemoryTest, PartialGranuleSemantics)
{
    // Unpoison 12 bytes: granule 0 fully addressable, granule 1 has
    // only 4 valid bytes.
    shadow.poison(0x3000, 16, shadow_poison::heapRightRz);
    shadow.unpoison(0x3000, 12);
    EXPECT_TRUE(shadow.accessOk(0x3000, 8));
    EXPECT_TRUE(shadow.accessOk(0x3008, 4));  // within partial granule
    EXPECT_TRUE(shadow.accessOk(0x300b, 1));  // last valid byte
    EXPECT_FALSE(shadow.accessOk(0x300c, 1)); // first invalid byte
    EXPECT_FALSE(shadow.accessOk(0x3008, 8)); // spills past 12
    EXPECT_EQ(shadow.shadowByte(0x3008), 4u);
}

TEST_F(ShadowMemoryTest, StraddlingAccessChecksBothGranules)
{
    shadow.poison(0x4008, 8, shadow_poison::stackMidRz);
    EXPECT_TRUE(shadow.accessOk(0x4000, 8));
    EXPECT_FALSE(shadow.accessOk(0x4004, 8)); // straddles into poison
}

TEST_F(ShadowMemoryTest, EmitterCountsPoisonStores)
{
    isa::OpQueue q;
    OpEmitter em(q, 0x600000, false);
    // 64 application bytes = 8 shadow bytes = one 8-byte store.
    shadow.poison(0x5000, 64, shadow_poison::heapLeftRz, &em);
    unsigned stores = 0;
    for (auto &op : q)
        stores += op.isStore();
    EXPECT_EQ(stores, 1u);
}

TEST_F(ShadowMemoryTest, LargeRangeUsesWideStores)
{
    isa::OpQueue q;
    OpEmitter em(q, 0x600000, false);
    // 64 KiB app = 8 KiB shadow >= 128: vectorized path, one store
    // per 64 shadow bytes = 128 stores.
    shadow.poison(0x10000, 64 * 1024, shadow_poison::heapFreed, &em);
    unsigned stores = 0;
    for (auto &op : q)
        stores += op.isStore();
    EXPECT_EQ(stores, 128u);
}

TEST_F(ShadowMemoryTest, StackPoisonValuesDistinct)
{
    shadow.poison(0x6000, 32, shadow_poison::stackLeftRz);
    shadow.poison(0x6020, 32, shadow_poison::stackRightRz);
    EXPECT_EQ(shadow.shadowByte(0x6000), 0xf1u);
    EXPECT_EQ(shadow.shadowByte(0x6020), 0xf3u);
}

} // namespace rest::runtime
