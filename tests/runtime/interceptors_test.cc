#include <gtest/gtest.h>


#include "core/rest_engine.hh"
#include "runtime/interceptors.hh"
#include "runtime/shadow_memory.hh"
#include "util/random.hh"

namespace rest::runtime
{

class InterceptorsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(55);
        tcr.writePrivileged(
            core::TokenValue::generate(rng,
                                       core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        engine = std::make_unique<core::RestEngine>(tcr);
    }

    Interceptors
    make(const SchemeConfig &scheme)
    {
        scheme_ = scheme;
        return Interceptors(memory, *engine, scheme_);
    }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<core::RestEngine> engine;
    SchemeConfig scheme_;
    isa::OpQueue q;
};

TEST_F(InterceptorsTest, MemcpyCopiesBytes)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    memory.fill(0x1000, 0xab, 100);
    auto res = icp.memcpy(0x2000, 0x1000, 100, em);
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.bytesDone, 100u);
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_EQ(memory.readByte(0x2000 + i), 0xabu);
}

TEST_F(InterceptorsTest, MemcpyEmitsCopyLoopOps)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    icp.memcpy(0x2000, 0x1000, 256, em);
    unsigned loads = 0, stores = 0;
    for (auto &op : q) {
        loads += op.isLoad();
        stores += op.isStore();
    }
    EXPECT_EQ(loads, 32u);  // 256 / 8
    EXPECT_EQ(stores, 32u);
}

TEST_F(InterceptorsTest, MemsetFillsBytes)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    auto res = icp.memset(0x3000, 0x5a, 77, em);
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.bytesDone, 77u);
    for (unsigned i = 0; i < 77; ++i)
        EXPECT_EQ(memory.readByte(0x3000 + i), 0x5au);
    EXPECT_EQ(memory.readByte(0x3000 + 77), 0u);
}

TEST_F(InterceptorsTest, RestTokenStopsMemcpyMidStream)
{
    // Arm a granule 128 bytes into the source: the copy must stop
    // right there, like the Heartbleed over-read of Fig. 1.
    auto icp = make(SchemeConfig::restHeap());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    engine->arm(0x1080);
    memory.fill(0x1000, 0x11, 128);
    auto res = icp.memcpy(0x2000, 0x1000, 256, em);
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(res.bytesDone, 128u); // stopped at the token
    EXPECT_EQ(q.back().fault, isa::FaultKind::RestTokenAccess);
    // Nothing beyond the redzone leaked into the destination.
    EXPECT_EQ(memory.readByte(0x2000 + 127), 0x11u);
    EXPECT_EQ(memory.readByte(0x2000 + 128), 0u);
}

TEST_F(InterceptorsTest, RestTokenStopsMemsetOnDestination)
{
    auto icp = make(SchemeConfig::restHeap());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    engine->arm(0x3040);
    auto res = icp.memset(0x3000, 0xff, 128, em);
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(res.bytesDone, 64u);
}

TEST_F(InterceptorsTest, AsanInterceptChecksRangeUpFront)
{
    SchemeConfig scheme = SchemeConfig::asanFull();
    auto icp = make(scheme);
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    // Poison a byte inside the source range.
    ShadowMemory shadow(memory);
    shadow.poison(0x1080, 8, shadow_poison::heapRightRz);
    auto res = icp.memcpy(0x2000, 0x1000, 256, em);
    EXPECT_TRUE(res.faulted);
    // The range check fires before any byte is copied.
    EXPECT_EQ(res.bytesDone, 0u);
    bool saw_asan_fault = false;
    for (auto &op : q)
        saw_asan_fault |= (op.fault == isa::FaultKind::AsanReport);
    EXPECT_TRUE(saw_asan_fault);
}

TEST_F(InterceptorsTest, AsanInterceptEmitsCheckOps)
{
    auto icp = make(SchemeConfig::asanFull());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    icp.memcpy(0x2000, 0x1000, 256, em);
    unsigned interceptor_ops = 0;
    for (auto &op : q)
        interceptor_ops +=
            (op.source == isa::OpSource::Interceptor);
    // 4 shadow loads + compares per range (256B / 64), two ranges,
    // plus preamble.
    EXPECT_GE(interceptor_ops, 16u);
}

TEST_F(InterceptorsTest, PlainSchemeEmitsNoInterceptorOps)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    icp.memcpy(0x2000, 0x1000, 256, em);
    for (auto &op : q)
        EXPECT_NE(op.source, isa::OpSource::Interceptor);
}

TEST_F(InterceptorsTest, PerfectHwIgnoresTokens)
{
    auto icp = make(SchemeConfig::restHeap());
    OpEmitter em(q, AddressMap::interceptTextBase, /*perfect=*/true);
    engine->arm(0x1080);
    auto res = icp.memcpy(0x2000, 0x1000, 256, em);
    EXPECT_FALSE(res.faulted);
    EXPECT_EQ(res.bytesDone, 256u);
}

TEST_F(InterceptorsTest, StrcpyCopiesThroughNul)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    memory.fill(0x1000, 'A', 13); // NUL at +13 (fresh memory)
    auto res = icp.strcpy(0x2000, 0x1000, em);
    EXPECT_FALSE(res.faulted);
    EXPECT_GE(res.bytesDone, 14u); // string + NUL
    for (unsigned i = 0; i < 13; ++i)
        EXPECT_EQ(memory.readByte(0x2000 + i), 'A');
    EXPECT_EQ(memory.readByte(0x2000 + 13), 0u);
}

TEST_F(InterceptorsTest, StrcpyStopsAtDestinationToken)
{
    auto icp = make(SchemeConfig::restHeap());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    memory.fill(0x1000, 'B', 100); // long string
    engine->arm(0x2040);           // redzone 64 bytes into dst
    auto res = icp.strcpy(0x2000, 0x1000, em);
    EXPECT_TRUE(res.faulted);
    EXPECT_LE(res.bytesDone, 64u);
    EXPECT_EQ(q.back().fault, isa::FaultKind::RestTokenAccess);
}

TEST_F(InterceptorsTest, AsanStrcpyChecksBeforeCopying)
{
    auto icp = make(SchemeConfig::asanFull());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    memory.fill(0x1000, 'C', 100);
    ShadowMemory shadow(memory);
    shadow.poison(0x2040, 8, shadow_poison::heapRightRz);
    auto res = icp.strcpy(0x2000, 0x1000, em);
    EXPECT_TRUE(res.faulted);
    EXPECT_EQ(res.bytesDone, 0u); // nothing copied
}

TEST_F(InterceptorsTest, ShortAndUnalignedLengths)
{
    auto icp = make(SchemeConfig::plain());
    OpEmitter em(q, AddressMap::interceptTextBase, false);
    memory.fill(0x1000, 0x77, 13);
    auto res = icp.memcpy(0x2000, 0x1000, 13, em);
    EXPECT_EQ(res.bytesDone, 13u);
    EXPECT_EQ(memory.readByte(0x2000 + 12), 0x77u);
    EXPECT_EQ(memory.readByte(0x2000 + 13), 0u);
}

} // namespace rest::runtime
