#include <gtest/gtest.h>

#include "runtime/quarantine.hh"

namespace rest::runtime
{

namespace
{

Chunk
chunk(Addr payload, std::size_t bytes)
{
    Chunk c;
    c.base = payload - 16;
    c.payload = payload;
    c.size = bytes - 32;
    c.chunkBytes = bytes;
    return c;
}

} // namespace

TEST(Quarantine, FifoOrder)
{
    Quarantine q(1000);
    q.push(chunk(0x1000, 100));
    q.push(chunk(0x2000, 100));
    q.push(chunk(0x3000, 100));
    EXPECT_EQ(q.pop()->payload, 0x1000u);
    EXPECT_EQ(q.pop()->payload, 0x2000u);
    EXPECT_EQ(q.pop()->payload, 0x3000u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(Quarantine, BudgetAccounting)
{
    Quarantine q(250);
    q.push(chunk(0x1000, 100));
    EXPECT_FALSE(q.overBudget());
    q.push(chunk(0x2000, 100));
    EXPECT_FALSE(q.overBudget());
    q.push(chunk(0x3000, 100));
    EXPECT_TRUE(q.overBudget());
    EXPECT_EQ(q.bytes(), 300u);
    q.pop();
    EXPECT_FALSE(q.overBudget());
    EXPECT_EQ(q.bytes(), 200u);
}

TEST(Quarantine, ContainsLookup)
{
    Quarantine q(1000);
    q.push(chunk(0x1000, 64));
    EXPECT_TRUE(q.contains(0x1000));
    EXPECT_FALSE(q.contains(0x2000));
    q.pop();
    EXPECT_FALSE(q.contains(0x1000));
}

TEST(Quarantine, ChunkCount)
{
    Quarantine q(1 << 20);
    for (int i = 0; i < 10; ++i)
        q.push(chunk(0x1000 + 0x100 * i, 64));
    EXPECT_EQ(q.chunks(), 10u);
    EXPECT_EQ(q.bytes(), 640u);
}

} // namespace rest::runtime
