#include <gtest/gtest.h>

#include "runtime/quarantine.hh"

namespace rest::runtime
{

namespace
{

Chunk
chunk(Addr payload, std::size_t bytes)
{
    Chunk c;
    c.base = payload - 16;
    c.payload = payload;
    c.size = bytes - 32;
    c.chunkBytes = bytes;
    return c;
}

} // namespace

TEST(Quarantine, FifoOrder)
{
    Quarantine q(1000);
    q.push(chunk(0x1000, 100));
    q.push(chunk(0x2000, 100));
    q.push(chunk(0x3000, 100));
    EXPECT_EQ(q.pop()->payload, 0x1000u);
    EXPECT_EQ(q.pop()->payload, 0x2000u);
    EXPECT_EQ(q.pop()->payload, 0x3000u);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(Quarantine, BudgetAccounting)
{
    Quarantine q(250);
    q.push(chunk(0x1000, 100));
    EXPECT_FALSE(q.overBudget());
    q.push(chunk(0x2000, 100));
    EXPECT_FALSE(q.overBudget());
    q.push(chunk(0x3000, 100));
    EXPECT_TRUE(q.overBudget());
    EXPECT_EQ(q.bytes(), 300u);
    q.pop();
    EXPECT_FALSE(q.overBudget());
    EXPECT_EQ(q.bytes(), 200u);
}

TEST(Quarantine, ContainsLookup)
{
    Quarantine q(1000);
    q.push(chunk(0x1000, 64));
    EXPECT_TRUE(q.contains(0x1000));
    EXPECT_FALSE(q.contains(0x2000));
    q.pop();
    EXPECT_FALSE(q.contains(0x1000));
}

TEST(Quarantine, ChunkCount)
{
    Quarantine q(1 << 20);
    for (int i = 0; i < 10; ++i)
        q.push(chunk(0x1000 + 0x100 * i, 64));
    EXPECT_EQ(q.chunks(), 10u);
    EXPECT_EQ(q.bytes(), 640u);
}

TEST(Quarantine, ContainsStaysInSyncAcrossPushPopCycles)
{
    // contains() is answered from a count map, not a FIFO scan; this
    // drives many push/pop cycles (including re-quarantining the same
    // payload) to check the map never drifts from the deque.
    Quarantine q(1 << 20);
    for (int cycle = 0; cycle < 5; ++cycle) {
        for (int i = 0; i < 32; ++i)
            q.push(chunk(0x1000 + 0x100 * i, 64));
        for (int i = 0; i < 32; ++i)
            EXPECT_TRUE(q.contains(0x1000 + 0x100 * i));
        // Drain half; drained addresses leave, the rest stay.
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(q.pop()->payload, Addr(0x1000 + 0x100 * i));
        for (int i = 0; i < 16; ++i)
            EXPECT_FALSE(q.contains(0x1000 + 0x100 * i));
        for (int i = 16; i < 32; ++i)
            EXPECT_TRUE(q.contains(0x1000 + 0x100 * i));
        // Drain the rest so the next cycle starts empty.
        while (q.pop())
            ;
        for (int i = 0; i < 32; ++i)
            EXPECT_FALSE(q.contains(0x1000 + 0x100 * i));
        EXPECT_EQ(q.chunks(), 0u);
        EXPECT_EQ(q.bytes(), 0u);
    }
}

TEST(Quarantine, DuplicatePayloadCountsAreTracked)
{
    // The same payload address can sit in quarantine twice (e.g. a
    // chunk recycled by the allocator and freed again while an alias
    // of the first free is still queued); contains() must hold until
    // the *last* copy drains.
    Quarantine q(1 << 20);
    q.push(chunk(0x5000, 64));
    q.push(chunk(0x5000, 64));
    EXPECT_TRUE(q.contains(0x5000));
    q.pop();
    EXPECT_TRUE(q.contains(0x5000));
    q.pop();
    EXPECT_FALSE(q.contains(0x5000));
}

} // namespace rest::runtime
