/**
 * @file
 * Host-threaded stress over the shared allocator service paths: the
 * multicore machine shares one allocator between every core, so the
 * malloc/free paths (free lists, quarantine, live map, tag/signature
 * tables, the REST engine's armed set) must tolerate concurrent
 * callers. Run under `ctest -L multicore` in the TSan CI job: a
 * missing lock shows up as a data-race report, not a flaky assert.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/rest_engine.hh"
#include "core/token.hh"
#include "mem/guest_memory.hh"
#include "runtime/mte_allocator.hh"
#include "runtime/pauth_allocator.hh"
#include "runtime/rest_allocator.hh"

namespace rest::runtime
{

namespace
{

constexpr unsigned numThreads = 4;
constexpr unsigned itersPerThread = 1500;

/** Hammer malloc/free from 'numThreads' host threads. */
void
stress(Allocator &alloc)
{
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < numThreads; ++t) {
        threads.emplace_back([&alloc, t] {
            // Each thread owns its op stream (like each emulator in
            // the multicore machine) and frees only what it
            // allocated; the allocator internals are the shared
            // state under test.
            isa::OpQueue queue;
            OpEmitter em(queue, AddressMap::runtimeTextBase, false);
            std::vector<Addr> mine;
            std::uint64_t lcg = 0x9e3779b97f4a7c15ull * (t + 1);
            for (unsigned i = 0; i < itersPerThread; ++i) {
                lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
                const std::size_t size = 16 + (lcg >> 33) % 497;
                mine.push_back(alloc.malloc(size, em));
                if (mine.size() > 8 || (lcg >> 60) < 8) {
                    alloc.free(mine.front(), em);
                    mine.erase(mine.begin());
                }
                queue.clear();
            }
            for (Addr a : mine)
                alloc.free(a, em);
        });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(alloc.liveAllocations(), 0u);
    EXPECT_EQ(alloc.heapState().mallocCalls,
              std::uint64_t(numThreads) * itersPerThread);
    EXPECT_EQ(alloc.heapState().freeCalls,
              std::uint64_t(numThreads) * itersPerThread);
}

} // namespace

TEST(AllocatorStress, RestAllocatorSurvivesConcurrentServiceCalls)
{
    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    Xoshiro256ss rng(7);
    tcr.writePrivileged(
        core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
        core::RestMode::Secure);
    core::RestEngine engine(tcr);
    // Zero quarantine budget: every free drains immediately, so the
    // disarm/recycle path — the raciest part of the allocator — runs
    // on every iteration of every thread.
    RestAllocator alloc(memory, engine, 0);
    stress(alloc);
    EXPECT_EQ(alloc.quarantine().chunks(), 0u);
}

TEST(AllocatorStress, MteAllocatorSurvivesConcurrentServiceCalls)
{
    mem::GuestMemory memory;
    MteAllocator alloc(memory, 11);
    stress(alloc);
}

TEST(AllocatorStress, PauthAllocatorSurvivesConcurrentServiceCalls)
{
    mem::GuestMemory memory;
    PauthAllocator alloc(memory, 13);
    stress(alloc);
    EXPECT_EQ(alloc.liveSignatures(), 0u);
}

} // namespace rest::runtime
