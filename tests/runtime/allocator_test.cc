/**
 * @file
 * Tests of all three allocators: the libc baseline, the ASan
 * allocator, and the REST allocator (paper §IV-A invariants).
 */

#include <gtest/gtest.h>


#include "core/rest_engine.hh"
#include "runtime/asan_allocator.hh"
#include "runtime/libc_allocator.hh"
#include "runtime/rest_allocator.hh"
#include "util/random.hh"

namespace rest::runtime
{

namespace
{

struct Emitted
{
    isa::OpQueue q;
    OpEmitter em{q, AddressMap::runtimeTextBase, false};

    unsigned
    count(isa::Opcode op)
    {
        unsigned n = 0;
        for (auto &o : q)
            n += (o.op == op);
        return n;
    }
};

} // namespace

// ---------------------------------------------------------------
// Libc baseline
// ---------------------------------------------------------------

TEST(LibcAllocator, MallocReturnsDistinctLiveChunks)
{
    mem::GuestMemory memory;
    LibcAllocator alloc(memory);
    Emitted e;
    Addr a = alloc.malloc(100, e.em);
    Addr b = alloc.malloc(100, e.em);
    EXPECT_NE(a, b);
    EXPECT_EQ(alloc.allocationSize(a), 100u);
    EXPECT_EQ(alloc.liveAllocations(), 2u);
}

TEST(LibcAllocator, ImmediateReuse)
{
    // The performance-first allocator reuses a freed chunk right away
    // (which is exactly why it has no temporal safety).
    mem::GuestMemory memory;
    LibcAllocator alloc(memory);
    Emitted e;
    Addr a = alloc.malloc(64, e.em);
    alloc.free(a, e.em);
    Addr b = alloc.malloc(64, e.em);
    EXPECT_EQ(a, b);
}

TEST(LibcAllocator, EmitsNoArms)
{
    mem::GuestMemory memory;
    LibcAllocator alloc(memory);
    Emitted e;
    Addr a = alloc.malloc(256, e.em);
    alloc.free(a, e.em);
    EXPECT_EQ(e.count(isa::Opcode::Arm), 0u);
    EXPECT_EQ(e.count(isa::Opcode::Disarm), 0u);
}

// ---------------------------------------------------------------
// ASan allocator
// ---------------------------------------------------------------

class AsanAllocatorTest : public ::testing::Test
{
  protected:
    mem::GuestMemory memory;
    AsanAllocator alloc{memory, 4096};
    Emitted e;
};

TEST_F(AsanAllocatorTest, RedzonesArePoisoned)
{
    Addr p = alloc.malloc(100, e.em);
    const ShadowMemory &sh = alloc.shadow();
    EXPECT_TRUE(sh.accessOk(p, 8));
    EXPECT_TRUE(sh.accessOk(p + 96, 4));
    EXPECT_FALSE(sh.accessOk(p - 1, 1));        // left redzone
    EXPECT_FALSE(sh.accessOk(p + 104, 1));      // right redzone
    EXPECT_FALSE(sh.accessOk(p + 100, 4));      // partial-tail spill
}

TEST_F(AsanAllocatorTest, RedzoneScalesWithSize)
{
    EXPECT_EQ(AsanAllocator::redzoneBytes(8), 16u);
    EXPECT_EQ(AsanAllocator::redzoneBytes(64), 16u);
    EXPECT_EQ(AsanAllocator::redzoneBytes(1024), 256u);
    EXPECT_EQ(AsanAllocator::redzoneBytes(1 << 20), 2048u);
}

TEST_F(AsanAllocatorTest, FreePoisonsAndQuarantines)
{
    Addr p = alloc.malloc(64, e.em);
    alloc.free(p, e.em);
    EXPECT_FALSE(alloc.shadow().accessOk(p, 8));
    EXPECT_TRUE(alloc.quarantine().contains(p));
    EXPECT_EQ(alloc.liveAllocations(), 0u);
}

TEST_F(AsanAllocatorTest, NoReuseWhileQuarantined)
{
    Addr p = alloc.malloc(64, e.em);
    alloc.free(p, e.em);
    Addr q = alloc.malloc(64, e.em);
    EXPECT_NE(p, q);
}

TEST_F(AsanAllocatorTest, QuarantineDrainsOverBudget)
{
    // Budget 4096: freeing ~40 chunks of ~200B must trigger drains.
    std::vector<Addr> ptrs;
    for (int i = 0; i < 40; ++i)
        ptrs.push_back(alloc.malloc(128, e.em));
    for (Addr p : ptrs)
        alloc.free(p, e.em);
    EXPECT_LE(alloc.quarantine().bytes(), 4096u);
    EXPECT_LT(alloc.quarantine().chunks(), 40u);
}

TEST_F(AsanAllocatorTest, DoubleFreeEmitsReport)
{
    Addr p = alloc.malloc(64, e.em);
    alloc.free(p, e.em);
    e.q.clear();
    alloc.free(p, e.em);
    bool saw_fault = false;
    for (auto &op : e.q)
        saw_fault |= (op.fault == isa::FaultKind::AsanReport);
    EXPECT_TRUE(saw_fault);
}

TEST_F(AsanAllocatorTest, MallocEmitsShadowStores)
{
    alloc.malloc(256, e.em);
    unsigned shadow_stores = 0;
    for (auto &op : e.q) {
        if (op.isStore() && op.eaddr >= AddressMap::shadowBase)
            ++shadow_stores;
    }
    EXPECT_GT(shadow_stores, 2u);
}

// ---------------------------------------------------------------
// REST allocator
// ---------------------------------------------------------------

class RestAllocatorTest
    : public ::testing::TestWithParam<core::TokenWidth>
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(77);
        tcr.writePrivileged(
            core::TokenValue::generate(rng, GetParam()),
            core::RestMode::Secure);
        engine = std::make_unique<core::RestEngine>(tcr);
        alloc = std::make_unique<RestAllocator>(memory, *engine, 4096);
    }

    unsigned g() const { return tcr.granule(); }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<core::RestEngine> engine;
    std::unique_ptr<RestAllocator> alloc;
    Emitted e;
};

TEST_P(RestAllocatorTest, RedzonesAreArmed)
{
    Addr p = alloc->malloc(100, e.em);
    // Payload clean.
    EXPECT_FALSE(engine->overlapsArmed(p, 100));
    // Both bookends armed (Fig. 6).
    EXPECT_TRUE(engine->overlapsArmed(p - 1, 1));
    EXPECT_TRUE(engine->overlapsArmed(p + alignUp(100, g()), 1));
}

TEST_P(RestAllocatorTest, TokenBytesActuallyInMemory)
{
    Addr p = alloc->malloc(64, e.em);
    std::vector<std::uint8_t> buf(g());
    memory.readBytes(p - g(), {buf.data(), buf.size()});
    EXPECT_TRUE(tcr.token().matches({buf.data(), buf.size()}));
}

TEST_P(RestAllocatorTest, PayloadIsAlignedToGranule)
{
    for (std::size_t size : {1u, 17u, 64u, 100u, 4000u}) {
        Addr p = alloc->malloc(size, e.em);
        EXPECT_TRUE(isAligned(p, g())) << "size " << size;
    }
}

TEST_P(RestAllocatorTest, FreeArmsPayloadAndQuarantines)
{
    Addr p = alloc->malloc(128, e.em);
    alloc->free(p, e.em);
    EXPECT_TRUE(engine->overlapsArmed(p, 8));
    EXPECT_TRUE(alloc->quarantine().contains(p));
}

TEST_P(RestAllocatorTest, DrainZeroesAndDisarms)
{
    // Small budget: push enough frees to force drains, then check the
    // zeroed-free-pool invariant (§IV-A).
    std::vector<Addr> ptrs;
    for (int i = 0; i < 50; ++i)
        ptrs.push_back(alloc->malloc(96, e.em));
    for (Addr p : ptrs)
        alloc->free(p, e.em);
    // The first freed chunk must have been drained by now.
    Addr first = ptrs.front();
    EXPECT_FALSE(alloc->quarantine().contains(first));
    EXPECT_FALSE(engine->overlapsArmed(first, 96));
    for (unsigned i = 0; i < 96; ++i)
        EXPECT_EQ(memory.readByte(first + i), 0u);
}

TEST_P(RestAllocatorTest, ReuseComesFromZeroedPool)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 60; ++i)
        ptrs.push_back(alloc->malloc(96, e.em));
    for (Addr p : ptrs)
        alloc->free(p, e.em);
    Addr q = alloc->malloc(96, e.em);
    // Reuses a drained chunk (same footprint class).
    bool reused = false;
    for (Addr p : ptrs)
        reused |= (p == q);
    EXPECT_TRUE(reused);
    // Payload is zeroed, redzones re-armed.
    for (unsigned i = 0; i < 96; ++i)
        EXPECT_EQ(memory.readByte(q + i), 0u);
    EXPECT_TRUE(engine->overlapsArmed(q - 1, 1));
}

TEST_P(RestAllocatorTest, MallocEmitsArms)
{
    alloc->malloc(64, e.em);
    EXPECT_GE(e.count(isa::Opcode::Arm), 2u); // both redzones
    EXPECT_EQ(e.count(isa::Opcode::Disarm), 0u);
}

TEST_P(RestAllocatorTest, PerfectHwEmitsStoresInstead)
{
    isa::OpQueue q;
    OpEmitter perfect(q, AddressMap::runtimeTextBase, true);
    alloc->malloc(64, perfect);
    unsigned arms = 0, stores = 0;
    for (auto &op : q) {
        arms += op.isArm();
        stores += op.isStore();
    }
    EXPECT_EQ(arms, 0u);
    EXPECT_GE(stores, 2u);
    // No architectural arming happened.
    EXPECT_EQ(engine->armedCount(), 0u);
}

TEST_P(RestAllocatorTest, DoubleFreeFaultsViaTokenAccess)
{
    Addr p = alloc->malloc(64, e.em);
    alloc->free(p, e.em);
    e.q.clear();
    alloc->free(p, e.em);
    bool saw_fault = false;
    for (auto &op : e.q)
        saw_fault |= (op.fault == isa::FaultKind::RestTokenAccess);
    EXPECT_TRUE(saw_fault);
}

TEST_P(RestAllocatorTest, RedzoneIsMultipleOfGranule)
{
    for (std::size_t size : {8u, 100u, 5000u, 100000u}) {
        std::size_t rz = alloc->redzoneBytes(size);
        EXPECT_EQ(rz % g(), 0u) << size;
        EXPECT_GE(rz, g());
        EXPECT_LE(rz, 2048u);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RestAllocatorTest,
                         ::testing::Values(core::TokenWidth::Bytes16,
                                           core::TokenWidth::Bytes32,
                                           core::TokenWidth::Bytes64));

} // namespace rest::runtime
