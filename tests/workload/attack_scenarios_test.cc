#include <gtest/gtest.h>

#include "common/test_util.hh"

namespace rest::workload::attacks
{

using rest::test::runUnder;
using rest::test::violationOf;
using sim::ExpConfig;
using core::ViolationKind;

TEST(Heartbleed, UndetectedOnPlainHardwareAndLeaks)
{
    auto result = runUnder(heartbleed(64, 256), ExpConfig::Plain);
    EXPECT_FALSE(result.faulted());
}

TEST(Heartbleed, RestHeapStopsTheOverRead)
{
    auto result = runUnder(heartbleed(64, 256),
                           ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(Heartbleed, AsanInterceptorCatchesIt)
{
    auto result = runUnder(heartbleed(64, 256), ExpConfig::Asan);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::AsanCheckFailed);
}

TEST(Heartbleed, DebugModeReportsPrecisely)
{
    auto result = runUnder(heartbleed(64, 256),
                           ExpConfig::RestDebugHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(result.run.violation.precision,
              core::Precision::Precise);
}

TEST(HeapOverflow, WriteSweepCaught)
{
    // 64-byte buffer, 32 words = 256 bytes written: well past bounds.
    auto result = runUnder(heapOverflowWrite(64, 32),
                           ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(HeapOverflow, InBoundsSweepIsClean)
{
    auto result = runUnder(heapOverflowWrite(64, 8),
                           ExpConfig::RestSecureHeap);
    EXPECT_FALSE(result.faulted());
}

TEST(HeapUnderflow, ReadBeforeBaseCaught)
{
    auto result = runUnder(heapUnderflowRead(64, 8),
                           ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(UseAfterFree, DanglingLoadCaught)
{
    auto result = runUnder(useAfterFree(128),
                           ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(UseAfterFree, UndetectedOnPlain)
{
    auto result = runUnder(useAfterFree(128), ExpConfig::Plain);
    EXPECT_FALSE(result.faulted());
}

TEST(DoubleFree, CaughtByRest)
{
    auto result = runUnder(doubleFree(64), ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(DoubleFree, CaughtByAsan)
{
    auto result = runUnder(doubleFree(64), ExpConfig::Asan);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::AsanCheckFailed);
}

TEST(StackOverflow, CaughtWithFullProtection)
{
    auto result = runUnder(stackOverflowWrite(16, 16),
                           ExpConfig::RestSecureFull);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(StackOverflow, MissedWithHeapOnlyProtection)
{
    // Heap-only REST (the legacy-binary mode) does not protect the
    // stack: the overflow proceeds undetected.
    auto result = runUnder(stackOverflowWrite(16, 16),
                           ExpConfig::RestSecureHeap);
    EXPECT_FALSE(result.faulted());
}

TEST(BruteForceDisarm, RaisesException)
{
    auto result = runUnder(bruteForceDisarm(),
                           ExpConfig::RestSecureHeap);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::DisarmUnarmed);
}

TEST(PadOverflow, SmallSpillIntoPaddingIsTheKnownFalseNegative)
{
    // 16-byte buffer, 64-byte tokens: bytes 16..63 are padding
    // (§V-C). An 8-byte overflow lands there -- undetected.
    auto result = runUnder(stackPadOverflow(16, 8),
                           ExpConfig::RestSecureFull,
                           core::TokenWidth::Bytes64);
    EXPECT_FALSE(result.faulted());
}

TEST(PadOverflow, NarrowTokensCloseTheGap)
{
    // With 16-byte tokens the redzone starts at byte 16: the same
    // 8-byte overflow is caught (§V-C mitigation).
    auto result = runUnder(stackPadOverflow(16, 8),
                           ExpConfig::RestSecureFull,
                           core::TokenWidth::Bytes16);
    ASSERT_TRUE(result.faulted());
    EXPECT_EQ(violationOf(result), ViolationKind::TokenAccess);
}

TEST(Scenarios, AllBuildersProduceValidPrograms)
{
    for (auto prog : {heartbleed(64, 128), heapOverflowWrite(64, 4),
                      heapUnderflowRead(64, 8), useAfterFree(64),
                      doubleFree(64), stackOverflowWrite(16, 1),
                      bruteForceDisarm(), stackPadOverflow(16, 4)}) {
        EXPECT_GE(prog.funcs.size(), 1u);
        EXPECT_GT(prog.numInsts(), 0u);
    }
}

} // namespace rest::workload::attacks
