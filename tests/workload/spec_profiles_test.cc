#include <gtest/gtest.h>

#include <set>

#include "util/bit_utils.hh"
#include "workload/spec_profiles.hh"

namespace rest::workload
{

TEST(SpecProfiles, SuiteHasTwelveBenchmarks)
{
    auto suite = specSuite();
    EXPECT_EQ(suite.size(), 12u);
    std::set<std::string> names;
    for (auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 12u);
    // The benchmarks the paper's figures report.
    for (const char *name :
         {"bzip2", "gobmk", "gcc", "libquantum", "astar", "h264ref",
          "lbm", "namd", "sjeng", "soplex", "xalancbmk", "hmmer"}) {
        EXPECT_TRUE(names.count(name)) << name;
    }
}

TEST(SpecProfiles, LookupByName)
{
    auto p = profileByName("xalancbmk");
    EXPECT_EQ(p.name, "xalancbmk");
    EXPECT_GT(p.allocsPerKiloInst, 0.5); // the allocation-heavy one
    EXPECT_DEATH((void)profileByName("nonexistent"), "unknown");
}

TEST(SpecProfiles, ProfilesAreWellFormed)
{
    for (auto &p : specSuite()) {
        EXPECT_TRUE(isPowerOfTwo(p.workingSetBytes)) << p.name;
        EXPECT_GT(p.numWorkFuncs, 0u) << p.name;
        EXPECT_GT(p.innerIters, 0u) << p.name;
        EXPECT_LE(p.loadFrac + p.storeFrac + p.fpFrac + p.mulFrac, 1.0)
            << p.name;
    }
}

TEST(SpecProfiles, PaperQuotedCharacteristics)
{
    // lbm and sjeng make fewer than 10 allocation calls (paper
    // §VI-B): their profiles have no churn at all.
    EXPECT_EQ(profileByName("lbm").allocsPerKiloInst, 0.0);
    EXPECT_EQ(profileByName("sjeng").allocsPerKiloInst, 0.0);
    // gcc and xalancbmk use the allocator most frequently.
    double gcc_rate = profileByName("gcc").allocsPerKiloInst;
    double xal_rate = profileByName("xalancbmk").allocsPerKiloInst;
    for (auto &p : specSuite()) {
        if (p.name != "gcc" && p.name != "xalancbmk") {
            EXPECT_LT(p.allocsPerKiloInst, gcc_rate) << p.name;
        }
    }
    EXPECT_GT(xal_rate, gcc_rate);
}

TEST(SpecProfiles, GeneratedProgramsAreWellFormed)
{
    for (auto &p : specSuite()) {
        auto prof = p;
        prof.targetKiloInsts = 10;
        isa::Program prog = generate(prof);
        ASSERT_GE(prog.funcs.size(), 1u + prof.numWorkFuncs) << p.name;
        // main ends with Halt, work funcs with Ret.
        EXPECT_EQ(prog.funcs[0].insts.back().op, isa::Opcode::Halt);
        for (std::size_t f = 1; f < prog.funcs.size(); ++f) {
            EXPECT_EQ(prog.funcs[f].insts.back().op, isa::Opcode::Ret)
                << p.name;
        }
        // All branch targets are in range and never point at the
        // trailing Ret/Halt (single-exit contract).
        for (auto &fn : prog.funcs) {
            for (auto &inst : fn.insts) {
                if (inst.target >= 0 &&
                    inst.op != isa::Opcode::Call) {
                    EXPECT_LT(static_cast<std::size_t>(inst.target),
                              fn.insts.size() - 1)
                        << p.name;
                }
                if (inst.op == isa::Opcode::Call) {
                    EXPECT_LT(static_cast<std::size_t>(inst.target),
                              prog.funcs.size());
                }
            }
        }
    }
}

TEST(SpecProfiles, GenerationIsDeterministic)
{
    auto p = profileByName("gobmk");
    p.targetKiloInsts = 10;
    isa::Program a = generate(p);
    isa::Program b = generate(p);
    ASSERT_EQ(a.numInsts(), b.numInsts());
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(SpecProfiles, SeedChangesCode)
{
    auto p = profileByName("gobmk");
    p.targetKiloInsts = 10;
    isa::Program a = generate(p);
    p.seed ^= 0x1234;
    isa::Program b = generate(p);
    EXPECT_NE(a.toString(), b.toString());
}

TEST(SpecProfiles, AllocRateProducesRuntimeCalls)
{
    auto p = profileByName("xalancbmk");
    p.targetKiloInsts = 10;
    isa::Program prog = generate(p);
    unsigned mallocs = 0;
    for (auto &inst : prog.funcs[0].insts)
        mallocs += (inst.op == isa::Opcode::RtMalloc);
    // Setup arrays + at least one churn alloc site.
    EXPECT_GT(mallocs, p.numWorkFuncs);
}

} // namespace rest::workload
