/**
 * @file
 * Unit tests for the decoded-op cache: template fields match a fresh
 * decode, same-program prepare() is a no-op, and a program change
 * (different object or in-place growth) evicts and rebuilds — with the
 * arena recycled, not leaked, across rebuilds (ASan-checked).
 */

#include <gtest/gtest.h>

#include "isa/decode_cache.hh"
#include "isa/program.hh"

namespace rest::isa
{

namespace
{

Program
smallProgram()
{
    FuncBuilder fb("main");
    fb.movImm(1, 42);
    fb.addI(2, 1, 1);
    fb.load(3, 2, 0, 4);
    fb.store(3, 2, 8, 8);
    fb.halt();
    Program p;
    p.funcs.push_back(fb.take());
    return p;
}

} // namespace

TEST(DecodeCache, TemplatesMatchStaticDecode)
{
    Program p = smallProgram();
    DecodeCache cache;
    EXPECT_TRUE(cache.prepare(p));
    ASSERT_TRUE(cache.cachedFor(p));

    const auto &insts = p.funcs[0].insts;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const DynOp &op = cache.entry(0, i);
        EXPECT_EQ(op.pc, p.pcBase(0) + 4 * i);
        EXPECT_EQ(op.op, insts[i].op);
        EXPECT_EQ(op.cls, isRuntimeOp(insts[i].op)
                              ? OpClass::Branch
                              : opClassOf(insts[i].op));
        EXPECT_EQ(op.rd, insts[i].rd);
        EXPECT_EQ(op.rs1, insts[i].rs1);
        EXPECT_EQ(op.rs2, insts[i].rs2);
        EXPECT_EQ(op.size, insts[i].width);
        // Dynamic fields must be template-fresh.
        EXPECT_EQ(op.fault, FaultKind::None);
        EXPECT_EQ(op.seq, 0u);
    }
}

TEST(DecodeCache, SamePreparedProgramIsANoOp)
{
    Program p = smallProgram();
    DecodeCache cache;
    EXPECT_TRUE(cache.prepare(p));
    EXPECT_EQ(cache.rebuilds(), 1u);
    EXPECT_FALSE(cache.prepare(p));
    EXPECT_FALSE(cache.prepare(p));
    EXPECT_EQ(cache.rebuilds(), 1u);
}

TEST(DecodeCache, EvictsOnProgramChange)
{
    Program a = smallProgram();
    Program b = smallProgram();
    DecodeCache cache;
    EXPECT_TRUE(cache.prepare(a));
    EXPECT_TRUE(cache.prepare(b)); // different object: rebuild
    EXPECT_FALSE(cache.cachedFor(a));
    EXPECT_TRUE(cache.cachedFor(b));

    // In-place growth of the cached program (what an instrumentation
    // pass does) also invalidates: the instruction count is part of
    // the identity.
    FuncBuilder fb("extra");
    fb.halt();
    b.funcs.push_back(fb.take());
    EXPECT_FALSE(cache.cachedFor(b));
    EXPECT_TRUE(cache.prepare(b));
    EXPECT_EQ(cache.entry(1, 0).op, Opcode::Halt);
    EXPECT_EQ(cache.entry(1, 0).pc, b.pcBase(1));
    EXPECT_EQ(cache.rebuilds(), 3u);
}

TEST(DecodeCache, RepeatedRebuildsRecycleStorage)
{
    // Alternate between two same-shaped programs: every prepare() is
    // a rebuild, but after the first pair the arena must not grow
    // (reset() recycles blocks; ASan verifies nothing leaks either).
    Program a = smallProgram();
    Program b = smallProgram();
    DecodeCache cache;
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(cache.prepare(i % 2 ? b : a));
        EXPECT_EQ(cache.entry(0, 0).op, Opcode::MovImm);
    }
    EXPECT_EQ(cache.rebuilds(), 50u);
}

} // namespace rest::isa
