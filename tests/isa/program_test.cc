#include <gtest/gtest.h>

#include "isa/program.hh"

namespace rest::isa
{

TEST(FuncBuilder, EmitsAndPatchesTargets)
{
    FuncBuilder b("f");
    b.movImm(1, 5);
    int loop = b.here();
    b.addI(1, 1, -1);
    int br = b.branch(Opcode::Bne, 1, regZero);
    b.patchTarget(br, loop);
    b.ret();
    Function fn = b.take();

    ASSERT_EQ(fn.insts.size(), 4u);
    EXPECT_EQ(fn.insts[2].target, loop);
    EXPECT_EQ(fn.insts.back().op, Opcode::Ret);
}

TEST(FuncBuilder, StackBufIds)
{
    FuncBuilder b("f");
    int a = b.stackBuf(16);
    int c = b.stackBuf(64, false);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(c, 1);
    b.halt();
    Function fn = b.take();
    ASSERT_EQ(fn.bufs.size(), 2u);
    EXPECT_EQ(fn.bufs[0].size, 16u);
    EXPECT_TRUE(fn.bufs[0].vulnerable);
    EXPECT_FALSE(fn.bufs[1].vulnerable);
}

TEST(FuncBuilder, LeaBufCarriesSymbolicId)
{
    FuncBuilder b("f");
    int buf = b.stackBuf(32);
    b.leaBuf(3, buf);
    b.halt();
    Function fn = b.take();
    EXPECT_EQ(fn.insts[0].bufId, buf);
    EXPECT_EQ(fn.insts[0].rs1, regFp);
}

TEST(Program, PcBasesAreContiguous)
{
    Program prog;
    {
        FuncBuilder b("main");
        b.movImm(1, 0);
        b.movImm(2, 0);
        b.halt();
        prog.funcs.push_back(std::move(b).take());
    }
    {
        FuncBuilder b("f1");
        b.ret();
        prog.funcs.push_back(std::move(b).take());
    }
    EXPECT_EQ(prog.pcBase(0), 0x400000u);
    EXPECT_EQ(prog.pcBase(1), 0x400000u + 4 * 3);
    EXPECT_EQ(prog.numInsts(), 4u);
}

TEST(Program, ToStringRendersInstructions)
{
    FuncBuilder b("main");
    b.load(2, 1, 8, 4);
    b.store(3, 1, 16, 8);
    b.halt();
    Program prog;
    prog.funcs.push_back(std::move(b).take());
    std::string text = prog.toString();
    EXPECT_NE(text.find("ld4"), std::string::npos);
    EXPECT_NE(text.find("st"), std::string::npos);
    EXPECT_NE(text.find("main"), std::string::npos);
}

TEST(Program, ToStringShowsAccessWidthAndSymbolicBuffers)
{
    FuncBuilder b("main");
    int buf = b.stackBuf(32);
    b.leaBuf(1, buf);
    b.emit({Opcode::Load, 2, regFp, noReg, 4, 8, -1, buf});
    b.load(3, 1, -16, 2);
    b.halt();
    Program prog;
    prog.funcs.push_back(std::move(b).take());
    std::string text = prog.toString();
    // Unresolved buffer references render inside the operand, so they
    // cannot be mistaken for resolved frame offsets.
    EXPECT_NE(text.find("addi r1, r29, buf#0+0"), std::string::npos);
    EXPECT_NE(text.find("ld4 r2, [r29+buf#0+8]"), std::string::npos);
    // Widths always print, and negative offsets keep their sign.
    EXPECT_NE(text.find("ld2 r3, [r1-16]"), std::string::npos);
}

TEST(Inst, DefaultsAreSane)
{
    Inst inst;
    EXPECT_EQ(inst.op, Opcode::Nop);
    EXPECT_EQ(inst.rd, noReg);
    EXPECT_EQ(inst.bufId, -1);
    EXPECT_EQ(inst.tag, OpSource::Program);
}

} // namespace rest::isa
