#include <gtest/gtest.h>

#include "isa/opcode.hh"

namespace rest::isa
{

TEST(Opcode, MemOpClassification)
{
    EXPECT_TRUE(isMemOp(Opcode::Load));
    EXPECT_TRUE(isMemOp(Opcode::Store));
    EXPECT_TRUE(isMemOp(Opcode::Arm));
    EXPECT_TRUE(isMemOp(Opcode::Disarm));
    EXPECT_FALSE(isMemOp(Opcode::Add));
    EXPECT_FALSE(isMemOp(Opcode::Beq));
    EXPECT_FALSE(isMemOp(Opcode::AsanCheck));
}

TEST(Opcode, ControlOpClassification)
{
    for (Opcode op : {Opcode::Beq, Opcode::Bne, Opcode::Blt,
                      Opcode::Bge, Opcode::Jmp, Opcode::Call,
                      Opcode::Ret}) {
        EXPECT_TRUE(isControlOp(op));
    }
    EXPECT_FALSE(isControlOp(Opcode::Load));
    EXPECT_FALSE(isControlOp(Opcode::Arm));
}

TEST(Opcode, RuntimeOpClassification)
{
    for (Opcode op : {Opcode::RtMalloc, Opcode::RtFree,
                      Opcode::RtMemcpy, Opcode::RtMemset}) {
        EXPECT_TRUE(isRuntimeOp(op));
    }
    EXPECT_FALSE(isRuntimeOp(Opcode::Call));
}

TEST(Opcode, RestOpClasses)
{
    EXPECT_EQ(opClassOf(Opcode::Arm), OpClass::MemArm);
    EXPECT_EQ(opClassOf(Opcode::Disarm), OpClass::MemDisarm);
    EXPECT_EQ(opClassOf(Opcode::Load), OpClass::MemRead);
    EXPECT_EQ(opClassOf(Opcode::Store), OpClass::MemWrite);
    EXPECT_EQ(opClassOf(Opcode::Mul), OpClass::IntMult);
    EXPECT_EQ(opClassOf(Opcode::FDiv), OpClass::FloatDiv);
    EXPECT_EQ(opClassOf(Opcode::Ret), OpClass::Branch);
}

TEST(Opcode, EveryNonRuntimeOpcodeHasClassAndMnemonic)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(Opcode::NumOpcodes); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_NE(mnemonic(op), "<bad>");
        if (!isRuntimeOp(op)) {
            EXPECT_NO_FATAL_FAILURE((void)opClassOf(op));
        }
    }
}

TEST(Opcode, RuntimeOpcodeClassPanics)
{
    EXPECT_DEATH((void)opClassOf(Opcode::RtMalloc), "opClassOf");
}

} // namespace rest::isa
