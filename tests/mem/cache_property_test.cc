/**
 * @file
 * Randomised property tests of the cache hierarchy: timing sanity
 * (time never runs backwards, hits are never slower than the level
 * below), inclusion-ish residency behaviour, and REST token-bit
 * consistency against a reference model under random operation
 * streams.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/rest_engine.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/rest_l1_cache.hh"
#include "util/random.hh"

namespace rest::mem
{

TEST(CacheProperty, CompletionNeverBeforeRequest)
{
    Dram dram;
    Cache l2(CacheConfig::l2(), dram);
    Cache l1(CacheConfig::l1d(), l2);
    Xoshiro256ss rng(1);
    Cycles now = 0;
    for (int i = 0; i < 20000; ++i) {
        Addr addr = 0x100000 + 64 * rng.below(4096);
        now += rng.below(3);
        Cycles done = l1.access(addr, rng.chance(0.3), now);
        ASSERT_GT(done, now);
    }
}

TEST(CacheProperty, HitLatencyBounded)
{
    Dram dram;
    Cache l2(CacheConfig::l2(), dram);
    Cache l1(CacheConfig::l1d(), l2);
    // Touch a small set, wait for fills, then every access is a hit
    // with exactly the configured latency.
    Cycles t = 0;
    for (Addr a = 0; a < 32; ++a)
        t = std::max(t, l1.access(0x4000 + 64 * a, false, 0));
    for (Addr a = 0; a < 32; ++a) {
        Cycles done = l1.access(0x4000 + 64 * a, false, t + 100);
        ASSERT_TRUE(l1.lastWasHit());
        ASSERT_EQ(done, t + 100 + CacheConfig::l1d().latency);
    }
}

TEST(CacheProperty, ResidencyMatchesReferenceSet)
{
    // Track a reference set of the most recently used lines per set
    // and check the cache never "loses" a line that the LRU reference
    // says must still be resident.
    CacheConfig cfg;
    cfg.name = "t";
    cfg.sizeBytes = 4096; // 4 sets x 16 ways... use 8 ways x 8 sets
    cfg.assoc = 8;
    cfg.blockSize = 64;
    Dram dram;
    Cache cache(cfg, dram);
    const unsigned num_sets = 4096 / (64 * 8);

    Xoshiro256ss rng(7);
    std::vector<std::vector<Addr>> lru(num_sets); // MRU at back
    Cycles now = 0;
    for (int i = 0; i < 50000; ++i) {
        Addr line = 64 * rng.below(256);
        unsigned set = (line / 64) % num_sets;
        now += 200; // let everything settle
        cache.access(line, rng.chance(0.5), now);
        auto &v = lru[set];
        v.erase(std::remove(v.begin(), v.end(), line), v.end());
        v.push_back(line);
        if (v.size() > 8)
            v.erase(v.begin());
        // Every line in the reference LRU list must be resident.
        for (Addr resident : v)
            ASSERT_TRUE(cache.probe(resident))
                << "lost line " << resident << " at step " << i;
    }
}

TEST(CacheProperty, RestTokenBitsMatchEngineUnderRandomOps)
{
    // Drive random arm/disarm/load/store traffic and cross-check the
    // L1-D token bits against the architectural RestEngine after
    // arbitrary evictions and refills.
    Xoshiro256ss rng(21);
    GuestMemory memory;
    core::TokenConfigRegister tcr;
    tcr.writePrivileged(
        core::TokenValue::generate(rng, core::TokenWidth::Bytes32),
        core::RestMode::Secure);
    core::RestEngine engine(tcr);
    Dram dram;
    Cache l2(CacheConfig::l2(), dram);
    // A tiny L1 so evictions happen constantly.
    CacheConfig l1cfg = CacheConfig::l1d();
    l1cfg.sizeBytes = 2048;
    l1cfg.assoc = 2;
    RestL1Cache l1(l1cfg, l2, memory, tcr);

    const unsigned g = tcr.granule();
    Cycles now = 0;
    for (int i = 0; i < 30000; ++i) {
        Addr granule = 0x10000 + g * rng.below(512);
        now += 300;
        switch (rng.below(4)) {
          case 0: { // arm (mirror in the engine)
            if (!engine.isArmed(granule)) {
                engine.arm(granule);
                auto acc = l1.armAccess(granule, now);
                ASSERT_FALSE(acc.faulted());
            }
            break;
          }
          case 1: { // disarm iff armed
            if (engine.isArmed(granule)) {
                auto acc = l1.disarmAccess(granule, now);
                ASSERT_FALSE(acc.faulted()) << i;
                engine.disarm(granule);
            }
            break;
          }
          case 2: { // load: faults iff architecturally armed
            auto acc = l1.loadAccess(granule + rng.below(g - 8), 8,
                                     now);
            ASSERT_EQ(acc.faulted(), engine.isArmed(granule)) << i;
            break;
          }
          default: { // store to a clean granule only
            if (!engine.isArmed(granule)) {
                auto acc = l1.storeAccess(granule, 8, now);
                ASSERT_FALSE(acc.faulted()) << i;
            }
            break;
          }
        }
    }
    // Final sweep: the cache and the engine agree everywhere.
    for (unsigned k = 0; k < 512; ++k) {
        Addr granule = 0x10000 + g * k;
        auto acc = l1.loadAccess(granule, 8, now + 1000 + k);
        EXPECT_EQ(acc.faulted(), engine.isArmed(granule)) << k;
    }
}

TEST(CacheProperty, WritebackPreservesTokenValues)
{
    // Armed granules must carry the token through arbitrary
    // evict/refill sequences.
    Xoshiro256ss rng(33);
    GuestMemory memory;
    core::TokenConfigRegister tcr;
    tcr.writePrivileged(
        core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
        core::RestMode::Secure);
    Dram dram;
    Cache l2(CacheConfig::l2(), dram);
    CacheConfig l1cfg = CacheConfig::l1d();
    l1cfg.sizeBytes = 1024;
    l1cfg.assoc = 2;
    RestL1Cache l1(l1cfg, l2, memory, tcr);

    std::set<Addr> armed;
    Cycles now = 0;
    for (int i = 0; i < 2000; ++i) {
        Addr a = 0x20000 + 64 * rng.below(128);
        now += 300;
        if (armed.count(a))
            continue;
        l1.armAccess(a, now);
        armed.insert(a);
        // Thrash the set with conflicting lines.
        for (int k = 0; k < 4; ++k)
            l1.loadAccess(a + 64 * 128 * (k + 1), 8, now + 10 + k);
    }
    l1.flushAll();
    std::vector<std::uint8_t> buf(64);
    for (Addr a : armed) {
        memory.readBytes(a, {buf.data(), buf.size()});
        ASSERT_TRUE(tcr.token().matches({buf.data(), buf.size()}))
            << std::hex << a;
    }
}

} // namespace rest::mem
