#include <gtest/gtest.h>

#include "core/token.hh"
#include "mem/guest_memory.hh"
#include "mem/token_detector.hh"

namespace rest::mem
{

class TokenDetectorTest
    : public ::testing::TestWithParam<core::TokenWidth>
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(21);
        tcr_.writePrivileged(
            core::TokenValue::generate(rng, GetParam()),
            core::RestMode::Secure);
        detector_ = std::make_unique<TokenDetector>(memory_, tcr_);
    }

    unsigned g() const { return tcr_.granule(); }

    void
    writeTokenAt(Addr addr)
    {
        memory_.writeBytes(addr, tcr_.token().bytes());
    }

    GuestMemory memory_;
    core::TokenConfigRegister tcr_;
    std::unique_ptr<TokenDetector> detector_;
};

TEST_P(TokenDetectorTest, CleanLineHasNoTokenBits)
{
    memory_.fill(0x1000, 0x7f, 64);
    EXPECT_EQ(detector_->scan(0x1000, 64), 0u);
}

TEST_P(TokenDetectorTest, ZeroLineHasNoTokenBits)
{
    EXPECT_EQ(detector_->scan(0x2000, 64), 0u);
}

TEST_P(TokenDetectorTest, DetectsTokenInFirstGranule)
{
    writeTokenAt(0x1000);
    EXPECT_EQ(detector_->scan(0x1000, 64) & 1u, 1u);
}

TEST_P(TokenDetectorTest, DetectsTokenInEveryGranulePosition)
{
    unsigned granules = 64 / g();
    for (unsigned i = 0; i < granules; ++i) {
        Addr line = 0x4000 + 64 * i;
        writeTokenAt(line + i * g());
        std::uint8_t mask = detector_->scan(line, 64);
        EXPECT_EQ(mask, 1u << i) << "granule " << i;
    }
}

TEST_P(TokenDetectorTest, DetectsMultipleTokensInOneLine)
{
    unsigned granules = 64 / g();
    Addr line = 0x5000;
    for (unsigned i = 0; i < granules; ++i)
        writeTokenAt(line + i * g());
    EXPECT_EQ(detector_->scan(line, 64), (1u << granules) - 1);
}

TEST_P(TokenDetectorTest, PartialTokenIsNotDetected)
{
    Addr line = 0x6000;
    writeTokenAt(line);
    memory_.writeByte(line + g() - 1,
                      memory_.readByte(line + g() - 1) ^ 0xff);
    EXPECT_EQ(detector_->scan(line, 64) & 1u, 0u);
}

TEST_P(TokenDetectorTest, MisalignedTokenValueNotDetected)
{
    // A token value written at a non-granule offset must not fire
    // (condition 2 of §V-B: alignment required).
    if (g() == 64)
        return; // cannot misalign within a line at full width
    Addr line = 0x7000;
    memory_.writeBytes(line + 8, tcr_.token().bytes());
    std::uint8_t mask = detector_->scan(line, 64);
    EXPECT_EQ(mask, 0u);
}

TEST_P(TokenDetectorTest, GranuleIndex)
{
    EXPECT_EQ(detector_->granuleIndex(0x1000, 64), 0u);
    EXPECT_EQ(detector_->granuleIndex(0x1000 + g(), 64),
              g() == 64 ? 0u : 1u);
    EXPECT_EQ(detector_->granuleIndex(0x1000 + 63, 64), 64 / g() - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, TokenDetectorTest,
                         ::testing::Values(core::TokenWidth::Bytes16,
                                           core::TokenWidth::Bytes32,
                                           core::TokenWidth::Bytes64));

} // namespace rest::mem
