/**
 * @file
 * MESI state-machine matrix over the snooping CoherenceBus: every
 * transition edge, requester- and remote-side, plus the REST invariant
 * that coherence transfers of token-bearing lines keep detection a
 * fill-path property of each private L1.
 */

#include <gtest/gtest.h>

#include "core/token.hh"
#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/dram.hh"
#include "mem/rest_l1_cache.hh"

namespace rest::mem
{

class CoherenceTest : public ::testing::TestWithParam<core::TokenWidth>
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(33);
        tcr_.writePrivileged(
            core::TokenValue::generate(rng, GetParam()),
            core::RestMode::Secure);
        dram_ = std::make_unique<Dram>();
        l2_ = std::make_unique<Cache>(CacheConfig::l2(), *dram_);
        bus_ = std::make_unique<CoherenceBus>();
        for (auto *l1 : {&l1a_, &l1b_, &l1c_}) {
            *l1 = std::make_unique<RestL1Cache>(CacheConfig::l1d(),
                                                *l2_, memory_, tcr_);
            (*l1)->attachBus(bus_.get());
            bus_->attach(**l1);
        }
    }

    unsigned g() const { return tcr_.granule(); }

    std::uint64_t
    busStat(const char *name) const
    {
        return bus_->statGroup().scalarValue(name);
    }

    GuestMemory memory_;
    core::TokenConfigRegister tcr_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<CoherenceBus> bus_;
    std::unique_ptr<RestL1Cache> l1a_, l1b_, l1c_;
};

// I -> E: read miss with no remote copy.
TEST_P(CoherenceTest, ReadMissAloneInstallsExclusive)
{
    l1a_->loadAccess(0x1000, 8, 0);
    EXPECT_EQ(l1a_->mesiState(0x1000), Mesi::Exclusive);
    EXPECT_EQ(busStat("bus_reads"), 1u);
    EXPECT_EQ(busStat("transfers"), 0u);
}

// I -> S (requester) and E -> S (remote): read miss on a remote
// Exclusive copy.
TEST_P(CoherenceTest, ReadMissOnRemoteExclusiveShares)
{
    l1a_->loadAccess(0x1000, 8, 0);
    l1b_->loadAccess(0x1000, 8, 100);
    EXPECT_EQ(l1a_->mesiState(0x1000), Mesi::Shared);
    EXPECT_EQ(l1b_->mesiState(0x1000), Mesi::Shared);
    EXPECT_EQ(busStat("transfers"), 1u);
    EXPECT_EQ(busStat("downgrades"), 1u);
}

// S -> S: a third reader joins; everyone stays Shared.
TEST_P(CoherenceTest, ThirdReaderKeepsEveryoneShared)
{
    l1a_->loadAccess(0x1000, 8, 0);
    l1b_->loadAccess(0x1000, 8, 100);
    l1c_->loadAccess(0x1000, 8, 200);
    EXPECT_EQ(l1a_->mesiState(0x1000), Mesi::Shared);
    EXPECT_EQ(l1b_->mesiState(0x1000), Mesi::Shared);
    EXPECT_EQ(l1c_->mesiState(0x1000), Mesi::Shared);
}

// I -> M: write miss invalidates every remote copy (S -> I, E -> I).
TEST_P(CoherenceTest, WriteMissInvalidatesRemotes)
{
    l1a_->loadAccess(0x2000, 8, 0);
    l1b_->loadAccess(0x2000, 8, 100);
    l1c_->storeAccess(0x2000, 8, 200);
    EXPECT_EQ(l1c_->mesiState(0x2000), Mesi::Modified);
    EXPECT_EQ(l1a_->mesiState(0x2000), Mesi::Invalid);
    EXPECT_EQ(l1b_->mesiState(0x2000), Mesi::Invalid);
    EXPECT_FALSE(l1a_->lineResident(0x2000));
    EXPECT_EQ(busStat("bus_readxs"), 1u);
    EXPECT_EQ(busStat("invalidations"), 2u);
}

// E -> M: write hit on an Exclusive line is silent (no BusUpgr).
TEST_P(CoherenceTest, WriteHitOnExclusiveSilentlyModifies)
{
    l1a_->loadAccess(0x3000, 8, 0);
    ASSERT_EQ(l1a_->mesiState(0x3000), Mesi::Exclusive);
    l1a_->storeAccess(0x3000, 8, 100);
    EXPECT_EQ(l1a_->mesiState(0x3000), Mesi::Modified);
    EXPECT_EQ(busStat("upgrades"), 0u);
}

// S -> M (writer) and S -> I (remote): write hit on a Shared line
// broadcasts BusUpgr.
TEST_P(CoherenceTest, WriteHitOnSharedUpgrades)
{
    l1a_->loadAccess(0x4000, 8, 0);
    l1b_->loadAccess(0x4000, 8, 100);
    l1a_->storeAccess(0x4000, 8, 200);
    EXPECT_EQ(l1a_->mesiState(0x4000), Mesi::Modified);
    EXPECT_EQ(l1b_->mesiState(0x4000), Mesi::Invalid);
    EXPECT_EQ(busStat("upgrades"), 1u);
    EXPECT_EQ(busStat("invalidations"), 1u);
}

// M -> S: remote read forces the owner to flush and downgrade.
TEST_P(CoherenceTest, RemoteReadFlushesModifiedOwner)
{
    l1a_->storeAccess(0x5000, 8, 0);
    ASSERT_EQ(l1a_->mesiState(0x5000), Mesi::Modified);
    const auto wb_before =
        l1a_->statGroup().scalarValue("writebacks");
    l1b_->loadAccess(0x5000, 8, 100);
    EXPECT_EQ(l1a_->mesiState(0x5000), Mesi::Shared);
    EXPECT_EQ(l1b_->mesiState(0x5000), Mesi::Shared);
    EXPECT_EQ(l1a_->statGroup().scalarValue("writebacks"),
              wb_before + 1);
    EXPECT_EQ(busStat("dirty_flushes"), 1u);
}

// M -> I: remote write invalidates the owner (with write-back).
TEST_P(CoherenceTest, RemoteWriteInvalidatesModifiedOwner)
{
    l1a_->storeAccess(0x6000, 8, 0);
    l1b_->storeAccess(0x6000, 8, 100);
    EXPECT_EQ(l1a_->mesiState(0x6000), Mesi::Invalid);
    EXPECT_EQ(l1b_->mesiState(0x6000), Mesi::Modified);
    EXPECT_EQ(busStat("dirty_flushes"), 1u);
    EXPECT_GE(l1a_->statGroup().scalarValue("writebacks"), 1u);
}

// The REST invariant, read-transfer direction: core A arms a granule
// (token value still deferred in its M line); core B's load of that
// line must flush A's tokens through memory, re-detect them on B's
// fill, and trap.
TEST_P(CoherenceTest, TokenLineReadTransferStillTraps)
{
    l1a_->armAccess(0x7000, 0);
    ASSERT_EQ(l1a_->mesiState(0x7000), Mesi::Modified);
    RestAccess res = l1b_->loadAccess(0x7000, 8, 100);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
    EXPECT_TRUE(l1b_->tokenBitSet(0x7000));
    // A kept its copy (M -> S) with the token bit intact.
    EXPECT_EQ(l1a_->mesiState(0x7000), Mesi::Shared);
    EXPECT_TRUE(l1a_->tokenBitSet(0x7000));
    EXPECT_GE(l1a_->statGroup().scalarValue("token_coherence_flushes"),
              1u);
}

// The REST invariant, write-transfer direction: the invalidation path
// (onEvict) must carry the token values just the same.
TEST_P(CoherenceTest, TokenLineWriteTransferStillTraps)
{
    l1a_->armAccess(0x8000, 0);
    RestAccess res = l1b_->storeAccess(0x8000, 8, 100);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
    EXPECT_TRUE(l1b_->tokenBitSet(0x8000));
    EXPECT_FALSE(l1a_->lineResident(0x8000));
    EXPECT_GE(l1a_->statGroup().scalarValue("token_evictions"), 1u);
}

// Cross-core disarm: the free-side core disarms a granule the
// arm-side core still holds; the fill-path detector restores the bit
// before the disarm clears it.
TEST_P(CoherenceTest, CrossCoreDisarmSucceeds)
{
    l1a_->armAccess(0x9000, 0);
    RestAccess res = l1b_->disarmAccess(0x9000, 100);
    EXPECT_FALSE(res.faulted());
    EXPECT_FALSE(l1b_->tokenBitSet(0x9000));
}

// A detached cache is the historical uniprocessor model: no states,
// no bus traffic.
TEST_P(CoherenceTest, DetachedCacheStaysInvalidState)
{
    RestL1Cache solo(CacheConfig::l1d(), *l2_, memory_, tcr_);
    solo.loadAccess(0xa000, 8, 0);
    EXPECT_TRUE(solo.lineResident(0xa000));
    EXPECT_EQ(solo.mesiState(0xa000), Mesi::Invalid);
    solo.storeAccess(0xa000, 8, 10);
    EXPECT_EQ(solo.mesiState(0xa000), Mesi::Invalid);
}

INSTANTIATE_TEST_SUITE_P(Widths, CoherenceTest,
                         ::testing::Values(core::TokenWidth::Bytes16,
                                           core::TokenWidth::Bytes32,
                                           core::TokenWidth::Bytes64));

} // namespace rest::mem
