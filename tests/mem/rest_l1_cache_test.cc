/**
 * @file
 * Directed tests of the REST L1-D semantics, cell by cell against
 * Table I of the paper (cache-hit and cache-miss columns; the LSQ
 * column is covered in cpu/lsq_test.cc).
 */

#include <gtest/gtest.h>

#include "core/token.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/rest_l1_cache.hh"

namespace rest::mem
{

class RestL1CacheTest
    : public ::testing::TestWithParam<core::TokenWidth>
{
  protected:
    void
    SetUp() override
    {
        Xoshiro256ss rng(33);
        tcr_.writePrivileged(
            core::TokenValue::generate(rng, GetParam()),
            core::RestMode::Secure);
        dram_ = std::make_unique<Dram>();
        l2_ = std::make_unique<Cache>(CacheConfig::l2(), *dram_);
        l1_ = std::make_unique<RestL1Cache>(CacheConfig::l1d(), *l2_,
                                            memory_, tcr_);
    }

    unsigned g() const { return tcr_.granule(); }

    void
    writeTokenToMemory(Addr addr)
    {
        memory_.writeBytes(addr, tcr_.token().bytes());
    }

    GuestMemory memory_;
    core::TokenConfigRegister tcr_;
    std::unique_ptr<Dram> dram_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<RestL1Cache> l1_;
};

// Table I, row "Arm", cache hit: set token bit.
TEST_P(RestL1CacheTest, ArmOnHitSetsTokenBit)
{
    l1_->loadAccess(0x1000, 8, 0); // bring the line in
    RestAccess res = l1_->armAccess(0x1000, 100);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.faulted());
    EXPECT_TRUE(l1_->tokenBitSet(0x1000));
}

// Table I, row "Arm", cache miss: fetch line, set token bit.
TEST_P(RestL1CacheTest, ArmOnMissFetchesAndSetsBit)
{
    RestAccess res = l1_->armAccess(0x2000, 0);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.faulted());
    EXPECT_TRUE(l1_->lineResident(0x2000));
    EXPECT_TRUE(l1_->tokenBitSet(0x2000));
}

// §III-B: arm does not write the token value into the line; the value
// goes out at eviction.
TEST_P(RestL1CacheTest, ArmDefersTokenValueUntilEviction)
{
    l1_->armAccess(0x3000, 0);
    // Memory does not hold the token value yet.
    std::vector<std::uint8_t> buf(g());
    memory_.readBytes(0x3000, {buf.data(), buf.size()});
    EXPECT_FALSE(tcr_.token().matches({buf.data(), buf.size()}));

    // Evict everything: the token value is written out.
    l1_->flushAll();
    memory_.readBytes(0x3000, {buf.data(), buf.size()});
    EXPECT_TRUE(tcr_.token().matches({buf.data(), buf.size()}));
    EXPECT_GE(l1_->statGroup().scalarValue("token_evictions"), 1u);
}

// Fill-path detector: a line whose memory content holds the token
// arrives with its token bit set (Table I load/store miss rows:
// "fetch line, set token bit if it has token").
TEST_P(RestL1CacheTest, FillDetectorSetsBitFromMemory)
{
    writeTokenToMemory(0x4000);
    // For sub-line tokens, touch a clean granule of the same line;
    // at full width the only granule is the token itself.
    Addr touch = 0x4000 + (g() == 64 ? 0 : g());
    RestAccess res = l1_->loadAccess(touch, 8, 0);
    EXPECT_EQ(res.faulted(), g() == 64);
    EXPECT_TRUE(l1_->tokenBitSet(0x4000));
    EXPECT_GE(l1_->statGroup().scalarValue("token_fills"), 1u);
}

// Table I, row "Load", hit with token bit set: raise exception.
TEST_P(RestL1CacheTest, LoadOnArmedGranuleFaults)
{
    l1_->armAccess(0x5000, 0);
    RestAccess res = l1_->loadAccess(0x5000, 8, 10);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
}

// Table I, row "Load", miss on a line with a token: proceed as hit
// (fetch, set bit, raise).
TEST_P(RestL1CacheTest, LoadMissOnTokenLineFaults)
{
    writeTokenToMemory(0x6000);
    RestAccess res = l1_->loadAccess(0x6000, 8, 0);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
}

// Table I, row "Load": clean access reads data normally.
TEST_P(RestL1CacheTest, LoadCleanGranuleOk)
{
    l1_->armAccess(0x7000, 0);
    RestAccess res = l1_->loadAccess(0x7000 + g(), 8, 10);
    EXPECT_FALSE(res.faulted());
}

// Table I, row "Store (Secure)": token bit set -> exception; else
// write data.
TEST_P(RestL1CacheTest, StoreOnArmedGranuleFaults)
{
    l1_->armAccess(0x8000, 0);
    RestAccess res = l1_->storeAccess(0x8000 + g() / 2, 4, 10);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
}

TEST_P(RestL1CacheTest, StoreCleanGranuleOk)
{
    RestAccess res = l1_->storeAccess(0x9000, 8, 0);
    EXPECT_FALSE(res.faulted());
}

// Table I, row "Disarm", hit with token bit set: clear line, unset
// bit; one extra cycle.
TEST_P(RestL1CacheTest, DisarmClearsBitAndZeroesGranule)
{
    writeTokenToMemory(0xa000);
    l1_->loadAccess(0xa000, 8, 0); // fill; detector sets the bit
    ASSERT_TRUE(l1_->tokenBitSet(0xa000));

    // Reference: a plain store hit on another (warmed) resident line.
    l1_->loadAccess(0xa100, 8, 0);
    Cycles t0 = 5000; // both fills long since complete
    RestAccess plain_store = l1_->storeAccess(0xa100, 8, t0);
    RestAccess res = l1_->disarmAccess(0xa000, t0);
    EXPECT_FALSE(res.faulted());
    EXPECT_FALSE(l1_->tokenBitSet(0xa000));
    // Disarm takes one cycle longer than a plain hit (all banks).
    EXPECT_EQ(res.completeAt, plain_store.completeAt + 1);
    // The granule is zeroed.
    for (unsigned i = 0; i < g(); ++i)
        EXPECT_EQ(memory_.readByte(0xa000 + i), 0u);
}

// Table I, row "Disarm", token bit unset: raise exception.
TEST_P(RestL1CacheTest, DisarmUnarmedFaults)
{
    l1_->loadAccess(0xb000, 8, 0);
    RestAccess res = l1_->disarmAccess(0xb000, 10);
    EXPECT_EQ(res.violation, core::ViolationKind::DisarmUnarmed);
}

// Table I, row "Disarm", miss path: fetch line (detector restores the
// bit), proceed as hit.
TEST_P(RestL1CacheTest, DisarmOnMissFetchesThenClears)
{
    writeTokenToMemory(0xc000);
    RestAccess res = l1_->disarmAccess(0xc000, 0);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.faulted());
    EXPECT_FALSE(l1_->tokenBitSet(0xc000));
}

// Arm/evict/refill round trip: the token survives eviction and the
// detector re-tags the line on the way back in.
TEST_P(RestL1CacheTest, TokenSurvivesEvictionRoundTrip)
{
    l1_->armAccess(0xd000, 0);
    l1_->flushAll();
    EXPECT_FALSE(l1_->lineResident(0xd000));
    RestAccess res = l1_->loadAccess(0xd000, 8, 1000);
    EXPECT_EQ(res.violation, core::ViolationKind::TokenAccess);
    EXPECT_TRUE(l1_->tokenBitSet(0xd000));
}

// Sub-line widths: arming one granule must not poison its neighbours.
TEST_P(RestL1CacheTest, NeighbourGranulesUnaffected)
{
    if (g() == 64)
        return;
    Addr line = 0xe000;
    l1_->armAccess(line + g(), 0);
    EXPECT_FALSE(l1_->tokenBitSet(line));
    EXPECT_TRUE(l1_->tokenBitSet(line + g()));
    EXPECT_FALSE(l1_->loadAccess(line, 8, 10).faulted());
    EXPECT_TRUE(l1_->loadAccess(line + g(), 8, 10).faulted());
}

INSTANTIATE_TEST_SUITE_P(Widths, RestL1CacheTest,
                         ::testing::Values(core::TokenWidth::Bytes16,
                                           core::TokenWidth::Bytes32,
                                           core::TokenWidth::Bytes64));

} // namespace rest::mem
