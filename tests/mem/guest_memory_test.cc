#include <gtest/gtest.h>

#include <array>

#include "mem/guest_memory.hh"

namespace rest::mem
{

TEST(GuestMemory, UntouchedReadsZero)
{
    GuestMemory m;
    EXPECT_EQ(m.read(0x123456, 8), 0u);
    EXPECT_EQ(m.readByte(0xdeadbeef), 0u);
    EXPECT_EQ(m.pagesTouched(), 0u);
}

TEST(GuestMemory, ReadWriteRoundTrip)
{
    GuestMemory m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.readByte(0x1007), 0x11u);
}

TEST(GuestMemory, CrossPageAccess)
{
    GuestMemory m;
    Addr boundary = GuestMemory::pageSize - 4;
    m.write(boundary, 0xaabbccddeeff0011ull, 8);
    EXPECT_EQ(m.read(boundary, 8), 0xaabbccddeeff0011ull);
    EXPECT_EQ(m.pagesTouched(), 2u);
}

TEST(GuestMemory, FillAndBytes)
{
    GuestMemory m;
    m.fill(0x2000, 0xa5, 128);
    std::array<std::uint8_t, 128> buf;
    m.readBytes(0x2000, buf);
    for (auto b : buf)
        EXPECT_EQ(b, 0xa5u);
    EXPECT_EQ(m.readByte(0x2000 + 128), 0u);
}

TEST(GuestMemory, WriteBytesSpan)
{
    GuestMemory m;
    std::array<std::uint8_t, 5> data = {1, 2, 3, 4, 5};
    m.writeBytes(0x3000, data);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(m.readByte(0x3000 + i), i + 1);
}

TEST(GuestMemory, SparseHighAddresses)
{
    GuestMemory m;
    // Shadow region and MMIO-range addresses work out of the box.
    m.write(0x100000000000ull, 42, 8);
    EXPECT_EQ(m.read(0x100000000000ull, 8), 42u);
    EXPECT_EQ(m.pagesTouched(), 1u);
}

} // namespace rest::mem
