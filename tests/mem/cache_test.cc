#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace rest::mem
{

namespace
{

CacheConfig
tinyCache(Cycles latency = 2)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sizeBytes = 1024; // 16 lines
    cfg.assoc = 2;
    cfg.blockSize = 64;
    cfg.latency = latency;
    cfg.numMshrs = 2;
    return cfg;
}

} // namespace

TEST(Cache, HitAfterFill)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    Cycles t1 = c.access(0x1000, false, 0);
    EXPECT_FALSE(c.lastWasHit());
    EXPECT_GT(t1, 2u); // paid the DRAM trip
    Cycles t2 = c.access(0x1010, false, t1);
    EXPECT_TRUE(c.lastWasHit());
    EXPECT_EQ(t2, t1 + 2);
    EXPECT_EQ(c.statGroup().scalarValue("hits"), 1u);
    EXPECT_EQ(c.statGroup().scalarValue("misses"), 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000, false, 0);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x103f));
    EXPECT_FALSE(c.probe(0x1040));
}

TEST(Cache, LruEviction)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    // 8 sets; lines 0x0000, 0x0200, 0x0400 map to set 0 (2-way).
    c.access(0x0000, false, 0);
    c.access(0x0200, false, 100);
    c.access(0x0000, false, 200); // touch: 0x0200 becomes LRU
    c.access(0x0400, false, 300); // evicts 0x0200
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0200));
    EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    c.access(0x0000, true, 0); // dirty
    c.access(0x0200, false, 100);
    c.access(0x0400, false, 200); // evicts dirty 0x0000
    EXPECT_EQ(c.statGroup().scalarValue("writebacks"), 1u);
    EXPECT_EQ(dram.statGroup().scalarValue("writes"), 1u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    c.access(0x0000, false, 0);
    c.access(0x0200, false, 100);
    c.access(0x0400, false, 200);
    EXPECT_EQ(c.statGroup().scalarValue("writebacks"), 0u);
}

TEST(Cache, MshrMergeOfConcurrentMisses)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    Cycles t1 = c.access(0x1000, false, 0);
    // Second access to the same missing line right away merges.
    Cycles t2 = c.access(0x1020, false, 1);
    EXPECT_LE(t2, t1);
    EXPECT_EQ(c.statGroup().scalarValue("mshr_merges"), 1u);
}

TEST(Cache, MshrExhaustionStalls)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    // numMshrs = 2: a third concurrent miss must wait.
    c.access(0x1000, false, 0);
    c.access(0x2000, false, 0);
    c.access(0x3000, false, 0);
    EXPECT_GT(c.statGroup().scalarValue("mshr_stall_cycles"), 0u);
}

TEST(Cache, TwoLevelHierarchy)
{
    Dram dram;
    Cache l2(CacheConfig::l2(), dram);
    Cache l1(CacheConfig::l1d(), l2);
    Cycles cold = l1.access(0x8000, false, 0);
    // L2 now has it; evict from L1 and re-access: L2-hit latency.
    l1.flushAll();
    Cycles warm = l1.access(0x8000, false, cold);
    EXPECT_LT(warm - cold, cold);
    EXPECT_GE(warm - cold, 20u); // at least the L2 latency
}

TEST(Cache, FlushAllInvalidates)
{
    Dram dram;
    Cache c(tinyCache(), dram);
    c.access(0x1000, true, 0);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.statGroup().scalarValue("writebacks"), 1u);
}

TEST(Dram, BandwidthQueueing)
{
    DramConfig cfg;
    cfg.accessLatency = 100;
    cfg.servicePeriod = 10;
    Dram dram(cfg);
    Cycles a = dram.access(0, false, 0);
    Cycles b = dram.access(64, false, 0);
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 110u); // queued behind the first
    EXPECT_EQ(dram.statGroup().scalarValue("queue_cycles"), 10u);
}

} // namespace rest::mem
