#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hh"

namespace rest::util
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, EachTaskRunsExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(200);
    for (auto &h : hits)
        h = 0;
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 20 * (batch + 1));
    }
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, SubmitFromWorkerThread)
{
    // Work-stealing pools must accept nested submission (a sweep job
    // spawning follow-up work) without deadlocking.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

// ---------------------------------------------------------------------
// Fault tolerance: throwing tasks (the historical deadlock: a task
// exception skipped the pending_ decrement and wait() hung forever).
// ---------------------------------------------------------------------

TEST(ThreadPool, ThrowingTaskDoesNotDeadlockWait)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&count, i] {
            ++count;
            if (i == 17)
                throw std::runtime_error("task 17 failed");
        });
    }
    // Every task (including the thrower) must complete, and wait()
    // must return — by throwing — rather than hang.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitRethrowsTheTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "boom");
    }
}

TEST(ThreadPool, PoolIsReusableAfterAFailedBatch)
{
    ThreadPool pool(4);
    pool.submit([] { throw std::runtime_error("first batch"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The failure record is cleared; a clean batch runs normally.
    std::atomic<int> count{0};
    for (int i = 0; i < 30; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 30);
    EXPECT_EQ(pool.taskFailures(), 0u);
}

TEST(ThreadPool, AllFailuresAreCountedFirstIsRethrown)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&count, i] {
            ++count;
            if (i % 4 == 0)
                throw std::runtime_error("fail " + std::to_string(i));
        });
    }
    // Let the batch drain without consuming the failures yet: poll
    // the failure counter until all 20 tasks ran.
    while (count.load() < 20) {}
    // wait() rethrows one and clears the rest.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(pool.taskFailures(), 0u);
}

TEST(ThreadPool, ThrowingTasksMixedWithNestedSubmission)
{
    // Stress: workers that throw while other workers submit nested
    // work. The completion accounting must survive both at once.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&pool, &count, i] {
            if (i % 2 == 0) {
                pool.submit([&count] { ++count; });
            }
            if (i % 8 == 3)
                throw std::runtime_error("mixed failure");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 32);

    // And a clean follow-up batch still works.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 33);
}

TEST(ThreadPool, NonExceptionThrowIsCaptured)
{
    ThreadPool pool(2);
    pool.submit([] { throw 42; });
    EXPECT_THROW(pool.wait(), int);
}

// ---------------------------------------------------------------------
// Telemetry gauges (DESIGN.md Â§12)
// ---------------------------------------------------------------------

TEST(ThreadPool, PublishesQueueAndWorkerGauges)
{
    telemetry::MetricRegistry registry;
    std::atomic<bool> release{false};
    {
        ThreadPool pool(2);
        pool.publishMetrics(registry, "sweep");

        std::string text = registry.prometheusText();
        EXPECT_NE(text.find("rest_pool_threads{pool=\"sweep\"} 2\n"),
                  std::string::npos);
        EXPECT_NE(
            text.find("rest_pool_queue_depth{pool=\"sweep\"} 0\n"),
            std::string::npos);
        EXPECT_NE(
            text.find("rest_pool_active_workers{pool=\"sweep\"} 0\n"),
            std::string::npos);

        // Block both workers first (workers pop their own deque LIFO,
        // so filler submitted too early would run before the
        // blockers), then pile work up behind them: active rises to
        // the worker count and the queue is non-empty.
        std::atomic<int> started{0};
        for (int i = 0; i < 2; ++i)
            pool.submit([&] {
                ++started;
                while (!release.load()) {}
            });
        while (started.load() < 2) {}
        for (int i = 0; i < 8; ++i)
            pool.submit([] {});
        EXPECT_EQ(pool.activeWorkers(), 2u);
        EXPECT_GT(pool.queueDepth(), 0u);
        text = registry.prometheusText();
        EXPECT_NE(
            text.find("rest_pool_active_workers{pool=\"sweep\"} 2\n"),
            std::string::npos);

        // After wait(), the depth has drained to zero and no worker
        // is active.
        release = true;
        pool.wait();
        EXPECT_EQ(pool.queueDepth(), 0u);
        EXPECT_EQ(pool.activeWorkers(), 0u);
        text = registry.prometheusText();
        EXPECT_NE(
            text.find("rest_pool_queue_depth{pool=\"sweep\"} 0\n"),
            std::string::npos);
        EXPECT_NE(
            text.find("rest_pool_active_workers{pool=\"sweep\"} 0\n"),
            std::string::npos);
    }
    // Destruction unregisters the callbacks: the family headers stay,
    // the instances are gone, and a scrape cannot touch a dead pool.
    std::string text = registry.prometheusText();
    EXPECT_EQ(text.find("rest_pool_threads{"), std::string::npos);
    EXPECT_EQ(text.find("rest_pool_queue_depth{"), std::string::npos);
    EXPECT_EQ(text.find("rest_pool_active_workers{"),
              std::string::npos);
}

TEST(ThreadPool, GaugesTrackAcrossBatches)
{
    telemetry::MetricRegistry registry;
    ThreadPool pool(3);
    pool.publishMetrics(registry, "batch");
    for (int batch = 0; batch < 3; ++batch) {
        std::atomic<int> count{0};
        for (int i = 0; i < 30; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 30);
        EXPECT_EQ(pool.queueDepth(), 0u);
        EXPECT_EQ(pool.activeWorkers(), 0u);
    }
}

} // namespace rest::util
