#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "util/thread_pool.hh"

namespace rest::util
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadStillWorks)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, EachTaskRunsExactlyOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(200);
    for (auto &h : hits)
        h = 0;
    for (std::size_t i = 0; i < hits.size(); ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 20 * (batch + 1));
    }
}

TEST(ThreadPool, WaitWithNothingSubmittedReturns)
{
    ThreadPool pool(2);
    pool.wait();
    SUCCEED();
}

TEST(ThreadPool, SubmitFromWorkerThread)
{
    // Work-stealing pools must accept nested submission (a sweep job
    // spawning follow-up work) without deadlocking.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

} // namespace rest::util
