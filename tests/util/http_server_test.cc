#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "common/http_client.hh"
#include "util/http_server.hh"

namespace rest::telemetry
{

using test::httpGet;
using test::httpRaw;

namespace
{

/** A server with one echo-ish route, started on an ephemeral port. */
class HttpServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server.route("/hello", [this](const HttpRequest &req) {
            ++hits;
            HttpResponse r;
            r.contentType = "text/plain; charset=utf-8";
            r.body = "hello " + req.method + " " + req.path + "\n";
            return r;
        });
        ASSERT_TRUE(server.start(0));
        ASSERT_NE(server.port(), 0);
    }

    HttpServer server;
    std::atomic<int> hits{0};
};

} // namespace

TEST_F(HttpServerTest, GetKnownRoute)
{
    auto resp = httpGet(server.port(), "/hello");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "hello GET /hello\n");
    EXPECT_NE(resp.headers.find("Connection: close"),
              std::string::npos);
    EXPECT_NE(resp.headers.find("Content-Length: 17"),
              std::string::npos);
    EXPECT_EQ(hits.load(), 1);
}

TEST_F(HttpServerTest, QueryStringIsStripped)
{
    auto resp = httpGet(server.port(), "/hello?x=1&y=2");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "hello GET /hello\n");
}

TEST_F(HttpServerTest, UnknownRouteIs404)
{
    auto resp = httpGet(server.port(), "/nope");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 404);
    EXPECT_EQ(hits.load(), 0);
}

TEST_F(HttpServerTest, NonGetIs405)
{
    auto resp = httpRaw(server.port(),
                        "POST /hello HTTP/1.1\r\n"
                        "Host: x\r\nContent-Length: 0\r\n\r\n");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 405);
    EXPECT_EQ(hits.load(), 0);
}

TEST_F(HttpServerTest, HeadGetsHeadersOnly)
{
    auto resp = httpRaw(server.port(),
                        "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 200);
    EXPECT_TRUE(resp.body.empty());
    EXPECT_EQ(hits.load(), 1); // the handler still ran
}

TEST_F(HttpServerTest, MalformedRequestIs400)
{
    auto resp = httpRaw(server.port(), "nonsense\r\n\r\n");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 400);
}

TEST_F(HttpServerTest, ServesManySequentialRequests)
{
    for (int i = 0; i < 20; ++i) {
        auto resp = httpGet(server.port(), "/hello");
        ASSERT_TRUE(resp.ok) << "request " << i;
        EXPECT_EQ(resp.status, 200);
    }
    EXPECT_EQ(hits.load(), 20);
}

TEST_F(HttpServerTest, StopIsIdempotentAndJoins)
{
    EXPECT_TRUE(server.running());
    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // idempotent
    // A connect after stop must fail (nothing is listening).
    auto resp = httpGet(server.port(), "/hello");
    EXPECT_FALSE(resp.ok);
}

TEST(HttpServer, PortTakenFailsGracefully)
{
    HttpServer a;
    ASSERT_TRUE(a.start(0));
    HttpServer b;
    // Same fixed port: bind fails, start() warns and returns false,
    // the process carries on.
    EXPECT_FALSE(b.start(a.port()));
    EXPECT_FALSE(b.running());
}

TEST(HttpServer, TwoServersOnEphemeralPorts)
{
    HttpServer a, b;
    a.route("/which", [](const HttpRequest &) {
        return HttpResponse{200, "text/plain", "a"};
    });
    b.route("/which", [](const HttpRequest &) {
        return HttpResponse{200, "text/plain", "b"};
    });
    ASSERT_TRUE(a.start(0));
    ASSERT_TRUE(b.start(0));
    EXPECT_NE(a.port(), b.port());
    EXPECT_EQ(httpGet(a.port(), "/which").body, "a");
    EXPECT_EQ(httpGet(b.port(), "/which").body, "b");
}

} // namespace rest::telemetry
