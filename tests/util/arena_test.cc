/**
 * @file
 * Unit tests for the block-recycling bump allocator behind the
 * fast-functional driver and the decode cache: alignment, block
 * growth, oversized requests, and — the property the fast path's
 * steady state depends on — reset() recycling blocks so a stable
 * allocation pattern gets the same addresses with no new memory.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hh"

namespace rest::util
{

TEST(Arena, AllocationsAreAlignedAndDisjoint)
{
    Arena arena(256);
    void *a = arena.allocate(24, 8);
    void *b = arena.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
    EXPECT_NE(a, b);
    // Writing one allocation must not disturb the other.
    std::memset(a, 0xaa, 24);
    std::memset(b, 0x55, 24);
    EXPECT_EQ(static_cast<unsigned char *>(a)[23], 0xaa);
    EXPECT_EQ(static_cast<unsigned char *>(b)[0], 0x55);
}

TEST(Arena, GrowsBlocksOnDemand)
{
    Arena arena(64);
    for (int i = 0; i < 16; ++i)
        arena.allocate(48, 8);
    EXPECT_GT(arena.blockCount(), 1u);
    EXPECT_GE(arena.bytesReserved(), 16u * 48u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock)
{
    Arena arena(64);
    void *p = arena.allocate(1000, 16);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, 1000); // ASan catches any short block
    EXPECT_GE(arena.bytesReserved(), 1000u);
}

TEST(Arena, ResetRecyclesBlocksWithSameAddresses)
{
    Arena arena(1u << 12);
    std::vector<void *> first;
    for (int i = 0; i < 32; ++i)
        first.push_back(arena.allocate(100, 8));
    const std::size_t blocks = arena.blockCount();
    const std::size_t reserved = arena.bytesReserved();

    for (int round = 0; round < 5; ++round) {
        arena.reset();
        for (int i = 0; i < 32; ++i) {
            // Identical pattern after reset(): identical addresses,
            // no new blocks — the steady state is allocation-free.
            EXPECT_EQ(arena.allocate(100, 8), first[std::size_t(i)]);
        }
        EXPECT_EQ(arena.blockCount(), blocks);
        EXPECT_EQ(arena.bytesReserved(), reserved);
    }
    EXPECT_EQ(arena.resets(), 5u);
}

TEST(Arena, AllocDefaultConstructsElements)
{
    struct PodLike
    {
        std::uint64_t a = 0x1234;
        std::uint32_t b = 7;
    };
    Arena arena;
    PodLike *p = arena.alloc<PodLike>(100);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(p[i].a, 0x1234u);
        EXPECT_EQ(p[i].b, 7u);
    }
    // Dirty the storage, rewind, reallocate: NSDMIs must be fresh
    // again (the fast path relies on clean DynOps every batch).
    for (std::size_t i = 0; i < 100; ++i)
        p[i].a = 0;
    arena.reset();
    PodLike *q = arena.alloc<PodLike>(100);
    EXPECT_EQ(q, p);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(q[i].a, 0x1234u);
}

TEST(Arena, ReleaseReturnsMemory)
{
    Arena arena(128);
    arena.allocate(100, 8);
    arena.allocate(100, 8);
    EXPECT_GT(arena.blockCount(), 0u);
    arena.release();
    EXPECT_EQ(arena.blockCount(), 0u);
    EXPECT_EQ(arena.bytesReserved(), 0u);
    // Still usable after release.
    void *p = arena.allocate(64, 8);
    EXPECT_NE(p, nullptr);
}

} // namespace rest::util
