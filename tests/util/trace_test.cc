/**
 * @file
 * Unit tests for rest::trace: flag parsing, the debug window, the
 * bounded event ring, sink installation (thread-local vs global),
 * DPRINTF gating, Chrome trace-event serialisation and the O3PipeView
 * line format.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/json_reader.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace rest::trace
{

using test::JsonParser;
using test::JsonValue;

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

TEST(TraceFlags, ParseSingleAndList)
{
    FlagMask mask = 0;
    ASSERT_TRUE(parseFlags("O3Pipe", &mask));
    EXPECT_EQ(mask, flagBit(Flag::O3Pipe));

    ASSERT_TRUE(parseFlags("Cache,TokenDetect,Sweep", &mask));
    EXPECT_EQ(mask, flagBit(Flag::Cache) | flagBit(Flag::TokenDetect) |
                        flagBit(Flag::Sweep));
}

TEST(TraceFlags, ParseAllAndEmpty)
{
    FlagMask mask = 0;
    ASSERT_TRUE(parseFlags("All", &mask));
    EXPECT_EQ(mask, allFlags);
    ASSERT_TRUE(parseFlags("all", &mask));
    EXPECT_EQ(mask, allFlags);

    ASSERT_TRUE(parseFlags("", &mask));
    EXPECT_EQ(mask, 0u);
    ASSERT_TRUE(parseFlags(",Alloc,,", &mask)); // stray commas tolerated
    EXPECT_EQ(mask, flagBit(Flag::Alloc));
}

TEST(TraceFlags, UnknownNameRejectedAndOutputUntouched)
{
    FlagMask mask = 0xdead;
    EXPECT_FALSE(parseFlags("Cache,NoSuchFlag", &mask));
    EXPECT_EQ(mask, 0xdeadu);
}

TEST(TraceFlags, EveryFlagRoundTripsThroughItsName)
{
    for (unsigned i = 0; i < numFlags; ++i) {
        Flag f = static_cast<Flag>(i);
        FlagMask mask = 0;
        ASSERT_TRUE(parseFlags(flagName(f), &mask)) << flagName(f);
        EXPECT_EQ(mask, flagBit(f));
    }
}

TEST(TraceFlags, FromEnvReadsRestDebugFlags)
{
    ::setenv("REST_DEBUG_FLAGS", "Cache,Alloc", 1);
    EXPECT_EQ(TraceConfig::fromEnv().flags,
              flagBit(Flag::Cache) | flagBit(Flag::Alloc));

    ::setenv("REST_DEBUG_FLAGS", "Bogus", 1);
    EXPECT_EQ(TraceConfig::fromEnv().flags, 0u); // warns, stays off

    ::unsetenv("REST_DEBUG_FLAGS");
    EXPECT_EQ(TraceConfig::fromEnv().flags, 0u);
}

// ---------------------------------------------------------------------
// Window + gating
// ---------------------------------------------------------------------

TEST(TraceSinkTest, FlagOnHonoursMaskAndWindow)
{
    TraceConfig cfg;
    cfg.flags = flagBit(Flag::Cache);
    cfg.debugStart = 100;
    cfg.debugEnd = 200;
    TraceSink sink(cfg);

    EXPECT_TRUE(sink.flagEnabled(Flag::Cache));
    EXPECT_FALSE(sink.flagEnabled(Flag::O3Pipe));

    EXPECT_FALSE(sink.flagOn(Flag::Cache, 99));
    EXPECT_TRUE(sink.flagOn(Flag::Cache, 100));
    EXPECT_TRUE(sink.flagOn(Flag::Cache, 200));
    EXPECT_FALSE(sink.flagOn(Flag::Cache, 201));
    EXPECT_FALSE(sink.flagOn(Flag::O3Pipe, 150));
}

TEST(TraceSinkTest, InactiveConfigIsInactive)
{
    TraceConfig cfg;
    EXPECT_FALSE(cfg.active());
    cfg.flags = flagBit(Flag::Sweep);
    EXPECT_TRUE(cfg.active());

    TraceConfig stats_only;
    stats_only.statsEvery = 100;
    EXPECT_TRUE(stats_only.active());

    TraceConfig out_only;
    out_only.traceOutPath = "t.json";
    EXPECT_TRUE(out_only.active());
}

TEST(TraceSinkTest, DprintfGatesOnFlagAndWindow)
{
    std::ostringstream text;
    TraceConfig cfg;
    cfg.flags = flagBit(Flag::Cache);
    cfg.debugStart = 10;
    cfg.messageStream = &text;
    TraceSink sink(cfg);
    ScopedSink scoped(&sink);

    REST_DPRINTF(Flag::Cache, 5, "l1d", "too early");   // before window
    REST_DPRINTF(Flag::O3Pipe, 20, "o3cpu", "flag off");
    REST_DPRINTF(Flag::Cache, 42, "l1d", "miss addr=", 7);

    EXPECT_EQ(text.str(), "42: l1d: miss addr=7\n");
}

TEST(TraceSinkTest, DprintfIsNoopWithoutSink)
{
    // No sink installed: must not crash, must evaluate nothing.
    ASSERT_EQ(sink(), nullptr);
    bool evaluated = false;
    auto touch = [&evaluated] {
        evaluated = true;
        return 1;
    };
    REST_DPRINTF(Flag::Cache, 0, "l1d", touch());
    EXPECT_FALSE(evaluated);
}

// ---------------------------------------------------------------------
// Event ring
// ---------------------------------------------------------------------

TEST(TraceSinkTest, RingKeepsNewestAndCountsDrops)
{
    TraceConfig cfg;
    cfg.flags = flagBit(Flag::Cache);
    cfg.ringCapacity = 4;
    TraceSink sink(cfg);

    for (std::uint64_t i = 0; i < 10; ++i)
        sink.instant(Flag::Cache, 0, "ev", i, "i", i);

    EXPECT_EQ(sink.eventsRecorded(), 10u);
    EXPECT_EQ(sink.eventsDropped(), 6u);
    auto evs = sink.events();
    ASSERT_EQ(evs.size(), 4u);
    // Chronological order, newest four retained.
    for (std::size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].start, 6 + i);
}

TEST(TraceSinkTest, TrackIdsAreStablePerComponent)
{
    TraceSink sink(TraceConfig{});
    std::uint32_t l1d = sink.trackFor("l1d");
    std::uint32_t l2 = sink.trackFor("l2");
    EXPECT_NE(l1d, l2);
    EXPECT_EQ(sink.trackFor("l1d"), l1d);
    auto names = sink.trackNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[l1d], "l1d");
    EXPECT_EQ(names[l2], "l2");
}

// ---------------------------------------------------------------------
// Sink installation
// ---------------------------------------------------------------------

TEST(TraceSinkTest, ScopedSinkInstallsAndRestores)
{
    ASSERT_EQ(sink(), nullptr);
    TraceSink a(TraceConfig{});
    TraceSink b(TraceConfig{});
    {
        ScopedSink sa(&a);
        EXPECT_EQ(sink(), &a);
        {
            ScopedSink sb(&b);
            EXPECT_EQ(sink(), &b);
        }
        EXPECT_EQ(sink(), &a);
    }
    EXPECT_EQ(sink(), nullptr);
}

TEST(TraceSinkTest, GlobalSinkIsFallbackOnly)
{
    TraceSink global(TraceConfig{});
    TraceSink local(TraceConfig{});
    ASSERT_EQ(setGlobalSink(&global), nullptr);
    EXPECT_EQ(sink(), &global);
    {
        // A thread-local sink shadows the global one.
        ScopedSink scoped(&local);
        EXPECT_EQ(sink(), &local);
    }
    EXPECT_EQ(sink(), &global);

    // Other threads see the global sink, not this thread's TLS.
    TraceSink *seen = nullptr;
    ScopedSink scoped(&local);
    std::thread([&seen] { seen = sink(); }).join();
    EXPECT_EQ(seen, &global);

    EXPECT_EQ(setGlobalSink(nullptr), &global);
    EXPECT_EQ(sink(), &local);
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

TEST(ChromeTrace, SerialisesValidJsonWithTracksAndPhases)
{
    TraceConfig cfg;
    cfg.flags = flagBit(Flag::Cache) | flagBit(Flag::TokenDetect);
    TraceSink sink(cfg);
    std::uint32_t l1d = sink.trackFor("l1d");
    sink.complete(Flag::Cache, l1d, "fill", 10, 150, "line", 0x1000);
    sink.instant(Flag::TokenDetect, l1d, "token_detect", 150,
                 "token_bits", 3);
    sink.counter(Flag::Cache, l1d, "mshrs", 150, 2);

    std::ostringstream os;
    sink.writeChromeTrace(os);

    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << os.str();
    EXPECT_EQ(root.at("displayTimeUnit").str, "ns");
    EXPECT_EQ(root.at("droppedEvents").number, 0);

    const auto &evs = root.at("traceEvents");
    ASSERT_EQ(evs.kind, JsonValue::Array);
    ASSERT_EQ(evs.items.size(), 4u); // 1 metadata + 3 events

    const auto &meta = evs.items[0];
    EXPECT_EQ(meta.at("ph").str, "M");
    EXPECT_EQ(meta.at("name").str, "thread_name");
    EXPECT_EQ(meta.at("args").at("name").str, "l1d");

    const auto &fill = evs.items[1];
    EXPECT_EQ(fill.at("ph").str, "X");
    EXPECT_EQ(fill.at("name").str, "fill");
    EXPECT_EQ(fill.at("cat").str, "Cache");
    EXPECT_EQ(fill.at("ts").number, 10);
    EXPECT_EQ(fill.at("dur").number, 140);
    EXPECT_EQ(fill.at("args").at("line").number, 0x1000);

    const auto &inst = evs.items[2];
    EXPECT_EQ(inst.at("ph").str, "i");
    EXPECT_EQ(inst.at("s").str, "t");
    EXPECT_EQ(inst.at("cat").str, "TokenDetect");

    const auto &ctr = evs.items[3];
    EXPECT_EQ(ctr.at("ph").str, "C");
    EXPECT_EQ(ctr.at("args").at("value").number, 2);
}

TEST(ChromeTrace, StatSnapshotsBecomeCounterSamples)
{
    TraceConfig cfg;
    cfg.statsEvery = 100;
    TraceSink sink(cfg);

    stats::StatGroup group("cpu");
    auto &ops = group.addScalar("ops", "");
    sink.registerStatGroup(&group);

    ops += 7;
    sink.statsTick(100);
    ops += 5;
    sink.flushStats(150);

    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    ASSERT_TRUE(parser.ok()) << os.str();

    const auto &evs = root.at("traceEvents");
    ASSERT_EQ(evs.items.size(), 2u);
    EXPECT_EQ(evs.items[0].at("ph").str, "C");
    EXPECT_EQ(evs.items[0].at("cat").str, "stats");
    EXPECT_EQ(evs.items[0].at("name").str, "cpu.ops");
    EXPECT_EQ(evs.items[0].at("ts").number, 100);
    EXPECT_EQ(evs.items[0].at("args").at("value").number, 7);
    EXPECT_EQ(evs.items[1].at("ts").number, 150);
    EXPECT_EQ(evs.items[1].at("args").at("value").number, 5);
}

TEST(ChromeTrace, WriteFileRejectsBadPath)
{
    TraceSink sink(TraceConfig{});
    EXPECT_FALSE(sink.writeChromeTraceFile("/nonexistent-dir/t.json"));
    EXPECT_FALSE(sink.writePipeViewFile("/nonexistent-dir/p.out"));
}

// ---------------------------------------------------------------------
// O3PipeView export
// ---------------------------------------------------------------------

TEST(PipeView, GoldenLineFormat)
{
    TraceSink sink(TraceConfig{});
    PipeRecord rec;
    rec.seq = 3;
    rec.pc = 0x400010;
    rec.disasm = "ld";
    rec.fetch = 100;
    rec.decode = 101;
    rec.rename = 102;
    rec.dispatch = 104;
    rec.issue = 105;
    rec.complete = 109;
    rec.retire = 110;
    rec.storeComplete = 0;
    sink.pipeView(rec);

    std::ostringstream os;
    sink.writePipeView(os);
    EXPECT_EQ(os.str(),
              "O3PipeView:fetch:100:0x00400010:0:3:ld\n"
              "O3PipeView:decode:101\n"
              "O3PipeView:rename:102\n"
              "O3PipeView:dispatch:104\n"
              "O3PipeView:issue:105\n"
              "O3PipeView:complete:109\n"
              "O3PipeView:retire:110:store:0\n");
}

TEST(PipeView, CapacityBoundsRecords)
{
    TraceConfig cfg;
    cfg.pipeCapacity = 2;
    TraceSink sink(cfg);
    for (std::uint64_t i = 0; i < 5; ++i) {
        PipeRecord rec;
        rec.seq = i;
        sink.pipeView(rec);
    }
    auto recs = sink.pipeRecords();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].seq, 0u);
    EXPECT_EQ(recs[1].seq, 1u);
}

} // namespace rest::trace
