#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hh"

namespace rest::stats
{

TEST(Stats, ScalarBasics)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("counter", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    EXPECT_EQ(g.scalarValue("counter"), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, MissingScalarReadsZero)
{
    StatGroup g("grp");
    EXPECT_EQ(g.scalarValue("nope"), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("lat", "latencies",
                                        {10, 100, 1000});
    for (std::uint64_t v : {5u, 50u, 500u, 5000u})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.minValue(), 5u);
    EXPECT_EQ(d.maxValue(), 5000u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 50 + 500 + 5000) / 4.0);
    ASSERT_EQ(d.buckets().size(), 4u);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 1u); // one sample per bucket
}

TEST(Stats, DistributionEdgeValueLandsInEdgeBucket)
{
    // Edges are inclusive upper bounds: a sample exactly on an edge
    // belongs to that edge's bucket, never the next one.
    Distribution d;
    d.init({10, 100, 1000});
    d.sample(10);
    d.sample(100);
    d.sample(1000);
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[2], 1u);
    EXPECT_EQ(d.buckets()[3], 0u);
}

TEST(Stats, DistributionOverflowBucketCatchesAboveLastEdge)
{
    Distribution d;
    d.init({10});
    d.sample(11);
    d.sample(~std::uint64_t(0));
    ASSERT_EQ(d.buckets().size(), 2u);
    EXPECT_EQ(d.buckets()[0], 0u);
    EXPECT_EQ(d.buckets()[1], 2u);
    // Every sample is in exactly one bucket.
    EXPECT_EQ(d.buckets()[0] + d.buckets()[1], d.count());
}

TEST(Stats, DistributionZeroSampleAndZeroEdge)
{
    Distribution d;
    d.init({0, 10});
    d.sample(0); // exactly on the 0 edge -> first bucket
    ASSERT_EQ(d.buckets().size(), 3u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.minValue(), 0u);
    EXPECT_EQ(d.maxValue(), 0u);
}

TEST(Stats, DistributionNonAscendingEdgesDie)
{
    Distribution d;
    EXPECT_DEATH(d.init({10, 10}), "ascending");
    EXPECT_DEATH(d.init({100, 10}), "ascending");
}

TEST(Stats, DistributionUninitialisedStillCountsDeterministically)
{
    // Never init()ed: behaves as one overflow bucket.
    Distribution d;
    d.sample(7);
    d.sample(9);
    EXPECT_EQ(d.count(), 2u);
    ASSERT_EQ(d.buckets().size(), 1u);
    EXPECT_EQ(d.buckets()[0], 2u);
}

TEST(Stats, ForEachScalarVisitsEachExactlyOnce)
{
    StatGroup g("grp");
    g.addScalar("b", "") += 2;
    g.addScalar("a", "") += 1;
    g.addScalar("c", "") += 3;

    std::map<std::string, unsigned> visits;
    std::vector<std::string> order;
    g.forEachScalar([&](const std::string &name, std::uint64_t value) {
        ++visits[name];
        order.push_back(name);
        EXPECT_EQ(value, g.scalarValue(name.substr(4)));
    });

    ASSERT_EQ(visits.size(), 3u);
    for (const auto &[name, n] : visits)
        EXPECT_EQ(n, 1u) << name;
    // Stable lexicographic order (the results layer depends on it).
    EXPECT_EQ(order,
              (std::vector<std::string>{"grp.a", "grp.b", "grp.c"}));
}

TEST(Stats, SnapshotDeltasAndBoundaries)
{
    StatGroup g("cpu");
    Scalar &ops = g.addScalar("ops", "");
    g.dumpEvery(100);
    EXPECT_EQ(g.snapshotPeriod(), 100u);

    ops += 3;
    g.maybeSnapshot(99); // before the boundary: no snapshot
    EXPECT_TRUE(g.snapshots().empty());

    g.maybeSnapshot(100); // on the boundary
    ASSERT_EQ(g.snapshots().size(), 1u);
    EXPECT_EQ(g.snapshots()[0].cycle, 100u);
    EXPECT_EQ(g.snapshots()[0].deltas.at("cpu.ops"), 3u);

    ops += 5;
    g.maybeSnapshot(150); // inside the next interval: no snapshot
    EXPECT_EQ(g.snapshots().size(), 1u);

    // The clock jumping over several boundaries collapses them into
    // one snapshot at `now`, with the whole accumulated delta.
    ops += 2;
    g.maybeSnapshot(450);
    ASSERT_EQ(g.snapshots().size(), 2u);
    EXPECT_EQ(g.snapshots()[1].cycle, 450u);
    EXPECT_EQ(g.snapshots()[1].deltas.at("cpu.ops"), 7u);

    // Final flush; a duplicate at the same cycle is a no-op.
    ops += 1;
    g.takeSnapshot(500);
    g.takeSnapshot(500);
    ASSERT_EQ(g.snapshots().size(), 3u);
    EXPECT_EQ(g.snapshots()[2].deltas.at("cpu.ops"), 1u);

    // Deltas over the series sum to the scalar's final value.
    std::uint64_t total = 0;
    for (const auto &snap : g.snapshots())
        total += snap.deltas.at("cpu.ops");
    EXPECT_EQ(total, ops.value());
}

TEST(Stats, SnapshotDisabledByDefault)
{
    StatGroup g("grp");
    g.addScalar("s", "") += 1;
    EXPECT_EQ(g.snapshotPeriod(), 0u);
    g.maybeSnapshot(1000000);
    EXPECT_TRUE(g.snapshots().empty());
}

TEST(Stats, DistributionReset)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("x", "", {10});
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("grp");
    Scalar &num = g.addScalar("num", "");
    Scalar &den = g.addScalar("den", "");
    Formula &f = g.addFormula("ratio", "num/den", [&]() {
        return den.value() ? double(num.value()) / den.value() : 0.0;
    });
    num += 10;
    den += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    num += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("mygroup");
    g.addScalar("alpha", "first") += 7;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.alpha"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("first"), std::string::npos);
}

TEST(Stats, DuplicateRegistrationPanics)
{
    StatGroup g("grp");
    g.addScalar("dup", "");
    EXPECT_DEATH(g.addScalar("dup", ""), "duplicate");
}

TEST(Stats, ResetAllClearsEverything)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("s", "");
    Distribution &d = g.addDistribution("d", "", {5});
    s += 3;
    d.sample(2);
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace rest::stats
