#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hh"

namespace rest::stats
{

TEST(Stats, ScalarBasics)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("counter", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    EXPECT_EQ(g.scalarValue("counter"), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, MissingScalarReadsZero)
{
    StatGroup g("grp");
    EXPECT_EQ(g.scalarValue("nope"), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("lat", "latencies",
                                        {10, 100, 1000});
    for (std::uint64_t v : {5u, 50u, 500u, 5000u})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.minValue(), 5u);
    EXPECT_EQ(d.maxValue(), 5000u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 50 + 500 + 5000) / 4.0);
    ASSERT_EQ(d.buckets().size(), 4u);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 1u); // one sample per bucket
}

TEST(Stats, DistributionEdgeValueLandsInEdgeBucket)
{
    // Edges are inclusive upper bounds: a sample exactly on an edge
    // belongs to that edge's bucket, never the next one.
    Distribution d;
    d.init({10, 100, 1000});
    d.sample(10);
    d.sample(100);
    d.sample(1000);
    ASSERT_EQ(d.buckets().size(), 4u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[2], 1u);
    EXPECT_EQ(d.buckets()[3], 0u);
}

TEST(Stats, DistributionOverflowBucketCatchesAboveLastEdge)
{
    Distribution d;
    d.init({10});
    d.sample(11);
    d.sample(~std::uint64_t(0));
    ASSERT_EQ(d.buckets().size(), 2u);
    EXPECT_EQ(d.buckets()[0], 0u);
    EXPECT_EQ(d.buckets()[1], 2u);
    // Every sample is in exactly one bucket.
    EXPECT_EQ(d.buckets()[0] + d.buckets()[1], d.count());
}

TEST(Stats, DistributionZeroSampleAndZeroEdge)
{
    Distribution d;
    d.init({0, 10});
    d.sample(0); // exactly on the 0 edge -> first bucket
    ASSERT_EQ(d.buckets().size(), 3u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.minValue(), 0u);
    EXPECT_EQ(d.maxValue(), 0u);
}

TEST(Stats, DistributionNonAscendingEdgesDie)
{
    Distribution d;
    EXPECT_DEATH(d.init({10, 10}), "ascending");
    EXPECT_DEATH(d.init({100, 10}), "ascending");
}

TEST(Stats, DistributionUninitialisedStillCountsDeterministically)
{
    // Never init()ed: behaves as one overflow bucket.
    Distribution d;
    d.sample(7);
    d.sample(9);
    EXPECT_EQ(d.count(), 2u);
    ASSERT_EQ(d.buckets().size(), 1u);
    EXPECT_EQ(d.buckets()[0], 2u);
}

TEST(Stats, ForEachScalarVisitsEachExactlyOnce)
{
    StatGroup g("grp");
    g.addScalar("b", "") += 2;
    g.addScalar("a", "") += 1;
    g.addScalar("c", "") += 3;

    std::map<std::string, unsigned> visits;
    std::vector<std::string> order;
    g.forEachScalar([&](const std::string &name, std::uint64_t value) {
        ++visits[name];
        order.push_back(name);
        EXPECT_EQ(value, g.scalarValue(name.substr(4)));
    });

    ASSERT_EQ(visits.size(), 3u);
    for (const auto &[name, n] : visits)
        EXPECT_EQ(n, 1u) << name;
    // Stable lexicographic order (the results layer depends on it).
    EXPECT_EQ(order,
              (std::vector<std::string>{"grp.a", "grp.b", "grp.c"}));
}

TEST(Stats, SnapshotDeltasAndBoundaries)
{
    StatGroup g("cpu");
    Scalar &ops = g.addScalar("ops", "");
    g.dumpEvery(100);
    EXPECT_EQ(g.snapshotPeriod(), 100u);

    ops += 3;
    g.maybeSnapshot(99); // before the boundary: no snapshot
    EXPECT_TRUE(g.snapshots().empty());

    g.maybeSnapshot(100); // on the boundary
    ASSERT_EQ(g.snapshots().size(), 1u);
    EXPECT_EQ(g.snapshots()[0].cycle, 100u);
    EXPECT_EQ(g.snapshots()[0].deltas.at("cpu.ops"), 3u);

    ops += 5;
    g.maybeSnapshot(150); // inside the next interval: no snapshot
    EXPECT_EQ(g.snapshots().size(), 1u);

    // The clock jumping over several boundaries collapses them into
    // one snapshot at `now`, with the whole accumulated delta.
    ops += 2;
    g.maybeSnapshot(450);
    ASSERT_EQ(g.snapshots().size(), 2u);
    EXPECT_EQ(g.snapshots()[1].cycle, 450u);
    EXPECT_EQ(g.snapshots()[1].deltas.at("cpu.ops"), 7u);

    // Final flush; a duplicate at the same cycle is a no-op.
    ops += 1;
    g.takeSnapshot(500);
    g.takeSnapshot(500);
    ASSERT_EQ(g.snapshots().size(), 3u);
    EXPECT_EQ(g.snapshots()[2].deltas.at("cpu.ops"), 1u);

    // Deltas over the series sum to the scalar's final value.
    std::uint64_t total = 0;
    for (const auto &snap : g.snapshots())
        total += snap.deltas.at("cpu.ops");
    EXPECT_EQ(total, ops.value());
}

TEST(Stats, SnapshotDisabledByDefault)
{
    StatGroup g("grp");
    g.addScalar("s", "") += 1;
    EXPECT_EQ(g.snapshotPeriod(), 0u);
    g.maybeSnapshot(1000000);
    EXPECT_TRUE(g.snapshots().empty());
}

TEST(Stats, DistributionReset)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("x", "", {10});
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
}

TEST(Stats, PercentileEmptyDistributionIsZero)
{
    Distribution d;
    d.init({10, 100});
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 0.0);
}

TEST(Stats, PercentileSingleSample)
{
    Distribution d;
    d.init({10, 100});
    d.sample(42);
    // Every percentile of a single observation is that observation —
    // even though bucket resolution would otherwise say "edge 100".
    EXPECT_DOUBLE_EQ(d.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 42.0);
}

TEST(Stats, PercentileWalksBucketEdges)
{
    Distribution d;
    d.init({10, 100, 1000});
    // 10 samples: 4 in (..10], 3 in (10..100], 3 in (100..1000].
    for (std::uint64_t v : {1u, 2u, 3u, 4u})
        d.sample(v);
    for (std::uint64_t v : {50u, 60u, 70u})
        d.sample(v);
    for (std::uint64_t v : {500u, 600u, 700u})
        d.sample(v);
    // rank = ceil(p/100 * 10): p40 -> rank 4 (first bucket, edge 10),
    // p41 -> rank 5 (second bucket), p70 -> rank 7 (second bucket),
    // p71 -> rank 8 (third bucket).
    EXPECT_DOUBLE_EQ(d.percentile(40), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(41), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(70), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(71), 700.0); // edge 1000 clamps to max
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);    // min
    EXPECT_DOUBLE_EQ(d.percentile(100), 700.0); // max
}

TEST(Stats, PercentileFirstBucketClampsToMin)
{
    // All mass in the first bucket: the edge (10) overstates every
    // sample, but the estimate never leaves the observed range, so
    // the max clamp pulls the answer down to the observed max of 3.
    Distribution d;
    d.init({10, 100});
    d.sample(3);
    d.sample(3);
    EXPECT_DOUBLE_EQ(d.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(d.percentile(1), 3.0);
    // Max clamp likewise: rank 1 lands in bucket (10..100] whose edge
    // 100 exceeds the observed max 60, so the estimate is 60.
    Distribution e;
    e.init({10, 100});
    e.sample(50);
    e.sample(60);
    EXPECT_DOUBLE_EQ(e.percentile(50), 60.0);
}

TEST(Stats, PercentileOverflowBucketReportsMax)
{
    Distribution d;
    d.init({10});
    d.sample(5);
    d.sample(5000);
    d.sample(6000);
    // p100 and any rank landing in the overflow bucket give max, not
    // an unbounded edge.
    EXPECT_DOUBLE_EQ(d.percentile(100), 6000.0);
    EXPECT_DOUBLE_EQ(d.percentile(99), 6000.0);
    // rank ceil(0.33 * 3) = 1 stays in the first real bucket.
    EXPECT_DOUBLE_EQ(d.percentile(33), 10.0);
}

TEST(Stats, PercentileUninitialisedDistribution)
{
    // Never init()ed: one overflow bucket, so every percentile is
    // min/max-derived.
    Distribution d;
    d.sample(7);
    d.sample(9);
    EXPECT_DOUBLE_EQ(d.percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 9.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 9.0);
}

TEST(Stats, QuantilesDefaultSet)
{
    Distribution d;
    d.init({10, 100, 1000});
    for (std::uint64_t v = 1; v <= 100; ++v)
        d.sample(v);
    auto qs = d.quantiles();
    ASSERT_EQ(qs.size(), 5u);
    EXPECT_DOUBLE_EQ(qs[0].first, 50.0);
    EXPECT_DOUBLE_EQ(qs[0].second, d.percentile(50));
    EXPECT_DOUBLE_EQ(qs[4].first, 100.0);
    EXPECT_DOUBLE_EQ(qs[4].second, 100.0);
    auto custom = d.quantiles({25});
    ASSERT_EQ(custom.size(), 1u);
    EXPECT_DOUBLE_EQ(custom[0].second, d.percentile(25));
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("grp");
    Scalar &num = g.addScalar("num", "");
    Scalar &den = g.addScalar("den", "");
    Formula &f = g.addFormula("ratio", "num/den", [&]() {
        return den.value() ? double(num.value()) / den.value() : 0.0;
    });
    num += 10;
    den += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    num += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("mygroup");
    g.addScalar("alpha", "first") += 7;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.alpha"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("first"), std::string::npos);
}

TEST(Stats, DuplicateRegistrationPanics)
{
    StatGroup g("grp");
    g.addScalar("dup", "");
    EXPECT_DEATH(g.addScalar("dup", ""), "duplicate");
}

TEST(Stats, ResetAllClearsEverything)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("s", "");
    Distribution &d = g.addDistribution("d", "", {5});
    s += 3;
    d.sample(2);
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace rest::stats
