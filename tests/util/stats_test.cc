#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hh"

namespace rest::stats
{

TEST(Stats, ScalarBasics)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("counter", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    EXPECT_EQ(g.scalarValue("counter"), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, MissingScalarReadsZero)
{
    StatGroup g("grp");
    EXPECT_EQ(g.scalarValue("nope"), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("lat", "latencies",
                                        {10, 100, 1000});
    for (std::uint64_t v : {5u, 50u, 500u, 5000u})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.minValue(), 5u);
    EXPECT_EQ(d.maxValue(), 5000u);
    EXPECT_DOUBLE_EQ(d.mean(), (5 + 50 + 500 + 5000) / 4.0);
    ASSERT_EQ(d.buckets().size(), 4u);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 1u); // one sample per bucket
}

TEST(Stats, DistributionReset)
{
    StatGroup g("grp");
    Distribution &d = g.addDistribution("x", "", {10});
    d.sample(3);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("grp");
    Scalar &num = g.addScalar("num", "");
    Scalar &den = g.addScalar("den", "");
    Formula &f = g.addFormula("ratio", "num/den", [&]() {
        return den.value() ? double(num.value()) / den.value() : 0.0;
    });
    num += 10;
    den += 4;
    EXPECT_DOUBLE_EQ(f.value(), 2.5);
    num += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("mygroup");
    g.addScalar("alpha", "first") += 7;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.alpha"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("first"), std::string::npos);
}

TEST(Stats, DuplicateRegistrationPanics)
{
    StatGroup g("grp");
    g.addScalar("dup", "");
    EXPECT_DEATH(g.addScalar("dup", ""), "duplicate");
}

TEST(Stats, ResetAllClearsEverything)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("s", "");
    Distribution &d = g.addDistribution("d", "", {5});
    s += 3;
    d.sample(2);
    g.resetAll();
    EXPECT_EQ(s.value(), 0u);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace rest::stats
