#include <gtest/gtest.h>

#include <vector>

#include "util/random.hh"
#include "util/zipf.hh"

namespace rest::util
{

TEST(Zipf, DeterministicPerSeed)
{
    Zipf za(1000, 0.99), zb(1000, 0.99);
    Xoshiro256ss ra(0x5eed), rb(0x5eed);
    for (int i = 0; i < 5000; ++i)
        EXPECT_EQ(za(ra), zb(rb));
}

TEST(Zipf, GoldenSequence)
{
    // Frozen draws: any change to the sampler, the cdf construction,
    // or the rng consumption discipline breaks server-mix program
    // generation (and therefore every committed multicore baseline),
    // so it must show up here first.
    const std::vector<std::uint64_t> golden = {
        0, 7, 48, 2, 54, 1, 2, 59, 0, 1, 4, 25, 2, 16, 31, 36};
    Zipf z(64, 0.99);
    Xoshiro256ss rng(0xc0ffee);
    for (std::size_t i = 0; i < golden.size(); ++i)
        EXPECT_EQ(z(rng), golden[i]) << "draw " << i;
}

TEST(Zipf, OneDrawPerSample)
{
    // The sampler must consume exactly one rng draw per sample, so
    // generator state stays in lockstep regardless of which rank is
    // drawn.
    Zipf z(128, 0.8);
    Xoshiro256ss a(99), b(99);
    for (int i = 0; i < 100; ++i)
        z(a);
    for (int i = 0; i < 100; ++i)
        (void)b.real();
    EXPECT_EQ(a(), b());
}

TEST(Zipf, HeadDominatesTail)
{
    // With YCSB-style skew the hottest rank should take far more
    // traffic than its uniform share, and empirical frequencies should
    // track the analytic mass.
    const std::uint64_t n = 100;
    Zipf z(n, 0.99);
    Xoshiro256ss rng(0x5eed);
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        ++counts[z(rng)];
    const double f0 = double(counts[0]) / draws;
    EXPECT_GT(f0, 5.0 / n);               // way above uniform
    EXPECT_NEAR(f0, z.mass(0), 0.01);     // matches analytic mass
    // Tail mass: the bottom half of the rank space stays a minority.
    std::uint64_t tail = 0;
    for (std::uint64_t k = n / 2; k < n; ++k)
        tail += counts[k];
    EXPECT_LT(double(tail) / draws, 0.25);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    const std::uint64_t n = 10;
    Zipf z(n, 0.0);
    for (std::uint64_t k = 0; k < n; ++k)
        EXPECT_NEAR(z.mass(k), 1.0 / n, 1e-12);
    Xoshiro256ss rng(1);
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[z(rng)];
    for (std::uint64_t k = 0; k < n; ++k)
        EXPECT_NEAR(double(counts[k]) / 50000.0, 0.1, 0.02);
}

TEST(Zipf, MassSumsToOne)
{
    Zipf z(37, 1.2);
    double sum = 0;
    for (std::uint64_t k = 0; k < z.size(); ++k)
        sum += z.mass(k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

} // namespace rest::util
