#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "util/json_writer.hh"

namespace rest::util
{

namespace
{

std::string
compact(const std::function<void(JsonWriter &)> &build)
{
    std::ostringstream os;
    JsonWriter w(os, 0);
    build(w);
    return os.str();
}

} // namespace

TEST(JsonWriter, EmptyContainers)
{
    EXPECT_EQ(compact([](JsonWriter &w) {
        w.beginObject();
        w.endObject();
    }), "{}");
    EXPECT_EQ(compact([](JsonWriter &w) {
        w.beginArray();
        w.endArray();
    }), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues)
{
    auto s = compact([](JsonWriter &w) {
        w.beginObject();
        w.field("str", "x");
        w.field("int", std::uint64_t(7));
        w.field("neg", std::int64_t(-3));
        w.field("flag", true);
        w.key("null");
        w.nullValue();
        w.endObject();
    });
    EXPECT_EQ(s,
              "{\"str\":\"x\",\"int\":7,\"neg\":-3,\"flag\":true,"
              "\"null\":null}");
}

TEST(JsonWriter, NestedContainersAndCommas)
{
    auto s = compact([](JsonWriter &w) {
        w.beginObject();
        w.key("a");
        w.beginArray();
        w.value(std::uint64_t(1));
        w.value(std::uint64_t(2));
        w.beginObject();
        w.field("b", std::uint64_t(3));
        w.endObject();
        w.endArray();
        w.endObject();
    });
    EXPECT_EQ(s, "{\"a\":[1,2,{\"b\":3}]}");
}

TEST(JsonWriter, StringEscaping)
{
    auto s = compact([](JsonWriter &w) {
        w.value("quote\" slash\\ nl\n tab\t ctl\x01");
    });
    EXPECT_EQ(s, "\"quote\\\" slash\\\\ nl\\n tab\\t ctl\\u0001\"");
}

TEST(JsonWriter, DoublesRoundTripAndAreStable)
{
    auto render = [](double d) {
        return compact([d](JsonWriter &w) { w.value(d); });
    };
    EXPECT_EQ(render(2.0), render(2.0));
    EXPECT_EQ(std::stod(render(0.1)), 0.1);
    EXPECT_EQ(std::stod(render(123.456789012345)), 123.456789012345);
    EXPECT_EQ(std::stod(render(-40.25)), -40.25);
}

TEST(JsonWriter, IndentedOutputIsDeterministic)
{
    auto build = [](JsonWriter &w) {
        w.beginObject();
        w.field("x", std::uint64_t(1));
        w.key("y");
        w.beginArray();
        w.value("z");
        w.endArray();
        w.endObject();
    };
    std::ostringstream a, b;
    {
        JsonWriter w(a);
        build(w);
    }
    {
        JsonWriter w(b);
        build(w);
    }
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find('\n'), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesSerialiseAsNull)
{
    // JSON has no NaN/Inf; failed sweep cells can produce them (e.g.
    // a column mean over zero valid rows), so the writer must emit
    // null and keep the document valid instead of asserting.
    auto s = compact([](JsonWriter &w) {
        w.beginObject();
        w.field("nan", std::nan(""));
        w.field("inf", std::numeric_limits<double>::infinity());
        w.field("ninf", -std::numeric_limits<double>::infinity());
        w.field("fine", 2.5);
        w.endObject();
    });
    EXPECT_EQ(s, "{\"nan\":null,\"inf\":null,\"ninf\":null,"
                 "\"fine\":2.5}");
}

TEST(JsonWriter, MismatchedClosePanics)
{
    EXPECT_DEATH({
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.endArray();
    }, "mismatched");
}

TEST(JsonWriter, ValueWithoutKeyInObjectPanics)
{
    EXPECT_DEATH({
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.value(std::uint64_t(1));
    }, "without a key");
}

} // namespace rest::util
