/**
 * @file
 * util::JsonReader — the parser behind sweep-checkpoint loading. The
 * key contract: everything util::JsonWriter emits parses back, and
 * malformed input (a checkpoint truncated by a kill) reports through
 * ok() instead of throwing or aborting.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json_reader.hh"
#include "util/json_writer.hh"

namespace rest::util
{

namespace
{

JsonValue
parsed(const std::string &text, bool expect_ok = true)
{
    JsonReader reader(text);
    JsonValue v = reader.parse();
    EXPECT_EQ(reader.ok(), expect_ok) << text;
    return v;
}

} // namespace

TEST(JsonReader, ParsesScalarsAndContainers)
{
    JsonValue v = parsed("{\"a\": 1, \"b\": [true, null, -2.5], "
                         "\"c\": \"text\"}");
    ASSERT_EQ(v.kind, JsonValue::Object);
    EXPECT_EQ(v.at("a").u64(), 1u);
    const auto &arr = v.at("b");
    ASSERT_EQ(arr.kind, JsonValue::Array);
    ASSERT_EQ(arr.items.size(), 3u);
    EXPECT_TRUE(arr.items[0].boolean);
    EXPECT_EQ(arr.items[1].kind, JsonValue::Null);
    EXPECT_EQ(arr.items[2].number, -2.5);
    EXPECT_EQ(v.at("c").str, "text");
    EXPECT_FALSE(v.has("missing"));
    EXPECT_EQ(v.at("missing").kind, JsonValue::Null);
}

TEST(JsonReader, RoundTripsWriterOutput)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("name", "sweep \"quoted\"\n");
        w.field("count", std::uint64_t(42));
        w.field("ratio", 0.125);
        w.key("list");
        w.beginArray();
        w.value(std::int64_t(-7));
        w.value(true);
        w.endArray();
        w.endObject();
    }
    JsonValue v = parsed(os.str());
    EXPECT_EQ(v.at("name").str, "sweep \"quoted\"\n");
    EXPECT_EQ(v.at("count").u64(), 42u);
    EXPECT_EQ(v.at("ratio").number, 0.125);
    ASSERT_EQ(v.at("list").items.size(), 2u);
    EXPECT_EQ(v.at("list").items[0].number, -7);
}

TEST(JsonReader, MalformedInputSetsOkFalse)
{
    for (const char *bad : {"", "{", "[1, 2", "{\"a\": }",
                            "{\"a\" 1}", "tru", "\"unterminated",
                            "{\"a\": 1} trailing"})
        parsed(bad, /*expect_ok=*/false);
}

TEST(JsonReader, ReadJsonFileReportsMissingFiles)
{
    bool ok = true;
    JsonValue v = readJsonFile("/nonexistent/file.json", &ok);
    EXPECT_FALSE(ok);
    EXPECT_EQ(v.kind, JsonValue::Null);
}

} // namespace rest::util
