/**
 * @file
 * util::JsonReader — the parser behind sweep-checkpoint loading. The
 * key contract: everything util::JsonWriter emits parses back, and
 * malformed input (a checkpoint truncated by a kill) reports through
 * ok() instead of throwing or aborting.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/json_reader.hh"
#include "util/json_writer.hh"

namespace rest::util
{

namespace
{

JsonValue
parsed(const std::string &text, bool expect_ok = true)
{
    JsonReader reader(text);
    JsonValue v = reader.parse();
    EXPECT_EQ(reader.ok(), expect_ok) << text;
    return v;
}

} // namespace

TEST(JsonReader, ParsesScalarsAndContainers)
{
    JsonValue v = parsed("{\"a\": 1, \"b\": [true, null, -2.5], "
                         "\"c\": \"text\"}");
    ASSERT_EQ(v.kind, JsonValue::Object);
    EXPECT_EQ(v.at("a").u64(), 1u);
    const auto &arr = v.at("b");
    ASSERT_EQ(arr.kind, JsonValue::Array);
    ASSERT_EQ(arr.items.size(), 3u);
    EXPECT_TRUE(arr.items[0].boolean);
    EXPECT_EQ(arr.items[1].kind, JsonValue::Null);
    EXPECT_EQ(arr.items[2].number, -2.5);
    EXPECT_EQ(v.at("c").str, "text");
    EXPECT_FALSE(v.has("missing"));
    EXPECT_EQ(v.at("missing").kind, JsonValue::Null);
}

TEST(JsonReader, RoundTripsWriterOutput)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("name", "sweep \"quoted\"\n");
        w.field("count", std::uint64_t(42));
        w.field("ratio", 0.125);
        w.key("list");
        w.beginArray();
        w.value(std::int64_t(-7));
        w.value(true);
        w.endArray();
        w.endObject();
    }
    JsonValue v = parsed(os.str());
    EXPECT_EQ(v.at("name").str, "sweep \"quoted\"\n");
    EXPECT_EQ(v.at("count").u64(), 42u);
    EXPECT_EQ(v.at("ratio").number, 0.125);
    ASSERT_EQ(v.at("list").items.size(), 2u);
    EXPECT_EQ(v.at("list").items[0].number, -7);
}

TEST(JsonReader, UnicodeEscapesDecodeToUtf8)
{
    // Control range (what JsonWriter emits as \u00XX).
    EXPECT_EQ(parsed("\"\\u0041\\u0009\"").str, "A\t");
    EXPECT_EQ(parsed("\"\\u0000x\"", true).str.size(), 2u);
    // Two-byte UTF-8: U+00E9 (é), U+03B1 (α).
    EXPECT_EQ(parsed("\"\\u00e9\"").str, "\xc3\xa9");
    EXPECT_EQ(parsed("\"\\u03B1\"").str, "\xce\xb1");
    // Three-byte UTF-8: U+20AC (€), U+FFFD.
    EXPECT_EQ(parsed("\"\\u20ac\"").str, "\xe2\x82\xac");
    EXPECT_EQ(parsed("\"\\uFFFD\"").str, "\xef\xbf\xbd");
    // Regression: the old decoder read only the LAST two hex digits,
    // so \u0041 ('A') came back as '\x41'... but \u4100 came back as
    // '\0'. The full code point must be honoured.
    EXPECT_EQ(parsed("\"\\u4e2d\"").str, "\xe4\xb8\xad"); // U+4E2D 中
}

TEST(JsonReader, UnicodeEscapesRoundTripThroughWriter)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.field("s", std::string("ctl\x01\x1f end"));
        w.endObject();
    }
    JsonValue v = parsed(os.str());
    EXPECT_EQ(v.at("s").str, "ctl\x01\x1f end");
}

TEST(JsonReader, BadUnicodeEscapesAreHardErrors)
{
    // Non-hex digits.
    parsed("\"\\u00zz\"", /*expect_ok=*/false);
    parsed("\"\\u12g4\"", /*expect_ok=*/false);
    // Truncated escape at end of input.
    parsed("\"\\u12", /*expect_ok=*/false);
    // Surrogate halves: rejected, not silently mangled.
    parsed("\"\\ud800\"", /*expect_ok=*/false);
    parsed("\"\\udfff\"", /*expect_ok=*/false);
    parsed("\"\\ud83d\\ude00\"", /*expect_ok=*/false);
}

TEST(JsonReader, MalformedInputSetsOkFalse)
{
    for (const char *bad : {"", "{", "[1, 2", "{\"a\": }",
                            "{\"a\" 1}", "tru", "\"unterminated",
                            "{\"a\": 1} trailing"})
        parsed(bad, /*expect_ok=*/false);
}

TEST(JsonReader, ReadJsonFileReportsMissingFiles)
{
    bool ok = true;
    JsonValue v = readJsonFile("/nonexistent/file.json", &ok);
    EXPECT_FALSE(ok);
    EXPECT_EQ(v.kind, JsonValue::Null);
}

} // namespace rest::util
