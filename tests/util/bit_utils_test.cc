#include <gtest/gtest.h>

#include "util/bit_utils.hh"

namespace rest
{

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitUtils, AlignDown)
{
    EXPECT_EQ(alignDown(0, 64), 0u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(0xdeadbeef, 16), 0xdeadbee0u);
}

TEST(BitUtils, AlignUp)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
}

TEST(BitUtils, IsAligned)
{
    EXPECT_TRUE(isAligned(0, 64));
    EXPECT_TRUE(isAligned(128, 64));
    EXPECT_FALSE(isAligned(129, 64));
    EXPECT_TRUE(isAligned(48, 16));
    EXPECT_FALSE(isAligned(48, 32));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2((1ull << 33) + 5), 33u);
}

class AlignmentSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlignmentSweep, RoundTripInvariants)
{
    const unsigned align = GetParam();
    for (Addr a : {Addr(0), Addr(1), Addr(align - 1), Addr(align),
                   Addr(align + 1), Addr(12345678)}) {
        Addr down = alignDown(a, align);
        Addr up = alignUp(a, align);
        EXPECT_TRUE(isAligned(down, align));
        EXPECT_TRUE(isAligned(up, align));
        EXPECT_LE(down, a);
        EXPECT_GE(up, a);
        EXPECT_LT(a - down, Addr(align));
        EXPECT_LT(up - a, Addr(align));
    }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignmentSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 4096u));

} // namespace rest
