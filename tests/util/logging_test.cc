/**
 * @file
 * The logging timestamp/thread-id prefix (off by default; enabled via
 * setLogTimestamps() or REST_LOG_TIMESTAMPS). Default output must stay
 * byte-identical to the pre-telemetry format.
 */

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "util/logging.hh"

namespace rest
{

namespace
{

/** Capture what one rest_warn emits on stderr. */
std::string
warnOutput(const std::string &msg)
{
    ::testing::internal::CaptureStderr();
    rest_warn(msg);
    return ::testing::internal::GetCapturedStderr();
}

/** RAII: restore the timestamp setting however the test exits. */
struct TimestampGuard
{
    ~TimestampGuard() { setLogTimestamps(false); }
};

} // namespace

TEST(Logging, DefaultWarnLineIsBarePrefix)
{
    TimestampGuard guard;
    setLogTimestamps(false);
    EXPECT_EQ(warnOutput("plain message"), "warn: plain message\n");
}

TEST(Logging, TimestampPrefixFormat)
{
    TimestampGuard guard;
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestampsEnabled());
    std::string out = warnOutput("stamped message");
    // "[2026-08-07T12:34:56.789Z t1] warn: stamped message\n"
    std::regex pattern(
        "\\[\\d{4}-\\d{2}-\\d{2}T\\d{2}:\\d{2}:\\d{2}\\.\\d{3}Z "
        "t\\d+\\] warn: stamped message\n");
    EXPECT_TRUE(std::regex_match(out, pattern)) << out;
}

TEST(Logging, ToggleRestoresByteIdenticalOutput)
{
    TimestampGuard guard;
    setLogTimestamps(false);
    std::string before = warnOutput("same line");
    setLogTimestamps(true);
    std::string stamped = warnOutput("same line");
    setLogTimestamps(false);
    std::string after = warnOutput("same line");
    EXPECT_EQ(before, "warn: same line\n");
    EXPECT_EQ(after, before);
    EXPECT_NE(stamped, before);
    // The stamped line still ends with the default line.
    ASSERT_GE(stamped.size(), before.size());
    EXPECT_EQ(stamped.substr(stamped.size() - before.size()), before);
}

TEST(Logging, ExplicitCallWinsOverEnvironment)
{
    TimestampGuard guard;
    // Whatever REST_LOG_TIMESTAMPS says, an explicit call decides.
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestampsEnabled());
    setLogTimestamps(false);
    EXPECT_FALSE(logTimestampsEnabled());
}

} // namespace rest
