#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/metrics.hh"

namespace rest::telemetry
{

TEST(Metrics, CounterStartsAtZeroAndAccumulates)
{
    MetricRegistry reg;
    Counter &c = reg.counter("rest_events_total", "events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, LookupIsGetOrCreate)
{
    MetricRegistry reg;
    Counter &a = reg.counter("rest_x_total", "x", {{"k", "v"}});
    Counter &b = reg.counter("rest_x_total", "x", {{"k", "v"}});
    EXPECT_EQ(&a, &b); // same (name, labels) -> same instance
    Counter &c = reg.counter("rest_x_total", "x", {{"k", "w"}});
    EXPECT_NE(&a, &c); // different labels -> distinct instance
}

TEST(Metrics, GaugeSetAndAdd)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("rest_depth", "queue depth");
    g.set(4.0);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramObservesAndExposesPercentiles)
{
    MetricRegistry reg;
    Histogram &h =
        reg.histogram("rest_wall_ms", "wall", {10, 100, 1000});
    for (std::uint64_t v : {1u, 2u, 50u, 60u, 500u})
        h.observe(v);
    stats::Distribution d = h.snapshot();
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.sum(), 613u);
    EXPECT_DOUBLE_EQ(h.percentile(100), 500.0);
}

TEST(Metrics, RenderLabels)
{
    EXPECT_EQ(renderLabels({}), "");
    EXPECT_EQ(renderLabels({{"a", "b"}}), "{a=\"b\"}");
    EXPECT_EQ(renderLabels({{"a", "b"}, {"c", "d"}}),
              "{a=\"b\",c=\"d\"}");
    // Backslash, quote and newline are escaped per the exposition
    // format.
    EXPECT_EQ(renderLabels({{"p", "a\\b\"c\nd"}}),
              "{p=\"a\\\\b\\\"c\\nd\"}");
}

TEST(Metrics, PrometheusGoldenText)
{
    MetricRegistry reg;
    reg.counter("rest_jobs_total", "Jobs run", {{"result", "done"}})
        .inc(3);
    reg.counter("rest_jobs_total", "Jobs run", {{"result", "failed"}})
        .inc(1);
    reg.gauge("rest_progress_ratio", "Sweep progress").set(0.5);
    Histogram &h = reg.histogram("rest_wall_ms", "Job wall time",
                                 {10, 100});
    h.observe(5);
    h.observe(50);
    h.observe(5000);

    // Families in name order, # HELP/# TYPE per family, cumulative
    // histogram buckets with inclusive le edges plus +Inf, _sum and
    // _count.
    EXPECT_EQ(reg.prometheusText(),
              "# HELP rest_jobs_total Jobs run\n"
              "# TYPE rest_jobs_total counter\n"
              "rest_jobs_total{result=\"done\"} 3\n"
              "rest_jobs_total{result=\"failed\"} 1\n"
              "# HELP rest_progress_ratio Sweep progress\n"
              "# TYPE rest_progress_ratio gauge\n"
              "rest_progress_ratio 0.5\n"
              "# HELP rest_wall_ms Job wall time\n"
              "# TYPE rest_wall_ms histogram\n"
              "rest_wall_ms_bucket{le=\"10\"} 1\n"
              "rest_wall_ms_bucket{le=\"100\"} 2\n"
              "rest_wall_ms_bucket{le=\"+Inf\"} 3\n"
              "rest_wall_ms_sum 5055\n"
              "rest_wall_ms_count 3\n");
}

TEST(Metrics, HistogramBucketsMergeWithInstanceLabels)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("rest_ms", "t", {10},
                                 {{"sweep", "overheads"}});
    h.observe(3);
    std::string text = reg.prometheusText();
    EXPECT_NE(text.find("rest_ms_bucket{sweep=\"overheads\","
                        "le=\"10\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("rest_ms_sum{sweep=\"overheads\"} 3\n"),
              std::string::npos);
}

TEST(Metrics, CallbackGaugeEvaluatedAtScrapeAndRemovable)
{
    MetricRegistry reg;
    double live = 1.0;
    std::uint64_t id = reg.gaugeCallback(
        "rest_live", "live value", {{"pool", "sweep"}},
        [&] { return live; });
    EXPECT_NE(reg.prometheusText().find("rest_live{pool=\"sweep\"} 1\n"),
              std::string::npos);
    live = 7.0; // scrape-time evaluation, not registration-time
    EXPECT_NE(reg.prometheusText().find("rest_live{pool=\"sweep\"} 7\n"),
              std::string::npos);

    reg.removeCallback(id);
    std::string text = reg.prometheusText();
    // The family header survives; the instance is gone.
    EXPECT_NE(text.find("# TYPE rest_live gauge\n"), std::string::npos);
    EXPECT_EQ(text.find("rest_live{"), std::string::npos);
    reg.removeCallback(id); // unknown ids are ignored
}

TEST(Metrics, KindConflictDies)
{
    MetricRegistry reg;
    reg.counter("rest_thing", "a counter");
    EXPECT_DEATH(reg.gauge("rest_thing", "now a gauge?"),
                 "different kind");
}

TEST(Metrics, ConcurrentPublishersAndScrapers)
{
    MetricRegistry reg;
    Counter &c = reg.counter("rest_ops_total", "ops");
    Histogram &h = reg.histogram("rest_lat", "lat", {10, 100});
    std::atomic<bool> stop{false};

    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < 10000; ++i) {
                c.inc();
                h.observe(std::uint64_t(i % 200));
            }
        });
    }
    std::thread scraper([&] {
        while (!stop.load())
            (void)reg.prometheusText();
    });
    for (auto &w : workers)
        w.join();
    stop = true;
    scraper.join();

    EXPECT_EQ(c.value(), 40000u);
    EXPECT_EQ(h.snapshot().count(), 40000u);
}

} // namespace rest::telemetry
