#include <gtest/gtest.h>

#include <set>

#include "util/random.hh"

namespace rest
{

TEST(Random, DeterministicFromSeed)
{
    Xoshiro256ss a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256ss a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    Xoshiro256ss rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Xoshiro256ss rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Random, RealInUnitInterval)
{
    Xoshiro256ss rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U[0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceRespectsProbability)
{
    Xoshiro256ss rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Random, BitsLookUniformish)
{
    // Count set bits over many draws; expect close to half.
    Xoshiro256ss rng(17);
    std::uint64_t ones = 0;
    const int draws = 4096;
    for (int i = 0; i < draws; ++i)
        ones += static_cast<std::uint64_t>(
            __builtin_popcountll(rng()));
    double frac = double(ones) / (64.0 * draws);
    EXPECT_NEAR(frac, 0.5, 0.01);
}

} // namespace rest
