/**
 * @file
 * Determinism and isolation properties of the whole simulator:
 * identical configurations produce identical cycle counts, and the
 * (secret) token value has no timing influence on benign programs —
 * the content-based check is invisible unless tripped.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/test_util.hh"
#include "sim/results.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using sim::ExpConfig;

namespace
{

Cycles
cyclesFor(ExpConfig config, std::uint64_t token_seed,
          std::uint64_t workload_seed = 0x5eed)
{
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 30;
    p.seed = workload_seed;
    sim::SystemConfig cfg = sim::makeSystemConfig(config);
    cfg.tokenSeed = token_seed;
    sim::System system(workload::generate(p), cfg);
    auto r = system.run();
    EXPECT_FALSE(r.faulted());
    return r.cycles();
}

} // namespace

TEST(Determinism, IdenticalRunsIdenticalCycles)
{
    for (auto config : {ExpConfig::Plain, ExpConfig::Asan,
                        ExpConfig::RestSecureFull,
                        ExpConfig::RestDebugFull}) {
        EXPECT_EQ(cyclesFor(config, 1), cyclesFor(config, 1))
            << sim::expConfigName(config);
    }
}

TEST(Determinism, TokenValueDoesNotAffectBenignTiming)
{
    // Rotating the secret (different token seeds) must not change a
    // benign program's timing at all: content-based checks are
    // invisible until tripped.
    Cycles a = cyclesFor(ExpConfig::RestSecureFull, 111);
    Cycles b = cyclesFor(ExpConfig::RestSecureFull, 222);
    EXPECT_EQ(a, b);
}

TEST(Determinism, WorkloadSeedChangesTiming)
{
    Cycles a = cyclesFor(ExpConfig::Plain, 1, 0x1111);
    Cycles b = cyclesFor(ExpConfig::Plain, 1, 0x2222);
    EXPECT_NE(a, b);
}

TEST(Determinism, FaultReportsAreDeterministic)
{
    auto run = [] {
        return test::runUnder(workload::attacks::heartbleed(64, 256),
                              ExpConfig::RestSecureHeap);
    };
    auto a = run();
    auto b = run();
    ASSERT_TRUE(a.faulted());
    EXPECT_EQ(a.run.violation.faultAddr, b.run.violation.faultAddr);
    EXPECT_EQ(a.run.violation.seq, b.run.violation.seq);
    EXPECT_EQ(a.run.violation.reportCycle, b.run.violation.reportCycle);
}

TEST(Determinism, SchemesPreserveProgramSemantics)
{
    // The same benign program produces the same architectural result
    // under every scheme: protection must not change functionality.
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;
    std::uint64_t ref_ops = 0;
    for (auto config : {ExpConfig::Plain, ExpConfig::Asan,
                        ExpConfig::RestSecureFull}) {
        auto r = test::runUnder(workload::generate(p), config);
        EXPECT_FALSE(r.faulted()) << sim::expConfigName(config);
        // Program-source op counts are identical across schemes
        // (instrumentation adds ops under other source tags; the
        // memcpy loop is tagged Program and is scheme-independent).
        std::uint64_t program_ops =
            r.run.opsBySource[unsigned(isa::OpSource::Program)];
        if (config == ExpConfig::Plain)
            ref_ops = program_ops;
        else
            EXPECT_EQ(program_ops, ref_ops)
                << sim::expConfigName(config);
    }
}

namespace
{

/**
 * Run gobmk/30ki under a config + execution mode and serialise the
 * measurement through the results-file writer, so the determinism
 * claim covers the whole reporting path (cycles, scalars, exec-mode
 * and sampling-error fields), not just the cycle count.
 */
std::string
jsonFor(ExpConfig config, const sim::ExecutionConfig &exec)
{
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 30;
    sim::Measurement m = sim::runBench(
        p, config, core::TokenWidth::Bytes64, false, exec);

    sim::SweepCell cell;
    cell.bench = m.bench;
    cell.column = m.label;
    cell.cycles = m.cycles;
    cell.ops = m.ops;
    cell.execMode = m.execMode;
    cell.samplingErrorPct = m.samplingErrorPct;
    cell.seedCycles = {m.cycles};
    cell.scalars = m.scalars;

    sim::SweepResults sweep;
    sweep.name = "determinism";
    sweep.columns = {m.label};
    sweep.rows = {m.bench};
    sweep.cells.push_back(std::move(cell));

    sim::ResultsFile f;
    f.figure = "determinism";
    f.kiloInsts = 30;
    f.seedsPerCell = 1;
    f.jobs = 1;
    f.sweeps.push_back(std::move(sweep));

    std::ostringstream os;
    sim::writeJson(f, os);
    return os.str();
}

} // namespace

TEST(Determinism, FastFunctionalSameSeedSameJson)
{
    sim::ExecutionConfig exec;
    exec.fastFunctional = true;
    EXPECT_EQ(jsonFor(ExpConfig::RestSecureFull, exec),
              jsonFor(ExpConfig::RestSecureFull, exec));
}

TEST(Determinism, SampledSameSeedSameJson)
{
    sim::ExecutionConfig exec;
    exec.sampling.warmupOps = 500;
    exec.sampling.windowOps = 2000;
    exec.sampling.intervalOps = 5000;
    std::string a = jsonFor(ExpConfig::RestSecureFull, exec);
    EXPECT_EQ(a, jsonFor(ExpConfig::RestSecureFull, exec));
    // And the sampled record really is marked as such.
    EXPECT_NE(a.find("\"exec_mode\""), std::string::npos) << a;
    EXPECT_NE(a.find("\"sampled\""), std::string::npos) << a;
}

} // namespace rest
