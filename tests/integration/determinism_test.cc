/**
 * @file
 * Determinism and isolation properties of the whole simulator:
 * identical configurations produce identical cycle counts, and the
 * (secret) token value has no timing influence on benign programs —
 * the content-based check is invisible unless tripped.
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using sim::ExpConfig;

namespace
{

Cycles
cyclesFor(ExpConfig config, std::uint64_t token_seed,
          std::uint64_t workload_seed = 0x5eed)
{
    auto p = workload::profileByName("gobmk");
    p.targetKiloInsts = 30;
    p.seed = workload_seed;
    sim::SystemConfig cfg = sim::makeSystemConfig(config);
    cfg.tokenSeed = token_seed;
    sim::System system(workload::generate(p), cfg);
    auto r = system.run();
    EXPECT_FALSE(r.faulted());
    return r.cycles();
}

} // namespace

TEST(Determinism, IdenticalRunsIdenticalCycles)
{
    for (auto config : {ExpConfig::Plain, ExpConfig::Asan,
                        ExpConfig::RestSecureFull,
                        ExpConfig::RestDebugFull}) {
        EXPECT_EQ(cyclesFor(config, 1), cyclesFor(config, 1))
            << sim::expConfigName(config);
    }
}

TEST(Determinism, TokenValueDoesNotAffectBenignTiming)
{
    // Rotating the secret (different token seeds) must not change a
    // benign program's timing at all: content-based checks are
    // invisible until tripped.
    Cycles a = cyclesFor(ExpConfig::RestSecureFull, 111);
    Cycles b = cyclesFor(ExpConfig::RestSecureFull, 222);
    EXPECT_EQ(a, b);
}

TEST(Determinism, WorkloadSeedChangesTiming)
{
    Cycles a = cyclesFor(ExpConfig::Plain, 1, 0x1111);
    Cycles b = cyclesFor(ExpConfig::Plain, 1, 0x2222);
    EXPECT_NE(a, b);
}

TEST(Determinism, FaultReportsAreDeterministic)
{
    auto run = [] {
        return test::runUnder(workload::attacks::heartbleed(64, 256),
                              ExpConfig::RestSecureHeap);
    };
    auto a = run();
    auto b = run();
    ASSERT_TRUE(a.faulted());
    EXPECT_EQ(a.run.violation.faultAddr, b.run.violation.faultAddr);
    EXPECT_EQ(a.run.violation.seq, b.run.violation.seq);
    EXPECT_EQ(a.run.violation.reportCycle, b.run.violation.reportCycle);
}

TEST(Determinism, SchemesPreserveProgramSemantics)
{
    // The same benign program produces the same architectural result
    // under every scheme: protection must not change functionality.
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;
    std::uint64_t ref_ops = 0;
    for (auto config : {ExpConfig::Plain, ExpConfig::Asan,
                        ExpConfig::RestSecureFull}) {
        auto r = test::runUnder(workload::generate(p), config);
        EXPECT_FALSE(r.faulted()) << sim::expConfigName(config);
        // Program-source op counts are identical across schemes
        // (instrumentation adds ops under other source tags; the
        // memcpy loop is tagged Program and is scheme-independent).
        std::uint64_t program_ops =
            r.run.opsBySource[unsigned(isa::OpSource::Program)];
        if (config == ExpConfig::Plain)
            ref_ops = program_ops;
        else
            EXPECT_EQ(program_ops, ref_ops)
                << sim::expConfigName(config);
    }
}

} // namespace rest
