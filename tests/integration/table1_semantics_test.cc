/**
 * @file
 * End-to-end Table I semantics: small guest programs drive every
 * action row (arm, disarm, load, store) through the full System —
 * emulator, LSQ, REST L1-D — in both secure and debug modes.
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"

namespace rest
{

using isa::FuncBuilder;
using isa::Opcode;
using sim::ExpConfig;
using core::ViolationKind;

namespace
{

isa::Program
wrap(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

/** Heap address that is granule-aligned for every width. */
constexpr Addr spot = 0x10000440;

} // namespace

class Table1Test : public ::testing::TestWithParam<ExpConfig>
{
  protected:
    sim::SystemResult
    run(isa::Program prog)
    {
        return test::runProgram(std::move(prog),
                                sim::makeSystemConfig(GetParam()));
    }
};

// Row "Arm": create entry, set token bit — no exception, ever.
TEST_P(Table1Test, ArmIsSilent)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    EXPECT_FALSE(run(wrap(std::move(b))).faulted());
}

// Row "Disarm": disarm of an armed location succeeds.
TEST_P(Table1Test, DisarmOfArmedSucceeds)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    // Separate the two wide ops so they do not overlap in the SQ.
    for (int i = 0; i < 64; ++i)
        b.addI(2, 2, 1);
    b.emit({Opcode::Disarm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    EXPECT_FALSE(run(wrap(std::move(b))).faulted());
}

// Row "Disarm": disarm with no token raises.
TEST_P(Table1Test, DisarmOfUnarmedRaises)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Disarm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    auto r = run(wrap(std::move(b)));
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.run.violation.kind, ViolationKind::DisarmUnarmed);
}

// Row "Load": load of an armed granule raises.
TEST_P(Table1Test, LoadOfArmedRaises)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    for (int i = 0; i < 64; ++i)
        b.addI(2, 2, 1);
    b.load(3, 1, 0, 8);
    b.halt();
    auto r = run(wrap(std::move(b)));
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.run.violation.kind, ViolationKind::TokenAccess);
}

// Fig. 5: a load racing an in-flight arm in the LSQ also raises.
TEST_P(Table1Test, LoadRacingInflightArmRaises)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.load(3, 1, 0, 8); // back to back: hits the SQ entry
    b.halt();
    auto r = run(wrap(std::move(b)));
    ASSERT_TRUE(r.faulted());
    // Either the forwarding check or the token bit catches it.
    EXPECT_TRUE(r.run.violation.kind == ViolationKind::TokenForward ||
                r.run.violation.kind == ViolationKind::TokenAccess);
}

// Row "Store": store to an armed granule raises.
TEST_P(Table1Test, StoreToArmedRaises)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    for (int i = 0; i < 64; ++i)
        b.addI(2, 2, 1);
    b.store(2, 1, 0, 8);
    b.halt();
    auto r = run(wrap(std::move(b)));
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.run.violation.kind, ViolationKind::TokenAccess);
}

// Loads/stores to unarmed locations proceed as usual.
TEST_P(Table1Test, CleanAccessesProceed)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.movImm(2, 0x1234);
    b.store(2, 1, 0, 8);
    b.load(3, 1, 0, 8);
    b.halt();
    EXPECT_FALSE(run(wrap(std::move(b))).faulted());
}

// After disarm, the location is ordinary memory again (and zeroed).
TEST_P(Table1Test, DisarmRestoresNormalAccess)
{
    FuncBuilder b("main");
    b.movImm(1, spot);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    for (int i = 0; i < 64; ++i)
        b.addI(2, 2, 1);
    b.emit({Opcode::Disarm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    for (int i = 0; i < 64; ++i)
        b.addI(2, 2, 1);
    b.load(3, 1, 0, 8);
    b.halt();
    EXPECT_FALSE(run(wrap(std::move(b))).faulted());
}

// Misaligned arm: precise invalid-REST-instruction exception.
TEST_P(Table1Test, MisalignedArmPrecise)
{
    FuncBuilder b("main");
    b.movImm(1, spot + 4);
    b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    auto r = run(wrap(std::move(b)));
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.run.violation.kind,
              ViolationKind::MisalignedRestInst);
    EXPECT_EQ(r.run.violation.precision, core::Precision::Precise);
}

INSTANTIATE_TEST_SUITE_P(Modes, Table1Test,
                         ::testing::Values(ExpConfig::RestSecureHeap,
                                           ExpConfig::RestDebugHeap));

// Precision differs by mode (§III-B "Exception Reporting").
TEST(Table1Precision, SecureImpreciseDebugPrecise)
{
    auto build = [] {
        FuncBuilder b("main");
        b.movImm(1, spot);
        b.emit({Opcode::Arm, isa::noReg, 1, isa::noReg, 8, 0, -1, -1});
        for (int i = 0; i < 64; ++i)
            b.addI(2, 2, 1);
        b.load(3, 1, 0, 8);
        b.halt();
        return wrap(std::move(b));
    };
    auto secure = test::runUnder(build(), ExpConfig::RestSecureHeap);
    auto debug = test::runUnder(build(), ExpConfig::RestDebugHeap);
    ASSERT_TRUE(secure.faulted());
    ASSERT_TRUE(debug.faulted());
    EXPECT_EQ(secure.run.violation.precision,
              core::Precision::Imprecise);
    EXPECT_EQ(debug.run.violation.precision,
              core::Precision::Precise);
}

} // namespace rest
