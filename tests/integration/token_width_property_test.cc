/**
 * @file
 * Property sweeps over token widths (§III-B "Modifying Token Width"
 * and §V-C "False Negatives"): the detection boundary of a stack
 * overflow is exactly the alignment pad implied by the token width,
 * and heap detection is width-independent for crossing overflows.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/test_util.hh"
#include "util/bit_utils.hh"

namespace rest
{

using sim::ExpConfig;
using core::TokenWidth;
using test::runUnder;

using WidthCase = std::tuple<TokenWidth, unsigned /*buf*/,
                             unsigned /*overflow*/>;

class StackPadProperty : public ::testing::TestWithParam<WidthCase>
{};

TEST_P(StackPadProperty, DetectionMatchesPadGeometry)
{
    auto [width, buf_len, overflow] = GetParam();
    unsigned g = core::tokenBytes(width);
    // The paper's §V-C property: an overflow is detected iff it
    // crosses the pad and reaches the token granule.
    std::uint64_t end = buf_len + overflow;
    bool expect_detected = end > alignUp(buf_len, g);

    auto result = runUnder(
        workload::attacks::stackPadOverflow(buf_len, overflow),
        ExpConfig::RestSecureFull, width);
    EXPECT_EQ(result.faulted(), expect_detected)
        << "width=" << g << " buf=" << buf_len << " ovf=" << overflow;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackPadProperty,
    ::testing::Combine(::testing::Values(TokenWidth::Bytes16,
                                         TokenWidth::Bytes32,
                                         TokenWidth::Bytes64),
                       ::testing::Values(16u, 32u, 48u),
                       ::testing::Values(8u, 16u, 32u, 64u)));

class HeapWidthProperty : public ::testing::TestWithParam<TokenWidth>
{};

TEST_P(HeapWidthProperty, CrossingOverflowAlwaysDetected)
{
    // A sweep far past the payload always reaches the right redzone,
    // for every width.
    auto result = runUnder(workload::attacks::heapOverflowWrite(64, 64),
                           ExpConfig::RestSecureHeap, GetParam());
    EXPECT_TRUE(result.faulted());
}

TEST_P(HeapWidthProperty, UafDetectedAtEveryWidth)
{
    auto result = runUnder(workload::attacks::useAfterFree(96),
                           ExpConfig::RestSecureHeap, GetParam());
    EXPECT_TRUE(result.faulted());
}

TEST_P(HeapWidthProperty, HeartbleedDetectedAtEveryWidth)
{
    auto result = runUnder(workload::attacks::heartbleed(64, 192),
                           ExpConfig::RestSecureHeap, GetParam());
    EXPECT_TRUE(result.faulted());
}

TEST_P(HeapWidthProperty, BenignProgramCleanAtEveryWidth)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 20;
    auto result = runUnder(workload::generate(p),
                           ExpConfig::RestSecureFull, GetParam());
    EXPECT_FALSE(result.faulted());
}

INSTANTIATE_TEST_SUITE_P(Widths, HeapWidthProperty,
                         ::testing::Values(TokenWidth::Bytes16,
                                           TokenWidth::Bytes32,
                                           TokenWidth::Bytes64));

} // namespace rest
