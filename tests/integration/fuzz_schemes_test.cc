/**
 * @file
 * Fuzz-style whole-system properties: many randomly-generated benign
 * workloads, run under every protection scheme and token width, must
 * (a) never fault, (b) preserve program semantics across schemes, and
 * (c) respect the basic cost ordering the paper establishes.
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using sim::ExpConfig;

namespace
{

workload::BenchProfile
randomProfile(std::uint64_t seed)
{
    Xoshiro256ss rng(seed);
    workload::BenchProfile p;
    p.name = "fuzz-" + std::to_string(seed);
    p.loadFrac = 0.1 + 0.25 * rng.real();
    p.storeFrac = 0.05 + 0.15 * rng.real();
    p.fpFrac = rng.chance(0.4) ? 0.2 * rng.real() : 0.0;
    p.mulFrac = 0.05 * rng.real();
    p.workingSetBytes = std::size_t(1) << rng.range(14, 19);
    p.pointerChase = rng.chance(0.25);
    p.allocsPerKiloInst = rng.chance(0.5) ? 2.0 * rng.real() : 0.0;
    p.allocSizeMin = 16 << rng.below(3);
    p.allocSizeMax = p.allocSizeMin * (2 + rng.below(15));
    p.memcpysPerKiloInst = rng.chance(0.4) ? 0.2 * rng.real() : 0.0;
    p.memcpyLen = 32 + 8 * rng.below(64);
    p.numWorkFuncs = 1 + unsigned(rng.below(6));
    p.innerIters = 8 + unsigned(rng.below(40));
    p.stackBufsPerFunc = unsigned(rng.below(3));
    p.stackBufBytes = 16 + 8 * rng.below(12);
    p.irregularBranchFrac = rng.chance(0.3) ? 0.08 * rng.real() : 0.0;
    p.targetKiloInsts = 30;
    p.seed = seed * 77;
    return p;
}

} // namespace

class FuzzSchemes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSchemes, BenignUnderEverySchemeAndWidth)
{
    auto profile = randomProfile(GetParam());
    std::uint64_t ref_program_ops = 0;
    bool first = true;
    for (auto config : {ExpConfig::Plain, ExpConfig::Asan,
                        ExpConfig::RestSecureFull,
                        ExpConfig::RestDebugFull,
                        ExpConfig::PerfectHwFull,
                        ExpConfig::RestSecureHeap}) {
        for (auto width : {core::TokenWidth::Bytes16,
                           core::TokenWidth::Bytes64}) {
            auto r = test::runUnder(workload::generate(profile),
                                    config, width);
            ASSERT_FALSE(r.faulted())
                << profile.name << " under "
                << sim::expConfigName(config) << "/"
                << core::tokenBytes(width) << "B: "
                << r.run.violation.toString();
            std::uint64_t program_ops =
                r.run.opsBySource[unsigned(isa::OpSource::Program)];
            if (first) {
                ref_program_ops = program_ops;
                first = false;
            } else {
                ASSERT_EQ(program_ops, ref_program_ops)
                    << "program semantics diverged under "
                    << sim::expConfigName(config);
            }
        }
    }
}

TEST_P(FuzzSchemes, CostOrderingHolds)
{
    auto profile = randomProfile(GetParam());
    auto plain = test::runUnder(workload::generate(profile),
                                ExpConfig::Plain);
    auto secure = test::runUnder(workload::generate(profile),
                                 ExpConfig::RestSecureFull);
    auto debug = test::runUnder(workload::generate(profile),
                                ExpConfig::RestDebugFull);
    // Debug never beats secure by more than model noise; secure stays
    // within a modest envelope of plain even on adversarial profiles.
    EXPECT_GE(double(debug.cycles()) * 1.02,
              double(secure.cycles()));
    EXPECT_LT(double(secure.cycles()),
              double(plain.cycles()) * 1.60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSchemes,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace rest
