/**
 * @file
 * End-to-end detection matrix: every attack scenario under every
 * protection scheme, with the paper-specified expected outcome
 * (Fig. 1, §IV, §V-C).
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"

namespace rest
{

using sim::ExpConfig;
using test::runUnder;

namespace
{

struct Cell
{
    const char *attack;
    ExpConfig config;
    bool detected;
};

isa::Program
buildAttack(const std::string &name)
{
    using namespace workload::attacks;
    if (name == "heartbleed")
        return heartbleed(64, 256);
    if (name == "heap-overflow")
        return heapOverflowWrite(64, 64);
    if (name == "heap-underflow")
        return heapUnderflowRead(64, 8);
    if (name == "uaf")
        return useAfterFree(128);
    if (name == "double-free")
        return doubleFree(64);
    if (name == "stack-overflow")
        return stackOverflowWrite(16, 32);
    if (name == "strcpy-overflow")
        return strcpyOverflow(32, 150);
    rest_fatal("unknown attack ", name);
}

} // namespace

class DetectionMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(DetectionMatrix, OutcomeMatchesPaper)
{
    const Cell &cell = GetParam();
    auto result = runUnder(buildAttack(cell.attack), cell.config);
    EXPECT_EQ(result.faulted(), cell.detected)
        << cell.attack << " under "
        << sim::expConfigName(cell.config)
        << (result.faulted()
                ? " raised " + result.run.violation.toString()
                : " raised nothing");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DetectionMatrix,
    ::testing::Values(
        // Plain hardware detects nothing.
        Cell{"heartbleed", ExpConfig::Plain, false},
        Cell{"heap-overflow", ExpConfig::Plain, false},
        Cell{"heap-underflow", ExpConfig::Plain, false},
        Cell{"uaf", ExpConfig::Plain, false},
        Cell{"stack-overflow", ExpConfig::Plain, false},
        // ASan detects all of these.
        Cell{"strcpy-overflow", ExpConfig::Plain, false},
        Cell{"strcpy-overflow", ExpConfig::Asan, true},
        Cell{"strcpy-overflow", ExpConfig::RestSecureHeap, true},
        Cell{"heartbleed", ExpConfig::Asan, true},
        Cell{"heap-overflow", ExpConfig::Asan, true},
        Cell{"heap-underflow", ExpConfig::Asan, true},
        Cell{"uaf", ExpConfig::Asan, true},
        Cell{"double-free", ExpConfig::Asan, true},
        Cell{"stack-overflow", ExpConfig::Asan, true},
        // REST secure, full protection: everything.
        Cell{"heartbleed", ExpConfig::RestSecureFull, true},
        Cell{"heap-overflow", ExpConfig::RestSecureFull, true},
        Cell{"heap-underflow", ExpConfig::RestSecureFull, true},
        Cell{"uaf", ExpConfig::RestSecureFull, true},
        Cell{"double-free", ExpConfig::RestSecureFull, true},
        Cell{"stack-overflow", ExpConfig::RestSecureFull, true},
        // REST heap-only (legacy binaries): heap yes, stack no.
        Cell{"heartbleed", ExpConfig::RestSecureHeap, true},
        Cell{"heap-overflow", ExpConfig::RestSecureHeap, true},
        Cell{"uaf", ExpConfig::RestSecureHeap, true},
        Cell{"double-free", ExpConfig::RestSecureHeap, true},
        Cell{"stack-overflow", ExpConfig::RestSecureHeap, false},
        // Debug mode has identical coverage to secure.
        Cell{"heartbleed", ExpConfig::RestDebugFull, true},
        Cell{"uaf", ExpConfig::RestDebugFull, true},
        Cell{"stack-overflow", ExpConfig::RestDebugFull, true},
        // PerfectHW is a cost model only: no protection at all.
        Cell{"heartbleed", ExpConfig::PerfectHwFull, false},
        Cell{"uaf", ExpConfig::PerfectHwFull, false}));

TEST(DetectionSideEffects, HeartbleedLeaksOnPlainOnly)
{
    // On plain hardware, bytes beyond the 64-byte request buffer are
    // copied into the response: verify actual secret-ish bytes moved
    // (Fig. 1 (A)); under REST the copy stops at the redzone.
    {
        sim::System system(workload::attacks::heartbleed(64, 256),
                           sim::makeSystemConfig(sim::ExpConfig::Plain));
        auto r = system.run();
        ASSERT_FALSE(r.faulted());
    }
    {
        sim::System system(
            workload::attacks::heartbleed(64, 256),
            sim::makeSystemConfig(sim::ExpConfig::RestSecureHeap));
        auto r = system.run();
        ASSERT_TRUE(r.faulted());
        // The fault address is past the request buffer's end.
        EXPECT_GE(r.run.violation.faultAddr,
                  runtime::AddressMap::heapBase + 64);
    }
}

} // namespace rest
