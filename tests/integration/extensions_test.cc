/**
 * @file
 * Tests for the paper's §V-C hardening extensions and the
 * critical-word-first knob:
 *   - token sprinkling (decoy granules against redzone jumping),
 *   - stack-pad zeroing (closing the uninitialised-data-leak gap),
 *   - disabling critical-word-first fills (precise-exception cost).
 */

#include <gtest/gtest.h>

#include "common/test_util.hh"
#include "runtime/rest_allocator.hh"
#include "workload/spec_profiles.hh"

namespace rest
{

using sim::ExpConfig;

namespace
{

isa::Program
churnProgram(unsigned allocs)
{
    using isa::Opcode;
    isa::FuncBuilder b("main");
    b.movImm(2, allocs);
    int loop = b.here();
    b.movImm(13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.addI(2, 2, -1);
    b.branch(Opcode::Bne, 2, isa::regZero, loop);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

/** Allocate a few chunks, then linearly scan the heap gaps between
 *  the first and last payload (a corrupted-pointer sweep). */
isa::Program
allocThenScanProgram(unsigned allocs, std::uint32_t bytes)
{
    using isa::Opcode;
    isa::FuncBuilder b("main");
    b.movImm(2, allocs);
    int alloc_loop = b.here();
    b.movImm(13, 64);
    b.emit({Opcode::RtMalloc, isa::noReg, 13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(1, isa::regRet); // keep the last payload
    b.addI(2, 2, -1);
    b.branch(Opcode::Bne, 2, isa::regZero, alloc_loop);
    // Sweep forward from the last payload across chunk gaps.
    b.movImm(2, bytes / 8);
    int loop = b.here();
    b.load(3, 1, 0, 8);
    b.addI(1, 1, 8);
    b.addI(2, 2, -1);
    b.branch(Opcode::Bne, 2, isa::regZero, loop);
    b.halt();
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return prog;
}

} // namespace

TEST(Sprinkling, DecoysAreArmed)
{
    auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
    cfg.scheme.sprinkleTokensEvery = 4;
    sim::System system(churnProgram(40), cfg);
    auto r = system.run();
    EXPECT_FALSE(r.faulted());
    auto &alloc = dynamic_cast<runtime::RestAllocator &>(
        system.allocator());
    EXPECT_EQ(alloc.decoysArmed(), 10u);
}

TEST(Sprinkling, BenignWorkloadStaysClean)
{
    auto p = workload::profileByName("gcc");
    p.targetKiloInsts = 50;
    auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
    cfg.scheme.sprinkleTokensEvery = 2;
    sim::System system(workload::generate(p), cfg);
    EXPECT_FALSE(system.run().faulted());
}

TEST(Sprinkling, HeapSweepTripsTokens)
{
    // A corrupted-pointer sweep across allocated heap: decoys extend
    // the tripwire property into the gaps between chunks, so the
    // sweep faults on armed metadata it cannot predict.
    auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
    cfg.scheme.sprinkleTokensEvery = 1;
    sim::System system(allocThenScanProgram(8, 4096), cfg);
    auto r = system.run();
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.run.violation.kind, core::ViolationKind::TokenAccess);
}

TEST(PadZeroing, PadBytesAreZeroed)
{
    // Leave stale data on the stack with one call, then check the
    // next frame's pad is zeroed at entry.
    auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.scheme.zeroStackPadding = true;
    sim::System system(workload::attacks::stackPadOverflow(16, 0),
                       cfg);
    auto r = system.run();
    EXPECT_FALSE(r.faulted());
    EXPECT_GT(r.instrumentation.padZeroStores, 0u);
}

TEST(PadZeroing, DetectionBehaviourUnchanged)
{
    auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    cfg.scheme.zeroStackPadding = true;
    {
        sim::System system(
            workload::attacks::stackOverflowWrite(16, 32), cfg);
        EXPECT_TRUE(system.run().faulted());
    }
    {
        sim::System system(
            workload::attacks::stackOverflowWrite(16, 2), cfg);
        EXPECT_FALSE(system.run().faulted());
    }
}

TEST(PadZeroing, CostIsSmall)
{
    auto p = workload::profileByName("hmmer");
    p.targetKiloInsts = 50;
    auto base_cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    auto zero_cfg = base_cfg;
    zero_cfg.scheme.zeroStackPadding = true;
    sim::System a(workload::generate(p), base_cfg);
    sim::System b(workload::generate(p), zero_cfg);
    Cycles ca = a.run().cycles();
    Cycles cb = b.run().cycles();
    EXPECT_LT(static_cast<double>(cb),
              static_cast<double>(ca) * 1.10);
}

TEST(CriticalWordFirst, DisablingItCostsCycles)
{
    // The fill tail only lands on the critical path when load results
    // feed future addresses: use the pointer-chase benchmark.
    auto p = workload::profileByName("astar");
    p.targetKiloInsts = 50;
    auto cwf_cfg = sim::makeSystemConfig(ExpConfig::RestSecureFull);
    auto no_cwf_cfg = cwf_cfg;
    no_cwf_cfg.cpuConfig.criticalWordFirst = false;
    sim::System a(workload::generate(p), cwf_cfg);
    sim::System b(workload::generate(p), no_cwf_cfg);
    Cycles with_cwf = a.run().cycles();
    Cycles without_cwf = b.run().cycles();
    EXPECT_GT(without_cwf, with_cwf);
}

TEST(TokenRotation, HeapProtectionSurvivesRotation)
{
    // §IV-B: the token can be rotated (e.g. at reboot) without
    // recompilation. Model: two systems with different token seeds
    // both detect the same attack.
    for (std::uint64_t seed : {1ull, 999ull}) {
        auto cfg = sim::makeSystemConfig(ExpConfig::RestSecureHeap);
        cfg.tokenSeed = seed;
        sim::System system(workload::attacks::useAfterFree(96), cfg);
        EXPECT_TRUE(system.run().faulted()) << seed;
    }
}

} // namespace rest
