#include <gtest/gtest.h>

#include "cpu/cpu_test_util.hh"
#include "cpu/o3_cpu.hh"

namespace rest::cpu
{

using test::MemSystem;
using test::OpStream;
using test::VectorTrace;

namespace
{

RunResult
runStream(OpStream &s, core::RestMode mode = core::RestMode::Secure,
          CpuConfig cfg = {})
{
    MemSystem ms;
    O3Cpu cpu(cfg, mode, *ms.l1i, *ms.l1d);
    VectorTrace trace(s.ops);
    return cpu.run(trace);
}

} // namespace

TEST(O3Cpu, IndependentAluThroughput)
{
    // Long enough that the one-time cold I-cache warmup (~2k cycles)
    // amortises away.
    OpStream s;
    const unsigned n = 60000;
    for (unsigned i = 0; i < n; ++i)
        s.alu(static_cast<isa::RegId>(1 + i % 8));
    RunResult r = runStream(s);
    EXPECT_EQ(r.committedOps, n);
    // 6 ALU units: IPC should be well above 3 and at most ~6.
    double ipc = double(n) / r.cycles;
    EXPECT_GT(ipc, 3.0);
    EXPECT_LE(ipc, 6.5);
}

TEST(O3Cpu, DependentChainSerializes)
{
    OpStream s;
    const unsigned n = 2000;
    for (unsigned i = 0; i < n; ++i)
        s.alu(1, 1); // r1 = r1 + ...
    RunResult r = runStream(s);
    // One op per cycle at best for a serial chain (plus the cold
    // I-cache warmup).
    EXPECT_GE(r.cycles, n);
    EXPECT_LT(r.cycles, n + 4000);
}

TEST(O3Cpu, LoadHitLatencyOnChain)
{
    OpStream s;
    // Pointer-chase style: each load's result feeds the next address
    // register (rs1 = rd), all hitting one warm line.
    s.load(0x1000, 1);
    const unsigned n = 2000;
    for (unsigned i = 0; i < n; ++i)
        s.load(0x1000, 1, 1);
    RunResult r = runStream(s);
    // Serial L1 hits: ~latency cycles each (plus cold-fetch warmup).
    EXPECT_GT(r.cycles, 2 * n);
    EXPECT_LT(r.cycles, 4 * n + 4000);
}

TEST(O3Cpu, MemPortLimitBindsIndependentLoads)
{
    OpStream s;
    const unsigned n = 20000;
    for (unsigned i = 0; i < n; ++i)
        s.load(0x1000 + 8 * (i % 8), static_cast<isa::RegId>(1 + i % 4));
    RunResult r = runStream(s);
    double ipc = double(n) / r.cycles;
    // 2 memory ports: IPC cannot exceed 2.
    EXPECT_LE(ipc, 2.1);
    EXPECT_GT(ipc, 1.0);
}

TEST(O3Cpu, StoresDoNotBlockCommitInSecureMode)
{
    OpStream a, b;
    const unsigned n = 2000;
    for (unsigned i = 0; i < n; ++i) {
        a.store(0x100000 + 64 * i); // every store a cold miss
        b.store(0x100000 + 64 * i);
    }
    RunResult secure = runStream(a, core::RestMode::Secure);
    RunResult debug = runStream(b, core::RestMode::Debug);
    // Debug holds commit until the write completes: dramatically
    // slower on a cold-store sweep (paper §III-B / §VI-B).
    EXPECT_GT(debug.cycles, secure.cycles * 3);
    MemSystem ms; // silence unused warnings in some configs
    (void)ms;
}

TEST(O3Cpu, DebugModeReportsPreciseViolations)
{
    OpStream s;
    s.alu(1);
    s.load(0x2000, 2).fault = isa::FaultKind::RestTokenAccess;
    s.alu(3);
    RunResult r = runStream(s, core::RestMode::Debug);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.violation.kind, core::ViolationKind::TokenAccess);
    EXPECT_EQ(r.violation.precision, core::Precision::Precise);
    EXPECT_EQ(r.committedOps, 2u); // nothing after the fault commits
}

TEST(O3Cpu, SecureModeReportsImpreciseViolations)
{
    OpStream s;
    s.load(0x2000, 2).fault = isa::FaultKind::RestTokenAccess;
    RunResult r = runStream(s, core::RestMode::Secure);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.violation.precision, core::Precision::Imprecise);
}

TEST(O3Cpu, MisalignedRestInstAlwaysPrecise)
{
    OpStream s;
    s.arm(0x1001).fault = isa::FaultKind::RestMisaligned;
    RunResult r = runStream(s, core::RestMode::Secure);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.violation.kind,
              core::ViolationKind::MisalignedRestInst);
    EXPECT_EQ(r.violation.precision, core::Precision::Precise);
}

TEST(O3Cpu, LsqForwardingCounted)
{
    OpStream s;
    for (unsigned i = 0; i < 100; ++i) {
        s.store(0x3000, 2);
        s.load(0x3000, 1);
    }
    MemSystem ms;
    O3Cpu cpu({}, core::RestMode::Secure, *ms.l1i, *ms.l1d);
    VectorTrace trace(s.ops);
    cpu.run(trace);
    EXPECT_GT(cpu.statGroup().scalarValue("loads_forwarded"), 50u);
}

TEST(O3Cpu, LoadFromInflightArmRaises)
{
    OpStream s;
    s.arm(0x4000);
    s.load(0x4010, 1); // same granule, arm still in flight
    RunResult r = runStream(s);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.violation.kind, core::ViolationKind::TokenForward);
}

TEST(O3Cpu, ArmThenMuchLaterLoadIsCacheProblemNotLsq)
{
    OpStream s;
    s.arm(0x5000);
    for (unsigned i = 0; i < 3000; ++i)
        s.alu(1, 1); // serial chain: the arm drains long before
    s.load(0x5010, 2); // hardware would fault via token bit; the
                       // functional fault bit is not set here, so the
                       // LSQ must NOT fire
    RunResult r = runStream(s);
    EXPECT_FALSE(r.faulted());
}

TEST(O3Cpu, BranchMispredictsCostCycles)
{
    Xoshiro256ss rng(3);
    OpStream predictable, random_stream;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        predictable.branch(true);
        predictable.alu(1);
        random_stream.branch(rng.chance(0.5));
        random_stream.alu(1);
    }
    RunResult p = runStream(predictable);
    RunResult q = runStream(random_stream);
    EXPECT_GT(q.cycles, p.cycles * 2);
}

TEST(O3Cpu, OpsBySourceAttribution)
{
    OpStream s;
    s.alu(1).source = isa::OpSource::Program;
    s.alu(2).source = isa::OpSource::Allocator;
    s.alu(3).source = isa::OpSource::Allocator;
    s.alu(4).source = isa::OpSource::AccessCheck;
    RunResult r = runStream(s);
    EXPECT_EQ(r.opsBySource[unsigned(isa::OpSource::Program)], 1u);
    EXPECT_EQ(r.opsBySource[unsigned(isa::OpSource::Allocator)], 2u);
    EXPECT_EQ(r.opsBySource[unsigned(isa::OpSource::AccessCheck)], 1u);
}

TEST(O3Cpu, MaxOpsCapRespected)
{
    OpStream s;
    for (unsigned i = 0; i < 1000; ++i)
        s.alu(1);
    MemSystem ms;
    O3Cpu cpu({}, core::RestMode::Secure, *ms.l1i, *ms.l1d);
    VectorTrace trace(s.ops);
    RunResult r = cpu.run(trace, 100);
    EXPECT_EQ(r.committedOps, 100u);
}

} // namespace rest::cpu
