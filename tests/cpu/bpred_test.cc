#include <gtest/gtest.h>

#include "cpu/bpred.hh"
#include "util/random.hh"

namespace rest::cpu
{

TEST(Tage, LearnsAlwaysTaken)
{
    TagePredictor tage;
    int correct = 0;
    for (int i = 0; i < 200; ++i)
        correct += tage.update(0x1000, true);
    // After warmup, should predict essentially perfectly.
    EXPECT_GT(correct, 190);
}

TEST(Tage, LearnsAlwaysNotTaken)
{
    TagePredictor tage;
    int correct = 0;
    for (int i = 0; i < 200; ++i)
        correct += tage.update(0x2000, false);
    EXPECT_GT(correct, 190);
}

TEST(Tage, LearnsShortAlternation)
{
    // T N T N ... needs one bit of history: tagged tables handle it.
    TagePredictor tage;
    int correct = 0;
    for (int i = 0; i < 2000; ++i)
        correct += tage.update(0x3000, i % 2 == 0);
    EXPECT_GT(correct, 1800);
}

TEST(Tage, LearnsLoopExitPattern)
{
    // Taken 7 times, not-taken once (loop with 8 trips): a classic
    // pattern the long-history tables pick up.
    TagePredictor tage;
    int correct = 0;
    const int total = 4000;
    for (int i = 0; i < total; ++i)
        correct += tage.update(0x4000, i % 8 != 7);
    EXPECT_GT(correct, total * 9 / 10);
}

TEST(Tage, RandomPatternNearChance)
{
    TagePredictor tage;
    Xoshiro256ss rng(5);
    int correct = 0;
    const int total = 4000;
    for (int i = 0; i < total; ++i)
        correct += tage.update(0x5000, rng.chance(0.5));
    // Unpredictable stream: accuracy must be near 50%, definitely
    // not above 65%.
    EXPECT_LT(correct, total * 65 / 100);
    EXPECT_GT(correct, total * 35 / 100);
}

TEST(Tage, DistinguishesBranchPcs)
{
    TagePredictor tage;
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        correct += tage.update(0x6000, true);
        correct += tage.update(0x6004, false);
    }
    EXPECT_GT(correct, 1900);
}

TEST(BranchPredictor, RasPredictsReturns)
{
    BranchPredictor bp;
    bp.pushReturn(0x1004);
    bp.pushReturn(0x2004);
    EXPECT_TRUE(bp.predictReturn(0x2004));
    EXPECT_TRUE(bp.predictReturn(0x1004));
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(BranchPredictor, RasUnderflowMispredicts)
{
    BranchPredictor bp;
    EXPECT_FALSE(bp.predictReturn(0x1234));
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(BranchPredictor, RasWrongTargetMispredicts)
{
    BranchPredictor bp;
    bp.pushReturn(0x1004);
    EXPECT_FALSE(bp.predictReturn(0x9999));
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(BranchPredictor, DeepCallChains)
{
    BranchPredictor bp;
    for (Addr a = 0; a < 20; ++a)
        bp.pushReturn(0x1000 + 4 * a);
    int correct = 0;
    for (Addr a = 20; a-- > 0;)
        correct += bp.predictReturn(0x1000 + 4 * a);
    EXPECT_EQ(correct, 20);
}

TEST(BranchPredictor, CountsAccumulate)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.resolveConditional(0x100, true);
    EXPECT_EQ(bp.corrects() + bp.mispredicts(), 100u);
    EXPECT_GT(bp.corrects(), 90u);
}

} // namespace rest::cpu
