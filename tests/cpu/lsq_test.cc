/**
 * @file
 * Tests of the REST LSQ matching logic (paper Fig. 5 and Table I's
 * "LSQ" column).
 */

#include <gtest/gtest.h>

#include "cpu/lsq.hh"

namespace rest::cpu
{

namespace
{

Lsq::StoreEntry
entry(std::uint64_t seq, Addr addr, unsigned size, bool arm = false,
      bool disarm = false, Cycles done = 1000)
{
    return {seq, addr, size, arm, disarm, done};
}

} // namespace

TEST(Lsq, ForwardFromCoveringStore)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1000, 8);
    EXPECT_TRUE(chk.forwarded);
    EXPECT_EQ(chk.violation, core::ViolationKind::None);
}

TEST(Lsq, ForwardSubsetOfStore)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1004, 4);
    EXPECT_TRUE(chk.forwarded);
}

TEST(Lsq, PartialOverlapWaitsForWrite)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 4, false, false, 777));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1002, 8);
    EXPECT_FALSE(chk.forwarded);
    EXPECT_EQ(chk.mustWaitUntil, 777u);
}

TEST(Lsq, NoMatchNoForward)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x2000, 8);
    EXPECT_FALSE(chk.forwarded);
    EXPECT_EQ(chk.mustWaitUntil, 0u);
}

// Paper Fig. 5 / §III-B: a load that would forward from an in-flight
// arm raises a privileged REST exception (the token is secret).
TEST(Lsq, LoadHittingInflightArmFaults)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, /*arm=*/true));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1010, 8);
    EXPECT_EQ(chk.violation, core::ViolationKind::TokenForward);
}

TEST(Lsq, LoadNextToInflightArmOk)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, /*arm=*/true));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1040, 8);
    EXPECT_EQ(chk.violation, core::ViolationKind::None);
}

// Younger entries must not affect older loads.
TEST(Lsq, OnlyOlderEntriesConsidered)
{
    Lsq lsq;
    lsq.insert(entry(10, 0x1000, 64, /*arm=*/true));
    LoadLsqCheck chk = lsq.checkLoad(5, 0x1000, 8);
    EXPECT_EQ(chk.violation, core::ViolationKind::None);
    EXPECT_FALSE(chk.forwarded);
}

// Table I "Store": raise exception if SQ has arm for same location.
TEST(Lsq, StoreOverlappingInflightArmFaults)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, /*arm=*/true));
    EXPECT_EQ(lsq.checkInsert(0x1020, 8, false, false),
              core::ViolationKind::TokenForward);
    EXPECT_EQ(lsq.checkInsert(0x1040, 8, false, false),
              core::ViolationKind::None);
}

// Table I "Disarm": raise exception if SQ has disarm for the same
// location.
TEST(Lsq, DisarmOverlappingInflightDisarmFaults)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, false, /*disarm=*/true));
    EXPECT_EQ(lsq.checkInsert(0x1000, 64, false, true),
              core::ViolationKind::DisarmUnarmed);
    EXPECT_EQ(lsq.checkInsert(0x1040, 64, false, true),
              core::ViolationKind::None);
}

// An arm may be inserted over anything (Table I: "create entry").
TEST(Lsq, ArmInsertNeverFaults)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, true));
    lsq.insert(entry(2, 0x1000, 64, false, true));
    EXPECT_EQ(lsq.checkInsert(0x1000, 64, true, false),
              core::ViolationKind::None);
}

// Loads overlapping an in-flight disarm wait for its write (the zero
// value is implicit; no data to forward).
TEST(Lsq, LoadOverlappingDisarmWaits)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 64, false, true, 555));
    LoadLsqCheck chk = lsq.checkLoad(2, 0x1008, 8);
    EXPECT_FALSE(chk.forwarded);
    EXPECT_EQ(chk.mustWaitUntil, 555u);
    EXPECT_EQ(chk.violation, core::ViolationKind::None);
}

TEST(Lsq, YoungestMatchingEntryDecides)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8, false, false, 100));
    lsq.insert(entry(3, 0x1000, 8, false, false, 300));
    LoadLsqCheck chk = lsq.checkLoad(5, 0x1000, 8);
    EXPECT_TRUE(chk.forwarded); // from seq 3, the youngest older
}

TEST(Lsq, PruneDropsCompletedWrites)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8, false, false, 100));
    lsq.insert(entry(2, 0x2000, 8, false, false, 200));
    EXPECT_EQ(lsq.occupancy(), 2u);
    lsq.prune(150);
    EXPECT_EQ(lsq.occupancy(), 1u);
    lsq.prune(250);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

// In-order drain: completion times are monotone, so a long-latency
// elder holds its juniors in the queue (and earliestFree is the
// front's completion).
TEST(Lsq, InOrderDrainMonotoneCompletion)
{
    Lsq lsq;
    lsq.insert(entry(1, 0x1000, 8, false, false, 500));
    lsq.insert(entry(2, 0x2000, 8, false, false, 100));
    lsq.prune(200);
    EXPECT_EQ(lsq.occupancy(), 2u); // junior cannot leave early
    EXPECT_EQ(lsq.earliestFree(), 500u);
    lsq.prune(500);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

TEST(Lsq, FullAndCapacity)
{
    Lsq lsq(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        lsq.insert(entry(i, 0x1000 + 64 * i, 8, false, false,
                         1000 + i));
    EXPECT_TRUE(lsq.full());
    EXPECT_EQ(lsq.earliestFree(), 1000u);
    lsq.prune(1000);
    EXPECT_FALSE(lsq.full());
}

} // namespace rest::cpu
