/**
 * @file
 * Helpers for driving the CPU timing models with synthetic op streams.
 */

#ifndef REST_TESTS_CPU_CPU_TEST_UTIL_HH
#define REST_TESTS_CPU_CPU_TEST_UTIL_HH

#include <vector>

#include "core/token.hh"
#include "isa/dyn_op.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/guest_memory.hh"
#include "mem/rest_l1_cache.hh"
#include "util/random.hh"

namespace rest::test
{

/** TraceSource over a pre-built vector of ops. */
class VectorTrace : public isa::TraceSource
{
  public:
    explicit VectorTrace(std::vector<isa::DynOp> ops)
        : ops_(std::move(ops))
    {}

    bool
    next(isa::DynOp &out) override
    {
        if (pos_ >= ops_.size())
            return false;
        out = ops_[pos_];
        out.seq = pos_++;
        return true;
    }

  private:
    std::vector<isa::DynOp> ops_;
    std::size_t pos_ = 0;
};

/** Builder for synthetic op vectors. */
class OpStream
{
  public:
    std::vector<isa::DynOp> ops;

    isa::DynOp &
    alu(isa::RegId rd = isa::noReg, isa::RegId rs1 = isa::noReg,
        isa::RegId rs2 = isa::noReg)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Add;
        op.cls = isa::OpClass::IntAlu;
        op.rd = rd;
        op.rs1 = rs1;
        op.rs2 = rs2;
        op.pc = nextPc();
        ops.push_back(op);
        return ops.back();
    }

    isa::DynOp &
    load(Addr addr, isa::RegId rd = 1, isa::RegId rs1 = isa::noReg,
         unsigned size = 8)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Load;
        op.cls = isa::OpClass::MemRead;
        op.rd = rd;
        op.rs1 = rs1;
        op.eaddr = addr;
        op.size = static_cast<std::uint8_t>(size);
        op.pc = nextPc();
        ops.push_back(op);
        return ops.back();
    }

    isa::DynOp &
    store(Addr addr, isa::RegId rs2 = isa::noReg, unsigned size = 8)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Store;
        op.cls = isa::OpClass::MemWrite;
        op.rs2 = rs2;
        op.eaddr = addr;
        op.size = static_cast<std::uint8_t>(size);
        op.pc = nextPc();
        ops.push_back(op);
        return ops.back();
    }

    isa::DynOp &
    arm(Addr addr, unsigned granule = 64)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Arm;
        op.cls = isa::OpClass::MemArm;
        op.eaddr = addr;
        op.size = static_cast<std::uint8_t>(granule);
        op.pc = nextPc();
        ops.push_back(op);
        return ops.back();
    }

    isa::DynOp &
    disarm(Addr addr, unsigned granule = 64)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Disarm;
        op.cls = isa::OpClass::MemDisarm;
        op.eaddr = addr;
        op.size = static_cast<std::uint8_t>(granule);
        op.pc = nextPc();
        ops.push_back(op);
        return ops.back();
    }

    isa::DynOp &
    branch(bool taken)
    {
        isa::DynOp op;
        op.op = isa::Opcode::Bne;
        op.cls = isa::OpClass::Branch;
        op.isBranch = true;
        op.taken = taken;
        op.pc = nextPc();
        op.nextPc = op.pc + 4;
        ops.push_back(op);
        return ops.back();
    }

  private:
    // Loop over a 1 KiB code footprint so the I-cache warms up like
    // real loop code would; straight-line gigabyte text would make
    // every test I-cache bound.
    Addr nextPc() { return 0x400000 + 4 * (ops.size() % 256); }
};

/** A complete little memory system for CPU tests. */
struct MemSystem
{
    MemSystem()
    {
        Xoshiro256ss rng(99);
        tcr.writePrivileged(
            core::TokenValue::generate(rng, core::TokenWidth::Bytes64),
            core::RestMode::Secure);
        dram = std::make_unique<mem::Dram>();
        l2 = std::make_unique<mem::Cache>(mem::CacheConfig::l2(),
                                          *dram);
        l1i = std::make_unique<mem::Cache>(mem::CacheConfig::l1i(),
                                           *l2);
        l1d = std::make_unique<mem::RestL1Cache>(
            mem::CacheConfig::l1d(), *l2, memory, tcr);
    }

    mem::GuestMemory memory;
    core::TokenConfigRegister tcr;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::Cache> l2;
    std::unique_ptr<mem::Cache> l1i;
    std::unique_ptr<mem::RestL1Cache> l1d;
};

} // namespace rest::test

#endif // REST_TESTS_CPU_CPU_TEST_UTIL_HH
