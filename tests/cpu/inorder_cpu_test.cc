#include <gtest/gtest.h>

#include "cpu/cpu_test_util.hh"
#include "cpu/inorder_cpu.hh"

namespace rest::cpu
{

using test::MemSystem;
using test::OpStream;
using test::VectorTrace;

namespace
{

RunResult
runStream(OpStream &s)
{
    MemSystem ms;
    InOrderCpu cpu({}, *ms.l1i, *ms.l1d);
    VectorTrace trace(s.ops);
    return cpu.run(trace);
}

} // namespace

TEST(InOrderCpu, ScalarIssueIsOnePerCycle)
{
    OpStream s;
    const unsigned n = 2000;
    for (unsigned i = 0; i < n; ++i)
        s.alu(static_cast<isa::RegId>(1 + i % 8));
    RunResult r = runStream(s);
    // Even independent ALU ops cannot beat 1 IPC on a scalar core
    // (the slack allows the one-time cold I-cache warmup).
    EXPECT_GE(r.cycles, n);
    EXPECT_LT(r.cycles, n + n / 4 + 4000);
}

TEST(InOrderCpu, LoadMissesStallDependents)
{
    OpStream cold, warm;
    for (unsigned i = 0; i < 200; ++i) {
        cold.load(0x100000 + 4096 * i, 1);
        cold.alu(2, 1); // stalls on use
        warm.load(0x100000, 1);
        warm.alu(2, 1);
    }
    RunResult rc = runStream(cold);
    RunResult rw = runStream(warm);
    EXPECT_GT(rc.cycles, rw.cycles * 3);
}

TEST(InOrderCpu, FaultStopsExecution)
{
    OpStream s;
    s.alu(1);
    s.load(0x2000, 2).fault = isa::FaultKind::AsanReport;
    s.alu(3);
    s.alu(4);
    RunResult r = runStream(s);
    ASSERT_TRUE(r.faulted());
    EXPECT_EQ(r.violation.kind, core::ViolationKind::AsanCheckFailed);
    EXPECT_EQ(r.committedOps, 2u);
}

TEST(InOrderCpu, SlowerThanOutOfOrderOnIlp)
{
    OpStream a, b;
    for (unsigned i = 0; i < 30000; ++i) {
        a.alu(static_cast<isa::RegId>(1 + i % 8));
        b.alu(static_cast<isa::RegId>(1 + i % 8));
    }
    MemSystem ms1, ms2;
    InOrderCpu in({}, *ms1.l1i, *ms1.l1d);
    O3Cpu o3({}, core::RestMode::Secure, *ms2.l1i, *ms2.l1d);
    VectorTrace t1(a.ops), t2(b.ops);
    RunResult ri = in.run(t1);
    RunResult ro = o3.run(t2);
    EXPECT_GT(ri.cycles, ro.cycles * 3);
}

TEST(InOrderCpu, ArmAndDisarmExecuteAsStores)
{
    OpStream s;
    s.arm(0x1000);
    for (unsigned i = 0; i < 64; ++i)
        s.alu(1);
    s.disarm(0x1000);
    RunResult r = runStream(s);
    EXPECT_FALSE(r.faulted());
    EXPECT_EQ(r.committedOps, 66u);
}

} // namespace rest::cpu
