#include "core/exceptions.hh"

#include <sstream>

namespace rest::core
{

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::None: return "none";
      case ViolationKind::TokenAccess: return "token-access";
      case ViolationKind::TokenForward: return "token-forward";
      case ViolationKind::DisarmUnarmed: return "disarm-unarmed";
      case ViolationKind::MisalignedRestInst: return "misaligned-rest";
      case ViolationKind::AsanCheckFailed: return "asan-check";
      case ViolationKind::TagMismatch: return "tag-mismatch";
      case ViolationKind::PauthCheckFailed: return "pauth-check";
      default: return "<bad>";
    }
}

std::string
Violation::toString() const
{
    std::ostringstream os;
    os << violationKindName(kind) << " @addr=0x" << std::hex << faultAddr
       << " pc=0x" << pc << std::dec << " seq=" << seq << " ("
       << (precision == Precision::Precise ? "precise" : "imprecise")
       << ", cycle " << reportCycle << ")";
    return os.str();
}

} // namespace rest::core
