/**
 * @file
 * REST exception types (paper §III-A).
 *
 * A REST exception is handled at the next-higher privilege level and
 * cannot be masked from the faulting privilege level. In secure mode
 * reporting may be imprecise; in debug mode the full program state at
 * the faulting instruction is recoverable.
 */

#ifndef REST_CORE_EXCEPTIONS_HH
#define REST_CORE_EXCEPTIONS_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rest::core
{

/** Classification of a raised REST (or ASan-software) violation. */
enum class ViolationKind : std::uint8_t
{
    None,
    /** A regular load/store touched a token (the tripwire fired). */
    TokenAccess,
    /** A load would have forwarded from an in-flight arm in the LSQ. */
    TokenForward,
    /** disarm of a location that holds no token. */
    DisarmUnarmed,
    /** arm/disarm with an address not aligned to the token width. */
    MisalignedRestInst,
    /** ASan software check failed (for the baseline scheme). */
    AsanCheckFailed,
    /** Memory-tagging check failed (MTE-style lock-and-key scheme). */
    TagMismatch,
    /** Pointer-authentication check failed (signature missing or
     *  revoked). */
    PauthCheckFailed,
};

/** How the exception was reported relative to the faulting op. */
enum class Precision : std::uint8_t
{
    Precise,    ///< faulting instruction had not committed
    Imprecise,  ///< reported after the faulting instruction retired
};

/** A record of one raised violation. */
struct Violation
{
    ViolationKind kind = ViolationKind::None;
    Precision precision = Precision::Precise;
    Addr faultAddr = invalidAddr;  ///< faulting data address
    Addr pc = 0;                   ///< PC of the offending instruction
    std::uint64_t seq = 0;         ///< dynamic sequence number
    Cycles reportCycle = 0;        ///< cycle the exception was raised

    bool valid() const { return kind != ViolationKind::None; }

    /** Human-readable description. */
    std::string toString() const;
};

/** Mnemonic for a violation kind. */
const char *violationKindName(ViolationKind kind);

} // namespace rest::core

#endif // REST_CORE_EXCEPTIONS_HH
