/**
 * @file
 * The REST token: a large random secret value, and the privileged
 * token configuration register that holds it (paper §III-A).
 */

#ifndef REST_CORE_TOKEN_HH
#define REST_CORE_TOKEN_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "util/bit_utils.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace rest::core
{

/** Maximum supported token width in bytes (one 64B cache line). */
inline constexpr unsigned maxTokenBytes = 64;

/** Supported token widths (paper §III-B "Modifying Token Width"). */
enum class TokenWidth : std::uint8_t
{
    Bytes16 = 16,
    Bytes32 = 32,
    Bytes64 = 64,
};

/** Width in bytes as an integer. */
constexpr unsigned
tokenBytes(TokenWidth w)
{
    return static_cast<unsigned>(w);
}

/**
 * A token value: up to 512 random bits. Comparison against memory
 * contents is the primitive's whole job, so the representation is a
 * flat byte array.
 */
class TokenValue
{
  public:
    TokenValue() { bytes_.fill(0); }

    /** Generate a fresh random token of the given width. */
    static TokenValue
    generate(Xoshiro256ss &rng, TokenWidth width)
    {
        TokenValue t;
        t.width_ = width;
        for (unsigned i = 0; i < tokenBytes(width); i += 8) {
            std::uint64_t v = rng();
            std::memcpy(&t.bytes_[i], &v, 8);
        }
        // An all-zero token would collide with zeroed memory; the
        // generator cannot realistically produce one, but guard anyway.
        bool all_zero = true;
        for (unsigned i = 0; i < tokenBytes(width); ++i)
            all_zero &= (t.bytes_[i] == 0);
        if (all_zero)
            t.bytes_[0] = 0x5a;
        return t;
    }

    TokenWidth width() const { return width_; }
    unsigned sizeBytes() const { return tokenBytes(width_); }

    /** Raw bytes of the token (sizeBytes() long). */
    std::span<const std::uint8_t> bytes() const
    { return {bytes_.data(), sizeBytes()}; }

    /**
     * Does the given memory chunk equal the token value? 'chunk' must
     * be exactly sizeBytes() long; this mirrors the hardware detector
     * comparing a token-aligned granule during a cache fill.
     */
    bool
    matches(std::span<const std::uint8_t> chunk) const
    {
        if (chunk.size() != sizeBytes())
            return false;
        return std::memcmp(chunk.data(), bytes_.data(), sizeBytes()) == 0;
    }

    bool
    operator==(const TokenValue &o) const
    {
        return width_ == o.width_ &&
            std::memcmp(bytes_.data(), o.bytes_.data(),
                        sizeBytes()) == 0;
    }

  private:
    std::array<std::uint8_t, maxTokenBytes> bytes_;
    TokenWidth width_ = TokenWidth::Bytes64;
};

/** REST operating modes (paper §III-A). */
enum class RestMode : std::uint8_t
{
    /** Deployment mode: imprecise REST exceptions, full speed. */
    Secure,
    /** Development mode: precise exceptions, stores held at commit. */
    Debug,
};

/**
 * The token configuration register. Holds the token value and the
 * mode bit. Not accessible to user-level code: setting the value is
 * done through privileged memory-mapped stores, modelled by
 * writePrivileged(); user-mode write attempts must be routed to
 * writeUser(), which refuses.
 */
class TokenConfigRegister
{
  public:
    /** The memory-mapped address window used to program the register. */
    static constexpr Addr mmioBase = 0xffffff0000000000ull;
    static constexpr Addr mmioSize = maxTokenBytes + 8;

    /** Install a token value and mode from privileged code. */
    void
    writePrivileged(const TokenValue &value, RestMode mode)
    {
        token_ = value;
        mode_ = mode;
        ++generation_;
    }

    /**
     * A user-level write attempt to the register window.
     * @return false always: the register is privileged (§III-A).
     */
    bool writeUser() const { return false; }

    /** Rotate the token (e.g. at reboot, §IV-B), keeping the width. */
    void
    rotate(Xoshiro256ss &rng)
    {
        token_ = TokenValue::generate(rng, token_.width());
        ++generation_;
    }

    const TokenValue &token() const { return token_; }
    RestMode mode() const { return mode_; }
    void setMode(RestMode m) { mode_ = m; }
    std::uint64_t generation() const { return generation_; }

    /** Token width in bytes (granule size for arm/disarm alignment). */
    unsigned granule() const { return token_.sizeBytes(); }

  private:
    TokenValue token_;
    RestMode mode_ = RestMode::Secure;
    std::uint64_t generation_ = 0;
};

} // namespace rest::core

#endif // REST_CORE_TOKEN_HH
