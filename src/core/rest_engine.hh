/**
 * @file
 * Functional semantics of the REST primitive.
 *
 * RestEngine is the architectural-level referee: it tracks which
 * token-width granules are currently armed and adjudicates every
 * arm/disarm/load/store the program performs, exactly as the hardware
 * (token detector + token bits, paper §III-B) would. The timing-side
 * L1-D model (mem::RestL1Cache) and LSQ model (cpu::Lsq) implement the
 * same semantics microarchitecturally; tests cross-check the two.
 */

#ifndef REST_CORE_REST_ENGINE_HH
#define REST_CORE_REST_ENGINE_HH

#include <array>
#include <cstdint>
#include <unordered_set>

#include "core/exceptions.hh"
#include "core/token.hh"
#include "util/bit_utils.hh"
#include "util/types.hh"

namespace rest::core
{

/** Outcome of presenting one operation to the engine. */
struct RestCheck
{
    ViolationKind violation = ViolationKind::None;
    bool ok() const { return violation == ViolationKind::None; }
};

/**
 * Architectural arm/disarm/access semantics over a set of armed
 * granules.
 */
class RestEngine
{
  public:
    explicit RestEngine(const TokenConfigRegister &tcr) : tcr_(tcr) {}

    /**
     * Execute an arm: blacklists the granule at 'addr'.
     * @return MisalignedRestInst if addr is not token-width aligned.
     */
    RestCheck
    arm(Addr addr)
    {
        if (!isAligned(addr, tcr_.granule()))
            return {ViolationKind::MisalignedRestInst};
        if (armed_.insert(addr).second)
            filterAdd(addr);
        ++armsExecuted_;
        return {};
    }

    /**
     * Execute a disarm: un-blacklists the granule at 'addr' (zeroing
     * it is the caller's job, matching hardware clearing the line).
     * @return MisalignedRestInst on bad alignment; DisarmUnarmed if no
     *         token is present at the location (paper §III-A: disarm
     *         requires precise knowledge of armed locations).
     */
    RestCheck
    disarm(Addr addr)
    {
        if (!isAligned(addr, tcr_.granule()))
            return {ViolationKind::MisalignedRestInst};
        auto it = armed_.find(addr);
        if (it == armed_.end())
            return {ViolationKind::DisarmUnarmed};
        armed_.erase(it);
        filterRemove(addr);
        ++disarmsExecuted_;
        return {};
    }

    /**
     * Adjudicate a regular data access of 'size' bytes at 'addr'.
     * @return TokenAccess if any byte of the access lies in an armed
     *         granule.
     */
    RestCheck
    checkAccess(Addr addr, unsigned size) const
    {
        const unsigned g = tcr_.granule();
        Addr first = alignDown(addr, g);
        Addr last = alignDown(addr + size - 1, g);
        for (Addr a = first; a <= last; a += g) {
            // Direct-mapped filter first: the common benign access
            // rejects on one bit of the hot bitmap (8 KiB — stays
            // L1-resident) instead of a hash probe.
            if (filterHit(a) && armed_.count(a))
                return {ViolationKind::TokenAccess};
        }
        return {};
    }

    /** Is the exact granule at 'addr' armed? */
    bool isArmed(Addr addr) const { return armed_.count(addr) != 0; }

    /** Does [addr, addr+size) overlap any armed granule? */
    bool
    overlapsArmed(Addr addr, unsigned size) const
    {
        return !checkAccess(addr, size).ok();
    }

    /** Number of currently armed granules. */
    std::size_t armedCount() const { return armed_.size(); }

    /** Lifetime counts, for the experiment harness's attribution. */
    std::uint64_t armsExecuted() const { return armsExecuted_; }
    std::uint64_t disarmsExecuted() const { return disarmsExecuted_; }

    const TokenConfigRegister &configRegister() const { return tcr_; }

    /** Drop all armed state (fresh program). */
    void
    reset()
    {
        armed_.clear();
        filterCounts_.fill(0);
        filterBits_.fill(0);
        armsExecuted_ = disarmsExecuted_ = 0;
    }

  private:
    /**
     * Direct-mapped occupancy filter in front of the armed set: slot
     * (addr >> 4) & mask counts the armed granules hashing there
     * (granule starts are >= 16-byte aligned, so >> 4 never aliases
     * two distinct granules to the same low bits). A zero slot proves
     * no armed granule maps there — checkAccess() skips the hash
     * probe, which is the hot path for every benign load/store.
     *
     * The filter is split into a cold counting array (touched only by
     * arm/disarm) and a hot occupancy bitmap derived from it (count
     * != 0), so the per-access probe reads one bit of an 8 KiB array
     * that stays L1-resident instead of one byte of a 64 KiB one. A
     * count that saturates at 255 sticks (never decremented), keeping
     * the filter conservative: false positives only cost the probe.
     */
    static constexpr std::size_t filterSlots = 1u << 16;

    static std::size_t
    filterSlot(Addr granule_addr)
    {
        return (granule_addr >> 4) & (filterSlots - 1);
    }

    bool
    filterHit(Addr addr) const
    {
        const std::size_t s = filterSlot(addr);
        return filterBits_[s >> 3] & (1u << (s & 7));
    }

    void
    filterAdd(Addr addr)
    {
        const std::size_t s = filterSlot(addr);
        std::uint8_t &count = filterCounts_[s];
        if (count != 255)
            ++count;
        filterBits_[s >> 3] |= std::uint8_t(1u << (s & 7));
    }

    void
    filterRemove(Addr addr)
    {
        const std::size_t s = filterSlot(addr);
        std::uint8_t &count = filterCounts_[s];
        if (count != 255 && --count == 0)
            filterBits_[s >> 3] &= std::uint8_t(~(1u << (s & 7)));
    }

    const TokenConfigRegister &tcr_;
    std::unordered_set<Addr> armed_;
    std::array<std::uint8_t, filterSlots> filterCounts_{};
    std::array<std::uint8_t, filterSlots / 8> filterBits_{};
    std::uint64_t armsExecuted_ = 0;
    std::uint64_t disarmsExecuted_ = 0;
};

} // namespace rest::core

#endif // REST_CORE_REST_ENGINE_HH
