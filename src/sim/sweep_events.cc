#include "sim/sweep_events.hh"

#include "util/json_reader.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"

namespace rest::sim
{

const char *
sweepEventName(SweepEventKind kind)
{
    switch (kind) {
      case SweepEventKind::SweepBegin: return "sweep-begin";
      case SweepEventKind::Queued: return "queued";
      case SweepEventKind::Running: return "running";
      case SweepEventKind::Retrying: return "retrying";
      case SweepEventKind::Done: return "done";
      case SweepEventKind::Failed: return "failed";
    }
    rest_panic("bad SweepEventKind");
}

std::optional<SweepEventKind>
sweepEventFromName(const std::string &name)
{
    for (auto kind : {SweepEventKind::SweepBegin,
                      SweepEventKind::Queued, SweepEventKind::Running,
                      SweepEventKind::Retrying, SweepEventKind::Done,
                      SweepEventKind::Failed})
        if (name == sweepEventName(kind))
            return kind;
    return std::nullopt;
}

void
SweepEvent::writeJsonLine(std::ostream &os) const
{
    util::JsonWriter w(os, /*indent=*/0);
    w.beginObject();
    w.field("seq", seq);
    w.field("event", sweepEventName(kind));
    w.field("sweep", sweep);
    w.field("job", std::uint64_t(job));
    w.field("bench", bench);
    w.field("label", label);
    w.field("attempt", attempt);
    w.field("total_jobs", std::uint64_t(totalJobs));
    w.field("threads", threads);
    w.field("from_checkpoint", fromCheckpoint);
    w.field("timed_out", timedOut);
    w.field("wall_ms", wallMs);
    w.field("ops", ops);
    w.field("error", error);
    w.endObject();
    os << '\n';
}

std::optional<SweepEvent>
SweepEvent::fromJson(const util::JsonValue &v)
{
    using K = util::JsonValue;
    if (v.kind != K::Object)
        return std::nullopt;
    auto want = [&v](const char *key, K::Kind kind) {
        return v.has(key) && v.at(key).kind == kind;
    };
    if (!want("seq", K::Number) || !want("event", K::String) ||
        !want("sweep", K::String) || !want("job", K::Number) ||
        !want("bench", K::String) || !want("label", K::String) ||
        !want("attempt", K::Number) ||
        !want("total_jobs", K::Number) ||
        !want("threads", K::Number) ||
        !want("from_checkpoint", K::Bool) ||
        !want("timed_out", K::Bool) || !want("wall_ms", K::Number) ||
        !want("ops", K::Number) || !want("error", K::String))
        return std::nullopt;
    auto kind = sweepEventFromName(v.at("event").str);
    if (!kind)
        return std::nullopt;

    SweepEvent e;
    e.seq = v.at("seq").u64();
    e.kind = *kind;
    e.sweep = v.at("sweep").str;
    e.job = std::size_t(v.at("job").u64());
    e.bench = v.at("bench").str;
    e.label = v.at("label").str;
    e.attempt = unsigned(v.at("attempt").u64());
    e.totalJobs = std::size_t(v.at("total_jobs").u64());
    e.threads = unsigned(v.at("threads").u64());
    e.fromCheckpoint = v.at("from_checkpoint").boolean;
    e.timedOut = v.at("timed_out").boolean;
    e.wallMs = v.at("wall_ms").number;
    e.ops = v.at("ops").u64();
    e.error = v.at("error").str;
    return e;
}

SweepEventLog::SweepEventLog(const std::string &path) : os_(path)
{
    if (!os_.is_open())
        rest_warn("cannot open event log \"", path,
                  "\"; event logging disabled");
}

void
SweepEventLog::append(const SweepEvent &event)
{
    if (!os_.is_open())
        return;
    std::lock_guard lock(mutex_);
    event.writeJsonLine(os_);
    os_.flush();
}

} // namespace rest::sim
