/**
 * @file
 * Per-job lifecycle events for sweep telemetry (DESIGN.md §12).
 *
 * The SweepRunner publishes one SweepEvent per lifecycle transition:
 *
 *   sweep-begin            once per run(), carrying total_jobs/threads
 *   queued                 every job, in submission order
 *   running                each attempt's start (attempt = 1, 2, ...)
 *   retrying               a transient failure with attempts left
 *   done                   terminal success (wall_ms, ops filled in;
 *                          from_checkpoint marks restored jobs)
 *   failed                 terminal failure (error, timed_out)
 *
 * Events flow through a SweepEventBus: publish() assigns monotonic
 * sequence numbers and fans out to the subscribed listeners *under the
 * bus lock*, so every listener observes the same total order and
 * sequence numbers appear in order in every sink. Two listeners ship
 * with the runner: SweepStatusTracker (sim/sweep_status.hh, feeds the
 * /status and /metrics endpoints) and SweepEventLog (--event-log, a
 * JSONL file with one event per line).
 *
 * The JSONL schema is stable and replayable: every field is emitted on
 * every line in a fixed order, and fromJson()/writeJsonLine() round-
 * trip byte-exactly (tests/sim/telemetry_test.cc enforces this), so
 * downstream tooling can parse, transform and re-emit logs without
 * drift.
 */

#ifndef REST_SIM_SWEEP_EVENTS_HH
#define REST_SIM_SWEEP_EVENTS_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace rest::util
{
struct JsonValue;
} // namespace rest::util

namespace rest::sim
{

enum class SweepEventKind
{
    SweepBegin,
    Queued,
    Running,
    Retrying,
    Done,
    Failed,
};

/** Stable wire name ("sweep-begin", "queued", ...). */
const char *sweepEventName(SweepEventKind kind);

/** Inverse of sweepEventName(); nullopt for unknown names. */
std::optional<SweepEventKind>
sweepEventFromName(const std::string &name);

struct SweepEvent
{
    /** Monotonic per-bus sequence number (assigned by publish()). */
    std::uint64_t seq = 0;
    SweepEventKind kind = SweepEventKind::Queued;
    /** Sweep display name (SweepOptions::sweepName). */
    std::string sweep;
    /** Job submission index (0 for sweep-begin). */
    std::size_t job = 0;
    std::string bench;
    std::string label;
    /** Attempt number for running/retrying/done/failed (1-based). */
    unsigned attempt = 0;
    /** sweep-begin only. */
    std::size_t totalJobs = 0;
    unsigned threads = 0;
    bool fromCheckpoint = false;
    bool timedOut = false;
    /** Final attempt's wall time (done/failed). */
    double wallMs = 0.0;
    /** Simulated ops of a done job (drives live-KIPS derivation). */
    std::uint64_t ops = 0;
    /** Empty unless retrying/failed. */
    std::string error;

    /** One compact JSON object + '\n', every field, fixed key order. */
    void writeJsonLine(std::ostream &os) const;

    /** Parse one logged object; nullopt when the schema is violated. */
    static std::optional<SweepEvent>
    fromJson(const util::JsonValue &v);
};

/**
 * Fan-out bus. subscribe() is not thread-safe against publish(): wire
 * up all listeners before handing the bus to a SweepRunner.
 */
class SweepEventBus
{
  public:
    using Listener = std::function<void(const SweepEvent &)>;

    void subscribe(Listener listener)
    { listeners_.push_back(std::move(listener)); }

    /**
     * Assign the next sequence number and deliver to every listener.
     * Serialised: listeners see a total order consistent with seq.
     * Listeners must not publish re-entrantly.
     */
    void
    publish(SweepEvent event)
    {
        std::lock_guard lock(mutex_);
        event.seq = next_seq_++;
        for (const auto &listener : listeners_)
            listener(event);
    }

    std::uint64_t
    eventCount() const
    {
        std::lock_guard lock(mutex_);
        return next_seq_;
    }

  private:
    mutable std::mutex mutex_;
    std::uint64_t next_seq_ = 0;
    std::vector<Listener> listeners_;
};

/**
 * The --event-log sink: one JSONL line per event, flushed per line so
 * a killed sweep's log is complete up to the last event delivered.
 */
class SweepEventLog
{
  public:
    /** Opens (truncates) `path`; warns and disables itself on failure. */
    explicit SweepEventLog(const std::string &path);

    bool ok() const { return os_.is_open(); }

    void append(const SweepEvent &event);

  private:
    std::ofstream os_;
    std::mutex mutex_;
};

} // namespace rest::sim

#endif // REST_SIM_SWEEP_EVENTS_HH
