/**
 * @file
 * Fast-functional retirement driver.
 *
 * Pulls DynOps from a TraceSource (the emulator) and retires them
 * with no pipeline bookkeeping at all: no ROB/IQ/LSQ occupancy, no
 * branch predictor, no cache timing. Ops are pulled in arena-allocated
 * batches whose storage is recycled block-for-block every batch, and
 * stat updates are flushed once per batch rather than per op.
 *
 * Equivalence contract (DESIGN.md §11): all *architectural* fault
 * detection lives in the emulator and rides on the DynOp, so the fast
 * path reports byte-identical verdicts, fault PCs/addresses and
 * retired-op counts to the detailed model. What it does NOT model are
 * the LSQ in-flight refinements (a TokenForward raised while an arm
 * is still in the store queue) — the same op still faults, with the
 * architectural kind. Cycle counts are nominal (CPI == 1) and never
 * quotable as performance results.
 */

#ifndef REST_SIM_FAST_FUNCTIONAL_HH
#define REST_SIM_FAST_FUNCTIONAL_HH

#include <cstdint>

#include "core/token.hh"
#include "cpu/o3_cpu.hh"
#include "isa/dyn_op.hh"
#include "util/arena.hh"
#include "util/stats.hh"

namespace rest::sim
{

class FastFunctional
{
  public:
    /** Ops pulled and retired per arena batch. */
    static constexpr std::uint64_t batchOps = 512;

    /** @param mode secure or debug; only affects the reported
     *         precision of a violation, exactly like the O3 model. */
    explicit FastFunctional(core::RestMode mode);

    /**
     * Retire the stream to completion / fault / cap. The returned
     * RunResult has the same committedOps/opsBySource/violation a
     * detailed run would produce; cycles are nominal (== ops).
     */
    cpu::RunResult run(isa::TraceSource &src,
                       std::uint64_t max_ops = ~std::uint64_t(0));

    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }

  private:
    core::RestMode mode_;
    util::Arena arena_;
    /** The recycled batch block (lazily carved from the arena). */
    isa::DynOp *batch_ = nullptr;
    stats::StatGroup stats_;
    stats::Scalar &retiredOps_;
    stats::Scalar &nominalCycles_;
    stats::Scalar &batches_;
};

} // namespace rest::sim

#endif // REST_SIM_FAST_FUNCTIONAL_HH
