/**
 * @file
 * The functional emulator: executes a finalised guest program against
 * guest memory, the configured allocator/runtime and the REST engine,
 * and streams dynamic ops (isa::TraceSource) to a timing CPU model.
 *
 * Faults are detected here architecturally — every load/store is
 * checked against the armed-granule set (what the L1-D token bits
 * would catch), AsanCheck ops evaluate the shadow, arm/disarm enforce
 * alignment and pairing — and are carried on the faulting DynOp for
 * the timing model to report with the configured precision.
 */

#ifndef REST_SIM_EMULATOR_HH
#define REST_SIM_EMULATOR_HH

#include <array>
#include <memory>
#include <vector>

#include "core/rest_engine.hh"
#include "isa/decode_cache.hh"
#include "isa/dyn_op.hh"
#include "isa/program.hh"
#include "mem/guest_memory.hh"
#include "runtime/access_policy.hh"
#include "runtime/allocator.hh"
#include "runtime/interceptors.hh"
#include "runtime/runtime_config.hh"
#include "runtime/shadow_memory.hh"

namespace rest::sim
{

/** Functional execution + trace generation. */
class Emulator : public isa::TraceSource
{
  public:
    /**
     * @param program finalised (instrumented) program.
     * @param memory guest memory.
     * @param engine REST architectural referee.
     * @param allocator the linked-in allocator model.
     * @param scheme active software configuration.
     * @param policy per-access check predicate for pointer-tagging
     *        schemes (mte, pauth); null keeps the historical inline
     *        token/shadow path untouched.
     * @param stack_top initial sp/fp. The default is the historical
     *        single-core stack; the multicore machine gives every
     *        core's emulator a disjoint slice below it.
     */
    Emulator(const isa::Program &program, mem::GuestMemory &memory,
             core::RestEngine &engine, runtime::Allocator &allocator,
             const runtime::SchemeConfig &scheme,
             const runtime::AccessPolicy *policy = nullptr,
             Addr stack_top = runtime::AddressMap::stackTop);

    /** TraceSource: produce the next dynamic op. */
    bool next(isa::DynOp &out) override;

    /** TraceSource: batch drain — the fast-functional hot loop. */
    std::size_t nextBatch(isa::DynOp *out, std::size_t max) override;

    /** Architectural register read (test support). */
    std::uint64_t reg(isa::RegId r) const { return regs_[r]; }

    /** Has the program halted (or faulted)? */
    bool halted() const { return halted_ && queue_.empty(); }

    /** Did execution fault, and how? */
    isa::FaultKind faultKind() const { return fault_; }

    /** Total ops produced so far. */
    std::uint64_t opsProduced() const { return seq_; }

    mem::GuestMemory &memory() { return memory_; }
    runtime::Allocator &allocator() { return allocator_; }

  private:
    struct Frame
    {
        std::size_t funcIdx;
        std::size_t retInstIdx;
        std::uint64_t savedFp;
        std::uint64_t savedSp;
    };

    /** Execute one static instruction, emitting op(s) to the queue. */
    /**
     * Execute one guest instruction. When 'direct' is non-null and
     * the instruction produces exactly one op (no runtime expansion),
     * the op is written straight into *direct and directProduced_ is
     * set — the hot path skips the queue round-trip entirely.
     * Runtime services always go through the queue.
     */
    void step(isa::DynOp *direct = nullptr);

    /** Mark execution faulted at the given queued op. */
    void raise(isa::DynOp &op, isa::FaultKind kind);

    /**
     * Switch the stepping state to function 'f': caches the
     * instruction array, decode-template row, length and PC base so
     * step() touches no per-function tables — they change only on
     * Call/Ret, not per instruction.
     */
    void enterFunc(std::size_t f);

    const isa::Program &program_;
    mem::GuestMemory &memory_;
    core::RestEngine &engine_;
    runtime::Allocator &allocator_;
    runtime::SchemeConfig scheme_;
    /** Non-null for tag-checking schemes; owned by the allocator. */
    const runtime::AccessPolicy *policy_;
    runtime::Interceptors interceptors_;
    /** Static-decode work (pc/class/source/regs) paid once per
     *  program; step() copies templates instead of re-deriving. */
    isa::DecodeCache decode_;
    /** Shadow view reused across AsanCheck ops (check-sequence
     *  state hoisted out of the per-op path). */
    runtime::ShadowMemory shadow_;

    std::array<std::uint64_t, isa::numRegs> regs_{};
    std::vector<Frame> callStack_;
    std::size_t funcIdx_ = 0;
    std::size_t instIdx_ = 0;
    std::vector<Addr> pcBases_;
    /** Cached view of funcs[funcIdx_] (see enterFunc()). */
    const isa::Inst *insts_ = nullptr;
    const isa::DynOp *decodeRow_ = nullptr;
    std::size_t fnInsts_ = 0;
    Addr pcBase_ = 0;

    isa::OpQueue queue_;
    std::unique_ptr<runtime::OpEmitter> emitter_;
    /** step() wrote its op into the caller's direct slot. */
    bool directProduced_ = false;
    /** Scratch op record for steps with no direct slot — a member so
     *  the hot path never default-constructs a DynOp; the decode
     *  template assignment overwrites every field before use. */
    isa::DynOp scratch_;

    bool halted_ = false;
    isa::FaultKind fault_ = isa::FaultKind::None;
    std::uint64_t seq_ = 0;
};

} // namespace rest::sim

#endif // REST_SIM_EMULATOR_HH
