/**
 * @file
 * The functional emulator: executes a finalised guest program against
 * guest memory, the configured allocator/runtime and the REST engine,
 * and streams dynamic ops (isa::TraceSource) to a timing CPU model.
 *
 * Faults are detected here architecturally — every load/store is
 * checked against the armed-granule set (what the L1-D token bits
 * would catch), AsanCheck ops evaluate the shadow, arm/disarm enforce
 * alignment and pairing — and are carried on the faulting DynOp for
 * the timing model to report with the configured precision.
 */

#ifndef REST_SIM_EMULATOR_HH
#define REST_SIM_EMULATOR_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "core/rest_engine.hh"
#include "isa/dyn_op.hh"
#include "isa/program.hh"
#include "mem/guest_memory.hh"
#include "runtime/allocator.hh"
#include "runtime/interceptors.hh"
#include "runtime/runtime_config.hh"

namespace rest::sim
{

/** Functional execution + trace generation. */
class Emulator : public isa::TraceSource
{
  public:
    /**
     * @param program finalised (instrumented) program.
     * @param memory guest memory.
     * @param engine REST architectural referee.
     * @param allocator the linked-in allocator model.
     * @param scheme active software configuration.
     */
    Emulator(const isa::Program &program, mem::GuestMemory &memory,
             core::RestEngine &engine, runtime::Allocator &allocator,
             const runtime::SchemeConfig &scheme);

    /** TraceSource: produce the next dynamic op. */
    bool next(isa::DynOp &out) override;

    /** Architectural register read (test support). */
    std::uint64_t reg(isa::RegId r) const { return regs_[r]; }

    /** Has the program halted (or faulted)? */
    bool halted() const { return halted_ && queue_.empty(); }

    /** Did execution fault, and how? */
    isa::FaultKind faultKind() const { return fault_; }

    /** Total ops produced so far. */
    std::uint64_t opsProduced() const { return seq_; }

    mem::GuestMemory &memory() { return memory_; }
    runtime::Allocator &allocator() { return allocator_; }

  private:
    struct Frame
    {
        std::size_t funcIdx;
        std::size_t retInstIdx;
        std::uint64_t savedFp;
        std::uint64_t savedSp;
    };

    /** Execute one static instruction, emitting op(s) to the queue. */
    void step();

    /** Emit the program-level DynOp for the current static inst. */
    isa::DynOp makeOp(const isa::Inst &inst) const;

    /** Mark execution faulted at the given queued op. */
    void raise(isa::DynOp &op, isa::FaultKind kind);

    const isa::Program &program_;
    mem::GuestMemory &memory_;
    core::RestEngine &engine_;
    runtime::Allocator &allocator_;
    runtime::SchemeConfig scheme_;
    runtime::Interceptors interceptors_;

    std::array<std::uint64_t, isa::numRegs> regs_{};
    std::vector<Frame> callStack_;
    std::size_t funcIdx_ = 0;
    std::size_t instIdx_ = 0;
    std::vector<Addr> pcBases_;

    std::deque<isa::DynOp> queue_;
    std::unique_ptr<runtime::OpEmitter> emitter_;

    bool halted_ = false;
    isa::FaultKind fault_ = isa::FaultKind::None;
    std::uint64_t seq_ = 0;
};

} // namespace rest::sim

#endif // REST_SIM_EMULATOR_HH
