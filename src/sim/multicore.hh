/**
 * @file
 * MultiCoreSystem: N cores over a MESI-coherent cache hierarchy.
 *
 * The single-core System models the paper's evaluation machine; this
 * assembles the server-shaped variant (ROADMAP): every core gets a
 * private L1-I/L1-D pair — the L1-D is the REST-modified cache, so
 * token detection stays a per-L1 fill-path property — behind one
 * snooping CoherenceBus (mem/coherence.hh), over the shared L2 and
 * DRAM. Guest memory, the token config register, the REST engine and
 * the allocator are shared machine-wide: core B touching a granule
 * that core A's free() armed traps exactly like a local dangling
 * access, through the coherence transfer of the token-bearing line.
 *
 * Each core runs its own guest program (its "thread": a server request
 * handler, an attack victim, ...) on its own functional emulator with
 * a disjoint stack slice. Execution interleaves the cores round-robin
 * in fixed op quanta on one host thread — the per-core pipeline clocks
 * (both timing models keep their commit clock across run() calls) and
 * the shared hierarchy make the interleaving deterministic: same seed,
 * same programs, same schedule, byte-identical results.
 *
 * A 1-core machine attaches no bus and runs its program in a single
 * unsliced call: it is exactly the single-core System configuration
 * (tests/sim/multicore_test.cc holds the two equal cycle-for-cycle).
 */

#ifndef REST_SIM_MULTICORE_HH
#define REST_SIM_MULTICORE_HH

#include <memory>
#include <vector>

#include "core/rest_engine.hh"
#include "core/token.hh"
#include "cpu/inorder_cpu.hh"
#include "cpu/o3_cpu.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/dram.hh"
#include "mem/guest_memory.hh"
#include "mem/rest_l1_cache.hh"
#include "runtime/allocator.hh"
#include "runtime/instrumentation.hh"
#include "sim/emulator.hh"
#include "sim/fast_functional.hh"
#include "sim/system.hh"

namespace rest::sim
{

/** Configuration of one multicore machine. */
struct MultiCoreConfig
{
    /** Per-core machine + scheme configuration. Detailed and
     *  fast-functional execution are supported; sampled execution is
     *  not (base.exec.sampling must be inactive). `base.maxOps` caps
     *  each core individually. */
    SystemConfig base;
    /** Number of cores; must equal the number of programs. */
    unsigned cores = 1;
    /** Ops per round-robin scheduling slice (cores > 1 only). */
    std::uint64_t quantumOps = 8192;
    /** Stack bytes reserved per core below AddressMap::stackTop. */
    std::uint64_t perCoreStackBytes = std::uint64_t(1) << 20;
};

/** Outcome of one MultiCoreSystem::run(). */
struct MultiCoreResult
{
    /** Per-core timing results. cycles is that core's commit clock;
     *  committedOps its retirement count; violation.seq is core-local
     *  (the core's own retirement sequence). */
    std::vector<cpu::RunResult> cores;
    /** Index of the first faulting core in schedule order, or ~0u
     *  when the run retired cleanly. */
    unsigned faultCore = ~0u;
    /** Machine cycles: the slowest core's commit clock. */
    Cycles cycles = 0;
    /** Ops retired machine-wide (sum over cores). */
    std::uint64_t committedOps = 0;
    /** Run retired functionally (cycles are nominal, CPI == 1). */
    bool fastFunctional = false;
    /** Per-core instrumentation summaries (index == core). */
    std::vector<runtime::InstrumentationSummary> instrumentation;
    std::uint64_t armsExecuted = 0;
    std::uint64_t disarmsExecuted = 0;
    std::uint64_t mallocCalls = 0;
    std::uint64_t freeCalls = 0;

    bool faulted() const { return faultCore != ~0u; }

    /** The first (and only — the machine stops) violation. */
    const core::Violation &
    violation() const
    {
        return cores.at(faultCore).violation;
    }
};

/** One simulated N-core machine. */
class MultiCoreSystem
{
  public:
    /**
     * @param programs one un-instrumented program per core (each is
     *        copied, then finalised for the configured scheme).
     * @param cfg machine configuration; cfg.cores must match
     *        programs.size().
     */
    MultiCoreSystem(std::vector<isa::Program> programs,
                    const MultiCoreConfig &cfg);

    /** Run all cores to completion / first fault / per-core op cap. */
    MultiCoreResult run();

    unsigned numCores() const { return cfg_.cores; }
    mem::GuestMemory &memory() { return memory_; }
    core::RestEngine &engine() { return engine_; }
    const core::TokenConfigRegister &tokenRegister() const
    { return tcr_; }
    runtime::Allocator &allocator() { return *allocator_; }
    Emulator &emulator(unsigned core) { return *emulators_[core]; }
    mem::RestL1Cache &dcache(unsigned core) { return *l1d_[core]; }
    mem::Cache &icache(unsigned core) { return *l1i_[core]; }
    mem::Cache &l2cache() { return l2_; }
    mem::Dram &dram() { return dram_; }
    /** The snooping bus; nullptr on a 1-core machine. */
    mem::CoherenceBus *bus() { return bus_.get(); }
    const MultiCoreConfig &config() const { return cfg_; }

    /** Timing/functional stats of one core's model. */
    const stats::StatGroup &cpuStats(unsigned core) const;

    /** Dump all component stats (per-core models + shared levels). */
    void dumpStats(std::ostream &os) const;

  private:
    /** Run up to 'ops' more ops on 'core'; fold into res.cores. */
    void runSlice(unsigned core, std::uint64_t ops,
                  MultiCoreResult &res);

    MultiCoreConfig cfg_;
    mem::GuestMemory memory_;
    Xoshiro256ss rng_;
    core::TokenConfigRegister tcr_;
    core::RestEngine engine_;
    mem::Dram dram_;
    mem::Cache l2_;
    std::unique_ptr<mem::CoherenceBus> bus_;
    std::unique_ptr<runtime::Allocator> allocator_;
    /** Tag-check predicate for mte/pauth; owned by allocator_. */
    const runtime::AccessPolicy *policy_ = nullptr;
    std::vector<isa::Program> programs_;
    std::vector<runtime::InstrumentationSummary> instrumentation_;
    std::vector<std::unique_ptr<mem::Cache>> l1i_;
    std::vector<std::unique_ptr<mem::RestL1Cache>> l1d_;
    std::vector<std::unique_ptr<Emulator>> emulators_;
    std::vector<std::unique_ptr<cpu::O3Cpu>> o3_;
    std::vector<std::unique_ptr<cpu::InOrderCpu>> inorder_;
    std::vector<std::unique_ptr<FastFunctional>> fast_;
};

} // namespace rest::sim

#endif // REST_SIM_MULTICORE_HH
