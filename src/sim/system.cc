#include "sim/system.hh"

#include "runtime/protection_scheme.hh"
#include "util/logging.hh"

namespace rest::sim
{

System::System(isa::Program program, const SystemConfig &cfg)
    : cfg_(cfg), rng_(cfg.tokenSeed), engine_(tcr_), dram_(cfg.dramConfig),
      l2_(cfg.l2Config, dram_), l1i_(cfg.l1iConfig, l2_),
      l1d_(cfg.l1dConfig, l2_, memory_, tcr_),
      program_(std::move(program))
{
    // Install a fresh random token at the configured width/mode
    // (privileged memory-mapped write, §III-A).
    tcr_.writePrivileged(
        core::TokenValue::generate(rng_, cfg.tokenWidth), cfg.mode);

    // The registered backend for this config supplies the allocator,
    // the (optional) per-access check policy, and the
    // instrumentation pass.
    const runtime::ProtectionScheme &ps =
        runtime::schemeForConfig(cfg_.scheme);
    runtime::SchemeParts parts = ps.instantiate(
        {memory_, engine_, cfg_.scheme, cfg_.tokenSeed});
    allocator_ = std::move(parts.allocator);
    policy_ = parts.policy;

    instrumentation_ =
        ps.instrument(program_, cfg_.scheme, tcr_.granule());

    emulator_ = std::make_unique<Emulator>(
        program_, memory_, engine_, *allocator_, cfg_.scheme, policy_);

    if (!cfg_.exec.sampling.valid()) {
        rest_fatal("bad sampling config: need windowOps > 0 and "
                   "warmupOps + windowOps <= intervalOps");
    }
    if (cfg_.exec.fastFunctional && cfg_.exec.sampling.active()) {
        rest_fatal("fast-functional and sampled execution are "
                   "mutually exclusive");
    }
    if (cfg_.exec.sampling.active() && cfg_.useInOrderCpu) {
        rest_fatal("sampled execution requires the out-of-order "
                   "cpu (the in-order model has no window "
                   "checkpoint/restore)");
    }

    // Fast-functional runs need no timing CPU at all; sampled runs
    // need both the O3 core and the functional driver.
    if (!cfg_.exec.fastFunctional) {
        if (cfg_.useInOrderCpu) {
            inorder_ = std::make_unique<cpu::InOrderCpu>(
                cfg_.inorderConfig, l1i_, l1d_);
        } else {
            o3_ = std::make_unique<cpu::O3Cpu>(
                cfg_.cpuConfig, cfg_.mode, l1i_, l1d_);
        }
    }
    if (!cfg_.exec.detailed())
        fast_ = std::make_unique<FastFunctional>(cfg_.mode);

    if (cfg_.trace.active()) {
        traceSink_ = std::make_unique<trace::TraceSink>(cfg_.trace);
        if (cfg_.trace.statsEvery != 0) {
            traceSink_->registerStatGroup(
                o3_ ? &o3_->statGroup()
                    : inorder_ ? &inorder_->statGroup()
                               : &fast_->statGroup());
            traceSink_->registerStatGroup(&l1i_.statGroup());
            traceSink_->registerStatGroup(&l1d_.statGroup());
            traceSink_->registerStatGroup(&l2_.statGroup());
            traceSink_->registerStatGroup(&dram_.statGroup());
        }
    }
}

SystemResult
System::run()
{
    SystemResult res;
    res.instrumentation = instrumentation_;

    // Install this system's sink thread-locally for the duration of
    // the run: parallel sweep jobs each trace into private storage.
    trace::ScopedSink scoped(traceSink_.get());
    if (cfg_.exec.fastFunctional) {
        res.fastFunctional = true;
        res.run = fast_->run(*emulator_, cfg_.maxOps);
    } else if (cfg_.exec.sampling.active()) {
        res.sampled = true;
        res.run = runSampledLoop(res.sampling);
    } else {
        res.run = o3_ ? o3_->run(*emulator_, cfg_.maxOps)
                      : inorder_->run(*emulator_, cfg_.maxOps);
    }
    if (traceSink_) {
        traceSink_->flushStats(res.run.cycles);
        if (!cfg_.trace.traceOutPath.empty())
            traceSink_->writeChromeTraceFile(cfg_.trace.traceOutPath);
        if (!cfg_.trace.pipeViewPath.empty())
            traceSink_->writePipeViewFile(cfg_.trace.pipeViewPath);
    }
    res.armsExecuted = engine_.armsExecuted();
    res.disarmsExecuted = engine_.disarmsExecuted();

    res.mallocCalls = allocator_->heapState().mallocCalls;
    res.freeCalls = allocator_->heapState().freeCalls;
    return res;
}

cpu::RunResult
System::runSampledLoop(SamplingEstimate &est)
{
    const SamplingConfig &sc = cfg_.exec.sampling;
    cpu::RunResult total;
    std::vector<WindowSample> windows;
    std::uint64_t detailed_ops = 0, ff_ops = 0;
    Cycles detailed_cycles = 0;

    // Fold one detailed segment into the totals. The O3 model's
    // violation.seq is local to its run() call; offsetting by the ops
    // retired before the call restores the global sequence number
    // (identical to what an unbroken detailed run reports).
    auto absorbDetailed = [&total](const cpu::RunResult &r,
                                   std::uint64_t ops_before) {
        total.committedOps += r.committedOps;
        for (unsigned s = 0; s < r.opsBySource.size(); ++s)
            total.opsBySource[s] += r.opsBySource[s];
        if (r.faulted()) {
            total.violation = r.violation;
            total.violation.seq += ops_before;
        }
    };

    auto more = [this, &total] {
        return !total.faulted() && !emulator_->halted() &&
               total.committedOps < cfg_.maxOps;
    };

    while (more()) {
        // Detailed segment: warmup (cycles discarded) + window. The
        // pipeline clock restarts at 0, so the memory hierarchy must
        // drop any absolute in-flight timestamps recorded under the
        // previous segment's clock (contents survive; only fills that
        // would otherwise read as still-pending are forgotten).
        o3_->resetPipeline();
        l1i_.resetTiming();
        l1d_.resetTiming();
        Cycles seg_cycles = 0, warm_cycles = 0;
        std::uint64_t warm = std::min(
            sc.warmupOps, cfg_.maxOps - total.committedOps);
        if (warm != 0) {
            std::uint64_t before = total.committedOps;
            cpu::RunResult r = o3_->run(*emulator_, warm);
            warm_cycles = seg_cycles = r.cycles;
            detailed_ops += r.committedOps;
            absorbDetailed(r, before);
        }
        if (more()) {
            std::uint64_t want = std::min(
                sc.windowOps, cfg_.maxOps - total.committedOps);
            std::uint64_t before = total.committedOps;
            cpu::RunResult r = o3_->run(*emulator_, want);
            // O3 pipeline state persists across run() calls, so
            // r.cycles is the commit clock since resetPipeline();
            // the window's own cost is the delta past the warmup.
            if (r.committedOps != 0)
                windows.push_back(
                    {r.committedOps, r.cycles - warm_cycles});
            seg_cycles = r.cycles;
            detailed_ops += r.committedOps;
            absorbDetailed(r, before);
        }
        detailed_cycles += seg_cycles;

        // Functional fast-forward to the end of the period. Fault
        // detection is architectural (the emulator), so a violation
        // inside the gap surfaces identically; its seq is already
        // the emulator's global sequence number.
        if (more()) {
            std::uint64_t skip = std::min(
                sc.intervalOps - sc.warmupOps - sc.windowOps,
                cfg_.maxOps - total.committedOps);
            if (skip != 0) {
                cpu::RunResult r = fast_->run(*emulator_, skip);
                total.committedOps += r.committedOps;
                for (unsigned s = 0; s < r.opsBySource.size(); ++s)
                    total.opsBySource[s] += r.opsBySource[s];
                if (r.faulted())
                    total.violation = r.violation;
                ff_ops += r.committedOps;
            }
        }
    }

    est = estimateCycles(windows, detailed_ops, detailed_cycles,
                         ff_ops);
    total.cycles = est.extrapolatedCycles;
    return total;
}

const stats::StatGroup &
System::cpuStats() const
{
    if (o3_)
        return o3_->statGroup();
    if (inorder_)
        return inorder_->statGroup();
    return fast_->statGroup();
}

std::vector<stats::StatSnapshot>
System::statSnapshots() const
{
    // Every registered group snapshots on the same statsTick
    // boundaries; merge the per-group series by cycle.
    std::map<Cycles, std::map<std::string, std::uint64_t>> merged;
    const stats::StatGroup *groups[] = {
        &cpuStats(), &l1i_.statGroup(), &l1d_.statGroup(),
        &l2_.statGroup(), &dram_.statGroup(),
    };
    for (const auto *g : groups) {
        for (const auto &snap : g->snapshots()) {
            auto &cell = merged[snap.cycle];
            cell.insert(snap.deltas.begin(), snap.deltas.end());
        }
    }
    std::vector<stats::StatSnapshot> out;
    out.reserve(merged.size());
    for (auto &[cycle, deltas] : merged)
        out.push_back({cycle, std::move(deltas)});
    return out;
}

void
System::dumpStats(std::ostream &os) const
{
    cpuStats().dump(os);
    l1i_.statGroup().dump(os);
    l1d_.statGroup().dump(os);
    l2_.statGroup().dump(os);
    dram_.statGroup().dump(os);
}

} // namespace rest::sim
