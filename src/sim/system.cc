#include "sim/system.hh"

#include "runtime/asan_allocator.hh"
#include "runtime/libc_allocator.hh"
#include "runtime/rest_allocator.hh"
#include "util/logging.hh"

namespace rest::sim
{

System::System(isa::Program program, const SystemConfig &cfg)
    : cfg_(cfg), rng_(cfg.tokenSeed), engine_(tcr_), dram_(cfg.dramConfig),
      l2_(cfg.l2Config, dram_), l1i_(cfg.l1iConfig, l2_),
      l1d_(cfg.l1dConfig, l2_, memory_, tcr_),
      program_(std::move(program))
{
    // Install a fresh random token at the configured width/mode
    // (privileged memory-mapped write, §III-A).
    tcr_.writePrivileged(
        core::TokenValue::generate(rng_, cfg.tokenWidth), cfg.mode);

    switch (cfg_.scheme.allocator) {
      case runtime::AllocatorKind::Libc:
        allocator_ = std::make_unique<runtime::LibcAllocator>(memory_);
        break;
      case runtime::AllocatorKind::Asan:
        allocator_ = std::make_unique<runtime::AsanAllocator>(
            memory_, cfg_.scheme.quarantineBudget);
        break;
      case runtime::AllocatorKind::Rest:
        allocator_ = std::make_unique<runtime::RestAllocator>(
            memory_, engine_, cfg_.scheme.quarantineBudget,
            cfg_.scheme.sprinkleTokensEvery);
        break;
    }

    instrumentation_ = runtime::applyScheme(
        program_, cfg_.scheme, tcr_.granule());

    emulator_ = std::make_unique<Emulator>(
        program_, memory_, engine_, *allocator_, cfg_.scheme);

    if (cfg_.useInOrderCpu) {
        inorder_ = std::make_unique<cpu::InOrderCpu>(
            cfg_.inorderConfig, l1i_, l1d_);
    } else {
        o3_ = std::make_unique<cpu::O3Cpu>(
            cfg_.cpuConfig, cfg_.mode, l1i_, l1d_);
    }

    if (cfg_.trace.active()) {
        traceSink_ = std::make_unique<trace::TraceSink>(cfg_.trace);
        if (cfg_.trace.statsEvery != 0) {
            traceSink_->registerStatGroup(
                o3_ ? &o3_->statGroup() : &inorder_->statGroup());
            traceSink_->registerStatGroup(&l1i_.statGroup());
            traceSink_->registerStatGroup(&l1d_.statGroup());
            traceSink_->registerStatGroup(&l2_.statGroup());
            traceSink_->registerStatGroup(&dram_.statGroup());
        }
    }
}

SystemResult
System::run()
{
    SystemResult res;
    res.instrumentation = instrumentation_;

    // Install this system's sink thread-locally for the duration of
    // the run: parallel sweep jobs each trace into private storage.
    trace::ScopedSink scoped(traceSink_.get());
    res.run = o3_ ? o3_->run(*emulator_, cfg_.maxOps)
                  : inorder_->run(*emulator_, cfg_.maxOps);
    if (traceSink_) {
        traceSink_->flushStats(res.run.cycles);
        if (!cfg_.trace.traceOutPath.empty())
            traceSink_->writeChromeTraceFile(cfg_.trace.traceOutPath);
        if (!cfg_.trace.pipeViewPath.empty())
            traceSink_->writePipeViewFile(cfg_.trace.pipeViewPath);
    }
    res.armsExecuted = engine_.armsExecuted();
    res.disarmsExecuted = engine_.disarmsExecuted();

    // Allocator call counts (per concrete type).
    if (auto *a = dynamic_cast<runtime::LibcAllocator *>(
            allocator_.get())) {
        res.mallocCalls = a->heapState().mallocCalls;
        res.freeCalls = a->heapState().freeCalls;
    } else if (auto *a = dynamic_cast<runtime::AsanAllocator *>(
                   allocator_.get())) {
        res.mallocCalls = a->heapState().mallocCalls;
        res.freeCalls = a->heapState().freeCalls;
    } else if (auto *a = dynamic_cast<runtime::RestAllocator *>(
                   allocator_.get())) {
        res.mallocCalls = a->heapState().mallocCalls;
        res.freeCalls = a->heapState().freeCalls;
    }
    return res;
}

const stats::StatGroup &
System::cpuStats() const
{
    return o3_ ? o3_->statGroup() : inorder_->statGroup();
}

std::vector<stats::StatSnapshot>
System::statSnapshots() const
{
    // Every registered group snapshots on the same statsTick
    // boundaries; merge the per-group series by cycle.
    std::map<Cycles, std::map<std::string, std::uint64_t>> merged;
    const stats::StatGroup *groups[] = {
        &cpuStats(), &l1i_.statGroup(), &l1d_.statGroup(),
        &l2_.statGroup(), &dram_.statGroup(),
    };
    for (const auto *g : groups) {
        for (const auto &snap : g->snapshots()) {
            auto &cell = merged[snap.cycle];
            cell.insert(snap.deltas.begin(), snap.deltas.end());
        }
    }
    std::vector<stats::StatSnapshot> out;
    out.reserve(merged.size());
    for (auto &[cycle, deltas] : merged)
        out.push_back({cycle, std::move(deltas)});
    return out;
}

void
System::dumpStats(std::ostream &os) const
{
    cpuStats().dump(os);
    l1i_.statGroup().dump(os);
    l1d_.statGroup().dump(os);
    l2_.statGroup().dump(os);
    dram_.statGroup().dump(os);
}

} // namespace rest::sim
