#include "sim/fast_functional.hh"

#include <algorithm>
#include <array>

namespace rest::sim
{

FastFunctional::FastFunctional(core::RestMode mode)
    : mode_(mode), stats_("fastfunc"),
      retiredOps_(stats_.addScalar("retired_ops",
          "dynamic ops retired functionally")),
      nominalCycles_(stats_.addScalar("nominal_cycles",
          "nominal cycles (CPI == 1; not a timing result)")),
      batches_(stats_.addScalar("batches",
          "arena batches pulled from the op stream"))
{}

cpu::RunResult
FastFunctional::run(isa::TraceSource &src, std::uint64_t max_ops)
{
    cpu::RunResult result;
    std::array<std::uint64_t, 5> by_source{};
    const bool debug_mode = mode_ == core::RestMode::Debug;
    bool stop = false;

    // One arena block of op records, constructed once and recycled
    // (overwritten in place) by every batch — the fill is a plain
    // assignment loop with no per-batch construction cost.
    isa::DynOp *block = batch_;
    if (block == nullptr)
        block = batch_ = arena_.alloc<isa::DynOp>(batchOps);

    while (!stop && result.committedOps < max_ops) {
        const std::uint64_t want = std::min<std::uint64_t>(
            batchOps, max_ops - result.committedOps);
        // A faulting op halts the source, so the fill stops right
        // after it and the batch is exact.
        const std::uint64_t filled = src.nextBatch(block, want);
        if (filled < want)
            stop = true; // stream drained (halt or fault)

        std::uint64_t retired = 0;
        for (std::uint64_t i = 0; i < filled; ++i) {
            const isa::DynOp &op = block[i];
            ++by_source[static_cast<unsigned>(op.source)];
            ++retired;

            if (op.fault == isa::FaultKind::None)
                continue;

            // Same FaultKind -> ViolationKind mapping and precision
            // policy as the detailed O3 commit stage; the faulting op
            // retires, nothing after it does.
            core::ViolationKind kind = core::ViolationKind::None;
            switch (op.fault) {
              case isa::FaultKind::RestTokenAccess:
                kind = core::ViolationKind::TokenAccess;
                break;
              case isa::FaultKind::RestDisarmUnarmed:
                kind = core::ViolationKind::DisarmUnarmed;
                break;
              case isa::FaultKind::RestMisaligned:
                kind = core::ViolationKind::MisalignedRestInst;
                break;
              case isa::FaultKind::AsanReport:
                kind = core::ViolationKind::AsanCheckFailed;
                break;
              case isa::FaultKind::MteTagMismatch:
                kind = core::ViolationKind::TagMismatch;
                break;
              case isa::FaultKind::PauthCheckFailed:
                kind = core::ViolationKind::PauthCheckFailed;
                break;
              case isa::FaultKind::None:
                break;
            }
            result.violation.kind = kind;
            result.violation.faultAddr = op.eaddr;
            result.violation.pc = op.pc;
            result.violation.seq = op.seq;
            result.violation.reportCycle = result.committedOps + retired;
            bool precise = debug_mode ||
                kind == core::ViolationKind::MisalignedRestInst ||
                kind == core::ViolationKind::AsanCheckFailed ||
                kind == core::ViolationKind::TagMismatch ||
                kind == core::ViolationKind::PauthCheckFailed;
            result.violation.precision = precise
                ? core::Precision::Precise
                : core::Precision::Imprecise;
            stop = true;
            break;
        }

        // Batched stat flush: one scalar update per batch.
        result.committedOps += retired;
        retiredOps_ += retired;
        ++batches_;
    }

    for (unsigned s = 0; s < by_source.size(); ++s)
        result.opsBySource[s] = by_source[s];
    result.cycles = result.committedOps; // nominal CPI == 1
    nominalCycles_.set(result.cycles);
    return result;
}

} // namespace rest::sim
