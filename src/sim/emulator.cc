#include "sim/emulator.hh"

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace rest::sim
{

using isa::DynOp;
using isa::FaultKind;
using isa::Inst;
using isa::Opcode;

Emulator::Emulator(const isa::Program &program, mem::GuestMemory &memory,
                   core::RestEngine &engine,
                   runtime::Allocator &allocator,
                   const runtime::SchemeConfig &scheme,
                   const runtime::AccessPolicy *policy, Addr stack_top)
    : program_(program), memory_(memory), engine_(engine),
      allocator_(allocator), scheme_(scheme), policy_(policy),
      interceptors_(memory, engine, scheme_, policy), shadow_(memory)
{
    rest_assert(!program.funcs.empty(), "program has no functions");
    decode_.prepare(program);
    pcBases_.reserve(program.funcs.size());
    for (std::size_t i = 0; i < program.funcs.size(); ++i)
        pcBases_.push_back(program.pcBase(i));
    regs_[isa::regSp] = stack_top;
    regs_[isa::regFp] = stack_top;
    emitter_ = std::make_unique<runtime::OpEmitter>(
        queue_, runtime::AddressMap::runtimeTextBase, scheme.perfectHw);
    enterFunc(0);
}

void
Emulator::enterFunc(std::size_t f)
{
    funcIdx_ = f;
    const auto &fn = program_.funcs[f];
    insts_ = fn.insts.data();
    fnInsts_ = fn.insts.size();
    decodeRow_ = decode_.row(f);
    pcBase_ = pcBases_[f];
}

void
Emulator::raise(DynOp &op, FaultKind kind)
{
    op.fault = kind;
    fault_ = kind;
    halted_ = true;
}

void
Emulator::step(DynOp *direct)
{
    if (instIdx_ >= fnInsts_) {
        // Fell off the end of a function without Ret: treat as halt.
        halted_ = true;
        return;
    }
    const Inst &inst = insts_[instIdx_];
    // Build the op in the consumer's slot when possible (the common,
    // queue-empty case): one copy from the decode template, zero
    // copies afterwards. Runtime-expanding cases push into the queue
    // themselves and never reach the final direct hand-off.
    const bool use_direct = direct != nullptr && queue_.empty();
    DynOp &op = use_direct ? *direct : scratch_;
    op = decodeRow_[instIdx_];

    auto reg = [&](isa::RegId r) -> std::uint64_t {
        return r == isa::noReg ? 0 : regs_[r];
    };
    auto setReg = [&](isa::RegId r, std::uint64_t v) {
        if (r != isa::noReg && r != isa::regZero)
            regs_[r] = v;
    };
    auto s64 = [](std::uint64_t v) {
        return static_cast<std::int64_t>(v);
    };

    // Architectural token check for ordinary accesses: what the L1-D
    // token bits catch in hardware.
    auto tokenCheck = [&](Addr ea, unsigned size) {
        return !scheme_.perfectHw && engine_.armedCount() != 0 &&
            engine_.overlapsArmed(ea, size);
    };

    bool advance = true;

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        advance = false;
        break;

      case Opcode::Add:
        setReg(inst.rd, reg(inst.rs1) + reg(inst.rs2));
        break;
      case Opcode::Sub:
        setReg(inst.rd, reg(inst.rs1) - reg(inst.rs2));
        break;
      case Opcode::Mul:
      case Opcode::FMul:
        setReg(inst.rd, reg(inst.rs1) * reg(inst.rs2));
        break;
      case Opcode::Div:
      case Opcode::FDiv: {
        std::uint64_t d = reg(inst.rs2);
        setReg(inst.rd, d ? reg(inst.rs1) / d : 0);
        break;
      }
      case Opcode::FAdd:
        setReg(inst.rd, reg(inst.rs1) + reg(inst.rs2));
        break;
      case Opcode::And:
        setReg(inst.rd, reg(inst.rs1) & reg(inst.rs2));
        break;
      case Opcode::Or:
        setReg(inst.rd, reg(inst.rs1) | reg(inst.rs2));
        break;
      case Opcode::Xor:
        setReg(inst.rd, reg(inst.rs1) ^ reg(inst.rs2));
        break;
      case Opcode::Shl:
        setReg(inst.rd, reg(inst.rs1) << (reg(inst.rs2) & 63));
        break;
      case Opcode::Shr:
        setReg(inst.rd, reg(inst.rs1) >> (reg(inst.rs2) & 63));
        break;
      case Opcode::AddI:
        setReg(inst.rd, reg(inst.rs1) +
               static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::AndI:
        setReg(inst.rd, reg(inst.rs1) &
               static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::OrI:
        setReg(inst.rd, reg(inst.rs1) |
               static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::XorI:
        setReg(inst.rd, reg(inst.rs1) ^
               static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::ShlI:
        setReg(inst.rd, reg(inst.rs1) << (inst.imm & 63));
        break;
      case Opcode::ShrI:
        setReg(inst.rd, reg(inst.rs1) >> (inst.imm & 63));
        break;
      case Opcode::MovImm:
        setReg(inst.rd, static_cast<std::uint64_t>(inst.imm));
        break;
      case Opcode::Mov:
        setReg(inst.rd, reg(inst.rs1));
        break;
      case Opcode::Slt:
        setReg(inst.rd, s64(reg(inst.rs1)) < s64(reg(inst.rs2)));
        break;
      case Opcode::SltI:
        setReg(inst.rd, s64(reg(inst.rs1)) < inst.imm);
        break;

      case Opcode::Load: {
        Addr ea = reg(inst.rs1) + static_cast<std::uint64_t>(inst.imm);
        if (policy_) {
            // Tag-checking schemes: authenticate the raw pointer,
            // then access through the canonical (tag-stripped) form.
            const FaultKind pf = policy_->checkAccess(ea, inst.width);
            ea = policy_->canonical(ea);
            op.eaddr = ea;
            if (pf != FaultKind::None) {
                raise(op, pf);
                advance = false;
                break;
            }
        } else {
            op.eaddr = ea;
            if (tokenCheck(ea, inst.width)) {
                raise(op, FaultKind::RestTokenAccess);
                advance = false;
                break;
            }
        }
        setReg(inst.rd, memory_.read(ea, inst.width));
        break;
      }
      case Opcode::Store: {
        Addr ea = reg(inst.rs1) + static_cast<std::uint64_t>(inst.imm);
        if (policy_) {
            const FaultKind pf = policy_->checkAccess(ea, inst.width);
            ea = policy_->canonical(ea);
            op.eaddr = ea;
            if (pf != FaultKind::None) {
                raise(op, pf);
                advance = false;
                break;
            }
        } else {
            op.eaddr = ea;
            if (tokenCheck(ea, inst.width)) {
                raise(op, FaultKind::RestTokenAccess);
                advance = false;
                break;
            }
        }
        memory_.write(ea, reg(inst.rs2), inst.width);
        break;
      }

      case Opcode::Arm:
      case Opcode::Disarm: {
        Addr ea = reg(inst.rs1) + static_cast<std::uint64_t>(inst.imm);
        op.eaddr = ea;
        if (scheme_.perfectHw) {
            // PerfectHW limit study: arm/disarm become plain stores.
            op.op = Opcode::Store;
            op.cls = isa::OpClass::MemWrite;
            op.size = 8;
            memory_.write(ea, 0, 8);
            break;
        }
        const unsigned g = engine_.configRegister().granule();
        op.size = static_cast<std::uint8_t>(g);
        if (!isAligned(ea, g)) {
            raise(op, FaultKind::RestMisaligned);
            advance = false;
            break;
        }
        if (inst.op == Opcode::Arm) {
            engine_.arm(ea);
            memory_.writeBytes(
                ea, engine_.configRegister().token().bytes());
        } else {
            auto chk = engine_.disarm(ea);
            if (!chk.ok()) {
                raise(op, FaultKind::RestDisarmUnarmed);
                advance = false;
                break;
            }
            memory_.fill(ea, 0, g);
        }
        break;
      }

      case Opcode::AsanCheck: {
        Addr ea = reg(inst.rs2);
        op.eaddr = invalidAddr; // check op itself is not a memory op
        if (!shadow_.accessOk(ea, inst.width)) {
            raise(op, FaultKind::AsanReport);
            advance = false;
        }
        break;
      }

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge: {
        bool taken = false;
        std::int64_t a = s64(reg(inst.rs1));
        std::int64_t b = s64(reg(inst.rs2));
        switch (inst.op) {
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = a < b; break;
          case Opcode::Bge: taken = a >= b; break;
          default: break;
        }
        op.isBranch = true;
        op.taken = taken;
        if (taken) {
            instIdx_ = static_cast<std::size_t>(inst.target);
            advance = false;
        }
        op.nextPc = pcBase_ +
            4 * (taken ? static_cast<std::size_t>(inst.target)
                       : instIdx_ + 1);
        break;
      }
      case Opcode::Jmp:
        op.isBranch = true;
        op.taken = true;
        instIdx_ = static_cast<std::size_t>(inst.target);
        op.nextPc = pcBase_ + 4 * instIdx_;
        advance = false;
        break;
      case Opcode::Call: {
        op.isBranch = true;
        op.taken = true;
        callStack_.push_back({funcIdx_, instIdx_ + 1,
                              regs_[isa::regFp], regs_[isa::regSp]});
        enterFunc(static_cast<std::size_t>(inst.target));
        instIdx_ = 0;
        op.nextPc = pcBase_;
        advance = false;
        break;
      }
      case Opcode::Ret: {
        op.isBranch = true;
        op.taken = true;
        rest_assert(!callStack_.empty(), "ret with empty call stack");
        Frame frame = callStack_.back();
        callStack_.pop_back();
        // Caller-saved frame/stack pointers are restored (models the
        // conventional pop of the saved fp).
        regs_[isa::regFp] = frame.savedFp;
        regs_[isa::regSp] = frame.savedSp;
        enterFunc(frame.funcIdx);
        instIdx_ = frame.retInstIdx;
        op.nextPc = pcBase_ + 4 * instIdx_;
        advance = false;
        break;
      }

      case Opcode::RtMalloc: {
        op.isBranch = true;
        op.taken = true;
        op.nextPc = runtime::AddressMap::runtimeTextBase;
        queue_.push_back(op);
        Addr payload = allocator_.malloc(reg(inst.rs1), *emitter_);
        setReg(isa::regRet, payload);
        ++instIdx_;
        goto check_runtime_fault;
      }
      case Opcode::RtFree: {
        op.isBranch = true;
        op.taken = true;
        op.nextPc = runtime::AddressMap::runtimeTextBase;
        queue_.push_back(op);
        allocator_.free(reg(inst.rs1), *emitter_);
        ++instIdx_;
        goto check_runtime_fault;
      }
      case Opcode::RtMemcpy: {
        op.isBranch = true;
        op.taken = true;
        op.nextPc = runtime::AddressMap::interceptTextBase;
        queue_.push_back(op);
        interceptors_.memcpy(reg(inst.rs1), reg(inst.rs2),
                             reg(inst.rd), *emitter_);
        ++instIdx_;
        goto check_runtime_fault;
      }
      case Opcode::RtMemset: {
        op.isBranch = true;
        op.taken = true;
        op.nextPc = runtime::AddressMap::interceptTextBase;
        queue_.push_back(op);
        interceptors_.memset(reg(inst.rs1),
                             static_cast<std::uint8_t>(reg(inst.rs2)),
                             reg(inst.rd), *emitter_);
        ++instIdx_;
        goto check_runtime_fault;
      }
      case Opcode::RtStrcpy: {
        op.isBranch = true;
        op.taken = true;
        op.nextPc = runtime::AddressMap::interceptTextBase;
        queue_.push_back(op);
        interceptors_.strcpy(reg(inst.rs1), reg(inst.rs2), *emitter_);
        ++instIdx_;
        goto check_runtime_fault;
      }

      default:
        rest_panic("emulator: unhandled opcode ",
                   static_cast<int>(inst.op));
    }

    // Hot path: one op, no runtime expansion — it is already in the
    // consumer's slot; otherwise it queues behind older ops.
    if (use_direct)
        directProduced_ = true;
    else
        queue_.push_back(op);
    if (advance)
        ++instIdx_;
    return;

  check_runtime_fault:
    // Runtime services mark faults on the ops they emit; surface the
    // first one.
    for (const auto &queued : queue_) {
        if (queued.fault != FaultKind::None) {
            fault_ = queued.fault;
            halted_ = true;
            break;
        }
    }
}

bool
Emulator::next(DynOp &out)
{
    directProduced_ = false;
    while (!directProduced_ && queue_.empty() && !halted_)
        step(&out);
    if (!directProduced_) {
        if (queue_.empty())
            return false;
        out = queue_.front();
        queue_.pop_front();
    }
    out.seq = seq_++;
    if (out.fault != FaultKind::None) {
        // Nothing after the faulting op executes.
        halted_ = true;
        fault_ = out.fault;
        queue_.clear();
    }
    return true;
}

std::size_t
Emulator::nextBatch(DynOp *out, std::size_t max)
{
    // Same semantics as next() in a loop, but the whole drain runs in
    // this translation unit — step() inlines into the loop, the
    // stepping state stays hot, and the common one-op-per-step case
    // goes straight into the caller's slot with no queue traffic.
    std::size_t n = 0;
    while (n < max) {
        DynOp &slot = out[n];
        if (!queue_.empty()) {
            slot = queue_.front();
            queue_.pop_front();
        } else if (halted_) {
            break;
        } else {
            directProduced_ = false;
            step(&slot);
            if (!directProduced_)
                continue; // runtime expansion queued ops, or halt
        }
        slot.seq = seq_++;
        ++n;
        if (slot.fault != FaultKind::None) {
            // Nothing after the faulting op executes.
            halted_ = true;
            fault_ = slot.fault;
            queue_.clear();
            break;
        }
    }
    return n;
}

} // namespace rest::sim
