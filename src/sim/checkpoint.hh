/**
 * @file
 * Sweep checkpoint files: the persistence layer behind SweepRunner's
 * --checkpoint/--resume support.
 *
 * File format (JSON, schema documented in DESIGN.md §10):
 *
 *   {
 *     "schema_version": 1,
 *     "total_jobs": 12,
 *     "job_starts_total": 14,        // sum of "starts" below
 *     "jobs": [
 *       { "index": 0, "key": "perlbench|ASan|4660|1000",
 *         "ok": true, "attempts": 1, "starts": 1, "wall_ms": 52.1,
 *         "measurement": {
 *           "bench": "perlbench", "label": "ASan", "config": 1,
 *           "seed": 4660, "cycles": 120934, "ops": 41210,
 *           "scalars": { "l1d.token_evictions": 3, ... } } },
 *       { "index": 3, "key": "...", "ok": false, "attempts": 2,
 *         "starts": 2, "wall_ms": 1.2, "timed_out": false,
 *         "error": "injected fault (fail-always)" }, ... ]
 *   }
 *
 * `key` fingerprints the job (bench|label|seed|kiloinsts) so a resume
 * against a different sweep shape re-runs rather than mis-restores.
 * `starts` accumulates executions across checkpointed runs — the
 * resume regression tests assert from it that completed jobs are not
 * re-executed. Restored measurements carry the aggregate fields only
 * (no SystemResult detail, no stat series); the results layer never
 * reads more than that.
 *
 * Writes are atomic (temp file + rename) and happen after every
 * completed job, so a sweep killed at any point leaves a loadable
 * file. load() treats missing/corrupt files as absent (warn + nullopt)
 * rather than fatal: a truncated checkpoint must never be able to
 * wedge the sweep that tries to resume from it.
 */

#ifndef REST_SIM_CHECKPOINT_HH
#define REST_SIM_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "sim/sweep.hh"

namespace rest::sim
{

/** One persisted job outcome. */
struct CheckpointEntry
{
    std::size_t index = 0;
    std::string key;
    bool ok = false;
    bool timedOut = false;
    unsigned attempts = 0;
    unsigned starts = 0;
    double wallMs = 0;
    std::string error;
    Measurement measurement; ///< aggregate fields only, valid iff ok
};

/** A whole checkpoint file, keyed by job submission index. */
struct SweepCheckpoint
{
    std::size_t totalJobs = 0;
    std::map<std::size_t, CheckpointEntry> entries;

    std::uint64_t jobStartsTotal() const;

    /** nullopt (with a warning) when missing, unreadable or corrupt. */
    static std::optional<SweepCheckpoint> load(const std::string &path);

    /** Atomic write (temp + rename); warns and returns false on I/O
     *  failure — checkpointing must never abort the sweep it guards. */
    bool save(const std::string &path) const;
};

/** The fingerprint recorded per entry and checked on resume. */
std::string checkpointJobKey(const SweepJob &job);

} // namespace rest::sim

#endif // REST_SIM_CHECKPOINT_HH
