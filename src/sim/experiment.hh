/**
 * @file
 * Experiment harness: the paper's evaluated configurations as presets,
 * per-benchmark runs, and the aggregation formulas of §VI-B
 * (weighted arithmetic mean, footnote 5; geometric mean, footnote 6).
 */

#ifndef REST_SIM_EXPERIMENT_HH
#define REST_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/spec_profiles.hh"

namespace rest::sim
{

/** The named configurations of Figures 7 and 8. */
enum class ExpConfig
{
    Plain,
    Asan,
    RestDebugFull,
    RestSecureFull,
    PerfectHwFull,
    RestDebugHeap,
    RestSecureHeap,
    PerfectHwHeap,
};

/** Display name ("Secure Full", ...). */
const char *expConfigName(ExpConfig config);

/**
 * Build the SystemConfig for a named experiment configuration.
 * @param config which preset.
 * @param width token width (Figure 8 sweeps this; 64 B elsewhere).
 * @param inorder use the in-order core (Figure 3 setup).
 */
SystemConfig makeSystemConfig(ExpConfig config,
                              core::TokenWidth width =
                                  core::TokenWidth::Bytes64,
                              bool inorder = false);

/** One benchmark × configuration measurement. */
struct Measurement
{
    std::string bench;
    /** Column label; expConfigName(config) for preset runs. */
    std::string label;
    ExpConfig config = ExpConfig::Plain;
    std::uint64_t seed = 0;
    Cycles cycles = 0;
    std::uint64_t ops = 0;
    /** Execution mode the measurement ran under: "detailed",
     *  "fast-functional" or "sampled" (ExecutionConfig::modeName()). */
    std::string execMode = "detailed";
    /** Sampled runs: standard error of per-window CPI as % of the
     *  mean, and how the run split between detailed and functional
     *  execution. Zero for detailed and fast-functional runs. */
    double samplingErrorPct = 0.0;
    std::uint64_t sampleWindows = 0;
    std::uint64_t fastForwardedOps = 0;
    /** Host wall-clock seconds spent inside System::run() — workload
     *  generation, instrumentation and System construction excluded,
     *  so ops/simWallSeconds is simulator throughput (the same
     *  convention as gem5's host_inst_rate). */
    double simWallSeconds = 0.0;
    /** Component counters ("o3cpu.*", "l1d.*") snapshotted before the
     *  System is torn down; feeds the JSON results layer. */
    std::map<std::string, std::uint64_t> scalars;
    /** Periodic per-interval stat deltas (empty unless the run's
     *  SystemConfig enabled trace.statsEvery). */
    std::vector<stats::StatSnapshot> statSeries;
    SystemResult detail;
};

/**
 * Run one benchmark under one configuration.
 * @param profile workload profile (generate() is called internally).
 * @param config experiment preset.
 * @param width token width.
 * @param inorder use the in-order core.
 * @param exec execution mode (detailed / fast-functional / sampled);
 *        the default runs the historical all-detailed path.
 */
Measurement runBench(const workload::BenchProfile &profile,
                     ExpConfig config,
                     core::TokenWidth width = core::TokenWidth::Bytes64,
                     bool inorder = false,
                     const ExecutionConfig &exec = {});

/**
 * Run one benchmark under an explicit SystemConfig (ablations and
 * Figure 3's cumulative component stacks need configurations that are
 * not expressible as a preset).
 * @param label column label recorded in the Measurement.
 */
Measurement runCustom(const workload::BenchProfile &profile,
                      const SystemConfig &cfg,
                      const std::string &label);

/** Per-benchmark overhead in percent relative to a plain run. */
double overheadPct(Cycles plain_cycles, Cycles scheme_cycles);

/**
 * Weighted arithmetic mean overhead (paper footnote 5): equivalent to
 * sum(scheme runtimes) / sum(plain runtimes) - 1, in percent.
 * Empty vectors yield 0.0 (an empty sweep has no overhead);
 * mismatched lengths are a caller bug and panic.
 */
double wtdAriMeanOverheadPct(const std::vector<Cycles> &plain,
                             const std::vector<Cycles> &scheme);

/**
 * Geometric mean overhead (paper footnote 6), in percent. Same
 * empty/mismatch behaviour as wtdAriMeanOverheadPct().
 */
double geoMeanOverheadPct(const std::vector<Cycles> &plain,
                          const std::vector<Cycles> &scheme);

} // namespace rest::sim

#endif // REST_SIM_EXPERIMENT_HH
