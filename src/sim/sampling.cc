#include "sim/sampling.hh"

#include <cmath>

namespace rest::sim
{

SamplingEstimate
estimateCycles(const std::vector<WindowSample> &windows,
               std::uint64_t detailed_ops, Cycles detailed_cycles,
               std::uint64_t fast_forwarded_ops)
{
    SamplingEstimate est;
    est.windows = windows.size();
    est.detailedOps = detailed_ops;
    est.detailedCycles = detailed_cycles;
    est.fastForwardedOps = fast_forwarded_ops;

    std::uint64_t w_ops = 0;
    Cycles w_cycles = 0;
    for (const auto &w : windows) {
        w_ops += w.ops;
        w_cycles += w.cycles;
    }
    // Ops-weighted mean CPI: total window cycles over total window
    // ops, so short tail windows don't get outsized weight.
    est.windowCpi =
        w_ops ? double(w_cycles) / double(w_ops) : 0.0;

    if (windows.size() >= 2 && est.windowCpi > 0) {
        double mean = 0;
        for (const auto &w : windows)
            mean += double(w.cycles) / double(w.ops);
        mean /= double(windows.size());
        double var = 0;
        for (const auto &w : windows) {
            double d = double(w.cycles) / double(w.ops) - mean;
            var += d * d;
        }
        var /= double(windows.size() - 1);
        double stderr_cpi =
            std::sqrt(var / double(windows.size()));
        est.cpiStdErrPct = 100.0 * stderr_cpi / mean;
    }

    est.extrapolatedCycles =
        detailed_cycles +
        Cycles(std::llround(double(fast_forwarded_ops) *
                            est.windowCpi));
    return est;
}

} // namespace rest::sim
