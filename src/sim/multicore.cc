#include "sim/multicore.hh"

#include <algorithm>

#include "runtime/protection_scheme.hh"
#include "util/logging.hh"

namespace rest::sim
{

MultiCoreSystem::MultiCoreSystem(std::vector<isa::Program> programs,
                                 const MultiCoreConfig &cfg)
    : cfg_(cfg), rng_(cfg.base.tokenSeed), engine_(tcr_),
      dram_(cfg.base.dramConfig), l2_(cfg.base.l2Config, dram_),
      programs_(std::move(programs))
{
    rest_assert(cfg_.cores >= 1, "multicore machine needs >= 1 core");
    rest_assert(programs_.size() == cfg_.cores,
                "need exactly one program per core");
    rest_assert(cfg_.quantumOps > 0, "scheduling quantum must be > 0");
    // Stacks are carved downward from the historical single-core
    // stack top; they must not reach down into the heap segment.
    rest_assert(runtime::AddressMap::stackTop -
                        std::uint64_t(cfg_.cores) *
                            cfg_.perCoreStackBytes >
                    runtime::AddressMap::heapBase,
                "per-core stacks would overlap the heap");
    if (cfg_.base.exec.sampling.active()) {
        rest_fatal("sampled execution is not supported on the "
                   "multicore machine (detailed or fast-functional "
                   "only)");
    }
    if (cfg_.base.trace.active()) {
        rest_fatal("per-run tracing is not supported on the "
                   "multicore machine");
    }

    tcr_.writePrivileged(
        core::TokenValue::generate(rng_, cfg_.base.tokenWidth),
        cfg_.base.mode);

    // One shared runtime: the backend's allocator and check policy
    // serve every core, exactly like one mapped libc in a
    // multi-threaded server process.
    const runtime::ProtectionScheme &ps =
        runtime::schemeForConfig(cfg_.base.scheme);
    runtime::SchemeParts parts = ps.instantiate(
        {memory_, engine_, cfg_.base.scheme, cfg_.base.tokenSeed});
    allocator_ = std::move(parts.allocator);
    policy_ = parts.policy;

    // The snooping bus exists only when there is something to snoop;
    // a detached 1-core hierarchy is the exact historical machine.
    if (cfg_.cores > 1)
        bus_ = std::make_unique<mem::CoherenceBus>();

    for (unsigned i = 0; i < cfg_.cores; ++i) {
        instrumentation_.push_back(ps.instrument(
            programs_[i], cfg_.base.scheme, tcr_.granule()));

        l1i_.push_back(
            std::make_unique<mem::Cache>(cfg_.base.l1iConfig, l2_));
        auto l1d = std::make_unique<mem::RestL1Cache>(
            cfg_.base.l1dConfig, l2_, memory_, tcr_);
        if (bus_) {
            l1d->attachBus(bus_.get());
            bus_->attach(*l1d);
        }
        l1d_.push_back(std::move(l1d));

        const Addr stack_top =
            runtime::AddressMap::stackTop -
            Addr(i) * cfg_.perCoreStackBytes;
        emulators_.push_back(std::make_unique<Emulator>(
            programs_[i], memory_, engine_, *allocator_,
            cfg_.base.scheme, policy_, stack_top));

        if (cfg_.base.exec.fastFunctional) {
            fast_.push_back(
                std::make_unique<FastFunctional>(cfg_.base.mode));
            o3_.push_back(nullptr);
            inorder_.push_back(nullptr);
        } else if (cfg_.base.useInOrderCpu) {
            inorder_.push_back(std::make_unique<cpu::InOrderCpu>(
                cfg_.base.inorderConfig, *l1i_[i], *l1d_[i]));
            o3_.push_back(nullptr);
            fast_.push_back(nullptr);
        } else {
            o3_.push_back(std::make_unique<cpu::O3Cpu>(
                cfg_.base.cpuConfig, cfg_.base.mode, *l1i_[i],
                *l1d_[i]));
            inorder_.push_back(nullptr);
            fast_.push_back(nullptr);
        }
    }
}

void
MultiCoreSystem::runSlice(unsigned core, std::uint64_t ops,
                          MultiCoreResult &res)
{
    cpu::RunResult &acc = res.cores[core];
    const std::uint64_t before = acc.committedOps;
    const std::uint64_t want =
        std::min(ops, cfg_.base.maxOps - before);
    if (want == 0)
        return;

    cpu::RunResult r;
    bool functional = false;
    if (fast_[core]) {
        r = fast_[core]->run(*emulators_[core], want);
        functional = true;
    } else if (o3_[core]) {
        r = o3_[core]->run(*emulators_[core], want);
    } else {
        r = inorder_[core]->run(*emulators_[core], want);
    }

    acc.committedOps += r.committedOps;
    for (unsigned s = 0; s < r.opsBySource.size(); ++s)
        acc.opsBySource[s] += r.opsBySource[s];
    // The timing models keep their commit clock across run() calls,
    // so r.cycles is already this core's cumulative clock; the
    // functional driver reports per-call nominal cycles (== ops).
    acc.cycles = functional ? acc.cycles + r.cycles : r.cycles;

    if (r.faulted()) {
        acc.violation = r.violation;
        // A timing model's violation.seq is local to its run() call;
        // offsetting by the core's ops retired before the slice
        // restores the core-local sequence number. The functional
        // driver already reports the emulator's global sequence.
        if (!functional)
            acc.violation.seq += before;
        if (!res.faulted())
            res.faultCore = core;
    }
}

MultiCoreResult
MultiCoreSystem::run()
{
    MultiCoreResult res;
    res.instrumentation = instrumentation_;
    res.fastFunctional = cfg_.base.exec.fastFunctional;
    res.cores.resize(cfg_.cores);

    if (cfg_.cores == 1) {
        // No peers to interleave with: one unsliced call, the exact
        // single-core System execution.
        runSlice(0, cfg_.base.maxOps, res);
    } else {
        // Deterministic round-robin quanta on one host timeline. The
        // machine stops at the first fault (a REST trap halts the
        // process, not just the faulting thread) or when every core
        // has halted or hit its op cap. A spinning core still retires
        // its spin ops, so every active core makes progress and the
        // loop always terminates under a finite op cap.
        auto done = [&](unsigned c) {
            return emulators_[c]->halted() ||
                   res.cores[c].committedOps >= cfg_.base.maxOps;
        };
        bool active = true;
        while (active && !res.faulted()) {
            active = false;
            for (unsigned c = 0; c < cfg_.cores && !res.faulted();
                 ++c) {
                if (done(c))
                    continue;
                active = true;
                runSlice(c, cfg_.quantumOps, res);
            }
        }
    }

    for (const cpu::RunResult &r : res.cores) {
        res.committedOps += r.committedOps;
        res.cycles = std::max(res.cycles, r.cycles);
    }
    res.armsExecuted = engine_.armsExecuted();
    res.disarmsExecuted = engine_.disarmsExecuted();
    res.mallocCalls = allocator_->heapState().mallocCalls;
    res.freeCalls = allocator_->heapState().freeCalls;
    return res;
}

const stats::StatGroup &
MultiCoreSystem::cpuStats(unsigned core) const
{
    if (o3_[core])
        return o3_[core]->statGroup();
    if (inorder_[core])
        return inorder_[core]->statGroup();
    return fast_[core]->statGroup();
}

void
MultiCoreSystem::dumpStats(std::ostream &os) const
{
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        cpuStats(c).dump(os);
        l1i_[c]->statGroup().dump(os);
        l1d_[c]->statGroup().dump(os);
    }
    l2_.statGroup().dump(os);
    dram_.statGroup().dump(os);
    if (bus_)
        bus_->statGroup().dump(os);
}

} // namespace rest::sim
