/**
 * @file
 * SweepStatusTracker: the aggregation listener behind the /status and
 * /metrics endpoints (DESIGN.md §12).
 *
 * Subscribed to a SweepEventBus, it maintains a per-job state machine
 * (queued → running → retrying → … → done | failed) and derives the
 * live view a poll wants: state counts, progress fraction, an ETA
 * extrapolated from completed jobs, aggregate simulated KIPS, and
 * checkpoint/restore counts. statusJson() renders the whole document;
 * when constructed with a MetricRegistry it additionally publishes
 * counters (events, completions, retries, restores), gauges (running,
 * progress, total jobs) and a job-wall-time histogram on every event.
 *
 * /status schema (schema_version 1; all fields always present):
 *   {
 *     "schema_version": 1,
 *     "sweep": "overheads",          // current (or last) sweep
 *     "sweeps_started": 1,
 *     "total_jobs": 4, "threads": 2,
 *     "elapsed_ms": 123.4,           // since sweep-begin
 *     "progress": 0.5,               // (done + failed) / total
 *     "eta_ms": 130.1,               // null until a job completes
 *     "kips_live": 820.5,            // null until a job completes
 *     "checkpoint": { "restored": 0 },
 *     "state_counts": { "queued": n, "running": n, "retrying": n,
 *                       "done": n, "failed": n },
 *     "jobs": [ { "index": 0, "bench": "gcc", "label": "Plain",
 *                 "state": "done", "attempts": 1, "wall_ms": 12.5,
 *                 "ops": 10240, "kips": 819.2,
 *                 "from_checkpoint": false, "timed_out": false,
 *                 "error": "" }, ... ]
 *   }
 */

#ifndef REST_SIM_SWEEP_STATUS_HH
#define REST_SIM_SWEEP_STATUS_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sweep_events.hh"

namespace rest::telemetry
{
class MetricRegistry;
class Histogram;
class Gauge;
} // namespace rest::telemetry

namespace rest::sim
{

class SweepStatusTracker
{
  public:
    /** @param registry optional; when set, sweep metrics are published
     *         there on every event. */
    explicit SweepStatusTracker(
        telemetry::MetricRegistry *registry = nullptr);

    /** Bus listener (thread-safe; the bus already serialises). */
    void onEvent(const SweepEvent &event);

    /** Render the /status document (deterministic field order). */
    std::string statusJson() const;

    /** Jobs in a terminal state (done + failed) of the current sweep. */
    std::size_t completedJobs() const;

  private:
    struct JobStatus
    {
        std::string bench;
        std::string label;
        SweepEventKind state = SweepEventKind::Queued;
        unsigned attempts = 0;
        double wallMs = 0.0;
        std::uint64_t ops = 0;
        bool fromCheckpoint = false;
        bool timedOut = false;
        std::string error;
    };

    void publishMetrics(const SweepEvent &event);

    mutable std::mutex mutex_;
    std::string sweep_;
    std::uint64_t sweepsStarted_ = 0;
    unsigned threads_ = 0;
    std::uint64_t restored_ = 0;
    std::vector<JobStatus> jobs_;
    std::chrono::steady_clock::time_point sweepStart_{};

    telemetry::MetricRegistry *registry_;
    telemetry::Histogram *wallMsHist_ = nullptr;
    telemetry::Gauge *runningGauge_ = nullptr;
    telemetry::Gauge *progressGauge_ = nullptr;
    telemetry::Gauge *totalJobsGauge_ = nullptr;
};

} // namespace rest::sim

#endif // REST_SIM_SWEEP_STATUS_HH
