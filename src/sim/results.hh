/**
 * @file
 * Machine-readable sweep results (`BENCH_<figure>.json`).
 *
 * Every figure harness records its sweeps here and serialises them
 * with util::JsonWriter. Schema (stable; documented in README.md):
 *
 *   {
 *     "schema_version": 1,
 *     "figure": "fig7",
 *     "kiloinsts": 1000, "seeds_per_cell": 2, "jobs": 8,
 *     // optional: simulator throughput per execution mode, present
 *     // only when the harness ran its perf probe (--perf):
 *     "perf": { "bench": "gcc", "kiloinsts": 1000,
 *               "kips_detailed": 810.0,
 *               "kips_fast_functional": 14200.0,
 *               "kips_sampled": 5100.0,
 *               "speedup_fast_functional": 17.5,
 *               "speedup_sampled": 6.3 },
 *     "sweeps": [
 *       {
 *         "name": "overheads",
 *         "columns": ["ASan", ...],
 *         "rows": ["perlbench", ...],
 *         "cells": [
 *           { "bench": "perlbench", "column": "ASan",
 *             "cycles": 123, "ops": 456,
 *             // only for non-detailed runs ("fast-functional" or
 *             // "sampled"; sampled cells add "sampling_error_pct"):
 *             "exec_mode": "sampled", "sampling_error_pct": 2.1,
 *             "seed_cycles": [121, 125],
 *             "scalars": { "o3cpu.…": 1, "l1d.…": 2 } }, ... ],
 *         // a cell whose job(s) failed (after retries) serialises as
 *         //   { "bench": ..., "column": ...,
 *         //     "error": "...", "attempts": 3 }
 *         // instead of aborting the figure; successful cells that
 *         // needed retries additionally carry "attempts".
 *         "baseline_cycles": { "perlbench": 100, ... },   // optional
 *         "wtd_ari_mean_pct": { "ASan": 40.1, ... },      // optional
 *         "geo_mean_pct": { "ASan": 33.0, ... }           // optional
 *       }, ... ]
 *   }
 *
 * "cycles"/"ops" are the seed-averaged values the printed tables use;
 * "seed_cycles" holds the raw per-seed cycle counts and "scalars" the
 * component counters summed across seeds.
 */

#ifndef REST_SIM_RESULTS_HH
#define REST_SIM_RESULTS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rest::sim
{

/** One benchmark × configuration cell, aggregated over seeds. */
struct SweepCell
{
    std::string bench;
    std::string column;
    Cycles cycles = 0;          ///< seed-averaged, as printed
    std::uint64_t ops = 0;      ///< seed-averaged
    /** Execution mode the cell's jobs ran under; only serialised when
     *  not "detailed", so default output stays byte-identical. */
    std::string execMode = "detailed";
    /** Worst per-seed sampling error (sampled cells only). */
    double samplingErrorPct = 0.0;
    std::vector<Cycles> seedCycles;
    std::map<std::string, std::uint64_t> scalars; ///< summed over seeds
    /** Per-interval stat deltas (first seed's run); only serialised
     *  when non-empty, so default output stays byte-identical. */
    std::vector<stats::StatSnapshot> statSeries;

    /** False when any seed job failed after retries; such cells
     *  serialise as {"error", "attempts"} records. */
    bool ok = true;
    /** First failed seed's error (empty iff ok). */
    std::string error;
    /** Execution attempts summed over the cell's seed jobs. Emitted
     *  in the JSON only when it differs from the seed count (i.e. a
     *  retry or a failure happened), keeping default output
     *  byte-identical. */
    unsigned attempts = 0;
};

/** One named sweep: a rows × columns matrix of cells. */
struct SweepResults
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::string> rows;
    std::vector<SweepCell> cells;
    /** Plain-baseline cycles per row (empty if no baseline column). */
    std::map<std::string, Cycles> baselineCycles;
    /** Aggregate overheads per column vs the baseline (may be empty). */
    std::map<std::string, double> wtdAriMeanPct;
    std::map<std::string, double> geoMeanPct;
};

/**
 * Simulator-throughput record: simulated kilo-instructions per second
 * of host wall-clock for each execution mode on one probe benchmark.
 * Serialised as the optional "perf" object (only when valid()), so
 * harnesses that never measure throughput emit unchanged JSON.
 */
struct PerfRecord
{
    std::string bench;
    std::uint64_t kiloInsts = 0;
    double kipsDetailed = 0.0;
    double kipsFastFunctional = 0.0;
    double kipsSampled = 0.0;
    double speedupFastFunctional = 0.0;
    double speedupSampled = 0.0;

    bool valid() const { return kipsDetailed > 0.0; }
};

/** A whole results file: every sweep one harness invocation ran. */
struct ResultsFile
{
    std::string figure;
    std::uint64_t kiloInsts = 0;
    unsigned seedsPerCell = 0;
    unsigned jobs = 0;
    PerfRecord perf;
    std::vector<SweepResults> sweeps;
};

/** Serialise to the schema above (deterministic byte-for-byte). */
void writeJson(const ResultsFile &results, std::ostream &os);

/**
 * Write to `path`; returns false (with a warning on stderr) if the
 * file cannot be opened — harnesses keep printing their tables.
 */
bool writeJsonFile(const ResultsFile &results, const std::string &path);

} // namespace rest::sim

#endif // REST_SIM_RESULTS_HH
