#include "sim/sweep.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "sim/checkpoint.hh"
#include "sim/sweep_events.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace rest::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedMs(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     since)
        .count();
}

/** The column label telemetry reports for a job (matches what the
 *  Measurement will carry). */
std::string
eventLabel(const SweepJob &job)
{
    if (!job.label.empty())
        return job.label;
    return job.useCustomConfig ? std::string("custom")
                               : expConfigName(job.config);
}

/** Start a lifecycle event for one job (seq is assigned on publish). */
SweepEvent
jobEvent(const SweepOptions &options, SweepEventKind kind,
         const SweepJob &job, std::size_t index)
{
    SweepEvent e;
    e.kind = kind;
    e.sweep = options.sweepName;
    e.job = index;
    e.bench = job.profile.name;
    e.label = eventLabel(job);
    return e;
}

Measurement
runJob(const SweepJob &job, std::size_t index)
{
    REST_DPRINTF(trace::Flag::Sweep, index, "sweep",
                 "job ", index, " start bench=", job.profile.name);
    Measurement m;
    if (job.useCustomConfig) {
        SystemConfig cfg = job.customConfig;
        // A non-default job-level mode wins; the default leaves
        // whatever the custom config already carries untouched.
        if (!job.exec.detailed())
            cfg.exec = job.exec;
        m = runCustom(job.profile, cfg,
                      job.label.empty() ? std::string("custom")
                                        : job.label);
    } else {
        m = runBench(job.profile, job.config, job.width, job.inorder,
                     job.exec);
        if (!job.label.empty())
            m.label = job.label;
    }
    REST_DPRINTF(trace::Flag::Sweep, index, "sweep",
                 "job ", index, " done bench=", m.bench, " label=",
                 m.label, " cycles=", m.cycles);
    return m;
}

/**
 * Watches in-flight jobs and warns (once per job) when one overruns
 * the soft timeout. Purely advisory — the attempt itself is judged
 * against the deadline by executeJob() once it finishes; the watchdog
 * exists so a wedged sweep tells the operator which job is stuck
 * while it is stuck, not an hour later.
 */
class Watchdog
{
  public:
    explicit Watchdog(std::uint64_t timeout_ms) : timeout_ms_(timeout_ms)
    {
        if (timeout_ms_ == 0)
            return;
        thread_ = std::thread([this] { loop(); });
    }

    ~Watchdog()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void
    jobStarted(std::size_t index)
    {
        if (timeout_ms_ == 0)
            return;
        std::lock_guard lock(mutex_);
        inflight_[index] = {Clock::now(), false};
    }

    void
    jobFinished(std::size_t index)
    {
        if (timeout_ms_ == 0)
            return;
        std::lock_guard lock(mutex_);
        inflight_.erase(index);
    }

  private:
    struct Inflight
    {
        Clock::time_point start;
        bool warned = false;
    };

    void
    loop()
    {
        const auto period = std::chrono::milliseconds(
            std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                           timeout_ms_ / 2, 200)));
        std::unique_lock lock(mutex_);
        while (!cv_.wait_for(lock, period,
                             [this] { return stopping_; })) {
            for (auto &[index, fl] : inflight_) {
                if (fl.warned ||
                    elapsedMs(fl.start) <= double(timeout_ms_))
                    continue;
                fl.warned = true;
                rest_warn("sweep job ", index,
                          " exceeded the soft timeout of ",
                          timeout_ms_, " ms and is still running");
            }
        }
    }

    const std::uint64_t timeout_ms_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::size_t, Inflight> inflight_;
    bool stopping_ = false;
    std::thread thread_;
};

/**
 * Serialises completed JobResults to the checkpoint file after every
 * completion. Thread-safe; whole-file rewrite, atomic on disk.
 */
class CheckpointWriter
{
  public:
    CheckpointWriter(std::string path, std::size_t total_jobs)
        : path_(std::move(path))
    {
        ck_.totalJobs = total_jobs;
    }

    bool enabled() const { return !path_.empty(); }

    /** Record one finished (or restored) job and flush to disk. */
    void
    record(std::size_t index, const SweepJob &job, const JobResult &r,
           bool flush = true)
    {
        if (!enabled())
            return;
        std::lock_guard lock(mutex_);
        CheckpointEntry e;
        e.index = index;
        e.key = checkpointJobKey(job);
        e.ok = r.ok;
        e.timedOut = r.timedOut;
        e.attempts = r.attempts;
        e.starts = r.starts;
        e.wallMs = r.wallMs;
        e.error = r.error;
        if (r.ok)
            e.measurement = r.measurement;
        ck_.entries[index] = std::move(e);
        if (flush)
            ck_.save(path_);
    }

    void
    flush()
    {
        if (!enabled())
            return;
        std::lock_guard lock(mutex_);
        ck_.save(path_);
    }

  private:
    const std::string path_;
    std::mutex mutex_;
    SweepCheckpoint ck_;
};

} // namespace

SweepJob
makePresetJob(workload::BenchProfile profile, ExpConfig config,
              core::TokenWidth width, bool inorder)
{
    SweepJob job;
    job.profile = std::move(profile);
    job.config = config;
    job.width = width;
    job.inorder = inorder;
    return job;
}

SweepJob
makeCustomJob(workload::BenchProfile profile, const SystemConfig &cfg,
              std::string label)
{
    SweepJob job;
    job.profile = std::move(profile);
    job.useCustomConfig = true;
    job.customConfig = cfg;
    job.label = std::move(label);
    return job;
}

// ---------------------------------------------------------------------
// SweepFaultInjector
// ---------------------------------------------------------------------

std::optional<SweepFaultInjector>
SweepFaultInjector::parse(const std::string &spec)
{
    auto bad = [&spec]() -> std::optional<SweepFaultInjector> {
        rest_warn("bad fault-injection spec \"", spec,
                  "\" (want fail-once:IDX, fail-always:IDX, "
                  "fail-hard:IDX or slow:IDX:MS); ignoring it");
        return std::nullopt;
    };

    std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return bad();
    const std::string name = spec.substr(0, colon);
    std::string rest = spec.substr(colon + 1);

    SweepFaultInjector inj;
    if (name == "fail-once")
        inj.mode = Mode::FailOnce;
    else if (name == "fail-always")
        inj.mode = Mode::FailAlways;
    else if (name == "fail-hard")
        inj.mode = Mode::FailHard;
    else if (name == "slow")
        inj.mode = Mode::Slow;
    else
        return bad();

    std::string ms;
    if (inj.mode == Mode::Slow) {
        std::size_t colon2 = rest.find(':');
        if (colon2 == std::string::npos)
            return bad();
        ms = rest.substr(colon2 + 1);
        rest = rest.substr(0, colon2);
    }

    auto parseU64 = [](const std::string &s, std::uint64_t *out) {
        if (s.empty() || s.find_first_not_of("0123456789") !=
                             std::string::npos)
            return false;
        *out = std::strtoull(s.c_str(), nullptr, 10);
        return true;
    };
    std::uint64_t index = 0;
    if (!parseU64(rest, &index))
        return bad();
    inj.jobIndex = std::size_t(index);
    if (inj.mode == Mode::Slow && !parseU64(ms, &inj.slowMs))
        return bad();
    return inj;
}

SweepFaultInjector
SweepFaultInjector::fromEnv()
{
    const char *env = std::getenv("REST_SWEEP_FAULT");
    if (!env || !*env)
        return {};
    return parse(env).value_or(SweepFaultInjector{});
}

void
SweepFaultInjector::inject(std::size_t job_index,
                           unsigned attempt) const
{
    if (!active() || job_index != jobIndex)
        return;
    switch (mode) {
      case Mode::FailOnce:
        if (attempt == 1)
            throw TransientJobError(
                "injected fault (fail-once) at job " +
                std::to_string(job_index));
        break;
      case Mode::FailAlways:
        throw TransientJobError("injected fault (fail-always) at job " +
                                std::to_string(job_index));
      case Mode::FailHard:
        throw std::runtime_error("injected fault (fail-hard) at job " +
                                 std::to_string(job_index));
      case Mode::Slow:
        if (attempt == 1)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slowMs));
        break;
      case Mode::None:
        break;
    }
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

namespace
{

/**
 * Export the check-optimizer effectiveness of one finished job as
 * live rest_instr_checks_* counters, so /metrics shows what the
 * elision/hoisting/coalescing passes are achieving mid-sweep.
 */
void
publishInstrMetrics(const SweepOptions &options, const Measurement &m)
{
    if (!options.registry)
        return;
    static constexpr struct
    {
        const char *scalar;
        const char *metric;
        const char *help;
    } kInstrCounters[] = {
        {"instr.access_checks_inserted", "rest_instr_checks_emitted",
         "Shadow-check groups emitted by instrumentation"},
        {"instr.access_checks_elided", "rest_instr_checks_elided",
         "Shadow-check groups deleted as redundant"},
        {"instr.access_checks_hoisted", "rest_instr_checks_hoisted",
         "Shadow-check groups hoisted into loop preheaders"},
        {"instr.access_checks_coalesced",
         "rest_instr_checks_coalesced",
         "Shadow-check groups folded into a widened neighbour"},
    };
    for (const auto &entry : kInstrCounters) {
        auto it = m.scalars.find(entry.scalar);
        if (it == m.scalars.end())
            continue;
        options.registry
            ->counter(entry.metric, entry.help,
                      {{"sweep", options.sweepName}})
            .inc(it->second);
    }
}

} // namespace

SweepRunner::SweepRunner(unsigned num_threads, SweepOptions options)
    : num_threads_(std::max(1u, num_threads)),
      options_(std::move(options))
{}

JobResult
SweepRunner::executeJob(const SweepJob &job, std::size_t index,
                        unsigned prior_starts) const
{
    JobResult r;
    const unsigned max_attempts = 1 + options_.retries;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        r.attempts = attempt;
        r.starts = prior_starts + attempt;
        if (options_.events) {
            SweepEvent e = jobEvent(options_, SweepEventKind::Running,
                                    job, index);
            e.attempt = attempt;
            options_.events->publish(std::move(e));
        }
        const auto t0 = Clock::now();
        bool transient = false;
        try {
            // rest_fatal inside the job (workload generators, the
            // instrumentation verifier) becomes util::FatalError here
            // instead of exiting the process.
            util::ScopedFatalThrow fatal_throws;
            options_.fault.inject(index, attempt);
            Measurement m = runJob(job, index);
            r.wallMs = elapsedMs(t0);
            if (options_.jobTimeoutMs == 0 ||
                r.wallMs <= double(options_.jobTimeoutMs)) {
                r.ok = true;
                r.timedOut = false;
                r.error.clear();
                r.measurement = std::move(m);
                publishInstrMetrics(options_, r.measurement);
                if (options_.events) {
                    SweepEvent e = jobEvent(
                        options_, SweepEventKind::Done, job, index);
                    e.attempt = attempt;
                    e.wallMs = r.wallMs;
                    e.ops = r.measurement.ops;
                    options_.events->publish(std::move(e));
                }
                return r;
            }
            // Completed, but over the soft deadline: the measurement
            // is discarded and the overrun treated as transient.
            r.timedOut = true;
            transient = true;
            r.error = "soft timeout: attempt took " +
                      std::to_string(std::uint64_t(r.wallMs)) +
                      " ms (budget " +
                      std::to_string(options_.jobTimeoutMs) + " ms)";
        } catch (const TransientJobError &e) {
            r.wallMs = elapsedMs(t0);
            r.timedOut = false;
            r.error = e.what();
            transient = true;
        } catch (const std::exception &e) {
            r.wallMs = elapsedMs(t0);
            r.timedOut = false;
            r.error = e.what();
        } catch (...) {
            r.wallMs = elapsedMs(t0);
            r.timedOut = false;
            r.error = "unknown exception";
        }

        rest_warn("sweep job ", index, " (", job.profile.name,
                  ") attempt ", attempt, "/", max_attempts,
                  " failed: ", r.error);
        const bool terminal = !transient || attempt == max_attempts;
        if (options_.events) {
            SweepEvent e = jobEvent(options_,
                                    terminal ? SweepEventKind::Failed
                                             : SweepEventKind::Retrying,
                                    job, index);
            e.attempt = attempt;
            e.wallMs = r.wallMs;
            e.timedOut = r.timedOut;
            e.error = r.error;
            options_.events->publish(std::move(e));
        }
        if (terminal)
            return r;
        if (options_.backoffBaseMs) {
            std::uint64_t delay = std::min<std::uint64_t>(
                options_.backoffBaseMs << (attempt - 1), 10000);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
    return r; // unreachable; the loop always returns
}

std::vector<JobResult>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<JobResult> results(jobs.size());
    std::vector<unsigned> prior_starts(jobs.size(), 0);
    CheckpointWriter writer(options_.checkpointPath, jobs.size());

    if (options_.events) {
        SweepEvent begin;
        begin.kind = SweepEventKind::SweepBegin;
        begin.sweep = options_.sweepName;
        begin.totalJobs = jobs.size();
        begin.threads = num_threads_;
        options_.events->publish(std::move(begin));
        for (std::size_t i = 0; i < jobs.size(); ++i)
            options_.events->publish(
                jobEvent(options_, SweepEventKind::Queued, jobs[i], i));
    }

    // Restore completed jobs from the resume file, if any.
    if (!options_.resumePath.empty()) {
        if (auto ck = SweepCheckpoint::load(options_.resumePath)) {
            std::size_t restored = 0;
            for (const auto &[index, entry] : ck->entries) {
                if (index >= jobs.size())
                    continue;
                if (entry.key != checkpointJobKey(jobs[index])) {
                    rest_warn("checkpoint entry ", index, " key \"",
                              entry.key, "\" does not match this "
                              "sweep; re-running the job");
                    continue;
                }
                prior_starts[index] = entry.starts;
                if (!entry.ok)
                    continue; // failed last time: execute again
                JobResult &r = results[index];
                r.ok = true;
                r.fromCheckpoint = true;
                r.attempts = entry.attempts;
                r.starts = entry.starts;
                r.wallMs = entry.wallMs;
                r.measurement = entry.measurement;
                writer.record(index, jobs[index], r, /*flush=*/false);
                ++restored;
                if (options_.events) {
                    SweepEvent e = jobEvent(
                        options_, SweepEventKind::Done, jobs[index],
                        index);
                    e.attempt = r.attempts;
                    e.wallMs = r.wallMs;
                    e.ops = r.measurement.ops;
                    e.fromCheckpoint = true;
                    options_.events->publish(std::move(e));
                }
            }
            rest_inform("resumed ", restored, " of ", jobs.size(),
                        " sweep jobs from ", options_.resumePath);
        }
    }

    std::vector<std::size_t> todo;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!results[i].fromCheckpoint)
            todo.push_back(i);

    Watchdog watchdog(options_.jobTimeoutMs);
    auto exec = [&](std::size_t i) {
        watchdog.jobStarted(i);
        results[i] = executeJob(jobs[i], i, prior_starts[i]);
        watchdog.jobFinished(i);
        writer.record(i, jobs[i], results[i]);
    };

    if (num_threads_ <= 1 || todo.size() <= 1) {
        for (std::size_t i : todo)
            exec(i);
    } else {
        util::ThreadPool pool(
            std::min<std::size_t>(num_threads_, todo.size()));
        if (options_.registry)
            pool.publishMetrics(*options_.registry, "sweep");
        for (std::size_t i : todo)
            pool.submit([&exec, i] { exec(i); });
        pool.wait();
    }

    // Ensure the file exists (and reflects restores) even when
    // everything was resumed and nothing executed.
    writer.flush();
    return results;
}

} // namespace rest::sim
