#include "sim/sweep.hh"

#include <utility>

#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace rest::sim
{

namespace
{

Measurement
runJob(const SweepJob &job, std::size_t index)
{
    REST_DPRINTF(trace::Flag::Sweep, index, "sweep",
                 "job ", index, " start bench=", job.profile.name);
    Measurement m;
    if (job.useCustomConfig) {
        m = runCustom(job.profile, job.customConfig,
                      job.label.empty() ? std::string("custom")
                                        : job.label);
    } else {
        m = runBench(job.profile, job.config, job.width, job.inorder);
        if (!job.label.empty())
            m.label = job.label;
    }
    REST_DPRINTF(trace::Flag::Sweep, index, "sweep",
                 "job ", index, " done bench=", m.bench, " label=",
                 m.label, " cycles=", m.cycles);
    return m;
}

} // namespace

SweepJob
makePresetJob(workload::BenchProfile profile, ExpConfig config,
              core::TokenWidth width, bool inorder)
{
    SweepJob job;
    job.profile = std::move(profile);
    job.config = config;
    job.width = width;
    job.inorder = inorder;
    return job;
}

SweepJob
makeCustomJob(workload::BenchProfile profile, const SystemConfig &cfg,
              std::string label)
{
    SweepJob job;
    job.profile = std::move(profile);
    job.useCustomConfig = true;
    job.customConfig = cfg;
    job.label = std::move(label);
    return job;
}

SweepRunner::SweepRunner(unsigned num_threads)
    : num_threads_(std::max(1u, num_threads))
{}

std::vector<Measurement>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<Measurement> results(jobs.size());
    if (num_threads_ <= 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runJob(jobs[i], i);
        return results;
    }

    util::ThreadPool pool(std::min<std::size_t>(num_threads_,
                                                jobs.size()));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&jobs, &results, i] {
            results[i] = runJob(jobs[i], i);
        });
    }
    pool.wait();
    return results;
}

} // namespace rest::sim
