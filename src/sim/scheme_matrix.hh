/**
 * @file
 * The shared attack-scenario matrix: every registered
 * ProtectionScheme runs the same directed attack programs and its
 * measured verdicts are compared against its declared
 * DetectionProfile. The measured Table III (bench/tab3_comparison)
 * and the scheme-conformance test suite are both built on this.
 */

#ifndef REST_SIM_SCHEME_MATRIX_HH
#define REST_SIM_SCHEME_MATRIX_HH

#include <string>
#include <vector>

#include "runtime/protection_scheme.hh"

namespace rest::sim
{

/** Measured detection verdicts for one scheme (true == caught). */
struct SchemeVerdicts
{
    std::string scheme;
    bool linearOverflow = false;
    bool jumpOverRedzone = false;
    bool pointerDiffJump = false;
    bool pointerCorruption = false;
    bool uafQuarantined = false;
    bool uafRecycled = false;
    bool doubleFree = false;
    bool stackOverflow = false;
    bool uninstrumentedLibrary = false;
};

/** One row of the scenario table: name + field accessors. */
struct ScenarioInfo
{
    const char *key;
    bool SchemeVerdicts::*measured;
    runtime::Expect runtime::DetectionProfile::*declared;
};

/** The scenario matrix, in display order. */
const std::vector<ScenarioInfo> &attackScenarios();

/**
 * Run every attack scenario under 'scheme' and record whether it
 * faulted. 'token_seed' feeds the token generator and the tag/PAC
 * randomness of the mte/pauth backends.
 */
SchemeVerdicts measureScheme(const runtime::SchemeConfig &scheme,
                             std::uint64_t token_seed = 0xc0ffee);

/**
 * Measured verdicts for the concurrency scenarios: two-core attack
 * pairs (workload/attack_scenarios.hh) run on the multicore machine,
 * optionally padded with benign server handlers up to 'cores'.
 */
struct ConcurrencyVerdicts
{
    std::string scheme;
    bool crossThreadUaf = false;
    bool racyDoubleFree = false;
    bool handoffOverflow = false;
};

/** One row of the concurrency scenario table. */
struct ConcurrencyScenarioInfo
{
    const char *key;
    bool ConcurrencyVerdicts::*measured;
    runtime::Expect runtime::DetectionProfile::*declared;
};

/** The concurrency scenario matrix, in display order. */
const std::vector<ConcurrencyScenarioInfo> &concurrencyScenarios();

/**
 * Run the concurrency attacks under 'scheme' on a 'cores'-core
 * machine (>= 2; the attack pair occupies cores 0/1, any further
 * cores run benign hand-off-free server handlers). 'detailed' runs
 * the timing models — the REST verdict then flows through the per-L1
 * token-detector trap on a real coherence transfer — while the
 * default functional path measures the same architectural verdicts
 * faster.
 */
ConcurrencyVerdicts
measureSchemeMulticore(const runtime::SchemeConfig &scheme,
                       unsigned cores = 2, bool detailed = false,
                       std::uint64_t token_seed = 0xc0ffee);

/** Does a measured verdict satisfy a declared expectation? */
inline bool
verdictMatches(runtime::Expect declared, bool caught)
{
    switch (declared) {
      case runtime::Expect::Caught:
        return caught;
      case runtime::Expect::Missed:
        return !caught;
      case runtime::Expect::SeedDependent:
        return true; // either outcome is conformant per seed
    }
    return false;
}

/** All scenarios conform to the declared profile? */
bool matchesProfile(const SchemeVerdicts &v,
                    const runtime::DetectionProfile &p);

/** All concurrency scenarios conform to the declared profile? */
bool matchesConcurrencyProfile(const ConcurrencyVerdicts &v,
                               const runtime::DetectionProfile &p);

/** Outcome tallies of a seed sweep over the uafRecycled scenario. */
struct SeedSweepResult
{
    unsigned caught = 0;
    unsigned missed = 0;
    /** First seed producing each outcome (~0 when never seen). */
    std::uint64_t firstCaughtSeed = ~std::uint64_t(0);
    std::uint64_t firstMissedSeed = ~std::uint64_t(0);

    bool bothWitnessed() const { return caught != 0 && missed != 0; }
};

/**
 * Sweep the use-after-recycle scenario over 'num_seeds' consecutive
 * seeds: witnesses both outcomes of a SeedDependent declaration
 * (e.g. MTE's 4-bit tag-reuse escape).
 */
SeedSweepResult sweepUafRecycled(const runtime::SchemeConfig &scheme,
                                 std::uint64_t first_seed,
                                 unsigned num_seeds);

/** Table III spatial class implied by the measured verdicts. */
std::string spatialClassOf(const SchemeVerdicts &v);

/** Table III temporal class implied by the measured verdicts. */
std::string temporalClassOf(const SchemeVerdicts &v);

/** The facts behind the legacy REST row (see bench/common_probe.hh). */
struct RestRowFacts
{
    bool spatialLinear = false;
    bool temporalUntilRealloc = false;
    bool usesShadowSpace = true;
    bool composable = false;
};

/** The four printed cells of the REST row. */
struct RestRowText
{
    std::string spatial;
    std::string temporal;
    std::string shadow;
    std::string composable;
};

/**
 * Render the REST row of Table III. When 'probe_error' is non-empty
 * the probe did not produce measurements and every cell reads
 * "BROKEN" — no column may fall back to default-constructed facts.
 */
RestRowText formatRestRow(const RestRowFacts &facts,
                          const std::string &probe_error);

} // namespace rest::sim

#endif // REST_SIM_SCHEME_MATRIX_HH
