/**
 * @file
 * System: assembles one complete simulated machine — guest memory,
 * token configuration register + REST engine, DRAM/L2/L1 hierarchy
 * with the REST L1-D, the configured allocator and instrumentation,
 * the functional emulator, and a timing CPU (out-of-order or
 * in-order) — and runs a program on it.
 */

#ifndef REST_SIM_SYSTEM_HH
#define REST_SIM_SYSTEM_HH

#include <memory>

#include "core/rest_engine.hh"
#include "core/token.hh"
#include "cpu/inorder_cpu.hh"
#include "cpu/o3_cpu.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/guest_memory.hh"
#include "mem/rest_l1_cache.hh"
#include "runtime/allocator.hh"
#include "runtime/instrumentation.hh"
#include "runtime/runtime_config.hh"
#include "sim/emulator.hh"
#include "sim/fast_functional.hh"
#include "sim/sampling.hh"
#include "util/trace.hh"

namespace rest::sim
{

/** Everything configurable about one run. */
struct SystemConfig
{
    runtime::SchemeConfig scheme;
    core::RestMode mode = core::RestMode::Secure;
    core::TokenWidth tokenWidth = core::TokenWidth::Bytes64;
    bool useInOrderCpu = false;

    cpu::CpuConfig cpuConfig;
    cpu::InOrderConfig inorderConfig;
    mem::CacheConfig l1iConfig = mem::CacheConfig::l1i();
    mem::CacheConfig l1dConfig = mem::CacheConfig::l1d();
    mem::CacheConfig l2Config = mem::CacheConfig::l2();
    mem::DramConfig dramConfig;

    std::uint64_t maxOps = ~std::uint64_t(0);
    std::uint64_t tokenSeed = 0xc0ffee;

    /**
     * Execution mode: detailed (default), fast-functional, or
     * sampled (see sim/sampling.hh). The default takes exactly the
     * historical all-detailed code path.
     */
    ExecutionConfig exec;

    /**
     * Tracing/metrics for this system. Default-constructed (inactive)
     * means no sink is created and run() costs nothing extra.
     */
    trace::TraceConfig trace;
};

/** Outcome of a System::run(). */
struct SystemResult
{
    cpu::RunResult run;
    runtime::InstrumentationSummary instrumentation;
    /** Run retired functionally (cycles are nominal, CPI == 1). */
    bool fastFunctional = false;
    /** Run was sampled; `run.cycles` is the extrapolated estimate
     *  and `sampling` carries the window/error breakdown. */
    bool sampled = false;
    SamplingEstimate sampling;
    std::uint64_t armsExecuted = 0;
    std::uint64_t disarmsExecuted = 0;
    std::uint64_t mallocCalls = 0;
    std::uint64_t freeCalls = 0;

    bool faulted() const { return run.faulted(); }
    Cycles cycles() const { return run.cycles; }
};

/** One simulated machine instance. */
class System
{
  public:
    /**
     * @param program un-instrumented program (copied, then finalised
     *        for the configured scheme).
     * @param cfg machine + scheme configuration.
     */
    System(isa::Program program, const SystemConfig &cfg);

    /** Run to completion / fault / op cap. */
    SystemResult run();

    // Component access for tests, examples and benches.
    mem::GuestMemory &memory() { return memory_; }
    core::RestEngine &engine() { return engine_; }
    const core::TokenConfigRegister &tokenRegister() const
    { return tcr_; }
    runtime::Allocator &allocator() { return *allocator_; }
    Emulator &emulator() { return *emulator_; }
    mem::RestL1Cache &dcache() { return l1d_; }
    mem::Cache &icache() { return l1i_; }
    mem::Cache &l2cache() { return l2_; }
    const isa::Program &program() const { return program_; }
    const SystemConfig &config() const { return cfg_; }

    /** Timing-CPU stats (whichever model is active). */
    const stats::StatGroup &cpuStats() const;

    /** Dump all component stats. */
    void dumpStats(std::ostream &os) const;

    /** This system's private trace sink (nullptr when tracing off). */
    trace::TraceSink *traceSink() { return traceSink_.get(); }

    /**
     * Periodic stat snapshots from every component group, merged by
     * cycle (all groups snapshot on the same statsTick boundaries).
     * Empty unless cfg.trace.statsEvery was set.
     */
    std::vector<stats::StatSnapshot> statSnapshots() const;

  private:
    /** The sampled-mode interleave loop (detailed windows on the O3
     *  core, functional fast-forward between them). */
    cpu::RunResult runSampledLoop(SamplingEstimate &est);

    SystemConfig cfg_;
    mem::GuestMemory memory_;
    Xoshiro256ss rng_;
    core::TokenConfigRegister tcr_;
    core::RestEngine engine_;
    mem::Dram dram_;
    mem::Cache l2_;
    mem::Cache l1i_;
    mem::RestL1Cache l1d_;
    std::unique_ptr<runtime::Allocator> allocator_;
    /** Tag-check predicate for mte/pauth; owned by allocator_. */
    const runtime::AccessPolicy *policy_ = nullptr;
    isa::Program program_;
    runtime::InstrumentationSummary instrumentation_;
    std::unique_ptr<Emulator> emulator_;
    std::unique_ptr<cpu::O3Cpu> o3_;
    std::unique_ptr<cpu::InOrderCpu> inorder_;
    std::unique_ptr<FastFunctional> fast_;
    std::unique_ptr<trace::TraceSink> traceSink_;
};

} // namespace rest::sim

#endif // REST_SIM_SYSTEM_HH
