/**
 * @file
 * SweepRunner: a fault-tolerant parallel experiment-sweep engine.
 *
 * A sweep is a list of SweepJobs — each one a pure function of
 * (profile, configuration, token width, seed). The runner executes the
 * jobs on a work-stealing thread pool (util::ThreadPool), one
 * sim::System per job, and returns per-job JobResults *in submission
 * order*, so successful measurements are bit-identical to running the
 * same jobs serially through runBench()/runCustom() regardless of
 * thread count or scheduling (tests/sim/sweep_test.cc proves the
 * invariance).
 *
 * Fault tolerance (SweepOptions): a job that throws — including a
 * rest_fatal from a workload generator or the instrumentation
 * verifier, converted to util::FatalError by a ScopedFatalThrow guard
 * around each attempt — is recorded as a failed JobResult instead of
 * killing the sweep. Failures classified transient (TransientJobError,
 * soft-timeout overruns) are retried up to `retries` extra attempts
 * with exponential backoff; everything else fails permanently on the
 * first attempt. A watchdog thread warns when a running job exceeds
 * the soft timeout (the attempt still runs to completion — jobs are
 * never killed mid-flight — but its result is discarded and the job
 * is retried or failed).
 *
 * Checkpointing: with `checkpointPath` set, every completed JobResult
 * is persisted (atomically, whole-file rewrite) so a killed sweep
 * loses nothing already measured; with `resumePath` set, jobs recorded
 * ok in that file are restored instead of re-executed. See
 * sim/checkpoint.hh for the file format.
 *
 * Deterministic fault injection (SweepFaultInjector, REST_SWEEP_FAULT)
 * makes every recovery path testable: fail-once / fail-always /
 * fail-hard / slow, selected by job submission index.
 */

#ifndef REST_SIM_SWEEP_HH
#define REST_SIM_SWEEP_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace rest::telemetry
{
class MetricRegistry;
} // namespace rest::telemetry

namespace rest::sim
{

class SweepEventBus;

/** One cell of a sweep: a benchmark run under one configuration. */
struct SweepJob
{
    workload::BenchProfile profile;

    // Preset path (the common case).
    ExpConfig config = ExpConfig::Plain;
    core::TokenWidth width = core::TokenWidth::Bytes64;
    bool inorder = false;

    /** When set, run customConfig via runCustom() instead of the
     *  preset — Figure 3 levels and the ablations need this. */
    bool useCustomConfig = false;
    SystemConfig customConfig;

    /** Execution mode for this cell. Applied to preset jobs directly;
     *  for custom jobs a non-default value overrides
     *  customConfig.exec (the default leaves customConfig alone). */
    ExecutionConfig exec;

    /** Column label recorded in the Measurement; defaults to
     *  expConfigName(config) when empty. */
    std::string label;
};

/** Convenience builders. */
SweepJob makePresetJob(workload::BenchProfile profile, ExpConfig config,
                       core::TokenWidth width =
                           core::TokenWidth::Bytes64,
                       bool inorder = false);
SweepJob makeCustomJob(workload::BenchProfile profile,
                       const SystemConfig &cfg, std::string label);

/**
 * A job failure the retry policy treats as transient (worth retrying):
 * injected faults and soft-timeout overruns. Deterministic failures —
 * bad configurations, contract violations — should NOT use this type;
 * they fail the job on the first attempt.
 */
class TransientJobError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Deterministic fault injection, keyed by job submission index, so
 * every recovery path of the runner (and of the figure harnesses
 * downstream) is exercisable from tests and CI.
 *
 * Spec syntax (flag --fault-inject or env REST_SWEEP_FAULT):
 *   fail-once:IDX     throw TransientJobError on attempt 1 of job IDX
 *   fail-always:IDX   throw TransientJobError on every attempt
 *   fail-hard:IDX     throw a permanent error (no retry) on job IDX
 *   slow:IDX:MS       sleep MS milliseconds on attempt 1 of job IDX
 *                     (drives the soft-timeout path)
 */
struct SweepFaultInjector
{
    enum class Mode { None, FailOnce, FailAlways, FailHard, Slow };

    Mode mode = Mode::None;
    std::size_t jobIndex = 0;
    std::uint64_t slowMs = 0;

    bool active() const { return mode != Mode::None; }

    /** Parse a spec string; nullopt (with a warning) on bad syntax. */
    static std::optional<SweepFaultInjector>
    parse(const std::string &spec);

    /** REST_SWEEP_FAULT, or an inactive injector when unset/bad. */
    static SweepFaultInjector fromEnv();

    /**
     * Called at the start of every attempt. May throw (fail modes) or
     * sleep (slow mode); does nothing for non-matching jobs.
     */
    void inject(std::size_t job_index, unsigned attempt) const;
};

/** Execution policy for one SweepRunner. */
struct SweepOptions
{
    /** Extra attempts after a transient failure (0 = no retry). */
    unsigned retries = 1;
    /** Exponential backoff base between attempts; attempt k sleeps
     *  backoffBaseMs << (k-1), capped at 10 s. 0 disables backoff. */
    std::uint64_t backoffBaseMs = 0;
    /** Soft per-job timeout. An attempt that finishes over budget is
     *  treated as a transient failure; 0 disables. */
    std::uint64_t jobTimeoutMs = 0;
    /** Persist completed JobResults to this file ("" = off). */
    std::string checkpointPath;
    /** Restore completed jobs from this file ("" = off). */
    std::string resumePath;
    SweepFaultInjector fault;

    // --- telemetry (DESIGN.md §12; all off by default) ---------------
    /** Sweep display name carried on every published event. */
    std::string sweepName;
    /** Lifecycle event bus (nullptr = no events; the runner's output
     *  and results are byte-identical either way). */
    SweepEventBus *events = nullptr;
    /** When set alongside a thread pool, the pool's queue-depth and
     *  active-worker gauges are published here for the sweep's
     *  duration. */
    telemetry::MetricRegistry *registry = nullptr;
};

/** The per-job outcome of a fault-tolerant sweep. */
struct JobResult
{
    bool ok = false;
    /** Restored from --resume instead of executed this process. */
    bool fromCheckpoint = false;
    /** Final attempt exceeded the soft timeout (implies !ok). */
    bool timedOut = false;
    /** Execution attempts that produced this result (including the
     *  checkpointed run's attempts for restored jobs). */
    unsigned attempts = 0;
    /** Total executions across checkpointed runs of this sweep:
     *  prior runs' starts plus this process's attempts. */
    unsigned starts = 0;
    /** Wall-clock time of the final attempt, milliseconds. */
    double wallMs = 0;
    /** Empty iff ok. */
    std::string error;
    /** Valid iff ok. Restored results carry the aggregate fields
     *  (bench/label/config/seed/cycles/ops/scalars) but not `detail`
     *  or `statSeries` — see sim/checkpoint.hh. */
    Measurement measurement;
};

class SweepRunner
{
  public:
    /**
     * @param num_threads worker threads; 0 or 1 runs the jobs inline
     *        on the calling thread (no pool is created).
     * @param options retry/timeout/checkpoint/fault-injection policy.
     */
    explicit SweepRunner(unsigned num_threads = 1,
                         SweepOptions options = {});

    unsigned numThreads() const { return num_threads_; }
    const SweepOptions &options() const { return options_; }

    /**
     * Run every job; the result vector is indexed like `jobs`
     * (submission order), independent of execution interleaving. Never
     * throws for job-level failures — inspect JobResult::ok.
     */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs) const;

  private:
    JobResult executeJob(const SweepJob &job, std::size_t index,
                         unsigned prior_starts) const;

    unsigned num_threads_;
    SweepOptions options_;
};

} // namespace rest::sim

#endif // REST_SIM_SWEEP_HH
