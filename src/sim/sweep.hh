/**
 * @file
 * SweepRunner: a parallel experiment-sweep engine.
 *
 * A sweep is a list of SweepJobs — each one a pure function of
 * (profile, configuration, token width, seed). The runner executes the
 * jobs on a work-stealing thread pool (util::ThreadPool), one
 * sim::System per job, and returns the Measurements *in submission
 * order*, so the output is bit-identical to running the same jobs
 * serially through runBench()/runCustom() regardless of thread count
 * or scheduling. This is what lets the figure harnesses regenerate the
 * paper's evaluation at full core count without perturbing results
 * (tests/sim/sweep_test.cc proves the invariance).
 */

#ifndef REST_SIM_SWEEP_HH
#define REST_SIM_SWEEP_HH

#include <vector>

#include "sim/experiment.hh"

namespace rest::sim
{

/** One cell of a sweep: a benchmark run under one configuration. */
struct SweepJob
{
    workload::BenchProfile profile;

    // Preset path (the common case).
    ExpConfig config = ExpConfig::Plain;
    core::TokenWidth width = core::TokenWidth::Bytes64;
    bool inorder = false;

    /** When set, run customConfig via runCustom() instead of the
     *  preset — Figure 3 levels and the ablations need this. */
    bool useCustomConfig = false;
    SystemConfig customConfig;

    /** Column label recorded in the Measurement; defaults to
     *  expConfigName(config) when empty. */
    std::string label;
};

/** Convenience builders. */
SweepJob makePresetJob(workload::BenchProfile profile, ExpConfig config,
                       core::TokenWidth width =
                           core::TokenWidth::Bytes64,
                       bool inorder = false);
SweepJob makeCustomJob(workload::BenchProfile profile,
                       const SystemConfig &cfg, std::string label);

class SweepRunner
{
  public:
    /**
     * @param num_threads worker threads; 0 or 1 runs the jobs inline
     *        on the calling thread (no pool is created).
     */
    explicit SweepRunner(unsigned num_threads = 1);

    unsigned numThreads() const { return num_threads_; }

    /**
     * Run every job; the result vector is indexed like `jobs`
     * (submission order), independent of execution interleaving.
     */
    std::vector<Measurement> run(const std::vector<SweepJob> &jobs) const;

  private:
    unsigned num_threads_;
};

} // namespace rest::sim

#endif // REST_SIM_SWEEP_HH
