#include "sim/checkpoint.hh"

#include <cstdio>
#include <fstream>

#include "util/json_reader.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"

namespace rest::sim
{

namespace
{

constexpr std::uint64_t kSchemaVersion = 1;

void
writeMeasurement(util::JsonWriter &w, const Measurement &m)
{
    w.beginObject();
    w.field("bench", m.bench);
    w.field("label", m.label);
    w.field("config", std::uint64_t(m.config));
    w.field("seed", m.seed);
    w.field("cycles", std::uint64_t(m.cycles));
    w.field("ops", m.ops);
    if (m.execMode != "detailed") {
        w.field("exec_mode", m.execMode);
        if (m.sampleWindows != 0) {
            w.field("sampling_error_pct", m.samplingErrorPct);
            w.field("sample_windows", m.sampleWindows);
            w.field("fast_forwarded_ops", m.fastForwardedOps);
        }
    }
    w.key("scalars");
    w.beginObject();
    for (const auto &[name, v] : m.scalars)
        w.field(name, v);
    w.endObject();
    w.endObject();
}

Measurement
readMeasurement(const util::JsonValue &v)
{
    Measurement m;
    m.bench = v.at("bench").str;
    m.label = v.at("label").str;
    m.config = ExpConfig(v.at("config").u64());
    m.seed = v.at("seed").u64();
    m.cycles = Cycles(v.at("cycles").u64());
    m.ops = v.at("ops").u64();
    if (v.has("exec_mode"))
        m.execMode = v.at("exec_mode").str;
    if (v.has("sampling_error_pct")) {
        m.samplingErrorPct = v.at("sampling_error_pct").number;
        m.sampleWindows = v.at("sample_windows").u64();
        m.fastForwardedOps = v.at("fast_forwarded_ops").u64();
    }
    for (const auto &[name, sv] : v.at("scalars").members)
        m.scalars[name] = sv.u64();
    return m;
}

} // namespace

std::uint64_t
SweepCheckpoint::jobStartsTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[index, entry] : entries)
        total += entry.starts;
    return total;
}

std::optional<SweepCheckpoint>
SweepCheckpoint::load(const std::string &path)
{
    bool ok = false;
    util::JsonValue root = util::readJsonFile(path, &ok);
    if (!ok || root.kind != util::JsonValue::Object) {
        rest_warn("checkpoint ", path,
                  " is missing or corrupt; ignoring it");
        return std::nullopt;
    }
    if (root.at("schema_version").u64() != kSchemaVersion) {
        rest_warn("checkpoint ", path, " has schema version ",
                  root.at("schema_version").u64(), " (want ",
                  kSchemaVersion, "); ignoring it");
        return std::nullopt;
    }

    SweepCheckpoint ck;
    ck.totalJobs = std::size_t(root.at("total_jobs").u64());
    for (const auto &jv : root.at("jobs").items) {
        CheckpointEntry e;
        e.index = std::size_t(jv.at("index").u64());
        e.key = jv.at("key").str;
        e.ok = jv.at("ok").boolean;
        e.timedOut = jv.has("timed_out") && jv.at("timed_out").boolean;
        e.attempts = unsigned(jv.at("attempts").u64());
        e.starts = unsigned(jv.at("starts").u64());
        e.wallMs = jv.at("wall_ms").number;
        if (jv.has("error"))
            e.error = jv.at("error").str;
        if (e.ok)
            e.measurement = readMeasurement(jv.at("measurement"));
        ck.entries[e.index] = std::move(e);
    }
    return ck;
}

bool
SweepCheckpoint::save(const std::string &path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            rest_warn("cannot open checkpoint file ", tmp,
                      "; skipping checkpoint write");
            return false;
        }
        util::JsonWriter w(out);
        w.beginObject();
        w.field("schema_version", kSchemaVersion);
        w.field("total_jobs", std::uint64_t(totalJobs));
        w.field("job_starts_total", jobStartsTotal());
        w.key("jobs");
        w.beginArray();
        for (const auto &[index, e] : entries) {
            w.beginObject();
            w.field("index", std::uint64_t(e.index));
            w.field("key", e.key);
            w.field("ok", e.ok);
            w.field("attempts", std::uint64_t(e.attempts));
            w.field("starts", std::uint64_t(e.starts));
            w.field("wall_ms", e.wallMs);
            if (e.timedOut)
                w.field("timed_out", true);
            if (!e.error.empty())
                w.field("error", e.error);
            if (e.ok) {
                w.key("measurement");
                writeMeasurement(w, e.measurement);
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
        out.flush();
        if (!out) {
            rest_warn("short write to checkpoint file ", tmp);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        rest_warn("cannot rename checkpoint ", tmp, " to ", path);
        return false;
    }
    return true;
}

std::string
checkpointJobKey(const SweepJob &job)
{
    std::string label = job.label;
    if (label.empty())
        label = job.useCustomConfig ? "custom"
                                    : expConfigName(job.config);
    std::string key = job.profile.name + "|" + label + "|" +
                      std::to_string(job.profile.seed) + "|" +
                      std::to_string(job.profile.targetKiloInsts);
    // Non-detailed execution changes what the measurement means, so it
    // must not restore into (or from) a detailed sweep's entries.
    // Detailed jobs keep the historical key byte-for-byte.
    if (!job.exec.detailed()) {
        key += std::string("|") + job.exec.modeName();
        if (job.exec.sampling.active()) {
            const SamplingConfig &sc = job.exec.sampling;
            key += "|" + std::to_string(sc.warmupOps) + "/" +
                   std::to_string(sc.windowOps) + "/" +
                   std::to_string(sc.intervalOps);
        }
    }
    return key;
}

} // namespace rest::sim
