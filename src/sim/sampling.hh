/**
 * @file
 * Execution-mode configuration and the sampling estimator.
 *
 * Three execution modes (DESIGN.md §11):
 *   - detailed: the timing CPU consumes every op (the default; the
 *     only mode whose cycle counts are directly quotable),
 *   - fast-functional: ops are retired with no pipeline bookkeeping;
 *     detection verdicts are byte-identical, cycles are nominal,
 *   - sampled: SMARTS-style interleaving of detailed O3 windows with
 *     functional fast-forward; total cycles are extrapolated from the
 *     window CPI samples and reported with an error estimate.
 *
 * SamplingConfig with intervalOps == 0 is *inactive*: the run takes
 * exactly the always-detailed code path and its output is
 * byte-identical to a default run (tests/sim/sampling_test.cc pins
 * this down).
 */

#ifndef REST_SIM_SAMPLING_HH
#define REST_SIM_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rest::sim
{

/** Periodic-sampling parameters (ops, not cycles). */
struct SamplingConfig
{
    /** Detailed ops run before each window to warm µarch state;
     *  their cycles are discarded. */
    std::uint64_t warmupOps = 2000;
    /** Detailed ops whose CPI is measured per period. */
    std::uint64_t windowOps = 10000;
    /** Period length; ops beyond warmup+window fast-forward
     *  functionally. 0 disables sampling entirely. */
    std::uint64_t intervalOps = 0;

    bool active() const { return intervalOps != 0; }

    /** An active config must fit warmup+window inside the period. */
    bool
    valid() const
    {
        return !active() ||
               (windowOps > 0 && warmupOps + windowOps <= intervalOps);
    }
};

/** How System::run() executes the op stream. */
struct ExecutionConfig
{
    /** Retire every op functionally; no timing model at all. */
    bool fastFunctional = false;
    /** Interleave detailed windows with fast-forward (O3 only). */
    SamplingConfig sampling;

    bool detailed() const { return !fastFunctional && !sampling.active(); }

    const char *
    modeName() const
    {
        if (fastFunctional)
            return "fast-functional";
        return sampling.active() ? "sampled" : "detailed";
    }
};

/** One detailed window's CPI sample. */
struct WindowSample
{
    std::uint64_t ops = 0;
    Cycles cycles = 0;
};

/** What a sampled run reports alongside the extrapolated cycles. */
struct SamplingEstimate
{
    std::uint64_t windows = 0;          ///< CPI samples taken
    std::uint64_t detailedOps = 0;      ///< warmup + window ops
    std::uint64_t fastForwardedOps = 0; ///< functionally skipped ops
    Cycles detailedCycles = 0;          ///< all detailed segments
    double windowCpi = 0;               ///< ops-weighted mean CPI
    /** Standard error of the per-window CPI samples as a percentage
     *  of the mean (0 with fewer than two windows). */
    double cpiStdErrPct = 0;
    Cycles extrapolatedCycles = 0;
};

/**
 * Combine window CPI samples into a whole-run cycle estimate:
 * extrapolated = detailed cycles + skipped ops x mean window CPI.
 * Pure function of its inputs (unit-tested directly).
 */
SamplingEstimate estimateCycles(const std::vector<WindowSample> &windows,
                                std::uint64_t detailed_ops,
                                Cycles detailed_cycles,
                                std::uint64_t fast_forwarded_ops);

} // namespace rest::sim

#endif // REST_SIM_SAMPLING_HH
