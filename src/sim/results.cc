#include "sim/results.hh"

#include <fstream>

#include "util/json_writer.hh"
#include "util/logging.hh"

namespace rest::sim
{

namespace
{

void
writeStringArray(util::JsonWriter &w, const char *key,
                 const std::vector<std::string> &items)
{
    w.key(key);
    w.beginArray();
    for (const auto &s : items)
        w.value(s);
    w.endArray();
}

void
writeDoubleMap(util::JsonWriter &w, const char *key,
               const std::map<std::string, double> &m)
{
    w.key(key);
    w.beginObject();
    for (const auto &[name, v] : m)
        w.field(name, v);
    w.endObject();
}

void
writeCell(util::JsonWriter &w, const SweepCell &cell)
{
    w.beginObject();
    w.field("bench", cell.bench);
    w.field("column", cell.column);
    if (!cell.ok) {
        // Failed cell: the error record replaces the measurement
        // fields so downstream tooling cannot mistake a failure for
        // a zero-cycle run.
        w.field("error", cell.error);
        w.field("attempts", std::uint64_t(cell.attempts));
        w.endObject();
        return;
    }
    if (cell.attempts != 0 &&
        cell.attempts != unsigned(cell.seedCycles.size()))
        w.field("attempts", std::uint64_t(cell.attempts));
    w.field("cycles", std::uint64_t(cell.cycles));
    w.field("ops", cell.ops);
    if (cell.execMode != "detailed") {
        w.field("exec_mode", cell.execMode);
        if (cell.execMode == "sampled")
            w.field("sampling_error_pct", cell.samplingErrorPct);
    }
    w.key("seed_cycles");
    w.beginArray();
    for (Cycles c : cell.seedCycles)
        w.value(std::uint64_t(c));
    w.endArray();
    w.key("scalars");
    w.beginObject();
    for (const auto &[name, v] : cell.scalars)
        w.field(name, v);
    w.endObject();
    if (!cell.statSeries.empty()) {
        w.key("stat_series");
        w.beginArray();
        for (const auto &snap : cell.statSeries) {
            w.beginObject();
            w.field("cycle", std::uint64_t(snap.cycle));
            w.key("deltas");
            w.beginObject();
            for (const auto &[name, v] : snap.deltas)
                w.field(name, v);
            w.endObject();
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

void
writeSweep(util::JsonWriter &w, const SweepResults &sweep)
{
    w.beginObject();
    w.field("name", sweep.name);
    writeStringArray(w, "columns", sweep.columns);
    writeStringArray(w, "rows", sweep.rows);
    w.key("cells");
    w.beginArray();
    for (const auto &cell : sweep.cells)
        writeCell(w, cell);
    w.endArray();
    if (!sweep.baselineCycles.empty()) {
        w.key("baseline_cycles");
        w.beginObject();
        for (const auto &[bench, cycles] : sweep.baselineCycles)
            w.field(bench, std::uint64_t(cycles));
        w.endObject();
    }
    if (!sweep.wtdAriMeanPct.empty())
        writeDoubleMap(w, "wtd_ari_mean_pct", sweep.wtdAriMeanPct);
    if (!sweep.geoMeanPct.empty())
        writeDoubleMap(w, "geo_mean_pct", sweep.geoMeanPct);
    w.endObject();
}

} // namespace

void
writeJson(const ResultsFile &results, std::ostream &os)
{
    util::JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", std::uint64_t(1));
    w.field("figure", results.figure);
    w.field("kiloinsts", results.kiloInsts);
    w.field("seeds_per_cell", results.seedsPerCell);
    w.field("jobs", results.jobs);
    if (results.perf.valid()) {
        w.key("perf");
        w.beginObject();
        w.field("bench", results.perf.bench);
        w.field("kiloinsts", results.perf.kiloInsts);
        w.field("kips_detailed", results.perf.kipsDetailed);
        w.field("kips_fast_functional",
                results.perf.kipsFastFunctional);
        w.field("kips_sampled", results.perf.kipsSampled);
        w.field("speedup_fast_functional",
                results.perf.speedupFastFunctional);
        w.field("speedup_sampled", results.perf.speedupSampled);
        w.endObject();
    }
    w.key("sweeps");
    w.beginArray();
    for (const auto &sweep : results.sweeps)
        writeSweep(w, sweep);
    w.endArray();
    w.endObject();
    os << "\n";
}

bool
writeJsonFile(const ResultsFile &results, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        rest_warn("cannot open results file ", path,
                  "; skipping JSON output");
        return false;
    }
    writeJson(results, out);
    out.flush();
    if (!out) {
        rest_warn("short write to results file ", path);
        return false;
    }
    return true;
}

} // namespace rest::sim
