#include "sim/sweep_status.hh"

#include <sstream>

#include "util/json_writer.hh"
#include "util/metrics.hh"

namespace rest::sim
{

namespace
{

/** Job-state wire name for /status (jobs never show sweep-begin). */
const char *
jobStateName(SweepEventKind state)
{
    return sweepEventName(state);
}

double
elapsedMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SweepStatusTracker::SweepStatusTracker(
    telemetry::MetricRegistry *registry)
    : registry_(registry)
{
    if (!registry_)
        return;
    // Register the families up front so /metrics is stable from the
    // first scrape, not dependent on which events happened yet.
    wallMsHist_ = &registry_->histogram(
        "rest_sweep_job_wall_ms",
        "Wall-clock time of terminal job attempts (ms)",
        {1, 10, 100, 1000, 10000, 100000});
    runningGauge_ = &registry_->gauge(
        "rest_sweep_jobs_running", "Jobs currently executing");
    progressGauge_ = &registry_->gauge(
        "rest_sweep_progress_ratio",
        "Completed fraction of the current sweep");
    totalJobsGauge_ = &registry_->gauge(
        "rest_sweep_total_jobs", "Jobs in the current sweep");
    for (auto kind : {SweepEventKind::SweepBegin,
                      SweepEventKind::Queued, SweepEventKind::Running,
                      SweepEventKind::Retrying, SweepEventKind::Done,
                      SweepEventKind::Failed})
        registry_->counter("rest_sweep_events_total",
                           "Sweep lifecycle events by kind",
                           {{"event", sweepEventName(kind)}});
    registry_->counter("rest_sweep_jobs_completed_total",
                       "Terminal job outcomes", {{"result", "done"}});
    registry_->counter("rest_sweep_jobs_completed_total",
                       "Terminal job outcomes",
                       {{"result", "failed"}});
    registry_->counter("rest_sweep_job_retries_total",
                       "Transient job failures that were retried");
    registry_->counter("rest_sweep_jobs_restored_total",
                       "Jobs restored from a checkpoint");
    registry_->counter("rest_sweep_sweeps_total", "Sweeps started");
}

void
SweepStatusTracker::onEvent(const SweepEvent &event)
{
    {
        std::lock_guard lock(mutex_);
        switch (event.kind) {
          case SweepEventKind::SweepBegin:
            sweep_ = event.sweep;
            threads_ = event.threads;
            restored_ = 0;
            ++sweepsStarted_;
            jobs_.assign(event.totalJobs, JobStatus{});
            sweepStart_ = std::chrono::steady_clock::now();
            break;
          case SweepEventKind::Queued:
          case SweepEventKind::Running:
          case SweepEventKind::Retrying:
          case SweepEventKind::Done:
          case SweepEventKind::Failed: {
            if (event.job >= jobs_.size())
                jobs_.resize(event.job + 1);
            JobStatus &j = jobs_[event.job];
            j.state = event.kind;
            if (!event.bench.empty())
                j.bench = event.bench;
            if (!event.label.empty())
                j.label = event.label;
            if (event.attempt)
                j.attempts = event.attempt;
            if (event.kind == SweepEventKind::Done ||
                event.kind == SweepEventKind::Failed) {
                j.wallMs = event.wallMs;
                j.ops = event.ops;
                j.fromCheckpoint = event.fromCheckpoint;
                j.timedOut = event.timedOut;
                j.error = event.error;
                if (event.fromCheckpoint)
                    ++restored_;
            }
            break;
          }
        }
    }
    if (registry_)
        publishMetrics(event);
}

void
SweepStatusTracker::publishMetrics(const SweepEvent &event)
{
    registry_
        ->counter("rest_sweep_events_total",
                  "Sweep lifecycle events by kind",
                  {{"event", sweepEventName(event.kind)}})
        .inc();
    switch (event.kind) {
      case SweepEventKind::SweepBegin:
        registry_->counter("rest_sweep_sweeps_total", "Sweeps started")
            .inc();
        break;
      case SweepEventKind::Retrying:
        registry_
            ->counter("rest_sweep_job_retries_total",
                      "Transient job failures that were retried")
            .inc();
        break;
      case SweepEventKind::Done:
      case SweepEventKind::Failed:
        registry_
            ->counter("rest_sweep_jobs_completed_total",
                      "Terminal job outcomes",
                      {{"result", event.kind == SweepEventKind::Done
                                      ? "done"
                                      : "failed"}})
            .inc();
        if (event.fromCheckpoint)
            registry_
                ->counter("rest_sweep_jobs_restored_total",
                          "Jobs restored from a checkpoint")
                .inc();
        else
            wallMsHist_->observe(std::uint64_t(event.wallMs));
        break;
      case SweepEventKind::Queued:
      case SweepEventKind::Running:
        break;
    }

    std::lock_guard lock(mutex_);
    std::size_t running = 0, terminal = 0;
    for (const auto &j : jobs_) {
        if (j.state == SweepEventKind::Running ||
            j.state == SweepEventKind::Retrying)
            ++running;
        if (j.state == SweepEventKind::Done ||
            j.state == SweepEventKind::Failed)
            ++terminal;
    }
    runningGauge_->set(double(running));
    totalJobsGauge_->set(double(jobs_.size()));
    progressGauge_->set(
        jobs_.empty() ? 0.0 : double(terminal) / double(jobs_.size()));
}

std::size_t
SweepStatusTracker::completedJobs() const
{
    std::lock_guard lock(mutex_);
    std::size_t n = 0;
    for (const auto &j : jobs_)
        if (j.state == SweepEventKind::Done ||
            j.state == SweepEventKind::Failed)
            ++n;
    return n;
}

std::string
SweepStatusTracker::statusJson() const
{
    std::lock_guard lock(mutex_);

    std::size_t counts[5] = {0, 0, 0, 0, 0}; // q, run, retry, done, fail
    double completedWallMs = 0.0, completedOps = 0.0;
    std::size_t completedTimed = 0;
    for (const auto &j : jobs_) {
        switch (j.state) {
          case SweepEventKind::Queued: ++counts[0]; break;
          case SweepEventKind::Running: ++counts[1]; break;
          case SweepEventKind::Retrying: ++counts[2]; break;
          case SweepEventKind::Done: ++counts[3]; break;
          case SweepEventKind::Failed: ++counts[4]; break;
          case SweepEventKind::SweepBegin: break; // not a job state
        }
        if ((j.state == SweepEventKind::Done ||
             j.state == SweepEventKind::Failed) &&
            !j.fromCheckpoint && j.wallMs > 0) {
            ++completedTimed;
            completedWallMs += j.wallMs;
            completedOps += double(j.ops);
        }
    }
    const std::size_t terminal = counts[3] + counts[4];
    const std::size_t remaining = jobs_.size() - terminal;

    std::ostringstream os;
    util::JsonWriter w(os);
    w.beginObject();
    w.field("schema_version", std::uint64_t(1));
    w.field("sweep", sweep_);
    w.field("sweeps_started", sweepsStarted_);
    w.field("total_jobs", std::uint64_t(jobs_.size()));
    w.field("threads", threads_);
    w.field("elapsed_ms",
            sweepsStarted_ ? elapsedMsSince(sweepStart_) : 0.0);
    w.field("progress", jobs_.empty()
                            ? 0.0
                            : double(terminal) / double(jobs_.size()));
    // ETA: mean wall time of the jobs measured this process, scaled by
    // what is left and divided across the workers. Null until the
    // first job completes (no basis for extrapolation yet).
    w.key("eta_ms");
    if (completedTimed == 0)
        w.nullValue();
    else
        w.value(completedWallMs / double(completedTimed) *
                double(remaining) /
                double(threads_ ? threads_ : 1));
    // Live simulated throughput over everything measured so far:
    // ops / wall-ms == kilo-ops per second.
    w.key("kips_live");
    if (completedWallMs <= 0)
        w.nullValue();
    else
        w.value(completedOps / completedWallMs);
    w.key("checkpoint");
    w.beginObject();
    w.field("restored", restored_);
    w.endObject();
    w.key("state_counts");
    w.beginObject();
    w.field("queued", std::uint64_t(counts[0]));
    w.field("running", std::uint64_t(counts[1]));
    w.field("retrying", std::uint64_t(counts[2]));
    w.field("done", std::uint64_t(counts[3]));
    w.field("failed", std::uint64_t(counts[4]));
    w.endObject();
    w.key("jobs");
    w.beginArray();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobStatus &j = jobs_[i];
        w.beginObject();
        w.field("index", std::uint64_t(i));
        w.field("bench", j.bench);
        w.field("label", j.label);
        w.field("state", jobStateName(j.state));
        w.field("attempts", j.attempts);
        w.field("wall_ms", j.wallMs);
        w.field("ops", j.ops);
        w.key("kips");
        if (j.state == SweepEventKind::Done && j.wallMs > 0)
            w.value(double(j.ops) / j.wallMs);
        else
            w.nullValue();
        w.field("from_checkpoint", j.fromCheckpoint);
        w.field("timed_out", j.timedOut);
        w.field("error", j.error);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    return os.str();
}

} // namespace rest::sim
