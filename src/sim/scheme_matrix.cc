#include "sim/scheme_matrix.hh"

#include "sim/multicore.hh"
#include "sim/system.hh"
#include "workload/attack_scenarios.hh"
#include "workload/server_mix.hh"

namespace rest::sim
{

namespace
{

/** Scenario parameters shared by every scheme. */
constexpr std::uint32_t smallBuf = 64;
constexpr std::uint32_t uafBuf = 96;
constexpr std::uint32_t recycleChurn = 80;
/**
 * Zero-budget quarantine: every free drains immediately, so the
 * churn loop recycles the exact stale chunk deterministically (a
 * larger budget leaves the verdict hostage to pool-rotation order —
 * the stale chunk may still sit poisoned in quarantine at load time).
 */
constexpr std::size_t recycleQuarantine = 0;

/** Run one attack program under 'scheme'; did it fault? */
bool
faults(isa::Program program, const runtime::SchemeConfig &scheme,
       std::uint64_t token_seed)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.tokenSeed = token_seed;
    // Detection is architectural (the emulator), so the functional
    // path gives the same verdicts as a detailed run, faster.
    cfg.exec.fastFunctional = true;
    System s(std::move(program), cfg);
    return s.run().faulted();
}

} // namespace

const std::vector<ScenarioInfo> &
attackScenarios()
{
    static const std::vector<ScenarioInfo> table = {
        {"linear_overflow", &SchemeVerdicts::linearOverflow,
         &runtime::DetectionProfile::linearOverflow},
        {"jump_over_redzone", &SchemeVerdicts::jumpOverRedzone,
         &runtime::DetectionProfile::jumpOverRedzone},
        {"pointer_diff_jump", &SchemeVerdicts::pointerDiffJump,
         &runtime::DetectionProfile::pointerDiffJump},
        {"pointer_corruption", &SchemeVerdicts::pointerCorruption,
         &runtime::DetectionProfile::pointerCorruption},
        {"uaf_quarantined", &SchemeVerdicts::uafQuarantined,
         &runtime::DetectionProfile::uafQuarantined},
        {"uaf_recycled", &SchemeVerdicts::uafRecycled,
         &runtime::DetectionProfile::uafRecycled},
        {"double_free", &SchemeVerdicts::doubleFree,
         &runtime::DetectionProfile::doubleFree},
        {"stack_overflow", &SchemeVerdicts::stackOverflow,
         &runtime::DetectionProfile::stackOverflow},
        {"uninstrumented_library",
         &SchemeVerdicts::uninstrumentedLibrary,
         &runtime::DetectionProfile::uninstrumentedLibrary},
    };
    return table;
}

SchemeVerdicts
measureScheme(const runtime::SchemeConfig &scheme,
              std::uint64_t token_seed)
{
    namespace attacks = workload::attacks;
    SchemeVerdicts v;
    v.scheme = runtime::schemeForConfig(scheme).id();

    v.linearOverflow =
        faults(attacks::heapOverflowWrite(smallBuf, 32), scheme,
               token_seed);
    v.jumpOverRedzone =
        faults(attacks::heapJumpOverRedzone(smallBuf, 4096, 2048),
               scheme, token_seed);
    v.pointerDiffJump =
        faults(attacks::pointerDiffJump(smallBuf, smallBuf), scheme,
               token_seed);
    v.pointerCorruption =
        faults(attacks::rawPointerLoad(smallBuf), scheme, token_seed);
    v.uafQuarantined =
        faults(attacks::useAfterFree(uafBuf), scheme, token_seed);
    {
        // Recycle probe: shrink any quarantine so the churn loop
        // drains it and the chunk is genuinely reused.
        runtime::SchemeConfig recycled = scheme;
        recycled.quarantineBudget = recycleQuarantine;
        v.uafRecycled =
            faults(attacks::useAfterRecycle(uafBuf, recycleChurn),
                   recycled, token_seed);
    }
    v.doubleFree =
        faults(attacks::doubleFree(smallBuf), scheme, token_seed);
    v.stackOverflow =
        faults(attacks::stackOverflowWrite(smallBuf, 24), scheme,
               token_seed);
    v.uninstrumentedLibrary =
        faults(attacks::heartbleed(smallBuf, 256), scheme, token_seed);
    return v;
}

bool
matchesProfile(const SchemeVerdicts &v,
               const runtime::DetectionProfile &p)
{
    for (const ScenarioInfo &s : attackScenarios())
        if (!verdictMatches(p.*(s.declared), v.*(s.measured)))
            return false;
    return true;
}

namespace
{

/** Run one two-core attack pair on the multicore machine. */
bool
faultsMulticore(std::vector<isa::Program> pair, unsigned cores,
                const runtime::SchemeConfig &scheme, bool detailed,
                std::uint64_t token_seed)
{
    MultiCoreConfig cfg;
    cfg.cores = cores < 2 ? 2 : cores;
    cfg.base.scheme = scheme;
    cfg.base.tokenSeed = token_seed;
    cfg.base.exec.fastFunctional = !detailed;

    std::vector<isa::Program> progs = std::move(pair);
    if (cfg.cores > 2) {
        // Pad with benign hand-off-free handlers so the verdict is
        // measured under genuine multi-core cache contention.
        workload::ServerMixConfig filler;
        filler.cores = cfg.cores;
        filler.requestsPerCore = 8;
        filler.handoffEvery = 0;
        std::vector<isa::Program> handlers =
            workload::serverMix(filler);
        for (unsigned i = 2; i < cfg.cores; ++i)
            progs.push_back(std::move(handlers[i]));
    }

    MultiCoreSystem sys(std::move(progs), cfg);
    return sys.run().faulted();
}

} // namespace

const std::vector<ConcurrencyScenarioInfo> &
concurrencyScenarios()
{
    static const std::vector<ConcurrencyScenarioInfo> table = {
        {"cross_thread_uaf", &ConcurrencyVerdicts::crossThreadUaf,
         &runtime::DetectionProfile::crossThreadUaf},
        {"racy_double_free", &ConcurrencyVerdicts::racyDoubleFree,
         &runtime::DetectionProfile::racyDoubleFree},
        {"handoff_overflow", &ConcurrencyVerdicts::handoffOverflow,
         &runtime::DetectionProfile::handoffOverflow},
    };
    return table;
}

ConcurrencyVerdicts
measureSchemeMulticore(const runtime::SchemeConfig &scheme,
                       unsigned cores, bool detailed,
                       std::uint64_t token_seed)
{
    namespace attacks = workload::attacks;
    ConcurrencyVerdicts v;
    v.scheme = runtime::schemeForConfig(scheme).id();
    v.crossThreadUaf =
        faultsMulticore(attacks::crossThreadUseAfterFree(uafBuf),
                        cores, scheme, detailed, token_seed);
    v.racyDoubleFree =
        faultsMulticore(attacks::racyDoubleFree(uafBuf), cores,
                        scheme, detailed, token_seed);
    v.handoffOverflow =
        faultsMulticore(attacks::handoffThenOverflow(smallBuf, 32),
                        cores, scheme, detailed, token_seed);
    return v;
}

bool
matchesConcurrencyProfile(const ConcurrencyVerdicts &v,
                          const runtime::DetectionProfile &p)
{
    for (const ConcurrencyScenarioInfo &s : concurrencyScenarios())
        if (!verdictMatches(p.*(s.declared), v.*(s.measured)))
            return false;
    return true;
}

SeedSweepResult
sweepUafRecycled(const runtime::SchemeConfig &scheme,
                 std::uint64_t first_seed, unsigned num_seeds)
{
    runtime::SchemeConfig recycled = scheme;
    recycled.quarantineBudget = recycleQuarantine;

    SeedSweepResult res;
    for (unsigned i = 0; i < num_seeds; ++i) {
        const std::uint64_t seed = first_seed + i;
        const bool caught =
            faults(workload::attacks::useAfterRecycle(uafBuf,
                                                      recycleChurn),
                   recycled, seed);
        if (caught) {
            ++res.caught;
            if (res.firstCaughtSeed == ~std::uint64_t(0))
                res.firstCaughtSeed = seed;
        } else {
            ++res.missed;
            if (res.firstMissedSeed == ~std::uint64_t(0))
                res.firstMissedSeed = seed;
        }
    }
    return res;
}

std::string
spatialClassOf(const SchemeVerdicts &v)
{
    if (v.linearOverflow)
        return v.jumpOverRedzone ? "Granular" : "Linear";
    return v.pointerCorruption ? "Targeted" : "None";
}

std::string
temporalClassOf(const SchemeVerdicts &v)
{
    if (v.uafQuarantined && v.uafRecycled)
        return "Complete";
    return v.uafQuarantined ? "Until realloc" : "None";
}

RestRowText
formatRestRow(const RestRowFacts &facts, const std::string &probe_error)
{
    if (!probe_error.empty()) {
        // The probe produced no measurements: every column says so.
        // (Printing default-constructed facts here once mislabelled
        // shadow/composable as measured values.)
        return {"BROKEN", "BROKEN", "BROKEN", "BROKEN"};
    }
    return {facts.spatialLinear ? "Linear" : "UNEXPECTED",
            facts.temporalUntilRealloc ? "Until realloc" : "UNEXPECTED",
            facts.usesShadowSpace ? "yes" : "no",
            facts.composable ? "yes" : "no"};
}

} // namespace rest::sim
