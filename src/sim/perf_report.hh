/**
 * @file
 * Perf-trajectory regression reports (DESIGN.md §12).
 *
 * PR 6 committed a reference BENCH_fig7.json whose "perf" block
 * records simulator throughput (KIPS) per execution mode. This module
 * turns that trajectory into a guarded artifact: load the committed
 * baseline, compare a fresh probe (or another results file) against
 * it, and emit a per-mode verdict table — pct delta against a
 * configurable regression threshold, plus a floor check on the
 * fast-functional speedup (the ≥10× claim CI asserts).
 *
 * The bench/perf_report tool is the CLI; the library is separated so
 * tests can exercise the verdict logic on synthetic records.
 */

#ifndef REST_SIM_PERF_REPORT_HH
#define REST_SIM_PERF_REPORT_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/results.hh"

namespace rest::sim
{

/** A results file's identity plus its perf block. */
struct PerfBaseline
{
    std::string path;
    std::string figure;
    std::uint64_t kiloInsts = 0;
    PerfRecord perf;
};

/**
 * Load the "perf" block out of a BENCH_*.json results file. nullopt —
 * with a warning — when the file is missing/malformed or has no valid
 * perf block (harness ran without --perf).
 */
std::optional<PerfBaseline>
loadPerfBaseline(const std::string &path);

/** One mode's baseline-vs-current comparison. */
struct PerfDelta
{
    std::string mode; ///< "detailed", "fast-functional", "sampled"
    double baselineKips = 0.0;
    double currentKips = 0.0;
    /** (current - baseline) / baseline * 100; negative = slower. */
    double deltaPct = 0.0;
    /** deltaPct below -threshold. */
    bool regressed = false;
};

/** The full regression verdict. */
struct PerfReport
{
    double thresholdPct = 0.0;
    std::vector<PerfDelta> rows;

    /** The ≥N× fast-functional speedup floor verdict (checked on both
     *  sides so a stale baseline is caught too). */
    double speedupFloor = 0.0;
    double baselineSpeedupFast = 0.0;
    double currentSpeedupFast = 0.0;
    bool baselineFloorMet = true;
    bool currentFloorMet = true;

    bool
    anyRegression() const
    {
        for (const auto &row : rows)
            if (row.regressed)
                return true;
        return !baselineFloorMet || !currentFloorMet;
    }
};

/**
 * Compare `current` against `baseline`, mode by mode. Modes absent
 * from either side (zero KIPS) are skipped rather than reported as
 * regressions.
 * @param threshold_pct regression threshold: a mode whose KIPS fell by
 *        more than this percentage is flagged.
 * @param speedup_floor minimum fast-functional speedup both records
 *        must show (0 disables the floor check).
 */
PerfReport comparePerf(const PerfRecord &baseline,
                       const PerfRecord &current, double threshold_pct,
                       double speedup_floor);

/**
 * Baseline-only verdict (no fresh probe): checks the committed
 * trajectory's speedup floor, with an empty delta table.
 */
PerfReport checkBaseline(const PerfRecord &baseline,
                         double speedup_floor);

/** Print the verdict table (deterministic layout). */
void printPerfReport(const PerfReport &report, std::ostream &os);

} // namespace rest::sim

#endif // REST_SIM_PERF_REPORT_HH
