#include "sim/perf_report.hh"

#include <cmath>
#include <iomanip>

#include "util/json_reader.hh"
#include "util/logging.hh"

namespace rest::sim
{

std::optional<PerfBaseline>
loadPerfBaseline(const std::string &path)
{
    bool ok = false;
    util::JsonValue doc = util::readJsonFile(path, &ok);
    if (!ok) {
        rest_warn("perf baseline \"", path,
                  "\" is missing or malformed");
        return std::nullopt;
    }
    if (!doc.has("perf") ||
        doc.at("perf").kind != util::JsonValue::Object) {
        rest_warn("perf baseline \"", path, "\" has no \"perf\" block "
                  "(was the harness run with --perf?)");
        return std::nullopt;
    }
    const util::JsonValue &p = doc.at("perf");

    PerfBaseline base;
    base.path = path;
    base.figure = doc.at("figure").str;
    base.kiloInsts = doc.at("kiloinsts").u64();
    base.perf.bench = p.at("bench").str;
    base.perf.kiloInsts = p.at("kiloinsts").u64();
    base.perf.kipsDetailed = p.at("kips_detailed").number;
    base.perf.kipsFastFunctional = p.at("kips_fast_functional").number;
    base.perf.kipsSampled = p.at("kips_sampled").number;
    base.perf.speedupFastFunctional =
        p.at("speedup_fast_functional").number;
    base.perf.speedupSampled = p.at("speedup_sampled").number;
    if (!base.perf.valid()) {
        rest_warn("perf baseline \"", path,
                  "\" has a perf block with no detailed KIPS");
        return std::nullopt;
    }
    return base;
}

PerfReport
comparePerf(const PerfRecord &baseline, const PerfRecord &current,
            double threshold_pct, double speedup_floor)
{
    PerfReport report;
    report.thresholdPct = threshold_pct;
    report.speedupFloor = speedup_floor;

    const struct
    {
        const char *mode;
        double base, cur;
    } modes[] = {
        {"detailed", baseline.kipsDetailed, current.kipsDetailed},
        {"fast-functional", baseline.kipsFastFunctional,
         current.kipsFastFunctional},
        {"sampled", baseline.kipsSampled, current.kipsSampled},
    };
    for (const auto &m : modes) {
        if (m.base <= 0.0 || m.cur <= 0.0)
            continue; // mode not measured on one side: no verdict
        PerfDelta d;
        d.mode = m.mode;
        d.baselineKips = m.base;
        d.currentKips = m.cur;
        d.deltaPct = (m.cur - m.base) / m.base * 100.0;
        d.regressed = d.deltaPct < -threshold_pct;
        report.rows.push_back(std::move(d));
    }

    report.baselineSpeedupFast = baseline.speedupFastFunctional;
    report.currentSpeedupFast = current.speedupFastFunctional;
    if (speedup_floor > 0.0) {
        report.baselineFloorMet =
            baseline.speedupFastFunctional >= speedup_floor;
        report.currentFloorMet =
            current.speedupFastFunctional >= speedup_floor;
    }
    return report;
}

PerfReport
checkBaseline(const PerfRecord &baseline, double speedup_floor)
{
    PerfReport report;
    report.speedupFloor = speedup_floor;
    report.baselineSpeedupFast = baseline.speedupFastFunctional;
    report.currentSpeedupFast = baseline.speedupFastFunctional;
    if (speedup_floor > 0.0) {
        report.baselineFloorMet =
            baseline.speedupFastFunctional >= speedup_floor;
        report.currentFloorMet = report.baselineFloorMet;
    }
    return report;
}

void
printPerfReport(const PerfReport &report, std::ostream &os)
{
    const auto flags = os.flags();
    os << std::fixed;
    if (!report.rows.empty()) {
        os << std::left << std::setw(17) << "mode" << std::right
           << std::setw(15) << "baseline KIPS" << std::setw(15)
           << "current KIPS" << std::setw(10) << "delta %"
           << std::setw(10) << "verdict" << "\n"
           << std::string(67, '-') << "\n";
        for (const auto &row : report.rows) {
            os << std::left << std::setw(17) << row.mode << std::right
               << std::setw(15) << std::setprecision(1)
               << row.baselineKips << std::setw(15) << row.currentKips
               << std::setw(10) << std::setprecision(2) << row.deltaPct
               << std::setw(10)
               << (row.regressed ? "REGRESSED" : "ok") << "\n";
        }
        os << std::string(67, '-') << "\n";
        os << "regression threshold: -" << std::setprecision(1)
           << report.thresholdPct << "%\n";
    }
    if (report.speedupFloor > 0.0) {
        os << "fast-functional speedup: baseline "
           << std::setprecision(1) << report.baselineSpeedupFast
           << "x, current " << report.currentSpeedupFast << "x (floor "
           << report.speedupFloor << "x)  "
           << (report.baselineFloorMet && report.currentFloorMet
                   ? "ok"
                   : "BELOW FLOOR")
           << "\n";
    }
    os << "verdict: "
       << (report.anyRegression() ? "REGRESSION" : "ok") << "\n";
    os.flags(flags);
}

} // namespace rest::sim
