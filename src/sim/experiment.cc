#include "sim/experiment.hh"

#include <chrono>
#include <cmath>

#include "isa/opcode.hh"
#include "util/logging.hh"

namespace rest::sim
{

const char *
expConfigName(ExpConfig config)
{
    switch (config) {
      case ExpConfig::Plain: return "Plain";
      case ExpConfig::Asan: return "ASan";
      case ExpConfig::RestDebugFull: return "Debug Full";
      case ExpConfig::RestSecureFull: return "Secure Full";
      case ExpConfig::PerfectHwFull: return "PerfectHW Full";
      case ExpConfig::RestDebugHeap: return "Debug Heap";
      case ExpConfig::RestSecureHeap: return "Secure Heap";
      case ExpConfig::PerfectHwHeap: return "PerfectHW Heap";
      default: return "<bad>";
    }
}

SystemConfig
makeSystemConfig(ExpConfig config, core::TokenWidth width, bool inorder)
{
    SystemConfig cfg;
    cfg.tokenWidth = width;
    cfg.useInOrderCpu = inorder;
    using runtime::SchemeConfig;

    switch (config) {
      case ExpConfig::Plain:
        cfg.scheme = SchemeConfig::plain();
        break;
      case ExpConfig::Asan:
        cfg.scheme = SchemeConfig::asanFull();
        break;
      case ExpConfig::RestDebugFull:
        cfg.scheme = SchemeConfig::restFull();
        cfg.mode = core::RestMode::Debug;
        break;
      case ExpConfig::RestSecureFull:
        cfg.scheme = SchemeConfig::restFull();
        break;
      case ExpConfig::PerfectHwFull:
        cfg.scheme = SchemeConfig::restFull();
        cfg.scheme.perfectHw = true;
        break;
      case ExpConfig::RestDebugHeap:
        cfg.scheme = SchemeConfig::restHeap();
        cfg.mode = core::RestMode::Debug;
        break;
      case ExpConfig::RestSecureHeap:
        cfg.scheme = SchemeConfig::restHeap();
        break;
      case ExpConfig::PerfectHwHeap:
        cfg.scheme = SchemeConfig::restHeap();
        cfg.scheme.perfectHw = true;
        break;
    }
    return cfg;
}

namespace
{

/** Shared tail of runBench()/runCustom(): run, validate, snapshot. */
Measurement
runSystem(const workload::BenchProfile &profile, const SystemConfig &cfg,
          const std::string &label, ExpConfig config)
{
    System system(workload::generate(profile), cfg);
    const auto run_t0 = std::chrono::steady_clock::now();
    SystemResult result = system.run();
    const double run_wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - run_t0).count();
    rest_assert(!result.faulted(),
                "benign benchmark ", profile.name, " faulted under ",
                label, ": ", result.run.violation.toString());

    Measurement m;
    m.bench = profile.name;
    m.label = label;
    m.config = config;
    m.seed = profile.seed;
    m.cycles = result.cycles();
    m.ops = result.run.committedOps;
    m.execMode = cfg.exec.modeName();
    m.simWallSeconds = run_wall;
    if (result.sampled) {
        m.samplingErrorPct = result.sampling.cpiStdErrPct;
        m.sampleWindows = result.sampling.windows;
        m.fastForwardedOps = result.sampling.fastForwardedOps;
    }
    m.detail = result;
    auto snap = [&m](const std::string &name, std::uint64_t v) {
        m.scalars.emplace(name, v);
    };
    system.cpuStats().forEachScalar(snap);
    system.dcache().statGroup().forEachScalar(snap);
    system.l2cache().statGroup().forEachScalar(snap);
    const auto &instr = result.instrumentation;
    snap("instr.access_checks_inserted", instr.accessChecksInserted);
    snap("instr.access_checks_elided", instr.accessChecksElided);
    snap("instr.access_checks_hoisted", instr.accessChecksHoisted);
    snap("instr.access_checks_coalesced", instr.accessChecksCoalesced);
    snap("instr.access_check_ops_executed",
         result.run.opsBySource[
             static_cast<unsigned>(isa::OpSource::AccessCheck)]);
    snap("instr.arms_inserted", instr.armsInserted);
    snap("instr.disarms_inserted", instr.disarmsInserted);
    snap("instr.stack_poison_stores", instr.stackPoisonStores);
    snap("instr.pad_zero_stores", instr.padZeroStores);
    snap("instr.frame_bytes", instr.frameBytesTotal);
    if (cfg.trace.statsEvery != 0)
        m.statSeries = system.statSnapshots();
    return m;
}

} // namespace

Measurement
runBench(const workload::BenchProfile &profile, ExpConfig config,
         core::TokenWidth width, bool inorder,
         const ExecutionConfig &exec)
{
    SystemConfig cfg = makeSystemConfig(config, width, inorder);
    cfg.exec = exec;
    return runSystem(profile, cfg, expConfigName(config), config);
}

Measurement
runCustom(const workload::BenchProfile &profile, const SystemConfig &cfg,
          const std::string &label)
{
    return runSystem(profile, cfg, label, ExpConfig::Plain);
}

double
overheadPct(Cycles plain_cycles, Cycles scheme_cycles)
{
    rest_assert(plain_cycles > 0, "plain run has zero cycles");
    return 100.0 * (static_cast<double>(scheme_cycles) /
                        static_cast<double>(plain_cycles) - 1.0);
}

double
wtdAriMeanOverheadPct(const std::vector<Cycles> &plain,
                      const std::vector<Cycles> &scheme)
{
    rest_assert(plain.size() == scheme.size(),
                "mismatched overhead vectors");
    if (plain.empty())
        return 0.0;
    double sum_plain = 0, sum_scheme = 0;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        sum_plain += static_cast<double>(plain[i]);
        sum_scheme += static_cast<double>(scheme[i]);
    }
    rest_assert(sum_plain > 0, "plain runs have zero total cycles");
    return 100.0 * (sum_scheme / sum_plain - 1.0);
}

double
geoMeanOverheadPct(const std::vector<Cycles> &plain,
                   const std::vector<Cycles> &scheme)
{
    rest_assert(plain.size() == scheme.size(),
                "mismatched overhead vectors");
    if (plain.empty())
        return 0.0;
    double log_sum = 0;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        rest_assert(plain[i] > 0 && scheme[i] > 0,
                    "zero-cycle run in geometric mean");
        log_sum += std::log(static_cast<double>(scheme[i]) /
                            static_cast<double>(plain[i]));
    }
    return 100.0 * (std::exp(log_sum /
                             static_cast<double>(plain.size())) - 1.0);
}

} // namespace rest::sim
