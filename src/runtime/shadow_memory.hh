/**
 * @file
 * AddressSanitizer-style shadow memory (paper §II, Fig. 2).
 *
 * Every 8 bytes of application memory map to one shadow byte at
 * shadow(a) = (a >> 3) + shadowBase. Shadow encodings follow ASan:
 *   0          all 8 bytes addressable
 *   1..7       only the first k bytes addressable
 *   >= 0x80    poisoned (redzone / freed), by kind
 *
 * Methods both perform the functional shadow update on guest memory
 * and, when given an OpEmitter, emit the store instructions the real
 * runtime would execute to do it (one 8-byte store per 8 shadow
 * bytes).
 */

#ifndef REST_RUNTIME_SHADOW_MEMORY_HH
#define REST_RUNTIME_SHADOW_MEMORY_HH

#include <cstdint>

#include "mem/guest_memory.hh"
#include "runtime/op_emitter.hh"
#include "runtime/runtime_config.hh"

namespace rest::runtime
{

/** ASan shadow poison values. */
namespace shadow_poison
{
inline constexpr std::uint8_t heapLeftRz = 0xfa;
inline constexpr std::uint8_t heapRightRz = 0xfb;
inline constexpr std::uint8_t heapFreed = 0xfd;
inline constexpr std::uint8_t stackLeftRz = 0xf1;
inline constexpr std::uint8_t stackMidRz = 0xf2;
inline constexpr std::uint8_t stackRightRz = 0xf3;
} // namespace shadow_poison

/** The shadow map plus its maintenance-cost model. */
class ShadowMemory
{
  public:
    explicit ShadowMemory(mem::GuestMemory &memory) : memory_(memory) {}

    /** Shadow address of an application address. */
    static Addr shadowOf(Addr a) { return AddressMap::shadowOf(a); }

    /**
     * Poison [addr, addr+size) with 'value'. addr must be 8-aligned;
     * a partial tail granule is fully poisoned (conservative, like
     * ASan redzones which are 8-aligned by construction).
     */
    void
    poison(Addr addr, std::size_t size, std::uint8_t value,
           OpEmitter *emitter = nullptr)
    {
        writeShadowRange(addr, size, value, emitter);
    }

    /**
     * Unpoison [addr, addr+size): zero shadow for whole granules and
     * write the partial-byte count for a trailing partial granule.
     */
    void
    unpoison(Addr addr, std::size_t size, OpEmitter *emitter = nullptr)
    {
        std::size_t whole = size & ~std::size_t(7);
        writeShadowRange(addr, whole, 0, emitter);
        if (size % 8) {
            memory_.writeByte(shadowOf(addr + whole),
                              static_cast<std::uint8_t>(size % 8));
            if (emitter)
                emitter->store(shadowOf(addr + whole), 1);
        }
    }

    /**
     * Would an access of 'size' bytes at 'addr' pass ASan's check?
     * Mirrors the instrumented fast/slow path.
     */
    bool
    accessOk(Addr addr, unsigned size) const
    {
        Addr last = addr + size - 1;
        for (Addr a = addr; ; a = (a | 7) + 1) {
            std::uint8_t s = memory_.readByte(shadowOf(a));
            if (s != 0) {
                if (s >= 0x80)
                    return false;
                // Partially addressable granule: the highest touched
                // byte inside this granule must be below s.
                Addr granule_end = std::min<Addr>(last, a | 7);
                if ((granule_end & 7) >= s)
                    return false;
            }
            if ((a | 7) >= last)
                break;
        }
        return true;
    }

    /** Raw shadow byte for an application address (test support). */
    std::uint8_t
    shadowByte(Addr addr) const
    {
        return memory_.readByte(shadowOf(addr));
    }

  private:
    void
    writeShadowRange(Addr addr, std::size_t size, std::uint8_t value,
                     OpEmitter *emitter)
    {
        if (size == 0)
            return;
        Addr s_begin = shadowOf(addr);
        Addr s_end = shadowOf(addr + size + 7);
        memory_.fill(s_begin, value, s_end - s_begin);
        if (emitter) {
            if (s_end - s_begin >= 128) {
                // Large ranges are written with the runtime's
                // vectorized memset: model one wide store per 64
                // shadow bytes (512 application bytes).
                for (Addr a = s_begin; a < s_end; a += 64)
                    emitter->store(a, 8);
            } else {
                // One 8-byte shadow store covers 64 application bytes.
                for (Addr a = s_begin; a < s_end; a += 8)
                    emitter->store(a, 8);
            }
        }
    }

    mem::GuestMemory &memory_;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_SHADOW_MEMORY_HH
