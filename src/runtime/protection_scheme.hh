/**
 * @file
 * ProtectionScheme: a first-class memory-safety backend.
 *
 * Historically a scheme was a bag of flags on SchemeConfig plus a
 * switch in sim::System picking the allocator. Each backend is now
 * one object that supplies everything the rest of the stack needs:
 *   - baseConfig(): the SchemeConfig flag preset it runs under,
 *   - instantiate(): its allocator model plus (for pointer-tagging
 *     schemes) the AccessPolicy hardware check predicate,
 *   - instrument(): its compile-time instrumentation pass,
 *   - declaredProfile(): the detection verdicts it claims, scenario
 *     by scenario — the conformance suite and the measured Table III
 *     harness hold every backend to this declaration,
 *   - hardwareCost(): the metadata/logic cost descriptor.
 *
 * Backends are registered by name ("plain", "asan", "rest", "mte",
 * "pauth"); parseSchemeSpec() composes the registry with the
 * +elide/+hoist/+coalesce instrumentation suffixes used across the
 * bench harnesses.
 */

#ifndef REST_RUNTIME_PROTECTION_SCHEME_HH
#define REST_RUNTIME_PROTECTION_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "core/rest_engine.hh"
#include "mem/guest_memory.hh"
#include "runtime/access_policy.hh"
#include "runtime/allocator.hh"
#include "runtime/instrumentation.hh"
#include "runtime/runtime_config.hh"

namespace rest::runtime
{

/** Expected verdict for one attack scenario. */
enum class Expect : std::uint8_t
{
    Caught,        ///< the scheme must detect this scenario
    Missed,        ///< the scheme must not detect it (documented gap)
    SeedDependent, ///< detection is probabilistic (e.g. 4-bit tags)
};

const char *expectName(Expect e);

/**
 * Declared detection verdicts over the shared attack-scenario matrix
 * (sim/scheme_matrix.hh runs the scenarios and checks conformance).
 */
struct DetectionProfile
{
    Expect linearOverflow = Expect::Missed;
    Expect jumpOverRedzone = Expect::Missed;
    Expect pointerDiffJump = Expect::Missed;
    Expect pointerCorruption = Expect::Missed;
    Expect uafQuarantined = Expect::Missed;
    Expect uafRecycled = Expect::Missed;
    Expect doubleFree = Expect::Missed;
    Expect stackOverflow = Expect::Missed;
    Expect uninstrumentedLibrary = Expect::Missed;

    // Concurrency scenarios, measured on the multicore machine
    // (sim/multicore.hh): the access that should trap happens on a
    // different core — and through a different private L1 — than the
    // allocation/free that armed the trap.
    Expect crossThreadUaf = Expect::Missed;
    Expect racyDoubleFree = Expect::Missed;
    Expect handoffOverflow = Expect::Missed;
};

/** Hardware cost descriptor (the Table III "HW cost" column). */
struct HardwareCost
{
    std::string summary;             ///< human-readable description
    double metadataBitsPerDataByte = 0.0;
    std::string overheadClass;       ///< Table III bucket
    /** Metadata lives in the program's address space (ASan's shadow),
     *  as opposed to cache tags, out-of-band tag storage, or pointer
     *  bits — the Table III "Shadow" column. */
    bool usesShadowSpace = false;
};

/** Everything a backend needs to build its runtime components. */
struct SchemeContext
{
    mem::GuestMemory &memory;
    core::RestEngine &engine;
    const SchemeConfig &scheme;
    std::uint64_t seed;
};

/** The per-run components a backend instantiates. */
struct SchemeParts
{
    std::unique_ptr<Allocator> allocator;
    /**
     * Per-access check predicate, or null for schemes whose detection
     * the emulator already evaluates inline (REST tokens, ASan
     * shadow). Non-owning: points into the allocator object.
     */
    const AccessPolicy *policy = nullptr;
};

/** One registered memory-safety backend. */
class ProtectionScheme
{
  public:
    virtual ~ProtectionScheme() = default;

    /** Registry name ("plain", "asan", "rest", "mte", "pauth"). */
    virtual const char *id() const = 0;
    virtual const char *description() const = 0;

    /** The SchemeConfig preset this backend runs under. */
    virtual SchemeConfig baseConfig() const = 0;

    /** Build the allocator (+ optional access policy) for one run. */
    virtual SchemeParts instantiate(const SchemeContext &ctx) const = 0;

    virtual DetectionProfile declaredProfile() const = 0;
    virtual HardwareCost hardwareCost() const = 0;

    /**
     * Compile-time instrumentation for this backend. The default is
     * the shared applyScheme() pass driven by the SchemeConfig flags;
     * pure allocator/hardware schemes (rest, mte, pauth) leave the
     * program untouched through it.
     */
    virtual InstrumentationSummary
    instrument(isa::Program &program, const SchemeConfig &scheme,
               unsigned token_granule) const
    {
        return applyScheme(program, scheme, token_granule);
    }
};

/** All registered backends, in canonical display order. */
const std::vector<const ProtectionScheme *> &allSchemes();

/** Lookup by registry id; nullptr when unknown. */
const ProtectionScheme *findScheme(const std::string &id);

/** The backend responsible for a config's allocator kind. */
const ProtectionScheme &schemeForConfig(const SchemeConfig &cfg);

/**
 * Parse a scheme spec "<id>[+elide][+hoist][+coalesce]" (plus the
 * legacy alias "asan-elide") into a SchemeConfig. The optimisation
 * suffixes compose only over backends whose baseConfig() enables
 * shadow access checks.
 * @return false (with 'error' set) on an unknown id or bad suffix.
 */
bool parseSchemeSpec(const std::string &spec, SchemeConfig &out,
                     std::string &error);

} // namespace rest::runtime

#endif // REST_RUNTIME_PROTECTION_SCHEME_HH
