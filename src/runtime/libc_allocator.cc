#include "runtime/libc_allocator.hh"

namespace rest::runtime
{

Addr
LibcAllocator::malloc(std::size_t size, OpEmitter &em)
{
    em.setSource(isa::OpSource::Allocator);
    ++heap_.mallocCalls;

    int cls = SizeClassTable::classIndex(size);
    std::size_t payload_bytes = SizeClassTable::roundToClass(size);
    std::size_t chunk_bytes = headerBytes + payload_bytes;

    // Size-class dispatch + freelist head load.
    em.aluChain(4);
    em.load(scratch1, AddressMap::heapMetaBase + 8 * cls);

    Chunk chunk;
    auto &fl = heap_.freeLists[chunk_bytes];
    if (!fl.empty()) {
        chunk = fl.back();
        fl.pop_back();
        // Unlink: read next pointer from the chunk, store new head.
        em.load(scratch2, chunk.base);
        em.store(AddressMap::heapMetaBase + 8 * cls);
    } else {
        chunk.base = heap_.carve(chunk_bytes);
        chunk.payload = chunk.base + headerBytes;
        chunk.chunkBytes = chunk_bytes;
        chunk.sizeClass = cls;
        chunk.metaAddr = chunk.base; // header is in-band
        em.aluChain(2); // bump-pointer arithmetic
    }
    chunk.size = size;

    // Write the in-band header (size + class).
    memory_.write(chunk.base, size, 8);
    em.store(chunk.base, 8);
    em.store(chunk.base + 8, 8);

    heap_.live[chunk.payload] = chunk;
    em.alu(isa::regRet, scratch1);
    return chunk.payload;
}

void
LibcAllocator::free(Addr payload, OpEmitter &em)
{
    em.setSource(isa::OpSource::Allocator);
    ++heap_.freeCalls;

    auto it = heap_.live.find(payload);
    // Header read + size-class dispatch.
    em.load(scratch1, payload - headerBytes, 8);
    em.aluChain(3);

    if (it == heap_.live.end()) {
        // Double/invalid free: the baseline allocator silently
        // corrupts its free list, exactly like the real thing.
        em.store(payload - headerBytes, 8);
        return;
    }

    Chunk chunk = it->second;
    heap_.live.erase(it);

    // Push onto the class free list (store link + head).
    em.store(chunk.base, 8);
    em.store(AddressMap::heapMetaBase + 8 * chunk.sizeClass, 8);
    heap_.freeLists[chunk.chunkBytes].push_back(chunk);
}

} // namespace rest::runtime
