/**
 * @file
 * Deallocation quarantine (paper §IV-A, Fig. 6): freed chunks are
 * held in a FIFO pool — blacklisted — instead of being reused, until
 * the pool exceeds its byte budget. Use-after-free through a dangling
 * pointer faults for as long as the chunk is quarantined.
 */

#ifndef REST_RUNTIME_QUARANTINE_HH
#define REST_RUNTIME_QUARANTINE_HH

#include <deque>
#include <optional>
#include <unordered_map>

#include "runtime/allocator.hh"

namespace rest::runtime
{

/** FIFO quarantine with a byte budget. */
class Quarantine
{
  public:
    explicit Quarantine(std::size_t budget_bytes)
        : budget_(budget_bytes)
    {}

    /** Add a freed chunk. */
    void
    push(const Chunk &chunk)
    {
        bytes_ += chunk.chunkBytes;
        fifo_.push_back(chunk);
        ++resident_[chunk.payload];
    }

    /** Over budget: the oldest chunk should be drained. */
    bool overBudget() const { return bytes_ > budget_; }

    /** Pop the oldest chunk (caller drains it to the free pool). */
    std::optional<Chunk>
    pop()
    {
        if (fifo_.empty())
            return std::nullopt;
        Chunk c = fifo_.front();
        fifo_.pop_front();
        bytes_ -= c.chunkBytes;
        auto it = resident_.find(c.payload);
        if (it != resident_.end() && --it->second == 0)
            resident_.erase(it);
        return c;
    }

    /** Is this payload address currently quarantined? O(1): at the
     *  paper's §IV-A budgets a linear FIFO scan makes free-heavy
     *  profiles quadratic in quarantine depth. */
    bool
    contains(Addr payload) const
    {
        return resident_.count(payload) != 0;
    }

    std::size_t bytes() const { return bytes_; }
    std::size_t chunks() const { return fifo_.size(); }
    std::size_t budget() const { return budget_; }

  private:
    std::size_t budget_;
    std::size_t bytes_ = 0;
    std::deque<Chunk> fifo_;
    /** Count per payload address, kept in sync with push()/pop(). */
    std::unordered_map<Addr, std::size_t> resident_;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_QUARANTINE_HH
