/**
 * @file
 * The REST allocator (paper §IV-A, Fig. 6): adapted from ASan's, but
 * redzones are token granules installed with arm instructions instead
 * of shadow poisoning; freed chunks are filled with tokens and
 * quarantined; and — REST's relaxed invariant — chunks in the free
 * pool are zeroed (disarm zeroes them in hardware), not blacklisted,
 * so fresh mappings need no blacklisting work and reuse cannot leak
 * uninitialised data.
 *
 * Because detection is in hardware, this allocator protects legacy
 * binaries too: no program instrumentation is required, only linking
 * (or LD_PRELOAD-ing) this allocator.
 */

#ifndef REST_RUNTIME_REST_ALLOCATOR_HH
#define REST_RUNTIME_REST_ALLOCATOR_HH

#include <mutex>

#include "core/rest_engine.hh"
#include "mem/guest_memory.hh"
#include "runtime/allocator.hh"
#include "runtime/quarantine.hh"

namespace rest::runtime
{

/** REST's heap allocator. */
class RestAllocator : public Allocator
{
  public:
    /**
     * @param sprinkle_every when nonzero, every Nth malloc also arms
     *        a decoy granule at an unpredictable heap offset (SV-C
     *        "Predictability" hardening).
     */
    RestAllocator(mem::GuestMemory &memory, core::RestEngine &engine,
                  std::size_t quarantine_budget,
                  unsigned sprinkle_every = 0)
        : memory_(memory), engine_(engine),
          quarantine_(quarantine_budget),
          heap_(AddressMap::heapBase, engine.configRegister().granule()),
          sprinkleEvery_(sprinkle_every)
    {}

    Addr malloc(std::size_t size, OpEmitter &em) override;
    void free(Addr payload, OpEmitter &em) override;

    const char *name() const override { return "rest"; }

    std::size_t
    allocationSize(Addr payload) const override
    {
        auto it = heap_.live.find(payload);
        return it == heap_.live.end() ? 0 : it->second.size;
    }

    std::size_t liveAllocations() const override
    { return heap_.live.size(); }

    /**
     * Redzone size for a payload: a multiple of the token width,
     * scaling with the allocation (paper §IV-A), clamped to
     * [granule, 2048].
     */
    std::size_t redzoneBytes(std::size_t payload_size) const;

    const Quarantine &quarantine() const { return quarantine_; }
    /** Decoy granules armed so far (sprinkling hardening). */
    std::uint64_t decoysArmed() const { return decoysArmed_; }
    const HeapState &heapState() const override { return heap_; }
    const core::RestEngine &engine() const { return engine_; }

  private:
    unsigned granule() const
    { return engine_.configRegister().granule(); }

    /** Emit + architecturally perform an arm of one granule. */
    void armGranule(Addr addr, OpEmitter &em);
    /** Emit + architecturally perform a disarm of one granule. */
    void disarmGranule(Addr addr, OpEmitter &em);

    void drainQuarantine(OpEmitter &em);

    mem::GuestMemory &memory_;
    core::RestEngine &engine_;
    /** Serialises malloc/free: the free lists, quarantine, live map
     *  and the engine's armed-granule set are shared by every thread
     *  of the process (tests/runtime/allocator_stress_test.cc runs
     *  the service paths under TSan). The simulated multicore machine
     *  is single-host-threaded and never contends. */
    std::mutex mu_;
    Quarantine quarantine_;
    HeapState heap_;
    unsigned sprinkleEvery_ = 0;
    std::uint64_t decoysArmed_ = 0;
    std::uint64_t sprinkleLcg_ = 0x2545f4914f6cdd1dull;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_REST_ALLOCATOR_HH
