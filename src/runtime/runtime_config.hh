/**
 * @file
 * Protection-scheme configuration and the guest address-space map.
 *
 * A SchemeConfig captures which software components are active; the
 * paper's evaluated configurations (plain, ASan, REST full/heap,
 * PerfectHW) are presets over these flags, and Figure 3's component
 * breakdown toggles them cumulatively.
 */

#ifndef REST_RUNTIME_RUNTIME_CONFIG_HH
#define REST_RUNTIME_RUNTIME_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rest::runtime
{

/** Which allocator implementation the guest links against. */
enum class AllocatorKind : std::uint8_t
{
    Libc,  ///< stock performance-first allocator, immediate reuse
    Asan,  ///< shadow-poisoning redzones + quarantine
    Rest,  ///< token redzones + armed quarantine, zeroed free pool
    Mte,   ///< MTE-style 4-bit granule tags, retag on free
    Pauth, ///< pointer-authentication signatures, revoked on free
};

/** Guest address-space layout. */
struct AddressMap
{
    static constexpr Addr textBase = 0x400000;
    static constexpr Addr runtimeTextBase = 0x600000;
    static constexpr Addr interceptTextBase = 0x700000;
    static constexpr Addr globalsBase = 0x10000000;
    static constexpr Addr heapBase = 0x20000000;
    static constexpr Addr heapMetaBase = 0x18000000;
    static constexpr Addr stackTop = 0x7fff0000;
    /** ASan shadow region: shadow(a) = (a >> 3) + shadowBase. */
    static constexpr Addr shadowBase = 0x100000000000ull;

    static constexpr Addr shadowOf(Addr a) { return (a >> 3) + shadowBase; }
};

/** Full software-side configuration of one experiment run. */
struct SchemeConfig
{
    AllocatorKind allocator = AllocatorKind::Libc;

    /** ASan: instrument every program load/store with a shadow check. */
    bool asanAccessChecks = false;
    /** ASan: poison/unpoison stack redzones in prologue/epilogue. */
    bool asanStackSetup = false;
    /** ASan: libc interceptors validate memcpy/memset argument ranges. */
    bool asanIntercept = false;
    /**
     * ASan: statically delete shadow checks proven redundant by the
     * available-checks dataflow (analysis/elide_checks.hh) — a check
     * dominated by an earlier check of the same base register and a
     * covering offset window, with no intervening base redefinition
     * or shadow-state change. Detection coverage is unaffected.
     * No effect unless asanAccessChecks is set.
     */
    bool elideRedundantChecks = false;
    /**
     * ASan: hoist loop-invariant shadow checks into a synthesized
     * loop preheader (analysis/hoist_checks.hh) — a check whose base
     * is not redefined in the loop, whose fact is anticipated at the
     * loop header on every path, and whose loop body cannot change
     * shadow state executes once per loop entry instead of once per
     * iteration. Detection verdicts are preserved exactly.
     * No effect unless asanAccessChecks is set.
     */
    bool hoistLoopChecks = false;
    /**
     * ASan: merge same-base, adjacent or overlapping check windows
     * within a basic block into one widened check
     * (analysis/coalesce_checks.hh). No effect unless
     * asanAccessChecks is set.
     */
    bool coalesceChecks = false;

    /** REST: arm/disarm stack redzones in prologue/epilogue. */
    bool restStackArming = false;

    /**
     * PerfectHW limit study (paper §VI-B "Software vs. Hardware"):
     * every arm/disarm is replaced by one regular store on stock
     * hardware. No protection is provided; isolates software cost.
     */
    bool perfectHw = false;

    /** Quarantine budget in bytes before drain (ASan/REST frees). */
    std::size_t quarantineBudget = 1 << 20;

    /**
     * REST extension (SV-C "Predictability"): every Nth allocation,
     * the allocator carves and arms one extra decoy granule at an
     * unpredictable spot in the heap, so attackers who try to jump
     * over redzones risk landing on a token. 0 disables.
     */
    unsigned sprinkleTokensEvery = 0;

    /**
     * REST extension (SV-C "False Negatives"): zero the alignment pad
     * between a stack buffer and its token redzone in the prologue,
     * closing the uninitialised-data-leak gap the pad introduces.
     */
    bool zeroStackPadding = false;

    // ---- Presets for the paper's configurations ----

    static SchemeConfig plain() { return {}; }

    static SchemeConfig
    asanFull()
    {
        SchemeConfig c;
        c.allocator = AllocatorKind::Asan;
        c.asanAccessChecks = true;
        c.asanStackSetup = true;
        c.asanIntercept = true;
        return c;
    }

    static SchemeConfig
    restFull()
    {
        SchemeConfig c;
        c.allocator = AllocatorKind::Rest;
        c.restStackArming = true;
        return c;
    }

    static SchemeConfig
    restHeap()
    {
        SchemeConfig c;
        c.allocator = AllocatorKind::Rest;
        return c;
    }

    /**
     * MTE-style lock-and-key tagging: no program instrumentation,
     * detection is the per-access tag check in the load/store path.
     */
    static SchemeConfig
    mte()
    {
        SchemeConfig c;
        c.allocator = AllocatorKind::Mte;
        return c;
    }

    /** CryptSan-style data-pointer authentication. */
    static SchemeConfig
    pauth()
    {
        SchemeConfig c;
        c.allocator = AllocatorKind::Pauth;
        return c;
    }

    std::string name() const;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_RUNTIME_CONFIG_HH
