/**
 * @file
 * Baseline performance-first allocator ("stock libc" in the paper's
 * plain configuration): segregated size-class free lists with
 * immediate LIFO reuse and an inline 16-byte chunk header. No
 * redzones, no quarantine, no safety.
 */

#ifndef REST_RUNTIME_LIBC_ALLOCATOR_HH
#define REST_RUNTIME_LIBC_ALLOCATOR_HH

#include "mem/guest_memory.hh"
#include "runtime/allocator.hh"

namespace rest::runtime
{

/** The baseline allocator. */
class LibcAllocator : public Allocator
{
  public:
    explicit LibcAllocator(mem::GuestMemory &memory)
        : memory_(memory)
    {}

    Addr malloc(std::size_t size, OpEmitter &em) override;
    void free(Addr payload, OpEmitter &em) override;

    const char *name() const override { return "libc"; }

    std::size_t
    allocationSize(Addr payload) const override
    {
        auto it = heap_.live.find(payload);
        return it == heap_.live.end() ? 0 : it->second.size;
    }

    std::size_t liveAllocations() const override
    { return heap_.live.size(); }

    const HeapState &heapState() const override { return heap_; }

  private:
    static constexpr std::size_t headerBytes = 16;

    mem::GuestMemory &memory_;
    HeapState heap_;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_LIBC_ALLOCATOR_HH
