/**
 * @file
 * Guest heap allocator interface and shared machinery.
 *
 * Three allocators implement it (paper §II and §IV-A):
 *   - LibcAllocator: performance-first, immediate reuse (baseline),
 *   - AsanAllocator: shadow-poisoned redzones, quarantined frees,
 *   - RestAllocator: token redzones, armed quarantine, zeroed free
 *     pool (the relaxed invariant of §IV-A).
 *
 * Allocators are functional (they really place chunks in the guest
 * address space) and also cost models: every service call emits the
 * dynamic ops the real runtime would execute through an OpEmitter.
 */

#ifndef REST_RUNTIME_ALLOCATOR_HH
#define REST_RUNTIME_ALLOCATOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "mem/guest_memory.hh"
#include "runtime/op_emitter.hh"
#include "runtime/runtime_config.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace rest::runtime
{

/** Bookkeeping record for one live or pooled chunk. */
struct Chunk
{
    Addr base = 0;          ///< first byte of the chunk (incl. redzone)
    Addr payload = 0;       ///< first byte handed to the program
    std::size_t size = 0;   ///< requested payload size
    std::size_t chunkBytes = 0; ///< full footprint incl. redzones
    int sizeClass = -1;
    Addr metaAddr = 0;      ///< address of out-of-band metadata record
};

/** Abstract allocator. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Allocate 'size' bytes.
     * @param size requested payload size (> 0).
     * @param em emitter receiving the runtime's instruction stream.
     * @return guest address of the payload.
     */
    virtual Addr malloc(std::size_t size, OpEmitter &em) = 0;

    /**
     * Free a previously allocated payload address.
     * @param payload address returned by malloc.
     * @param em emitter receiving the runtime's instruction stream.
     */
    virtual void free(Addr payload, OpEmitter &em) = 0;

    virtual const char *name() const = 0;

    /** Payload size of a live allocation (0 if unknown). */
    virtual std::size_t allocationSize(Addr payload) const = 0;

    /** Number of live (not yet freed) allocations. */
    virtual std::size_t liveAllocations() const = 0;

    /** Shared chunk bookkeeping (call counters, live map, pools). */
    virtual const class HeapState &heapState() const = 0;
};

/** Segregated size-class helpers shared by all three allocators. */
class SizeClassTable
{
  public:
    /** Round a payload size up to its size class. */
    static std::size_t
    roundToClass(std::size_t size)
    {
        return classes()[classIndex(size)];
    }

    /** Index of the size class for 'size'. */
    static int
    classIndex(std::size_t size)
    {
        const auto &cs = classes();
        for (std::size_t i = 0; i < cs.size(); ++i) {
            if (size <= cs[i])
                return static_cast<int>(i);
        }
        // Huge allocations: the last class is a catch-all handled by
        // direct bump allocation with no reuse.
        return static_cast<int>(cs.size()) - 1;
    }

    static const std::vector<std::size_t> &
    classes()
    {
        static const std::vector<std::size_t> cs = {
            16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
            1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 32768,
            65536, 131072, 262144, 1048576, 2097152, 4194304, 8388608,
            16777216,
        };
        return cs;
    }
};

/**
 * Shared chunk bookkeeping: bump region, live map, per-class free
 * lists, and metadata-record addresses (the out-of-band allocation
 * metadata of paper Fig. 6).
 */
class HeapState
{
  public:
    explicit HeapState(Addr region_base = AddressMap::heapBase,
                       unsigned alignment = 16)
        : bump_(region_base), align_(alignment)
    {}

    /** Carve a fresh chunk of 'bytes' from the region. */
    Addr
    carve(std::size_t bytes)
    {
        Addr a = alignUp(bump_, align_);
        bump_ = a + bytes;
        return a;
    }

    /** Metadata record address for the n-th chunk ever created. */
    Addr
    newMetaAddr()
    {
        return AddressMap::heapMetaBase + 32 * metaCount_++;
    }

    std::unordered_map<Addr, Chunk> live;          ///< by payload addr
    /**
     * Free pools keyed by exact chunk footprint: a recycled chunk is
     * only handed to requests with an identical footprint, so redzone
     * geometry always matches (and no slack is ever mis-armed).
     */
    std::map<std::size_t, std::vector<Chunk>> freeLists;

    std::uint64_t mallocCalls = 0;
    std::uint64_t freeCalls = 0;
    Addr bumpCursor() const { return bump_; }

  private:
    Addr bump_;
    unsigned align_;
    std::uint64_t metaCount_ = 0;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_ALLOCATOR_HH
