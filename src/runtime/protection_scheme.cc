#include "runtime/protection_scheme.hh"

#include <array>

#include "runtime/asan_allocator.hh"
#include "runtime/libc_allocator.hh"
#include "runtime/mte_allocator.hh"
#include "runtime/pauth_allocator.hh"
#include "runtime/rest_allocator.hh"

namespace rest::runtime
{

const char *
expectName(Expect e)
{
    switch (e) {
      case Expect::Caught:
        return "caught";
      case Expect::Missed:
        return "missed";
      case Expect::SeedDependent:
        return "seed-dependent";
    }
    return "?";
}

namespace
{

/** Baseline: glibc-style allocator, no detection anywhere. */
class PlainScheme : public ProtectionScheme
{
  public:
    const char *id() const override { return "plain"; }

    const char *
    description() const override
    {
        return "uninstrumented baseline (libc allocator, no checks)";
    }

    SchemeConfig baseConfig() const override
    { return SchemeConfig::plain(); }

    SchemeParts
    instantiate(const SchemeContext &ctx) const override
    {
        SchemeParts parts;
        parts.allocator = std::make_unique<LibcAllocator>(ctx.memory);
        return parts;
    }

    DetectionProfile declaredProfile() const override
    { return DetectionProfile{}; }

    HardwareCost
    hardwareCost() const override
    {
        return {"none", 0.0, "None"};
    }
};

/** ASan: shadow-memory checks compiled into the program. */
class AsanScheme : public ProtectionScheme
{
  public:
    const char *id() const override { return "asan"; }

    const char *
    description() const override
    {
        return "AddressSanitizer: shadow memory + redzones + "
               "compiler-inserted checks";
    }

    SchemeConfig baseConfig() const override
    { return SchemeConfig::asanFull(); }

    SchemeParts
    instantiate(const SchemeContext &ctx) const override
    {
        SchemeParts parts;
        parts.allocator = std::make_unique<AsanAllocator>(
            ctx.memory, ctx.scheme.quarantineBudget);
        return parts;
    }

    DetectionProfile
    declaredProfile() const override
    {
        DetectionProfile p;
        p.linearOverflow = Expect::Caught;
        // Redzone jumps and pointer forging land in valid memory:
        // ASan's documented spatial gap.
        p.uafQuarantined = Expect::Caught;
        p.doubleFree = Expect::Caught;
        p.stackOverflow = Expect::Caught;
        p.uninstrumentedLibrary = Expect::Caught; // interceptors
        // Shadow state is process-global: the poisoning a free on one
        // thread leaves behind is visible to every other thread.
        p.crossThreadUaf = Expect::Caught;
        p.racyDoubleFree = Expect::Caught;
        p.handoffOverflow = Expect::Caught;
        return p;
    }

    HardwareCost
    hardwareCost() const override
    {
        // 1 shadow byte per 8 data bytes = 1 bit per byte.
        return {"software shadow memory, 1 bit per data byte", 0.125,
                "High (software)", /*usesShadowSpace=*/true};
    }
};

/** REST: token redzones checked by the memory system. */
class RestScheme : public ProtectionScheme
{
  public:
    const char *id() const override { return "rest"; }

    const char *
    description() const override
    {
        return "REST: 64-byte token redzones detected in the cache "
               "hierarchy";
    }

    SchemeConfig baseConfig() const override
    { return SchemeConfig::restFull(); }

    SchemeParts
    instantiate(const SchemeContext &ctx) const override
    {
        SchemeParts parts;
        parts.allocator = std::make_unique<RestAllocator>(
            ctx.memory, ctx.engine, ctx.scheme.quarantineBudget,
            ctx.scheme.sprinkleTokensEvery);
        return parts;
    }

    DetectionProfile
    declaredProfile() const override
    {
        DetectionProfile p;
        p.linearOverflow = Expect::Caught;
        // Jumping the redzone or re-deriving a pointer lands beyond
        // the tokens: the paper's documented spatial gaps.
        p.uafQuarantined = Expect::Caught;
        p.uafRecycled = Expect::Missed; // "until realloc"
        p.doubleFree = Expect::Caught;
        p.stackOverflow = Expect::Caught;
        p.uninstrumentedLibrary = Expect::Caught; // HW sees every access
        // Tokens live in memory, detection in every private L1's fill
        // path: a coherence transfer of an armed line re-detects the
        // token on the consuming core (mem/coherence.hh).
        p.crossThreadUaf = Expect::Caught;
        p.racyDoubleFree = Expect::Caught;
        p.handoffOverflow = Expect::Caught;
        return p;
    }

    HardwareCost
    hardwareCost() const override
    {
        // 1 detection bit per 64-byte L1-D line.
        return {"1 tag bit per 64B L1-D granule", 1.0 / 64.0,
                "Low (cache tag bit)"};
    }
};

/** MTE-style lock-and-key granule tagging. */
class MteScheme : public ProtectionScheme
{
  public:
    const char *id() const override { return "mte"; }

    const char *
    description() const override
    {
        return "memory tagging: 4-bit lock-and-key tags on 16-byte "
               "granules";
    }

    SchemeConfig baseConfig() const override
    { return SchemeConfig::mte(); }

    SchemeParts
    instantiate(const SchemeContext &ctx) const override
    {
        SchemeParts parts;
        auto alloc =
            std::make_unique<MteAllocator>(ctx.memory, ctx.seed);
        parts.policy = alloc.get();
        parts.allocator = std::move(alloc);
        return parts;
    }

    DetectionProfile
    declaredProfile() const override
    {
        DetectionProfile p;
        p.linearOverflow = Expect::Caught;
        p.jumpOverRedzone = Expect::Caught; // whole chunk is coloured
        // a + (b - a) reconstructs b bit-exactly, tag included: the
        // re-derived pointer authenticates against b's own granules.
        p.pointerDiffJump = Expect::Missed;
        p.pointerCorruption = Expect::Caught; // stripped tag != colour
        p.uafQuarantined = Expect::Caught;    // retag on free
        p.uafRecycled = Expect::SeedDependent; // 4-bit birthday
        p.doubleFree = Expect::Caught;
        p.stackOverflow = Expect::Missed; // stack untagged
        p.uninstrumentedLibrary = Expect::Caught; // HW-checked
        // A handed-off pointer carries its tag; free's re-colouring
        // and the granule tags are global state, so cross-thread
        // misuse mismatches just like local misuse.
        p.crossThreadUaf = Expect::Caught;
        p.racyDoubleFree = Expect::Caught;
        p.handoffOverflow = Expect::Caught;
        return p;
    }

    HardwareCost
    hardwareCost() const override
    {
        // 4 tag bits per 16 data bytes.
        return {"4-bit tag per 16B granule", 4.0 / 16.0,
                "Medium (tag storage + check)"};
    }
};

/** CryptSan/ARM-PAC-style data-pointer authentication. */
class PauthScheme : public ProtectionScheme
{
  public:
    const char *id() const override { return "pauth"; }

    const char *
    description() const override
    {
        return "pointer authentication: 16-bit PAC signed by malloc, "
               "revoked by free";
    }

    SchemeConfig baseConfig() const override
    { return SchemeConfig::pauth(); }

    SchemeParts
    instantiate(const SchemeContext &ctx) const override
    {
        SchemeParts parts;
        auto alloc =
            std::make_unique<PauthAllocator>(ctx.memory, ctx.seed);
        parts.policy = alloc.get();
        parts.allocator = std::move(alloc);
        return parts;
    }

    DetectionProfile
    declaredProfile() const override
    {
        DetectionProfile p;
        // A signed pointer authenticates regardless of the offset
        // arithmetic applied below bit 48: spatial gaps everywhere
        // except forged/stripped pointers.
        p.pointerCorruption = Expect::Caught;
        p.uafQuarantined = Expect::Caught;
        p.uafRecycled = Expect::Caught; // revocation is permanent
        p.doubleFree = Expect::Caught;
        // Stack/globals unsigned, library copies carry valid PACs.
        // Signature revocation is global, so stale pointers fail on
        // any thread — but a live, correctly signed pointer indexes
        // out of bounds freely (no spatial check to hand off).
        p.crossThreadUaf = Expect::Caught;
        p.racyDoubleFree = Expect::Caught;
        return p;
    }

    HardwareCost
    hardwareCost() const override
    {
        return {"PAC unit in the pipeline, no memory metadata", 0.0,
                "Low (crypto unit)"};
    }
};

const PlainScheme plainScheme;
const AsanScheme asanScheme;
const RestScheme restScheme;
const MteScheme mteScheme;
const PauthScheme pauthScheme;

} // namespace

const std::vector<const ProtectionScheme *> &
allSchemes()
{
    static const std::vector<const ProtectionScheme *> all = {
        &plainScheme, &asanScheme, &restScheme, &mteScheme,
        &pauthScheme,
    };
    return all;
}

const ProtectionScheme *
findScheme(const std::string &id)
{
    for (const ProtectionScheme *ps : allSchemes())
        if (id == ps->id())
            return ps;
    return nullptr;
}

const ProtectionScheme &
schemeForConfig(const SchemeConfig &cfg)
{
    switch (cfg.allocator) {
      case AllocatorKind::Libc:
        return plainScheme;
      case AllocatorKind::Asan:
        return asanScheme;
      case AllocatorKind::Rest:
        return restScheme;
      case AllocatorKind::Mte:
        return mteScheme;
      case AllocatorKind::Pauth:
        return pauthScheme;
    }
    return plainScheme;
}

bool
parseSchemeSpec(const std::string &spec, SchemeConfig &out,
                std::string &error)
{
    // Split "<base>+suffix+suffix".
    std::string base = spec;
    std::vector<std::string> suffixes;
    if (std::size_t plus = spec.find('+'); plus != std::string::npos) {
        base = spec.substr(0, plus);
        std::size_t start = plus + 1;
        while (start <= spec.size()) {
            std::size_t next = spec.find('+', start);
            if (next == std::string::npos) {
                suffixes.push_back(spec.substr(start));
                break;
            }
            suffixes.push_back(spec.substr(start, next - start));
            start = next + 1;
        }
    }
    if (base == "asan-elide") { // legacy spelling of asan+elide
        base = "asan";
        suffixes.push_back("elide");
    }

    const ProtectionScheme *ps = findScheme(base);
    if (!ps) {
        error = "unknown scheme \"" + base + "\"";
        return false;
    }
    out = ps->baseConfig();

    for (const std::string &s : suffixes) {
        if (!out.asanAccessChecks) {
            error = "suffix \"+" + s + "\" requires a scheme with " +
                    "compiled-in access checks (asan), not \"" + base +
                    "\"";
            return false;
        }
        if (s == "elide")
            out.elideRedundantChecks = true;
        else if (s == "hoist")
            out.hoistLoopChecks = true;
        else if (s == "coalesce")
            out.coalesceChecks = true;
        else {
            error = "unknown scheme suffix \"+" + s + "\"";
            return false;
        }
    }
    return true;
}

} // namespace rest::runtime
