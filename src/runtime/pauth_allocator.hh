/**
 * @file
 * CryptSan-style data-pointer authentication: malloc signs the
 * returned pointer with a 16-bit PAC (keyed hash of the payload
 * address and an allocation generation) placed in bits 48..63; every
 * load/store authenticates the pointer before the access; free
 * revokes the signature. A dangling pointer therefore fails
 * authentication forever — temporal protection is complete, even
 * after the chunk is recycled (the recycled allocation carries a new
 * generation, hence a new PAC). A stripped/forged raw pointer into
 * heap data carries no valid PAC and is caught.
 *
 * What this scheme cannot see: in-bounds-signature spatial overflows
 * (base + attacker offset still authenticates), so linear overflows
 * and redzone jumps pass, and untagged regions (stack, globals) are
 * out of scope. This mirrors the ARM PAC row of Table III:
 * "Targeted" spatial protection only.
 */

#ifndef REST_RUNTIME_PAUTH_ALLOCATOR_HH
#define REST_RUNTIME_PAUTH_ALLOCATOR_HH

#include <mutex>
#include <unordered_map>

#include "mem/guest_memory.hh"
#include "runtime/access_policy.hh"
#include "runtime/allocator.hh"

namespace rest::runtime
{

/** The pointer-authentication allocator + its check predicate. */
class PauthAllocator : public Allocator, public AccessPolicy
{
  public:
    static constexpr unsigned pacShift = 48;
    static constexpr Addr addrMask = (Addr(1) << 48) - 1;

    PauthAllocator(mem::GuestMemory &memory, std::uint64_t seed)
        : memory_(memory), heap_(AddressMap::heapBase, 16),
          key_(seed ^ 0x9e3779b97f4a7c15ull)
    {}

    Addr malloc(std::size_t size, OpEmitter &em) override;
    void free(Addr payload, OpEmitter &em) override;

    const char *name() const override { return "pauth"; }

    std::size_t
    allocationSize(Addr payload) const override
    {
        auto it = heap_.live.find(payload & addrMask);
        return it == heap_.live.end() ? 0 : it->second.size;
    }

    std::size_t liveAllocations() const override
    { return heap_.live.size(); }

    const HeapState &heapState() const override { return heap_; }

    // ---- AccessPolicy ----
    isa::FaultKind checkAccess(Addr ea, unsigned size) const override;
    Addr canonical(Addr ea) const override { return ea & addrMask; }

    /** PAC field of a pointer value (bits 48..63). */
    static std::uint16_t pointerPac(Addr ptr)
    { return static_cast<std::uint16_t>(ptr >> pacShift); }

    /** Number of distinct live signatures (test support). */
    std::size_t liveSignatures() const { return liveSigs_.size(); }

  private:
    /** Sign a payload address: keyed, generation-salted, non-zero. */
    std::uint16_t sign(Addr canon);

    /** Is 'canon' inside the allocator-managed heap data region? */
    bool
    inHeapData(Addr canon) const
    {
        return canon >= AddressMap::heapBase &&
               canon < heap_.bumpCursor();
    }

    mem::GuestMemory &memory_;
    /** Serialises the malloc/free service paths (free lists, live
     *  map, signature tables) for host-threaded callers; see
     *  tests/runtime/allocator_stress_test.cc. */
    std::mutex mu_;
    HeapState heap_;
    /** Signature -> number of live allocations carrying it. */
    std::unordered_map<std::uint16_t, unsigned> liveSigs_;
    /** Canonical payload -> its current signature. */
    std::unordered_map<Addr, std::uint16_t> sigByPayload_;
    std::uint64_t key_;
    std::uint64_t generation_ = 0;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_PAUTH_ALLOCATOR_HH
