/**
 * @file
 * libc data-handling interceptors (paper §II item 4).
 *
 * memcpy/memset are expanded into their copy/fill loops at emulation
 * time (the loop ops exist under every scheme — they are the library
 * code itself). Under ASan with interception enabled, a range-check
 * pass over the shadow runs first, attributed to OpSource::
 * Interceptor. Under REST no checks exist: the copy loop's own
 * loads/stores trip over tokens in hardware.
 */

#ifndef REST_RUNTIME_INTERCEPTORS_HH
#define REST_RUNTIME_INTERCEPTORS_HH

#include "core/rest_engine.hh"
#include "mem/guest_memory.hh"
#include "runtime/access_policy.hh"
#include "runtime/op_emitter.hh"
#include "runtime/runtime_config.hh"
#include "runtime/shadow_memory.hh"

namespace rest::runtime
{

/** Result of an intercepted service call. */
struct InterceptResult
{
    /** A fault was emitted; the op stream must stop after it. */
    bool faulted = false;
    /** Bytes actually transferred before any fault. */
    std::size_t bytesDone = 0;
};

/** The interceptor/library-call expansion engine. */
class Interceptors
{
  public:
    /**
     * @param policy per-access check predicate for pointer-tagging
     *        schemes; null keeps the historical REST-token path.
     */
    Interceptors(mem::GuestMemory &memory, core::RestEngine &engine,
                 const SchemeConfig &scheme,
                 const AccessPolicy *policy = nullptr)
        : memory_(memory), engine_(engine), shadow_(memory),
          scheme_(scheme), policy_(policy)
    {}

    /**
     * memcpy(dst, src, len): optional ASan range validation, then the
     * 8-bytes-per-iteration copy loop. Functionally copies the bytes.
     * REST token hits (or ASan range failures) fault mid-stream.
     */
    InterceptResult memcpy(Addr dst, Addr src, std::size_t len,
                           OpEmitter &em);

    /** memset(dst, value, len): same structure, stores only. */
    InterceptResult memset(Addr dst, std::uint8_t value,
                           std::size_t len, OpEmitter &em);

    /**
     * strcpy(dst, src): the classic unbounded copy. The interceptor
     * (under ASan) measures strlen(src) and validates both ranges
     * before copying; otherwise the copy loop runs until the NUL --
     * straight through any redzone in its way, where the hardware
     * stops it.
     */
    InterceptResult strcpy(Addr dst, Addr src, OpEmitter &em);

  private:
    /**
     * ASan interceptor range check over [addr, addr+len): one shadow
     * load + check per 64 bytes. Emits a faulting check op and
     * returns true if the range is poisoned.
     */
    bool checkRange(Addr addr, std::size_t len, OpEmitter &em);

    /** Does a REST token overlap [addr, addr+size)? */
    bool
    tokenHit(Addr addr, unsigned size) const
    {
        return !em_perfect_ && engine_.overlapsArmed(addr, size);
    }

    /**
     * Hardware verdict for one access at 'addr' (raw, tag bits
     * included): the access policy when one is active, the REST token
     * check otherwise.
     */
    isa::FaultKind
    faultKindAt(Addr addr, unsigned size) const
    {
        if (policy_)
            return policy_->checkAccess(addr, size);
        return tokenHit(addr, size) ? isa::FaultKind::RestTokenAccess
                                    : isa::FaultKind::None;
    }

    /** Canonical (tag-stripped) form; identity without a policy. */
    Addr
    canon(Addr addr) const
    {
        return policy_ ? policy_->canonical(addr) : addr;
    }

    mem::GuestMemory &memory_;
    core::RestEngine &engine_;
    ShadowMemory shadow_;
    const SchemeConfig &scheme_;
    const AccessPolicy *policy_;
    bool em_perfect_ = false;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_INTERCEPTORS_HH
