#include "runtime/runtime_config.hh"

#include <sstream>

namespace rest::runtime
{

std::string
SchemeConfig::name() const
{
    std::ostringstream os;
    switch (allocator) {
      case AllocatorKind::Libc: os << "libc"; break;
      case AllocatorKind::Asan: os << "asan"; break;
      case AllocatorKind::Rest: os << "rest"; break;
      case AllocatorKind::Mte: os << "mte"; break;
      case AllocatorKind::Pauth: os << "pauth"; break;
    }
    if (asanAccessChecks)
        os << "+checks";
    if (asanAccessChecks && elideRedundantChecks)
        os << "+elide";
    if (asanAccessChecks && hoistLoopChecks)
        os << "+hoist";
    if (asanAccessChecks && coalesceChecks)
        os << "+coalesce";
    if (asanStackSetup)
        os << "+stack";
    if (asanIntercept)
        os << "+intercept";
    if (restStackArming)
        os << "+arming";
    if (perfectHw)
        os << "+perfecthw";
    return os.str();
}

} // namespace rest::runtime
