#include "runtime/mte_allocator.hh"

#include <algorithm>

#include "util/trace.hh"

namespace rest::runtime
{

std::uint8_t
MteAllocator::drawTag(std::uint8_t exclude_a, std::uint8_t exclude_b)
{
    // 4-bit LCG draw, non-zero, avoiding both exclusions. At most 15
    // candidates exist and at least 13 remain, so this terminates.
    for (;;) {
        lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
        std::uint8_t t = (lcg_ >> 60) & 0xf;
        if (t != 0 && t != exclude_a && t != exclude_b)
            return t;
    }
}

void
MteAllocator::setTagRange(Addr canon, std::size_t bytes,
                          std::uint8_t tag, OpEmitter &em)
{
    Addr end = canon + bytes;
    for (Addr g = alignDown(canon, granuleBytes); g < end;
         g += granuleBytes) {
        tags_[g] = tag;
        // The STG analogue: one granule-wide store in the op stream.
        em.store(g, granuleBytes);
    }
}

Addr
MteAllocator::malloc(std::size_t size, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.mallocCalls;

    std::size_t payload_bytes =
        alignUp(std::max<std::size_t>(size, 1), granuleBytes);
    int cls = SizeClassTable::classIndex(payload_bytes);

    // Front-end bookkeeping mirrors the sibling allocators.
    em.aluChain(6);
    em.load(scratch1, AddressMap::heapMetaBase + 8 * cls);

    Chunk chunk;
    auto &fl = heap_.freeLists[payload_bytes];
    if (!fl.empty()) {
        chunk = fl.back();
        fl.pop_back();
        em.load(scratch2, chunk.metaAddr);
        em.store(AddressMap::heapMetaBase + 8 * cls);
    } else {
        chunk.base = heap_.carve(payload_bytes);
        chunk.chunkBytes = payload_bytes;
        chunk.sizeClass = cls;
        chunk.metaAddr = heap_.newMetaAddr();
        em.aluChain(3);
    }
    chunk.payload = chunk.base; // no redzones: tags are the fence
    chunk.size = size;

    // Colour the allocation. Excluding the left neighbour's tag makes
    // every adjacent overflow (linear or jumped) a guaranteed
    // mismatch; the right neighbour is whatever carve/reuse placed
    // there and keeps its own colour.
    std::uint8_t left = granuleTag(chunk.base - granuleBytes);
    std::uint8_t tag = drawTag(left, 0);
    em.aluChain(2); // IRG-style tag insertion arithmetic
    setTagRange(chunk.base, payload_bytes, tag, em);

    memory_.write(chunk.metaAddr, size, 8);
    em.store(chunk.metaAddr, 8);
    em.store(chunk.metaAddr + 8, 8);
    heap_.live[chunk.payload] = chunk;

    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Alloc,
                         heap_.mallocCalls + heap_.freeCalls)) {
        REST_DPRINTF(trace::Flag::Alloc,
                     heap_.mallocCalls + heap_.freeCalls, "mte_alloc",
                     "malloc size=", size, " payload=0x", std::hex,
                     chunk.payload, std::dec, " tag=", unsigned(tag));
    }

    em.alu(isa::regRet, scratch1);
    return chunk.payload | (Addr(tag) << tagShift);
}

void
MteAllocator::free(Addr payload, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.freeCalls;

    const Addr canon = canonical(payload);
    const std::uint8_t ptag = pointerTag(payload);

    em.aluChain(4);
    // The runtime's metadata probe is itself a checked access: a
    // stale pointer (double free, dangling free) carries a tag the
    // re-randomised granule no longer has.
    em.load(scratch1, canon, 8);

    auto it = heap_.live.find(canon);
    if (it == heap_.live.end() || ptag != granuleTag(canon)) {
        em.faultLast(isa::FaultKind::MteTagMismatch);
        return;
    }

    Chunk chunk = it->second;
    heap_.live.erase(it);

    // Re-randomise the payload tags (never back to the old colour):
    // every dangling access now mismatches, until the chunk is
    // recycled and the new colour may — 1 in ~14 — collide with the
    // stale pointer's.
    std::uint8_t fresh = drawTag(ptag, 0);
    std::size_t payload_bytes =
        alignUp(std::max<std::size_t>(chunk.size, 1), granuleBytes);
    setTagRange(canon, payload_bytes, fresh, em);

    em.store(chunk.metaAddr + 8, 8);
    heap_.freeLists[chunk.chunkBytes].push_back(chunk);
}

isa::FaultKind
MteAllocator::checkAccess(Addr ea, unsigned size) const
{
    const std::uint8_t ptag = pointerTag(ea);
    const Addr canon = ea & addrMask;
    const Addr last = canon + (size ? size : 1) - 1;
    for (Addr g = alignDown(canon, granuleBytes);
         g <= alignDown(last, granuleBytes); g += granuleBytes) {
        auto it = tags_.find(g);
        const std::uint8_t mtag = it == tags_.end() ? 0 : it->second;
        if (ptag != mtag)
            return isa::FaultKind::MteTagMismatch;
    }
    return isa::FaultKind::None;
}

} // namespace rest::runtime
