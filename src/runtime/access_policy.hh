/**
 * @file
 * AccessPolicy: the per-access detection predicate of a pointer-based
 * protection scheme (MTE-style tagging, pointer authentication).
 *
 * REST and ASan detect violations through state the emulator already
 * consults inline (the armed-granule set, the shadow). Schemes that
 * carry metadata in pointer bits >= 48 instead need two hooks on the
 * load/store path:
 *   - checkAccess(): validate the (possibly tagged) effective address
 *     before the access — what the hardware tag/PAC check does,
 *   - canonical(): strip the metadata bits so the functional access
 *     (and the address handed to the memory hierarchy) targets the
 *     real 48-bit location.
 *
 * A null policy means the scheme has no pointer-borne metadata and
 * the emulator takes its historical inline path verbatim.
 */

#ifndef REST_RUNTIME_ACCESS_POLICY_HH
#define REST_RUNTIME_ACCESS_POLICY_HH

#include "isa/dyn_op.hh"
#include "util/types.hh"

namespace rest::runtime
{

/** Per-access detection predicate for pointer-tagging schemes. */
class AccessPolicy
{
  public:
    virtual ~AccessPolicy() = default;

    /**
     * Validate one program access at (possibly tagged) address 'ea'.
     * @return the fault this access raises, or FaultKind::None.
     */
    virtual isa::FaultKind checkAccess(Addr ea,
                                       unsigned size) const = 0;

    /** Strip metadata bits: the real 48-bit guest address. */
    virtual Addr canonical(Addr ea) const = 0;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_ACCESS_POLICY_HH
