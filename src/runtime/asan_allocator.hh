/**
 * @file
 * The AddressSanitizer allocator model (paper §II): every allocation
 * is bracketed by shadow-poisoned redzones; frees are poisoned and
 * quarantined so reuse is deferred (temporal protection); metadata
 * lives out of band. The cost — redzone poisoning stores, quarantine
 * management, no fast reuse — is the dominant ASan overhead for
 * allocation-heavy programs (paper Fig. 3).
 */

#ifndef REST_RUNTIME_ASAN_ALLOCATOR_HH
#define REST_RUNTIME_ASAN_ALLOCATOR_HH

#include "mem/guest_memory.hh"
#include "runtime/allocator.hh"
#include "runtime/quarantine.hh"
#include "runtime/shadow_memory.hh"

namespace rest::runtime
{

/** ASan's heap allocator. */
class AsanAllocator : public Allocator
{
  public:
    AsanAllocator(mem::GuestMemory &memory,
                  std::size_t quarantine_budget)
        : memory_(memory), shadow_(memory),
          quarantine_(quarantine_budget)
    {}

    Addr malloc(std::size_t size, OpEmitter &em) override;
    void free(Addr payload, OpEmitter &em) override;

    const char *name() const override { return "asan"; }

    std::size_t
    allocationSize(Addr payload) const override
    {
        auto it = heap_.live.find(payload);
        return it == heap_.live.end() ? 0 : it->second.size;
    }

    std::size_t liveAllocations() const override
    { return heap_.live.size(); }

    /**
     * Redzone size for a payload (a multiple of 8, scaling with the
     * allocation, clamped to [16, 2048] like ASan's policy).
     */
    static std::size_t redzoneBytes(std::size_t payload_size);

    const ShadowMemory &shadow() const { return shadow_; }
    ShadowMemory &shadow() { return shadow_; }
    const Quarantine &quarantine() const { return quarantine_; }
    const HeapState &heapState() const override { return heap_; }

  private:
    void drainQuarantine(OpEmitter &em);

    mem::GuestMemory &memory_;
    ShadowMemory shadow_;
    Quarantine quarantine_;
    HeapState heap_{AddressMap::heapBase, 16};
};

} // namespace rest::runtime

#endif // REST_RUNTIME_ASAN_ALLOCATOR_HH
