/**
 * @file
 * Compile-time instrumentation passes (the "< 1.5 KLoC of LLVM/ASan
 * changes" of the paper, §IV-A).
 *
 * applyScheme() finalises a generator-produced program for one
 * protection scheme:
 *   - assigns the stack-frame layout (plain, ASan redzones, or REST
 *     token redzones with their alignment padding, Fig. 6),
 *   - inserts prologue/epilogue protection code (shadow poisoning for
 *     ASan, arm/disarm for REST),
 *   - under ASan, instruments every program load/store with the
 *     shadow-check sequence,
 *   - resolves symbolic stack-buffer references to frame offsets.
 *
 * Generator-produced functions must be single-exit (one trailing Ret)
 * with branch targets that never point at the Ret; the passes rely on
 * this to splice code without a full CFG rebuild. The contract is no
 * longer implicit: applyScheme() runs the structural checks of
 * analysis/verifier.hh first and rejects violating programs with a
 * fatal error, and debug builds re-verify the full instrumentation
 * invariants (check coverage, arm/disarm pairing, frame layout) on
 * the instrumented output.
 *
 * When SchemeConfig::elideRedundantChecks is set (with
 * asanAccessChecks), the redundant-check elision pass of
 * analysis/elide_checks.hh runs after instrumentation and the number
 * of deleted checks is reported in the summary. hoistLoopChecks and
 * coalesceChecks chain the loop hoisting and window-coalescing
 * optimizers behind it (elide -> hoist -> coalesce); debug builds
 * additionally re-prove every hoist's dominance and availability
 * claims (analysis::verifyHoistedChecks) before coalescing may
 * rewrite the preheader groups.
 */

#ifndef REST_RUNTIME_INSTRUMENTATION_HH
#define REST_RUNTIME_INSTRUMENTATION_HH

#include <cstdint>

#include "isa/program.hh"
#include "runtime/runtime_config.hh"

namespace rest::runtime
{

/** Per-function summary of what a pass did (test/bench support). */
struct InstrumentationSummary
{
    std::uint64_t accessChecksInserted = 0;
    /** Checks deleted again by the redundant-check elision pass. */
    std::uint64_t accessChecksElided = 0;
    /** Checks moved out of loop bodies into preheaders. */
    std::uint64_t accessChecksHoisted = 0;
    /** Checks folded into a widened same-block neighbour. */
    std::uint64_t accessChecksCoalesced = 0;
    std::uint64_t stackPoisonStores = 0;
    std::uint64_t armsInserted = 0;
    std::uint64_t disarmsInserted = 0;
    std::uint64_t padZeroStores = 0;
    std::uint64_t frameBytesTotal = 0;
};

/**
 * Finalise 'program' in place for 'scheme'.
 * @param program generator-produced program (symbolic buffers).
 * @param scheme active protection configuration.
 * @param token_granule REST token width in bytes (alignment of stack
 *        redzones); ignored unless restStackArming.
 * @return summary of inserted instrumentation.
 */
InstrumentationSummary applyScheme(isa::Program &program,
                                   const SchemeConfig &scheme,
                                   unsigned token_granule = 64);

/**
 * The fp-relative offsets of the REST stack redzones of a function,
 * in layout order (used by the emulator-independent layout tests).
 */
std::vector<std::int64_t> restRedzoneOffsets(const isa::Function &fn,
                                             unsigned token_granule);

} // namespace rest::runtime

#endif // REST_RUNTIME_INSTRUMENTATION_HH
