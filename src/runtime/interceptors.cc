#include "runtime/interceptors.hh"

#include <array>

namespace rest::runtime
{

bool
Interceptors::checkRange(Addr addr, std::size_t len, OpEmitter &em)
{
    em.setSource(isa::OpSource::Interceptor);
    // Interceptor preamble: argument marshalling, bounds arithmetic.
    em.aluChain(4);
    for (Addr a = addr; a < addr + len; a += 64) {
        std::size_t span = std::min<std::size_t>(64, addr + len - a);
        em.load(scratch2, ShadowMemory::shadowOf(a), 8);
        em.alu(scratch3, scratch2); // compare/branch over 8 shadow B
        if (!shadow_.accessOk(a, static_cast<unsigned>(span))) {
            em.faultLast(isa::FaultKind::AsanReport);
            return true;
        }
    }
    return false;
}

InterceptResult
Interceptors::memcpy(Addr dst, Addr src, std::size_t len, OpEmitter &em)
{
    InterceptResult res;
    em_perfect_ = em.perfectHw();

    if (scheme_.asanIntercept) {
        if (checkRange(src, len, em) || checkRange(dst, len, em)) {
            res.faulted = true;
            return res;
        }
    }

    // The copy loop itself is plain library code, present under every
    // scheme: 8 bytes per load/store pair, loop overhead per 64 B.
    // Checks see the raw (tagged) pointers; ops and functional memory
    // go through the canonical form.
    em.setSource(isa::OpSource::Program);
    const Addr src_c = canon(src), dst_c = canon(dst);
    std::array<std::uint8_t, 8> buf;
    for (std::size_t i = 0; i < len; i += 8) {
        unsigned span = static_cast<unsigned>(std::min<std::size_t>(
            8, len - i));
        if (i % 64 == 0) {
            em.alu(scratch3, scratch3);
            em.branch(i + 64 < len);
        }
        em.load(scratch2, src_c + i, span);
        if (auto f = faultKindAt(src + i, span);
            f != isa::FaultKind::None) {
            em.faultLast(f);
            res.faulted = true;
            res.bytesDone = i;
            return res;
        }
        em.store(dst_c + i, span, scratch2);
        if (auto f = faultKindAt(dst + i, span);
            f != isa::FaultKind::None) {
            em.faultLast(f);
            res.faulted = true;
            res.bytesDone = i;
            return res;
        }
        memory_.readBytes(src_c + i, {buf.data(), span});
        memory_.writeBytes(dst_c + i, {buf.data(), span});
        res.bytesDone = i + span;
    }
    return res;
}

InterceptResult
Interceptors::memset(Addr dst, std::uint8_t value, std::size_t len,
                     OpEmitter &em)
{
    InterceptResult res;
    em_perfect_ = em.perfectHw();

    if (scheme_.asanIntercept) {
        if (checkRange(dst, len, em)) {
            res.faulted = true;
            return res;
        }
    }

    em.setSource(isa::OpSource::Program);
    const Addr dst_c = canon(dst);
    for (std::size_t i = 0; i < len; i += 8) {
        unsigned span = static_cast<unsigned>(std::min<std::size_t>(
            8, len - i));
        if (i % 64 == 0) {
            em.alu(scratch3, scratch3);
            em.branch(i + 64 < len);
        }
        em.store(dst_c + i, span, scratch2);
        if (auto f = faultKindAt(dst + i, span);
            f != isa::FaultKind::None) {
            em.faultLast(f);
            res.faulted = true;
            res.bytesDone = i;
            return res;
        }
        memory_.fill(dst_c + i, value, span);
        res.bytesDone = i + span;
    }
    return res;
}

InterceptResult
Interceptors::strcpy(Addr dst, Addr src, OpEmitter &em)
{
    InterceptResult res;
    em_perfect_ = em.perfectHw();

    // Functional length (bounded: a lost NUL ends at 64 KiB).
    const Addr src_c = canon(src), dst_c = canon(dst);
    std::size_t len = 0;
    while (len < (64u << 10) && memory_.readByte(src_c + len) != 0)
        ++len;
    std::size_t total = len + 1; // include the NUL

    if (scheme_.asanIntercept) {
        // ASan's interceptor runs strlen (reads, caught by REST too)
        // then validates both ranges before copying.
        em.setSource(isa::OpSource::Interceptor);
        for (std::size_t i = 0; i < total; i += 8) {
            em.load(scratch2, src_c + i, 1);
            if (auto f = faultKindAt(src + i, 1);
                f != isa::FaultKind::None) {
                em.faultLast(f);
                res.faulted = true;
                return res;
            }
        }
        if (checkRange(src, total, em) || checkRange(dst, total, em)) {
            res.faulted = true;
            return res;
        }
    }

    // The copy loop itself: byte-oriented in spirit, word-at-a-time
    // in cost, like real string routines.
    em.setSource(isa::OpSource::Program);
    std::array<std::uint8_t, 8> buf;
    for (std::size_t i = 0; i < total; i += 8) {
        unsigned span = static_cast<unsigned>(std::min<std::size_t>(
            8, total - i));
        if (i % 64 == 0) {
            em.alu(scratch3, scratch3);
            em.branch(i + 64 < total);
        }
        em.load(scratch2, src_c + i, span);
        if (auto f = faultKindAt(src + i, span);
            f != isa::FaultKind::None) {
            em.faultLast(f);
            res.faulted = true;
            res.bytesDone = i;
            return res;
        }
        em.store(dst_c + i, span, scratch2);
        if (auto f = faultKindAt(dst + i, span);
            f != isa::FaultKind::None) {
            em.faultLast(f);
            res.faulted = true;
            res.bytesDone = i;
            return res;
        }
        memory_.readBytes(src_c + i, {buf.data(), span});
        memory_.writeBytes(dst_c + i, {buf.data(), span});
        res.bytesDone = i + span;
    }
    return res;
}

} // namespace rest::runtime
