/**
 * @file
 * MTE-style lock-and-key granule tagging (ARM MTE, SPARC ADI family):
 * every 16-byte heap granule carries a 4-bit tag, malloc colours each
 * allocation with a fresh non-zero tag (never the left neighbour's,
 * so adjacent overflows always mismatch), the returned pointer carries
 * the tag in bits 56..59, and every load/store compares pointer tag
 * against granule tag in hardware. free() re-randomises the payload
 * tags, so dangling accesses mismatch until the chunk is reallocated
 * with — by the 4-bit birthday — a possibly colliding tag: the
 * documented tag-reuse escape.
 *
 * Like REST, no program instrumentation is required: the allocator
 * plus the hardware check protect uninstrumented code. Untagged
 * regions (stack, globals) carry tag 0 and untagged pointers pass —
 * stack overflows are out of scope for heap tagging.
 */

#ifndef REST_RUNTIME_MTE_ALLOCATOR_HH
#define REST_RUNTIME_MTE_ALLOCATOR_HH

#include <mutex>
#include <unordered_map>

#include "mem/guest_memory.hh"
#include "runtime/access_policy.hh"
#include "runtime/allocator.hh"

namespace rest::runtime
{

/** The memory-tagging allocator + its hardware check predicate. */
class MteAllocator : public Allocator, public AccessPolicy
{
  public:
    static constexpr unsigned granuleBytes = 16;
    static constexpr unsigned tagShift = 56;
    static constexpr Addr addrMask = (Addr(1) << 48) - 1;

    MteAllocator(mem::GuestMemory &memory, std::uint64_t seed)
        : memory_(memory), heap_(AddressMap::heapBase, granuleBytes),
          lcg_(seed * 6364136223846793005ull + 1442695040888963407ull)
    {}

    Addr malloc(std::size_t size, OpEmitter &em) override;
    void free(Addr payload, OpEmitter &em) override;

    const char *name() const override { return "mte"; }

    std::size_t
    allocationSize(Addr payload) const override
    {
        auto it = heap_.live.find(payload & addrMask);
        return it == heap_.live.end() ? 0 : it->second.size;
    }

    std::size_t liveAllocations() const override
    { return heap_.live.size(); }

    const HeapState &heapState() const override { return heap_; }

    // ---- AccessPolicy ----
    isa::FaultKind checkAccess(Addr ea, unsigned size) const override;
    Addr canonical(Addr ea) const override { return ea & addrMask; }

    /** Tag of a pointer value (bits 56..59). */
    static std::uint8_t pointerTag(Addr ptr)
    { return (ptr >> tagShift) & 0xf; }

    /** Current tag of the granule containing canonical address 'a'. */
    std::uint8_t
    granuleTag(Addr canon) const
    {
        auto it = tags_.find(alignDown(canon, granuleBytes));
        return it == tags_.end() ? 0 : it->second;
    }

  private:
    /** Draw a non-zero tag different from both exclusions. */
    std::uint8_t drawTag(std::uint8_t exclude_a, std::uint8_t exclude_b);

    /**
     * Retag [canon, canon+bytes) and emit one tag store (the STG
     * analogue: a granule-wide store in the timing stream) per
     * granule.
     */
    void setTagRange(Addr canon, std::size_t bytes, std::uint8_t tag,
                     OpEmitter &em);

    mem::GuestMemory &memory_;
    /** Serialises the malloc/free service paths (free lists, live
     *  map, tag table) for host-threaded callers; see
     *  tests/runtime/allocator_stress_test.cc. */
    std::mutex mu_;
    HeapState heap_;
    std::unordered_map<Addr, std::uint8_t> tags_; ///< by granule base
    std::uint64_t lcg_;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_MTE_ALLOCATOR_HH
