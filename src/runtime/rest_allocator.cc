#include "runtime/rest_allocator.hh"

#include <algorithm>

#include "util/trace.hh"

namespace rest::runtime
{

namespace
{

/**
 * The allocator runs during emulate-ahead, before any cycle exists;
 * trace its events against a pseudo-tick (the running malloc+free call
 * count) so they stay monotone and distinguishable.
 */
Tick
allocTick(const HeapState &heap)
{
    return heap.mallocCalls + heap.freeCalls;
}

} // namespace

std::size_t
RestAllocator::redzoneBytes(std::size_t payload_size) const
{
    const unsigned g = granule();
    std::size_t rz = alignUp(payload_size / 4, g);
    return std::clamp<std::size_t>(rz, g, 2048);
}

void
RestAllocator::armGranule(Addr addr, OpEmitter &em)
{
    em.arm(addr);
    if (!em.perfectHw()) {
        engine_.arm(addr);
        // Architecturally the granule now holds the token value (the
        // hardware defers the write until eviction; observationally
        // equivalent since armed granules fault on access).
        memory_.writeBytes(addr,
                           engine_.configRegister().token().bytes());
    }
}

void
RestAllocator::disarmGranule(Addr addr, OpEmitter &em)
{
    em.disarm(addr);
    if (!em.perfectHw()) {
        auto chk = engine_.disarm(addr);
        rest_assert(chk.ok(),
                    "allocator disarmed an unarmed granule @", addr);
        memory_.fill(addr, 0, granule());
    }
}

Addr
RestAllocator::malloc(std::size_t size, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.mallocCalls;

    const unsigned g = granule();
    std::size_t payload_bytes = alignUp(size, g);
    std::size_t rz = redzoneBytes(size);
    int cls = SizeClassTable::classIndex(payload_bytes + 2 * rz);
    // Exact footprint (no class rounding): the slack of a rounded
    // class must never be armed as redzone.
    std::size_t chunk_bytes = alignUp(payload_bytes + 2 * rz, g);

    // Front-end bookkeeping mirrors the ASan-derived allocator.
    em.aluChain(8);
    em.load(scratch1, AddressMap::heapMetaBase + 8 * cls);

    Chunk chunk;
    auto &fl = heap_.freeLists[chunk_bytes];
    if (!fl.empty()) {
        // Free-pool chunks are zeroed (relaxed invariant): no
        // blacklist-rewriting work is needed for the payload.
        chunk = fl.back();
        fl.pop_back();
        em.load(scratch2, chunk.metaAddr);
        em.store(AddressMap::heapMetaBase + 8 * cls);
    } else {
        chunk.base = heap_.carve(chunk_bytes);
        chunk.chunkBytes = chunk_bytes;
        chunk.sizeClass = cls;
        chunk.metaAddr = heap_.newMetaAddr();
        em.aluChain(3);
    }
    chunk.payload = chunk.base + rz;
    chunk.size = size;

    // Bookend the allocation with token redzones (Fig. 6): one arm
    // per granule on each side. The payload itself is left zeroed.
    for (Addr a = chunk.base; a < chunk.payload; a += g)
        armGranule(a, em);
    Addr right_begin = chunk.payload + payload_bytes;
    Addr chunk_end = chunk.base + chunk_bytes;
    for (Addr a = right_begin; a < chunk_end; a += g)
        armGranule(a, em);

    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Alloc, allocTick(heap_))) {
        std::uint64_t armed = (chunk.payload - chunk.base) / g +
                              (chunk_end - right_begin) / g;
        ts->instant(trace::Flag::Alloc, ts->trackFor("rest_alloc"),
                    "arm_redzone", allocTick(heap_), "granules", armed);
        REST_DPRINTF(trace::Flag::Alloc, allocTick(heap_), "rest_alloc",
                     "malloc size=", size, " payload=0x", std::hex,
                     chunk.payload, std::dec, " rz=", rz, " armed=",
                     armed);
    }

    // Out-of-band metadata record, separated from the data by the
    // redzones themselves.
    memory_.write(chunk.metaAddr, size, 8);
    em.store(chunk.metaAddr, 8);
    em.store(chunk.metaAddr + 8, 8);

    heap_.live[chunk.payload] = chunk;

    // SV-C "Predictability" hardening: periodically drop an armed
    // decoy granule at an unpredictable gap in the heap, so jumping
    // over redzones risks landing on a token.
    if (sprinkleEvery_ && heap_.mallocCalls % sprinkleEvery_ == 0) {
        sprinkleLcg_ = sprinkleLcg_ * 6364136223846793005ull + 1442695040888963407ull;
        std::size_t gap = g * (1 + (sprinkleLcg_ >> 60) % 4);
        Addr decoy = heap_.carve(gap + g) + gap;
        decoy = alignDown(decoy, g);
        armGranule(decoy, em);
        ++decoysArmed_;
    }

    em.alu(isa::regRet, scratch1);
    return chunk.payload;
}

void
RestAllocator::free(Addr payload, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.freeCalls;

    // Metadata lookup: the runtime reads its out-of-band record.
    em.aluChain(6);

    auto it = heap_.live.find(payload);
    if (it == heap_.live.end()) {
        // Double free: the runtime's header probe touches the armed
        // (quarantined) chunk and the hardware faults.
        em.load(scratch1, payload, 8);
        if (!em.perfectHw() && engine_.overlapsArmed(payload, 8))
            em.faultLast(isa::FaultKind::RestTokenAccess);
        return;
    }
    em.load(scratch1, it->second.metaAddr, 8);

    Chunk chunk = it->second;
    heap_.live.erase(it);

    // Fill the freed payload with tokens and quarantine the chunk:
    // dangling-pointer accesses now fault in hardware.
    const unsigned g = granule();
    std::size_t payload_bytes = alignUp(chunk.size, g);
    for (Addr a = chunk.payload; a < chunk.payload + payload_bytes;
         a += g) {
        armGranule(a, em);
    }
    em.store(chunk.metaAddr + 8, 8);
    quarantine_.push(chunk);
    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Alloc, allocTick(heap_))) {
        ts->instant(trace::Flag::Alloc, ts->trackFor("rest_alloc"),
                    "quarantine_push", allocTick(heap_), "bytes",
                    chunk.chunkBytes);
        REST_DPRINTF(trace::Flag::Alloc, allocTick(heap_), "rest_alloc",
                     "free payload=0x", std::hex, payload, std::dec,
                     " quarantined ", chunk.chunkBytes, "B");
    }
    drainQuarantine(em);
}

void
RestAllocator::drainQuarantine(OpEmitter &em)
{
    const unsigned g = granule();
    while (quarantine_.overBudget()) {
        auto chunk = quarantine_.pop();
        if (!chunk)
            break;
        // Disarm every granule of the chunk (redzones + payload);
        // disarm zeroes the memory, establishing the zeroed-free-pool
        // invariant before the chunk becomes reusable.
        std::size_t payload_bytes = alignUp(chunk->size, g);
        Addr payload_end = chunk->payload + payload_bytes;
        for (Addr a = chunk->base; a < chunk->payload; a += g)
            disarmGranule(a, em);
        for (Addr a = chunk->payload; a < payload_end; a += g)
            disarmGranule(a, em);
        for (Addr a = payload_end; a < chunk->base + chunk->chunkBytes;
             a += g) {
            disarmGranule(a, em);
        }
        em.aluChain(3);
        em.store(chunk->metaAddr, 8);
        heap_.freeLists[chunk->chunkBytes].push_back(*chunk);
        if (trace::TraceSink *ts = trace::sink();
            ts && ts->flagOn(trace::Flag::Alloc, allocTick(heap_))) {
            ts->instant(trace::Flag::Alloc, ts->trackFor("rest_alloc"),
                        "quarantine_drain", allocTick(heap_), "bytes",
                        chunk->chunkBytes);
        }
    }
}

} // namespace rest::runtime
