#include "runtime/instrumentation.hh"

#include <vector>

#include "analysis/check_facts.hh"
#include "analysis/coalesce_checks.hh"
#include "analysis/elide_checks.hh"
#include "analysis/hoist_checks.hh"
#include "analysis/verifier.hh"
#include "runtime/shadow_memory.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace rest::runtime
{

namespace
{

using isa::Function;
using isa::Inst;
using isa::Opcode;
using isa::RegId;

// Scratch registers of injected code. Aliased from the analysis
// layer's contract so the check-sequence pattern matcher
// (analysis/check_facts.hh) and the emitted code agree by
// construction.
constexpr RegId rScratchA = analysis::rCheckScratchA;
constexpr RegId rScratchB = analysis::rCheckScratchB;

/** One protected region of the frame that needs poisoning/arming. */
struct Redzone
{
    std::int64_t offset;
    unsigned size;
    std::uint8_t poison;
};

struct Layout
{
    std::int64_t frameSize = 0;
    std::vector<Redzone> redzones;
};

/** Packed layout: no redzones (plain and heap-only schemes). */
Layout
layoutPlain(Function &fn)
{
    Layout lay;
    std::int64_t cum = 0;
    for (auto &buf : fn.bufs) {
        buf.offset = cum;
        cum += static_cast<std::int64_t>(alignUp(buf.size, 16));
    }
    lay.frameSize = static_cast<std::int64_t>(
        alignUp(static_cast<Addr>(cum) + 64, 64));
    return lay;
}

/**
 * ASan layout: each vulnerable buffer gets a 32-byte left redzone;
 * one extra right redzone closes the group (redzones between buffers
 * are shared).
 */
Layout
layoutAsan(Function &fn)
{
    Layout lay;
    std::int64_t cum = 0;
    // Non-vulnerable variables pack first, uninstrumented.
    for (auto &buf : fn.bufs) {
        if (!buf.vulnerable) {
            buf.offset = cum;
            cum += static_cast<std::int64_t>(alignUp(buf.size, 16));
        }
    }
    cum = static_cast<std::int64_t>(alignUp(static_cast<Addr>(cum), 32));
    bool any = false;
    for (auto &buf : fn.bufs) {
        if (!buf.vulnerable)
            continue;
        any = true;
        lay.redzones.push_back({cum, 32, shadow_poison::stackLeftRz});
        cum += 32;
        buf.offset = cum;
        cum += static_cast<std::int64_t>(alignUp(buf.size, 32));
    }
    if (any) {
        lay.redzones.push_back({cum, 32, shadow_poison::stackRightRz});
        cum += 32;
    }
    lay.frameSize = static_cast<std::int64_t>(
        alignUp(static_cast<Addr>(cum) + 64, 64));
    return lay;
}

/**
 * REST layout (Fig. 6): token-granule redzones around each vulnerable
 * buffer, with the buffer padded up to the granule (the pad is the
 * §V-C false-negative gap).
 */
Layout
layoutRest(Function &fn, unsigned g)
{
    Layout lay;
    std::int64_t cum = 0;
    for (auto &buf : fn.bufs) {
        if (!buf.vulnerable) {
            buf.offset = cum;
            cum += static_cast<std::int64_t>(alignUp(buf.size, 16));
        }
    }
    cum = static_cast<std::int64_t>(alignUp(static_cast<Addr>(cum), g));
    bool prev_protected = false;
    for (auto &buf : fn.bufs) {
        if (!buf.vulnerable)
            continue;
        // Left redzone (shared with the previous buffer's right one
        // only in the sense that they are adjacent granules).
        if (!prev_protected) {
            lay.redzones.push_back({cum, g, 0});
            cum += g;
        }
        buf.offset = cum;
        cum += static_cast<std::int64_t>(alignUp(buf.size, g)); // + pad
        lay.redzones.push_back({cum, g, 0});
        cum += g;
        prev_protected = true;
    }
    lay.frameSize = static_cast<std::int64_t>(
        alignUp(static_cast<Addr>(cum) + 64, 64));
    return lay;
}

/** Emit ASan shadow poisoning of one frame region (32B granularity). */
/** Tag instructions [from, end) with an attribution source. */
void
tagFrom(std::vector<Inst> &out, std::size_t from, isa::OpSource tag)
{
    for (std::size_t i = from; i < out.size(); ++i)
        out[i].tag = tag;
}

void
emitPoison(std::vector<Inst> &out, std::int64_t offset, unsigned size,
           std::uint8_t poison, InstrumentationSummary &sum)
{
    std::size_t from = out.size();
    std::uint32_t pattern = poison
        ? (poison | (poison << 8) | (poison << 16) |
           (std::uint32_t(poison) << 24))
        : 0;
    out.push_back({Opcode::AddI, rScratchB, isa::regFp, isa::noReg, 8,
                   offset, -1, -1});
    out.push_back({Opcode::ShrI, rScratchB, rScratchB, isa::noReg, 8,
                   3, -1, -1});
    out.push_back({Opcode::AddI, rScratchB, rScratchB, isa::noReg, 8,
                   static_cast<std::int64_t>(AddressMap::shadowBase),
                   -1, -1});
    out.push_back({Opcode::MovImm, rScratchA, isa::noReg, isa::noReg, 8,
                   pattern, -1, -1});
    for (unsigned off = 0; off < size; off += 32) {
        // One 4-byte shadow store covers 32 application bytes.
        out.push_back({Opcode::Store, isa::noReg, rScratchB, rScratchA,
                       4, off / 8, -1, -1});
        ++sum.stackPoisonStores;
    }
    tagFrom(out, from, isa::OpSource::StackSetup);
}

/** Emit REST arms or disarms for one redzone's granules. */
void
emitArmRegion(std::vector<Inst> &out, std::int64_t offset, unsigned size,
              unsigned g, bool is_arm, InstrumentationSummary &sum)
{
    std::size_t from = out.size();
    for (unsigned off = 0; off < size; off += g) {
        out.push_back({Opcode::AddI, rScratchA, isa::regFp, isa::noReg,
                       8, offset + off, -1, -1});
        out.push_back({is_arm ? Opcode::Arm : Opcode::Disarm,
                       isa::noReg, rScratchA, isa::noReg, 8, 0, -1, -1});
        if (is_arm)
            ++sum.armsInserted;
        else
            ++sum.disarmsInserted;
    }
    tagFrom(out, from, isa::OpSource::StackSetup);
}

/** Emit the 5-op ASan shadow-check sequence for one access. */
void
emitAccessCheck(std::vector<Inst> &out, const Inst &access,
                InstrumentationSummary &sum)
{
    std::size_t from = out.size();
    out.push_back({Opcode::AddI, rScratchB, access.rs1, isa::noReg, 8,
                   access.imm, -1, -1});
    out.push_back({Opcode::ShrI, rScratchA, rScratchB, isa::noReg, 8,
                   3, -1, -1});
    out.push_back({Opcode::AddI, rScratchA, rScratchA, isa::noReg, 8,
                   static_cast<std::int64_t>(AddressMap::shadowBase),
                   -1, -1});
    out.push_back({Opcode::Load, rScratchA, rScratchA, isa::noReg, 1,
                   0, -1, -1});
    out.push_back({Opcode::AsanCheck, isa::noReg, rScratchA, rScratchB,
                   access.width, 0, -1, -1});
    ++sum.accessChecksInserted;
    tagFrom(out, from, isa::OpSource::AccessCheck);
}

void
instrumentFunction(Function &fn, const SchemeConfig &scheme, unsigned g,
                   InstrumentationSummary &sum)
{
    // 1. Frame layout.
    Layout lay;
    if (scheme.restStackArming)
        lay = layoutRest(fn, g);
    else if (scheme.asanStackSetup)
        lay = layoutAsan(fn);
    else
        lay = layoutPlain(fn);
    fn.frameSize = lay.frameSize;
    sum.frameBytesTotal += static_cast<std::uint64_t>(lay.frameSize);

    rest_assert(!fn.insts.empty(), "empty function ", fn.name);
    Opcode last_op = fn.insts.back().op;
    rest_assert(last_op == Opcode::Ret || last_op == Opcode::Halt,
                "function ", fn.name, " must end in ret/halt");

    // 2. Prologue.
    std::vector<Inst> out;
    out.push_back({Opcode::AddI, isa::regSp, isa::regSp, isa::noReg, 8,
                   -lay.frameSize, -1, -1});
    out.push_back({Opcode::Mov, isa::regFp, isa::regSp, isa::noReg, 8,
                   0, -1, -1});
    if (scheme.restStackArming) {
        for (const auto &rz : lay.redzones)
            emitArmRegion(out, rz.offset, rz.size, g, true, sum);
        if (scheme.zeroStackPadding) {
            // SV-C: zero the pad between each buffer and its right
            // redzone so stale stack data cannot leak through it.
            std::size_t from = out.size();
            for (const auto &buf : fn.bufs) {
                if (!buf.vulnerable)
                    continue;
                std::int64_t pad_begin = buf.offset +
                    static_cast<std::int64_t>(alignDown(buf.size, 8));
                std::int64_t pad_end = buf.offset +
                    static_cast<std::int64_t>(alignUp(buf.size, g));
                for (std::int64_t off = pad_begin; off < pad_end;
                     off += 8) {
                    out.push_back({Opcode::Store, isa::noReg,
                                   isa::regFp, isa::regZero, 8, off,
                                   -1, -1});
                    ++sum.padZeroStores;
                }
            }
            tagFrom(out, from, isa::OpSource::StackSetup);
        }
    } else if (scheme.asanStackSetup) {
        for (const auto &rz : lay.redzones)
            emitPoison(out, rz.offset, rz.size, rz.poison, sum);
    }

    // 3. Body with target remapping and optional access checks.
    std::vector<int> map(fn.insts.size(), -1);
    for (std::size_t i = 0; i + 1 < fn.insts.size(); ++i) {
        Inst inst = fn.insts[i];
        map[i] = static_cast<int>(out.size());
        // Resolve symbolic stack-buffer references.
        if (inst.bufId >= 0) {
            inst.imm += fn.bufs.at(inst.bufId).offset;
            inst.bufId = -1;
        }
        if (scheme.asanAccessChecks &&
            (inst.op == Opcode::Load || inst.op == Opcode::Store)) {
            emitAccessCheck(out, inst, sum);
        }
        out.push_back(inst);
    }

    // 4. Epilogue before the trailing Ret/Halt.
    if (scheme.restStackArming) {
        for (const auto &rz : lay.redzones)
            emitArmRegion(out, rz.offset, rz.size, g, false, sum);
    } else if (scheme.asanStackSetup && !lay.redzones.empty()) {
        // Unpoison the whole protected span of the frame.
        std::int64_t begin = lay.redzones.front().offset;
        std::int64_t end = lay.redzones.back().offset +
            lay.redzones.back().size;
        emitPoison(out, begin, static_cast<unsigned>(end - begin), 0,
                   sum);
    }
    out.push_back({Opcode::AddI, isa::regSp, isa::regSp, isa::noReg, 8,
                   lay.frameSize, -1, -1});
    map[fn.insts.size() - 1] = static_cast<int>(out.size());
    out.push_back(fn.insts.back()); // Ret or Halt

    // 5. Remap intra-function branch targets (Call targets index
    // functions, not instructions, and stay untouched).
    for (auto &inst : out) {
        if (inst.target >= 0 && inst.op != Opcode::Call) {
            rest_assert(static_cast<std::size_t>(inst.target) <
                            map.size() && map[inst.target] >= 0,
                        "branch into unmapped slot in ", fn.name);
            inst.target = map[inst.target];
        }
    }
    fn.insts = std::move(out);
}

} // namespace

InstrumentationSummary
applyScheme(isa::Program &program, const SchemeConfig &scheme,
            unsigned token_granule)
{
    // Reject programs that violate the structural single-exit /
    // branch-target contract before splicing anything: the passes
    // below would silently corrupt such programs.
    auto contract = analysis::verifyGeneratorContract(program);
    if (!contract.empty()) {
        rest_fatal("applyScheme(", scheme.name(), "): program violates "
                   "the instrumentation contract:\n",
                   analysis::formatDiagnostics(contract));
    }

    InstrumentationSummary sum;
    for (std::size_t fi = 0; fi < program.funcs.size(); ++fi) {
        auto &fn = program.funcs[fi];
        instrumentFunction(fn, scheme, token_granule, sum);
        if (scheme.asanAccessChecks && scheme.elideRedundantChecks)
            sum.accessChecksElided +=
                analysis::elideRedundantChecks(fn);
        if (scheme.asanAccessChecks && scheme.hoistLoopChecks) {
            analysis::HoistResult hoist =
                analysis::hoistLoopChecks(fn);
            sum.accessChecksHoisted += hoist.hoisted;
#ifndef NDEBUG
            // Re-prove the hoists on the transformed function before
            // coalescing may rewrite the preheader groups.
            auto hdiags = analysis::verifyHoistedChecks(
                fn, fi, hoist.records);
            rest_assert(hdiags.empty(),
                        "hoisted checks failed verification under ",
                        scheme.name(), ":\n",
                        analysis::formatDiagnostics(hdiags));
#endif
        }
        if (scheme.asanAccessChecks && scheme.coalesceChecks) {
            // Keep fault kinds byte-identical: merging across a
            // program access is only unobservable when that access
            // can never raise a REST token fault.
            analysis::CoalesceOptions co;
            co.acrossAccesses = scheme.allocator != AllocatorKind::Rest
                && !scheme.restStackArming;
            sum.accessChecksCoalesced +=
                analysis::coalesceChecks(fn, co);
        }
    }

#ifndef NDEBUG
    // Debug builds re-verify the full instrumentation invariants on
    // the finished output (also with elision applied, so a missing
    // dominating check would surface here as UncheckedAccess).
    analysis::VerifyOptions vo;
    vo.expectAsanChecks = scheme.asanAccessChecks;
    vo.expectArming = scheme.restStackArming;
    vo.tokenGranule = token_granule;
    auto diags = analysis::verify(program, vo);
    rest_assert(diags.empty(),
                "instrumented program failed verification under ",
                scheme.name(), ":\n",
                analysis::formatDiagnostics(diags));
#endif
    return sum;
}

std::vector<std::int64_t>
restRedzoneOffsets(const isa::Function &fn, unsigned token_granule)
{
    // Recompute the layout on a copy to report redzone offsets.
    isa::Function copy = fn;
    Layout lay = layoutRest(copy, token_granule);
    std::vector<std::int64_t> offsets;
    for (const auto &rz : lay.redzones)
        offsets.push_back(rz.offset);
    return offsets;
}

} // namespace rest::runtime
