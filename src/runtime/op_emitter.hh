/**
 * @file
 * OpEmitter: how runtime services (allocators, interceptors) inject
 * their work into the dynamic op stream.
 *
 * The paper's runtime components are real machine code; their cost is
 * the instructions they execute. Our runtime models are C++ objects,
 * so each service call emits an equivalent dynamic instruction
 * sequence — with genuine register dependencies, memory addresses and
 * PCs — that the timing models execute like any other code. Scratch
 * registers r16..r27 are reserved for runtime sequences so injected
 * code interacts with program code only through memory and r28 (the
 * return-value register), exactly like a calling convention.
 */

#ifndef REST_RUNTIME_OP_EMITTER_HH
#define REST_RUNTIME_OP_EMITTER_HH


#include "isa/dyn_op.hh"
#include "runtime/runtime_config.hh"

namespace rest::runtime
{

/** First scratch register available to injected sequences. */
inline constexpr isa::RegId scratch0 = 16;
inline constexpr isa::RegId scratch1 = 17;
inline constexpr isa::RegId scratch2 = 18;
inline constexpr isa::RegId scratch3 = 19;

/** Builder for injected dynamic-op sequences. */
class OpEmitter
{
  public:
    /**
     * @param queue destination op queue (owned by the emulator).
     * @param pc_base synthetic text address of the emitting service,
     *        so the I-cache and branch predictor see stable PCs.
     * @param perfect_hw when true, arm/disarm emit as plain stores
     *        (the PerfectHW limit study).
     */
    OpEmitter(isa::OpQueue &queue, Addr pc_base,
              bool perfect_hw)
        : queue_(queue), pcBase_(pc_base), perfectHw_(perfect_hw)
    {}

    /** Set the attribution source for subsequently emitted ops. */
    void setSource(isa::OpSource s) { source_ = s; }
    isa::OpSource source() const { return source_; }

    /** Emit a 1-cycle ALU op writing rd from rs1/rs2. */
    void
    alu(isa::RegId rd, isa::RegId rs1 = isa::noReg,
        isa::RegId rs2 = isa::noReg)
    {
        push(isa::Opcode::AddI, rd, rs1, rs2);
    }

    /** Emit 'n' dependent ALU ops on a scratch register (fixed work). */
    void
    aluChain(unsigned n, isa::RegId reg = scratch3)
    {
        for (unsigned i = 0; i < n; ++i)
            push(isa::Opcode::AddI, reg, reg, isa::noReg);
    }

    /** Emit a load of 'size' bytes at 'addr' into rd. */
    void
    load(isa::RegId rd, Addr addr, unsigned size = 8,
         isa::RegId addr_reg = scratch0)
    {
        push(isa::Opcode::Load, rd, addr_reg, isa::noReg, addr, size);
    }

    /** Emit a store of 'size' bytes at 'addr' from rs. */
    void
    store(Addr addr, unsigned size = 8, isa::RegId rs = scratch1,
          isa::RegId addr_reg = scratch0)
    {
        push(isa::Opcode::Store, isa::noReg, addr_reg, rs, addr, size);
    }

    /**
     * Emit an arm of the granule at 'addr' (or a plain store under
     * PerfectHW). The caller is responsible for the architectural
     * effect (RestEngine update + token bytes in memory).
     */
    void
    arm(Addr addr)
    {
        if (perfectHw_)
            push(isa::Opcode::Store, isa::noReg, scratch0, scratch1,
                 addr, 8);
        else
            push(isa::Opcode::Arm, isa::noReg, scratch0, isa::noReg,
                 addr, 0);
    }

    /** Emit a disarm of the granule at 'addr' (store under PerfectHW). */
    void
    disarm(Addr addr)
    {
        if (perfectHw_)
            push(isa::Opcode::Store, isa::noReg, scratch0, scratch1,
                 addr, 8);
        else
            push(isa::Opcode::Disarm, isa::noReg, scratch0, isa::noReg,
                 addr, 0);
    }

    /** Emit a conditional-branch op (loop backedge of a service). */
    void
    branch(bool taken)
    {
        isa::DynOp op = make(isa::Opcode::Bne, isa::noReg, scratch3,
                             isa::noReg);
        op.isBranch = true;
        op.taken = taken;
        queue_.push_back(op);
    }

    /** Mark the most recently emitted op as faulting. */
    void
    faultLast(isa::FaultKind kind)
    {
        if (!queue_.empty())
            queue_.back().fault = kind;
    }

    bool perfectHw() const { return perfectHw_; }

  private:
    isa::DynOp
    make(isa::Opcode opc, isa::RegId rd, isa::RegId rs1, isa::RegId rs2,
         Addr eaddr = invalidAddr, unsigned size = 0)
    {
        isa::DynOp op;
        op.op = opc;
        op.cls = isa::opClassOf(opc);
        op.source = source_;
        op.rd = rd;
        op.rs1 = rs1;
        op.rs2 = rs2;
        op.eaddr = eaddr;
        op.size = static_cast<std::uint8_t>(size);
        // Cycle through a small synthetic code footprint so the
        // I-cache sees a realistic (hot) runtime text region.
        op.pc = pcBase_ + (pcCursor_++ % 64) * 4;
        return op;
    }

    void
    push(isa::Opcode opc, isa::RegId rd, isa::RegId rs1,
         isa::RegId rs2 = isa::noReg, Addr eaddr = invalidAddr,
         unsigned size = 0)
    {
        queue_.push_back(make(opc, rd, rs1, rs2, eaddr, size));
    }

    isa::OpQueue &queue_;
    Addr pcBase_;
    bool perfectHw_;
    isa::OpSource source_ = isa::OpSource::Allocator;
    std::uint64_t pcCursor_ = 0;
};

} // namespace rest::runtime

#endif // REST_RUNTIME_OP_EMITTER_HH
