#include "runtime/pauth_allocator.hh"

#include <algorithm>

namespace rest::runtime
{

namespace
{

/** 64-bit finalising mix (murmur3 fmix64). */
std::uint64_t
fmix64(std::uint64_t h)
{
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

} // namespace

std::uint16_t
PauthAllocator::sign(Addr canon)
{
    // QARMA stand-in: keyed hash of (address, generation). A fresh
    // generation per signing means a recycled payload address never
    // reuses its revoked signature.
    for (;;) {
        ++generation_;
        auto pac = static_cast<std::uint16_t>(
            fmix64(canon ^ key_ ^
                   generation_ * 0x9e3779b97f4a7c15ull) >> 48);
        if (pac != 0 && !liveSigs_.count(pac))
            return pac;
    }
}

Addr
PauthAllocator::malloc(std::size_t size, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.mallocCalls;

    std::size_t payload_bytes =
        alignUp(std::max<std::size_t>(size, 1), 16);
    int cls = SizeClassTable::classIndex(payload_bytes);

    em.aluChain(5);
    em.load(scratch1, AddressMap::heapMetaBase + 8 * cls);

    Chunk chunk;
    auto &fl = heap_.freeLists[payload_bytes];
    if (!fl.empty()) {
        chunk = fl.back();
        fl.pop_back();
        em.load(scratch2, chunk.metaAddr);
        em.store(AddressMap::heapMetaBase + 8 * cls);
    } else {
        chunk.base = heap_.carve(payload_bytes);
        chunk.chunkBytes = payload_bytes;
        chunk.sizeClass = cls;
        chunk.metaAddr = heap_.newMetaAddr();
        em.aluChain(3);
    }
    chunk.payload = chunk.base;
    chunk.size = size;

    const std::uint16_t pac = sign(chunk.payload);
    ++liveSigs_[pac];
    sigByPayload_[chunk.payload] = pac;
    em.aluChain(2); // the PACGA-style signing arithmetic

    memory_.write(chunk.metaAddr, size, 8);
    em.store(chunk.metaAddr, 8);
    em.store(chunk.metaAddr + 8, 8);
    heap_.live[chunk.payload] = chunk;

    em.alu(isa::regRet, scratch1);
    return chunk.payload | (Addr(pac) << pacShift);
}

void
PauthAllocator::free(Addr payload, OpEmitter &em)
{
    std::lock_guard<std::mutex> lock(mu_);
    em.setSource(isa::OpSource::Allocator);
    ++heap_.freeCalls;

    const Addr canon = canonical(payload);
    const std::uint16_t pac = pointerPac(payload);

    em.aluChain(4);
    em.load(scratch1, canon, 8);

    auto it = heap_.live.find(canon);
    auto sig = sigByPayload_.find(canon);
    if (it == heap_.live.end() || pac == 0 ||
        sig == sigByPayload_.end() || sig->second != pac) {
        // Double free or forged pointer: the free gadget itself
        // authenticates its argument and traps.
        em.faultLast(isa::FaultKind::PauthCheckFailed);
        return;
    }

    // Revoke the signature: every dangling copy of this pointer now
    // fails authentication, recycled or not.
    auto live_sig = liveSigs_.find(pac);
    if (live_sig != liveSigs_.end() && --live_sig->second == 0)
        liveSigs_.erase(live_sig);
    sigByPayload_.erase(sig);

    Chunk chunk = it->second;
    heap_.live.erase(it);
    em.aluChain(2); // the AUT + strip arithmetic
    em.store(chunk.metaAddr + 8, 8);
    heap_.freeLists[chunk.chunkBytes].push_back(chunk);
}

isa::FaultKind
PauthAllocator::checkAccess(Addr ea, unsigned size) const
{
    (void)size;
    const std::uint16_t pac = pointerPac(ea);
    const Addr canon = ea & addrMask;
    if (pac == 0) {
        // Unsigned pointer: fine anywhere except into signed heap
        // data (a stripped/forged heap pointer).
        return inHeapData(canon) ? isa::FaultKind::PauthCheckFailed
                                 : isa::FaultKind::None;
    }
    return liveSigs_.count(pac) ? isa::FaultKind::None
                                : isa::FaultKind::PauthCheckFailed;
}

} // namespace rest::runtime
