#include "runtime/asan_allocator.hh"

#include <algorithm>

#include "util/trace.hh"

namespace rest::runtime
{

namespace
{

/** Emulate-ahead pseudo-tick (see rest_allocator.cc). */
Tick
allocTick(const HeapState &heap)
{
    return heap.mallocCalls + heap.freeCalls;
}

/**
 * ASan records a malloc/free stack trace with every allocator event
 * (malloc_context_size defaults to 30 frames): a serial frame-pointer
 * walk — each load depends on the previous one — plus storing the
 * trace into the metadata record.
 */
void
captureStackTrace(OpEmitter &em, Addr meta_addr)
{
    constexpr unsigned frames = 24;
    for (unsigned k = 0; k < frames; ++k) {
        // Dependent chain: the next frame pointer comes from the
        // current frame.
        em.load(scratch2, AddressMap::stackTop - 64 - 16 * k, 8,
                scratch2);
        em.alu(scratch3, scratch2);
    }
    for (unsigned k = 0; k < frames / 8; ++k)
        em.store(meta_addr + 16 + 8 * k, 8);
}

} // namespace

std::size_t
AsanAllocator::redzoneBytes(std::size_t payload_size)
{
    std::size_t rz = alignUp(payload_size / 4, 8);
    return std::clamp<std::size_t>(rz, 16, 2048);
}

Addr
AsanAllocator::malloc(std::size_t size, OpEmitter &em)
{
    em.setSource(isa::OpSource::Allocator);
    ++heap_.mallocCalls;

    std::size_t payload_bytes = alignUp(size, 8);
    std::size_t rz = redzoneBytes(size);
    int cls = SizeClassTable::classIndex(payload_bytes + 2 * rz);
    // Exact footprint (no class rounding): the slack of a rounded
    // class must never be poisoned as redzone.
    std::size_t chunk_bytes = alignUp(payload_bytes + 2 * rz, 16);

    // Size-class dispatch, freelist inspection, stats update: ASan's
    // allocator front end is noticeably heavier than libc's.
    em.aluChain(8);
    em.load(scratch1, AddressMap::heapMetaBase + 8 * cls);

    Chunk chunk;
    auto &fl = heap_.freeLists[chunk_bytes];
    if (!fl.empty()) {
        chunk = fl.back();
        fl.pop_back();
        em.load(scratch2, chunk.metaAddr);
        em.store(AddressMap::heapMetaBase + 8 * cls);
    } else {
        chunk.base = heap_.carve(chunk_bytes);
        chunk.chunkBytes = chunk_bytes;
        chunk.sizeClass = cls;
        chunk.metaAddr = heap_.newMetaAddr();
        em.aluChain(3);
    }
    chunk.payload = chunk.base + rz;
    chunk.size = size;

    // Poison both redzones, unpoison the payload (shadow stores).
    shadow_.poison(chunk.base, rz, shadow_poison::heapLeftRz, &em);
    shadow_.unpoison(chunk.payload, size, &em);
    shadow_.poison(chunk.payload + payload_bytes,
                   chunk.base + chunk_bytes - (chunk.payload +
                                               payload_bytes),
                   shadow_poison::heapRightRz, &em);

    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Shadow, allocTick(heap_))) {
        ts->instant(trace::Flag::Shadow, ts->trackFor("asan_shadow"),
                    "shadow_poison_rz", allocTick(heap_), "bytes",
                    chunk_bytes - payload_bytes);
        REST_DPRINTF(trace::Flag::Shadow, allocTick(heap_),
                     "asan_shadow", "malloc size=", size,
                     " payload=0x", std::hex, chunk.payload, std::dec,
                     " rz=", rz);
    }

    // Out-of-band metadata record (size, alloc stack trace).
    memory_.write(chunk.metaAddr, size, 8);
    em.store(chunk.metaAddr, 8);
    em.store(chunk.metaAddr + 8, 8);
    captureStackTrace(em, chunk.metaAddr);

    heap_.live[chunk.payload] = chunk;
    em.alu(isa::regRet, scratch1);
    return chunk.payload;
}

void
AsanAllocator::free(Addr payload, OpEmitter &em)
{
    em.setSource(isa::OpSource::Allocator);
    ++heap_.freeCalls;

    // Metadata lookup + shadow state inspection.
    em.aluChain(6);
    em.load(scratch1, ShadowMemory::shadowOf(payload), 1);

    auto it = heap_.live.find(payload);
    if (it == heap_.live.end()) {
        // Double free / invalid free: ASan's runtime detects this
        // from the shadow state and reports.
        em.faultLast(isa::FaultKind::AsanReport);
        return;
    }

    Chunk chunk = it->second;
    heap_.live.erase(it);

    // Poison the whole payload as freed and quarantine the chunk.
    shadow_.poison(chunk.payload, alignUp(chunk.size, 8),
                   shadow_poison::heapFreed, &em);
    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Shadow, allocTick(heap_))) {
        ts->instant(trace::Flag::Shadow, ts->trackFor("asan_shadow"),
                    "shadow_poison_freed", allocTick(heap_), "bytes",
                    alignUp(chunk.size, 8));
    }
    em.store(chunk.metaAddr + 8, 8); // record free stack trace
    captureStackTrace(em, chunk.metaAddr);
    quarantine_.push(chunk);
    drainQuarantine(em);
}

void
AsanAllocator::drainQuarantine(OpEmitter &em)
{
    while (quarantine_.overBudget()) {
        auto chunk = quarantine_.pop();
        if (!chunk)
            break;
        // Return to the free pool; shadow remains poisoned until the
        // next malloc of this chunk rewrites it (ASan's invariant
        // that pooled memory stays blacklisted).
        em.aluChain(3);
        em.store(chunk->metaAddr, 8);
        heap_.freeLists[chunk->chunkBytes].push_back(*chunk);
    }
}

} // namespace rest::runtime
