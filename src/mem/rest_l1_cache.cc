#include "mem/rest_l1_cache.hh"

#include <array>

#include "util/logging.hh"
#include "util/trace.hh"

namespace rest::mem
{

RestL1Cache::RestL1Cache(const CacheConfig &cfg, MemoryDevice &below,
                         GuestMemory &memory,
                         const core::TokenConfigRegister &tcr)
    : Cache(cfg, below), memory_(memory), detector_(memory, tcr),
      tcr_(tcr),
      tokenFills_(stats_.addScalar("token_fills",
          "line fills in which the detector found a token")),
      tokenEvictions_(stats_.addScalar("token_evictions",
          "evictions of lines with token bits set")),
      armHits_(stats_.addScalar("arm_hits", "arm ops that hit")),
      armMisses_(stats_.addScalar("arm_misses", "arm ops that missed")),
      disarmOps_(stats_.addScalar("disarm_ops", "disarm ops executed")),
      tokenViolations_(stats_.addScalar("token_violations",
          "accesses that touched a token granule")),
      tokenCoherenceFlushes_(stats_.addScalar("token_coherence_flushes",
          "remote-read snoops that flushed deferred token values"))
{
}

std::uint8_t
RestL1Cache::coverMask(Addr addr, unsigned size) const
{
    const unsigned g = tcr_.granule();
    const unsigned first = detector_.granuleIndex(addr, blockSize_);
    const unsigned last =
        detector_.granuleIndex(addr + size - 1, blockSize_);
    std::uint8_t mask = 0;
    for (unsigned i = first; i <= last; ++i)
        mask |= static_cast<std::uint8_t>(1u << i);
    (void)g;
    return mask;
}

std::pair<Cache::Line *, Cycles>
RestL1Cache::ensureLine(Addr addr, bool is_write, Cycles now)
{
    if (Line *line = findLine(addr)) {
        lastHit_ = true;
        ++hits_;
        line->lastUsed = ++useCounter_;
        if (is_write)
            coherenceWriteHit(*line, lineAddr(addr), now);
        if (line->readyAt > now) {
            ++mshrMerges_;
            return {line, line->readyAt};
        }
        return {line, now + cfg_.latency};
    }
    lastHit_ = false;
    ++misses_;
    Mesi fill_state = coherenceMissSnoop(lineAddr(addr), is_write, now);
    Cycles ready = resolveMiss(lineAddr(addr), now);
    Line &line = fillLine(addr, ready);
    line.readyAt = ready;
    line.mesi = fill_state;
    return {&line, ready};
}

RestAccess
RestL1Cache::loadAccess(Addr addr, unsigned size, Cycles now)
{
    auto [line, ready] = ensureLine(addr, false, now);
    RestAccess res;
    res.hit = lastHit_;
    res.completeAt = ready;
    if (line->tokenBits & coverMask(addr, size)) {
        ++tokenViolations_;
        res.violation = core::ViolationKind::TokenAccess;
        traceViolation("load", addr, ready);
    }
    return res;
}

RestAccess
RestL1Cache::storeAccess(Addr addr, unsigned size, Cycles now)
{
    auto [line, ready] = ensureLine(addr, true, now);
    RestAccess res;
    res.hit = lastHit_;
    res.completeAt = ready;
    if (line->tokenBits & coverMask(addr, size)) {
        ++tokenViolations_;
        res.violation = core::ViolationKind::TokenAccess;
        traceViolation("store", addr, ready);
        return res;
    }
    line->dirty = true;
    return res;
}

void
RestL1Cache::traceViolation(const char *kind, Addr addr, Cycles now)
{
    trace::TraceSink *ts = trace::sink();
    if (!ts || !ts->flagOn(trace::Flag::TokenDetect, now))
        return;
    ts->instant(trace::Flag::TokenDetect, ts->trackFor(stats_.name()),
                "token_violation", now, "addr", addr);
    ts->message(now, stats_.name().c_str(),
                trace::detail::traceConcat(
                    kind, " hit armed granule addr=0x", std::hex, addr,
                    std::dec));
}

RestAccess
RestL1Cache::armAccess(Addr addr, Cycles now)
{
    rest_assert(isAligned(addr, tcr_.granule()),
                "arm address must be granule-aligned at the cache");
    auto [line, ready] = ensureLine(addr, true, now);
    RestAccess res;
    res.hit = lastHit_;
    if (res.hit)
        ++armHits_;
    else
        ++armMisses_;
    // Setting the token bit completes in a single cycle on a hit: the
    // token value itself is not written until eviction (paper §III-B).
    line->tokenBits |= coverMask(addr, 1);
    line->dirty = true;
    res.completeAt = ready;
    return res;
}

RestAccess
RestL1Cache::disarmAccess(Addr addr, Cycles now)
{
    rest_assert(isAligned(addr, tcr_.granule()),
                "disarm address must be granule-aligned at the cache");
    auto [line, ready] = ensureLine(addr, true, now);
    RestAccess res;
    res.hit = lastHit_;
    ++disarmOps_;
    std::uint8_t mask = coverMask(addr, 1);
    if (!(line->tokenBits & mask)) {
        res.violation = core::ViolationKind::DisarmUnarmed;
        res.completeAt = ready;
        return res;
    }
    // Clear the granule: involves all data banks, one extra cycle.
    line->tokenBits &= static_cast<std::uint8_t>(~mask);
    line->dirty = true;
    memory_.fill(addr, 0, tcr_.granule());
    res.completeAt = ready + 1;
    return res;
}

bool
RestL1Cache::tokenBitSet(Addr addr) const
{
    const Line *line = findLine(addr);
    if (!line)
        return false;
    const unsigned idx = detector_.granuleIndex(addr, blockSize_);
    return (line->tokenBits >> idx) & 1u;
}

void
RestL1Cache::onFill(Addr line_addr, Line &line, Cycles now)
{
    line.tokenBits = detector_.scan(line_addr, blockSize_);
    if (line.tokenBits) {
        ++tokenFills_;
        if (trace::TraceSink *ts = trace::sink();
            ts && ts->flagOn(trace::Flag::TokenDetect, now)) {
            ts->instant(trace::Flag::TokenDetect,
                        ts->trackFor(stats_.name()), "token_detect",
                        now, "token_bits", line.tokenBits);
            REST_DPRINTF(trace::Flag::TokenDetect, now,
                         stats_.name().c_str(),
                         "fill detected token(s) line=0x", std::hex,
                         line_addr, std::dec, " bits=",
                         unsigned(line.tokenBits));
        }
    }
}

void
RestL1Cache::onEvict(Addr line_addr, Line &line, Cycles now)
{
    if (!line.tokenBits)
        return;
    ++tokenEvictions_;
    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::TokenDetect, now)) {
        ts->instant(trace::Flag::TokenDetect,
                    ts->trackFor(stats_.name()), "token_evict", now,
                    "token_bits", line.tokenBits);
    }
    // Fill the token value into the outgoing packet (Table I): armed
    // granules leave the cache carrying the token value.
    const unsigned g = tcr_.granule();
    auto token = tcr_.token().bytes();
    for (unsigned i = 0; i * g < blockSize_; ++i) {
        if ((line.tokenBits >> i) & 1u)
            memory_.writeBytes(line_addr + i * g, token);
    }
}

void
RestL1Cache::onCoherenceFlush(Addr line_addr, Line &line, Cycles now)
{
    // A remote read snoops our Modified copy (M -> S). The line stays
    // resident with its token bits, but the flushed packet must carry
    // the deferred token values so the requester's fill-path detector
    // re-arms its own bits — cross-core accesses to an armed granule
    // trap exactly like local ones.
    if (!line.tokenBits)
        return;
    ++tokenCoherenceFlushes_;
    const unsigned g = tcr_.granule();
    auto token = tcr_.token().bytes();
    for (unsigned i = 0; i * g < blockSize_; ++i) {
        if ((line.tokenBits >> i) & 1u)
            memory_.writeBytes(line_addr + i * g, token);
    }
    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::TokenDetect, now)) {
        ts->instant(trace::Flag::TokenDetect,
                    ts->trackFor(stats_.name()), "token_coherence_flush",
                    now, "token_bits", line.tokenBits);
    }
}

} // namespace rest::mem
