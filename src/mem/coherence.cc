#include "mem/coherence.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/trace.hh"

namespace rest::mem
{

CoherenceBus::CoherenceBus()
    : stats_("coherence_bus"),
      busReads_(stats_.addScalar("bus_reads",
          "read-miss broadcasts (BusRd)")),
      busReadXs_(stats_.addScalar("bus_readxs",
          "write-miss broadcasts (BusRdX)")),
      upgrades_(stats_.addScalar("upgrades",
          "S->M upgrade broadcasts (BusUpgr)")),
      invalidations_(stats_.addScalar("invalidations",
          "remote copies invalidated by snoops")),
      downgrades_(stats_.addScalar("downgrades",
          "remote M/E copies downgraded to Shared")),
      dirtyFlushes_(stats_.addScalar("dirty_flushes",
          "remote Modified copies forced to write back")),
      transfers_(stats_.addScalar("transfers",
          "misses served while another cache held the line"))
{
}

void
CoherenceBus::attach(Cache &cache)
{
    rest_assert(std::find(caches_.begin(), caches_.end(), &cache) ==
                    caches_.end(),
                "cache attached to the coherence bus twice");
    caches_.push_back(&cache);
}

Mesi
CoherenceBus::requestLine(Cache &requester, Addr line_addr,
                          bool is_write, Cycles now)
{
    if (is_write)
        ++busReadXs_;
    else
        ++busReads_;

    bool held = false;
    for (Cache *c : caches_) {
        if (c == &requester)
            continue;
        const Mesi prior = is_write ? c->snoopInvalidate(line_addr, now)
                                    : c->snoopShared(line_addr, now);
        if (prior == Mesi::Invalid)
            continue;
        held = true;
        if (is_write)
            ++invalidations_;
        else if (prior != Mesi::Shared)
            ++downgrades_;
        if (prior == Mesi::Modified)
            ++dirtyFlushes_;
    }
    if (held) {
        ++transfers_;
        if (trace::TraceSink *ts = trace::sink();
            ts && ts->flagOn(trace::Flag::Cache, now)) {
            ts->instant(trace::Flag::Cache, ts->trackFor("coherence_bus"),
                        is_write ? "bus_readx_hit" : "bus_read_hit", now,
                        "line", line_addr);
        }
    }
    if (is_write)
        return Mesi::Modified;
    return held ? Mesi::Shared : Mesi::Exclusive;
}

void
CoherenceBus::upgrade(Cache &requester, Addr line_addr, Cycles now)
{
    ++upgrades_;
    for (Cache *c : caches_) {
        if (c == &requester)
            continue;
        if (c->snoopInvalidate(line_addr, now) != Mesi::Invalid)
            ++invalidations_;
    }
}

} // namespace rest::mem
