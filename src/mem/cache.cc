#include "mem/cache.hh"

#include <algorithm>

#include "mem/coherence.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace rest::mem
{

const char *
mesiName(Mesi m)
{
    switch (m) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

Cache::Cache(const CacheConfig &cfg, MemoryDevice &below)
    : cfg_(cfg), below_(below), blockSize_(cfg.blockSize),
      stats_(cfg.name),
      hits_(stats_.addScalar("hits", "accesses that hit")),
      misses_(stats_.addScalar("misses", "accesses that missed")),
      writebacks_(stats_.addScalar("writebacks",
                                   "dirty lines written back")),
      mshrMerges_(stats_.addScalar("mshr_merges",
                                   "misses merged into in-flight MSHRs")),
      mshrStallCycles_(stats_.addScalar("mshr_stall_cycles",
                                        "cycles stalled on full MSHRs"))
{
    rest_assert(isPowerOfTwo(blockSize_), "block size must be pow2");
    rest_assert(cfg.sizeBytes % (blockSize_ * cfg.assoc) == 0,
                "cache geometry does not divide evenly");
    numSets_ = cfg.sizeBytes / (blockSize_ * cfg.assoc);
    rest_assert(isPowerOfTwo(numSets_), "number of sets must be pow2");
    sets_.assign(numSets_, std::vector<Line>(cfg.assoc));
}

unsigned
Cache::setIndex(Addr addr) const
{
    return (addr / blockSize_) & (numSets_ - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr la = lineAddr(addr);
    for (auto &line : sets_[setIndex(addr)]) {
        if (line.valid && line.tag == la)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

Cache::Line &
Cache::fillLine(Addr addr, Cycles now)
{
    Addr la = lineAddr(addr);
    auto &set = sets_[setIndex(addr)];

    // Victim selection: first invalid way, else LRU.
    Line *victim = &set[0];
    for (auto &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUsed < victim->lastUsed)
            victim = &line;
    }

    if (victim->valid) {
        onEvict(victim->tag, *victim, now);
        if (victim->dirty) {
            ++writebacks_;
            if (trace::TraceSink *ts = trace::sink();
                ts && ts->flagOn(trace::Flag::Cache, now)) {
                ts->instant(trace::Flag::Cache,
                            ts->trackFor(stats_.name()), "writeback",
                            now, "line", victim->tag);
            }
            // Writebacks drain through the write buffer off the
            // critical path; charge them to the level below for
            // bandwidth accounting only.
            below_.access(victim->tag, true, now);
        }
    }

    victim->tag = la;
    victim->valid = true;
    victim->dirty = false;
    victim->tokenBits = 0;
    victim->mesi = Mesi::Invalid;
    victim->lastUsed = ++useCounter_;
    onFill(la, *victim, now);
    return *victim;
}

Mesi
Cache::coherenceMissSnoop(Addr line_addr, bool is_write, Cycles now)
{
    if (!bus_)
        return Mesi::Invalid;
    return bus_->requestLine(*this, line_addr, is_write, now);
}

void
Cache::coherenceWriteHit(Line &line, Addr line_addr, Cycles now)
{
    if (!bus_)
        return;
    if (line.mesi == Mesi::Shared)
        bus_->upgrade(*this, line_addr, now);
    line.mesi = Mesi::Modified;
}

Mesi
Cache::snoopShared(Addr line_addr, Cycles now)
{
    Line *line = findLine(line_addr);
    if (!line)
        return Mesi::Invalid;
    const Mesi prior = line->mesi;
    if (prior == Mesi::Modified) {
        // Flush: the requester fills from below, so our copy's data —
        // and any deferred token values — must reach it first.
        onCoherenceFlush(line_addr, *line, now);
        if (line->dirty) {
            ++writebacks_;
            below_.access(line_addr, true, now);
            line->dirty = false;
        }
    }
    line->mesi = Mesi::Shared;
    return prior;
}

Mesi
Cache::snoopInvalidate(Addr line_addr, Cycles now)
{
    Line *line = findLine(line_addr);
    if (!line)
        return Mesi::Invalid;
    const Mesi prior = line->mesi;
    // Full eviction semantics: token write-out via onEvict, then the
    // dirty write-back, then the line is gone.
    onEvict(line_addr, *line, now);
    if (line->dirty) {
        ++writebacks_;
        below_.access(line_addr, true, now);
    }
    *line = Line{};
    return prior;
}

Mesi
Cache::mesiState(Addr addr) const
{
    const Line *line = findLine(addr);
    return line ? line->mesi : Mesi::Invalid;
}

Cycles
Cache::resolveMiss(Addr line_addr, Cycles now)
{
    // Prune completed fetches.
    for (auto it = outstanding_.begin(); it != outstanding_.end();) {
        if (it->second <= now)
            it = outstanding_.erase(it);
        else
            ++it;
    }

    trace::TraceSink *ts = trace::sink();
    const bool traced = ts && ts->flagOn(trace::Flag::Cache, now);

    // Merge with an in-flight fetch of the same line.
    if (auto it = outstanding_.find(line_addr); it != outstanding_.end()) {
        ++mshrMerges_;
        if (traced) {
            ts->instant(trace::Flag::Cache, ts->trackFor(stats_.name()),
                        "mshr_merge", now, "line", line_addr);
        }
        return it->second;
    }

    // All MSHRs busy: stall until the earliest one frees.
    Cycles start = now;
    if (outstanding_.size() >= cfg_.numMshrs) {
        Cycles earliest = ~Cycles(0);
        for (const auto &kv : outstanding_)
            earliest = std::min(earliest, kv.second);
        mshrStallCycles_ += earliest - now;
        if (traced) {
            ts->complete(trace::Flag::Cache,
                         ts->trackFor(stats_.name()), "mshr_stall",
                         now, earliest, "line", line_addr);
        }
        start = earliest;
    }

    Cycles ready = below_.access(line_addr, false, start + cfg_.latency);
    outstanding_[line_addr] = ready;
    return ready;
}

Cycles
Cache::access(Addr addr, bool is_write, Cycles now)
{
    if (Line *line = findLine(addr)) {
        lastHit_ = true;
        ++hits_;
        line->lastUsed = ++useCounter_;
        if (is_write) {
            line->dirty = true;
            coherenceWriteHit(*line, lineAddr(addr), now);
        }
        // A "hit" on a line whose fill is still in flight waits for
        // the data (MSHR target merge).
        if (line->readyAt > now) {
            ++mshrMerges_;
            return line->readyAt;
        }
        return now + cfg_.latency;
    }

    lastHit_ = false;
    ++misses_;
    // Snoop before the fill so a remote Modified copy lands in the
    // level below (and its token values in memory) first.
    Mesi fill_state = coherenceMissSnoop(lineAddr(addr), is_write, now);
    Cycles ready = resolveMiss(lineAddr(addr), now);
    if (trace::TraceSink *ts = trace::sink();
        ts && ts->flagOn(trace::Flag::Cache, now)) {
        ts->complete(trace::Flag::Cache, ts->trackFor(stats_.name()),
                     "fill", now, ready, "line", lineAddr(addr));
        REST_DPRINTF(trace::Flag::Cache, now, stats_.name().c_str(),
                     is_write ? "store" : "load", " miss addr=0x",
                     std::hex, addr, std::dec, " ready=", ready);
    }
    Line &line = fillLine(addr, ready);
    line.readyAt = ready;
    line.mesi = fill_state;
    if (is_write)
        line.dirty = true;
    return ready;
}

void
Cache::flushAll()
{
    for (auto &set : sets_) {
        for (auto &line : set) {
            if (line.valid) {
                onEvict(line.tag, line, 0);
                if (line.dirty)
                    ++writebacks_;
            }
            line = Line{};
        }
    }
    outstanding_.clear();
}

void
Cache::resetTiming()
{
    for (auto &set : sets_)
        for (auto &line : set)
            line.readyAt = 0;
    outstanding_.clear();
    below_.resetTiming();
}

} // namespace rest::mem
