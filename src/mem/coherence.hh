/**
 * @file
 * Snooping MESI coherence bus over the private L1 data caches.
 *
 * The multicore machine (sim/multicore.hh) gives every core a private
 * L1-D over one shared L2/DRAM; this bus keeps those L1s coherent with
 * the textbook MESI protocol:
 *
 *   - read miss (BusRd): every remote copy is snooped. A Modified
 *     owner flushes — data to the level below, deferred REST token
 *     values to memory (Cache::onCoherenceFlush) — and downgrades to
 *     Shared, as does an Exclusive copy. The requester installs in
 *     Shared when any remote copy survived, Exclusive otherwise.
 *   - write miss (BusRdX): every remote copy is invalidated through
 *     the full eviction path (token write-out + dirty write-back);
 *     the requester installs in Modified.
 *   - write hit on Shared (BusUpgr): remote copies are invalidated;
 *     the writer's line moves S -> M without a refill.
 *
 * REST invariant kept by this design: detection stays a fill-path
 * property of each private L1. A token-bearing line migrating between
 * cores always passes its token values through memory (flush on M->S,
 * onEvict on invalidation), so the destination L1's fill-path detector
 * re-scans them and re-arms its own token bits — a cross-core access
 * to an armed granule traps exactly like a local one (test-enforced
 * in tests/mem/coherence_test.cc).
 *
 * The bus is a correctness + traffic-accounting model, not a latency
 * model: snoops are resolved at the requesting access's issue cycle
 * and add no extra latency (contention shows up through the shared
 * L2/DRAM and the invalidation-induced extra misses). All traffic is
 * counted in the bus's StatGroup for the multicore_scaling bench.
 */

#ifndef REST_MEM_COHERENCE_HH
#define REST_MEM_COHERENCE_HH

#include <vector>

#include "mem/cache.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rest::mem
{

/** The snooping bus connecting the private L1 data caches. */
class CoherenceBus
{
  public:
    CoherenceBus();

    /**
     * Register one private cache. The cache must also be pointed back
     * at the bus via Cache::attachBus(); sim::MultiCoreSystem does
     * both sides.
     */
    void attach(Cache &cache);

    std::size_t numCaches() const { return caches_.size(); }

    /**
     * Broadcast a miss by 'requester' and snoop every other attached
     * cache.
     * @return the MESI state the requester should install the line
     *         in: Modified for writes, else Shared iff a remote copy
     *         survived the snoop, Exclusive otherwise.
     */
    Mesi requestLine(Cache &requester, Addr line_addr, bool is_write,
                     Cycles now);

    /** BusUpgr: invalidate every remote copy on a S -> M write hit. */
    void upgrade(Cache &requester, Addr line_addr, Cycles now);

    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }

  private:
    std::vector<Cache *> caches_;

    stats::StatGroup stats_;
    stats::Scalar &busReads_;      ///< read-miss broadcasts (BusRd)
    stats::Scalar &busReadXs_;     ///< write-miss broadcasts (BusRdX)
    stats::Scalar &upgrades_;      ///< S->M upgrade broadcasts
    stats::Scalar &invalidations_; ///< remote copies invalidated
    stats::Scalar &downgrades_;    ///< remote M/E copies moved to S
    stats::Scalar &dirtyFlushes_;  ///< remote M copies forced to flush
    stats::Scalar &transfers_;     ///< misses served while a remote
                                   ///< cache held the line
};

} // namespace rest::mem

#endif // REST_MEM_COHERENCE_HH
