/**
 * @file
 * The REST-modified L1 data cache (paper §III-B, Table I, Fig. 4).
 *
 * Extends the classic cache with one token bit per token granule per
 * line, a fill-path token detector, and arm/disarm operations:
 *   - arm: sets the token bit; the token value itself is written out
 *     lazily when the line is evicted (single-cycle arm hits).
 *   - disarm: faults if the token bit is unset, otherwise clears the
 *     bit and zeroes the granule (one extra cycle: all data banks).
 *   - load/store: fault when they touch a granule whose token bit is
 *     set.
 */

#ifndef REST_MEM_REST_L1_CACHE_HH
#define REST_MEM_REST_L1_CACHE_HH

#include "core/exceptions.hh"
#include "mem/cache.hh"
#include "mem/guest_memory.hh"
#include "mem/token_detector.hh"

namespace rest::mem
{

/** Outcome of a REST-aware L1-D access. */
struct RestAccess
{
    Cycles completeAt = 0;
    bool hit = false;
    core::ViolationKind violation = core::ViolationKind::None;

    bool faulted() const
    { return violation != core::ViolationKind::None; }
};

/** L1 data cache with REST token tracking. */
class RestL1Cache : public Cache
{
  public:
    RestL1Cache(const CacheConfig &cfg, MemoryDevice &below,
                GuestMemory &memory,
                const core::TokenConfigRegister &tcr);

    /**
     * A demand load. Faults with TokenAccess if any granule covered
     * by [addr, addr+size) has its token bit set.
     */
    RestAccess loadAccess(Addr addr, unsigned size, Cycles now);

    /** A demand store; same fault rule as loads (Table I). */
    RestAccess storeAccess(Addr addr, unsigned size, Cycles now);

    /**
     * Execute an arm at 'addr' (must be granule-aligned; alignment is
     * checked upstream at decode). Sets the token bit; does not write
     * the token value (deferred to eviction). Single-cycle on a hit.
     */
    RestAccess armAccess(Addr addr, Cycles now);

    /**
     * Execute a disarm at 'addr'. Faults with DisarmUnarmed when the
     * token bit is not set; otherwise zeroes the granule and clears
     * the bit, with one extra cycle of latency (all banks involved).
     */
    RestAccess disarmAccess(Addr addr, Cycles now);

    /** Test support: is the token bit for 'addr''s granule set? */
    bool tokenBitSet(Addr addr) const;

    /** Test support: is the line holding 'addr' resident? */
    bool lineResident(Addr addr) const { return probe(addr); }

  protected:
    void onFill(Addr line_addr, Line &line, Cycles now) override;
    void onEvict(Addr line_addr, Line &line, Cycles now) override;
    void onCoherenceFlush(Addr line_addr, Line &line,
                          Cycles now) override;

  private:
    /** Bitmask of granules covered by [addr, addr+size). */
    std::uint8_t coverMask(Addr addr, unsigned size) const;

    /** Emit the TokenDetect trace/debug output for a violation. */
    void traceViolation(const char *kind, Addr addr, Cycles now);

    /** Bring the line in (hit or miss path), returning data-ready.
     *  'is_write' covers stores and arm/disarm for coherence. */
    std::pair<Line *, Cycles> ensureLine(Addr addr, bool is_write,
                                         Cycles now);

    GuestMemory &memory_;
    TokenDetector detector_;
    const core::TokenConfigRegister &tcr_;

    stats::Scalar &tokenFills_;
    stats::Scalar &tokenEvictions_;
    stats::Scalar &armHits_;
    stats::Scalar &armMisses_;
    stats::Scalar &disarmOps_;
    stats::Scalar &tokenViolations_;
    stats::Scalar &tokenCoherenceFlushes_;
};

} // namespace rest::mem

#endif // REST_MEM_REST_L1_CACHE_HH
