/**
 * @file
 * A classic set-associative, write-back, write-allocate cache timing
 * model with MSHRs and a write buffer, in the style of gem5's classic
 * caches. Latency-oracle organisation: access() returns the cycle at
 * which the request completes; lower levels are consulted recursively
 * on a miss.
 */

#ifndef REST_MEM_CACHE_HH
#define REST_MEM_CACHE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "mem/cache_config.hh"
#include "mem/dram.hh"
#include "util/bit_utils.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rest::mem
{

class CoherenceBus;

/**
 * MESI coherence state of one cache line. Meaningful only for caches
 * attached to a CoherenceBus (mem/coherence.hh); detached caches —
 * the historical uniprocessor hierarchy — never read or write it.
 */
enum class Mesi : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *mesiName(Mesi m);

/**
 * One cache level. Subclassed by RestL1Cache, which adds the per-line
 * token bits and the fill-path token detector.
 */
class Cache : public MemoryDevice
{
  public:
    /** Per-line metadata. Data contents live in GuestMemory. */
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUsed = 0;
        /** Cycle the line's data arrives (in-flight fill tracking). */
        Cycles readyAt = 0;
        /**
         * REST token bits: one bit per token granule in the line
         * (1 bit for 64B tokens, 2 for 32B, 4 for 16B). Unused by
         * plain caches; maintained by RestL1Cache.
         */
        std::uint8_t tokenBits = 0;
        /** MESI state (bus-attached caches only). */
        Mesi mesi = Mesi::Invalid;
    };

    Cache(const CacheConfig &cfg, MemoryDevice &below);

    /**
     * Timing access.
     * @param addr byte address (any alignment; a single access is
     *        assumed not to straddle a block).
     * @param is_write true for stores (and arm/disarm writes).
     * @param now cycle the request is issued.
     * @return completion cycle.
     */
    Cycles access(Addr addr, bool is_write, Cycles now) override;

    /** Did the most recent access() hit in this level? */
    bool lastWasHit() const { return lastHit_; }

    /** Block-align an address. */
    Addr lineAddr(Addr addr) const { return alignDown(addr, blockSize_); }

    /** Is the line currently resident? (no LRU side effects) */
    bool probe(Addr addr) const;

    /**
     * Join a snooping coherence bus. Detached (the default) the cache
     * behaves exactly as the historical uniprocessor model; attached,
     * misses and write-hit upgrades broadcast on the bus and remote
     * snoops may downgrade or invalidate resident lines.
     */
    void attachBus(CoherenceBus *bus) { bus_ = bus; }

    /** Coherence state of the line holding 'addr' (Invalid: absent).
     *  No LRU side effects; test/stat support. */
    Mesi mesiState(Addr addr) const;

    // --- snoop interface (CoherenceBus only) -------------------------
    /**
     * Remote read of 'line_addr': a Modified copy writes its data (and
     * any deferred token values, via onCoherenceFlush) back so the
     * requester can fill from below; M/E copies downgrade to Shared.
     * @return the state held before the snoop (Invalid: not resident).
     */
    Mesi snoopShared(Addr line_addr, Cycles now);

    /**
     * Remote write of 'line_addr': the copy is invalidated outright.
     * Takes the full eviction path (onEvict token write-out + dirty
     * write-back), so token-bearing lines leave their token values in
     * memory for the requester's fill-path detector to find.
     * @return the state held before the snoop (Invalid: not resident).
     */
    Mesi snoopInvalidate(Addr line_addr, Cycles now);

    /** Invalidate and write back everything (test support). */
    void flushAll();

    /**
     * Forget in-flight fills (line readyAt, outstanding MSHRs) and
     * cascade below. See MemoryDevice::resetTiming(): used at sampled-
     * mode segment boundaries where the cycle clock restarts at 0.
     */
    void resetTiming() override;

    unsigned blockSize() const { return blockSize_; }
    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }

  protected:
    /** Locate a resident line; nullptr on miss. */
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /**
     * Install a line, evicting the LRU victim.
     * @return reference to the installed line.
     */
    Line &fillLine(Addr addr, Cycles now);

    /**
     * Hook: called after a line is installed (token detector).
     * 'now' is the cycle the fill lands (tracing; flushAll passes 0).
     */
    virtual void onFill(Addr /*line_addr*/, Line & /*line*/,
                        Cycles /*now*/) { }

    /** Hook: called when a valid line is evicted (token write-out). */
    virtual void onEvict(Addr /*line_addr*/, Line & /*line*/,
                         Cycles /*now*/) { }

    /**
     * Hook: a Modified line is flushed by a remote-read snoop but
     * stays resident (M -> S). The outgoing coherence packet must
     * carry any deferred token values (RestL1Cache writes them out),
     * so the requester's fill still sees the tokens.
     */
    virtual void onCoherenceFlush(Addr /*line_addr*/, Line & /*line*/,
                                  Cycles /*now*/) { }

    /**
     * Resolve a miss through the MSHRs: merge with an outstanding
     * fetch of the same line if one exists, otherwise allocate an
     * MSHR (stalling for a free one if necessary) and fetch from
     * below.
     * @return cycle at which the line's data is available.
     */
    Cycles resolveMiss(Addr line_addr, Cycles now);

    unsigned setIndex(Addr addr) const;

    /**
     * Broadcast a miss on the bus (no-op when detached) and return the
     * MESI state the incoming line should be installed in: Modified
     * for write misses, Shared/Exclusive for read misses depending on
     * whether any remote copy survived the snoop.
     */
    Mesi coherenceMissSnoop(Addr line_addr, bool is_write, Cycles now);

    /** Write hit: upgrade a Shared line to Modified via the bus;
     *  E -> M is silent. No-op when detached. */
    void coherenceWriteHit(Line &line, Addr line_addr, Cycles now);

    CacheConfig cfg_;
    MemoryDevice &below_;
    CoherenceBus *bus_ = nullptr;
    unsigned blockSize_;
    unsigned numSets_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t useCounter_ = 0;
    bool lastHit_ = false;

    /** Outstanding line fetches: line addr -> data-ready cycle. */
    std::map<Addr, Cycles> outstanding_;

    stats::StatGroup stats_;
    stats::Scalar &hits_;
    stats::Scalar &misses_;
    stats::Scalar &writebacks_;
    stats::Scalar &mshrMerges_;
    stats::Scalar &mshrStallCycles_;
};

} // namespace rest::mem

#endif // REST_MEM_CACHE_HH
