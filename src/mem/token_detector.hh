/**
 * @file
 * The REST token detector (paper Fig. 4): examines a cache line's
 * contents as it is filled into the L1 data cache and reports which
 * token-width granules hold the token value. Decomposable into narrow
 * compares per fill beat in real hardware; here one call per fill.
 */

#ifndef REST_MEM_TOKEN_DETECTOR_HH
#define REST_MEM_TOKEN_DETECTOR_HH

#include <array>
#include <cstdint>

#include "core/token.hh"
#include "mem/guest_memory.hh"
#include "util/bit_utils.hh"
#include "util/types.hh"

namespace rest::mem
{

/** Fill-path comparator against the token configuration register. */
class TokenDetector
{
  public:
    TokenDetector(const GuestMemory &memory,
                  const core::TokenConfigRegister &tcr)
        : memory_(memory), tcr_(tcr)
    {}

    /**
     * Scan one cache line for token granules.
     * @param line_addr block-aligned address of the incoming line.
     * @param block_size line size in bytes (64 in Table II).
     * @return bitmask with bit i set iff granule i of the line equals
     *         the token value.
     */
    std::uint8_t
    scan(Addr line_addr, unsigned block_size) const
    {
        const unsigned g = tcr_.granule();
        std::uint8_t mask = 0;
        std::array<std::uint8_t, core::maxTokenBytes> buf;
        for (unsigned i = 0; i * g < block_size; ++i) {
            memory_.readBytes(line_addr + i * g, {buf.data(), g});
            if (tcr_.token().matches({buf.data(), g}))
                mask |= static_cast<std::uint8_t>(1u << i);
        }
        return mask;
    }

    /** Granule index of an address within its line. */
    unsigned
    granuleIndex(Addr addr, unsigned block_size) const
    {
        const unsigned g = tcr_.granule();
        return static_cast<unsigned>((addr & (block_size - 1)) / g);
    }

    const core::TokenConfigRegister &configRegister() const
    { return tcr_; }

  private:
    const GuestMemory &memory_;
    const core::TokenConfigRegister &tcr_;
};

} // namespace rest::mem

#endif // REST_MEM_TOKEN_DETECTOR_HH
