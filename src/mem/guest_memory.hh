/**
 * @file
 * Sparse, page-backed guest physical/virtual memory.
 *
 * The reproduction runs guest programs in a flat 48-bit address space
 * (no TLB is modelled; the paper's mechanism is address-translation
 * agnostic). Pages are allocated lazily on first touch and zero-filled,
 * matching anonymous-mmap semantics.
 */

#ifndef REST_MEM_GUEST_MEMORY_HH
#define REST_MEM_GUEST_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "util/types.hh"

namespace rest::mem
{

/** Lazily allocated sparse memory. */
class GuestMemory
{
  public:
    static constexpr unsigned pageBits = 12;
    static constexpr std::size_t pageSize = 1ull << pageBits;

    /** Read a little-endian unsigned value of 'size' (1/2/4/8) bytes. */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        std::uint64_t v = 0;
        readBytes(addr, {reinterpret_cast<std::uint8_t *>(&v), size});
        return v;
    }

    /** Write a little-endian unsigned value of 'size' (1/2/4/8) bytes. */
    void
    write(Addr addr, std::uint64_t value, unsigned size)
    {
        writeBytes(addr,
                   {reinterpret_cast<const std::uint8_t *>(&value), size});
    }

    /** Copy out a byte range (zero for untouched pages). */
    void
    readBytes(Addr addr, std::span<std::uint8_t> out) const
    {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = readByte(addr + i);
    }

    /** Copy in a byte range. */
    void
    writeBytes(Addr addr, std::span<const std::uint8_t> in)
    {
        for (std::size_t i = 0; i < in.size(); ++i)
            writeByte(addr + i, in[i]);
    }

    /** Fill [addr, addr+len) with a byte value. */
    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            writeByte(addr + i, value);
    }

    std::uint8_t
    readByte(Addr addr) const
    {
        auto it = pages_.find(addr >> pageBits);
        if (it == pages_.end())
            return 0;
        return (*it->second)[addr & (pageSize - 1)];
    }

    void
    writeByte(Addr addr, std::uint8_t value)
    {
        page(addr)[addr & (pageSize - 1)] = value;
    }

    /** Number of pages touched so far (footprint accounting). */
    std::size_t pagesTouched() const { return pages_.size(); }

    /** Pages touched inside [lo, hi) (region footprint accounting). */
    std::size_t
    pagesTouchedIn(Addr lo, Addr hi) const
    {
        std::size_t n = 0;
        for (const auto &kv : pages_) {
            Addr base = kv.first << pageBits;
            if (base >= lo && base < hi)
                ++n;
        }
        return n;
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    Page &
    page(Addr addr)
    {
        auto &slot = pages_[addr >> pageBits];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace rest::mem

#endif // REST_MEM_GUEST_MEMORY_HH
