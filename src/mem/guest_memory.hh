/**
 * @file
 * Sparse, page-backed guest physical/virtual memory.
 *
 * The reproduction runs guest programs in a flat 48-bit address space
 * (no TLB is modelled; the paper's mechanism is address-translation
 * agnostic). Pages are allocated lazily on first touch and zero-filled,
 * matching anonymous-mmap semantics.
 */

#ifndef REST_MEM_GUEST_MEMORY_HH
#define REST_MEM_GUEST_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "util/types.hh"

namespace rest::mem
{

/** Lazily allocated sparse memory. */
class GuestMemory
{
  public:
    static constexpr unsigned pageBits = 12;
    static constexpr std::size_t pageSize = 1ull << pageBits;

    /** Read a little-endian unsigned value of 'size' (1/2/4/8) bytes. */
    std::uint64_t
    read(Addr addr, unsigned size) const
    {
        std::uint64_t v = 0;
        const std::size_t off = addr & (pageSize - 1);
        if (off + size <= pageSize) {
            // Fast path: the access fits in one page — one lookup and
            // a fixed-size copy (a variable-length memcpy would be an
            // out-of-line call on every access).
            if (const Page *p = findPage(addr >> pageBits))
                copyFixed(&v, p->data() + off, size);
            return v;
        }
        readBytes(addr, {reinterpret_cast<std::uint8_t *>(&v), size});
        return v;
    }

    /** Write a little-endian unsigned value of 'size' (1/2/4/8) bytes. */
    void
    write(Addr addr, std::uint64_t value, unsigned size)
    {
        const std::size_t off = addr & (pageSize - 1);
        if (off + size <= pageSize) {
            copyFixed(page(addr).data() + off, &value, size);
            return;
        }
        writeBytes(addr,
                   {reinterpret_cast<const std::uint8_t *>(&value), size});
    }

    /** Copy out a byte range (zero for untouched pages). */
    void
    readBytes(Addr addr, std::span<std::uint8_t> out) const
    {
        std::size_t done = 0;
        while (done < out.size()) {
            const std::size_t off = (addr + done) & (pageSize - 1);
            const std::size_t n =
                std::min(out.size() - done, pageSize - off);
            if (const Page *p = findPage((addr + done) >> pageBits))
                std::memcpy(out.data() + done, p->data() + off, n);
            else
                std::memset(out.data() + done, 0, n);
            done += n;
        }
    }

    /** Copy in a byte range. */
    void
    writeBytes(Addr addr, std::span<const std::uint8_t> in)
    {
        std::size_t done = 0;
        while (done < in.size()) {
            const std::size_t off = (addr + done) & (pageSize - 1);
            const std::size_t n =
                std::min(in.size() - done, pageSize - off);
            std::memcpy(page(addr + done).data() + off,
                        in.data() + done, n);
            done += n;
        }
    }

    /** Fill [addr, addr+len) with a byte value. */
    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        std::size_t done = 0;
        while (done < len) {
            const std::size_t off = (addr + done) & (pageSize - 1);
            const std::size_t n = std::min(len - done, pageSize - off);
            std::memset(page(addr + done).data() + off, value, n);
            done += n;
        }
    }

    std::uint8_t
    readByte(Addr addr) const
    {
        if (const Page *p = findPage(addr >> pageBits))
            return (*p)[addr & (pageSize - 1)];
        return 0;
    }

    void
    writeByte(Addr addr, std::uint8_t value)
    {
        page(addr)[addr & (pageSize - 1)] = value;
    }

    /** Number of pages touched so far (footprint accounting). */
    std::size_t pagesTouched() const { return pages_.size(); }

    /** Pages touched inside [lo, hi) (region footprint accounting). */
    std::size_t
    pagesTouchedIn(Addr lo, Addr hi) const
    {
        std::size_t n = 0;
        for (const auto &kv : pages_) {
            Addr base = kv.first << pageBits;
            if (base >= lo && base < hi)
                ++n;
        }
        return n;
    }

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    /** Copy a scalar of 1/2/4/8 bytes (any other size falls back to
     *  memcpy) so each case compiles to one mov instead of a
     *  variable-length memcpy call. */
    static void
    copyFixed(void *dst, const void *src, unsigned size)
    {
        switch (size) {
          case 1: std::memcpy(dst, src, 1); break;
          case 2: std::memcpy(dst, src, 2); break;
          case 4: std::memcpy(dst, src, 4); break;
          case 8: std::memcpy(dst, src, 8); break;
          default: std::memcpy(dst, src, size); break;
        }
    }

    /**
     * Direct-mapped page-lookup cache (a software TLB). The emulator
     * interleaves stack, heap and shadow accesses, so a handful of
     * entries indexed by the page number's low bits captures nearly
     * every lookup with one compare. Pages are never freed, so a
     * cached pointer cannot dangle; misses are deliberately not
     * cached (a later write may create the page).
     */
    static constexpr std::size_t tlbSlots = 16;

    struct TlbEntry
    {
        Addr idx = ~Addr(0);
        Page *page = nullptr;
    };

    const Page *
    findPage(Addr page_idx) const
    {
        TlbEntry &e = tlb_[page_idx & (tlbSlots - 1)];
        if (e.idx == page_idx)
            return e.page;
        auto it = pages_.find(page_idx);
        if (it == pages_.end())
            return nullptr;
        e.idx = page_idx;
        e.page = it->second.get();
        return e.page;
    }

    Page &
    page(Addr addr)
    {
        const Addr idx = addr >> pageBits;
        TlbEntry &e = tlb_[idx & (tlbSlots - 1)];
        if (e.idx == idx)
            return *e.page;
        auto &slot = pages_[idx];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        e.idx = idx;
        e.page = slot.get();
        return *slot;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    mutable std::array<TlbEntry, tlbSlots> tlb_{};
};

} // namespace rest::mem

#endif // REST_MEM_GUEST_MEMORY_HH
