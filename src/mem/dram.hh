/**
 * @file
 * A simple fixed-latency, bandwidth-limited DRAM model (Table II).
 */

#ifndef REST_MEM_DRAM_HH
#define REST_MEM_DRAM_HH

#include <algorithm>
#include <cstdint>

#include "mem/cache_config.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace rest::mem
{

/** Shared interface: anything a cache can sit on top of. */
class MemoryDevice
{
  public:
    virtual ~MemoryDevice() = default;

    /**
     * Perform a block access.
     * @param line_addr block-aligned address.
     * @param is_write true for writebacks / stores reaching this level.
     * @param now cycle the request arrives.
     * @return the cycle the request completes (data available).
     */
    virtual Cycles access(Addr line_addr, bool is_write, Cycles now) = 0;

    /**
     * Drop in-flight timing state (queued requests, fill-in-progress
     * timestamps). The sampled execution mode restarts the pipeline
     * clock at 0 for every detailed window; any absolute completion
     * cycle recorded under the previous clock would read as "busy for
     * the next few thousand cycles" and poison the window. Contents
     * (residency, LRU, token bits) are untouched — they are exactly
     * the history sampling wants to carry across fast-forward gaps.
     */
    virtual void resetTiming() {}
};

/** Fixed-latency DRAM with a single-channel bandwidth constraint. */
class Dram : public MemoryDevice
{
  public:
    explicit Dram(const DramConfig &cfg = {})
        : cfg_(cfg), stats_("dram"),
          reads_(stats_.addScalar("reads", "read requests serviced")),
          writes_(stats_.addScalar("writes", "write requests serviced")),
          queueCycles_(stats_.addScalar("queue_cycles",
                                        "cycles spent queueing"))
    {}

    Cycles
    access(Addr, bool is_write, Cycles now) override
    {
        Cycles start = std::max(now, nextFree_);
        queueCycles_ += start - now;
        nextFree_ = start + cfg_.servicePeriod;
        if (is_write)
            ++writes_;
        else
            ++reads_;
        return start + cfg_.accessLatency;
    }

    void resetTiming() override { nextFree_ = 0; }

    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }

  private:
    DramConfig cfg_;
    Cycles nextFree_ = 0;
    stats::StatGroup stats_;
    stats::Scalar &reads_;
    stats::Scalar &writes_;
    stats::Scalar &queueCycles_;
};

} // namespace rest::mem

#endif // REST_MEM_DRAM_HH
