/**
 * @file
 * Memory-system configuration structures matching Table II of the
 * paper.
 */

#ifndef REST_MEM_CACHE_CONFIG_HH
#define REST_MEM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace rest::mem
{

/** Parameters of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    unsigned assoc = 8;
    unsigned blockSize = 64;
    Cycles latency = 2;          ///< tag+data access latency
    unsigned numMshrs = 4;       ///< miss-status holding registers
    unsigned mshrTargets = 20;   ///< merged targets per MSHR
    unsigned writeBufferEntries = 8;

    /** Table II L1 instruction cache. */
    static CacheConfig
    l1i()
    {
        return {"l1i", 64 * 1024, 8, 64, 2, 4, 20, 0};
    }

    /** Table II L1 data cache. */
    static CacheConfig
    l1d()
    {
        return {"l1d", 64 * 1024, 8, 64, 2, 4, 20, 8};
    }

    /** Table II unified L2. */
    static CacheConfig
    l2()
    {
        return {"l2", 2 * 1024 * 1024, 16, 64, 20, 20, 12, 8};
    }
};

/** Parameters of the DRAM model (Table II: DDR3-800, 8 GB). */
struct DramConfig
{
    /**
     * End-to-end access latency in core cycles. At 2 GHz, the Table-II
     * timings (13.75 ns CAS + precharge, 35 ns RAS) put a typical
     * access around 50-60 ns; 110 core cycles models that with
     * controller overheads.
     */
    Cycles accessLatency = 110;
    /** Minimum spacing between successive DRAM services (bandwidth). */
    Cycles servicePeriod = 4;
};

} // namespace rest::mem

#endif // REST_MEM_CACHE_CONFIG_HH
