#include "isa/program.hh"

#include <sstream>

#include "util/logging.hh"

namespace rest::isa
{

std::string
Inst::toString() const
{
    std::ostringstream os;
    // An unresolved symbolic stack-buffer reference renders inside the
    // operand it belongs to ("buf#N+K"), so it cannot be confused with
    // a resolved frame offset in verifier diagnostics or dumps.
    auto immStr = [this] {
        std::ostringstream s;
        if (bufId >= 0)
            s << "buf#" << bufId << (imm >= 0 ? "+" : "") << imm;
        else
            s << imm;
        return s.str();
    };
    auto memStr = [&] {
        std::string i = immStr();
        std::ostringstream s;
        s << "[r" << int(rs1) << (i[0] == '-' ? "" : "+") << i << "]";
        return s.str();
    };
    os << mnemonic(op);
    if (op == Opcode::Load) {
        os << int(width) << " r" << int(rd) << ", " << memStr();
    } else if (op == Opcode::Store) {
        os << int(width) << " " << memStr() << ", r" << int(rs2);
    } else if (op == Opcode::Arm || op == Opcode::Disarm) {
        os << " " << memStr();
    } else if (isControlOp(op)) {
        if (rs1 != noReg)
            os << " r" << int(rs1) << ", r" << int(rs2) << ",";
        os << " ->" << target;
    } else {
        if (rd != noReg)
            os << " r" << int(rd);
        if (rs1 != noReg)
            os << ", r" << int(rs1);
        if (rs2 != noReg)
            os << ", r" << int(rs2);
        if (op == Opcode::MovImm || op == Opcode::AddI ||
            op == Opcode::AndI || op == Opcode::OrI ||
            op == Opcode::XorI || op == Opcode::ShlI ||
            op == Opcode::ShrI || op == Opcode::SltI) {
            os << ", " << immStr();
        }
    }
    return os.str();
}

std::string
Function::toString() const
{
    std::ostringstream os;
    os << name << ":  ; frame=" << frameSize << " bufs=" << bufs.size()
       << "\n";
    for (std::size_t i = 0; i < insts.size(); ++i)
        os << "  " << i << ":\t" << insts[i].toString() << "\n";
    return os.str();
}

Addr
Program::pcBase(std::size_t func_idx) const
{
    rest_assert(func_idx < funcs.size(), "bad function index ", func_idx);
    // Lay functions out back to back in a synthetic text segment
    // starting at 0x400000, 4 bytes per instruction.
    Addr base = 0x400000;
    for (std::size_t i = 0; i < func_idx; ++i)
        base += 4 * funcs[i].insts.size();
    return base;
}

std::size_t
Program::numInsts() const
{
    std::size_t n = 0;
    for (const auto &f : funcs)
        n += f.insts.size();
    return n;
}

std::string
Program::toString() const
{
    std::ostringstream os;
    for (const auto &f : funcs)
        os << f.toString() << "\n";
    return os.str();
}

} // namespace rest::isa
