/**
 * @file
 * Dynamic-instruction record exchanged between the functional emulator
 * and the timing CPU models.
 *
 * The reproduction uses an emulate-ahead / timing-behind organisation:
 * the functional emulator executes the guest program (including runtime
 * expansion of allocator and libc-interceptor work) and streams DynOps
 * to a timing model, which charges cycles through its pipeline, branch
 * predictor and cache hierarchy. No timing-dependent functional
 * behaviour exists in the modelled system, so this split is exact.
 */

#ifndef REST_ISA_DYN_OP_HH
#define REST_ISA_DYN_OP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "util/types.hh"

namespace rest::isa
{

/** Why an op faults, determined functionally, reported by timing. */
enum class FaultKind : std::uint8_t
{
    None,
    /** Access touched a REST token (privileged REST exception). */
    RestTokenAccess,
    /** Disarm of a location that holds no token. */
    RestDisarmUnarmed,
    /** Misaligned arm/disarm (precise invalid-REST-instruction). */
    RestMisaligned,
    /** ASan shadow check failed (software-detected violation). */
    AsanReport,
    /** MTE-style lock-and-key tag check failed (pointer tag did not
     *  match the memory granule's tag). */
    MteTagMismatch,
    /** Pointer-authentication check failed (missing or revoked
     *  signature on a data pointer). */
    PauthCheckFailed,
};

/** One dynamic operation as consumed by a timing CPU model. */
struct DynOp
{
    std::uint64_t seq = 0;  ///< global dynamic sequence number
    Addr pc = 0;            ///< instruction PC (for I-cache and bpred)
    Opcode op = Opcode::Nop;
    OpClass cls = OpClass::No_OpClass;
    OpSource source = OpSource::Program;

    RegId rd = noReg;
    RegId rs1 = noReg;
    RegId rs2 = noReg;

    // Memory ops
    Addr eaddr = invalidAddr; ///< effective address
    std::uint8_t size = 0;    ///< access size in bytes

    // Control flow (resolved outcome from the functional emulator)
    bool isBranch = false;
    bool taken = false;
    Addr nextPc = 0;          ///< architecturally correct next PC

    FaultKind fault = FaultKind::None;

    bool isLoad() const { return op == Opcode::Load; }
    bool isStore() const { return op == Opcode::Store; }
    bool isArm() const { return op == Opcode::Arm; }
    bool isDisarm() const { return op == Opcode::Disarm; }
    bool isMem() const { return eaddr != invalidAddr; }
    /** Anything handled by the store queue (writes memory). */
    bool isStoreLike() const { return isStore() || isArm() || isDisarm(); }
};

/**
 * FIFO of dynamic ops between the emulator's step machinery and its
 * consumers. Vector-backed with a head index instead of std::deque:
 * the queue fully drains between program instructions (runtime
 * sequences are short and bounded), so popping just advances the head
 * and the storage is recycled whenever the queue empties — no per-op
 * segment bookkeeping in the hot path.
 */
class OpQueue
{
  public:
    bool empty() const { return head_ == buf_.size(); }
    std::size_t size() const { return buf_.size() - head_; }
    void push_back(const DynOp &op) { buf_.push_back(op); }
    DynOp &back() { return buf_.back(); }
    const DynOp &front() const { return buf_[head_]; }

    void
    pop_front()
    {
        if (++head_ == buf_.size())
            clear();
    }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
    }

    auto begin() const { return buf_.begin() + long(head_); }
    auto end() const { return buf_.end(); }

  private:
    std::vector<DynOp> buf_;
    std::size_t head_ = 0;
};

/**
 * Pull interface for dynamic op streams. The functional emulator and
 * the directed test drivers implement this; CPU models consume it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic op.
     * @param out filled with the next op on success.
     * @return false when the stream is exhausted (program halted).
     */
    virtual bool next(DynOp &out) = 0;

    /**
     * Produce up to 'max' ops into 'out'. Semantically identical to
     * calling next() 'max' times; one virtual dispatch per batch
     * instead of per op, and implementations can keep their stepping
     * state in registers across the whole batch. A short fill means
     * the stream drained (halt or fault) — exactly like next()
     * returning false.
     */
    virtual std::size_t
    nextBatch(DynOp *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }
};

} // namespace rest::isa

#endif // REST_ISA_DYN_OP_HH
