/**
 * @file
 * Dynamic-instruction record exchanged between the functional emulator
 * and the timing CPU models.
 *
 * The reproduction uses an emulate-ahead / timing-behind organisation:
 * the functional emulator executes the guest program (including runtime
 * expansion of allocator and libc-interceptor work) and streams DynOps
 * to a timing model, which charges cycles through its pipeline, branch
 * predictor and cache hierarchy. No timing-dependent functional
 * behaviour exists in the modelled system, so this split is exact.
 */

#ifndef REST_ISA_DYN_OP_HH
#define REST_ISA_DYN_OP_HH

#include <cstdint>

#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "util/types.hh"

namespace rest::isa
{

/** Why an op faults, determined functionally, reported by timing. */
enum class FaultKind : std::uint8_t
{
    None,
    /** Access touched a REST token (privileged REST exception). */
    RestTokenAccess,
    /** Disarm of a location that holds no token. */
    RestDisarmUnarmed,
    /** Misaligned arm/disarm (precise invalid-REST-instruction). */
    RestMisaligned,
    /** ASan shadow check failed (software-detected violation). */
    AsanReport,
};

/** One dynamic operation as consumed by a timing CPU model. */
struct DynOp
{
    std::uint64_t seq = 0;  ///< global dynamic sequence number
    Addr pc = 0;            ///< instruction PC (for I-cache and bpred)
    Opcode op = Opcode::Nop;
    OpClass cls = OpClass::No_OpClass;
    OpSource source = OpSource::Program;

    RegId rd = noReg;
    RegId rs1 = noReg;
    RegId rs2 = noReg;

    // Memory ops
    Addr eaddr = invalidAddr; ///< effective address
    std::uint8_t size = 0;    ///< access size in bytes

    // Control flow (resolved outcome from the functional emulator)
    bool isBranch = false;
    bool taken = false;
    Addr nextPc = 0;          ///< architecturally correct next PC

    FaultKind fault = FaultKind::None;

    bool isLoad() const { return op == Opcode::Load; }
    bool isStore() const { return op == Opcode::Store; }
    bool isArm() const { return op == Opcode::Arm; }
    bool isDisarm() const { return op == Opcode::Disarm; }
    bool isMem() const { return eaddr != invalidAddr; }
    /** Anything handled by the store queue (writes memory). */
    bool isStoreLike() const { return isStore() || isArm() || isDisarm(); }
};

/**
 * Pull interface for dynamic op streams. The functional emulator and
 * the directed test drivers implement this; CPU models consume it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic op.
     * @param out filled with the next op on success.
     * @return false when the stream is exhausted (program halted).
     */
    virtual bool next(DynOp &out) = 0;
};

} // namespace rest::isa

#endif // REST_ISA_DYN_OP_HH
