/**
 * @file
 * Program and function containers for the mini-ISA, plus a builder
 * used by the workload generators and instrumentation passes.
 */

#ifndef REST_ISA_PROGRAM_HH
#define REST_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "util/types.hh"

namespace rest::isa
{

/**
 * A stack-allocated buffer declared by a function.
 *
 * The generator declares buffers symbolically; the frame-layout pass of
 * the configured protection scheme assigns 'offset' (relative to the
 * frame pointer) and may surround the buffer with redzones.
 */
struct StackBuf
{
    std::uint32_t size = 0;     ///< requested size in bytes
    bool vulnerable = true;     ///< eligible for redzone protection
    std::int64_t offset = -1;   ///< assigned fp-relative offset
};

/**
 * One function: a straight vector of instructions with branch targets
 * as indices into that vector, plus stack-frame metadata.
 */
struct Function
{
    std::string name;
    std::vector<Inst> insts;
    std::vector<StackBuf> bufs;
    std::int64_t frameSize = 0; ///< assigned by the layout pass

    /** Render the function as assembly-like text. */
    std::string toString() const;
};

/**
 * A whole program. Function 0 is the entry point. Each static
 * instruction has a global PC: pcBase(func) + 4 * inst index, used by
 * the I-cache and branch predictor models.
 */
struct Program
{
    std::vector<Function> funcs;

    /** Base PC of a function. */
    Addr pcBase(std::size_t func_idx) const;

    /** Total static instruction count. */
    std::size_t numInsts() const;

    /** Render the whole program as assembly-like text. */
    std::string toString() const;
};

/**
 * Fluent helper for emitting instructions into a function. Wraps label
 * management so generators and passes never hand-compute branch
 * targets.
 */
class FuncBuilder
{
  public:
    explicit FuncBuilder(std::string name) { fn_.name = std::move(name); }

    /** Declare a stack buffer; returns its symbolic id. */
    int
    stackBuf(std::uint32_t size, bool vulnerable = true)
    {
        fn_.bufs.push_back({size, vulnerable, -1});
        return static_cast<int>(fn_.bufs.size()) - 1;
    }

    /** Append an instruction; returns its index. */
    int
    emit(Inst inst)
    {
        fn_.insts.push_back(inst);
        return static_cast<int>(fn_.insts.size()) - 1;
    }

    /** Current next-instruction index (forward-label placeholder). */
    int here() const { return static_cast<int>(fn_.insts.size()); }

    /** Patch the branch target of the instruction at 'idx' to 'tgt'. */
    void
    patchTarget(int idx, int tgt)
    {
        fn_.insts.at(static_cast<std::size_t>(idx)).target = tgt;
    }

    // --- Conveniences for the common emission patterns ---

    void movImm(RegId rd, std::int64_t v)
    { emit({Opcode::MovImm, rd, noReg, noReg, 8, v, -1, -1}); }

    void mov(RegId rd, RegId rs)
    { emit({Opcode::Mov, rd, rs, noReg, 8, 0, -1, -1}); }

    void addI(RegId rd, RegId rs, std::int64_t v)
    { emit({Opcode::AddI, rd, rs, noReg, 8, v, -1, -1}); }

    void alu(Opcode op, RegId rd, RegId rs1, RegId rs2)
    { emit({op, rd, rs1, rs2, 8, 0, -1, -1}); }

    void load(RegId rd, RegId base, std::int64_t off, std::uint8_t w = 8)
    { emit({Opcode::Load, rd, base, noReg, w, off, -1, -1}); }

    void store(RegId val, RegId base, std::int64_t off, std::uint8_t w = 8)
    { emit({Opcode::Store, noReg, base, val, w, off, -1, -1}); }

    /** lea of a symbolic stack buffer: rd = fp + offset(buf). */
    void leaBuf(RegId rd, int buf_id)
    { emit({Opcode::AddI, rd, regFp, noReg, 8, 0, -1, buf_id}); }

    int branch(Opcode op, RegId rs1, RegId rs2, int tgt = -1)
    { return emit({op, noReg, rs1, rs2, 8, 0, tgt, -1}); }

    int jmp(int tgt = -1)
    { return emit({Opcode::Jmp, noReg, noReg, noReg, 8, 0, tgt, -1}); }

    void call(int func_idx)
    { emit({Opcode::Call, noReg, noReg, noReg, 8, 0, func_idx, -1}); }

    void ret() { emit({Opcode::Ret, noReg, noReg, noReg, 8, 0, -1, -1}); }

    void halt() { emit({Opcode::Halt, noReg, noReg, noReg, 8, 0, -1, -1}); }

    /** Take the finished function. */
    Function take() { return std::move(fn_); }

  private:
    Function fn_;
};

} // namespace rest::isa

#endif // REST_ISA_PROGRAM_HH
