/**
 * @file
 * Static instruction representation for the mini-ISA.
 */

#ifndef REST_ISA_INST_HH
#define REST_ISA_INST_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "util/types.hh"

namespace rest::isa
{

/** Number of architectural integer registers. */
inline constexpr unsigned numRegs = 32;

/** Register id type; regZero reads as 0 and ignores writes. */
using RegId = std::uint8_t;

inline constexpr RegId regZero = 0;   ///< hardwired zero
inline constexpr RegId regSp = 30;    ///< stack pointer
inline constexpr RegId regFp = 29;    ///< frame pointer
inline constexpr RegId regRet = 28;   ///< return-value register
inline constexpr RegId noReg = 0xff;  ///< "no register" sentinel

/**
 * One static instruction.
 *
 * Addressing mode for memory ops: effective addr = reg[rs1] + imm.
 * Conditional branches compare reg[rs1] with reg[rs2] and jump to
 * 'target' (an instruction index within the same function). Call's
 * 'target' is a function index within the program.
 *
 * 'bufId' >= 0 marks an immediate that symbolically refers to a stack
 * buffer of the enclosing function; the frame-layout pass rewrites
 * 'imm' to the buffer's frame offset for the configured protection
 * scheme (see runtime/instrumentation.hh).
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    RegId rd = noReg;
    RegId rs1 = noReg;
    RegId rs2 = noReg;
    std::uint8_t width = 8;   ///< access width in bytes for Load/Store
    std::int64_t imm = 0;
    std::int32_t target = -1; ///< branch target (inst idx) / callee idx
    std::int32_t bufId = -1;  ///< symbolic stack-buffer reference
    /** Attribution tag, set by the instrumentation passes. */
    OpSource tag = OpSource::Program;

    /** Render this instruction as assembly-like text. */
    std::string toString() const;
};

} // namespace rest::isa

#endif // REST_ISA_INST_HH
