/**
 * @file
 * Decoded-op cache: per-static-instruction DynOp templates.
 *
 * The emulator builds one DynOp per dynamic instruction; everything
 * except the data-dependent fields (seq, eaddr, branch outcome,
 * fault) is a pure function of the static Inst and its position —
 * pc, opcode, class, source tag, register ids, access width. The
 * cache decodes each static instruction once per program and hands
 * the emulator a template to copy, so the per-op decode work (the
 * isRuntimeOp/opClassOf classification and pc arithmetic) is paid
 * once instead of per dynamic op.
 *
 * Templates are stored in an Arena, one contiguous run per function,
 * and the arena's blocks are recycled when a different program is
 * prepared (eviction on program change).
 */

#ifndef REST_ISA_DECODE_CACHE_HH
#define REST_ISA_DECODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "isa/dyn_op.hh"
#include "isa/program.hh"
#include "util/arena.hh"
#include "util/logging.hh"

namespace rest::isa
{

class DecodeCache
{
  public:
    /**
     * (Re)build the template table for 'program' unless it is already
     * the cached one. Identity is the Program object plus its total
     * instruction count, so re-preparing after in-place modification
     * (e.g. re-instrumentation) also rebuilds.
     * @return true when a (re)build happened.
     */
    bool
    prepare(const Program &program)
    {
        if (cachedFor(program))
            return false;
        arena_.reset();
        funcs_.clear();
        funcs_.reserve(program.funcs.size());
        for (std::size_t f = 0; f < program.funcs.size(); ++f) {
            const auto &insts = program.funcs[f].insts;
            DynOp *run = arena_.alloc<DynOp>(insts.size());
            const Addr pc_base = program.pcBase(f);
            for (std::size_t i = 0; i < insts.size(); ++i)
                decodeInto(run[i], insts[i], pc_base + 4 * i);
            funcs_.push_back({run, insts.size()});
        }
        program_ = &program;
        numInsts_ = program.numInsts();
        ++rebuilds_;
        return true;
    }

    /** Is the table currently built for exactly this program? */
    bool
    cachedFor(const Program &program) const
    {
        return program_ == &program && numInsts_ == program.numInsts();
    }

    /** Template for static instruction 'inst' of function 'func'. */
    const DynOp &
    entry(std::size_t func, std::size_t inst) const
    {
        rest_assert(func < funcs_.size() && inst < funcs_[func].count,
                    "decode-cache index out of range");
        return funcs_[func].run[inst];
    }

    /**
     * Whole template row for 'func' — lets a consumer that steps
     * through one function hoist the table lookup (and its bounds
     * check) out of its per-instruction path. Valid until the next
     * prepare().
     */
    const DynOp *
    row(std::size_t func) const
    {
        rest_assert(func < funcs_.size(), "decode-cache row out of range");
        return funcs_[func].run;
    }

    /** Times the table was (re)built — eviction observability. */
    std::uint64_t rebuilds() const { return rebuilds_; }

  private:
    struct FuncRun
    {
        DynOp *run = nullptr;
        std::size_t count = 0;
    };

    static void
    decodeInto(DynOp &op, const Inst &inst, Addr pc)
    {
        op.pc = pc;
        op.op = inst.op;
        op.cls = isRuntimeOp(inst.op) ? OpClass::Branch
                                      : opClassOf(inst.op);
        op.source = inst.tag;
        op.rd = inst.rd;
        op.rs1 = inst.rs1;
        op.rs2 = inst.rs2;
        op.size = inst.width;
    }

    const Program *program_ = nullptr;
    std::size_t numInsts_ = 0;
    util::Arena arena_;
    std::vector<FuncRun> funcs_;
    std::uint64_t rebuilds_ = 0;
};

} // namespace rest::isa

#endif // REST_ISA_DECODE_CACHE_HH
