/**
 * @file
 * Opcode and operation-class definitions for the reproduction's
 * mini-ISA.
 *
 * The paper implements REST on x86 inside gem5, appropriating the
 * xsave/xrstor encodings for the new arm/disarm instructions. Our
 * substitution is a small RISC-like ISA with first-class Arm/Disarm
 * opcodes (see DESIGN.md §1); only the dynamic operation mix matters
 * for the measured effects, not the encoding.
 */

#ifndef REST_ISA_OPCODE_HH
#define REST_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace rest::isa
{

/** The complete opcode set of the mini-ISA. */
enum class Opcode : std::uint8_t
{
    Nop,
    Halt,

    // Integer ALU
    Add,
    Sub,
    Mul,
    Div,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    AddI,
    AndI,
    OrI,
    XorI,
    ShlI,
    ShrI,
    MovImm,
    Mov,
    Slt,
    SltI,

    // Floating point (modelled on the integer register file; only the
    // latency class differs)
    FAdd,
    FMul,
    FDiv,

    // Memory (width field selects 1/2/4/8 bytes)
    Load,
    Store,

    // Control flow
    Beq,
    Bne,
    Blt,
    Bge,
    Jmp,
    Call,
    Ret,

    // REST primitive (ISA extension, §III-A of the paper)
    Arm,
    Disarm,

    // AddressSanitizer check trap: given a shadow byte and the original
    // access address/width, fault if the access is invalid. Stands in
    // for ASan's compare+branch+report slow path as one 1-cycle op.
    AsanCheck,

    // Runtime pseudo-ops, expanded by the functional emulator into the
    // injected instruction stream of the configured runtime (allocator,
    // libc interceptors). They never reach the timing model themselves.
    RtMalloc,
    RtFree,
    RtMemcpy,
    RtMemset,
    RtStrcpy,

    NumOpcodes,
};

/** Timing classes consumed by the CPU models' latency tables. */
enum class OpClass : std::uint8_t
{
    No_OpClass,
    IntAlu,
    IntMult,
    IntDiv,
    FloatAdd,
    FloatMult,
    FloatDiv,
    MemRead,
    MemWrite,
    MemArm,     // REST arm: functionally a (wide) store
    MemDisarm,  // REST disarm: functionally a (wide) store
    Branch,
    NumOpClasses,
};

/**
 * Attribution of a dynamic op to the component that produced it, used
 * by the Figure-3/Figure-7 overhead breakdowns. "Program" ops come
 * from the original workload; the rest are added by instrumentation
 * or injected by the runtime models.
 */
enum class OpSource : std::uint8_t
{
    Program,       ///< original workload instruction
    AccessCheck,   ///< ASan shadow-check sequence
    StackSetup,    ///< stack redzone poison/arm code
    Allocator,     ///< allocator bookkeeping / redzone management
    Interceptor,   ///< libc interceptor validation work
};

/** Number of OpSource kinds. */
inline constexpr unsigned numOpSources = 5;

/** Map an opcode to its timing class. */
OpClass opClassOf(Opcode op);

/** Human-readable mnemonic for an opcode. */
std::string_view mnemonic(Opcode op);

/** True for Load/Store/Arm/Disarm (ops that carry an effective addr). */
bool isMemOp(Opcode op);

/** True for conditional branches and jumps/calls/returns. */
bool isControlOp(Opcode op);

/** True for the runtime pseudo-ops. */
bool isRuntimeOp(Opcode op);

} // namespace rest::isa

#endif // REST_ISA_OPCODE_HH
