#include "isa/opcode.hh"

#include "util/logging.hh"

namespace rest::isa
{

OpClass
opClassOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
        return OpClass::No_OpClass;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::MovImm:
      case Opcode::Mov:
      case Opcode::Slt:
      case Opcode::SltI:
      case Opcode::AsanCheck:
        return OpClass::IntAlu;
      case Opcode::Mul:
        return OpClass::IntMult;
      case Opcode::Div:
        return OpClass::IntDiv;
      case Opcode::FAdd:
        return OpClass::FloatAdd;
      case Opcode::FMul:
        return OpClass::FloatMult;
      case Opcode::FDiv:
        return OpClass::FloatDiv;
      case Opcode::Load:
        return OpClass::MemRead;
      case Opcode::Store:
        return OpClass::MemWrite;
      case Opcode::Arm:
        return OpClass::MemArm;
      case Opcode::Disarm:
        return OpClass::MemDisarm;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return OpClass::Branch;
      default:
        rest_panic("opClassOf: runtime pseudo-op or bad opcode ",
                   static_cast<int>(op));
    }
}

std::string_view
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::AddI: return "addi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::MovImm: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Slt: return "slt";
      case Opcode::SltI: return "slti";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Arm: return "arm";
      case Opcode::Disarm: return "disarm";
      case Opcode::AsanCheck: return "asancheck";
      case Opcode::RtMalloc: return "rt.malloc";
      case Opcode::RtFree: return "rt.free";
      case Opcode::RtMemcpy: return "rt.memcpy";
      case Opcode::RtMemset: return "rt.memset";
      case Opcode::RtStrcpy: return "rt.strcpy";
      default: return "<bad>";
    }
}

bool
isMemOp(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::Arm || op == Opcode::Disarm;
}

bool
isControlOp(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        return true;
      default:
        return false;
    }
}

bool
isRuntimeOp(Opcode op)
{
    switch (op) {
      case Opcode::RtMalloc:
      case Opcode::RtFree:
      case Opcode::RtMemcpy:
      case Opcode::RtMemset:
      case Opcode::RtStrcpy:
        return true;
      default:
        return false;
    }
}

} // namespace rest::isa
