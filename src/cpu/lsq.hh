/**
 * @file
 * Load/store queue model with the REST matching-logic extensions of
 * paper Fig. 5 and Table I ("LSQ" column).
 *
 * Store-to-load forwarding normally lets a load take its value from an
 * older in-flight store. Arm and disarm are store-like but must never
 * forward their (implicit) values — the token is a secret. The REST
 * LSQ therefore:
 *   - raises a privileged exception when a load would forward from an
 *     in-flight arm (TokenForward),
 *   - raises when a store overlaps an in-flight arm's granule,
 *   - raises when a disarm is inserted while another disarm to the
 *     same granule is still in flight,
 *   - stores no data value with arm/disarm entries (the value is
 *     implicit and known by the cache).
 */

#ifndef REST_CPU_LSQ_HH
#define REST_CPU_LSQ_HH

#include <algorithm>
#include <cstdint>
#include <deque>

#include "core/exceptions.hh"
#include "util/types.hh"

namespace rest::cpu
{

/** Result of presenting a load to the store queue. */
struct LoadLsqCheck
{
    /** Load takes its value entirely from an older store: 1 cycle. */
    bool forwarded = false;
    /**
     * Load partially overlaps an older normal store; it must wait for
     * that store's write to complete before accessing the cache.
     */
    Cycles mustWaitUntil = 0;
    /** The load hit an in-flight arm: privileged REST exception. */
    core::ViolationKind violation = core::ViolationKind::None;
};

/** Store-queue timing/semantics model. */
class Lsq
{
  public:
    /** One in-flight store-like op (store, arm, or disarm). */
    struct StoreEntry
    {
        std::uint64_t seq = 0;
        Addr addr = 0;
        unsigned size = 0;
        bool isArm = false;
        bool isDisarm = false;
        /** Cycle the write completes at the cache (entry then frees). */
        Cycles writeCompleteAt = 0;
    };

    explicit Lsq(unsigned sq_entries = 32) : sqEntries_(sq_entries) {}

    /** Drop entries whose writes completed before 'now'. */
    void
    prune(Cycles now)
    {
        while (!entries_.empty() &&
               entries_.front().writeCompleteAt <= now) {
            entries_.pop_front();
        }
    }

    /**
     * Check a load of [addr, addr+size) against older in-flight
     * store-like entries, youngest-first (paper Fig. 5 logic).
     */
    LoadLsqCheck
    checkLoad(std::uint64_t load_seq, Addr addr, unsigned size) const
    {
        LoadLsqCheck res;
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
            if (it->seq >= load_seq)
                continue;
            if (!overlaps(addr, size, it->addr, it->size))
                continue;
            if (it->isArm) {
                // The load would "hit" the in-flight arm: the match
                // logic detects the line-address + offset match and
                // raises instead of forwarding the secret.
                res.violation = core::ViolationKind::TokenForward;
                return res;
            }
            if (it->isDisarm) {
                // Disarm zeroes its granule; the value (zero) is
                // implicit, but the entry carries no data to forward,
                // so the load waits for the write to reach the cache.
                res.mustWaitUntil =
                    std::max(res.mustWaitUntil, it->writeCompleteAt);
                return res;
            }
            if (covers(it->addr, it->size, addr, size)) {
                res.forwarded = true;
            } else {
                // Partial overlap: not forwardable.
                res.mustWaitUntil =
                    std::max(res.mustWaitUntil, it->writeCompleteAt);
            }
            return res; // youngest matching entry decides
        }
        return res;
    }

    /**
     * Check the REST rules for inserting a store-like op (Table I):
     * stores fault when they overlap an in-flight arm; disarms fault
     * when another disarm to the same granule is in flight.
     */
    core::ViolationKind
    checkInsert(Addr addr, unsigned size, bool is_arm,
                bool is_disarm) const
    {
        for (const auto &e : entries_) {
            if (!overlaps(addr, size, e.addr, e.size))
                continue;
            if (is_disarm && e.isDisarm)
                return core::ViolationKind::DisarmUnarmed;
            if (!is_arm && !is_disarm && e.isArm)
                return core::ViolationKind::TokenForward;
        }
        return core::ViolationKind::None;
    }

    /**
     * Insert a store-like entry (after checkInsert passed). The SQ
     * drains to the cache in program order, so an entry cannot
     * complete before its elders: completion times are made monotone
     * at insert.
     */
    void
    insert(StoreEntry entry)
    {
        if (!entries_.empty()) {
            entry.writeCompleteAt = std::max(
                entry.writeCompleteAt,
                entries_.back().writeCompleteAt);
        }
        entries_.push_back(entry);
    }

    /** Number of in-flight entries. */
    std::size_t occupancy() const { return entries_.size(); }

    /** Is the SQ structurally full? */
    bool full() const { return entries_.size() >= sqEntries_; }

    /** First cycle at which an entry will free (valid when full()). */
    Cycles
    earliestFree() const
    {
        // In-order drain: the oldest entry frees first.
        return entries_.empty() ? 0 : entries_.front().writeCompleteAt;
    }

    void clear() { entries_.clear(); }

  private:
    static bool
    overlaps(Addr a1, unsigned s1, Addr a2, unsigned s2)
    {
        return a1 < a2 + s2 && a2 < a1 + s1;
    }

    /** Does [a1, a1+s1) fully cover [a2, a2+s2)? */
    static bool
    covers(Addr a1, unsigned s1, Addr a2, unsigned s2)
    {
        return a1 <= a2 && a2 + s2 <= a1 + s1;
    }

    unsigned sqEntries_;
    std::deque<StoreEntry> entries_;
};

} // namespace rest::cpu

#endif // REST_CPU_LSQ_HH
