/**
 * @file
 * A TAGE-style conditional branch predictor with a return address
 * stack, standing in for the L-TAGE configuration of Table II
 * (1 bimodal + 12 tagged components, ~31k entries total).
 */

#ifndef REST_CPU_BPRED_HH
#define REST_CPU_BPRED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace rest::cpu
{

/** TAGE predictor: bimodal base + N geometric-history tagged tables. */
class TagePredictor
{
  public:
    static constexpr unsigned numTagged = 12;

    TagePredictor();

    /**
     * Predict the direction of a conditional branch.
     * @param pc branch PC.
     * @return predicted taken?
     */
    bool predict(Addr pc);

    /**
     * Train with the resolved outcome and update global history.
     * Must be called exactly once per predicted branch, in order.
     * @param pc branch PC.
     * @param taken actual direction.
     * @return true iff the prediction (recomputed pre-update) was
     *         correct.
     */
    bool update(Addr pc, bool taken);

    /** Record an unconditional control transfer in the history. */
    void recordUnconditional(Addr pc, bool taken = true);

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;   // signed 3-bit: >=0 predicts taken
        std::uint8_t useful = 0;
    };

    static constexpr unsigned bimodalBits = 13;  // 8k entries
    static constexpr unsigned taggedBits = 10;   // 1k entries each
    static constexpr unsigned tagBits = 11;

    /**
     * Incrementally folded history register (a circular-shifted CRC
     * of the last 'olen' history bits, compressed to 'clen' bits):
     * O(1) per branch instead of re-folding the whole history.
     */
    struct Folded
    {
        std::uint64_t comp = 0;
        unsigned clen = 1;
        unsigned olen = 1;
        unsigned outPoint = 0;

        void init(unsigned orig_len, unsigned comp_len);
        void push(bool new_bit, bool out_bit);
    };

    unsigned bimodalIndex(Addr pc) const;
    unsigned taggedIndex(Addr pc, unsigned table) const;
    std::uint16_t taggedTag(Addr pc, unsigned table) const;

    /** Shift one bit into the global history and all folded regs. */
    void pushHistory(bool bit);

    /** Internal predict that reports provider component. */
    bool lookup(Addr pc, int &provider, int &alt_pred) const;

    void allocate(Addr pc, bool taken, int provider);

    std::vector<std::int8_t> bimodal_;
    std::array<std::vector<TaggedEntry>, numTagged> tagged_;
    std::array<unsigned, numTagged> histLens_;
    std::array<Folded, numTagged> foldedIdx_;
    std::array<Folded, numTagged> foldedTag_;
    /** Global history as a shift register (bool per branch). */
    std::vector<bool> ghist_;
    std::uint64_t ghistPos_ = 0;
    std::uint8_t useAltOnNa_ = 8;
};

/**
 * Full front-end predictor: TAGE for conditional direction, an
 * always-hit BTB abstraction for direct targets (our ISA encodes
 * targets in the instruction), and a return address stack for Ret.
 */
class BranchPredictor
{
  public:
    BranchPredictor() = default;

    /** Predict a conditional branch's direction. */
    bool predictConditional(Addr pc) { return tage_.predict(pc); }

    /**
     * Resolve a conditional branch.
     * @return true iff predicted correctly.
     */
    bool
    resolveConditional(Addr pc, bool taken)
    {
        bool correct = tage_.update(pc, taken);
        correct_ += correct;
        mispredicts_ += !correct;
        return correct;
    }

    /** Note a call: push the return address. */
    void
    pushReturn(Addr return_pc)
    {
        tage_.recordUnconditional(return_pc);
        if (ras_.size() < rasEntries)
            ras_.push_back(return_pc);
        else
            rasOverflows_++;
    }

    /**
     * Predict and pop for a return.
     * @param actual_target the architecturally correct target.
     * @return true iff the RAS predicted it (mispredict otherwise).
     */
    bool
    predictReturn(Addr actual_target)
    {
        tage_.recordUnconditional(actual_target);
        if (ras_.empty()) {
            ++mispredicts_;
            return false;
        }
        Addr predicted = ras_.back();
        ras_.pop_back();
        bool correct = predicted == actual_target;
        correct_ += correct;
        mispredicts_ += !correct;
        return correct;
    }

    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t corrects() const { return correct_; }

  private:
    static constexpr std::size_t rasEntries = 32;

    TagePredictor tage_;
    std::vector<Addr> ras_;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t correct_ = 0;
    std::uint64_t rasOverflows_ = 0;
};

} // namespace rest::cpu

#endif // REST_CPU_BPRED_HH
