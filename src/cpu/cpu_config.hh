/**
 * @file
 * Core configuration matching Table II of the paper.
 */

#ifndef REST_CPU_CPU_CONFIG_HH
#define REST_CPU_CPU_CONFIG_HH

#include <cstdint>

#include "isa/opcode.hh"
#include "util/types.hh"

namespace rest::cpu
{

/** Out-of-order core parameters (Table II). */
struct CpuConfig
{
    // Table II values
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned writebackWidth = 8;
    unsigned commitWidth = 8;
    unsigned iqEntries = 64;
    unsigned robEntries = 192;
    unsigned lqEntries = 32;
    unsigned sqEntries = 32;

    /**
     * Functional-unit pool sizes. The issue width bounds total issue
     * per cycle, but each op also needs a unit of its class: memory
     * ops contend for the load/store ports, which is where ASan's
     * extra shadow loads hurt on real cores.
     */
    unsigned memPorts = 2;
    unsigned aluUnits = 6;
    unsigned fpUnits = 4;
    unsigned mulDivUnits = 2;

    /**
     * Cycles from a store commit to the L1-D write acknowledgement
     * (bank write + response). Only the debug mode's delayed store
     * commit exposes this on the critical path.
     */
    unsigned storeCommitAckCycles = 2;

    /** Decode+rename depth between fetch and dispatch. */
    unsigned frontendDepth = 4;
    /** Cycles from branch resolution to fetch restart. */
    unsigned mispredictPenalty = 12;

    /**
     * When true, store-like ops (stores, arms, disarms) hold ROB
     * commit until their cache write completes: the debug-mode
     * precise-exception guarantee (paper §III-B "Exception
     * Reporting"). Secure mode leaves this false, committing stores
     * eagerly into the write buffer.
     */
    bool delayStoreCommit = false;

    /**
     * Ablation (paper §III-B "LSQ Modification"): serialize arm and
     * disarm execution — each REST op waits for the whole pipeline to
     * drain and stalls fetch until it commits — instead of using the
     * modified LSQ matching logic. "Simple to implement, significant
     * performance penalties."
     */
    bool serializeRestOps = false;

    /**
     * When true (paper's default hardware), the L1-D supports
     * critical-word-first fills; secure-mode loads may commit before
     * the whole line arrives and token checks resolve. Turning it off
     * adds the fill-completion delay to every missing load (used by
     * the ablation bench).
     */
    bool criticalWordFirst = true;
};

/** Execution latency of one op class, in cycles. */
constexpr Cycles
opLatency(isa::OpClass cls)
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 3;
      case OpClass::IntDiv: return 12;
      case OpClass::FloatAdd: return 2;
      case OpClass::FloatMult: return 4;
      case OpClass::FloatDiv: return 10;
      case OpClass::Branch: return 1;
      case OpClass::MemRead:
      case OpClass::MemWrite:
      case OpClass::MemArm:
      case OpClass::MemDisarm:
        return 1; // address generation; memory latency added separately
      default: return 1;
    }
}

} // namespace rest::cpu

#endif // REST_CPU_CPU_CONFIG_HH
