/**
 * @file
 * A simple in-order scalar core model.
 *
 * The paper's Figure 3 (breakdown of ASan overhead components) was
 * measured on an in-order core with the Table-II memory system; this
 * model reproduces that setup. Loads stall dependents on use; stores
 * drain through a small write buffer; conditional branches pay a short
 * redirect penalty on a mispredict.
 */

#ifndef REST_CPU_INORDER_CPU_HH
#define REST_CPU_INORDER_CPU_HH

#include <array>
#include <vector>

#include "core/token.hh"
#include "cpu/bpred.hh"
#include "cpu/o3_cpu.hh"
#include "isa/dyn_op.hh"
#include "mem/rest_l1_cache.hh"
#include "util/stats.hh"

namespace rest::cpu
{

/** In-order scalar core parameters. */
struct InOrderConfig
{
    unsigned mispredictPenalty = 3;
    unsigned writeBufferEntries = 8;
};

/** The in-order CPU model. */
class InOrderCpu
{
  public:
    InOrderCpu(const InOrderConfig &cfg, mem::Cache &icache,
               mem::RestL1Cache &dcache);

    /** Run a dynamic op stream to completion (or violation, or cap). */
    RunResult run(isa::TraceSource &src,
                  std::uint64_t max_ops = ~std::uint64_t(0));

    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }

  private:
    InOrderConfig cfg_;
    mem::Cache &icache_;
    mem::RestL1Cache &dcache_;
    BranchPredictor bpred_;

    std::array<Cycles, isa::numRegs> regReadyAt_{};
    std::vector<Cycles> wbFreeAt_;
    /** Persistent core clock and fetch-line state: like the O3 model,
     *  consecutive run() calls continue the same timeline, so quantum-
     *  sliced multicore execution accumulates naturally. */
    Cycles cycle_ = 0;
    Addr lastLine_ = invalidAddr;

    stats::StatGroup stats_;
    stats::Scalar &committedOps_;
    stats::Scalar &totalCycles_;
};

} // namespace rest::cpu

#endif // REST_CPU_INORDER_CPU_HH
