#include "cpu/bpred.hh"

#include <algorithm>

namespace rest::cpu
{

namespace
{

/** Geometric history length series, L-TAGE style (min 4, max ~640). */
constexpr std::array<unsigned, TagePredictor::numTagged> histSeries = {
    4, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640,
};

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

} // namespace

TagePredictor::TagePredictor()
    : bimodal_(1u << bimodalBits, 0), histLens_(histSeries),
      ghist_(1024, false)
{
    for (auto &table : tagged_)
        table.assign(1u << taggedBits, {});
    for (unsigned t = 0; t < numTagged; ++t) {
        foldedIdx_[t].init(histLens_[t], taggedBits);
        foldedTag_[t].init(histLens_[t], tagBits);
    }
}

void
TagePredictor::Folded::init(unsigned orig_len, unsigned comp_len)
{
    olen = orig_len;
    clen = comp_len;
    outPoint = olen % clen;
    comp = 0;
}

void
TagePredictor::Folded::push(bool new_bit, bool out_bit)
{
    comp = (comp << 1) | (new_bit ? 1 : 0);
    comp ^= (out_bit ? 1ull : 0ull) << outPoint;
    comp ^= comp >> clen;
    comp &= (1ull << clen) - 1;
}

void
TagePredictor::pushHistory(bool bit)
{
    for (unsigned t = 0; t < numTagged; ++t) {
        // The bit falling out of this table's history window.
        std::size_t out_pos = (ghistPos_ + ghist_.size() -
                               histLens_[t]) % ghist_.size();
        bool out_bit = ghist_[out_pos];
        foldedIdx_[t].push(bit, out_bit);
        foldedTag_[t].push(bit, out_bit);
    }
    ghist_[ghistPos_ % ghist_.size()] = bit;
    ghistPos_ = (ghistPos_ + 1) % ghist_.size();
}

unsigned
TagePredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & ((1u << bimodalBits) - 1));
}

unsigned
TagePredictor::taggedIndex(Addr pc, unsigned table) const
{
    return static_cast<unsigned>(
        (mix(pc >> 2) ^ foldedIdx_[table].comp ^ (table * 0x9e37u)) &
        ((1u << taggedBits) - 1));
}

std::uint16_t
TagePredictor::taggedTag(Addr pc, unsigned table) const
{
    return static_cast<std::uint16_t>(
        (mix(pc) ^ (foldedTag_[table].comp << 1) ^ table) &
        ((1u << tagBits) - 1));
}

bool
TagePredictor::lookup(Addr pc, int &provider, int &alt_pred) const
{
    provider = -1;
    int alt_provider = -1;
    for (int t = numTagged - 1; t >= 0; --t) {
        const auto &e = tagged_[t][taggedIndex(pc, t)];
        if (e.tag == taggedTag(pc, t)) {
            if (provider < 0) {
                provider = t;
            } else if (alt_provider < 0) {
                alt_provider = t;
                break;
            }
        }
    }

    bool bim = bimodal_[bimodalIndex(pc)] >= 0;
    alt_pred = alt_provider >= 0
        ? (tagged_[alt_provider][taggedIndex(pc, alt_provider)].ctr >= 0)
        : bim;

    if (provider < 0)
        return bim;
    const auto &e = tagged_[provider][taggedIndex(pc, provider)];
    // "Use alternate on newly allocated" heuristic: weak counters with
    // no proven usefulness fall back to the alternate prediction.
    bool weak = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
    if (weak && useAltOnNa_ >= 8)
        return alt_pred != 0;
    return e.ctr >= 0;
}

bool
TagePredictor::predict(Addr pc)
{
    int provider, alt;
    return lookup(pc, provider, alt);
}

void
TagePredictor::allocate(Addr pc, bool taken, int provider)
{
    // Allocate in a longer-history table than the provider.
    for (unsigned t = provider + 1; t < numTagged; ++t) {
        auto &e = tagged_[t][taggedIndex(pc, t)];
        if (e.useful == 0) {
            e.tag = taggedTag(pc, t);
            e.ctr = taken ? 0 : -1;
            return;
        }
    }
    // No free slot: decay usefulness along the way.
    for (unsigned t = provider + 1; t < numTagged; ++t) {
        auto &e = tagged_[t][taggedIndex(pc, t)];
        if (e.useful > 0)
            --e.useful;
    }
}

bool
TagePredictor::update(Addr pc, bool taken)
{
    int provider, alt_i;
    bool pred = lookup(pc, provider, alt_i);
    bool alt_pred = alt_i != 0;
    bool correct = (pred == taken);

    if (provider >= 0) {
        auto &e = tagged_[provider][taggedIndex(pc, provider)];
        bool provider_pred = e.ctr >= 0;
        if (provider_pred != alt_pred) {
            if (provider_pred == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
            // Track whether the alternate tends to beat weak entries.
            bool weak = (e.ctr == 0 || e.ctr == -1) && e.useful == 0;
            if (weak) {
                if (alt_pred == taken && useAltOnNa_ < 15)
                    ++useAltOnNa_;
                else if (alt_pred != taken && useAltOnNa_ > 0)
                    --useAltOnNa_;
            }
        }
        if (taken) {
            if (e.ctr < 3)
                ++e.ctr;
        } else {
            if (e.ctr > -4)
                --e.ctr;
        }
        if (provider_pred != taken)
            allocate(pc, taken, provider);
    } else {
        auto &c = bimodal_[bimodalIndex(pc)];
        if (taken) {
            if (c < 1)
                ++c;
        } else {
            if (c > -2)
                --c;
        }
        if ((c >= 0) != taken || pred != taken)
            allocate(pc, taken, -1);
    }

    pushHistory(taken);
    return correct;
}

void
TagePredictor::recordUnconditional(Addr pc, bool taken)
{
    pushHistory(taken ^ (((pc >> 3) & 1) != 0));
}

} // namespace rest::cpu
