#include "cpu/o3_cpu.hh"

#include <algorithm>

#include "util/bit_utils.hh"
#include "util/logging.hh"
#include "util/trace.hh"

namespace rest::cpu
{

O3Cpu::O3Cpu(const CpuConfig &cfg, core::RestMode mode,
             mem::Cache &icache, mem::RestL1Cache &dcache)
    : cfg_(cfg), mode_(mode), icache_(icache), dcache_(dcache),
      lsq_(cfg.sqEntries),
      robFreeAt_(cfg.robEntries, 0),
      iqFreeAt_(cfg.iqEntries, 0),
      lqFreeAt_(cfg.lqEntries, 0),
      issueCnt_(issueWindow, 0), issueEpoch_(issueWindow, ~Cycles(0)),
      stats_("o3cpu"),
      committedOps_(stats_.addScalar("committed_ops",
          "dynamic ops committed")),
      totalCycles_(stats_.addScalar("cycles", "total cycles simulated")),
      iqFullStallCycles_(stats_.addScalar("iq_full_stall_cycles",
          "dispatch cycles lost to a full IQ")),
      robStallCycles_(stats_.addScalar("rob_full_stall_cycles",
          "dispatch cycles lost to a full ROB")),
      sqFullStallCycles_(stats_.addScalar("sq_full_stall_cycles",
          "dispatch cycles lost to a full SQ")),
      robStoreBlockedCycles_(stats_.addScalar("rob_store_blocked_cycles",
          "commit cycles the ROB head was blocked by a store write "
          "(debug mode)")),
      branchMispredicts_(stats_.addScalar("branch_mispredicts",
          "resolved branch mispredictions")),
      loadsForwarded_(stats_.addScalar("loads_forwarded",
          "loads satisfied by store-to-load forwarding")),
      storesCommitted_(stats_.addScalar("stores_committed", "")),
      armsCommitted_(stats_.addScalar("arms_committed", "")),
      disarmsCommitted_(stats_.addScalar("disarms_committed", ""))
{
    fuPoolSize_ = {cfg.memPorts, cfg.aluUnits, cfg.fpUnits,
                   cfg.mulDivUnits};
    for (unsigned pool = 0; pool < 4; ++pool) {
        fuCnt_[pool].assign(issueWindow, 0);
        fuEpoch_[pool].assign(issueWindow, ~Cycles(0));
    }
}

void
O3Cpu::resetPipeline()
{
    fetchCycle_ = 0;
    fetchedThisCycle_ = 0;
    lastFetchLine_ = invalidAddr;
    std::fill(robFreeAt_.begin(), robFreeAt_.end(), 0);
    std::fill(iqFreeAt_.begin(), iqFreeAt_.end(), 0);
    std::fill(lqFreeAt_.begin(), lqFreeAt_.end(), 0);
    issueCnt_.assign(issueWindow, 0);
    issueEpoch_.assign(issueWindow, ~Cycles(0));
    for (unsigned pool = 0; pool < 4; ++pool) {
        fuCnt_[pool].assign(issueWindow, 0);
        fuEpoch_[pool].assign(issueWindow, ~Cycles(0));
    }
    regReadyAt_.fill(0);
    serializeUntil_ = false;
    lastCommitCycle_ = 0;
    commitsThisCycle_ = 0;
    lsq_.clear();
}

Cycles
O3Cpu::claimIssueSlot(Cycles when, unsigned pool, Cycles fu_busy)
{
    for (Cycles t = when;; ++t) {
        unsigned idx = static_cast<unsigned>(t % issueWindow);
        if (issueEpoch_[idx] != t) {
            issueEpoch_[idx] = t;
            issueCnt_[idx] = 0;
        }
        if (fuEpoch_[pool][idx] != t) {
            fuEpoch_[pool][idx] = t;
            fuCnt_[pool][idx] = 0;
        }
        if (issueCnt_[idx] >= cfg_.issueWidth ||
            fuCnt_[pool][idx] >= fuPoolSize_[pool]) {
            continue;
        }
        ++issueCnt_[idx];
        ++fuCnt_[pool][idx];
        // Non-pipelined units (dividers) stay busy past the issue
        // cycle.
        for (Cycles k = 1; k < fu_busy; ++k) {
            unsigned j = static_cast<unsigned>((t + k) % issueWindow);
            if (fuEpoch_[pool][j] != t + k) {
                fuEpoch_[pool][j] = t + k;
                fuCnt_[pool][j] = 0;
            }
            if (fuCnt_[pool][j] < 255)
                ++fuCnt_[pool][j];
        }
        return t;
    }
}

Cycles
O3Cpu::fetchOp(Addr pc, Cycles earliest)
{
    if (fetchCycle_ < earliest) {
        fetchCycle_ = earliest;
        fetchedThisCycle_ = 0;
    }

    // One I-cache line feeds the fetch group; a new line probes the
    // I-cache, and only a miss stalls the (pipelined) front end.
    Addr line = alignDown(pc, icache_.blockSize());
    if (line != lastFetchLine_) {
        Cycles ready = icache_.access(pc, false, fetchCycle_);
        if (!icache_.lastWasHit()) {
            fetchCycle_ = ready;
            fetchedThisCycle_ = 0;
        }
        lastFetchLine_ = line;
    }

    if (fetchedThisCycle_ >= cfg_.fetchWidth) {
        ++fetchCycle_;
        fetchedThisCycle_ = 0;
    }
    ++fetchedThisCycle_;
    return fetchCycle_;
}

RunResult
O3Cpu::run(isa::TraceSource &src, std::uint64_t max_ops)
{
    RunResult result;
    isa::DynOp op;

    // Tracing: the sink (if any) is fixed for the whole run — hoist
    // the lookup so the disabled case costs one branch per op.
    trace::TraceSink *ts = trace::sink();
    const bool trace_pipe =
        ts && ts->flagEnabled(trace::Flag::O3Pipe);
    const std::uint32_t pipe_track =
        trace_pipe ? ts->trackFor(stats_.name()) : 0;

    std::uint64_t n = 0;          // dynamic index
    serializeUntil_ = false;
    std::uint64_t n_loads = 0;    // loads seen (LQ ring index)
    Cycles redirect_at = 0;       // earliest fetch after a mispredict
    const bool debug_mode = mode_ == core::RestMode::Debug;
    const bool delay_stores = debug_mode || cfg_.delayStoreCommit;
    // Cycles a load miss waits for the rest of the line after the
    // critical word arrives. Debug mode always pays it (a load is not
    // released from the MSHR while the delivered word partially
    // matches the token, SIII-B); disabling critical-word-first pays
    // it in every mode (ablation).
    const Cycles fill_tail = 4;
    const bool pay_fill_tail = debug_mode || !cfg_.criticalWordFirst;

    while (n < max_ops && src.next(op)) {
        // ---------------- Fetch ----------------
        Cycles fetch_cycle = fetchOp(op.pc, redirect_at);

        // ---------------- Branch prediction ----------------
        bool mispredicted = false;
        if (op.isBranch) {
            using isa::Opcode;
            switch (op.op) {
              case Opcode::Beq:
              case Opcode::Bne:
              case Opcode::Blt:
              case Opcode::Bge:
                mispredicted = !bpred_.resolveConditional(op.pc, op.taken);
                break;
              case Opcode::Call:
                bpred_.pushReturn(op.pc + 4);
                break;
              case Opcode::Ret:
                mispredicted = !bpred_.predictReturn(op.nextPc);
                break;
              default:
                break; // direct jumps: BTB assumed to hit
            }
            if (op.taken) {
                // A (predicted-)taken branch ends the fetch group.
                ++fetchCycle_;
                fetchedThisCycle_ = 0;
                lastFetchLine_ = invalidAddr;
            }
        }

        // ---------------- Dispatch ----------------
        Cycles dispatch = fetch_cycle + cfg_.frontendDepth;

        if (cfg_.serializeRestOps && (op.isArm() || op.isDisarm())) {
            // Serialization ablation (§III-B): the REST op must be
            // the only one in flight — wait for everything older to
            // commit, and hold fetch until this op is done.
            dispatch = std::max(dispatch, lastCommitCycle_ + 1);
            serializeUntil_ = true;
        }

        Cycles rob_free = robFreeAt_[n % cfg_.robEntries];
        if (rob_free > dispatch) {
            robStallCycles_ += rob_free - dispatch;
            if (ts && ts->flagOn(trace::Flag::O3Pipe, dispatch)) {
                ts->complete(trace::Flag::O3Pipe, pipe_track,
                             "rob_full_stall", dispatch, rob_free,
                             "seq", n);
            }
            dispatch = rob_free;
        }
        // IQ slots free out of order (any issued entry releases its
        // slot): take the earliest-freeing one.
        auto iq_slot = std::min_element(iqFreeAt_.begin(),
                                        iqFreeAt_.end());
        if (*iq_slot > dispatch) {
            iqFullStallCycles_ += *iq_slot - dispatch;
            if (ts && ts->flagOn(trace::Flag::O3Pipe, dispatch)) {
                ts->complete(trace::Flag::O3Pipe, pipe_track,
                             "iq_full_stall", dispatch, *iq_slot,
                             "seq", n);
            }
            dispatch = *iq_slot;
        }
        if (op.isLoad()) {
            Cycles lq_free = lqFreeAt_[n_loads % cfg_.lqEntries];
            dispatch = std::max(dispatch, lq_free);
        }
        if (op.isStoreLike()) {
            lsq_.prune(dispatch);
            if (lsq_.full()) {
                Cycles free_at = lsq_.earliestFree();
                if (free_at > dispatch) {
                    sqFullStallCycles_ += free_at - dispatch;
                    dispatch = free_at;
                }
                lsq_.prune(dispatch);
            }
        }

        // Back-pressure: a stalled dispatch fills the fetch buffer and
        // halts fetch. Keep the front end within a small skid of
        // dispatch so fetch timing stays meaningful.
        constexpr Cycles fetch_skid = 2;
        if (dispatch > fetchCycle_ + cfg_.frontendDepth + fetch_skid)
            fetchCycle_ = dispatch - cfg_.frontendDepth - fetch_skid;

        // ---------------- Issue ----------------
        Cycles ready = dispatch + 1;
        if (op.rs1 != isa::noReg)
            ready = std::max(ready, regReadyAt_[op.rs1]);
        if (op.rs2 != isa::noReg)
            ready = std::max(ready, regReadyAt_[op.rs2]);

        // Pick the functional-unit pool for this op class.
        unsigned pool_idx;
        switch (op.cls) {
          case isa::OpClass::MemRead:
          case isa::OpClass::MemWrite:
          case isa::OpClass::MemArm:
          case isa::OpClass::MemDisarm:
            pool_idx = 0;
            break;
          case isa::OpClass::FloatAdd:
          case isa::OpClass::FloatMult:
          case isa::OpClass::FloatDiv:
            pool_idx = 2;
            break;
          case isa::OpClass::IntMult:
          case isa::OpClass::IntDiv:
            pool_idx = 3;
            break;
          default:
            pool_idx = 1;
            break;
        }
        // Units are pipelined except the dividers.
        Cycles fu_busy = (op.cls == isa::OpClass::IntDiv ||
                          op.cls == isa::OpClass::FloatDiv)
            ? opLatency(op.cls) : 1;
        Cycles issue = claimIssueSlot(ready, pool_idx, fu_busy);

        // IQ entry occupied from dispatch until issue.
        *iq_slot = issue + 1;
        REST_DPRINTF(trace::Flag::O3Pipe, fetch_cycle, "o3cpu",
                     "seq=", n, " ", isa::mnemonic(op.op),
                     " fetch=", fetch_cycle, " dispatch=", dispatch,
                     " ready=", ready, " issue=", issue);

        // ---------------- Execute ----------------
        Cycles complete = issue + opLatency(op.cls);
        core::ViolationKind lsq_violation = core::ViolationKind::None;
        mem::RestAccess store_wr;

        if (op.isLoad()) {
            lsq_.prune(issue);
            LoadLsqCheck chk = lsq_.checkLoad(n, op.eaddr, op.size);
            if (chk.violation != core::ViolationKind::None) {
                lsq_violation = chk.violation;
                complete = issue + 1;
            } else if (chk.forwarded) {
                ++loadsForwarded_;
                complete = issue + 1;
            } else {
                Cycles start = std::max(issue + 1, chk.mustWaitUntil);
                mem::RestAccess acc =
                    dcache_.loadAccess(op.eaddr, op.size, start);
                complete = acc.completeAt;
                if (pay_fill_tail && !acc.hit)
                    complete += fill_tail;
            }
        } else if (op.isStoreLike()) {
            lsq_.prune(issue);
            lsq_violation = lsq_.checkInsert(op.eaddr, op.size,
                                             op.isArm(), op.isDisarm());
            complete = issue + 1; // address + data ready
        }

        // ---------------- Commit (in order) ----------------
        Cycles commit = std::max(complete + 1, lastCommitCycle_);
        if (commit == lastCommitCycle_ &&
            commitsThisCycle_ >= cfg_.commitWidth) {
            ++commit;
        }

        if (op.isStoreLike() &&
            lsq_violation == core::ViolationKind::None) {
            // Secure mode: the line fetch (store RFO) starts at
            // execute and overlaps younger work; commit is never
            // blocked. Debug mode: like gem5's O3 + classic caches,
            // the store is presented to the L1-D when it reaches the
            // ROB head, and commit waits for the write (and any line
            // fill) to complete -- this is precisely the cost of the
            // precise-exception guarantee (§III-B).
            Cycles write_start = delay_stores ? commit : issue + 1;
            if (op.fault != isa::FaultKind::RestMisaligned) {
                if (op.isArm()) {
                    store_wr = dcache_.armAccess(op.eaddr, write_start);
                    ++armsCommitted_;
                } else if (op.isDisarm()) {
                    store_wr = dcache_.disarmAccess(op.eaddr,
                                                    write_start);
                    ++disarmsCommitted_;
                } else {
                    store_wr = dcache_.storeAccess(op.eaddr, op.size,
                                                   write_start);
                    ++storesCommitted_;
                }
            }
            Cycles write_done = std::max(store_wr.completeAt,
                commit + cfg_.storeCommitAckCycles);
            if (delay_stores) {
                // Debug mode: hold commit until the write completes so
                // a REST violation arrives while the op is still in
                // the ROB (precise exceptions).
                if (write_done > commit) {
                    robStoreBlockedCycles_ += write_done - commit;
                    commit = write_done;
                }
            }
            lsq_.insert({n, op.eaddr, op.size, op.isArm(),
                         op.isDisarm(), write_done});
        }

        if (commit > lastCommitCycle_) {
            lastCommitCycle_ = commit;
            commitsThisCycle_ = 1;
        } else {
            ++commitsThisCycle_;
        }

        if (ts) {
            if (trace_pipe && ts->flagOn(trace::Flag::O3Pipe,
                                         fetch_cycle)) {
                // O3PipeView record. The one-pass model has no
                // explicit decode/rename stages; synthesise them
                // inside the front-end span so viewers render a
                // well-formed (monotone) pipeline.
                trace::PipeRecord rec;
                rec.seq = n;
                rec.pc = op.pc;
                rec.disasm = isa::mnemonic(op.op);
                rec.fetch = fetch_cycle;
                rec.decode = std::min(fetch_cycle + 1, dispatch);
                rec.rename = std::max(
                    rec.decode, std::min(fetch_cycle + 2, dispatch));
                rec.dispatch = dispatch;
                rec.issue = issue;
                rec.complete = complete;
                rec.retire = commit;
                rec.storeComplete =
                    op.isStoreLike() ? store_wr.completeAt : 0;
                ts->pipeView(rec);
            }
            ts->statsTick(commit);
        }

        // Writeback: result becomes available to consumers.
        if (op.rd != isa::noReg && op.rd != isa::regZero)
            regReadyAt_[op.rd] = complete;

        robFreeAt_[n % cfg_.robEntries] = commit;
        if (op.isLoad())
            lqFreeAt_[n_loads++ % cfg_.lqEntries] = commit;

        if (mispredicted) {
            ++branchMispredicts_;
            redirect_at = complete + cfg_.mispredictPenalty;
        }
        if (serializeUntil_) {
            // The serialized REST op stalls fetch until it commits.
            redirect_at = std::max(redirect_at, commit + 1);
            serializeUntil_ = false;
        }

        ++n;
        ++committedOps_;
        ++result.committedOps;
        ++result.opsBySource[static_cast<unsigned>(op.source)];

        // ---------------- Exceptions ----------------
        core::ViolationKind arch_fault = core::ViolationKind::None;
        switch (op.fault) {
          case isa::FaultKind::RestTokenAccess:
            arch_fault = core::ViolationKind::TokenAccess;
            break;
          case isa::FaultKind::RestDisarmUnarmed:
            arch_fault = core::ViolationKind::DisarmUnarmed;
            break;
          case isa::FaultKind::RestMisaligned:
            arch_fault = core::ViolationKind::MisalignedRestInst;
            break;
          case isa::FaultKind::AsanReport:
            arch_fault = core::ViolationKind::AsanCheckFailed;
            break;
          case isa::FaultKind::MteTagMismatch:
            arch_fault = core::ViolationKind::TagMismatch;
            break;
          case isa::FaultKind::PauthCheckFailed:
            arch_fault = core::ViolationKind::PauthCheckFailed;
            break;
          case isa::FaultKind::None:
            break;
        }
        if (lsq_violation != core::ViolationKind::None)
            arch_fault = lsq_violation;

        if (arch_fault != core::ViolationKind::None) {
            result.violation.kind = arch_fault;
            result.violation.faultAddr = op.eaddr;
            result.violation.pc = op.pc;
            result.violation.seq = n - 1;
            result.violation.reportCycle = commit;
            // Misaligned REST instructions fault precisely at decode;
            // everything else is precise only in debug mode.
            bool precise = debug_mode ||
                arch_fault == core::ViolationKind::MisalignedRestInst ||
                arch_fault == core::ViolationKind::AsanCheckFailed ||
                arch_fault == core::ViolationKind::TagMismatch ||
                arch_fault == core::ViolationKind::PauthCheckFailed;
            result.violation.precision = precise
                ? core::Precision::Precise
                : core::Precision::Imprecise;
            break;
        }
    }

    result.cycles = lastCommitCycle_;
    totalCycles_.set(lastCommitCycle_);
    return result;
}

} // namespace rest::cpu
