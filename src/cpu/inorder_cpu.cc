#include "cpu/inorder_cpu.hh"

#include <algorithm>

#include "util/bit_utils.hh"
#include "util/trace.hh"

namespace rest::cpu
{

InOrderCpu::InOrderCpu(const InOrderConfig &cfg, mem::Cache &icache,
                       mem::RestL1Cache &dcache)
    : cfg_(cfg), icache_(icache), dcache_(dcache),
      wbFreeAt_(cfg.writeBufferEntries, 0),
      stats_("inorder"),
      committedOps_(stats_.addScalar("committed_ops", "ops committed")),
      totalCycles_(stats_.addScalar("cycles", "total cycles"))
{
}

RunResult
InOrderCpu::run(isa::TraceSource &src, std::uint64_t max_ops)
{
    RunResult result;
    isa::DynOp op;
    Cycles cycle = cycle_;
    Addr last_line = lastLine_;
    std::uint64_t n_stores = 0;
    trace::TraceSink *ts = trace::sink();

    while (result.committedOps < max_ops && src.next(op)) {
        ++cycle; // scalar issue: one op per cycle at best

        // I-cache: a new line stalls on a miss.
        Addr line = alignDown(op.pc, icache_.blockSize());
        if (line != last_line) {
            Cycles ready = icache_.access(op.pc, false, cycle);
            if (!icache_.lastWasHit())
                cycle = ready;
            last_line = line;
        }

        // Stall on source operands (loads stall on use).
        if (op.rs1 != isa::noReg)
            cycle = std::max(cycle, regReadyAt_[op.rs1]);
        if (op.rs2 != isa::noReg)
            cycle = std::max(cycle, regReadyAt_[op.rs2]);

        Cycles complete = cycle + opLatency(op.cls);

        if (op.isLoad()) {
            mem::RestAccess acc =
                dcache_.loadAccess(op.eaddr, op.size, cycle);
            complete = acc.completeAt;
        } else if (op.isStoreLike()) {
            // Stores retire into the write buffer; a full buffer
            // stalls the pipeline until the oldest entry drains.
            auto slot = std::min_element(wbFreeAt_.begin(),
                                         wbFreeAt_.end());
            cycle = std::max(cycle, *slot);
            mem::RestAccess wr;
            wr.completeAt = cycle + 1;
            if (op.fault == isa::FaultKind::RestMisaligned) {
                // Faults at decode; no cache write is issued.
            } else if (op.isArm()) {
                wr = dcache_.armAccess(op.eaddr, cycle);
            } else if (op.isDisarm()) {
                wr = dcache_.disarmAccess(op.eaddr, cycle);
            } else {
                wr = dcache_.storeAccess(op.eaddr, op.size, cycle);
            }
            *slot = wr.completeAt;
            complete = cycle + 1;
            ++n_stores;
        }

        if (op.isBranch) {
            using isa::Opcode;
            bool mispredicted = false;
            switch (op.op) {
              case Opcode::Beq:
              case Opcode::Bne:
              case Opcode::Blt:
              case Opcode::Bge:
                mispredicted = !bpred_.resolveConditional(op.pc, op.taken);
                break;
              case Opcode::Call:
                bpred_.pushReturn(op.pc + 4);
                break;
              case Opcode::Ret:
                mispredicted = !bpred_.predictReturn(op.nextPc);
                break;
              default:
                break;
            }
            if (mispredicted)
                cycle += cfg_.mispredictPenalty;
            if (op.taken)
                last_line = invalidAddr;
        }

        if (op.rd != isa::noReg && op.rd != isa::regZero)
            regReadyAt_[op.rd] = complete;

        ++committedOps_;
        ++result.committedOps;
        ++result.opsBySource[static_cast<unsigned>(op.source)];
        if (ts)
            ts->statsTick(complete);

        if (op.fault != isa::FaultKind::None) {
            // The in-order model reports coarsely: software-detected
            // kinds keep their identity, all REST hardware faults
            // collapse to TokenAccess.
            switch (op.fault) {
              case isa::FaultKind::AsanReport:
                result.violation.kind =
                    core::ViolationKind::AsanCheckFailed;
                break;
              case isa::FaultKind::MteTagMismatch:
                result.violation.kind =
                    core::ViolationKind::TagMismatch;
                break;
              case isa::FaultKind::PauthCheckFailed:
                result.violation.kind =
                    core::ViolationKind::PauthCheckFailed;
                break;
              default:
                result.violation.kind =
                    core::ViolationKind::TokenAccess;
                break;
            }
            result.violation.pc = op.pc;
            result.violation.faultAddr = op.eaddr;
            result.violation.seq = result.committedOps - 1;
            result.violation.reportCycle = cycle;
            break;
        }
    }

    cycle_ = cycle;
    lastLine_ = last_line;
    result.cycles = cycle;
    totalCycles_.set(cycle);
    return result;
}

} // namespace rest::cpu
