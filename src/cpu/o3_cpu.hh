/**
 * @file
 * Out-of-order core timing model (Table II configuration).
 *
 * One-pass scheduling organisation: the model consumes the dynamic op
 * stream in program order and computes, per op, its fetch, dispatch,
 * issue, completion and commit cycles subject to:
 *   - fetch bandwidth, I-cache misses and branch-predictor redirects,
 *   - ROB / IQ / LQ / SQ structural occupancy,
 *   - register data dependencies (renaming assumed: no WAW/WAR),
 *   - issue-port bandwidth and functional-unit latencies,
 *   - D-cache/L2/DRAM latency with MSHR effects,
 *   - store-to-load forwarding and the REST LSQ rules (Fig. 5),
 *   - in-order commit bandwidth, with the secure/debug store-commit
 *     policies of paper §III-B.
 */

#ifndef REST_CPU_O3_CPU_HH
#define REST_CPU_O3_CPU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/exceptions.hh"
#include "core/token.hh"
#include "cpu/bpred.hh"
#include "cpu/cpu_config.hh"
#include "cpu/lsq.hh"
#include "isa/dyn_op.hh"
#include "mem/cache.hh"
#include "mem/rest_l1_cache.hh"
#include "util/stats.hh"

namespace rest::cpu
{

/** Outcome of one timing run. */
struct RunResult
{
    Cycles cycles = 0;
    std::uint64_t committedOps = 0;
    /** Committed-op counts attributed to each injection source. */
    std::array<std::uint64_t, 5> opsBySource{};
    core::Violation violation;
    /** Terminated because a violation was raised. */
    bool faulted() const { return violation.valid(); }
};

/** The out-of-order CPU model. */
class O3Cpu
{
  public:
    /**
     * @param cfg core parameters.
     * @param mode secure or debug (paper §III-A): debug delays store
     *        commit until write completion and reports precisely.
     * @param icache instruction cache.
     * @param dcache REST-aware data cache.
     */
    O3Cpu(const CpuConfig &cfg, core::RestMode mode,
          mem::Cache &icache, mem::RestL1Cache &dcache);

    /**
     * Run a dynamic op stream to completion (or violation, or cap).
     * @param src op stream.
     * @param max_ops optional cap on committed ops.
     */
    RunResult run(isa::TraceSource &src,
                  std::uint64_t max_ops = ~std::uint64_t(0));

    /**
     * Reset the transient pipeline state (fetch, occupancy rings,
     * issue/FU windows, scoreboard, LSQ, commit clock) to the
     * just-constructed state, so the next run() starts timing from
     * cycle 0. Long-lived predictor state (branch predictor) and the
     * accumulated stats survive — this is the window checkpoint/
     * restore the sampled execution mode is built on: each detailed
     * window warms the pipeline from empty while the predictor and
     * caches carry realistic history across fast-forward gaps.
     */
    void resetPipeline();

    const stats::StatGroup &statGroup() const { return stats_; }
    stats::StatGroup &statGroup() { return stats_; }
    const BranchPredictor &branchPredictor() const { return bpred_; }

  private:
    /** Compute fetch cycle for the next op at 'pc'. */
    Cycles fetchOp(Addr pc, Cycles earliest);

    CpuConfig cfg_;
    core::RestMode mode_;
    mem::Cache &icache_;
    mem::RestL1Cache &dcache_;
    BranchPredictor bpred_;
    Lsq lsq_;

    // Fetch state
    Cycles fetchCycle_ = 0;
    unsigned fetchedThisCycle_ = 0;
    Addr lastFetchLine_ = invalidAddr;

    // Structural occupancy rings: slot i holds the cycle at which the
    // previous occupant of that slot releases it.
    std::vector<Cycles> robFreeAt_;
    std::vector<Cycles> iqFreeAt_;
    std::vector<Cycles> lqFreeAt_;

    /**
     * Issue-bandwidth and FU-occupancy tracking as per-cycle counts
     * over a sliding window, so an op whose operands were ready early
     * can claim an idle slot in the (modelled) past even though it is
     * processed later in program order -- true out-of-order issue.
     * Buckets are validated lazily via per-bucket epoch tags.
     */
    static constexpr unsigned issueWindow = 8192;
    std::vector<std::uint8_t> issueCnt_;
    std::vector<Cycles> issueEpoch_;
    /** FU pools: 0 = mem ports, 1 = ALU, 2 = FP, 3 = mul/div. */
    std::array<std::vector<std::uint8_t>, 4> fuCnt_;
    std::array<std::vector<Cycles>, 4> fuEpoch_;
    std::array<unsigned, 4> fuPoolSize_{};

    /** Claim an issue slot + FU of 'pool' at the first cycle >= when. */
    Cycles claimIssueSlot(Cycles when, unsigned pool, Cycles fu_busy);

    // Register scoreboard (renaming assumed).
    std::array<Cycles, isa::numRegs> regReadyAt_{};

    // Serialization-ablation state: the current op must drain the
    // pipeline (set while a serialized arm/disarm is in flight).
    bool serializeUntil_ = false;

    // Commit state
    Cycles lastCommitCycle_ = 0;
    unsigned commitsThisCycle_ = 0;

    stats::StatGroup stats_;
    stats::Scalar &committedOps_;
    stats::Scalar &totalCycles_;
    stats::Scalar &iqFullStallCycles_;
    stats::Scalar &robStallCycles_;
    stats::Scalar &sqFullStallCycles_;
    stats::Scalar &robStoreBlockedCycles_;
    stats::Scalar &branchMispredicts_;
    stats::Scalar &loadsForwarded_;
    stats::Scalar &storesCommitted_;
    stats::Scalar &armsCommitted_;
    stats::Scalar &disarmsCommitted_;
};

} // namespace rest::cpu

#endif // REST_CPU_O3_CPU_HH
