/**
 * @file
 * A minimal embedded HTTP/1.1 server for the telemetry endpoints
 * (DESIGN.md §12) — /metrics, /status, /healthz.
 *
 * Deliberately tiny and dependency-free (POSIX sockets only): one
 * blocking accept loop on its own thread, requests handled serially,
 * GET only, Connection: close on every response. That is exactly
 * enough for a scrape endpoint — Prometheus and curl both speak it —
 * and keeps the server out of the simulator's way: a stuck client can
 * stall other *scrapes* (a receive timeout bounds even that) but never
 * the sweep itself, which only touches the registry through atomics.
 *
 * Routing is exact-match on the path (query strings are stripped);
 * handlers return an HttpResponse and run on the server thread, so
 * they should be quick and must be thread-safe against the publishing
 * threads (MetricRegistry and SweepStatusTracker are).
 */

#ifndef REST_UTIL_HTTP_SERVER_HH
#define REST_UTIL_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace rest::telemetry
{

struct HttpRequest
{
    std::string method;
    std::string path; ///< query string stripped
};

struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    HttpServer() = default;
    ~HttpServer();
    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register a handler for an exact path. Call before start(). */
    void route(const std::string &path, Handler handler);

    /**
     * Bind, listen and start the accept thread. @param port TCP port;
     * 0 picks an ephemeral port (see port()). Returns false — with a
     * warning, the process carries on unserved — when the socket
     * cannot be set up (port taken, no permission).
     */
    bool start(std::uint16_t port);

    /** The bound port (resolves port 0), valid after start(). */
    std::uint16_t port() const { return port_; }

    bool running() const { return thread_.joinable(); }

    /** Stop accepting, join the thread, close the socket. Idempotent;
     *  also run by the destructor. */
    void stop();

  private:
    void acceptLoop();
    void handleConnection(int fd);

    std::map<std::string, Handler> routes_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

} // namespace rest::telemetry

#endif // REST_UTIL_HTTP_SERVER_HH
