/**
 * @file
 * A small work-stealing thread pool for embarrassingly-parallel
 * simulator sweeps.
 *
 * Each worker owns a deque of tasks: it pops from the back of its own
 * deque (LIFO, cache-friendly) and steals from the front of a victim's
 * deque (FIFO, oldest work first) when its own runs dry. submit() and
 * the completion accounting are what the sweep runner needs: tasks may
 * be submitted from any thread, wait() blocks until every submitted
 * task has finished, and destruction joins the workers.
 *
 * Task execution order is unspecified — callers that need deterministic
 * output must make each task pure and aggregate results by submission
 * index (see sim::SweepRunner).
 *
 * Fault tolerance: a task that throws does not take the pool (or the
 * process) down. The exception is captured into an std::exception_ptr
 * slot, completion is still accounted (pending_ is always
 * decremented), and the remaining tasks keep running. wait() surfaces
 * the first captured failure by rethrowing it once every task has
 * finished; the recorded failures are cleared so the pool stays
 * usable for the next batch. Callers that must see *every* failure
 * (not just the first) should catch inside their tasks, as
 * sim::SweepRunner does.
 */

#ifndef REST_UTIL_THREAD_POOL_HH
#define REST_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace rest::util
{

class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 is clamped to 1. With one
     *        worker the pool still runs tasks on that worker thread,
     *        preserving submit()/wait() semantics.
     */
    explicit ThreadPool(unsigned num_threads)
        : queues_(std::max(1u, num_threads))
    {
        unsigned n = std::max(1u, num_threads);
        workers_.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        // Detach telemetry first: a concurrent scrape finishing inside
        // one of our gauge callbacks is waited out by removeCallback's
        // lock acquisition, so no callback can observe a dead pool.
        if (registry_) {
            for (std::uint64_t id : gauge_ids_)
                registry_->removeCallback(id);
        }
        {
            std::unique_lock lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    unsigned numThreads() const { return unsigned(workers_.size()); }

    /** Enqueue one task; round-robins across worker deques. */
    void
    submit(std::function<void()> task)
    {
        {
            std::unique_lock lock(mutex_);
            rest_assert(!stopping_, "submit() on a stopping pool");
            ++pending_;
            queues_[next_queue_].push_back(std::move(task));
            next_queue_ = (next_queue_ + 1) % queues_.size();
        }
        cv_.notify_one();
    }

    /**
     * Block until every task submitted so far has completed. If any
     * task threw, the first captured exception is rethrown here (after
     * all tasks finished) and the failure record is cleared, so the
     * pool remains usable. Additional failures from the same batch are
     * dropped; their count is reported via taskFailures() before the
     * rethrow clears it.
     */
    void
    wait()
    {
        std::exception_ptr first;
        {
            std::unique_lock lock(mutex_);
            done_cv_.wait(lock, [this] { return pending_ == 0; });
            if (!failures_.empty()) {
                first = failures_.front();
                failures_.clear();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

    /** Number of failed tasks recorded since the last wait() rethrow. */
    std::size_t
    taskFailures() const
    {
        std::unique_lock lock(mutex_);
        return failures_.size();
    }

    /** Tasks submitted but not yet picked up by a worker. */
    std::size_t
    queueDepth() const
    {
        std::unique_lock lock(mutex_);
        std::size_t depth = 0;
        for (const auto &q : queues_)
            depth += q.size();
        return depth;
    }

    /** Workers currently executing a task. */
    std::size_t
    activeWorkers() const
    {
        std::unique_lock lock(mutex_);
        return active_;
    }

    /**
     * Publish live queue-depth / active-worker gauges to `registry`
     * under the given pool label. Evaluated at scrape time; the
     * registrations are removed automatically when the pool is
     * destroyed (at most one registry per pool).
     */
    void
    publishMetrics(telemetry::MetricRegistry &registry,
                   const std::string &pool_name)
    {
        rest_assert(!registry_, "ThreadPool metrics already published");
        registry_ = &registry;
        gauge_ids_.push_back(registry.gaugeCallback(
            "rest_pool_queue_depth",
            "Tasks submitted but not yet running",
            {{"pool", pool_name}}, [this] {
                return double(queueDepth());
            }));
        gauge_ids_.push_back(registry.gaugeCallback(
            "rest_pool_active_workers",
            "Workers currently executing a task",
            {{"pool", pool_name}}, [this] {
                return double(activeWorkers());
            }));
        gauge_ids_.push_back(registry.gaugeCallback(
            "rest_pool_threads", "Worker threads in the pool",
            {{"pool", pool_name}}, [this] {
                return double(numThreads());
            }));
    }

  private:
    void
    workerLoop(unsigned self)
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock lock(mutex_);
                cv_.wait(lock, [this, self] {
                    return stopping_ || findWork(self);
                });
                if (stopping_ && !findWork(self))
                    return;
                task = std::move(takeWork(self));
                ++active_;
            }
            std::exception_ptr failure;
            try {
                task();
            } catch (...) {
                // Never let a task exception escape the worker thread
                // (that would std::terminate the process) or skip the
                // completion accounting below (that would hang wait()
                // on the leaked pending_ count forever).
                failure = std::current_exception();
            }
            {
                std::unique_lock lock(mutex_);
                --active_;
                if (failure)
                    failures_.push_back(std::move(failure));
                if (--pending_ == 0)
                    done_cv_.notify_all();
            }
        }
    }

    /** Any runnable task visible to worker `self`? Caller holds lock. */
    bool
    findWork(unsigned self) const
    {
        if (!queues_[self].empty())
            return true;
        for (const auto &q : queues_)
            if (!q.empty())
                return true;
        return false;
    }

    /** Pop own work (back) or steal (front). Caller holds the lock and
     *  has established via findWork() that a task exists. */
    std::function<void()>
    takeWork(unsigned self)
    {
        auto &own = queues_[self];
        if (!own.empty()) {
            auto task = std::move(own.back());
            own.pop_back();
            return task;
        }
        for (std::size_t i = 1; i <= queues_.size(); ++i) {
            auto &victim = queues_[(self + i) % queues_.size()];
            if (!victim.empty()) {
                auto task = std::move(victim.front());
                victim.pop_front();
                return task;
            }
        }
        rest_panic("takeWork() with no runnable task");
    }

    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> workers_;
    std::vector<std::exception_ptr> failures_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    std::size_t next_queue_ = 0;
    std::size_t pending_ = 0;
    std::size_t active_ = 0;
    bool stopping_ = false;

    telemetry::MetricRegistry *registry_ = nullptr;
    std::vector<std::uint64_t> gauge_ids_;
};

} // namespace rest::util

#endif // REST_UTIL_THREAD_POOL_HH
