/**
 * @file
 * rest::telemetry — a thread-safe metric registry for live experiment
 * telemetry (DESIGN.md §12).
 *
 * Where stats::StatGroup is the *simulated* machine's counters (owned
 * by one System, torn down with it), the MetricRegistry is *host-side*
 * observability: process-lifetime counters, gauges and histograms that
 * concurrent sweep workers publish into and an embedded HTTP server
 * (util/http_server.hh) scrapes out of as Prometheus text exposition.
 *
 * Three instrument kinds, each addressable by (name, labels):
 *   - Counter:   monotonically increasing 64-bit count,
 *   - Gauge:     a settable double, or a callback evaluated at scrape
 *                time (e.g. a ThreadPool's live queue depth),
 *   - Histogram: stats::Distribution bucketing (inclusive upper edges,
 *                matching Prometheus `le` semantics) plus the
 *                percentile accessors Distribution gained for this.
 *
 * Thread-safety: registration and exposition lock the registry;
 * Counter/Gauge updates are lock-free atomics and Histogram::observe
 * takes a per-instance mutex, so hot-path publishing never contends
 * with a scrape for longer than one instrument. Callback gauges are
 * invoked during exposition with the registry lock held: they must not
 * touch the registry themselves.
 */

#ifndef REST_UTIL_METRICS_HH
#define REST_UTIL_METRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"

namespace rest::telemetry
{

/** Ordered label set; rendered in the order given (keep it stable). */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** A monotonically increasing counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    { value_.fetch_add(n, std::memory_order_relaxed); }

    std::uint64_t value() const
    { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A gauge: a value that can go up and down. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void
    add(double d)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + d,
                                             std::memory_order_relaxed))
            ;
    }

    double value() const
    { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** A bucketed histogram over stats::Distribution. */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::uint64_t> edges)
    {
        dist_.init(std::move(edges));
    }

    void
    observe(std::uint64_t v)
    {
        std::lock_guard lock(mutex_);
        dist_.sample(v);
    }

    /** Consistent copy of the underlying distribution (exposition and
     *  the percentile accessors go through this). */
    stats::Distribution
    snapshot() const
    {
        std::lock_guard lock(mutex_);
        return dist_;
    }

    double
    percentile(double p) const
    {
        std::lock_guard lock(mutex_);
        return dist_.percentile(p);
    }

  private:
    mutable std::mutex mutex_;
    stats::Distribution dist_;
};

/**
 * The registry: a process-wide namespace of metric families. Each
 * family has one kind and help string; instances within a family are
 * distinguished by labels. Lookups are get-or-create and return stable
 * references (instances are never deleted; only callback gauges can be
 * unregistered, because they reference external objects).
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::vector<std::uint64_t> edges,
                         const Labels &labels = {});

    /**
     * Register a gauge whose value is computed at scrape time. Returns
     * a handle for removeCallback(); the callback must stay valid (and
     * must not touch this registry) until removed.
     */
    std::uint64_t gaugeCallback(const std::string &name,
                                const std::string &help,
                                const Labels &labels,
                                std::function<double()> fn);

    /** Remove a callback gauge; unknown ids are ignored. */
    void removeCallback(std::uint64_t id);

    /**
     * Prometheus text exposition format (version 0.0.4): families in
     * lexicographic name order, instances in label order, `# HELP` and
     * `# TYPE` per family; histograms expose cumulative `_bucket`
     * series with inclusive `le` edges plus `_sum`/`_count`.
     */
    void writePrometheus(std::ostream &os) const;
    std::string prometheusText() const;

  private:
    struct CallbackGauge
    {
        std::uint64_t id;
        std::function<double()> fn;
    };

    struct Family
    {
        enum class Kind { Counter, Gauge, Histogram };
        Kind kind = Kind::Counter;
        std::string help;
        /** Keyed by rendered label string ("" or {k="v",...}). */
        std::map<std::string, std::unique_ptr<Counter>> counters;
        std::map<std::string, std::unique_ptr<Gauge>> gauges;
        std::map<std::string, CallbackGauge> callbacks;
        std::map<std::string, std::unique_ptr<Histogram>> hists;
    };

    Family &family(const std::string &name, Family::Kind kind,
                   const std::string &help);

    mutable std::mutex mutex_;
    std::map<std::string, Family> families_;
    std::uint64_t next_callback_id_ = 1;
};

/** Render labels as {k="v",...} with Prometheus escaping ("" when
 *  empty). Exposed for tests. */
std::string renderLabels(const Labels &labels);

} // namespace rest::telemetry

#endif // REST_UTIL_METRICS_HH
