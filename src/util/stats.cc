#include "util/stats.hh"

#include <iomanip>

namespace rest::stats
{

void
StatGroup::dump(std::ostream &os) const
{
    auto line = [&](const std::string &stat, const std::string &val) {
        os << std::left << std::setw(46) << (name_ + "." + stat)
           << std::setw(20) << val;
        auto it = descs_.find(stat);
        if (it != descs_.end() && !it->second.empty())
            os << "# " << it->second;
        os << "\n";
    };

    for (const auto &[stat, scalar] : scalars_)
        line(stat, std::to_string(scalar.value()));

    for (const auto &[stat, dist] : dists_) {
        line(stat + "::count", std::to_string(dist.count()));
        line(stat + "::mean", std::to_string(dist.mean()));
        line(stat + "::min", std::to_string(dist.minValue()));
        line(stat + "::max", std::to_string(dist.maxValue()));
    }

    for (const auto &[stat, formula] : formulas_) {
        std::ostringstream v;
        v << std::setprecision(6) << formula.value();
        line(stat, v.str());
    }
}

} // namespace rest::stats
