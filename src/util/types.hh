/**
 * @file
 * Fundamental scalar types shared across the REST simulator.
 *
 * These mirror the conventions of classic architecture simulators:
 * a guest (virtual) address type, a simulated-time tick type, and a
 * cycle count type. Keeping them distinct typedefs makes interfaces
 * self-documenting even though they share an underlying representation.
 */

#ifndef REST_UTIL_TYPES_HH
#define REST_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace rest
{

/** Guest (simulated) virtual address. */
using Addr = std::uint64_t;

/** Simulated time in cycles of the core clock. */
using Cycles = std::uint64_t;

/** Simulated time in abstract ticks (1 tick == 1 core cycle here). */
using Tick = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** An invalid / "no address" sentinel. */
inline constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace rest

#endif // REST_UTIL_TYPES_HH
