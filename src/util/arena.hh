/**
 * @file
 * Block-recycling bump allocator for per-op transient state.
 *
 * The fast-functional driver allocates a batch of DynOp records per
 * retire block; a general-purpose heap would pay malloc/free per
 * batch and scatter the records across memory. The Arena instead
 * carves allocations out of large blocks with a bump pointer, and
 * reset() rewinds to the first block *without returning memory to the
 * OS*, so a steady-state caller touches the same hot cache lines on
 * every batch and performs zero heap traffic after warm-up.
 *
 * Only trivially-destructible types may live in an arena: reset()
 * and the destructor never run element destructors (alloc<T> enforces
 * this statically).
 */

#ifndef REST_UTIL_ARENA_HH
#define REST_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/logging.hh"

namespace rest::util
{

class Arena
{
  public:
    /** Default block size: big enough for a few thousand DynOps. */
    static constexpr std::size_t defaultBlockBytes = 1u << 16;

    explicit Arena(std::size_t block_bytes = defaultBlockBytes)
        : blockBytes_(block_bytes)
    {
        rest_assert(block_bytes > 0, "arena block size must be > 0");
    }

    /**
     * Allocate 'bytes' with the given alignment. Oversized requests
     * (larger than the block size) get a dedicated block of exactly
     * the requested size; it is recycled like any other block.
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        rest_assert(align != 0 && (align & (align - 1)) == 0,
                    "arena alignment must be a power of two");
        if (cur_ < blocks_.size()) {
            std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
                blocks_[cur_].data.get());
            std::uintptr_t p = (base + offset_ + align - 1) &
                               ~(std::uintptr_t(align) - 1);
            if (p + bytes <= base + blocks_[cur_].size) {
                offset_ = p + bytes - base;
                ++allocations_;
                return reinterpret_cast<void *>(p);
            }
        }
        return allocateSlow(bytes, align);
    }

    /**
     * Allocate and default-construct an array of n Ts. T must be
     * trivially destructible: the arena never runs destructors.
     */
    template <typename T>
    T *
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena-allocated types must be trivially "
                      "destructible");
        T *p = static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
        for (std::size_t i = 0; i < n; ++i)
            new (p + i) T();
        return p;
    }

    /**
     * Rewind to empty. All blocks are kept and reused by subsequent
     * allocations in the same order, so a caller with a stable
     * allocation pattern gets back the same addresses every cycle.
     */
    void
    reset()
    {
        cur_ = 0;
        offset_ = 0;
        ++resets_;
    }

    /** Free every block (memory returned to the OS). */
    void
    release()
    {
        blocks_.clear();
        blocks_.shrink_to_fit();
        cur_ = 0;
        offset_ = 0;
    }

    /** Blocks currently owned (allocated once, recycled forever). */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Total bytes of owned block storage. */
    std::size_t
    bytesReserved() const
    {
        std::size_t total = 0;
        for (const auto &b : blocks_)
            total += b.size;
        return total;
    }

    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t resets() const { return resets_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    /** Move to the next (possibly new) block and allocate from it. */
    void *
    allocateSlow(std::size_t bytes, std::size_t align)
    {
        // Worst case the bump start needs align-1 bytes of padding.
        const std::size_t need = bytes + align - 1;
        std::size_t next = cur_ < blocks_.size() ? cur_ + 1 : cur_;
        while (next < blocks_.size() && blocks_[next].size < need)
            ++next;
        if (next == blocks_.size()) {
            Block b;
            b.size = std::max(blockBytes_, need);
            b.data = std::make_unique<std::byte[]>(b.size);
            blocks_.push_back(std::move(b));
        }
        cur_ = next;
        offset_ = 0;
        std::uintptr_t base = reinterpret_cast<std::uintptr_t>(
            blocks_[cur_].data.get());
        std::uintptr_t p =
            (base + align - 1) & ~(std::uintptr_t(align) - 1);
        offset_ = p + bytes - base;
        ++allocations_;
        return reinterpret_cast<void *>(p);
    }

    std::size_t blockBytes_;
    std::vector<Block> blocks_;
    std::size_t cur_ = 0;     ///< block currently bumped (may == size)
    std::size_t offset_ = 0;  ///< bump offset within blocks_[cur_]
    std::uint64_t allocations_ = 0;
    std::uint64_t resets_ = 0;
};

} // namespace rest::util

#endif // REST_UTIL_ARENA_HH
