/**
 * @file
 * Zipf-distributed sampling for server-shaped workload synthesis.
 *
 * Request keys and allocation sizes in server traces are famously
 * skewed: a handful of hot keys take most of the traffic while a long
 * tail is touched rarely (the YCSB "zipfian" request distribution).
 * workload::ServerMix draws key and handler popularity through this
 * generator at program-generation time, so the synthesized guest
 * programs — and therefore every simulation of them — are a pure
 * function of the seed.
 *
 * The sampler inverts the cumulative Zipf mass by binary search over a
 * precomputed table: O(n) setup, O(log n) per draw, and exactly one
 * Xoshiro256ss draw per sample so the consumption of generator state
 * is independent of the outcome (important for golden tests).
 */

#ifndef REST_UTIL_ZIPF_HH
#define REST_UTIL_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace rest::util
{

/**
 * Zipf(n, theta) sampler over ranks [0, n): rank k is drawn with
 * probability proportional to 1 / (k + 1)^theta. theta = 0 degrades
 * to uniform; theta ~= 0.99 is the classic YCSB skew.
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double theta) : theta_(theta)
    {
        rest_assert(n > 0, "Zipf needs a nonempty rank space");
        cdf_.reserve(n);
        double mass = 0.0;
        for (std::uint64_t k = 0; k < n; ++k) {
            mass += 1.0 / std::pow(double(k + 1), theta);
            cdf_.push_back(mass);
        }
        // Normalise once; the final entry becomes exactly 1.0 so every
        // u in [0, 1) lands inside the table.
        for (double &c : cdf_)
            c /= mass;
        cdf_.back() = 1.0;
    }

    std::uint64_t size() const { return cdf_.size(); }
    double theta() const { return theta_; }

    /** Draw one rank; consumes exactly one rng draw. */
    std::uint64_t
    operator()(Xoshiro256ss &rng)
    {
        const double u = rng.real();
        auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end())
            --it;
        return static_cast<std::uint64_t>(it - cdf_.begin());
    }

    /** Probability mass of rank k (for the distribution tests). */
    double
    mass(std::uint64_t k) const
    {
        rest_assert(k < cdf_.size(), "Zipf rank out of range");
        return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
    }

  private:
    double theta_;
    std::vector<double> cdf_; ///< normalised cumulative mass
};

} // namespace rest::util

#endif // REST_UTIL_ZIPF_HH
