/**
 * @file
 * rest::trace — the end-to-end tracing and metrics layer.
 *
 * Three cooperating facilities, all zero-overhead when disabled:
 *
 *   1. Debug flags. A fixed registry of named flags (O3Pipe, Cache,
 *      TokenDetect, Alloc, Shadow, Sweep) gates DPRINTF-style message
 *      macros and typed event recording. Flags are parsed from
 *      "--debug-flags=Cache,TokenDetect" / the REST_DEBUG_FLAGS
 *      environment variable, optionally windowed to a tick range
 *      (--debug-start / --debug-end).
 *
 *   2. Event trace export. Components record typed TraceEvents
 *      (pipeline occupancy, cache fills/evictions/MSHR waits, token
 *      detections, allocator red-zone arming and quarantine churn)
 *      into a bounded in-memory ring; the ring serialises to Chrome
 *      trace-event JSON (chrome://tracing, Perfetto) with one track
 *      per component.
 *
 *   3. O3PipeView instruction traces. The O3 CPU records per-op
 *      fetch/decode/rename/dispatch/issue/complete/retire cycles,
 *      emitted in gem5's O3PipeView line format so standard pipeline
 *      viewers (Konata, gem5's util/o3-pipeview.py) work unchanged.
 *
 * Sink model: events flow to a TraceSink. A System installs its own
 * sink thread-locally for the duration of System::run() (ScopedSink),
 * so parallel sweep jobs each trace into private storage and never
 * interleave. When no per-System sink is installed, an optional
 * process-global sink (installed by the bench harnesses from
 * --debug-flags / REST_DEBUG_FLAGS) receives events instead; the
 * global sink is internally locked. With neither installed — the
 * default — every trace macro reduces to one null-pointer test on a
 * thread-local, and simulation output is byte-identical to a build
 * without any instrumentation (enforced by tests/sim/
 * trace_system_test.cc).
 */

#ifndef REST_UTIL_TRACE_HH
#define REST_UTIL_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace rest::stats { class StatGroup; }

namespace rest::trace
{

// ---------------------------------------------------------------------
// Debug flags
// ---------------------------------------------------------------------

/** The debug-flag registry. Extend here; names follow gem5's style. */
enum class Flag : std::uint8_t
{
    O3Pipe,      ///< per-op pipeline stage timing (O3PipeView)
    Cache,       ///< cache fills, evictions, writebacks, MSHR activity
    TokenDetect, ///< fill-path token detections / violations / evicts
    Alloc,       ///< allocator red-zone arming, quarantine churn
    Shadow,      ///< ASan shadow poison/unpoison activity
    Sweep,       ///< sweep-runner job lifecycle
    NumFlags,
};

inline constexpr unsigned numFlags =
    static_cast<unsigned>(Flag::NumFlags);

/** Bitmask over Flags. */
using FlagMask = std::uint32_t;

constexpr FlagMask
flagBit(Flag f)
{
    return FlagMask(1) << static_cast<unsigned>(f);
}

inline constexpr FlagMask allFlags = (FlagMask(1) << numFlags) - 1;

/** Canonical name of a flag ("O3Pipe", ...). */
std::string_view flagName(Flag f);

/**
 * Parse a comma-separated flag list ("O3Pipe,Cache", or "All").
 * @return false (and *out untouched) if any name is unknown.
 */
bool parseFlags(std::string_view csv, FlagMask *out);

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/** Everything configurable about one sink. Default == tracing off. */
struct TraceConfig
{
    /** Enabled debug flags; 0 disables message + event recording. */
    FlagMask flags = 0;
    /** Tick window [debugStart, debugEnd] outside which flags are
     *  treated as off (gem5's --debug-start/--debug-end). */
    Tick debugStart = 0;
    Tick debugEnd = ~Tick(0);
    /** Chrome trace-event JSON output path ("" = not written). */
    std::string traceOutPath;
    /** O3PipeView output path ("" = not written). */
    std::string pipeViewPath;
    /** Snapshot registered StatGroups every N cycles (0 = off). */
    std::uint64_t statsEvery = 0;
    /** Event-ring capacity; the oldest events are dropped beyond it. */
    std::size_t ringCapacity = 1 << 16;
    /** Cap on retained O3PipeView records. */
    std::size_t pipeCapacity = 1 << 20;
    /** DPRINTF text destination; nullptr = std::cerr. */
    std::ostream *messageStream = nullptr;

    /** Does this configuration require a sink at all? */
    bool
    active() const
    {
        return flags != 0 || !traceOutPath.empty() ||
               !pipeViewPath.empty() || statsEvery != 0;
    }

    /** Flags from REST_DEBUG_FLAGS (empty/-unset → 0); unknown names
     *  warn and are ignored. */
    static TraceConfig fromEnv();
};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/** Chrome trace-event phases we emit. */
enum class EventKind : std::uint8_t
{
    Complete, ///< "X": a span [start, start+duration)
    Instant,  ///< "i": a point event
    Counter,  ///< "C": a named counter sample
};

/**
 * One typed trace event. Names must be string literals (or otherwise
 * outlive the sink); events carry at most one integer argument.
 */
struct TraceEvent
{
    const char *name = "";
    Flag flag = Flag::NumFlags;
    EventKind kind = EventKind::Instant;
    std::uint32_t track = 0;
    Tick start = 0;
    Tick duration = 0;
    const char *argName = nullptr;
    std::uint64_t argValue = 0;
};

/** One op's pipeline stage cycles (gem5 O3PipeView schema). */
struct PipeRecord
{
    std::uint64_t seq = 0;
    Addr pc = 0;
    /** Mnemonic text; points at static storage (isa::mnemonic). */
    std::string_view disasm;
    Cycles fetch = 0;
    Cycles decode = 0;
    Cycles rename = 0;
    Cycles dispatch = 0;
    Cycles issue = 0;
    Cycles complete = 0;
    Cycles retire = 0;
    /** Store write-completion cycle (0 for non-stores). */
    Cycles storeComplete = 0;
};

// ---------------------------------------------------------------------
// The sink
// ---------------------------------------------------------------------

/**
 * Collects debug messages, trace events, O3PipeView records and
 * periodic stat snapshots for one System (or, for the process-global
 * sink, for a whole harness invocation). All mutating entry points are
 * internally locked: the per-System sink never sees contention (one
 * System runs on one thread), and the global sink is shared by sweep
 * workers by design.
 */
class TraceSink
{
  public:
    explicit TraceSink(TraceConfig cfg);

    const TraceConfig &config() const { return cfg_; }

    /** Is `f` enabled at tick `t` (mask + debug window)? */
    bool
    flagOn(Flag f, Tick t) const
    {
        return (cfg_.flags & flagBit(f)) != 0 &&
               t >= cfg_.debugStart && t <= cfg_.debugEnd;
    }

    /** Is `f` enabled at any tick? */
    bool flagEnabled(Flag f) const
    { return (cfg_.flags & flagBit(f)) != 0; }

    /**
     * Emit one DPRINTF line: "<tick>: <component>: <msg>\n", written
     * atomically so parallel producers never interleave mid-line.
     */
    void message(Tick t, std::string_view component,
                 std::string_view msg);

    /** Record an event (oldest events drop once the ring is full). */
    void record(const TraceEvent &ev);

    /** Convenience recorders (call only after checking flagOn()). */
    void complete(Flag f, std::uint32_t track, const char *name,
                  Tick start, Tick end, const char *arg_name = nullptr,
                  std::uint64_t arg_value = 0);
    void instant(Flag f, std::uint32_t track, const char *name,
                 Tick at, const char *arg_name = nullptr,
                 std::uint64_t arg_value = 0);
    void counter(Flag f, std::uint32_t track, const char *name, Tick at,
                 std::uint64_t value);

    /**
     * Stable per-component track id for Chrome trace "tid" fields;
     * first use registers the name (emitted as track metadata).
     */
    std::uint32_t trackFor(std::string_view component);

    /** Append one O3PipeView record (bounded by pipeCapacity). */
    void pipeView(const PipeRecord &rec);

    // --- periodic stats -------------------------------------------------
    /**
     * Register a StatGroup for periodic snapshots; enables
     * dumpEvery(statsEvery) on it. No-op when statsEvery == 0.
     */
    void registerStatGroup(stats::StatGroup *group);

    /** Advance snapshot time; call from the timing model's commit
     *  path. Cheap no-op when statsEvery == 0 or `now` is before the
     *  next boundary. */
    void statsTick(Cycles now);

    /** Force a final snapshot of any partial interval. */
    void flushStats(Cycles now);

    // --- inspection (tests, harness summaries) --------------------------
    std::vector<TraceEvent> events() const;
    std::uint64_t eventsRecorded() const;
    std::uint64_t eventsDropped() const;
    std::vector<PipeRecord> pipeRecords() const;
    std::vector<std::string> trackNames() const;

    // --- output ----------------------------------------------------------
    /**
     * Serialise the ring (plus counter samples derived from stat
     * snapshots) as Chrome trace-event JSON. Deterministic for a
     * deterministic event stream.
     */
    void writeChromeTrace(std::ostream &os) const;
    /** Write to `path`; warns and returns false if it cannot. */
    bool writeChromeTraceFile(const std::string &path) const;

    /** Serialise pipe records in gem5's O3PipeView line format. */
    void writePipeView(std::ostream &os) const;
    bool writePipeViewFile(const std::string &path) const;

  private:
    TraceConfig cfg_;

    mutable std::mutex mu_;
    std::vector<TraceEvent> ring_;
    std::size_t ringHead_ = 0; ///< next slot once the ring wrapped
    bool wrapped_ = false;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;

    std::vector<PipeRecord> pipe_;
    std::uint64_t pipeDropped_ = 0;

    std::map<std::string, std::uint32_t, std::less<>> tracks_;
    std::vector<std::string> trackNames_;

    std::vector<stats::StatGroup *> statGroups_;
    /** Atomic: statsTick()'s unlocked fast-path check may race with a
     *  boundary advance on another thread (shared global sink). */
    std::atomic<Cycles> nextSnapshotAt_{0};
};

// ---------------------------------------------------------------------
// Sink installation
// ---------------------------------------------------------------------

/**
 * The active sink for this thread: the thread-locally installed
 * per-System sink if any, else the process-global sink, else nullptr.
 * This is the single branch every trace macro pays when tracing is
 * off.
 */
TraceSink *sink();

/** Install/replace the process-global fallback sink (nullptr clears).
 *  Returns the previous one. Not owned. */
TraceSink *setGlobalSink(TraceSink *s);

/** RAII: install a sink thread-locally; restores the previous sink on
 *  destruction. System::run() wraps itself in one of these. */
class ScopedSink
{
  public:
    explicit ScopedSink(TraceSink *s);
    ~ScopedSink();

    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    TraceSink *prev_;
};

namespace detail
{
/** Stream a pack of arguments into a string (mirrors logging.hh). */
template <typename... Args>
std::string
traceConcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
} // namespace detail

/**
 * DPRINTF-style debug message, gated on a flag and the tick window.
 * Compiles to one thread-local load + null test when tracing is off;
 * the argument pack is only evaluated when the flag is live.
 *
 *   REST_DPRINTF(rest::trace::Flag::Cache, now, "l1d",
 *                "fill addr=", addr);
 */
#define REST_DPRINTF(flag, tick, component, ...) \
    do { \
        ::rest::trace::TraceSink *sink_ = ::rest::trace::sink(); \
        if (sink_ && sink_->flagOn((flag), (tick))) { \
            sink_->message((tick), (component), \
                ::rest::trace::detail::traceConcat(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace rest::trace

#endif // REST_UTIL_TRACE_HH
