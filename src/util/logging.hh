/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- an internal simulator invariant was violated (a bug in the
 *             simulator itself); aborts so a core dump is available.
 * fatal()  -- the simulation cannot continue due to a user-level problem
 *             (bad configuration, invalid arguments); exits with status 1.
 * warn()   -- something is modelled approximately or suspiciously.
 * inform() -- normal, noteworthy status.
 *
 * Inside a ScopedFatalThrow region (thread-local), rest_fatal throws
 * util::FatalError instead of exiting, so supervisors like the sweep
 * runner can record one job's fatal as a per-job failure instead of
 * losing the whole process. panic() still aborts unconditionally: an
 * internal invariant violation leaves no state worth salvaging.
 */

#ifndef REST_UTIL_LOGGING_HH
#define REST_UTIL_LOGGING_HH

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rest
{

namespace util
{

/** What rest_fatal raises inside a ScopedFatalThrow region. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard: while alive on this thread, rest_fatal throws FatalError
 * instead of calling std::exit. Nests; the fatal-throws behaviour lasts
 * until the outermost guard is destroyed.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();
    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;
};

} // namespace util

/**
 * Global verbosity switch; when false, inform() output is suppressed.
 * Atomic: sweep-runner worker threads read it while a harness main
 * thread may still be setting it. warn()/inform() additionally
 * serialise their writes behind a process-wide mutex, each emitting
 * one pre-composed line, so parallel-sweep output never interleaves
 * mid-line.
 */
extern std::atomic<bool> verboseLogging;

/**
 * Prefix every warn()/inform() line with a UTC wall-clock timestamp
 * and a small per-thread id ("[2026-08-07T12:34:56.789Z t1] warn: …")
 * so console output can be correlated with the --event-log JSONL
 * stream. Off by default — default output stays byte-identical — and
 * settable either here or via REST_LOG_TIMESTAMPS=1 in the
 * environment (an explicit call wins over the environment).
 */
void setLogTimestamps(bool enabled);

/** Current effective setting (resolves REST_LOG_TIMESTAMPS once). */
bool logTimestampsEnabled();

namespace detail
{

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a message: simulator-internal invariant violation. */
#define rest_panic(...) \
    ::rest::detail::panicImpl(__FILE__, __LINE__, \
                              ::rest::detail::concat(__VA_ARGS__))

/** Exit with a message: unrecoverable user-level error. */
#define rest_fatal(...) \
    ::rest::detail::fatalImpl(__FILE__, __LINE__, \
                              ::rest::detail::concat(__VA_ARGS__))

/** Emit a warning to stderr. */
#define rest_warn(...) \
    ::rest::detail::warnImpl(::rest::detail::concat(__VA_ARGS__))

/** Emit an informational message to stdout (verbose mode only). */
#define rest_inform(...) \
    ::rest::detail::informImpl(::rest::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; on failure, panic with the message. */
#define rest_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::rest::detail::panicImpl(__FILE__, __LINE__, \
                ::rest::detail::concat("assertion failed: " #cond " ", \
                                       __VA_ARGS__)); \
        } \
    } while (0)

} // namespace rest

#endif // REST_UTIL_LOGGING_HH
