#include "util/trace.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/json_writer.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace rest::trace
{

// ---------------------------------------------------------------------
// Flag registry
// ---------------------------------------------------------------------

namespace
{

constexpr std::string_view flagNames[numFlags] = {
    "O3Pipe", "Cache", "TokenDetect", "Alloc", "Shadow", "Sweep",
};

} // namespace

std::string_view
flagName(Flag f)
{
    const unsigned i = static_cast<unsigned>(f);
    rest_assert(i < numFlags, "flagName of invalid flag ", i);
    return flagNames[i];
}

bool
parseFlags(std::string_view csv, FlagMask *out)
{
    FlagMask mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string_view::npos)
            comma = csv.size();
        std::string_view name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue; // tolerate "" and stray commas
        if (name == "All" || name == "all") {
            mask = allFlags;
            continue;
        }
        bool found = false;
        for (unsigned i = 0; i < numFlags; ++i) {
            if (name == flagNames[i]) {
                mask |= flagBit(static_cast<Flag>(i));
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    *out = mask;
    return true;
}

TraceConfig
TraceConfig::fromEnv()
{
    TraceConfig cfg;
    const char *env = std::getenv("REST_DEBUG_FLAGS");
    if (env && *env) {
        if (!parseFlags(env, &cfg.flags)) {
            rest_warn("REST_DEBUG_FLAGS=\"", env, "\" contains an "
                      "unknown flag; tracing stays off (known: O3Pipe, "
                      "Cache, TokenDetect, Alloc, Shadow, Sweep, All)");
            cfg.flags = 0;
        }
    }
    return cfg;
}

// ---------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------

TraceSink::TraceSink(TraceConfig cfg) : cfg_(std::move(cfg))
{
    rest_assert(cfg_.ringCapacity > 0, "trace ring capacity must be >0");
    ring_.reserve(std::min<std::size_t>(cfg_.ringCapacity, 4096));
}

void
TraceSink::message(Tick t, std::string_view component,
                   std::string_view msg)
{
    // Compose the whole line first so concurrent producers (global
    // sink under a parallel sweep) never interleave mid-line.
    std::string line;
    line.reserve(component.size() + msg.size() + 24);
    line += std::to_string(t);
    line += ": ";
    line += component;
    line += ": ";
    line += msg;
    line += '\n';

    std::lock_guard<std::mutex> lock(mu_);
    std::ostream &os = cfg_.messageStream ? *cfg_.messageStream
                                          : std::cerr;
    os << line;
}

void
TraceSink::record(const TraceEvent &ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    if (ring_.size() < cfg_.ringCapacity) {
        ring_.push_back(ev);
        return;
    }
    // Ring full: overwrite the oldest event.
    ring_[ringHead_] = ev;
    ringHead_ = (ringHead_ + 1) % ring_.size();
    wrapped_ = true;
    ++dropped_;
}

void
TraceSink::complete(Flag f, std::uint32_t track, const char *name,
                    Tick start, Tick end, const char *arg_name,
                    std::uint64_t arg_value)
{
    TraceEvent ev;
    ev.name = name;
    ev.flag = f;
    ev.kind = EventKind::Complete;
    ev.track = track;
    ev.start = start;
    ev.duration = end > start ? end - start : 0;
    ev.argName = arg_name;
    ev.argValue = arg_value;
    record(ev);
}

void
TraceSink::instant(Flag f, std::uint32_t track, const char *name,
                   Tick at, const char *arg_name,
                   std::uint64_t arg_value)
{
    TraceEvent ev;
    ev.name = name;
    ev.flag = f;
    ev.kind = EventKind::Instant;
    ev.track = track;
    ev.start = at;
    ev.argName = arg_name;
    ev.argValue = arg_value;
    record(ev);
}

void
TraceSink::counter(Flag f, std::uint32_t track, const char *name,
                   Tick at, std::uint64_t value)
{
    TraceEvent ev;
    ev.name = name;
    ev.flag = f;
    ev.kind = EventKind::Counter;
    ev.track = track;
    ev.start = at;
    ev.argName = "value";
    ev.argValue = value;
    record(ev);
}

std::uint32_t
TraceSink::trackFor(std::string_view component)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tracks_.find(component);
    if (it != tracks_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(trackNames_.size());
    tracks_.emplace(std::string(component), id);
    trackNames_.emplace_back(component);
    return id;
}

void
TraceSink::pipeView(const PipeRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pipe_.size() >= cfg_.pipeCapacity) {
        ++pipeDropped_;
        return;
    }
    pipe_.push_back(rec);
}

// ---------------------------------------------------------------------
// Periodic stats
// ---------------------------------------------------------------------

void
TraceSink::registerStatGroup(stats::StatGroup *group)
{
    if (cfg_.statsEvery == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    group->dumpEvery(cfg_.statsEvery);
    statGroups_.push_back(group);
    nextSnapshotAt_.store(cfg_.statsEvery, std::memory_order_relaxed);
}

void
TraceSink::statsTick(Cycles now)
{
    if (cfg_.statsEvery == 0 ||
        now < nextSnapshotAt_.load(std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (now < nextSnapshotAt_.load(std::memory_order_relaxed))
        return; // another thread advanced the boundary first
    for (auto *g : statGroups_)
        g->maybeSnapshot(now);
    nextSnapshotAt_.store((now / cfg_.statsEvery + 1) * cfg_.statsEvery,
                          std::memory_order_relaxed);
}

void
TraceSink::flushStats(Cycles now)
{
    if (cfg_.statsEvery == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto *g : statGroups_)
        g->takeSnapshot(now);
}

// ---------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------

std::vector<TraceEvent>
TraceSink::events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!wrapped_)
        return ring_;
    // Unroll the ring into chronological (recording) order.
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(ringHead_ + i) % ring_.size()]);
    return out;
}

std::uint64_t
TraceSink::eventsRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

std::uint64_t
TraceSink::eventsDropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::vector<PipeRecord>
TraceSink::pipeRecords() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pipe_;
}

std::vector<std::string>
TraceSink::trackNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return trackNames_;
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Snapshot shared state first; JsonWriter asserts on destruction
    // and must not run under the sink lock.
    std::vector<TraceEvent> evs = events();
    std::vector<std::string> names = trackNames();
    std::vector<const stats::StatGroup *> groups;
    std::uint64_t dropped;
    {
        std::lock_guard<std::mutex> lock(mu_);
        groups.assign(statGroups_.begin(), statGroups_.end());
        dropped = dropped_;
    }

    util::JsonWriter w(os, 0);
    w.beginObject();
    w.field("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.beginArray();

    // Track metadata: one named thread per component.
    for (std::size_t i = 0; i < names.size(); ++i) {
        w.beginObject();
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("pid", std::uint64_t(1));
        w.field("tid", std::uint64_t(i));
        w.key("args");
        w.beginObject();
        w.field("name", names[i]);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : evs) {
        w.beginObject();
        switch (ev.kind) {
          case EventKind::Complete:
            w.field("ph", "X");
            break;
          case EventKind::Instant:
            w.field("ph", "i");
            break;
          case EventKind::Counter:
            w.field("ph", "C");
            break;
        }
        w.field("name", ev.name);
        w.field("cat", flagName(ev.flag));
        w.field("pid", std::uint64_t(1));
        w.field("tid", std::uint64_t(ev.track));
        w.field("ts", ev.start);
        if (ev.kind == EventKind::Complete)
            w.field("dur", ev.duration);
        if (ev.kind == EventKind::Instant)
            w.field("s", "t");
        if (ev.argName) {
            w.key("args");
            w.beginObject();
            w.field(ev.argName, ev.argValue);
            w.endObject();
        }
        w.endObject();
    }

    // Periodic stat snapshots as counter tracks: Perfetto renders
    // these as per-interval delta graphs.
    for (const auto *g : groups) {
        for (const auto &snap : g->snapshots()) {
            for (const auto &[name, delta] : snap.deltas) {
                w.beginObject();
                w.field("ph", "C");
                w.field("name", name);
                w.field("cat", "stats");
                w.field("pid", std::uint64_t(2));
                w.field("tid", std::uint64_t(0));
                w.field("ts", snap.cycle);
                w.key("args");
                w.beginObject();
                w.field("value", delta);
                w.endObject();
                w.endObject();
            }
        }
    }

    w.endArray();
    w.field("droppedEvents", dropped);
    w.endObject();
    os << "\n";
}

bool
TraceSink::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        rest_warn("cannot open trace file ", path,
                  "; skipping Chrome-trace output");
        return false;
    }
    writeChromeTrace(out);
    out.flush();
    if (!out) {
        rest_warn("short write to trace file ", path);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// O3PipeView export
// ---------------------------------------------------------------------

void
TraceSink::writePipeView(std::ostream &os) const
{
    // gem5's O3PipeView line format (consumed unchanged by Konata and
    // util/o3-pipeview.py):
    //   O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
    //   O3PipeView:decode:<tick>
    //   O3PipeView:rename:<tick>
    //   O3PipeView:dispatch:<tick>
    //   O3PipeView:issue:<tick>
    //   O3PipeView:complete:<tick>
    //   O3PipeView:retire:<tick>:store:<write-complete tick>
    char pc_buf[32];
    for (const PipeRecord &r : pipeRecords()) {
        std::snprintf(pc_buf, sizeof(pc_buf), "0x%08llx",
                      static_cast<unsigned long long>(r.pc));
        os << "O3PipeView:fetch:" << r.fetch << ':' << pc_buf << ":0:"
           << r.seq << ':' << r.disasm << '\n'
           << "O3PipeView:decode:" << r.decode << '\n'
           << "O3PipeView:rename:" << r.rename << '\n'
           << "O3PipeView:dispatch:" << r.dispatch << '\n'
           << "O3PipeView:issue:" << r.issue << '\n'
           << "O3PipeView:complete:" << r.complete << '\n'
           << "O3PipeView:retire:" << r.retire << ":store:"
           << r.storeComplete << '\n';
    }
}

bool
TraceSink::writePipeViewFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        rest_warn("cannot open O3PipeView file ", path,
                  "; skipping pipeline-trace output");
        return false;
    }
    writePipeView(out);
    out.flush();
    if (!out) {
        rest_warn("short write to O3PipeView file ", path);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Sink installation
// ---------------------------------------------------------------------

namespace
{

thread_local TraceSink *tlsSink = nullptr;
std::atomic<TraceSink *> globalSink{nullptr};

} // namespace

TraceSink *
sink()
{
    if (tlsSink)
        return tlsSink;
    return globalSink.load(std::memory_order_acquire);
}

TraceSink *
setGlobalSink(TraceSink *s)
{
    return globalSink.exchange(s, std::memory_order_acq_rel);
}

ScopedSink::ScopedSink(TraceSink *s) : prev_(tlsSink)
{
    tlsSink = s;
}

ScopedSink::~ScopedSink()
{
    tlsSink = prev_;
}

} // namespace rest::trace
