/**
 * @file
 * Alignment and bit-manipulation helpers used throughout the memory
 * system and the REST primitive (token alignment checks in particular).
 */

#ifndef REST_UTIL_BIT_UTILS_HH
#define REST_UTIL_BIT_UTILS_HH

#include <bit>
#include <cstdint>

#include "util/types.hh"

namespace rest
{

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round addr down to a multiple of align (align must be a power of 2). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(static_cast<Addr>(align) - 1);
}

/** Round addr up to a multiple of align (align must be a power of 2). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(static_cast<Addr>(align) - 1);
}

/** True iff addr is a multiple of align (align must be a power of 2). */
constexpr bool
isAligned(Addr addr, std::uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

} // namespace rest

#endif // REST_UTIL_BIT_UTILS_HH
