/**
 * @file
 * A minimal JSON reader for files this codebase wrote itself (sweep
 * checkpoints, results files). It accepts the subset util::JsonWriter
 * emits plus standard whitespace, and reports malformed input through
 * ok() instead of exceptions, so callers can treat a truncated or
 * corrupt file (e.g. a checkpoint from a killed sweep) as "absent"
 * and carry on.
 *
 * Not a general-purpose parser: \uXXXX escapes cover the BMP (decoded
 * to UTF-8); surrogate pairs are rejected as malformed rather than
 * silently mangled, numbers go via std::strtod.
 */

#ifndef REST_UTIL_JSON_READER_HH
#define REST_UTIL_JSON_READER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rest::util
{

/** One parsed JSON value; a tagged union over the standard kinds. */
struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    bool has(const std::string &key) const
    { return members.count(key) != 0; }

    /** Member lookup; a missing key yields a shared Null value. */
    const JsonValue &at(const std::string &key) const;

    std::uint64_t u64() const { return std::uint64_t(number); }
};

/**
 * Parse a complete JSON document. Check ok() before trusting the
 * result: on malformed input parse() returns whatever was recovered
 * and ok() is false.
 */
class JsonReader
{
  public:
    explicit JsonReader(std::string text) : s_(std::move(text)) {}

    JsonValue parse();
    bool ok() const { return ok_; }

  private:
    void skipWs();
    char peek();
    void expect(char c);
    JsonValue parseValue();
    JsonValue parseObject();
    JsonValue parseArray();
    JsonValue parseString();
    JsonValue parseBool();
    JsonValue parseNull();
    JsonValue parseNumber();

    std::string s_; ///< owned: callers may pass temporaries
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Read and parse `path`. Returns a Null JsonValue with `ok` set false
 * when the file is missing, unreadable or malformed.
 */
JsonValue readJsonFile(const std::string &path, bool *ok);

} // namespace rest::util

#endif // REST_UTIL_JSON_READER_HH
