#include "util/metrics.hh"

#include <charconv>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace rest::telemetry
{

namespace
{

/** Shortest round-trip double, matching util::JsonWriter's convention
 *  so scraped values compare bit-exactly against JSON outputs.
 *  Prometheus accepts NaN/Inf spellings, unlike JSON. */
std::string
formatDouble(double d)
{
    if (std::isnan(d))
        return "NaN";
    if (std::isinf(d))
        return d > 0 ? "+Inf" : "-Inf";
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    rest_assert(ec == std::errc(), "double format failure");
    return std::string(buf, end);
}

/** Escape a label value per the exposition format. */
std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

const char *
typeName(int kind)
{
    switch (kind) {
      case 0: return "counter";
      case 1: return "gauge";
      default: return "histogram";
    }
}

/** Merge a family's label string with an extra label (histogram `le`). */
std::string
withExtraLabel(const std::string &labels, const std::string &key,
               const std::string &value)
{
    std::string extra = key + "=\"" + value + "\"";
    if (labels.empty())
        return "{" + extra + "}";
    // labels is "{...}"; splice before the closing brace.
    return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

} // namespace

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=\"" + escapeLabelValue(v) + "\"";
    }
    out += "}";
    return out;
}

MetricRegistry::Family &
MetricRegistry::family(const std::string &name, Family::Kind kind,
                       const std::string &help)
{
    auto [it, inserted] = families_.try_emplace(name);
    if (inserted) {
        it->second.kind = kind;
        it->second.help = help;
    } else {
        rest_assert(it->second.kind == kind,
                    "metric family ", name,
                    " re-registered with a different kind");
    }
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name, const std::string &help,
                        const Labels &labels)
{
    std::lock_guard lock(mutex_);
    Family &fam = family(name, Family::Kind::Counter, help);
    auto [it, inserted] =
        fam.counters.try_emplace(renderLabels(labels));
    if (inserted)
        it->second = std::make_unique<Counter>();
    return *it->second;
}

Gauge &
MetricRegistry::gauge(const std::string &name, const std::string &help,
                      const Labels &labels)
{
    std::lock_guard lock(mutex_);
    Family &fam = family(name, Family::Kind::Gauge, help);
    auto [it, inserted] = fam.gauges.try_emplace(renderLabels(labels));
    if (inserted)
        it->second = std::make_unique<Gauge>();
    return *it->second;
}

Histogram &
MetricRegistry::histogram(const std::string &name,
                          const std::string &help,
                          std::vector<std::uint64_t> edges,
                          const Labels &labels)
{
    std::lock_guard lock(mutex_);
    Family &fam = family(name, Family::Kind::Histogram, help);
    auto [it, inserted] = fam.hists.try_emplace(renderLabels(labels));
    if (inserted)
        it->second = std::make_unique<Histogram>(std::move(edges));
    return *it->second;
}

std::uint64_t
MetricRegistry::gaugeCallback(const std::string &name,
                              const std::string &help,
                              const Labels &labels,
                              std::function<double()> fn)
{
    std::lock_guard lock(mutex_);
    Family &fam = family(name, Family::Kind::Gauge, help);
    std::uint64_t id = next_callback_id_++;
    fam.callbacks[renderLabels(labels)] = {id, std::move(fn)};
    return id;
}

void
MetricRegistry::removeCallback(std::uint64_t id)
{
    std::lock_guard lock(mutex_);
    for (auto &[name, fam] : families_) {
        for (auto it = fam.callbacks.begin();
             it != fam.callbacks.end();) {
            if (it->second.id == id)
                it = fam.callbacks.erase(it);
            else
                ++it;
        }
    }
}

void
MetricRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard lock(mutex_);
    for (const auto &[name, fam] : families_) {
        // A family whose only instances were callback gauges since
        // removed still prints its header; harmless and keeps the
        // output a pure function of what was registered.
        os << "# HELP " << name << " " << fam.help << "\n";
        os << "# TYPE " << name << " "
           << typeName(int(fam.kind)) << "\n";
        for (const auto &[labels, c] : fam.counters)
            os << name << labels << " " << c->value() << "\n";
        for (const auto &[labels, g] : fam.gauges)
            os << name << labels << " " << formatDouble(g->value())
               << "\n";
        for (const auto &[labels, cb] : fam.callbacks)
            os << name << labels << " " << formatDouble(cb.fn())
               << "\n";
        for (const auto &[labels, h] : fam.hists) {
            const stats::Distribution d = h->snapshot();
            std::uint64_t cum = 0;
            const auto &buckets = d.buckets();
            const auto &edges = d.edges();
            for (std::size_t i = 0; i < buckets.size(); ++i) {
                cum += buckets[i];
                const std::string le =
                    i < edges.size() ? std::to_string(edges[i])
                                     : std::string("+Inf");
                os << name << "_bucket"
                   << withExtraLabel(labels, "le", le) << " " << cum
                   << "\n";
            }
            os << name << "_sum" << labels << " " << d.sum() << "\n";
            os << name << "_count" << labels << " " << d.count()
               << "\n";
        }
    }
}

std::string
MetricRegistry::prometheusText() const
{
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

} // namespace rest::telemetry
