#include "util/http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace rest::telemetry
{

namespace
{

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Error";
    }
}

/** write() the whole buffer; best-effort (client may have gone away). */
void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += std::size_t(n);
    }
}

} // namespace

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::route(const std::string &path, Handler handler)
{
    rest_assert(!running(), "HttpServer::route() after start()");
    routes_[path] = std::move(handler);
}

bool
HttpServer::start(std::uint16_t port)
{
    rest_assert(!running(), "HttpServer::start() while running");

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        rest_warn("telemetry http server: socket() failed: ",
                  std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        rest_warn("telemetry http server: cannot listen on port ",
                  port, ": ", std::strerror(errno));
        ::close(fd);
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;

    listen_fd_ = fd;
    stopping_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running())
        return;
    stopping_.store(true, std::memory_order_relaxed);
    // Wake the blocking accept(): shutdown does it on Linux; the
    // self-connect nudge covers platforms where it does not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port_);
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr));
        ::close(fd);
    }
    thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break; // listen socket gone; nothing left to serve
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            ::close(fd);
            break;
        }
        handleConnection(fd);
        ::close(fd);
    }
}

void
HttpServer::handleConnection(int fd)
{
    // Bound how long a slow client can hold the (serial) server.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    // Read until the end of the request headers (or a sane cap);
    // bodies are ignored — the telemetry endpoints are all GET.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16384) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, std::size_t(n));
    }

    HttpResponse resp;
    std::size_t eol = req.find("\r\n");
    std::size_t sp1 = req.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : req.find(' ', sp1 + 1);
    if (eol == std::string::npos || sp1 == std::string::npos ||
        sp2 == std::string::npos || sp2 > eol) {
        resp.status = 400;
        resp.body = "bad request\n";
    } else {
        HttpRequest parsed;
        parsed.method = req.substr(0, sp1);
        parsed.path = req.substr(sp1 + 1, sp2 - sp1 - 1);
        if (std::size_t q = parsed.path.find('?');
            q != std::string::npos)
            parsed.path.resize(q);
        if (parsed.method != "GET" && parsed.method != "HEAD") {
            resp.status = 405;
            resp.body = "method not allowed\n";
        } else if (auto it = routes_.find(parsed.path);
                   it != routes_.end()) {
            resp = it->second(parsed);
        } else {
            resp.status = 404;
            resp.body = "not found\n";
        }
        if (parsed.method == "HEAD")
            resp.body.clear();
    }

    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      statusText(resp.status) + "\r\n" +
                      "Content-Type: " + resp.contentType + "\r\n" +
                      "Content-Length: " +
                      std::to_string(resp.body.size()) + "\r\n" +
                      "Connection: close\r\n\r\n" + resp.body;
    sendAll(fd, out);
}

} // namespace rest::telemetry
