#include "util/json_reader.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rest::util
{

const JsonValue &
JsonValue::at(const std::string &key) const
{
    static const JsonValue nil;
    auto it = members.find(key);
    return it == members.end() ? nil : it->second;
}

JsonValue
JsonReader::parse()
{
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != s_.size())
        ok_ = false; // trailing garbage
    return v;
}

void
JsonReader::skipWs()
{
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
}

char
JsonReader::peek()
{
    skipWs();
    if (pos_ >= s_.size()) {
        ok_ = false;
        return '\0';
    }
    return s_[pos_];
}

void
JsonReader::expect(char c)
{
    if (peek() != c)
        ok_ = false;
    else
        ++pos_;
}

JsonValue
JsonReader::parseValue()
{
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return parseString();
      case 't': case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
}

JsonValue
JsonReader::parseObject()
{
    JsonValue v;
    v.kind = JsonValue::Object;
    expect('{');
    if (peek() == '}') {
        ++pos_;
        return v;
    }
    while (ok_) {
        JsonValue key = parseString();
        expect(':');
        v.members.emplace(key.str, parseValue());
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        break;
    }
    expect('}');
    return v;
}

JsonValue
JsonReader::parseArray()
{
    JsonValue v;
    v.kind = JsonValue::Array;
    expect('[');
    if (peek() == ']') {
        ++pos_;
        return v;
    }
    while (ok_) {
        v.items.push_back(parseValue());
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        break;
    }
    expect(']');
    return v;
}

JsonValue
JsonReader::parseString()
{
    JsonValue v;
    v.kind = JsonValue::String;
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
        char c = s_[pos_++];
        if (c == '\\' && pos_ < s_.size()) {
            char e = s_[pos_++];
            switch (e) {
              case 'n': v.str += '\n'; break;
              case 't': v.str += '\t'; break;
              case 'r': v.str += '\r'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'u': {
                // Full BMP escape: four hex digits decoded to UTF-8.
                // Surrogate halves are a hard error — the writer
                // never emits them and decoding one alone would
                // produce invalid UTF-8 silently.
                if (pos_ + 4 > s_.size()) {
                    ok_ = false;
                    pos_ = s_.size();
                    break;
                }
                unsigned cp = 0;
                bool bad_hex = false;
                for (unsigned i = 0; i < 4; ++i) {
                    const char h = s_[pos_ + i];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        bad_hex = true;
                }
                pos_ += 4;
                if (bad_hex || (cp >= 0xd800 && cp <= 0xdfff)) {
                    ok_ = false;
                    break;
                }
                if (cp < 0x80) {
                    v.str += char(cp);
                } else if (cp < 0x800) {
                    v.str += char(0xc0 | (cp >> 6));
                    v.str += char(0x80 | (cp & 0x3f));
                } else {
                    v.str += char(0xe0 | (cp >> 12));
                    v.str += char(0x80 | ((cp >> 6) & 0x3f));
                    v.str += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: v.str += e;
            }
        } else {
            v.str += c;
        }
    }
    expect('"');
    return v;
}

JsonValue
JsonReader::parseBool()
{
    JsonValue v;
    v.kind = JsonValue::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
        v.boolean = true;
        pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
        v.boolean = false;
        pos_ += 5;
    } else {
        ok_ = false;
    }
    return v;
}

JsonValue
JsonReader::parseNull()
{
    JsonValue v;
    if (s_.compare(pos_, 4, "null") == 0)
        pos_ += 4;
    else
        ok_ = false;
    return v;
}

JsonValue
JsonReader::parseNumber()
{
    JsonValue v;
    v.kind = JsonValue::Number;
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
        ++pos_;
    if (pos_ == start) {
        ok_ = false;
        return v;
    }
    const std::string text = s_.substr(start, pos_ - start);
    char *end = nullptr;
    v.number = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        ok_ = false;
    return v;
}

JsonValue
readJsonFile(const std::string &path, bool *ok)
{
    std::ifstream in(path);
    if (!in) {
        if (ok)
            *ok = false;
        return JsonValue{};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    JsonReader reader(buf.str());
    JsonValue v = reader.parse();
    if (ok)
        *ok = reader.ok();
    return v;
}

} // namespace rest::util
