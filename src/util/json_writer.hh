/**
 * @file
 * A minimal streaming JSON writer for machine-readable results files.
 *
 * Emits strictly valid JSON with deterministic formatting: keys and
 * values appear exactly in emission order, strings are escaped per RFC
 * 8259, and doubles are printed with round-trip precision via
 * std::to_chars so identical inputs always serialise to identical
 * bytes (the results regression tests rely on this).
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("figure"); w.value("fig7");
 *   w.key("cells"); w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 */

#ifndef REST_UTIL_JSON_WRITER_HH
#define REST_UTIL_JSON_WRITER_HH

#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hh"

namespace rest::util
{

class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 emits compact JSON. */
    explicit JsonWriter(std::ostream &os, unsigned indent = 2)
        : os_(os), indent_(indent)
    {}

    ~JsonWriter()
    {
        rest_assert(stack_.empty(),
                    "JsonWriter destroyed with open containers");
    }

    void
    beginObject()
    {
        beforeValue();
        os_ << '{';
        stack_.push_back({'}', true});
    }

    void
    endObject()
    {
        close('}');
    }

    void
    beginArray()
    {
        beforeValue();
        os_ << '[';
        stack_.push_back({']', true});
    }

    void
    endArray()
    {
        close(']');
    }

    void
    key(std::string_view name)
    {
        rest_assert(!stack_.empty() && stack_.back().closer == '}',
                    "JsonWriter::key() outside an object");
        separate();
        writeString(name);
        os_ << (indent_ ? ": " : ":");
        have_key_ = true;
    }

    void
    value(std::string_view s)
    {
        beforeValue();
        writeString(s);
    }

    void value(const char *s) { value(std::string_view(s)); }
    void value(const std::string &s) { value(std::string_view(s)); }

    void
    value(bool b)
    {
        beforeValue();
        os_ << (b ? "true" : "false");
    }

    void
    value(std::uint64_t v)
    {
        beforeValue();
        os_ << v;
    }

    void
    value(std::int64_t v)
    {
        beforeValue();
        os_ << v;
    }

    void value(int v) { value(std::int64_t(v)); }
    void value(unsigned v) { value(std::uint64_t(v)); }

    void
    value(double d)
    {
        beforeValue();
        // JSON has no NaN/Inf. They are legal inputs now that failed
        // sweep cells can leave aggregates undefined (e.g. a column
        // mean with no valid rows), so emit null — warning once per
        // process — instead of killing the harness mid-figure.
        if (!std::isfinite(d)) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true))
                rest_warn("non-finite value in JSON output; "
                          "emitting null (reported once)");
            os_ << "null";
            return;
        }
        char buf[32];
        auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
        rest_assert(ec == std::errc(), "double format failure");
        std::string_view sv(buf, std::size_t(end - buf));
        os_ << sv;
        // Bare integers like "2" are valid JSON numbers; keep them.
    }

    void
    nullValue()
    {
        beforeValue();
        os_ << "null";
    }

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

  private:
    struct Frame
    {
        char closer;
        bool first;
    };

    void
    beforeValue()
    {
        if (stack_.empty())
            return;
        if (stack_.back().closer == '}') {
            rest_assert(have_key_, "JSON object value without a key");
            have_key_ = false;
            return;
        }
        separate();
    }

    void
    separate()
    {
        auto &top = stack_.back();
        if (!top.first)
            os_ << ',';
        top.first = false;
        newlineIndent(stack_.size());
    }

    void
    close(char closer)
    {
        rest_assert(!stack_.empty() && stack_.back().closer == closer,
                    "mismatched JSON container close");
        bool empty = stack_.back().first;
        stack_.pop_back();
        if (!empty)
            newlineIndent(stack_.size());
        os_ << closer;
    }

    void
    newlineIndent(std::size_t depth)
    {
        if (!indent_)
            return;
        os_ << '\n';
        for (std::size_t i = 0; i < depth * indent_; ++i)
            os_ << ' ';
    }

    void
    writeString(std::string_view s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\b': os_ << "\\b"; break;
              case '\f': os_ << "\\f"; break;
              case '\n': os_ << "\\n"; break;
              case '\r': os_ << "\\r"; break;
              case '\t': os_ << "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char *hex = "0123456789abcdef";
                    os_ << "\\u00" << hex[(c >> 4) & 0xf]
                        << hex[c & 0xf];
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    unsigned indent_;
    std::vector<Frame> stack_;
    bool have_key_ = false;
};

} // namespace rest::util

#endif // REST_UTIL_JSON_WRITER_HH
