/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named statistics with a StatGroup; the group can
 * be dumped in a stable, machine-parsable "name value # desc" format.
 * Three kinds are provided:
 *   - Scalar:    a named 64-bit counter (also usable as a gauge),
 *   - Distribution: a bucketed histogram with min/max/mean tracking,
 *   - Formula:   a derived value computed at dump time.
 */

#ifndef REST_UTIL_STATS_HH
#define REST_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace rest::stats
{

/** A named 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A bucketed histogram with running sum for the mean. */
class Distribution
{
  public:
    /** Configure with bucket boundaries (upper edges, ascending). */
    void
    init(std::vector<std::uint64_t> upper_edges)
    {
        edges_ = std::move(upper_edges);
        buckets_.assign(edges_.size() + 1, 0);
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_) min_ = v;
        if (v > max_) max_ = v;
        std::size_t i = 0;
        while (i < edges_.size() && v > edges_[i])
            ++i;
        if (i < buckets_.size())
            ++buckets_[i];
    }

    void
    reset()
    {
        count_ = sum_ = min_ = max_ = 0;
        buckets_.assign(buckets_.size(), 0);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::vector<std::uint64_t> &edges() const { return edges_; }

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** A derived statistic evaluated lazily at dump time. */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    void set(std::function<double()> fn) { fn_ = std::move(fn); }
    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/**
 * A registry of named statistics belonging to one simulated component.
 * Groups can nest via dotted prefixes supplied by the owner.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under this group; returns a reference. */
    Scalar &
    addScalar(const std::string &stat, const std::string &desc)
    {
        auto [it, inserted] = scalars_.try_emplace(stat);
        rest_assert(inserted, "duplicate scalar stat ", name_, ".", stat);
        descs_[stat] = desc;
        return it->second;
    }

    /** Register a distribution under this group. */
    Distribution &
    addDistribution(const std::string &stat, const std::string &desc,
                    std::vector<std::uint64_t> edges)
    {
        auto [it, inserted] = dists_.try_emplace(stat);
        rest_assert(inserted, "duplicate dist stat ", name_, ".", stat);
        it->second.init(std::move(edges));
        descs_[stat] = desc;
        return it->second;
    }

    /** Register a formula under this group. */
    Formula &
    addFormula(const std::string &stat, const std::string &desc,
               std::function<double()> fn)
    {
        auto [it, inserted] = formulas_.try_emplace(stat,
                                                    Formula(std::move(fn)));
        rest_assert(inserted, "duplicate formula stat ", name_, ".", stat);
        descs_[stat] = desc;
        return it->second;
    }

    /** Look up a scalar's current value (0 if absent). */
    std::uint64_t
    scalarValue(const std::string &stat) const
    {
        auto it = scalars_.find(stat);
        return it == scalars_.end() ? 0 : it->second.value();
    }

    /**
     * Visit every scalar as ("group.stat", value), in stable
     * (lexicographic) order — the results layer snapshots components'
     * counters through this before a System is torn down.
     */
    template <typename Fn>
    void
    forEachScalar(Fn &&fn) const
    {
        for (const auto &[stat, scalar] : scalars_)
            fn(name_ + "." + stat, scalar.value());
    }

    /** Reset every statistic in the group. */
    void
    resetAll()
    {
        for (auto &kv : scalars_)
            kv.second.reset();
        for (auto &kv : dists_)
            kv.second.reset();
    }

    /** Dump all stats in "group.stat  value  # desc" format. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Formula> formulas_;
    std::map<std::string, std::string> descs_;
};

} // namespace rest::stats

#endif // REST_UTIL_STATS_HH
