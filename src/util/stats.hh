/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components register named statistics with a StatGroup; the group can
 * be dumped in a stable, machine-parsable "name value # desc" format.
 * Three kinds are provided:
 *   - Scalar:    a named 64-bit counter (also usable as a gauge),
 *   - Distribution: a bucketed histogram with min/max/mean tracking,
 *   - Formula:   a derived value computed at dump time.
 */

#ifndef REST_UTIL_STATS_HH
#define REST_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace rest::stats
{

/** A named 64-bit counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bucketed histogram with running sum for the mean.
 *
 * Bucketing convention (deterministic, relied on by tests):
 *   - `upper_edges` are *inclusive* upper bounds in strictly
 *     ascending order: a sample lands in the first bucket whose edge
 *     is >= the value (so a value exactly on an edge lands in that
 *     edge's bucket, never the next one).
 *   - Values above the last edge land in the final overflow bucket,
 *     so buckets() always has edges().size() + 1 entries and every
 *     sample is counted in exactly one bucket.
 */
class Distribution
{
  public:
    /** Configure with bucket boundaries (inclusive upper edges,
     *  strictly ascending — non-ascending edges are a caller bug). */
    void
    init(std::vector<std::uint64_t> upper_edges)
    {
        for (std::size_t i = 1; i < upper_edges.size(); ++i) {
            rest_assert(upper_edges[i - 1] < upper_edges[i],
                        "distribution edges must be strictly "
                        "ascending");
        }
        edges_ = std::move(upper_edges);
        buckets_.assign(edges_.size() + 1, 0);
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        if (buckets_.empty()) {
            // Never init()ed: behave as a single overflow bucket so
            // every sample is still counted deterministically.
            buckets_.assign(1, 0);
        }
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_) min_ = v;
        if (v > max_) max_ = v;
        std::size_t i = 0;
        while (i < edges_.size() && v > edges_[i])
            ++i;
        ++buckets_[i];
    }

    void
    reset()
    {
        count_ = sum_ = min_ = max_ = 0;
        buckets_.assign(buckets_.size(), 0);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::vector<std::uint64_t> &edges() const { return edges_; }

    /**
     * The p-th percentile (p in [0, 100]) as a bucket-resolution
     * estimate: the inclusive upper edge of the bucket holding the
     * ceil(p/100 * count)-th smallest sample, clamped to the observed
     * [min, max] range so percentile(0) == minValue(),
     * percentile(100) == maxValue(), and a rank landing in the
     * overflow bucket reports maxValue() rather than infinity.
     * An empty distribution yields 0.
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        if (p <= 0.0)
            return double(min_);
        if (p >= 100.0)
            return double(max_);
        // ceil without FP rounding surprises: rank in [1, count].
        std::uint64_t rank = std::uint64_t((p / 100.0) * double(count_));
        if (double(rank) < (p / 100.0) * double(count_))
            ++rank;
        if (rank == 0)
            rank = 1;
        if (rank > count_)
            rank = count_;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            cum += buckets_[i];
            if (cum < rank)
                continue;
            if (i >= edges_.size())
                return double(max_); // overflow bucket
            double edge = double(edges_[i]);
            if (edge > double(max_))
                edge = double(max_);
            if (edge < double(min_))
                edge = double(min_);
            return edge;
        }
        return double(max_); // unreachable: cum == count_ >= rank
    }

    /**
     * Dump helper for exposition layers: (percentile, estimate) pairs
     * for the requested percentiles (a standard telemetry set by
     * default), in the order given.
     */
    std::vector<std::pair<double, double>>
    quantiles(const std::vector<double> &ps = {50, 90, 95, 99, 100})
        const
    {
        std::vector<std::pair<double, double>> out;
        out.reserve(ps.size());
        for (double p : ps)
            out.emplace_back(p, percentile(p));
        return out;
    }

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** A derived statistic evaluated lazily at dump time. */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    void set(std::function<double()> fn) { fn_ = std::move(fn); }
    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/**
 * One periodic snapshot of a StatGroup: the cycle it was taken at and
 * the per-scalar deltas accumulated since the previous snapshot.
 * A time series of these is the `stat_series` stream in sweep results
 * and the counter tracks in Chrome-trace output (rest::trace).
 */
struct StatSnapshot
{
    Cycles cycle = 0;
    /** "group.stat" -> increment over the preceding interval. */
    std::map<std::string, std::uint64_t> deltas;
};

/**
 * A registry of named statistics belonging to one simulated component.
 * Groups can nest via dotted prefixes supplied by the owner.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under this group; returns a reference. */
    Scalar &
    addScalar(const std::string &stat, const std::string &desc)
    {
        auto [it, inserted] = scalars_.try_emplace(stat);
        rest_assert(inserted, "duplicate scalar stat ", name_, ".", stat);
        descs_[stat] = desc;
        return it->second;
    }

    /** Register a distribution under this group. */
    Distribution &
    addDistribution(const std::string &stat, const std::string &desc,
                    std::vector<std::uint64_t> edges)
    {
        auto [it, inserted] = dists_.try_emplace(stat);
        rest_assert(inserted, "duplicate dist stat ", name_, ".", stat);
        it->second.init(std::move(edges));
        descs_[stat] = desc;
        return it->second;
    }

    /** Register a formula under this group. */
    Formula &
    addFormula(const std::string &stat, const std::string &desc,
               std::function<double()> fn)
    {
        auto [it, inserted] = formulas_.try_emplace(stat,
                                                    Formula(std::move(fn)));
        rest_assert(inserted, "duplicate formula stat ", name_, ".", stat);
        descs_[stat] = desc;
        return it->second;
    }

    /** Look up a scalar's current value (0 if absent). */
    std::uint64_t
    scalarValue(const std::string &stat) const
    {
        auto it = scalars_.find(stat);
        return it == scalars_.end() ? 0 : it->second.value();
    }

    /**
     * Visit every scalar as ("group.stat", value), in stable
     * (lexicographic) order — the results layer snapshots components'
     * counters through this before a System is torn down.
     */
    template <typename Fn>
    void
    forEachScalar(Fn &&fn) const
    {
        for (const auto &[stat, scalar] : scalars_)
            fn(name_ + "." + stat, scalar.value());
    }

    /** Reset every statistic in the group. */
    void
    resetAll()
    {
        for (auto &kv : scalars_)
            kv.second.reset();
        for (auto &kv : dists_)
            kv.second.reset();
    }

    /** Dump all stats in "group.stat  value  # desc" format. */
    void dump(std::ostream &os) const;

    // --- periodic snapshots (rest::trace metrics layer) ---------------

    /**
     * Enable periodic snapshotting every `n_cycles` (0 disables).
     * The group does not own a clock: the owner's timing loop (or a
     * trace::TraceSink it is registered with) drives time by calling
     * maybeSnapshot(now).
     */
    void
    dumpEvery(std::uint64_t n_cycles)
    {
        snapEvery_ = n_cycles;
        nextSnapAt_ = n_cycles;
    }

    /** Is periodic snapshotting enabled? */
    std::uint64_t snapshotPeriod() const { return snapEvery_; }

    /**
     * Take a snapshot if `now` has reached the next boundary. A single
     * compare when disabled or before the boundary; intervals the
     * clock jumps clean over collapse into one snapshot at `now`.
     */
    void
    maybeSnapshot(Cycles now)
    {
        if (snapEvery_ == 0 || now < nextSnapAt_)
            return;
        takeSnapshot(now);
        nextSnapAt_ = (now / snapEvery_ + 1) * snapEvery_;
    }

    /**
     * Unconditionally snapshot at `now` (used to flush the final
     * partial interval). Records every scalar's delta since the
     * previous snapshot; a duplicate call at the same cycle is a
     * no-op.
     */
    void
    takeSnapshot(Cycles now)
    {
        if (!snapshots_.empty() && snapshots_.back().cycle == now)
            return;
        StatSnapshot snap;
        snap.cycle = now;
        for (const auto &[stat, scalar] : scalars_) {
            std::uint64_t prev = lastSnapValues_[stat];
            snap.deltas[name_ + "." + stat] = scalar.value() - prev;
            lastSnapValues_[stat] = scalar.value();
        }
        snapshots_.push_back(std::move(snap));
    }

    /** The time series collected so far. */
    const std::vector<StatSnapshot> &snapshots() const
    { return snapshots_; }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Formula> formulas_;
    std::map<std::string, std::string> descs_;

    std::uint64_t snapEvery_ = 0;
    Cycles nextSnapAt_ = 0;
    std::map<std::string, std::uint64_t> lastSnapValues_;
    std::vector<StatSnapshot> snapshots_;
};

} // namespace rest::stats

#endif // REST_UTIL_STATS_HH
