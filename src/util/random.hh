/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the reproduction (workload generation,
 * token value selection, allocator entropy) flows through Xoshiro256ss
 * instances seeded explicitly, so every experiment is exactly
 * reproducible from its seed.
 */

#ifndef REST_UTIL_RANDOM_HH
#define REST_UTIL_RANDOM_HH

#include <array>
#include <cstdint>

namespace rest
{

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and good
 * enough statistical quality for workload synthesis and token values.
 */
class Xoshiro256ss
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Xoshiro256ss(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next 64 uniformly distributed bits. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free-enough reduction; bias is
        // negligible for the bounds used in workload synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (operator()() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace rest

#endif // REST_UTIL_RANDOM_HH
