#include "util/logging.hh"

#include <mutex>

namespace rest
{

std::atomic<bool> verboseLogging{false};

namespace detail
{

namespace
{

/** Serialises warn()/inform() (and last-words panic/fatal) output so
 *  concurrent sweep workers never interleave mid-line. */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

/** Compose the whole line first, then write it in one call. */
void
writeLine(std::ostream &os, const char *prefix, const std::string &msg,
          const char *suffix = "")
{
    std::string line;
    line.reserve(msg.size() + 32);
    line += prefix;
    line += msg;
    line += suffix;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    os << line << std::flush;
}

} // namespace

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine(std::cerr, "panic: ",
              msg + " @ " + file + ":" + std::to_string(line));
    std::abort();
}

namespace
{

/** Depth of live ScopedFatalThrow guards on this thread. */
thread_local int fatal_throw_depth = 0;

} // namespace

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msg + " @ " + file + ":" + std::to_string(line);
    if (fatal_throw_depth > 0)
        throw util::FatalError(full);
    writeLine(std::cerr, "fatal: ", full);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    writeLine(std::cerr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (verboseLogging.load(std::memory_order_relaxed))
        writeLine(std::cout, "info: ", msg);
}

} // namespace detail

namespace util
{

ScopedFatalThrow::ScopedFatalThrow() { ++detail::fatal_throw_depth; }
ScopedFatalThrow::~ScopedFatalThrow() { --detail::fatal_throw_depth; }

} // namespace util

} // namespace rest
