#include "util/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace rest
{

std::atomic<bool> verboseLogging{false};

namespace
{

/** -1 = not yet resolved from REST_LOG_TIMESTAMPS, else 0/1. */
std::atomic<int> timestampsState{-1};

/** Small sequential id per logging thread (t0, t1, ...), stable for
 *  the thread's lifetime — much easier to correlate by eye than the
 *  opaque std::thread::id hash. */
unsigned
threadLogId()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

/** "[2026-08-07T12:34:56.789Z t1] " */
std::string
timestampPrefix()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const std::time_t secs = system_clock::to_time_t(now);
    const auto ms =
        duration_cast<milliseconds>(now.time_since_epoch()).count() %
        1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "[%04d-%02d-%02dT%02d:%02d:%02d.%03dZ t%u] ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec, int(ms),
                  threadLogId());
    return buf;
}

} // namespace

void
setLogTimestamps(bool enabled)
{
    timestampsState.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
logTimestampsEnabled()
{
    int s = timestampsState.load(std::memory_order_relaxed);
    if (s < 0) {
        const char *env = std::getenv("REST_LOG_TIMESTAMPS");
        s = (env && *env && std::strcmp(env, "0") != 0) ? 1 : 0;
        timestampsState.store(s, std::memory_order_relaxed);
    }
    return s == 1;
}

namespace detail
{

namespace
{

/** Serialises warn()/inform() (and last-words panic/fatal) output so
 *  concurrent sweep workers never interleave mid-line. */
std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

/** Compose the whole line first, then write it in one call. */
void
writeLine(std::ostream &os, const char *prefix, const std::string &msg,
          const char *suffix = "")
{
    std::string line;
    line.reserve(msg.size() + 64);
    if (logTimestampsEnabled())
        line += timestampPrefix();
    line += prefix;
    line += msg;
    line += suffix;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    os << line << std::flush;
}

} // namespace

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine(std::cerr, "panic: ",
              msg + " @ " + file + ":" + std::to_string(line));
    std::abort();
}

namespace
{

/** Depth of live ScopedFatalThrow guards on this thread. */
thread_local int fatal_throw_depth = 0;

} // namespace

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = msg + " @ " + file + ":" + std::to_string(line);
    if (fatal_throw_depth > 0)
        throw util::FatalError(full);
    writeLine(std::cerr, "fatal: ", full);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    writeLine(std::cerr, "warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (verboseLogging.load(std::memory_order_relaxed))
        writeLine(std::cout, "info: ", msg);
}

} // namespace detail

namespace util
{

ScopedFatalThrow::ScopedFatalThrow() { ++detail::fatal_throw_depth; }
ScopedFatalThrow::~ScopedFatalThrow() { --detail::fatal_throw_depth; }

} // namespace util

} // namespace rest
