#include "workload/server_mix.hh"

#include <vector>

#include "analysis/verifier.hh"
#include "runtime/runtime_config.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/zipf.hh"

namespace rest::workload
{

using isa::FuncBuilder;
using isa::Opcode;
using isa::RegId;

namespace
{

// Register conventions of the generated handlers.
constexpr RegId r2 = 2;  ///< address formation
constexpr RegId r3 = 3;  ///< load destination
constexpr RegId r4 = 4;  ///< object pointer
constexpr RegId r5 = 5;  ///< store data
constexpr RegId r6 = 6;  ///< mailbox channel base
constexpr RegId r7 = 7;  ///< spin/flag scratch
constexpr RegId r13 = 13; ///< runtime-call argument

/** Globals-segment layout of the server mix. */
struct Layout
{
    static constexpr Addr base = runtime::AddressMap::globalsBase;

    /** Ring channel c: [ptr, flag] (16 bytes). */
    static Addr chan(unsigned c) { return base + 0x3000 + 16 * c; }
    /** Shared read-mostly hot table, 8 bytes per object. */
    static Addr hot(std::uint64_t k) { return base + 0x4000 + 8 * k; }
    /** Core-private slot table (heap pointers parked in memory). */
    static Addr
    slot(unsigned core, unsigned s)
    {
        return base + 0x8000 + 0x200 * core + 8 * s;
    }
};

/** Emit: r_dst = malloc(bytes). */
void
emitMalloc(FuncBuilder &b, RegId r_dst, std::int64_t bytes)
{
    b.movImm(r13, bytes);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(r_dst, isa::regRet);
}

/** Emit: free(r_ptr). */
void
emitFree(FuncBuilder &b, RegId r_ptr)
{
    b.emit({Opcode::RtFree, isa::noReg, r_ptr, isa::noReg, 8, 0, -1,
            -1});
}

/** Per-slot generator state (sampling happens at build time). */
struct SlotState
{
    bool live = false;
    std::uint32_t bytes = 0;
    std::uint64_t uses = 0;
};

/** Object size for popularity class k. */
std::uint32_t
objectBytes(const ServerMixConfig &cfg, std::uint64_t k)
{
    return cfg.baseObjectBytes +
           8 * static_cast<std::uint32_t>(k % 8);
}

/** Emit one request: hot-table read + slot-object touch/churn. */
void
emitRequest(FuncBuilder &b, const ServerMixConfig &cfg, unsigned core,
            std::vector<SlotState> &slots, std::uint64_t k)
{
    // Popularity lookup in the shared table: read-only sharing.
    b.movImm(r2, static_cast<std::int64_t>(
                     Layout::hot(k % cfg.hotObjects)));
    b.load(r3, r2, 0, 8);

    // The object behind the request, popularity-mapped to a slot.
    const unsigned s = static_cast<unsigned>(k % cfg.localSlots);
    SlotState &st = slots[s];
    const Addr slot_addr = Layout::slot(core, s);
    b.movImm(r2, static_cast<std::int64_t>(slot_addr));
    if (!st.live) {
        emitMalloc(b, r4, objectBytes(cfg, k));
        b.store(r4, r2, 0, 8);
        st = {true, objectBytes(cfg, k), 0};
    } else {
        b.load(r4, r2, 0, 8);
        if (cfg.churnEvery != 0 && ++st.uses % cfg.churnEvery == 0) {
            // Recycle: the tail of the popularity curve keeps the
            // allocator and quarantine busy.
            emitFree(b, r4);
            emitMalloc(b, r4, objectBytes(cfg, k));
            b.store(r4, r2, 0, 8);
            st.bytes = objectBytes(cfg, k);
        }
    }

    // Touch the object: first and last word, then a read back.
    b.movImm(r5, 0x5a);
    b.store(r5, r4, 0, 8);
    if (st.bytes >= 16)
        b.store(r5, r4, st.bytes - 8, 8);
    b.load(r3, r4, 0, 8);
}

/** Emit: publish a fresh buffer into this core's ring channel. */
void
emitProduce(FuncBuilder &b, unsigned core)
{
    emitMalloc(b, r4, 32);
    b.movImm(r5, 0x77);
    b.store(r5, r4, 0, 8);
    b.movImm(r6, static_cast<std::int64_t>(Layout::chan(core)));
    // Wait for the previous hand-off to be consumed (flag == 0).
    int loop = b.here();
    b.load(r7, r6, 8, 8);
    b.branch(Opcode::Bne, r7, isa::regZero, loop);
    b.store(r4, r6, 0, 8);
    b.movImm(r7, 1);
    b.store(r7, r6, 8, 8);
}

/** Emit: take, dirty and free a buffer from channel 'from'. */
void
emitConsume(FuncBuilder &b, unsigned from)
{
    b.movImm(r6, static_cast<std::int64_t>(Layout::chan(from)));
    int loop = b.here();
    b.load(r7, r6, 8, 8);
    b.branch(Opcode::Beq, r7, isa::regZero, loop);
    b.load(r4, r6, 0, 8);
    b.store(isa::regZero, r6, 8, 8); // clear the flag
    // The consumer writes into the received buffer (a dirty
    // cross-core transfer), then releases it.
    b.movImm(r5, 0x33);
    b.store(r5, r4, 8, 8);
    emitFree(b, r4);
}

/** Build the handler program for one core. */
isa::Program
buildHandler(const ServerMixConfig &cfg, unsigned core)
{
    // Per-core sampling stream: handlers are decoupled, and adding a
    // core never perturbs the others' request sequences.
    Xoshiro256ss rng(cfg.seed + 0x9e3779b97f4a7c15ull * core);
    util::Zipf zipf(cfg.hotObjects, cfg.zipfTheta);
    std::vector<SlotState> slots(cfg.localSlots);

    FuncBuilder b("handler");
    for (std::uint64_t r = 0; r < cfg.requestsPerCore; ++r) {
        emitRequest(b, cfg, core, slots, zipf(rng));
        if (cfg.handoffEvery != 0 &&
            (r + 1) % cfg.handoffEvery == 0) {
            emitProduce(b, core);
            emitConsume(b, (core + cfg.cores - 1) % cfg.cores);
        }
    }
    // Drain: release the long-lived slot objects.
    for (unsigned s = 0; s < cfg.localSlots; ++s) {
        if (!slots[s].live)
            continue;
        b.movImm(r2, static_cast<std::int64_t>(Layout::slot(core, s)));
        b.load(r4, r2, 0, 8);
        emitFree(b, r4);
    }
    b.halt();

    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
#ifndef NDEBUG
    auto diags = analysis::verifyGeneratorContract(prog);
    rest_assert(diags.empty(),
                "generated server-mix handler violates the "
                "instrumentation contract:\n",
                analysis::formatDiagnostics(diags));
#endif
    return prog;
}

} // namespace

std::vector<isa::Program>
serverMix(const ServerMixConfig &cfg)
{
    rest_assert(cfg.cores >= 1, "server mix needs >= 1 core");
    rest_assert(cfg.localSlots >= 1 && cfg.localSlots <= 64,
                "localSlots must fit the per-core slot table");
    rest_assert(cfg.hotObjects >= 1, "hot table cannot be empty");
    std::vector<isa::Program> progs;
    progs.reserve(cfg.cores);
    for (unsigned i = 0; i < cfg.cores; ++i)
        progs.push_back(buildHandler(cfg, i));
    return progs;
}

} // namespace rest::workload
