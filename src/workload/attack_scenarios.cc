#include "workload/attack_scenarios.hh"

#include "analysis/verifier.hh"
#include "runtime/runtime_config.hh"
#include "util/logging.hh"

namespace rest::workload::attacks
{

using isa::FuncBuilder;
using isa::Opcode;
using isa::RegId;

namespace
{

constexpr RegId r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r13 = 13;

/** Emit: r_dst = malloc(bytes). */
void
emitMalloc(FuncBuilder &b, RegId r_dst, std::int64_t bytes)
{
    b.movImm(r13, bytes);
    b.emit({Opcode::RtMalloc, isa::noReg, r13, isa::noReg, 8, 0, -1,
            -1});
    b.mov(r_dst, isa::regRet);
}

/** Emit: memset(r_dst, value, bytes). */
void
emitMemset(FuncBuilder &b, RegId r_dst, std::uint8_t value,
           std::int64_t bytes)
{
    b.movImm(r13, bytes);
    b.movImm(r2, value);
    b.emit({Opcode::RtMemset, r13, r_dst, r2, 8, 0, -1, -1});
}

/** Emit a store loop writing 'words' 8-byte words from [r_base]. */
void
emitStoreSweep(FuncBuilder &b, RegId r_base, std::int64_t words)
{
    b.movImm(r2, words);
    b.mov(r3, r_base);
    int loop = b.here();
    b.store(r2, r3, 0, 8);
    b.addI(r3, r3, 8);
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, loop);
}

/** Debug builds check the generator contract on every program. */
isa::Program
finish(isa::Program &&prog)
{
#ifndef NDEBUG
    auto diags = analysis::verifyGeneratorContract(prog);
    rest_assert(diags.empty(), "generated attack program violates the "
                "instrumentation contract:\n",
                analysis::formatDiagnostics(diags));
#endif
    return std::move(prog);
}

/** A single-function program from a builder body. */
isa::Program
soloProgram(FuncBuilder &&b)
{
    isa::Program prog;
    prog.funcs.push_back(std::move(b).take());
    return finish(std::move(prog));
}

} // namespace

isa::Program
heartbleed(std::uint32_t benign_len, std::uint32_t payload_len)
{
    rest_assert(payload_len > benign_len,
                "heartbleed needs an over-read length");
    FuncBuilder b("main");
    // The benign request buffer, filled with marker bytes.
    emitMalloc(b, r1, benign_len);
    emitMemset(b, r1, 0x11, benign_len);
    // A "secret" allocation nearby (passwords, keys...).
    emitMalloc(b, r4, 64);
    emitMemset(b, r4, 0xa5, 64);
    // The response buffer the server will send back.
    emitMalloc(b, r5, payload_len);
    // The bug: attacker-controlled length, no validation (Listing 1
    // line 14: memcpy(buffer, p, payload)).
    b.movImm(r3, payload_len);
    b.emit({Opcode::RtMemcpy, r3, r5, r1, 8, 0, -1, -1});
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
heapOverflowWrite(std::uint32_t buf_len, std::uint32_t n)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len);
    emitStoreSweep(b, r1, n);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
heapJumpOverRedzone(std::uint32_t a_len, std::uint32_t b_len,
                    std::uint32_t jump)
{
    rest_assert(jump > a_len && jump < b_len,
                "jump must leap past a's end into b's payload");
    FuncBuilder b("main");
    emitMalloc(b, r1, a_len);
    emitMalloc(b, r2, b_len);
    emitMemset(b, r2, 0x33, b_len); // b is live, its payload valid
    // The leap: far enough past a's end to clear any redzone, well
    // inside b's (much larger) payload.
    b.movImm(r3, 0x5a);
    b.store(r3, r1, jump, 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
pointerDiffJump(std::uint32_t a_len, std::uint32_t b_len)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, a_len);
    emitMalloc(b, r2, b_len);
    // a + (b - a) == b bit-exactly: redzones are skipped and any
    // pointer metadata (tag, PAC) survives the round trip.
    b.alu(Opcode::Sub, r3, r2, r1);
    b.alu(Opcode::Add, r4, r1, r3);
    b.load(r5, r4, 0, 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
rawPointerLoad(std::uint32_t buf_len)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len);
    // Forge a raw (metadata-stripped) pointer to the same location.
    b.emit({Opcode::AndI, r2, r1, isa::noReg, 8,
            static_cast<std::int64_t>((1ll << 48) - 1), -1, -1});
    b.load(r5, r2, 0, 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
useAfterRecycle(std::uint32_t buf_len, std::uint32_t churn)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len); // the dangling pointer
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    // Churn until any quarantine recycles the chunk.
    b.movImm(r2, churn);
    int loop = b.here();
    emitMalloc(b, r3, buf_len);
    b.emit({Opcode::RtFree, isa::noReg, r3, isa::noReg, 8, 0, -1, -1});
    b.addI(r2, r2, -1);
    b.branch(Opcode::Bne, r2, isa::regZero, loop);
    // One live allocation that (very likely) recycles the chunk.
    emitMalloc(b, r4, buf_len);
    // The dangling access.
    b.load(r5, r1, 0, 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
heapUnderflowRead(std::uint32_t buf_len, std::uint32_t offset)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len);
    b.load(r2, r1, -static_cast<std::int64_t>(offset), 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
useAfterFree(std::uint32_t buf_len)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len);
    emitMemset(b, r1, 0x22, buf_len);
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    // The dangling dereference.
    b.load(r2, r1, 0, 8);
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
doubleFree(std::uint32_t buf_len)
{
    FuncBuilder b("main");
    emitMalloc(b, r1, buf_len);
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    return soloProgram(std::move(b));
}

namespace
{

/** Shared body for the stack overflow scenarios. */
isa::Program
stackSweepProgram(std::uint32_t buf_len, std::int64_t words)
{
    isa::Program prog;

    FuncBuilder main_fn("main");
    main_fn.call(1);
    main_fn.halt();
    prog.funcs.push_back(std::move(main_fn).take());

    FuncBuilder victim("victim");
    int buf = victim.stackBuf(buf_len, true);
    victim.leaBuf(r1, buf);
    emitStoreSweep(victim, r1, words);
    victim.ret();
    prog.funcs.push_back(std::move(victim).take());
    return finish(std::move(prog));
}

} // namespace

isa::Program
stackOverflowWrite(std::uint32_t buf_len, std::uint32_t n)
{
    return stackSweepProgram(buf_len, n);
}

isa::Program
stackPadOverflow(std::uint32_t buf_len, std::uint32_t overflow_bytes)
{
    return stackSweepProgram(buf_len,
                             (buf_len + overflow_bytes + 7) / 8);
}

isa::Program
strcpyOverflow(std::uint32_t buf_len, std::uint32_t str_len)
{
    FuncBuilder b("main");
    // The source string: str_len non-zero bytes, NUL-terminated.
    emitMalloc(b, r4, str_len + 8);
    emitMemset(b, r4, 0x41, str_len); // "AAAA..."; NUL follows
    // The undersized destination.
    emitMalloc(b, r1, buf_len);
    // strcpy(dst = r1, src = r4)
    b.emit({Opcode::RtStrcpy, isa::noReg, r1, r4, 8, 0, -1, -1});
    b.halt();
    return soloProgram(std::move(b));
}

isa::Program
bruteForceDisarm()
{
    FuncBuilder b("main");
    // Allocate something so the heap is live, then blind-disarm its
    // (unarmed) payload: the attacker does not know the armed layout.
    emitMalloc(b, r1, 64);
    b.emit({Opcode::Disarm, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    b.halt();
    return soloProgram(std::move(b));
}

namespace
{

// Spin-flag mailbox in the globals segment shared by the two-core
// scenario pairs (the single-core builders never touch it).
constexpr RegId r6 = 6, r7 = 7;
constexpr Addr mboxBase = runtime::AddressMap::globalsBase + 0x2000;
constexpr std::int64_t mboxPtr = 0;    ///< the handed-off pointer
constexpr std::int64_t mboxReady = 8;  ///< producer: pointer published
constexpr std::int64_t mboxAck = 16;   ///< consumer: pointer taken
constexpr std::int64_t mboxFreed = 24; ///< producer: free() retired

/** Emit: spin until [r6 + off] != 0. */
void
emitSpinWait(FuncBuilder &b, std::int64_t off)
{
    int loop = b.here();
    b.load(r7, r6, off, 8);
    b.branch(Opcode::Beq, r7, isa::regZero, loop);
}

/** Emit: [r6 + off] = 1. */
void
emitFlagSet(FuncBuilder &b, std::int64_t off)
{
    b.movImm(r7, 1);
    b.store(r7, r6, off, 8);
}

/**
 * The producer half shared by the cross-thread UAF and racy
 * double-free pairs: allocate, publish, await the ack, free,
 * announce the free.
 */
isa::Program
handoffProducer(std::uint32_t buf_len)
{
    FuncBuilder b("producer");
    emitMalloc(b, r1, buf_len);
    emitMemset(b, r1, 0x22, buf_len);
    b.movImm(r6, static_cast<std::int64_t>(mboxBase));
    b.store(r1, r6, mboxPtr, 8);
    emitFlagSet(b, mboxReady);
    emitSpinWait(b, mboxAck);
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    emitFlagSet(b, mboxFreed);
    b.halt();
    return soloProgram(std::move(b));
}

/** The consumer prologue: await the pointer, take it, ack. */
void
emitTakeHandoff(FuncBuilder &b)
{
    b.movImm(r6, static_cast<std::int64_t>(mboxBase));
    emitSpinWait(b, mboxReady);
    b.load(r1, r6, mboxPtr, 8);
    emitFlagSet(b, mboxAck);
}

} // namespace

std::vector<isa::Program>
crossThreadUseAfterFree(std::uint32_t buf_len)
{
    FuncBuilder b("consumer");
    emitTakeHandoff(b);
    emitSpinWait(b, mboxFreed);
    // The cross-thread dangling dereference.
    b.load(r2, r1, 0, 8);
    b.halt();

    std::vector<isa::Program> progs;
    progs.push_back(handoffProducer(buf_len));
    progs.push_back(soloProgram(std::move(b)));
    return progs;
}

std::vector<isa::Program>
racyDoubleFree(std::uint32_t buf_len)
{
    FuncBuilder b("consumer");
    emitTakeHandoff(b);
    emitSpinWait(b, mboxFreed);
    // The second free of a chunk the producer already released.
    b.emit({Opcode::RtFree, isa::noReg, r1, isa::noReg, 8, 0, -1, -1});
    b.halt();

    std::vector<isa::Program> progs;
    progs.push_back(handoffProducer(buf_len));
    progs.push_back(soloProgram(std::move(b)));
    return progs;
}

std::vector<isa::Program>
handoffThenOverflow(std::uint32_t buf_len, std::uint32_t n)
{
    rest_assert(std::uint64_t(n) * 8 > buf_len,
                "hand-off overflow needs n words past the buffer");
    // The producer only publishes; the buffer stays live.
    FuncBuilder p("producer");
    emitMalloc(p, r1, buf_len);
    p.movImm(r6, static_cast<std::int64_t>(mboxBase));
    p.store(r1, r6, mboxPtr, 8);
    emitFlagSet(p, mboxReady);
    p.halt();

    FuncBuilder b("consumer");
    emitTakeHandoff(b);
    // Trusting the producer's length: sweep past the end.
    emitStoreSweep(b, r1, n);
    b.halt();

    std::vector<isa::Program> progs;
    progs.push_back(soloProgram(std::move(p)));
    progs.push_back(soloProgram(std::move(b)));
    return progs;
}

} // namespace rest::workload::attacks
