/**
 * @file
 * Server-shaped multicore workload: N concurrent request handlers
 * with Zipf-distributed object popularity.
 *
 * Each core runs one generated "request handler" program. Per
 * request the handler
 *   - reads the shared hot table (read-mostly sharing: every core's
 *     L1 ends up holding the popular lines in Shared state),
 *   - touches a heap object from its local slot table, where the slot
 *     is chosen by a Zipf(hotObjects, theta) sample — popular slots
 *     stay L1-resident, the tail churns through malloc/free and the
 *     quarantine,
 *   - every handoffEvery-th request hands a freshly allocated buffer
 *     to the next core in the ring (spin-flag mailbox in the globals
 *     segment) and consumes, writes to and frees one received from
 *     the previous core — the cross-core dirty-transfer traffic of a
 *     producer/consumer server.
 *
 * All sampling happens at program-generation time from a per-core
 * Xoshiro stream, so the returned programs — and any simulation of
 * them — are a pure function of the config (deterministic per seed).
 * Builders return un-instrumented programs; finalisation for a
 * protection scheme happens inside the (multicore) system.
 */

#ifndef REST_WORKLOAD_SERVER_MIX_HH
#define REST_WORKLOAD_SERVER_MIX_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace rest::workload
{

/** Shape of the generated server mix. */
struct ServerMixConfig
{
    /** Number of cores == number of generated handler programs. */
    unsigned cores = 4;
    /** Requests each handler serves before draining and halting. */
    std::uint64_t requestsPerCore = 64;
    /** Zipf population: number of distinct hot-table objects. */
    std::uint64_t hotObjects = 64;
    /** Zipf skew (0 == uniform; 0.99 == the YCSB default). */
    double zipfTheta = 0.99;
    /** Seed for the per-core sampling streams. */
    std::uint64_t seed = 0x5e11e;
    /** Long-lived heap objects per core (popularity-mapped). */
    unsigned localSlots = 8;
    /** Smallest object size; the class index scales it. */
    std::uint32_t baseObjectBytes = 32;
    /** A slot's object is freed and reallocated every churnEvery-th
     *  hit (0 disables churn). */
    unsigned churnEvery = 4;
    /** Ring hand-off period in requests (0 disables hand-offs). */
    unsigned handoffEvery = 8;
};

/** Generate one handler program per core. */
std::vector<isa::Program> serverMix(const ServerMixConfig &cfg);

} // namespace rest::workload

#endif // REST_WORKLOAD_SERVER_MIX_HH
