/**
 * @file
 * SPEC CPU2006-like synthetic workload profiles and their program
 * generator.
 *
 * The paper evaluates the 12 C/C++ SPEC CPU2006 benchmarks shown in
 * its Figures 3/7/8. We cannot ship SPEC, so each benchmark is
 * replaced by a deterministic synthetic program parameterised by the
 * characteristics that drive the protection-scheme overheads:
 * instruction mix, working-set size and access pattern, heap
 * allocation rate and size distribution (the paper quotes xalancbmk
 * at ~0.2 allocations per kilo-instruction and lbm/sjeng at fewer
 * than 10 allocation calls total), memcpy intensity, function-call
 * rate (stack-protection cost) and branch behaviour. See DESIGN.md §1
 * for the substitution argument.
 */

#ifndef REST_WORKLOAD_SPEC_PROFILES_HH
#define REST_WORKLOAD_SPEC_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rest::workload
{

/** Tunable characteristics of one synthetic benchmark. */
struct BenchProfile
{
    std::string name;

    // Instruction mix of the inner-loop body (approximate fractions;
    // the remainder becomes integer ALU work).
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double fpFrac = 0.0;
    double mulFrac = 0.02;

    // Memory behaviour.
    std::size_t workingSetBytes = 256 * 1024; ///< power of two
    bool pointerChase = false;   ///< linked-list traversal pattern

    // Heap behaviour.
    double allocsPerKiloInst = 0.0;
    std::size_t allocSizeMin = 32;
    std::size_t allocSizeMax = 512;
    unsigned liveRingSlots = 64; ///< live churn allocations

    // libc-call behaviour.
    double memcpysPerKiloInst = 0.0;
    std::size_t memcpyLen = 256;

    // Call/stack behaviour.
    unsigned numWorkFuncs = 4;
    unsigned innerIters = 24;    ///< inner-loop trips per call
    unsigned stackBufsPerFunc = 1;
    std::size_t stackBufBytes = 32;

    // Control behaviour.
    double irregularBranchFrac = 0.0; ///< data-independent but noisy

    /** Target dynamic length of the uninstrumented program. */
    std::uint64_t targetKiloInsts = 2000;

    std::uint64_t seed = 0x5eed;
};

/** The 12 benchmarks of the paper's figures. */
std::vector<BenchProfile> specSuite();

/** Look up one profile by name (fatal if unknown). */
BenchProfile profileByName(const std::string &name);

/**
 * Generate the synthetic program for a profile. The result is
 * un-instrumented (symbolic stack buffers, single-exit functions);
 * finalise it with runtime::applyScheme() before emulation.
 */
isa::Program generate(const BenchProfile &profile);

} // namespace rest::workload

#endif // REST_WORKLOAD_SPEC_PROFILES_HH
