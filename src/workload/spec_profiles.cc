#include "workload/spec_profiles.hh"

#include <algorithm>

#include "analysis/verifier.hh"
#include "runtime/runtime_config.hh"
#include "util/bit_utils.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace rest::workload
{

using isa::FuncBuilder;
using isa::Opcode;
using isa::RegId;

namespace
{

// Register conventions of generated code (program regs r1..r15):
// main loop state
constexpr RegId rMainIter = 1;
constexpr RegId rAllocCtr = 2;
constexpr RegId rMemcpyCtr = 3;
constexpr RegId rRingIdx = 4;
constexpr RegId rSizeRot = 5;
// work-function state
constexpr RegId rArray = 6;
constexpr RegId rCursor = 7;
constexpr RegId rInner = 8;
constexpr RegId rT0 = 9;
constexpr RegId rT1 = 10;
constexpr RegId rT2 = 11; // stack buffer base
constexpr RegId rT3 = 12;
// main scratch
constexpr RegId rS0 = 13;
constexpr RegId rS1 = 14;
constexpr RegId rS2 = 15;

/** Global data slots used by the generated program. */
struct Globals
{
    static constexpr Addr base = runtime::AddressMap::globalsBase;

    static Addr arraySlot(unsigned j) { return base + 16 * j; }
    static Addr cursorSlot(unsigned j) { return base + 0x800 + 16 * j; }
    static Addr ringBase() { return base + 0x1000; }
};

/** Number of dynamic ops one call of the work function executes. */
std::uint64_t
opsPerCall(const isa::Function &fn, unsigned inner_iters,
           std::size_t loop_body_len, std::size_t loop_start)
{
    // Entry code before the loop + iterations + exit code.
    std::size_t exit_len = fn.insts.size() - (loop_start +
                                              loop_body_len);
    return loop_start + std::uint64_t(inner_iters) * loop_body_len +
        exit_len;
}

/**
 * Emit the per-iteration body of a work function according to the
 * profile's instruction mix. Returns nothing; the loop backedge is
 * added by the caller.
 */
void
emitInnerBlock(FuncBuilder &b, const BenchProfile &p, Xoshiro256ss &rng,
               int buf_id_base)
{
    const unsigned block = 16;
    auto count = [&](double frac) {
        return std::max<unsigned>(frac > 0 ? 1 : 0,
            static_cast<unsigned>(frac * block + 0.5));
    };
    unsigned n_loads = count(p.loadFrac);
    unsigned n_stores = count(p.storeFrac);
    unsigned n_fp = count(p.fpFrac);
    unsigned n_mul = count(p.mulFrac);
    unsigned used = n_loads + n_stores + n_fp + n_mul;
    unsigned n_alu = block > used ? block - used : 1;

    const std::uint64_t ws_mask = p.workingSetBytes - 1;

    // Address formation for the streaming pattern.
    if (!p.pointerChase) {
        b.emit({Opcode::AndI, rCursor, rCursor, isa::noReg, 8,
                static_cast<std::int64_t>(ws_mask), -1, -1});
        b.alu(Opcode::Add, rT0, rArray, rCursor);
    } else {
        // Chase: the node pointer lives in rArray and is reloaded
        // from the node itself each iteration.
        b.load(rArray, rArray, 0, 8);
        b.mov(rT0, rArray);
        if (n_loads > 0)
            --n_loads;
    }

    // Data accesses spread across the cache line(s) at the cursor.
    for (unsigned i = 0; i < n_loads; ++i) {
        std::int64_t off = 8 + 8 * static_cast<std::int64_t>(
            rng.below(6));
        b.load(rT1, rT0, off, rng.chance(0.3) ? 4 : 8);
    }
    for (unsigned i = 0; i < n_stores; ++i) {
        std::int64_t off = 8 + 8 * static_cast<std::int64_t>(
            rng.below(6));
        b.store(rT1, rT0, off, 8);
    }

    // Stack-buffer traffic (exercises the protected frame region).
    if (p.stackBufsPerFunc > 0) {
        std::int64_t off = 8 * static_cast<std::int64_t>(
            rng.below(std::max<std::size_t>(1, p.stackBufBytes / 8)));
        b.store(rT1, rT2, off, 8);
        b.load(rT3, rT2, off, 8);
        (void)buf_id_base;
    }

    // Arithmetic with short dependency chains.
    for (unsigned i = 0; i < n_alu; ++i)
        b.alu(rng.chance(0.5) ? Opcode::Add : Opcode::Xor, rT1, rT1,
              rT3);
    for (unsigned i = 0; i < n_mul; ++i)
        b.alu(Opcode::Mul, rT3, rT3, rT1);
    for (unsigned i = 0; i < n_fp; ++i)
        b.alu(i % 3 == 2 ? Opcode::FMul : Opcode::FAdd, rT3, rT3, rT1);

    // Hard-to-predict (but data-independent) branch, for the branchy
    // benchmarks: direction derives from a multiplicative hash of the
    // induction variable, so the pattern is effectively aperiodic yet
    // identical across protection schemes.
    if (p.irregularBranchFrac > 0 &&
        rng.chance(p.irregularBranchFrac * 8)) {
        b.emit({Opcode::MovImm, rT1, isa::noReg, isa::noReg, 8,
                static_cast<std::int64_t>(0x9e3779b97f4a7c15ull), -1,
                -1});
        b.alu(Opcode::Mul, rT1, rInner, rT1);
        b.emit({Opcode::ShrI, rT1, rT1, isa::noReg, 8, 62, -1, -1});
        int br = b.branch(Opcode::Bne, rT1, isa::regZero);
        b.alu(Opcode::Add, rT3, rT3, rT1);
        b.alu(Opcode::Xor, rT3, rT3, rT1);
        b.patchTarget(br, b.here());
    }

    // Advance the cursor.
    if (!p.pointerChase)
        b.addI(rCursor, rCursor, 64);
}

/** Build one work function. */
isa::Function
buildWorkFunc(const BenchProfile &p, unsigned j, Xoshiro256ss &rng)
{
    FuncBuilder b("work_" + std::to_string(j));
    std::vector<int> bufs;
    for (unsigned k = 0; k < p.stackBufsPerFunc; ++k)
        bufs.push_back(b.stackBuf(
            static_cast<std::uint32_t>(p.stackBufBytes), true));

    // Entry: load the array pointer (or chase cursor) and the
    // persistent cursor, and take the stack buffer address.
    if (p.pointerChase) {
        b.movImm(rS0, static_cast<std::int64_t>(Globals::cursorSlot(j)));
        b.load(rArray, rS0, 0, 8);
    } else {
        b.movImm(rS0, static_cast<std::int64_t>(Globals::arraySlot(j)));
        b.load(rArray, rS0, 0, 8);
        b.movImm(rS1, static_cast<std::int64_t>(Globals::cursorSlot(j)));
        b.load(rCursor, rS1, 0, 8);
    }
    if (!bufs.empty())
        b.leaBuf(rT2, bufs[0]);
    b.movImm(rInner, static_cast<std::int64_t>(p.innerIters));

    int loop_top = b.here();
    emitInnerBlock(b, p, rng, bufs.empty() ? -1 : bufs[0]);
    b.addI(rInner, rInner, -1);
    b.branch(Opcode::Bne, rInner, isa::regZero, loop_top);

    // Exit: persist the cursor.
    if (p.pointerChase) {
        b.movImm(rS0, static_cast<std::int64_t>(Globals::cursorSlot(j)));
        b.store(rArray, rS0, 0, 8);
    } else {
        b.movImm(rS1, static_cast<std::int64_t>(Globals::cursorSlot(j)));
        b.store(rCursor, rS1, 0, 8);
    }
    b.ret();
    return b.take();
}

/** Emit main's one-time setup: array allocation + chase-ring init. */
void
emitSetup(FuncBuilder &b, const BenchProfile &p)
{
    for (unsigned j = 0; j < p.numWorkFuncs; ++j) {
        // Over-allocate by a line and align the array base so the
        // access pattern is identical regardless of which allocator's
        // payload alignment is in effect. The per-array stagger
        // (j * 8 KiB) decorrelates L2 set placement from the
        // allocator's chunk geometry, so scheme comparisons measure
        // the scheme and not accidental aliasing.
        b.movImm(rS0,
                 static_cast<std::int64_t>(p.workingSetBytes + 64 +
                                           j * 8192));
        b.emit({Opcode::RtMalloc, isa::noReg, rS0, isa::noReg, 8, 0,
                -1, -1});
        b.addI(rS0, isa::regRet, 63);
        b.emit({Opcode::AndI, rS0, rS0, isa::noReg, 8, -64, -1, -1});
        b.movImm(rS1, static_cast<std::int64_t>(Globals::arraySlot(j)));
        b.store(rS0, rS1, 0, 8);
        // Cursor starts at the (aligned) array base or offset 0.
        b.movImm(rS2, static_cast<std::int64_t>(Globals::cursorSlot(j)));
        if (p.pointerChase) {
            b.store(rS0, rS2, 0, 8);
        } else {
            b.store(isa::regZero, rS2, 0, 8);
        }
    }

    if (p.pointerChase) {
        // Initialise each array as a closed chain of 64-byte nodes:
        // node k points to node (k + 1) mod n.
        const std::int64_t nodes =
            static_cast<std::int64_t>(p.workingSetBytes / 64);
        const std::int64_t mask =
            static_cast<std::int64_t>(p.workingSetBytes - 1);
        for (unsigned j = 0; j < p.numWorkFuncs; ++j) {
            b.movImm(rS0,
                     static_cast<std::int64_t>(Globals::arraySlot(j)));
            b.load(rArray, rS0, 0, 8);
            b.movImm(rCursor, 0);
            b.movImm(rInner, nodes);
            int loop = b.here();
            b.addI(rT0, rCursor, 64);
            b.emit({Opcode::AndI, rT0, rT0, isa::noReg, 8, mask, -1,
                    -1});
            b.alu(Opcode::Add, rT1, rArray, rT0);   // next node addr
            b.alu(Opcode::Add, rT3, rArray, rCursor);
            b.store(rT1, rT3, 0, 8);
            b.mov(rCursor, rT0);
            b.addI(rInner, rInner, -1);
            b.branch(Opcode::Bne, rInner, isa::regZero, loop);
        }
    }
}

/** Emit the alloc/free churn segment of the main loop. */
void
emitAllocEvent(FuncBuilder &b, const BenchProfile &p,
               std::int64_t alloc_every)
{
    b.addI(rAllocCtr, rAllocCtr, -1);
    int skip = b.branch(Opcode::Bne, rAllocCtr, isa::regZero);
    b.movImm(rAllocCtr, alloc_every);

    // size = sizeMin + ((rot += step) & mask), mask a power of two.
    std::uint64_t range = std::max<std::uint64_t>(
        8, p.allocSizeMax - p.allocSizeMin);
    std::uint64_t mask = (std::uint64_t(1)
                          << floorLog2(range)) - 1;
    b.addI(rSizeRot, rSizeRot, 24);
    b.emit({Opcode::AndI, rS0, rSizeRot, isa::noReg, 8,
            static_cast<std::int64_t>(mask), -1, -1});
    b.addI(rS0, rS0, static_cast<std::int64_t>(p.allocSizeMin));
    b.emit({Opcode::RtMalloc, isa::noReg, rS0, isa::noReg, 8, 0, -1,
            -1});

    // Construct the object: memset(new, 0, size).
    b.mov(rS1, isa::regRet);
    b.emit({Opcode::RtMemset, rS0, rS1, isa::regZero, 8, 0, -1, -1});

    // Ring insert; free the pointer previously in the slot.
    std::uint64_t ring_slots = std::uint64_t(1)
        << floorLog2(std::max(2u, p.liveRingSlots));
    b.movImm(rS2, static_cast<std::int64_t>(Globals::ringBase()));
    b.alu(Opcode::Add, rS2, rS2, rRingIdx);
    b.load(rS0, rS2, 0, 8);
    int no_free = b.branch(Opcode::Beq, rS0, isa::regZero);
    b.emit({Opcode::RtFree, isa::noReg, rS0, isa::noReg, 8, 0, -1, -1});
    b.patchTarget(no_free, b.here());
    b.store(rS1, rS2, 0, 8);
    b.addI(rRingIdx, rRingIdx, 8);
    b.emit({Opcode::AndI, rRingIdx, rRingIdx, isa::noReg, 8,
            static_cast<std::int64_t>(ring_slots * 8 - 1), -1, -1});

    b.patchTarget(skip, b.here());
}

/** Emit the memcpy segment of the main loop. */
void
emitMemcpyEvent(FuncBuilder &b, const BenchProfile &p,
                std::int64_t memcpy_every)
{
    b.addI(rMemcpyCtr, rMemcpyCtr, -1);
    int skip = b.branch(Opcode::Bne, rMemcpyCtr, isa::regZero);
    b.movImm(rMemcpyCtr, memcpy_every);

    // Source and destination windows rotate through the first two
    // arrays; the offset stays inside the working set minus the copy
    // length.
    std::uint64_t span = p.workingSetBytes / 2;
    std::uint64_t off_mask = (span > p.memcpyLen)
        ? ((std::uint64_t(1) << floorLog2(span - p.memcpyLen)) - 1) &
            ~std::uint64_t(63)
        : 0;
    unsigned src_j = 0;
    unsigned dst_j = p.numWorkFuncs > 1 ? 1 : 0;

    b.movImm(rS0, static_cast<std::int64_t>(Globals::arraySlot(src_j)));
    b.load(rS0, rS0, 0, 8);
    b.movImm(rS1, static_cast<std::int64_t>(Globals::arraySlot(dst_j)));
    b.load(rS1, rS1, 0, 8);
    b.emit({Opcode::ShlI, rS2, rSizeRot, isa::noReg, 8, 6, -1, -1});
    b.emit({Opcode::AndI, rS2, rS2, isa::noReg, 8,
            static_cast<std::int64_t>(off_mask), -1, -1});
    b.alu(Opcode::Add, rS0, rS0, rS2);
    b.alu(Opcode::Add, rS1, rS1, rS2);
    b.movImm(rT3, static_cast<std::int64_t>(p.memcpyLen));
    // RtMemcpy: rs1 = dst, rs2 = src, rd = length register.
    b.emit({Opcode::RtMemcpy, rT3, rS1, rS0, 8, 0, -1, -1});

    b.patchTarget(skip, b.here());
}

} // namespace

isa::Program
generate(const BenchProfile &p)
{
    rest_assert(isPowerOfTwo(p.workingSetBytes),
                "workingSetBytes must be a power of two in ", p.name);
    Xoshiro256ss rng(p.seed ^ std::hash<std::string>{}(p.name));

    isa::Program prog;

    // Build the work functions first so main can size its loop from
    // their measured cost.
    std::vector<isa::Function> work;
    for (unsigned j = 0; j < p.numWorkFuncs; ++j)
        work.push_back(buildWorkFunc(p, j, rng));

    // Estimate dynamic ops per main-loop iteration.
    std::uint64_t ops_per_iter = 12;
    for (const auto &fn : work) {
        // Loop body length: count instructions between the backedge
        // target and the backedge itself.
        std::size_t backedge = 0;
        for (std::size_t i = 0; i < fn.insts.size(); ++i) {
            if (fn.insts[i].op == Opcode::Bne &&
                fn.insts[i].target >= 0 &&
                static_cast<std::size_t>(fn.insts[i].target) < i) {
                backedge = i;
            }
        }
        std::size_t loop_top =
            static_cast<std::size_t>(fn.insts[backedge].target);
        std::size_t body = backedge - loop_top + 1;
        ops_per_iter += opsPerCall(fn, p.innerIters, body, loop_top) + 1;
    }

    std::uint64_t target_ops = p.targetKiloInsts * 1000;
    std::int64_t main_iters = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(target_ops / ops_per_iter));

    auto every = [&](double per_kilo_inst) -> std::int64_t {
        if (per_kilo_inst <= 0)
            return 0;
        double events_per_iter =
            per_kilo_inst * static_cast<double>(ops_per_iter) / 1000.0;
        return std::max<std::int64_t>(
            1, static_cast<std::int64_t>(1.0 / events_per_iter + 0.5));
    };
    std::int64_t alloc_every = every(p.allocsPerKiloInst);
    // Above ~one event per iteration the countdown saturates; emit a
    // burst of consecutive alloc blocks instead (allocation-dominated
    // phases of gcc/xalancbmk).
    unsigned alloc_burst = 1;
    if (p.allocsPerKiloInst > 0) {
        double events_per_iter = p.allocsPerKiloInst *
            static_cast<double>(ops_per_iter) / 1000.0;
        if (events_per_iter > 1.0) {
            alloc_burst = static_cast<unsigned>(events_per_iter + 0.5);
            alloc_every = 1;
        }
    }
    std::int64_t memcpy_every = every(p.memcpysPerKiloInst);

    // ---- main ----
    FuncBuilder b("main");
    emitSetup(b, p);
    b.movImm(rMainIter, main_iters);
    if (alloc_every)
        b.movImm(rAllocCtr, alloc_every);
    if (memcpy_every)
        b.movImm(rMemcpyCtr, memcpy_every);
    b.movImm(rRingIdx, 0);
    b.movImm(rSizeRot, 0);

    int loop_top = b.here();
    for (unsigned j = 0; j < p.numWorkFuncs; ++j)
        b.call(static_cast<int>(j) + 1);
    for (unsigned k = 0; alloc_every && k < alloc_burst; ++k)
        emitAllocEvent(b, p, alloc_every);
    if (memcpy_every)
        emitMemcpyEvent(b, p, memcpy_every);
    b.addI(rMainIter, rMainIter, -1);
    b.branch(Opcode::Bne, rMainIter, isa::regZero, loop_top);
    b.halt();

    prog.funcs.push_back(b.take());
    for (auto &fn : work)
        prog.funcs.push_back(std::move(fn));
#ifndef NDEBUG
    auto diags = analysis::verifyGeneratorContract(prog);
    rest_assert(diags.empty(), "generated program for ", p.name,
                " violates the instrumentation contract:\n",
                analysis::formatDiagnostics(diags));
#endif
    return prog;
}

std::vector<BenchProfile>
specSuite()
{
    std::vector<BenchProfile> suite;
    auto add = [&](BenchProfile p) { suite.push_back(std::move(p)); };

    {
        BenchProfile p;
        p.name = "bzip2";
        p.loadFrac = 0.26; p.storeFrac = 0.12;
        p.workingSetBytes = 128 << 10;
        p.allocsPerKiloInst = 0.002;
        p.allocSizeMin = 1024; p.allocSizeMax = 16384;
        p.memcpysPerKiloInst = 0.05; p.memcpyLen = 512;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "gobmk";
        p.loadFrac = 0.24; p.storeFrac = 0.10;
        p.workingSetBytes = 64 << 10;
        p.allocsPerKiloInst = 0.01;
        p.allocSizeMin = 64; p.allocSizeMax = 1024;
        p.irregularBranchFrac = 0.06;
        p.numWorkFuncs = 6;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "gcc";
        p.loadFrac = 0.25; p.storeFrac = 0.13;
        p.workingSetBytes = 256 << 10;
        // Test-input runs are allocation-phase dominated (paper
        // §VI-A): the effective allocation rate during the simulated
        // window is well above the whole-run average.
        p.allocsPerKiloInst = 0.6;
        p.allocSizeMin = 16; p.allocSizeMax = 512;
        p.memcpysPerKiloInst = 0.02; p.memcpyLen = 256;
        p.numWorkFuncs = 6;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "libquantum";
        p.loadFrac = 0.28; p.storeFrac = 0.10;
        p.workingSetBytes = 256 << 10;
        p.allocsPerKiloInst = 0.0005;
        p.allocSizeMin = 4096; p.allocSizeMax = 65536;
        p.innerIters = 40;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "astar";
        p.loadFrac = 0.30; p.storeFrac = 0.06;
        p.workingSetBytes = 128 << 10;
        p.pointerChase = true;
        p.allocsPerKiloInst = 0.02;
        p.allocSizeMin = 32; p.allocSizeMax = 256;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "h264ref";
        p.loadFrac = 0.28; p.storeFrac = 0.14;
        p.workingSetBytes = 128 << 10;
        p.allocsPerKiloInst = 0.005;
        p.allocSizeMin = 256; p.allocSizeMax = 4096;
        p.memcpysPerKiloInst = 0.10; p.memcpyLen = 256;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "lbm";
        p.loadFrac = 0.30; p.storeFrac = 0.16;
        p.fpFrac = 0.20;
        p.workingSetBytes = 1 << 20;
        p.allocsPerKiloInst = 0.0; // fewer than 10 allocation calls
        p.innerIters = 48;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "namd";
        p.loadFrac = 0.28; p.storeFrac = 0.08;
        p.fpFrac = 0.35; p.mulFrac = 0.05;
        p.workingSetBytes = 64 << 10;
        p.allocsPerKiloInst = 0.0005;
        p.allocSizeMin = 1024; p.allocSizeMax = 16384;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "sjeng";
        p.loadFrac = 0.22; p.storeFrac = 0.08;
        p.workingSetBytes = 32 << 10;
        p.allocsPerKiloInst = 0.0; // fewer than 10 allocation calls
        p.irregularBranchFrac = 0.08;
        p.numWorkFuncs = 6;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "soplex";
        p.loadFrac = 0.28; p.storeFrac = 0.10;
        p.fpFrac = 0.25;
        p.workingSetBytes = 256 << 10;
        p.allocsPerKiloInst = 0.01;
        p.allocSizeMin = 256; p.allocSizeMax = 4096;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "xalancbmk";
        p.loadFrac = 0.24; p.storeFrac = 0.12;
        p.workingSetBytes = 128 << 10;
        // Paper: 0.2 allocs/kinst over the whole run; the test
        // input's allocation-dominated phases run far hotter, which
        // is what the simulated window models.
        p.allocsPerKiloInst = 1.5;
        p.allocSizeMin = 16; p.allocSizeMax = 128;
        p.memcpysPerKiloInst = 0.05; p.memcpyLen = 64;
        p.numWorkFuncs = 6;
        add(p);
    }
    {
        BenchProfile p;
        p.name = "hmmer";
        p.loadFrac = 0.30; p.storeFrac = 0.12;
        p.mulFrac = 0.06;
        p.workingSetBytes = 32 << 10;
        p.allocsPerKiloInst = 0.001;
        p.allocSizeMin = 512; p.allocSizeMax = 8192;
        add(p);
    }
    return suite;
}

BenchProfile
profileByName(const std::string &name)
{
    for (auto &p : specSuite()) {
        if (p.name == name)
            return p;
    }
    rest_fatal("unknown benchmark profile: ", name);
}

} // namespace rest::workload
